// Command cloudmap runs the §2.1/§3.2/§4.1 discovery and classification
// pipeline: generate a world, scan its DNS (AXFR, wordlist brute force,
// distributed lookups), and print who uses the cloud and how.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudscope"
	"cloudscope/internal/cliflags"
)

func main() {
	domains := flag.Int("domains", 10000, "ranked-list size")
	seed := flag.Int64("seed", 1, "world seed")
	vantages := flag.Int("vantages", 200, "distributed DNS vantage points")
	save := flag.String("save", "", "write the measured dataset to this file")
	shared := cliflags.Register(flag.CommandLine)
	flag.Parse()

	cfg := cloudscope.Config{Seed: *seed, Domains: *domains, Vantages: *vantages}
	if err := shared.Apply(&cfg); err != nil {
		fatal(err)
	}
	study := cloudscope.NewStudy(cfg)
	if err := shared.Start(study.Telemetry()); err != nil {
		fatal(err)
	}
	ds := study.Dataset()
	fmt.Printf("scanned %d domains, %d queries, %d AXFR successes (%.1f simulated probe-days serial)\n",
		ds.Stats.DomainsScanned, ds.Stats.QueriesIssued, ds.Stats.AXFRSuccesses,
		ds.Stats.SerialProbeTime.Hours()/24)
	fmt.Printf("subdomains seen: %d; cloud-using: %d under %d domains\n\n",
		ds.Stats.SubdomainsSeen, ds.Stats.CloudSubdomains, len(ds.CloudDomains()))

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if _, err := ds.WriteTo(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("dataset written to %s\n\n", *save)
	}

	for _, id := range []string{"table3", "table4", "table7", "table9"} {
		out, err := study.RunExperiment(id)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if shared.Faulting() {
		fmt.Printf("completeness:\n%s\n", study.Completeness().Report())
	}
	if err := shared.Finish(os.Stdout, study); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cloudmap:", err)
	os.Exit(1)
}
