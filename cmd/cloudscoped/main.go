// Command cloudscoped serves the study's answers over HTTP: one shared
// immutable world per epoch, a versioned /v1/* query API, per-query
// result caching, bounded admission, and JSON metrics.
//
// Usage:
//
//	cloudscoped -addr :8080 -domains 5000
//	cloudscoped -addr :8080 -chaos hostile        # degraded-but-honest answers
//
// Endpoints:
//
//	GET  /v1/patterns                 Table 7 feature usage + Table 3 breakdown
//	GET  /v1/regions                  Table 9 region usage
//	GET  /v1/zones                    §4.3 availability-zone usage
//	GET  /v1/domain?name=example.com  one domain: rank, subdomains, zones, latency
//	GET  /v1/wanperf                  §5 latency/throughput matrices, optimal-k
//	GET  /v1/outage[?region=...]      region/zone blast radii (+headline)
//	GET  /v1/completeness             per-stage probe accounting
//	GET  /healthz                     liveness + current epoch
//	GET  /metrics                     serve.* and study telemetry, JSON
//	POST /admin/reload?seed=&domains=&chaos=   swap in a new world epoch
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudscope"
	"cloudscope/internal/cliflags"
	"cloudscope/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	domains := flag.Int("domains", 20000, "ranked-list size (the paper's top 1M, scaled)")
	seed := flag.Int64("seed", 1, "world seed")
	vantages := flag.Int("vantages", 200, "distributed DNS vantage points")
	flows := flag.Int("flows", 30000, "border-capture flows")
	maxQueue := flag.Int("max-queue", 256, "bound on requests in the system; excess gets 429")
	queueTimeout := flag.Duration("queue-timeout", 5*time.Second, "max wait for an endpoint slot before 503")
	endpointConc := flag.Int("endpoint-concurrency", 4, "concurrently executing requests per endpoint")
	requestSpans := flag.Bool("request-spans", false, "record a span per request (memory grows with traffic; debugging only)")
	warm := flag.Bool("warm", false, "build the world and dataset before accepting traffic")
	shared := cliflags.Register(flag.CommandLine)
	flag.Parse()

	cfg := cloudscope.Config{Seed: *seed, Domains: *domains, Vantages: *vantages, CaptureFlows: *flows}
	if err := shared.Apply(&cfg); err != nil {
		fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Study:               cfg,
		MaxQueue:            *maxQueue,
		QueueTimeout:        *queueTimeout,
		EndpointConcurrency: *endpointConc,
		RequestSpans:        *requestSpans,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cloudscoped: serving on http://%s (epoch %d, seed %d, %d domains)\n",
		ln.Addr(), srv.Epoch(), cfg.Seed, cfg.Domains)

	if *warm {
		start := time.Now()
		if err := srv.Warm(context.Background()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cloudscoped: world + dataset warm in %.1fs\n", time.Since(start).Seconds())
	}

	httpSrv := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "cloudscoped: shut down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cloudscoped:", err)
	os.Exit(1)
}
