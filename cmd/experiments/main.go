// Command experiments regenerates every table and figure of the paper
// in one run.
//
// Usage:
//
//	experiments [-domains N] [-seed S] [-flows N] [-only table9,figure12]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudscope"
	"cloudscope/internal/chaos"
	"cloudscope/internal/stats"
)

func main() {
	domains := flag.Int("domains", 20000, "ranked-list size (the paper's top 1M, scaled)")
	seed := flag.Int64("seed", 1, "world seed")
	flows := flag.Int("flows", 30000, "border-capture flows")
	vantages := flag.Int("vantages", 200, "distributed DNS vantage points")
	workers := flag.Int("workers", 0, "analysis worker bound (0 = GOMAXPROCS, 1 = sequential; results identical)")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	chaosSpec := flag.String("chaos", "", "fault scenario: a library name ("+strings.Join(chaos.Library(), ", ")+") or an inline spec like 'loss,p=0.05;servfail,p=0.3,window=0.3-0.7'")
	plotdata := flag.String("plotdata", "", "directory to write per-figure TSV series into")
	telemetry := flag.Bool("telemetry", false, "print the study's metric and span report after the run")
	telemetryJSON := flag.String("telemetry-json", "", "write the telemetry dump as JSON to this file (- for stdout)")
	flag.Parse()

	scenario, err := chaos.Load(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	study := cloudscope.NewStudy(cloudscope.Config{
		Seed: *seed, Domains: *domains, CaptureFlows: *flows, Vantages: *vantages, Workers: *workers,
		Chaos: scenario,
	})

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	ran := 0
	for _, e := range cloudscope.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		out := e.Run(study)
		fmt.Printf("==== %s: %s (%.1fs) ====\n%s\n", e.ID, e.Title, time.Since(start).Seconds(), out)
		ran++
		if *plotdata != "" {
			if series, ok := study.FigureSeries(e.ID); ok {
				if err := writeTSV(*plotdata, e.ID, series); err != nil {
					fmt.Fprintln(os.Stderr, "plotdata:", err)
					os.Exit(1)
				}
			}
		}
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only; known IDs:")
		for _, e := range cloudscope.Experiments() {
			fmt.Fprintln(os.Stderr, "  "+e.ID)
		}
		os.Exit(1)
	}
	if scenario != nil {
		fmt.Printf("==== completeness under scenario %q ====\n%s\n", scenario.Name, study.Completeness().Report())
	}
	if *telemetry {
		fmt.Print(study.Telemetry().Report())
	}
	if *telemetryJSON != "" {
		w := os.Stdout
		if *telemetryJSON != "-" {
			f, err := os.Create(*telemetryJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "telemetry-json:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := study.Telemetry().WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry-json:", err)
			os.Exit(1)
		}
	}
}

func writeTSV(dir, id string, series map[string][]stats.Point) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + id + ".tsv")
	if err != nil {
		return err
	}
	defer f.Close()
	return cloudscope.WriteSeriesTSV(f, series)
}
