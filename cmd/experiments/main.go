// Command experiments regenerates every table and figure of the paper
// in one run.
//
// Usage:
//
//	experiments [-domains N] [-seed S] [-flows N] [-only table9,figure12]
//	experiments -json study.json        # the daemon's V1 document, offline
//	experiments -chaos hostile -chaos-record trace.jsonl
//	experiments -chaos-replay trace.jsonl
//	experiments -chaos-bisect trace.jsonl -only table9
//	experiments -chaos-diff A.jsonl B.jsonl
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudscope"
	"cloudscope/api"
	"cloudscope/internal/chaos/trace"
	"cloudscope/internal/cliflags"
	"cloudscope/internal/stats"
)

func main() {
	domains := flag.Int("domains", 20000, "ranked-list size (the paper's top 1M, scaled)")
	seed := flag.Int64("seed", 1, "world seed")
	flows := flag.Int("flows", 30000, "border-capture flows")
	vantages := flag.Int("vantages", 200, "distributed DNS vantage points")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	plotdata := flag.String("plotdata", "", "directory to write per-figure TSV series into")
	bisect := flag.String("chaos-bisect", "",
		"delta-debug the fault trace in this file to a minimal sub-trace that still changes the selected experiments' output from the fault-free run; prints the culprits and writes <file>.min")
	chaosDiff := flag.String("chaos-diff", "",
		"compare the fault trace in this file against a second trace (the positional argument, or 'A.jsonl,B.jsonl') and print the verdict delta; exits 1 when they differ")
	streamOut := flag.String("stream-out", "dataset.txt",
		"dataset output path for -stream (- for stdout)")
	jsonOut := flag.String("json", "",
		"also write the study's answers as the versioned V1 JSON document cloudscoped serves (- for stdout)")
	shared := cliflags.Register(flag.CommandLine)
	streaming := cliflags.RegisterStreaming(flag.CommandLine)
	flag.Parse()

	if err := streaming.Validate(); err != nil {
		fatal(err)
	}

	if *chaosDiff != "" {
		// Diffing two recorded traces runs no study; the shared study
		// flags would be inert, so reject them loudly.
		if err := shared.RejectStudyFlags("experiments -chaos-diff"); err != nil {
			fatal(err)
		}
		identical, err := cliflags.DiffTraces(*chaosDiff, flag.Arg(0), os.Stdout)
		if err != nil {
			fatal(err)
		}
		if !identical {
			os.Exit(1)
		}
		return
	}

	cfg := cloudscope.Config{Seed: *seed, Domains: *domains, CaptureFlows: *flows, Vantages: *vantages}
	if err := shared.Apply(&cfg); err != nil {
		fatal(err)
	}

	if streaming.Stream {
		// The streaming data path produces the released-dataset artifact
		// in bounded memory — the Alexa-1M-scale run the in-memory study
		// cannot hold. The tables and figures need the memoized study, so
		// they run without -stream at a size that fits.
		if *only != "" {
			fatal(fmt.Errorf("-stream writes the dataset artifact and runs no experiments; drop -only or -stream"))
		}
		if *jsonOut != "" {
			fatal(fmt.Errorf("-json needs the memoized study; drop -stream"))
		}
		if err := shared.RejectStudyFlags("experiments -stream"); err != nil {
			fatal(err)
		}
		out := os.Stdout
		if *streamOut != "-" {
			f, err := os.Create(*streamOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		start := time.Now()
		st, err := cloudscope.StreamDataset(cfg, streaming.ChunkSize, streaming.SpillDir, out)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "streamed dataset: %d domains scanned, %d cloud subdomains, %d queries -> %s (%.1fs wall, chunks of %d)\n",
			st.DomainsScanned, st.CloudSubdomains, st.QueriesIssued, *streamOut, time.Since(start).Seconds(), streaming.ChunkSize)
		if err := shared.FinishProfiles(); err != nil {
			fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}

	if *bisect != "" {
		if cfg.Chaos != nil || cfg.ChaosReplay != nil {
			fatal(fmt.Errorf("-chaos-bisect replays sub-traces of the recorded run; drop -chaos/-chaos-replay"))
		}
		runBisect(cfg, *bisect, want)
		return
	}

	study := cloudscope.NewStudy(cfg)
	if err := shared.Start(study.Telemetry()); err != nil {
		fatal(err)
	}
	ran := 0
	for _, e := range cloudscope.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		out := e.Run(study)
		fmt.Printf("==== %s: %s (%.1fs) ====\n%s\n", e.ID, e.Title, time.Since(start).Seconds(), out)
		ran++
		if *plotdata != "" {
			if series, ok := study.FigureSeries(e.ID); ok {
				if err := writeTSV(*plotdata, e.ID, series); err != nil {
					fatal(err)
				}
			}
		}
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only; known IDs:")
		for _, e := range cloudscope.Experiments() {
			fmt.Fprintln(os.Stderr, "  "+e.ID)
		}
		os.Exit(1)
	}
	if shared.Faulting() {
		fmt.Printf("==== completeness ====\n%s\n", study.Completeness().Report())
	}
	if *jsonOut != "" {
		if err := writeStudyJSON(*jsonOut, study); err != nil {
			fatal(err)
		}
	}
	if err := shared.Finish(os.Stdout, study); err != nil {
		fatal(err)
	}
}

// runBisect shrinks a recorded fault trace to a locally-minimal
// sub-trace whose replay still changes the selected experiments'
// output from the fault-free run.
func runBisect(cfg cloudscope.Config, path string, want map[string]bool) {
	tr, err := trace.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	golden := outputs(cloudscope.NewStudy(cfg), want)
	diverges := func(s *cloudscope.Study) bool { return outputs(s, want) != golden }

	full := cfg
	full.ChaosReplay = tr
	if !diverges(cloudscope.NewStudy(full)) {
		fatal(fmt.Errorf("replaying %s does not change the selected experiments' output; nothing to bisect", path))
	}
	fmt.Printf("trace %s: %d events under scenario %q (seed %d); bisecting...\n",
		path, tr.Len(), tr.Header.Scenario, tr.Header.Seed)

	min, replays := cloudscope.BisectFaultTrace(cfg, tr, diverges)
	fmt.Printf("minimal culprit set: %d of %d events (%d replays)\n", min.Len(), tr.Len(), replays)
	for _, ev := range min.Events {
		line := fmt.Sprintf("  %-8s %-12s phase=%.3f id=%016x", ev.Point, ev.Kind, ev.Phase, ev.ID)
		if ev.Name != "" {
			line += " " + ev.Name
		}
		if ev.Cause != "" {
			line += " cause=" + ev.Cause
		}
		fmt.Println(line)
	}
	out := path + ".min"
	if err := min.WriteFile(out); err != nil {
		fatal(err)
	}
	fmt.Printf("minimal trace written to %s (replay with -chaos-replay %s)\n", out, out)
}

// outputs concatenates the selected experiments' text plus the
// completeness report — the byte string record/replay/bisect compare.
func outputs(s *cloudscope.Study, want map[string]bool) string {
	var b strings.Builder
	for _, e := range cloudscope.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		b.WriteString(e.Run(s))
	}
	b.WriteString(s.Completeness().Report())
	return b.String()
}

// writeStudyJSON emits the same versioned document a cloudscoped
// daemon would serve for this world: the V1 study DTO inside an
// api.Envelope (epoch 0 — there is no serving epoch here), so offline
// runs and the daemon are byte-compatible consumers of one schema.
func writeStudyJSON(path string, study *cloudscope.Study) error {
	doc, err := api.Study(context.Background(), study)
	if err != nil {
		return err
	}
	env := api.NewEnvelope("study", 0, study, doc)
	b, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func writeTSV(dir, id string, series map[string][]stats.Point) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + id + ".tsv")
	if err != nil {
		return err
	}
	defer f.Close()
	return cloudscope.WriteSeriesTSV(f, series)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
