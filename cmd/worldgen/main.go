// Command worldgen generates a synthetic Internet and writes its
// shareable artifacts to disk: the published cloud IP ranges, the
// ranked domain list with ground truth, and a border packet capture —
// the reproduction's analogue of the paper's released datasets.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cloudscope"
	"cloudscope/internal/cliflags"
	"cloudscope/internal/deploy"
	"cloudscope/internal/parallel"
)

func main() {
	domains := flag.Int("domains", 10000, "ranked-list size")
	seed := flag.Int64("seed", 1, "world seed")
	flows := flag.Int("flows", 20000, "capture flows")
	outDir := flag.String("out", "world", "output directory")
	shared := cliflags.Register(flag.CommandLine)
	streaming := cliflags.RegisterStreaming(flag.CommandLine)
	flag.Parse()

	if err := streaming.Validate(); err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	if streaming.Stream {
		// The streaming path holds one chunk of world at a time, so a
		// 1M-domain list fits in flat memory; the capture and the zone
		// samples need the whole world live at once and are skipped.
		if err := shared.RejectStudyFlags("worldgen -stream"); err != nil {
			fatal(err)
		}
		if streaming.SpillDir != "" {
			fatal(fmt.Errorf("worldgen streams its CSVs directly and spills nothing; drop -spill-dir"))
		}
		if err := streamWorld(*outDir, *seed, *domains, shared.Workers, streaming.ChunkSize); err != nil {
			fatal(err)
		}
		if err := shared.FinishProfiles(); err != nil {
			fatal(err)
		}
		return
	}
	cfg := cloudscope.Config{Seed: *seed, Domains: *domains, CaptureFlows: *flows}
	if err := shared.Apply(&cfg); err != nil {
		fatal(err)
	}
	study := cloudscope.NewStudy(cfg)
	if err := shared.Start(study.Telemetry()); err != nil {
		fatal(err)
	}
	world := study.World()

	// Published IP ranges.
	f, err := os.Create(filepath.Join(*outDir, "ipranges.txt"))
	if err != nil {
		fatal(err)
	}
	if _, err := world.Ranges.WriteTo(f); err != nil {
		fatal(err)
	}
	f.Close()

	// Ranked list with ground truth summary.
	f, err = os.Create(filepath.Join(*outDir, "domains.csv"))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f, "rank,domain,cloud_using,home_region,customer_country,cloud_subdomains")
	for _, d := range world.Domains {
		fmt.Fprintf(f, "%d,%s,%t,%s,%s,%d\n",
			d.Rank, d.Name, d.CloudUsing(), d.HomeRegion, d.CustomerCountry, len(d.CloudSubdomains()))
	}
	f.Close()

	// Ground-truth subdomain inventory.
	f, err = os.Create(filepath.Join(*outDir, "subdomains.csv"))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f, "fqdn,pattern,provider,regions")
	for _, d := range world.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			fmt.Fprintf(f, "%s,%s,%s,%s\n", s.FQDN, s.Pattern, s.Provider, join(s.Regions))
		}
	}
	f.Close()

	// Sample zone files for the ten highest-ranked cloud domains.
	zoneDir := filepath.Join(*outDir, "zones")
	if err := os.MkdirAll(zoneDir, 0o755); err != nil {
		fatal(err)
	}
	for i, d := range world.CloudDomains {
		if i >= 10 {
			break
		}
		zf, err := os.Create(filepath.Join(zoneDir, d.Name+".zone"))
		if err != nil {
			fatal(err)
		}
		if _, err := d.Zone.WriteTo(zf, 0); err != nil {
			fatal(err)
		}
		zf.Close()
	}

	// Border capture.
	f, err = os.Create(filepath.Join(*outDir, "border.pcap"))
	if err != nil {
		fatal(err)
	}
	truth, err := study.WriteCapture(f)
	if err != nil {
		fatal(err)
	}
	f.Close()

	fmt.Printf("wrote %s: %d domains (%d cloud-using), %d-flow capture (%d bytes of app traffic)\n",
		*outDir, len(world.Domains), len(world.CloudDomains), truth.TotalFlows, truth.TotalBytes)
	if err := shared.Finish(os.Stdout, study); err != nil {
		fatal(err)
	}
}

// streamWorld writes ipranges.txt, domains.csv, and subdomains.csv
// chunk-by-chunk: each chunk of domains is deployed, its CSV rows
// written, and its zones and subdomains released before the next chunk
// starts, so peak memory is one chunk — not the ranked list's size.
func streamWorld(outDir string, seed int64, domains, workers, chunkSize int) error {
	wcfg := deploy.DefaultConfig().Scaled(domains)
	wcfg.Seed = seed
	wcfg.Par = parallel.Options{Workers: workers}
	ws := deploy.GenerateStream(wcfg, chunkSize)

	f, err := os.Create(filepath.Join(outDir, "ipranges.txt"))
	if err != nil {
		return err
	}
	if _, err := ws.World().Ranges.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	df, err := os.Create(filepath.Join(outDir, "domains.csv"))
	if err != nil {
		return err
	}
	defer df.Close()
	sf, err := os.Create(filepath.Join(outDir, "subdomains.csv"))
	if err != nil {
		return err
	}
	defer sf.Close()
	fmt.Fprintln(df, "rank,domain,cloud_using,home_region,customer_country,cloud_subdomains")
	fmt.Fprintln(sf, "fqdn,pattern,provider,regions")
	total := 0
	for {
		chunk := ws.Next()
		if chunk == nil {
			break
		}
		for _, d := range chunk.Domains {
			subs := d.CloudSubdomains()
			fmt.Fprintf(df, "%d,%s,%t,%s,%s,%d\n",
				d.Rank, d.Name, d.CloudUsing(), d.HomeRegion, d.CustomerCountry, len(subs))
			for _, s := range subs {
				fmt.Fprintf(sf, "%s,%s,%s,%s\n", s.FQDN, s.Pattern, s.Provider, join(s.Regions))
			}
		}
		total += len(chunk.Domains)
		ws.Release(chunk)
	}
	fmt.Printf("wrote %s: %d domains (%d cloud-using), streamed in chunks of %d (capture and zone samples need the whole world; rerun without -stream for those)\n",
		outDir, total, ws.NumCloudDomains(), chunkSize)
	return nil
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ";"
		}
		out += s
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "worldgen:", err)
	os.Exit(1)
}
