// Command zonemap runs the §4.3 availability-zone cartography over a
// generated world's dataset and prints Tables 12–15 and the Figure 7/8
// summaries.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudscope"
	"cloudscope/internal/cliflags"
)

func main() {
	domains := flag.Int("domains", 8000, "ranked-list size")
	seed := flag.Int64("seed", 1, "world seed")
	shared := cliflags.Register(flag.CommandLine)
	flag.Parse()

	cfg := cloudscope.Config{Seed: *seed, Domains: *domains}
	if err := shared.Apply(&cfg); err != nil {
		fatal(err)
	}
	study := cloudscope.NewStudy(cfg)
	if err := shared.Start(study.Telemetry()); err != nil {
		fatal(err)
	}
	z := study.Zones()
	fmt.Printf("targets: %d physical EC2 instances; combined coverage %.1f%%\n\n",
		len(z.Targets), 100*z.Combined.Coverage())
	for _, id := range []string{"table12", "table13", "table14", "table15", "figure7", "figure8"} {
		out, err := study.RunExperiment(id)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if shared.Faulting() {
		fmt.Printf("completeness:\n%s\n", study.Completeness().Report())
	}
	if err := shared.Finish(os.Stdout, study); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zonemap:", err)
	os.Exit(1)
}
