// Command wanperf runs the §5 wide-area measurement campaign and
// prints the latency/throughput matrices, the Boulder time series, the
// optimal-k analysis, and the ISP-diversity and RTT tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudscope"
	"cloudscope/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "seed")
	clients := flag.Int("clients", 80, "PlanetLab clients")
	workers := flag.Int("workers", 0, "analysis worker bound (0 = GOMAXPROCS, 1 = sequential; results identical)")
	chaosSpec := flag.String("chaos", "", "fault scenario: a library name or an inline spec (see internal/chaos)")
	flag.Parse()

	scenario, err := chaos.Load(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	study := cloudscope.NewStudy(cloudscope.Config{Seed: *seed, Domains: 500, WANClients: *clients, Workers: *workers, Chaos: scenario})
	for _, id := range []string{"figure9", "figure10", "figure11", "figure12", "table11", "table16"} {
		out, err := study.RunExperiment(id)
		if err != nil {
			panic(err)
		}
		fmt.Println(out)
	}
	res := study.Campaign().Outages(3, 50)
	fmt.Println("Route-outage simulation (mean fraction of clients cut off):")
	for k := 1; k <= 3; k++ {
		fmt.Printf("  k=%d regions: %.4f\n", k, res.MeanUnreachable[k])
	}
	if scenario != nil {
		fmt.Printf("\nCompleteness under scenario %q:\n%s", scenario.Name, study.Completeness().Report())
	}
}
