// Command wanperf runs the §5 wide-area measurement campaign and
// prints the latency/throughput matrices, the Boulder time series, the
// optimal-k analysis, and the ISP-diversity and RTT tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudscope"
	"cloudscope/internal/cliflags"
)

func main() {
	seed := flag.Int64("seed", 1, "seed")
	clients := flag.Int("clients", 80, "PlanetLab clients")
	shared := cliflags.Register(flag.CommandLine)
	flag.Parse()

	cfg := cloudscope.Config{Seed: *seed, Domains: 500, WANClients: *clients}
	if err := shared.Apply(&cfg); err != nil {
		fatal(err)
	}
	study := cloudscope.NewStudy(cfg)
	if err := shared.Start(study.Telemetry()); err != nil {
		fatal(err)
	}
	for _, id := range []string{"figure9", "figure10", "figure11", "figure12", "table11", "table16"} {
		out, err := study.RunExperiment(id)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	res := study.Campaign().Outages(3, 50)
	fmt.Println("Route-outage simulation (mean fraction of clients cut off):")
	for k := 1; k <= 3; k++ {
		fmt.Printf("  k=%d regions: %.4f\n", k, res.MeanUnreachable[k])
	}
	if shared.Faulting() {
		fmt.Printf("\ncompleteness:\n%s", study.Completeness().Report())
	}
	if err := shared.Finish(os.Stdout, study); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wanperf:", err)
	os.Exit(1)
}
