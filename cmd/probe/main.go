// Command probe is the interactive measurement toolkit: dig, NS
// location, traceroute, and wide-area RTT/throughput against a
// generated world.
//
// Usage:
//
//	probe -domains 2000 dig www.pinterest.com
//	probe ns pinterest.com
//	probe traceroute ec2.eu-west-1 0
//	probe rtt ec2.us-east-1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"cloudscope"
	"cloudscope/internal/chaos"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/probes"
	"cloudscope/internal/wan"
)

func main() {
	domains := flag.Int("domains", 2000, "world size")
	seed := flag.Int64("seed", 1, "world seed")
	vantage := flag.Int("vantage", 0, "vantage index (0 = Seattle)")
	workers := flag.Int("workers", 0, "analysis worker bound (0 = GOMAXPROCS, 1 = sequential; results identical)")
	telemetry := flag.Bool("telemetry", false, "print the telemetry report after the probe")
	chaosSpec := flag.String("chaos", "", "fault scenario: a library name or an inline spec (see internal/chaos)")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	scenario, err := chaos.Load(*chaosSpec)
	check(err)
	study := cloudscope.NewStudy(cloudscope.Config{Seed: *seed, Domains: *domains, Workers: *workers, Chaos: scenario})
	world := study.World()
	p := probes.New(probes.Config{
		Fabric:       world.Fabric,
		Registry:     world.Registry,
		Ranges:       world.Ranges,
		EC2:          world.EC2,
		WAN:          wan.New(*seed, 80, ipranges.EC2Regions),
		VantageIndex: *vantage,
		Seed:         *seed,
		Telemetry:    study.Telemetry(),
	})
	fmt.Printf("probing from %s (%s)\n\n", p.Vantage().Name, p.Vantage().ID)

	switch args[0] {
	case "dig":
		need(args, 2)
		answers, err := p.Dig(args[1])
		check(err)
		fmt.Print(probes.FormatDig(args[1], answers))
	case "ns":
		need(args, 2)
		locs, err := p.DigNS(args[1])
		check(err)
		for ns, loc := range locs {
			fmt.Printf("%-40s %s\n", ns, loc)
		}
	case "traceroute":
		need(args, 3)
		zone, err := strconv.Atoi(args[2])
		check(err)
		hops, err := p.Traceroute(args[1], zone)
		check(err)
		fmt.Print(probes.FormatTraceroute(hops))
	case "rtt":
		need(args, 2)
		at := time.Date(2013, 4, 5, 12, 0, 0, 0, time.UTC)
		for i := 0; i < 5; i++ {
			v, err := p.RTT(args[1], at.Add(time.Duration(i)*time.Minute))
			check(err)
			fmt.Printf("rtt to %s: %.1f ms\n", args[1], v)
		}
	case "get":
		need(args, 2)
		v, err := p.Get(args[1], time.Date(2013, 4, 5, 12, 0, 0, 0, time.UTC))
		check(err)
		fmt.Printf("throughput from %s: %.0f KB/s\n", args[1], v)
	default:
		usage()
	}
	if *telemetry {
		fmt.Print(study.Telemetry().Report())
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: probe [flags] dig <name> | ns <domain> | traceroute <region> <zone> | rtt <region> | get <region>")
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "probe:", err)
		os.Exit(1)
	}
}
