// Command probe is the interactive measurement toolkit: dig, NS
// location, traceroute, and wide-area RTT/throughput against a
// generated world.
//
// Usage:
//
//	probe -domains 2000 dig www.pinterest.com
//	probe ns pinterest.com
//	probe traceroute ec2.eu-west-1 0
//	probe rtt ec2.us-east-1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cloudscope"
	"cloudscope/internal/cliflags"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/probes"
	"cloudscope/internal/wan"
)

func main() {
	domains := flag.Int("domains", 2000, "world size")
	seed := flag.Int64("seed", 1, "world seed")
	vantage := flag.Int("vantage", 0, "vantage index (0 = Seattle)")
	shared := cliflags.Register(flag.CommandLine)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	cfg := cloudscope.Config{Seed: *seed, Domains: *domains}
	check(shared.Apply(&cfg))
	study := cloudscope.NewStudy(cfg)
	check(shared.Start(study.Telemetry()))
	world := study.World()
	p := probes.New(probes.Config{
		Fabric:       world.Fabric,
		Registry:     world.Registry,
		Ranges:       world.Ranges,
		EC2:          world.EC2,
		WAN:          wan.New(*seed, 80, ipranges.EC2Regions),
		VantageIndex: *vantage,
		Seed:         *seed,
		Telemetry:    study.Telemetry(),
	})
	fmt.Printf("probing from %s (%s)\n\n", p.Vantage().Name, p.Vantage().ID)

	out, err := run(p, args)
	check(err)
	fmt.Print(out)
	check(shared.Finish(os.Stdout, study))
}

// run executes one subcommand and returns its report, so the shared
// post-run output (telemetry, fault trace) always lands after it.
func run(p *probes.Prober, args []string) (string, error) {
	switch args[0] {
	case "dig":
		need(args, 2)
		answers, err := p.Dig(args[1])
		if err != nil {
			return "", err
		}
		return probes.FormatDig(args[1], answers), nil
	case "ns":
		need(args, 2)
		locs, err := p.DigNS(args[1])
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for ns, loc := range locs {
			fmt.Fprintf(&b, "%-40s %s\n", ns, loc)
		}
		return b.String(), nil
	case "traceroute":
		need(args, 3)
		zone, err := strconv.Atoi(args[2])
		if err != nil {
			return "", err
		}
		hops, err := p.Traceroute(args[1], zone)
		if err != nil {
			return "", err
		}
		return probes.FormatTraceroute(hops), nil
	case "rtt":
		need(args, 2)
		at := time.Date(2013, 4, 5, 12, 0, 0, 0, time.UTC)
		var b strings.Builder
		for i := 0; i < 5; i++ {
			v, err := p.RTT(args[1], at.Add(time.Duration(i)*time.Minute))
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "rtt to %s: %.1f ms\n", args[1], v)
		}
		return b.String(), nil
	case "get":
		need(args, 2)
		v, err := p.Get(args[1], time.Date(2013, 4, 5, 12, 0, 0, 0, time.UTC))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("throughput from %s: %.0f KB/s\n", args[1], v), nil
	default:
		usage()
		return "", nil
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: probe [flags] dig <name> | ns <domain> | traceroute <region> <zone> | rtt <region> | get <region>")
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "probe:", err)
		os.Exit(1)
	}
}
