// Command traceanalyze runs the Bro-style analyzer over a pcap file
// (e.g. one written by worldgen) and prints the §3 tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudscope/internal/capture"
	"cloudscope/internal/core/traffic"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/parallel"
)

func main() {
	workers := flag.Int("workers", 0, "analysis worker bound (0 = GOMAXPROCS, 1 = sequential; results identical)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceanalyze [-workers n] <capture.pcap>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	an, err := capture.AnalyzePar(f, ipranges.Published(), parallel.Options{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("flows: %d (decode errors: %d)\n\n", len(an.Flows), an.DecodeErrs)
	fmt.Println(traffic.Table1(an))
	fmt.Println(traffic.Table2(an))
	fmt.Println(traffic.Table5(an, 15))
	fmt.Println(traffic.Table6(an, 10))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceanalyze:", err)
	os.Exit(1)
}
