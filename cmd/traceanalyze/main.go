// Command traceanalyze runs the Bro-style analyzer over a pcap file
// (e.g. one written by worldgen) and prints the §3 tables. With
// -chaos-diff it instead compares two recorded fault traces:
//
//	traceanalyze capture.pcap
//	traceanalyze -chaos-diff A.jsonl B.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudscope/internal/capture"
	"cloudscope/internal/cliflags"
	"cloudscope/internal/core/traffic"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/parallel"
)

func main() {
	chaosDiff := flag.String("chaos-diff", "",
		"compare the fault trace in this file against a second trace (the positional argument, or 'A.jsonl,B.jsonl') and print the verdict delta; exits 1 when they differ")
	shared := cliflags.Register(flag.CommandLine)
	flag.Parse()
	// The flags are registered identically across all commands, but this
	// one analyzes an existing capture and runs no study — say so rather
	// than silently ignoring a chaos or telemetry request. The pprof
	// flags still apply: profiling the analyzer is their point here.
	if err := shared.RejectStudyFlags("traceanalyze"); err != nil {
		fatal(err)
	}
	if *chaosDiff != "" {
		identical, err := cliflags.DiffTraces(*chaosDiff, flag.Arg(0), os.Stdout)
		if err != nil {
			fatal(err)
		}
		if !identical {
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceanalyze [-workers n] [-cpuprofile f] [-memprofile f] <capture.pcap>")
		os.Exit(2)
	}
	if err := shared.Start(nil); err != nil {
		fatal(err)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	an, err := capture.AnalyzePar(f, ipranges.Published(), parallel.Options{Workers: shared.Workers})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("flows: %d (decode errors: %d)\n\n", len(an.Flows), an.DecodeErrs)
	fmt.Println(traffic.Table1(an))
	fmt.Println(traffic.Table2(an))
	fmt.Println(traffic.Table5(an, 15))
	fmt.Println(traffic.Table6(an, 10))
	if err := shared.FinishProfiles(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceanalyze:", err)
	os.Exit(1)
}
