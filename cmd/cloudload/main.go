// Command cloudload drives a cloudscoped daemon with a seeded,
// deterministic request mix and reports throughput, error counts, and
// latency quantiles.
//
// Usage:
//
//	cloudload -target http://127.0.0.1:8080 -requests 5000
//	cloudload -target ... -rate 2000 -mix "3:/v1/patterns,1:/v1/wanperf"
//	cloudload -target ... -json report.json
//
// With -rate the generator is open-loop: arrivals follow a seeded
// exponential schedule whatever the daemon's speed, and requests that
// would exceed -concurrency in flight are counted as shed. Without
// -rate it is closed-loop: exactly -concurrency requests in flight,
// measuring saturated throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cloudscope/internal/load"
)

const defaultMix = "4:/v1/patterns,3:/v1/regions,2:/v1/zones,2:/v1/outage?region=ec2.us-east-1,1:/v1/wanperf,1:/v1/completeness"

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "cloudscoped base URL")
	requests := flag.Int("requests", 2000, "total request budget")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	concurrency := flag.Int("concurrency", 64, "max in-flight requests")
	seed := flag.Int64("seed", 1, "plan seed: endpoint sequence and arrival schedule")
	mixSpec := flag.String("mix", defaultMix, "weighted endpoint mix, 'weight:path,...'")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file (- for stdout)")
	flag.Parse()

	mix, err := load.ParseMix(*mixSpec)
	if err != nil {
		fatal(err)
	}
	res, err := load.Run(load.Config{
		BaseURL:     *target,
		Mix:         mix,
		Requests:    *requests,
		Rate:        *rate,
		Concurrency: *concurrency,
		Seed:        *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Report())
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cloudload:", err)
	os.Exit(1)
}
