// Command cloudbench runs cloudscope's standardized benchmark matrix —
// world synthesis, DNS discovery, and border-capture generation and
// analysis across world sizes and worker counts, plus a chaos-overhead
// leg — and writes a schema-versioned BENCH_<date>.json snapshot.
//
// Committing the snapshot at the repo root turns perf into a tracked
// trajectory: the next change runs
//
//	cloudbench -compare BENCH_2026-08-08.json
//
// and gets a per-metric delta table, exiting nonzero when any metric
// regressed beyond the threshold (default 10%). Use -advisory in noisy
// environments (CI under -race) to print the table without gating.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cloudscope/internal/bench"
)

func main() {
	var (
		sizes        = flag.String("sizes", "1000,10000,100000", "comma-separated world sizes")
		workers      = flag.String("workers", "1,4,0", "comma-separated worker bounds (0 = GOMAXPROCS, reported as \"max\")")
		reps         = flag.Int("reps", 1, "repetitions per cell; best value kept")
		seed         = flag.Int64("seed", 1, "world seed")
		vantages     = flag.Int("vantages", 10, "discovery vantage count")
		discoveryMax = flag.Int("discovery-max", 10000, "largest world size to run the discovery and chaos legs at")
		chaosName    = flag.String("chaos", "flaky-internet", "fault scenario for the chaos-overhead leg (empty = skip)")
		captureChaos = flag.String("capture-chaos", "hostile-capture", "fault scenario for the capture-fault leg: pcap generation + analysis under capture-layer faults vs clean (empty = skip)")
		streamSizes  = flag.String("stream-sizes", "", "comma-separated world sizes for the streaming world-build leg (peak_rss_vs_world_size cells; empty = skip)")
		streamChunk  = flag.Int("stream-chunk", 4096, "chunk size for the streaming leg")
		serveLeg     = flag.Bool("serve", false, "run the query-daemon leg: cloudscoped over loopback, warmed, driven closed-loop (serve_req_per_s, serve_p50/p99_ms, cache hit ratio)")
		serveReqs    = flag.Int("serve-requests", 2000, "request budget per rep for the -serve leg")
		out          = flag.String("out", "", "snapshot output path (default BENCH_<today>.json; \"-\" = stdout only)")
		compare      = flag.String("compare", "", "old snapshot to compare this run against")
		threshold    = flag.Float64("threshold", 10, "regression threshold in percent for -compare")
		advisory     = flag.Bool("advisory", false, "with -compare, report regressions but exit 0")
		quiet        = flag.Bool("q", false, "suppress per-cell progress on stderr")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: cloudbench [flags]   (see cloudbench -help)")
		os.Exit(2)
	}

	cfg := bench.MatrixConfig{
		Reps:          *reps,
		Seed:          *seed,
		Vantages:      *vantages,
		DiscoveryMax:  *discoveryMax,
		Chaos:         *chaosName,
		CaptureChaos:  *captureChaos,
		StreamChunk:   *streamChunk,
		Serve:         *serveLeg,
		ServeRequests: *serveReqs,
	}
	var err error
	if cfg.Sizes, err = csvInts(*sizes); err != nil {
		fatal(fmt.Errorf("-sizes: %w", err))
	}
	if *streamSizes != "" {
		if cfg.StreamSizes, err = csvInts(*streamSizes); err != nil {
			fatal(fmt.Errorf("-stream-sizes: %w", err))
		}
	}
	if cfg.Workers, err = csvInts(*workers); err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	// Read the baseline before spending minutes on the matrix.
	var oldSnap *bench.Snapshot
	if *compare != "" {
		if oldSnap, err = bench.ReadFile(*compare); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	snap, err := bench.Run(cfg)
	if err != nil {
		fatal(err)
	}
	snap.CreatedAt = start.UTC().Format(time.RFC3339)

	path := *out
	if path == "" {
		path = "BENCH_" + start.UTC().Format("2006-01-02") + ".json"
	}
	if path == "-" {
		if _, err := snap.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		if err := snap.WriteFile(path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d metrics, %s)\n", path, len(snap.Metrics), time.Since(start).Round(time.Millisecond))
	}

	if oldSnap != nil {
		cmp := bench.Compare(oldSnap, snap, *threshold)
		fmt.Printf("\ncomparing against %s:\n\n%s", *compare, cmp.Table())
		if len(cmp.Regressions()) > 0 && !*advisory {
			os.Exit(1)
		}
	}
}

func csvInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("negative value %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cloudbench:", err)
	os.Exit(1)
}
