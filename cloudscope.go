// Package cloudscope reproduces the measurement study "Next Stop, the
// Cloud: Understanding Modern Web Service Deployment in EC2 and Azure"
// (He et al., IMC 2013) as a runnable system: a synthetic Internet
// (DNS, two IaaS clouds, a wide-area network, a campus border tap)
// whose ground truth follows the paper's published distributions, and
// the paper's full measurement methodology executed against it.
//
// The entry point is a Study:
//
//	study := cloudscope.NewStudy(cloudscope.DefaultConfig().WithDomains(5000))
//	ds := study.Dataset()            // §2.1 discovery pipeline
//	fmt.Print(study.Breakdown().Table3())
//
// Every numbered table and figure of the paper has a registered
// experiment; see Experiments and cmd/experiments. Long-running
// consumers (the cloudscoped daemon) use the *Context accessor
// variants, which abort stage compute when the request is cancelled.
package cloudscope

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cloudscope/internal/capture"
	"cloudscope/internal/cartography"
	"cloudscope/internal/chaos"
	"cloudscope/internal/chaos/trace"
	"cloudscope/internal/cloud"
	"cloudscope/internal/core/classify"
	"cloudscope/internal/core/dataset"
	"cloudscope/internal/core/patterns"
	"cloudscope/internal/core/regions"
	"cloudscope/internal/core/wanperf"
	"cloudscope/internal/core/zones"
	"cloudscope/internal/deploy"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
	"cloudscope/internal/simnet"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/wan"
)

// Config parameterizes a Study. Zero values are filled from
// DefaultConfig; construct with DefaultConfig and the With* helpers.
type Config struct {
	// Seed drives every generator; identical configs are bit-for-bit
	// reproducible.
	Seed int64
	// Domains is the ranked-list size ("top 1M" scaled; default 20000).
	Domains int
	// Vantages is the distributed-resolution vantage count (paper: 200).
	Vantages int
	// CaptureFlows sizes the synthetic border capture (default 30000).
	CaptureFlows int
	// WANClients is the PlanetLab client count for §5 (paper: 80).
	WANClients int
	// Workers bounds the analysis stages' fan-out: 0 uses GOMAXPROCS,
	// 1 forces the exact sequential path. Results are bit-identical at
	// every setting; see internal/parallel.
	Workers int
	// NoTelemetry disables the study's metrics registry and span tracer.
	// The default (telemetry on) costs a few atomic increments per probe;
	// see BenchmarkTelemetryOverhead.
	NoTelemetry bool
	// Chaos, when non-nil, runs the whole study under that fault
	// scenario: the fabric drops and forges datagrams, vantages and
	// accounts go dark mid-campaign, regions brown out, and the border
	// capture suffers truncated flows, forged mid-stream resets,
	// re-ordered segments, corrupted frames, and dropped records
	// (cap-* fault kinds). Outputs stay
	// bit-identical at every worker count; Completeness reports what the
	// faults cost. See internal/chaos.
	Chaos *chaos.Scenario
	// ChaosRecord arms fault-trace recording: every faulting verdict the
	// chaos engine emits is captured, and FaultTrace returns the
	// canonical trace after the run. Ignored without Chaos.
	ChaosRecord bool
	// ChaosReplay, when non-nil, replaces the hash-drawn chaos engine
	// with one that re-injects this recorded trace verbatim (Chaos and
	// ChaosRecord are then ignored). Replaying the trace of a recorded
	// run — same Seed and sizing — reproduces that run's outputs
	// byte-identically, even across engine or scenario changes. See
	// internal/chaos/trace.
	ChaosReplay *trace.Trace
}

// DefaultConfig returns a library-scale configuration: large enough for
// every distribution to be visible, small enough to run in seconds.
func DefaultConfig() Config {
	return Config{Seed: 1, Domains: 20000, Vantages: 200, CaptureFlows: 30000, WANClients: 80}
}

// WithDomains returns the config with a different list size.
func (c Config) WithDomains(n int) Config { c.Domains = n; return c }

// WithSeed returns the config reseeded.
func (c Config) WithSeed(seed int64) Config { c.Seed = seed; return c }

// WithWorkers returns the config with a different fan-out bound
// (0 = GOMAXPROCS, 1 = sequential).
func (c Config) WithWorkers(n int) Config { c.Workers = n; return c }

// WithChaos returns the config running under a fault scenario.
func (c Config) WithChaos(sc *chaos.Scenario) Config { c.Chaos = sc; return c }

// FieldError reports one invalid Config field: which field, the value
// it held, and what is wrong with it.
type FieldError struct {
	Field  string
	Value  any
	Reason string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("config.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// ValidationError aggregates every invalid Config field, so a caller
// sees all problems at once instead of fixing them one run at a time.
type ValidationError struct {
	Fields []*FieldError
}

func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return "cloudscope: invalid config: " + strings.Join(msgs, "; ")
}

// Unwrap exposes the individual field errors to errors.Is/As.
func (e *ValidationError) Unwrap() []error {
	errs := make([]error, len(e.Fields))
	for i, f := range e.Fields {
		errs[i] = f
	}
	return errs
}

// Validate checks the config for impossible sizings and conflicting
// option combinations, returning a *ValidationError naming every bad
// field. Zero sizing values are valid — NewStudy fills them from
// DefaultConfig — but negative ones never are. NewStudy panics on an
// invalid config (a programmer error); commands validate first and
// print the typed error instead.
func (c Config) Validate() error {
	var fields []*FieldError
	add := func(field string, value any, reason string) {
		fields = append(fields, &FieldError{Field: field, Value: value, Reason: reason})
	}
	if c.Domains < 0 {
		add("Domains", c.Domains, "ranked-list size cannot be negative (0 selects the default)")
	}
	if c.Vantages < 0 {
		add("Vantages", c.Vantages, "vantage count cannot be negative (0 selects the default)")
	}
	if c.CaptureFlows < 0 {
		add("CaptureFlows", c.CaptureFlows, "capture flow count cannot be negative (0 selects the default)")
	}
	if c.WANClients < 0 {
		add("WANClients", c.WANClients, "WAN client count cannot be negative (0 selects the default)")
	}
	if c.Workers < 0 {
		add("Workers", c.Workers, "worker bound cannot be negative (0 means GOMAXPROCS)")
	}
	if c.Chaos != nil && c.ChaosReplay != nil {
		add("ChaosReplay", "<trace>", "a replayed trace conflicts with a live Chaos scenario; set only one")
	}
	if c.ChaosRecord && c.Chaos == nil {
		add("ChaosRecord", true, "recording needs a Chaos scenario to draw faults from")
	}
	if len(fields) == 0 {
		return nil
	}
	return &ValidationError{Fields: fields}
}

// withDefaults fills zero sizing fields from DefaultConfig.
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
	if c.Domains == 0 {
		c.Domains = def.Domains
	}
	if c.Vantages == 0 {
		c.Vantages = def.Vantages
	}
	if c.CaptureFlows == 0 {
		c.CaptureFlows = def.CaptureFlows
	}
	if c.WANClients == 0 {
		c.WANClients = def.WANClients
	}
	return c
}

// stageCell memoizes one pipeline stage's result. Unlike sync.Once it
// memoizes only success: a build aborted by context cancellation
// leaves the cell empty, so the next caller retries under its own
// context. The mutex doubles as single-flight — concurrent callers of
// the same stage wait for the in-progress build instead of duplicating
// it.
type stageCell[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
}

// get returns the memoized value, building it under ctx if needed.
func (c *stageCell[T]) get(ctx context.Context, build func() (T, error)) (T, error) {
	var zero T
	if err := ctxErr(ctx); err != nil {
		return zero, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.val, nil
	}
	// Re-check after the wait: the caller may have been cancelled while
	// another request's build held the lock.
	if err := ctxErr(ctx); err != nil {
		return zero, err
	}
	v, err := build()
	if err != nil {
		return zero, err
	}
	c.val, c.done = v, true
	return v, nil
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// recoverCancel runs fn, converting a context-cancellation panic — the
// pipeline stages re-raise worker errors, and with a cancellable
// parallel.Options.Ctx those errors are context errors — back into an
// ordinary error return. Any other panic propagates.
func recoverCancel[T any](fn func() T) (out T, err error) {
	defer func() {
		if v := recover(); v != nil {
			if e, ok := v.(error); ok && (errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded)) {
				err = e
				return
			}
			panic(v)
		}
	}()
	return fn(), nil
}

// must unwraps a stage result whose build ran without a cancellable
// context, where errors are impossible by construction.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// captureResult pairs the capture stage's two outputs in one cell.
type captureResult struct {
	truth *capture.Truth
	an    *capture.Analysis
}

// Study runs the paper's pipeline over one generated world. All stages
// are computed lazily and memoized; a Study is safe for concurrent use.
// Each accessor has a *Context variant that aborts stage compute (via
// internal/parallel's between-shard cancellation) when ctx is
// cancelled; an aborted stage is retried by the next caller.
type Study struct {
	Cfg Config

	// tel is the study's observability handle (nil with NoTelemetry);
	// dnsMetrics is shared by every resolver the pipeline creates, and
	// simClock is published once the world's fabric exists so spans can
	// charge simulated time.
	tel        *telemetry.Telemetry
	dnsMetrics *dnssrv.ResolverMetrics
	simClock   atomic.Pointer[simnet.Clock]

	// eng is the fault engine built from Cfg.Chaos or Cfg.ChaosReplay
	// (nil without either); rec captures its verdicts under ChaosRecord.
	eng *chaos.Engine
	rec *trace.Recorder

	world    stageCell[*deploy.World]
	ds       stageCell[*dataset.Dataset]
	det      stageCell[*patterns.Result]
	reg      stageCell[*regions.Analysis]
	zone     stageCell[*zones.Study]
	capt     stageCell[captureResult]
	ns       stageCell[*patterns.NSAnalysis]
	campaign stageCell[*wanperf.Campaign]
}

// NewStudy creates a Study; the world is generated on first use. It
// panics when cfg fails Validate — call Validate first to handle the
// typed error.
func NewStudy(cfg Config) *Study {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	s := &Study{Cfg: cfg}
	if !cfg.NoTelemetry {
		s.tel = telemetry.New()
		s.tel.Tracer().SetSimClock(func() time.Time {
			if c := s.simClock.Load(); c != nil {
				return c.Now()
			}
			return time.Time{}
		})
		s.dnsMetrics = dnssrv.NewResolverMetrics(s.tel.Registry())
	}
	if cfg.ChaosReplay != nil {
		s.eng = chaos.NewReplay(cfg.ChaosReplay)
	} else {
		s.eng = chaos.New(cfg.Chaos, cfg.Seed)
		if cfg.ChaosRecord && s.eng != nil {
			s.rec = trace.NewRecorder(trace.Header{
				Scenario: cfg.Chaos.Name,
				Spec:     cfg.Chaos.String(),
				Seed:     cfg.Seed,
			})
			s.eng.SetRecorder(s.rec)
		}
	}
	return s
}

// Chaos returns the study's fault engine (nil when no scenario is set).
func (s *Study) Chaos() *chaos.Engine { return s.eng }

// FaultTrace returns the canonical fault trace recorded so far (run the
// experiments first, then snapshot). Nil unless the study was built
// with ChaosRecord and a scenario. Replaying the returned trace with
// the same Config reproduces this run's outputs byte-identically.
func (s *Study) FaultTrace() *trace.Trace { return s.rec.Snapshot() }

// WriteFaultTrace writes the recorded fault trace to path in the JSONL
// trace format (see internal/chaos/trace). It errors when the study is
// not recording.
func (s *Study) WriteFaultTrace(path string) error {
	tr := s.FaultTrace()
	if tr == nil {
		return errNotRecording
	}
	return tr.WriteFile(path)
}

var errNotRecording = errors.New("cloudscope: study is not recording a fault trace (set Config.ChaosRecord with a Chaos scenario)")

// BisectFaultTrace delta-debugs a recorded fault trace: it returns a
// locally-minimal sub-trace whose replay under cfg still makes pred
// true, plus the number of study runs spent. pred is handed a fresh
// Study replaying each candidate; typical predicates re-run an
// experiment and compare against a fault-free golden, or check
// Completeness().Degraded(). cfg's own Chaos/ChaosRecord/ChaosReplay
// are overridden per candidate.
func BisectFaultTrace(cfg Config, tr *trace.Trace, pred func(*Study) bool) (*trace.Trace, int) {
	return trace.Minimize(tr, func(cand *trace.Trace) bool {
		c := cfg
		c.Chaos, c.ChaosRecord, c.ChaosReplay = nil, false, cand
		return pred(NewStudy(c))
	})
}

// Completeness returns the study's measurement-coverage accounting: how
// much of each stage's planned probing was attempted, retried, and
// abandoned. Nil with NoTelemetry; empty until stages run.
func (s *Study) Completeness() *telemetry.Completeness { return s.tel.Completeness() }

// Par builds the fan-out options a pipeline stage should run with: the
// study's worker bound plus that stage's parallel.<stage>.* instruments
// (inert when telemetry is off). Use it to run the measurement
// libraries' options-struct entry points (wanperf.Options.Par,
// cartography.Options.Par, zones.Config.Par) under a study's worker
// budget and metrics; results are bit-identical at every worker count.
func (s *Study) Par(stage string) parallel.Options {
	return parallel.Options{
		Workers: s.Cfg.Workers,
		Metrics: parallel.NewMetrics(s.tel.Registry(), stage).WithSpans(s.tel.Tracer()),
	}
}

// par is the internal shorthand for Par.
func (s *Study) par(stage string) parallel.Options { return s.Par(stage) }

// parCtx is Par bound to a request context: the stage's fan-out aborts
// between shards once ctx is cancelled.
func (s *Study) parCtx(ctx context.Context, stage string) parallel.Options {
	opt := s.Par(stage)
	opt.Ctx = ctx
	return opt
}

// Telemetry returns the study's observability handle: the metric
// registry every instrumented layer (fabric, resolvers, cloud and WAN
// probing) reports into, and the tracer holding the per-stage span
// tree. It is nil when the study was built with NoTelemetry.
func (s *Study) Telemetry() *telemetry.Telemetry { return s.tel }

// World returns the generated ground-truth world.
func (s *Study) World() *deploy.World { return must(s.WorldContext(context.Background())) }

// WorldContext is World under a cancellable context: generation aborts
// between shards when ctx is cancelled, and the next caller retries.
func (s *Study) WorldContext(ctx context.Context) (*deploy.World, error) {
	return s.world.get(ctx, func() (*deploy.World, error) {
		return recoverCancel(func() *deploy.World {
			defer s.tel.StartSpan("study/world").End()
			wcfg := deploy.DefaultConfig().Scaled(s.Cfg.Domains)
			wcfg.Seed = s.Cfg.Seed
			wcfg.Par = s.parCtx(ctx, "world")
			w := deploy.Generate(wcfg)
			s.simClock.Store(w.Fabric.Clock())
			if s.eng != nil {
				w.Fabric.SetInterceptor(s.eng)
			}
			if s.tel != nil {
				reg := s.tel.Registry()
				w.Fabric.SetMetrics(simnet.NewFabricMetrics(reg))
				w.EC2.SetMetrics(cloud.NewProbeMetrics(reg, "ec2"))
				w.Azure.SetMetrics(cloud.NewProbeMetrics(reg, "azure"))
			}
			return w
		})
	})
}

// Dataset runs the §2.1 discovery pipeline (memoized).
func (s *Study) Dataset() *dataset.Dataset { return must(s.DatasetContext(context.Background())) }

// DatasetContext is Dataset under a cancellable context.
func (s *Study) DatasetContext(ctx context.Context) (*dataset.Dataset, error) {
	return s.ds.get(ctx, func() (*dataset.Dataset, error) {
		w, err := s.WorldContext(ctx) // before the span, so the simulated clock is wired
		if err != nil {
			return nil, err
		}
		return recoverCancel(func() *dataset.Dataset {
			sp := s.tel.StartSpan("study/dataset")
			defer sp.End()
			names := make([]string, 0, len(w.Domains))
			for _, d := range w.Domains {
				names = append(names, d.Name)
			}
			dcfg := dataset.Config{
				Fabric:       w.Fabric,
				Registry:     w.Registry,
				Ranges:       w.Ranges,
				Domains:      names,
				Vantages:     s.Cfg.Vantages,
				Metrics:      s.dnsMetrics,
				Workers:      s.Cfg.Workers,
				Ctx:          ctx,
				ParMetrics:   parallel.NewMetrics(s.tel.Registry(), "dataset").WithSpans(s.tel.Tracer()),
				Completeness: s.tel.Completeness(),
			}
			if s.eng != nil {
				// Under chaos the pipeline hardens: retries with backoff,
				// a generous per-domain budget so pathological domains
				// cannot stall the crawl, and a per-vantage breaker.
				dcfg.Chaos = s.eng
				dcfg.Backoff = dnssrv.Backoff{MaxAttempts: 6, Base: 100 * time.Millisecond, Max: 2 * time.Second}
				dcfg.MaxQueriesPerDomain = 4096
				dcfg.DomainDeadline = 10 * time.Minute
				dcfg.BreakerFailures = 4
			}
			return dataset.Build(dcfg)
		})
	})
}

// Detection runs §4.1's pattern heuristics (memoized).
func (s *Study) Detection() *patterns.Result { return must(s.DetectionContext(context.Background())) }

// DetectionContext is Detection under a cancellable context.
func (s *Study) DetectionContext(ctx context.Context) (*patterns.Result, error) {
	return s.det.get(ctx, func() (*patterns.Result, error) {
		ds, err := s.DatasetContext(ctx) // resolve dependencies outside the span
		if err != nil {
			return nil, err
		}
		return recoverCancel(func() *patterns.Result {
			defer s.tel.StartSpan("study/detect").End()
			return patterns.DetectAllPar(ds, s.parCtx(ctx, "detect"))
		})
	})
}

// Breakdown computes Table 3.
func (s *Study) Breakdown() *classify.Breakdown {
	return must(s.BreakdownContext(context.Background()))
}

// BreakdownContext is Breakdown under a cancellable context.
func (s *Study) BreakdownContext(ctx context.Context) (*classify.Breakdown, error) {
	ds, err := s.DatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	defer s.tel.StartSpan("study/classify").End()
	return classify.Classify(ds), nil
}

// Regions runs §4.2's region mapping (memoized).
func (s *Study) Regions() *regions.Analysis { return must(s.RegionsContext(context.Background())) }

// RegionsContext is Regions under a cancellable context.
func (s *Study) RegionsContext(ctx context.Context) (*regions.Analysis, error) {
	return s.reg.get(ctx, func() (*regions.Analysis, error) {
		ds, err := s.DatasetContext(ctx)
		if err != nil {
			return nil, err
		}
		det, err := s.DetectionContext(ctx)
		if err != nil {
			return nil, err
		}
		return recoverCancel(func() *regions.Analysis {
			defer s.tel.StartSpan("study/regions").End()
			return regions.AnalyzePar(ds, det, s.parCtx(ctx, "regions"))
		})
	})
}

// Zones runs §4.3's cartography study (memoized).
func (s *Study) Zones() *zones.Study { return must(s.ZonesContext(context.Background())) }

// ZonesContext is Zones under a cancellable context.
func (s *Study) ZonesContext(ctx context.Context) (*zones.Study, error) {
	return s.zone.get(ctx, func() (*zones.Study, error) {
		ds, err := s.DatasetContext(ctx)
		if err != nil {
			return nil, err
		}
		det, err := s.DetectionContext(ctx)
		if err != nil {
			return nil, err
		}
		w, err := s.WorldContext(ctx)
		if err != nil {
			return nil, err
		}
		return recoverCancel(func() *zones.Study {
			defer s.tel.StartSpan("study/zones").End()
			cfg := zones.DefaultConfig()
			cfg.Seed = s.Cfg.Seed
			cfg.Par = s.parCtx(ctx, "zones")
			cfg.Chaos = s.eng
			cfg.Completeness = s.tel.Completeness()
			return zones.Run(ds, det, w.EC2, cfg)
		})
	})
}

// NameServers runs §4.1's DNS-hosting analysis (memoized).
func (s *Study) NameServers() *patterns.NSAnalysis {
	return must(s.NameServersContext(context.Background()))
}

// NameServersContext is NameServers under a cancellable context.
func (s *Study) NameServersContext(ctx context.Context) (*patterns.NSAnalysis, error) {
	return s.ns.get(ctx, func() (*patterns.NSAnalysis, error) {
		w, err := s.WorldContext(ctx)
		if err != nil {
			return nil, err
		}
		ds, err := s.DatasetContext(ctx)
		if err != nil {
			return nil, err
		}
		return recoverCancel(func() *patterns.NSAnalysis {
			defer s.tel.StartSpan("study/nameservers").End()
			return patterns.AnalyzeNSPar(ds, w.Fabric, w.Registry, 50, s.dnsMetrics, s.parCtx(ctx, "nameservers"))
		})
	})
}

// Capture generates and analyzes the border trace (memoized). The pcap
// bytes are ephemeral; use WriteCapture to keep them.
func (s *Study) Capture() (*capture.Truth, *capture.Analysis) {
	r, err := s.CaptureContext(context.Background())
	if err != nil {
		panic(err)
	}
	return r.truth, r.an
}

// CaptureContext is Capture under a cancellable context.
func (s *Study) CaptureContext(ctx context.Context) (captureResult, error) {
	return s.capt.get(ctx, func() (captureResult, error) {
		w, err := s.WorldContext(ctx)
		if err != nil {
			return captureResult{}, err
		}
		return recoverCancel(func() captureResult {
			defer s.tel.StartSpan("study/capture").End()
			ccfg := capture.DefaultConfig()
			ccfg.Seed = s.Cfg.Seed
			ccfg.Flows = s.Cfg.CaptureFlows
			ccfg.Par = s.parCtx(ctx, "capture")
			ccfg.Chaos = s.eng
			var buf bytes.Buffer
			g := capture.NewGenerator(ccfg, w)
			truth, err := g.Generate(pcapio.NewWriter(&buf, ccfg.Snaplen))
			if err != nil {
				panic(err) // bytes.Buffer writes cannot fail
			}
			an, err := capture.AnalyzeOpts(&buf, w.Ranges, capture.AnalyzeOptions{
				Par:          s.parCtx(ctx, "capture_analyze"),
				Completeness: s.tel.Completeness(),
			})
			if err != nil {
				panic(err)
			}
			return captureResult{truth: truth, an: an}
		})
	})
}

// Truth returns the capture result's ground truth.
func (r captureResult) Truth() *capture.Truth { return r.truth }

// Analysis returns the capture result's analyzer output.
func (r captureResult) Analysis() *capture.Analysis { return r.an }

// WriteCapture streams a fresh pcap of the study's capture to w.
type pcapWriter interface{ Write(p []byte) (int, error) }

// WriteCapture writes the synthetic border capture in pcap format.
func (s *Study) WriteCapture(w pcapWriter) (*capture.Truth, error) {
	ccfg := capture.DefaultConfig()
	ccfg.Seed = s.Cfg.Seed
	ccfg.Flows = s.Cfg.CaptureFlows
	ccfg.Par = s.par("capture")
	ccfg.Chaos = s.eng
	g := capture.NewGenerator(ccfg, s.World())
	return g.Generate(pcapio.NewWriter(w, ccfg.Snaplen))
}

// Campaign returns the §5 wide-area measurement campaign (memoized).
func (s *Study) Campaign() *wanperf.Campaign {
	return must(s.campaignBase(context.Background()))
}

// CampaignContext is Campaign under a cancellable context: the
// returned value shares the memoized campaign's model and seeding but
// carries its own fan-out options bound to ctx, so matrix and
// time-series computation aborts between shards when the request is
// cancelled. The memoized campaign itself stays context-free.
func (s *Study) CampaignContext(ctx context.Context) (*wanperf.Campaign, error) {
	c, err := s.campaignBase(ctx)
	if err != nil {
		return nil, err
	}
	cc := *c
	cc.Par.Ctx = ctx
	return &cc, nil
}

func (s *Study) campaignBase(ctx context.Context) (*wanperf.Campaign, error) {
	return s.campaign.get(ctx, func() (*wanperf.Campaign, error) {
		defer s.tel.StartSpan("study/wanperf").End()
		c := wanperf.NewCampaign(s.Cfg.Seed, s.Cfg.WANClients, ipranges.EC2Regions)
		c.Par = s.par("wanperf")
		c.Model.Par = s.par("wanperf")
		if s.tel != nil {
			c.Model.SetMetrics(wan.NewMetrics(s.tel.Registry()))
		}
		if s.eng != nil {
			c.Chaos = s.eng
			c.Completeness = s.tel.Completeness()
			// Regional brownouts reach the WAN model as extra path
			// delay; the fault phase is the campaign-time fraction, a
			// pure function of t.
			eng, start := s.eng, c.Start
			span := c.Interval * time.Duration(c.Rounds)
			c.Model.SetChaos(func(_, region string, t time.Time) float64 {
				phase := float64(t.Sub(start)) / float64(span)
				if phase < 0 {
					phase = 0
				} else if phase > 1 {
					phase = 1
				}
				return eng.RegionExtraMs(region, phase)
			})
		}
		return c, nil
	})
}

// RankOf implements the classify and regions Ranker interfaces against
// the study's ranked list.
func (s *Study) RankOf(domain string) int {
	if d, ok := s.World().List.Lookup(domain); ok {
		return d.Rank
	}
	return 0
}

// ZoneIdentification re-exports the combined cartography result.
func (s *Study) ZoneIdentification() *cartography.CombinedResult { return s.Zones().Combined }
