// Package cloudscope reproduces the measurement study "Next Stop, the
// Cloud: Understanding Modern Web Service Deployment in EC2 and Azure"
// (He et al., IMC 2013) as a runnable system: a synthetic Internet
// (DNS, two IaaS clouds, a wide-area network, a campus border tap)
// whose ground truth follows the paper's published distributions, and
// the paper's full measurement methodology executed against it.
//
// The entry point is a Study:
//
//	study := cloudscope.NewStudy(cloudscope.DefaultConfig().WithDomains(5000))
//	ds := study.Dataset()            // §2.1 discovery pipeline
//	fmt.Print(study.Breakdown().Table3())
//
// Every numbered table and figure of the paper has a registered
// experiment; see Experiments and cmd/experiments.
package cloudscope

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"cloudscope/internal/capture"
	"cloudscope/internal/cartography"
	"cloudscope/internal/chaos"
	"cloudscope/internal/chaos/trace"
	"cloudscope/internal/cloud"
	"cloudscope/internal/core/classify"
	"cloudscope/internal/core/dataset"
	"cloudscope/internal/core/patterns"
	"cloudscope/internal/core/regions"
	"cloudscope/internal/core/wanperf"
	"cloudscope/internal/core/zones"
	"cloudscope/internal/deploy"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
	"cloudscope/internal/simnet"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/wan"
)

// Config parameterizes a Study. Zero values are filled from
// DefaultConfig; construct with DefaultConfig and the With* helpers.
type Config struct {
	// Seed drives every generator; identical configs are bit-for-bit
	// reproducible.
	Seed int64
	// Domains is the ranked-list size ("top 1M" scaled; default 20000).
	Domains int
	// Vantages is the distributed-resolution vantage count (paper: 200).
	Vantages int
	// CaptureFlows sizes the synthetic border capture (default 30000).
	CaptureFlows int
	// WANClients is the PlanetLab client count for §5 (paper: 80).
	WANClients int
	// Workers bounds the analysis stages' fan-out: 0 uses GOMAXPROCS,
	// 1 forces the exact sequential path. Results are bit-identical at
	// every setting; see internal/parallel.
	Workers int
	// NoTelemetry disables the study's metrics registry and span tracer.
	// The default (telemetry on) costs a few atomic increments per probe;
	// see BenchmarkTelemetryOverhead.
	NoTelemetry bool
	// Chaos, when non-nil, runs the whole study under that fault
	// scenario: the fabric drops and forges datagrams, vantages and
	// accounts go dark mid-campaign, regions brown out, and the border
	// capture suffers truncated flows, forged mid-stream resets,
	// re-ordered segments, corrupted frames, and dropped records
	// (cap-* fault kinds). Outputs stay
	// bit-identical at every worker count; Completeness reports what the
	// faults cost. See internal/chaos.
	Chaos *chaos.Scenario
	// ChaosRecord arms fault-trace recording: every faulting verdict the
	// chaos engine emits is captured, and FaultTrace returns the
	// canonical trace after the run. Ignored without Chaos.
	ChaosRecord bool
	// ChaosReplay, when non-nil, replaces the hash-drawn chaos engine
	// with one that re-injects this recorded trace verbatim (Chaos and
	// ChaosRecord are then ignored). Replaying the trace of a recorded
	// run — same Seed and sizing — reproduces that run's outputs
	// byte-identically, even across engine or scenario changes. See
	// internal/chaos/trace.
	ChaosReplay *trace.Trace
}

// DefaultConfig returns a library-scale configuration: large enough for
// every distribution to be visible, small enough to run in seconds.
func DefaultConfig() Config {
	return Config{Seed: 1, Domains: 20000, Vantages: 200, CaptureFlows: 30000, WANClients: 80}
}

// WithDomains returns the config with a different list size.
func (c Config) WithDomains(n int) Config { c.Domains = n; return c }

// WithSeed returns the config reseeded.
func (c Config) WithSeed(seed int64) Config { c.Seed = seed; return c }

// WithWorkers returns the config with a different fan-out bound
// (0 = GOMAXPROCS, 1 = sequential).
func (c Config) WithWorkers(n int) Config { c.Workers = n; return c }

// WithChaos returns the config running under a fault scenario.
func (c Config) WithChaos(sc *chaos.Scenario) Config { c.Chaos = sc; return c }

// Study runs the paper's pipeline over one generated world. All stages
// are computed lazily and memoized; a Study is safe for concurrent use.
type Study struct {
	Cfg Config

	// tel is the study's observability handle (nil with NoTelemetry);
	// dnsMetrics is shared by every resolver the pipeline creates, and
	// simClock is published once the world's fabric exists so spans can
	// charge simulated time.
	tel        *telemetry.Telemetry
	dnsMetrics *dnssrv.ResolverMetrics
	simClock   atomic.Pointer[simnet.Clock]

	// eng is the fault engine built from Cfg.Chaos or Cfg.ChaosReplay
	// (nil without either); rec captures its verdicts under ChaosRecord.
	eng *chaos.Engine
	rec *trace.Recorder

	worldOnce sync.Once
	world     *deploy.World

	dsOnce sync.Once
	ds     *dataset.Dataset

	detOnce sync.Once
	det     *patterns.Result

	regOnce sync.Once
	reg     *regions.Analysis

	zoneOnce sync.Once
	zone     *zones.Study

	capOnce  sync.Once
	capTruth *capture.Truth
	capAn    *capture.Analysis

	nsOnce sync.Once
	ns     *patterns.NSAnalysis

	campaignOnce sync.Once
	campaign     *wanperf.Campaign
}

// NewStudy creates a Study; the world is generated on first use.
func NewStudy(cfg Config) *Study {
	def := DefaultConfig()
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.Domains == 0 {
		cfg.Domains = def.Domains
	}
	if cfg.Vantages == 0 {
		cfg.Vantages = def.Vantages
	}
	if cfg.CaptureFlows == 0 {
		cfg.CaptureFlows = def.CaptureFlows
	}
	if cfg.WANClients == 0 {
		cfg.WANClients = def.WANClients
	}
	s := &Study{Cfg: cfg}
	if !cfg.NoTelemetry {
		s.tel = telemetry.New()
		s.tel.Tracer().SetSimClock(func() time.Time {
			if c := s.simClock.Load(); c != nil {
				return c.Now()
			}
			return time.Time{}
		})
		s.dnsMetrics = dnssrv.NewResolverMetrics(s.tel.Registry())
	}
	if cfg.ChaosReplay != nil {
		s.eng = chaos.NewReplay(cfg.ChaosReplay)
	} else {
		s.eng = chaos.New(cfg.Chaos, cfg.Seed)
		if cfg.ChaosRecord && s.eng != nil {
			s.rec = trace.NewRecorder(trace.Header{
				Scenario: cfg.Chaos.Name,
				Spec:     cfg.Chaos.String(),
				Seed:     cfg.Seed,
			})
			s.eng.SetRecorder(s.rec)
		}
	}
	return s
}

// Chaos returns the study's fault engine (nil when no scenario is set).
func (s *Study) Chaos() *chaos.Engine { return s.eng }

// FaultTrace returns the canonical fault trace recorded so far (run the
// experiments first, then snapshot). Nil unless the study was built
// with ChaosRecord and a scenario. Replaying the returned trace with
// the same Config reproduces this run's outputs byte-identically.
func (s *Study) FaultTrace() *trace.Trace { return s.rec.Snapshot() }

// WriteFaultTrace writes the recorded fault trace to path in the JSONL
// trace format (see internal/chaos/trace). It errors when the study is
// not recording.
func (s *Study) WriteFaultTrace(path string) error {
	tr := s.FaultTrace()
	if tr == nil {
		return errNotRecording
	}
	return tr.WriteFile(path)
}

var errNotRecording = errors.New("cloudscope: study is not recording a fault trace (set Config.ChaosRecord with a Chaos scenario)")

// BisectFaultTrace delta-debugs a recorded fault trace: it returns a
// locally-minimal sub-trace whose replay under cfg still makes pred
// true, plus the number of study runs spent. pred is handed a fresh
// Study replaying each candidate; typical predicates re-run an
// experiment and compare against a fault-free golden, or check
// Completeness().Degraded(). cfg's own Chaos/ChaosRecord/ChaosReplay
// are overridden per candidate.
func BisectFaultTrace(cfg Config, tr *trace.Trace, pred func(*Study) bool) (*trace.Trace, int) {
	return trace.Minimize(tr, func(cand *trace.Trace) bool {
		c := cfg
		c.Chaos, c.ChaosRecord, c.ChaosReplay = nil, false, cand
		return pred(NewStudy(c))
	})
}

// Completeness returns the study's measurement-coverage accounting: how
// much of each stage's planned probing was attempted, retried, and
// abandoned. Nil with NoTelemetry; empty until stages run.
func (s *Study) Completeness() *telemetry.Completeness { return s.tel.Completeness() }

// Par builds the fan-out options a pipeline stage should run with: the
// study's worker bound plus that stage's parallel.<stage>.* instruments
// (inert when telemetry is off). Use it to run the measurement
// libraries' options-struct entry points (wanperf.Options.Par,
// cartography.Options.Par, zones.Config.Par) under a study's worker
// budget and metrics; results are bit-identical at every worker count.
func (s *Study) Par(stage string) parallel.Options {
	return parallel.Options{
		Workers: s.Cfg.Workers,
		Metrics: parallel.NewMetrics(s.tel.Registry(), stage).WithSpans(s.tel.Tracer()),
	}
}

// par is the internal shorthand for Par.
func (s *Study) par(stage string) parallel.Options { return s.Par(stage) }

// Telemetry returns the study's observability handle: the metric
// registry every instrumented layer (fabric, resolvers, cloud and WAN
// probing) reports into, and the tracer holding the per-stage span
// tree. It is nil when the study was built with NoTelemetry.
func (s *Study) Telemetry() *telemetry.Telemetry { return s.tel }

// World returns the generated ground-truth world.
func (s *Study) World() *deploy.World {
	s.worldOnce.Do(func() {
		defer s.tel.StartSpan("study/world").End()
		wcfg := deploy.DefaultConfig().Scaled(s.Cfg.Domains)
		wcfg.Seed = s.Cfg.Seed
		wcfg.Par = s.par("world")
		s.world = deploy.Generate(wcfg)
		s.simClock.Store(s.world.Fabric.Clock())
		if s.eng != nil {
			s.world.Fabric.SetInterceptor(s.eng)
		}
		if s.tel != nil {
			reg := s.tel.Registry()
			s.world.Fabric.SetMetrics(simnet.NewFabricMetrics(reg))
			s.world.EC2.SetMetrics(cloud.NewProbeMetrics(reg, "ec2"))
			s.world.Azure.SetMetrics(cloud.NewProbeMetrics(reg, "azure"))
		}
	})
	return s.world
}

// Dataset runs the §2.1 discovery pipeline (memoized).
func (s *Study) Dataset() *dataset.Dataset {
	s.dsOnce.Do(func() {
		w := s.World() // before the span, so the simulated clock is wired
		sp := s.tel.StartSpan("study/dataset")
		defer sp.End()
		names := make([]string, 0, len(w.Domains))
		for _, d := range w.Domains {
			names = append(names, d.Name)
		}
		dcfg := dataset.Config{
			Fabric:       w.Fabric,
			Registry:     w.Registry,
			Ranges:       w.Ranges,
			Domains:      names,
			Vantages:     s.Cfg.Vantages,
			Metrics:      s.dnsMetrics,
			Workers:      s.Cfg.Workers,
			ParMetrics:   parallel.NewMetrics(s.tel.Registry(), "dataset").WithSpans(s.tel.Tracer()),
			Completeness: s.tel.Completeness(),
		}
		if s.eng != nil {
			// Under chaos the pipeline hardens: retries with backoff,
			// a generous per-domain budget so pathological domains
			// cannot stall the crawl, and a per-vantage breaker.
			dcfg.Chaos = s.eng
			dcfg.Backoff = dnssrv.Backoff{MaxAttempts: 6, Base: 100 * time.Millisecond, Max: 2 * time.Second}
			dcfg.MaxQueriesPerDomain = 4096
			dcfg.DomainDeadline = 10 * time.Minute
			dcfg.BreakerFailures = 4
		}
		s.ds = dataset.Build(dcfg)
	})
	return s.ds
}

// Detection runs §4.1's pattern heuristics (memoized).
func (s *Study) Detection() *patterns.Result {
	s.detOnce.Do(func() {
		ds := s.Dataset() // resolve dependencies outside the span
		defer s.tel.StartSpan("study/detect").End()
		s.det = patterns.DetectAllPar(ds, s.par("detect"))
	})
	return s.det
}

// Breakdown computes Table 3.
func (s *Study) Breakdown() *classify.Breakdown {
	ds := s.Dataset()
	defer s.tel.StartSpan("study/classify").End()
	return classify.Classify(ds)
}

// Regions runs §4.2's region mapping (memoized).
func (s *Study) Regions() *regions.Analysis {
	s.regOnce.Do(func() {
		ds, det := s.Dataset(), s.Detection()
		defer s.tel.StartSpan("study/regions").End()
		s.reg = regions.AnalyzePar(ds, det, s.par("regions"))
	})
	return s.reg
}

// Zones runs §4.3's cartography study (memoized).
func (s *Study) Zones() *zones.Study {
	s.zoneOnce.Do(func() {
		ds, det, ec2 := s.Dataset(), s.Detection(), s.World().EC2
		defer s.tel.StartSpan("study/zones").End()
		cfg := zones.DefaultConfig()
		cfg.Seed = s.Cfg.Seed
		cfg.Par = s.par("zones")
		cfg.Chaos = s.eng
		cfg.Completeness = s.tel.Completeness()
		s.zone = zones.Run(ds, det, ec2, cfg)
	})
	return s.zone
}

// NameServers runs §4.1's DNS-hosting analysis (memoized).
func (s *Study) NameServers() *patterns.NSAnalysis {
	s.nsOnce.Do(func() {
		w, ds := s.World(), s.Dataset()
		defer s.tel.StartSpan("study/nameservers").End()
		s.ns = patterns.AnalyzeNSPar(ds, w.Fabric, w.Registry, 50, s.dnsMetrics, s.par("nameservers"))
	})
	return s.ns
}

// Capture generates and analyzes the border trace (memoized). The pcap
// bytes are ephemeral; use WriteCapture to keep them.
func (s *Study) Capture() (*capture.Truth, *capture.Analysis) {
	s.capOnce.Do(func() {
		w := s.World()
		defer s.tel.StartSpan("study/capture").End()
		ccfg := capture.DefaultConfig()
		ccfg.Seed = s.Cfg.Seed
		ccfg.Flows = s.Cfg.CaptureFlows
		ccfg.Par = s.par("capture")
		ccfg.Chaos = s.eng
		var buf bytes.Buffer
		g := capture.NewGenerator(ccfg, w)
		truth, err := g.Generate(pcapio.NewWriter(&buf, ccfg.Snaplen))
		if err != nil {
			panic(err) // bytes.Buffer writes cannot fail
		}
		an, err := capture.AnalyzeOpts(&buf, w.Ranges, capture.AnalyzeOptions{
			Par:          s.par("capture_analyze"),
			Completeness: s.tel.Completeness(),
		})
		if err != nil {
			panic(err)
		}
		s.capTruth, s.capAn = truth, an
	})
	return s.capTruth, s.capAn
}

// WriteCapture streams a fresh pcap of the study's capture to w.
type pcapWriter interface{ Write(p []byte) (int, error) }

// WriteCapture writes the synthetic border capture in pcap format.
func (s *Study) WriteCapture(w pcapWriter) (*capture.Truth, error) {
	ccfg := capture.DefaultConfig()
	ccfg.Seed = s.Cfg.Seed
	ccfg.Flows = s.Cfg.CaptureFlows
	ccfg.Par = s.par("capture")
	ccfg.Chaos = s.eng
	g := capture.NewGenerator(ccfg, s.World())
	return g.Generate(pcapio.NewWriter(w, ccfg.Snaplen))
}

// Campaign returns the §5 wide-area measurement campaign (memoized).
func (s *Study) Campaign() *wanperf.Campaign {
	s.campaignOnce.Do(func() {
		defer s.tel.StartSpan("study/wanperf").End()
		s.campaign = wanperf.NewCampaign(s.Cfg.Seed, s.Cfg.WANClients, ipranges.EC2Regions)
		s.campaign.Par = s.par("wanperf")
		s.campaign.Model.Par = s.par("wanperf")
		if s.tel != nil {
			s.campaign.Model.SetMetrics(wan.NewMetrics(s.tel.Registry()))
		}
		if s.eng != nil {
			s.campaign.Chaos = s.eng
			s.campaign.Completeness = s.tel.Completeness()
			// Regional brownouts reach the WAN model as extra path
			// delay; the fault phase is the campaign-time fraction, a
			// pure function of t.
			eng, start := s.eng, s.campaign.Start
			span := s.campaign.Interval * time.Duration(s.campaign.Rounds)
			s.campaign.Model.SetChaos(func(_, region string, t time.Time) float64 {
				phase := float64(t.Sub(start)) / float64(span)
				if phase < 0 {
					phase = 0
				} else if phase > 1 {
					phase = 1
				}
				return eng.RegionExtraMs(region, phase)
			})
		}
	})
	return s.campaign
}

// RankOf implements the classify and regions Ranker interfaces against
// the study's ranked list.
func (s *Study) RankOf(domain string) int {
	if d, ok := s.World().List.Lookup(domain); ok {
		return d.Rank
	}
	return 0
}

// ZoneIdentification re-exports the combined cartography result.
func (s *Study) ZoneIdentification() *cartography.CombinedResult { return s.Zones().Combined }
