package cloudscope

import (
	"fmt"
	"sort"
	"strings"

	"cloudscope/internal/capture"
	"cloudscope/internal/core/backend"
	"cloudscope/internal/core/classify"
	"cloudscope/internal/core/traffic"
	"cloudscope/internal/core/wanperf"
	"cloudscope/internal/core/zones"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/stats"
	"cloudscope/internal/wan"
)

// Experiment regenerates one of the paper's numbered tables or figures.
type Experiment struct {
	// ID matches the paper's numbering: "table1" … "table16",
	// "figure3" … "figure12".
	ID    string
	Title string
	Run   func(s *Study) string
}

// instrumented wraps an experiment body in an "experiment/<id>" span on
// the study's tracer, so any pipeline stage the experiment triggers
// nests under it in the span tree. The span records simulated time as
// well as wall-clock — even when the experiment itself constructs the
// world, the tracer backfills the span's sim start at the clock's
// first non-zero reading — so parallel speedups show up as shrinking
// wall times against an unchanged sim duration.
func instrumented(id string, fn func(*Study) string) func(*Study) string {
	return func(s *Study) string {
		defer s.tel.StartSpan("experiment/" + id).End()
		return fn(s)
	}
}

// Experiments returns every registered experiment in paper order.
func Experiments() []Experiment {
	exps := []Experiment{
		{"table1", "Traffic share per cloud", runTable1},
		{"table2", "Traffic share per protocol", runTable2},
		{"table3", "Domains/subdomains by provider", runTable3},
		{"table4", "Top EC2-using domains by rank", runTable4},
		{"table5", "Top domains by HTTP(S) volume", runTable5},
		{"table6", "HTTP content types", runTable6},
		{"table7", "Cloud feature usage", runTable7},
		{"table8", "Feature usage of top EC2 domains", runTable8},
		{"table9", "Region usage", runTable9},
		{"table10", "Region usage of top domains", runTable10},
		{"table11", "Intra-cloud RTTs by zone and type", runTable11},
		{"table12", "Latency-based zone estimates", runTable12},
		{"table13", "Veracity of latency method", runTable13},
		{"table14", "Zone usage", runTable14},
		{"table15", "Zone usage of top domains", runTable15},
		{"table16", "Downstream ISPs per region/zone", runTable16},
		{"figure3", "Flow count and size CDFs", runFigure3},
		{"figure4", "Feature instances per subdomain CDFs", runFigure4},
		{"figure5", "DNS servers per subdomain CDF", runFigure5},
		{"figure6", "Regions per (sub)domain CDFs", runFigure6},
		{"figure7", "Internal-address/zone scatter", runFigure7},
		{"figure8", "Zones per (sub)domain CDFs", runFigure8},
		{"figure9", "Per-region throughput matrix", runFigure9},
		{"figure10", "Per-region latency matrix", runFigure10},
		{"figure11", "Best region over time (Boulder)", runFigure11},
		{"figure12", "Optimal k-region deployments", runFigure12},
		// Extensions beyond the paper's numbered results: its stated
		// implications (§3.3, §4.2, §4.3) and future work (§2) made
		// quantitative.
		{"ext-compression", "WAN compression savings over HTTP bodies (§3.3)", runExtCompression},
		{"ext-durations", "Flow duration distribution (§3.3)", runExtDurations},
		{"ext-outage", "Region/zone outage blast radius (§4.2/§4.3)", runExtOutage},
		{"ext-backend", "Back-end placement study (§2 future work)", runExtBackend},
	}
	for i := range exps {
		exps[i].Run = instrumented(exps[i].ID, exps[i].Run)
	}
	return exps
}

// RunExperiment executes one experiment by ID.
func (s *Study) RunExperiment(id string) (string, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(s), nil
		}
	}
	return "", fmt.Errorf("cloudscope: unknown experiment %q", id)
}

func runTable1(s *Study) string {
	_, an := s.Capture()
	return traffic.Table1(an).String()
}

func runTable2(s *Study) string {
	_, an := s.Capture()
	return traffic.Table2(an).String()
}

func runTable3(s *Study) string {
	return s.Breakdown().Table3().String()
}

func runTable4(s *Study) string {
	rows := classify.TopEC2Domains(s.Dataset(), s, 10)
	t := &stats.Table{
		Title:  "Table 4: top 10 (by rank) EC2-using domains",
		Header: []string{"Rank", "Domain", "Total # Subdom", "# EC2 Subdom"},
	}
	for _, r := range rows {
		t.AddRow(r.Rank, r.Domain, r.TotalSubs, r.CloudSubs)
	}
	return t.String()
}

func runTable5(s *Study) string {
	_, an := s.Capture()
	return traffic.Table5(an, 15).String()
}

func runTable6(s *Study) string {
	_, an := s.Capture()
	return traffic.Table6(an, 10).String()
}

func runTable7(s *Study) string {
	return s.Detection().Table7().String()
}

func runTable8(s *Study) string {
	det := s.Detection()
	rows := classify.TopEC2Domains(s.Dataset(), s, 10)
	t := &stats.Table{
		Title:  "Table 8: cloud feature usage of top EC2-using domains",
		Header: []string{"Rank", "Domain", "# Cloud Subdom", "VM", "PaaS", "ELB", "ELB IPs", "CDN"},
	}
	for _, r := range rows {
		var vm, paas, elb, elbIPs, cdn int
		for fqdn, c := range det.Classes {
			if !strings.HasSuffix(fqdn, "."+r.Domain) {
				continue
			}
			switch c.Primary {
			case "VM":
				vm++
			case "Heroku (no ELB)":
				paas++
			case "BeanStalk (w/ ELB)", "Heroku (w/ ELB)":
				paas++
				elb++
				elbIPs += len(c.FrontIPs)
			case "ELB":
				elb++
				elbIPs += len(c.FrontIPs)
			case "CloudFront", "Azure CDN":
				cdn++
			}
		}
		t.AddRow(r.Rank, r.Domain, r.CloudSubs, vm, paas, elb, elbIPs, cdn)
	}
	return t.String()
}

func runTable9(s *Study) string {
	return s.Regions().Table9().String()
}

func runTable10(s *Study) string {
	// Table 10 includes Azure-heavy domains, so rank over all clouds.
	rows := regionsTop(s, 14)
	t := &stats.Table{
		Title:  "Table 10: region usage of top cloud-using domains",
		Header: []string{"Rank", "Domain", "# Cloud Subdom", "Total # Regions", "k=1", "k=2"},
	}
	for _, r := range rows {
		t.AddRow(r.Rank, r.Domain, r.CloudSubs, r.TotalRegions, r.K1, r.K2)
	}
	return t.String()
}

func runTable11(s *Study) string {
	rows := wanperf.IntraCloudRTTs(s.World().EC2, "ec2.us-east-1", wanperf.Options{
		Seed:         s.Cfg.Seed,
		Par:          s.par("rtt"),
		Chaos:        s.eng,
		Completeness: s.tel.Completeness(),
	})
	t := &stats.Table{
		Title:  "Table 11: RTTs (least / median, ms) from a us-east-1a micro instance",
		Header: []string{"Instance type", "Zone", "Min (ms)", "Median (ms)"},
	}
	for _, r := range rows {
		t.AddRow(r.InstanceType, "us-east-1"+r.DestZone, fmt.Sprintf("%.2f", r.MinMs), fmt.Sprintf("%.2f", r.MedianMs))
	}
	return t.String()
}

func runTable12(s *Study) string {
	rows := s.Zones().Table12()
	t := &stats.Table{
		Title:  "Table 12: latency-based zone estimates (T = 1.1 ms)",
		Header: []string{"Region", "# tgt IPs", "# resp.", "zone a", "zone b", "zone c", "% unk"},
	}
	for _, r := range rows {
		t.AddRow(r.Region, r.Targets, r.Responding,
			r.ZoneCounts[0], r.ZoneCounts[1], r.ZoneCounts[2],
			fmt.Sprintf("%.1f", r.UnknownPct))
	}
	return t.String()
}

func runTable13(s *Study) string {
	rows := s.Zones().Table13()
	t := &stats.Table{
		Title:  "Table 13: veracity of latency-based identification",
		Header: []string{"Region", "count", "match", "unknown", "mismatch", "error rate"},
	}
	for _, r := range rows {
		t.AddRow(r.Region, r.Count, r.Match, r.Unknown, r.Mismatch, fmt.Sprintf("%.1f%%", 100*r.ErrorRate()))
	}
	return t.String()
}

func runTable14(s *Study) string {
	subCounts, domCounts := s.Zones().ZoneUsage()
	t := &stats.Table{
		Title:  "Table 14: (sub)domains using each EC2 zone (reference labels)",
		Header: []string{"Region", "Zone", "# Dom", "# Subdom"},
	}
	keys := make([]zones.ZoneKey, 0, len(subCounts))
	for k := range subCounts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Region != keys[j].Region {
			return keys[i].Region < keys[j].Region
		}
		return keys[i].Zone < keys[j].Zone
	})
	for _, k := range keys {
		t.AddRow(k.Region, string(rune('a'+k.Zone)), domCounts[k], subCounts[k])
	}
	return t.String()
}

func runTable15(s *Study) string {
	rows := s.Zones().TopDomains(s, 10)
	t := &stats.Table{
		Title:  "Table 15: zone usage of top domains",
		Header: []string{"Rank", "Domain", "# Subdom", "# Zones", "k=1", "k=2", "k=3"},
	}
	for _, r := range rows {
		t.AddRow(r.Rank, r.Domain, r.Subs, r.TotalZones, r.K[1], r.K[2], r.K[3])
	}
	return t.String()
}

func runTable16(s *Study) string {
	zoneCounts := map[string]int{}
	for _, region := range ipranges.EC2Regions {
		zoneCounts[region] = s.World().EC2.ZoneCount(region)
	}
	// The paper's traceroute leg used 200 PlanetLab nodes (Figure 2) —
	// more than the 80 used for latency/throughput probing.
	m := wan.New(s.Cfg.Seed, 200, ipranges.EC2Regions)
	m.Par = s.par("isp")
	rows := wanperf.ISPDiversity(m, zoneCounts, wanperf.Options{
		Seed:         s.Cfg.Seed,
		Par:          s.par("isp"),
		Chaos:        s.eng,
		Completeness: s.tel.Completeness(),
	})
	t := &stats.Table{
		Title:  "Table 16: downstream ISPs per region and zone",
		Header: []string{"Region", "AZ1", "AZ2", "AZ3", "top-ISP route share"},
	}
	for _, r := range rows {
		cells := []any{r.Region}
		for z := 0; z < 3; z++ {
			if z < len(r.PerZone) {
				cells = append(cells, r.PerZone[z])
			} else {
				cells = append(cells, "n/a")
			}
		}
		cells = append(cells, fmt.Sprintf("%.0f%%", 100*r.TopShare))
		t.AddRow(cells...)
	}
	return t.String()
}

func runFigure3(s *Study) string {
	_, an := s.Capture()
	return renderSeries("Figure 3: HTTP(S) flow count and size CDFs", traffic.Figure3(an), 8)
}

func runFigure4(s *Study) string {
	det := s.Detection()
	series := map[string][]stats.Point{
		"(a) VM instances per subdomain":  stats.NewCDF(det.VMInstanceCounts()).Points(12),
		"(b) physical ELBs per subdomain": stats.NewCDF(det.ELBInstanceCounts()).Points(12),
	}
	return renderSeries("Figure 4: feature instances per subdomain (CDF)", series, 12)
}

func runFigure5(s *Study) string {
	ns := s.NameServers()
	out := renderSeries("Figure 5: DNS servers per subdomain (CDF)", map[string][]stats.Point{
		"name servers per subdomain": stats.NewCDF(ns.PerSubdomainNS).Points(12),
	}, 12)
	var b strings.Builder
	b.WriteString(out)
	fmt.Fprintf(&b, "\nName-server locations: route53(CloudFront)=%d ec2-vm=%d azure=%d outside=%d\n",
		ns.Counts["cloudfront-route53"], ns.Counts["ec2-vm"], ns.Counts["azure"], ns.Counts["outside"])
	return b.String()
}

func runFigure6(s *Study) string {
	reg := s.Regions()
	series := map[string][]stats.Point{
		"(a) EC2 regions per subdomain":   stats.NewCDF(reg.RegionCountCDF(ipranges.EC2)).Points(8),
		"(a) Azure regions per subdomain": stats.NewCDF(reg.RegionCountCDF(ipranges.Azure)).Points(8),
		"(b) EC2 avg regions per domain":  stats.NewCDF(reg.DomainAvgRegionCDF(ipranges.EC2)).Points(8),
	}
	out := renderSeries("Figure 6: regions per (sub)domain (CDF)", series, 8)
	return out + fmt.Sprintf("\nSingle-region shares: EC2 %.1f%%, Azure %.1f%%\n",
		100*reg.SingleRegionShare(ipranges.EC2), 100*reg.SingleRegionShare(ipranges.Azure))
}

func runFigure7(s *Study) string {
	series := s.Zones().Figure7Points()
	var b strings.Builder
	b.WriteString("Figure 7: us-east-1 sampling — internal /16s segregate by zone\n")
	zones := make([]int, 0, len(series))
	for z := range series {
		zones = append(zones, z)
	}
	sort.Ints(zones)
	for _, z := range zones {
		p16s := map[uint32]bool{}
		for _, p := range series[z] {
			p16s[uint32(p.X)&^0xffff] = true
		}
		var list []string
		for p := range p16s {
			list = append(list, fmt.Sprintf("10.%d/16", p>>16&0xff))
		}
		sort.Strings(list)
		fmt.Fprintf(&b, "  zone %c: %d samples across %s\n", 'a'+z, len(series[z]), strings.Join(list, " "))
	}
	return b.String()
}

func runFigure8(s *Study) string {
	z := s.Zones()
	series := map[string][]stats.Point{
		"(a) zones per subdomain":  stats.NewCDF(z.ZonesPerSubdomain()).Points(8),
		"(b) avg zones per domain": stats.NewCDF(z.AvgZonesPerDomain()).Points(8),
	}
	return renderSeries("Figure 8: zones per (sub)domain (CDF)", series, 8)
}

func runFigure9(s *Study) string {
	return renderMatrix(s, wan.MetricThroughput, "Figure 9: mean throughput (KB/s), clients x US regions")
}

func runFigure10(s *Study) string {
	return renderMatrix(s, wan.MetricLatency, "Figure 10: mean latency (ms), clients x US regions")
}

var usRegions = []string{"ec2.us-east-1", "ec2.us-west-1", "ec2.us-west-2"}

func renderMatrix(s *Study, metric wan.Metric, title string) string {
	cells := s.Campaign().Matrix(metric, usRegions, 15)
	t := &stats.Table{Title: title, Header: append([]string{"Client"}, usRegions...)}
	rowVals := map[string]map[string]float64{}
	var order []string
	for _, c := range cells {
		if rowVals[c.Client] == nil {
			rowVals[c.Client] = map[string]float64{}
			order = append(order, c.Client)
		}
		rowVals[c.Client][c.Region] = c.Mean
	}
	for _, client := range order {
		cellsOut := []any{client}
		for _, r := range usRegions {
			cellsOut = append(cellsOut, fmt.Sprintf("%.0f", rowVals[client][r]))
		}
		t.AddRow(cellsOut...)
	}
	return t.String()
}

func runFigure11(s *Study) string {
	series := s.Campaign().TimeSeries("Boulder", usRegions)
	var b strings.Builder
	b.WriteString("Figure 11: Boulder latency (ms) to US regions over time\n")
	b.WriteString("hour   us-east-1  us-west-1  us-west-2  best\n")
	n := len(series[usRegions[0]])
	step := n / 24
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		best, bestV := "", 1e18
		var vals []float64
		for _, r := range usRegions {
			v := series[r][i].Y
			vals = append(vals, v)
			if v < bestV {
				best, bestV = r, v
			}
		}
		fmt.Fprintf(&b, "%5.1f  %9.1f  %9.1f  %9.1f  %s\n",
			series[usRegions[0]][i].X, vals[0], vals[1], vals[2], strings.TrimPrefix(best, "ec2."))
	}
	return b.String()
}

func runFigure12(s *Study) string {
	c := s.Campaign()
	var b strings.Builder
	b.WriteString("Figure 12: optimal k-region deployment (exhaustive subset search)\n")
	lat := c.OptimalK(wan.MetricLatency, 5)
	thr := c.OptimalK(wan.MetricThroughput, 5)
	b.WriteString("k   latency(ms)  vs k=1   best set (latency)\n")
	for _, r := range lat {
		fmt.Fprintf(&b, "%d   %10.1f  %5.1f%%   %s\n", r.K, r.Value,
			100*(lat[0].Value-r.Value)/lat[0].Value, strings.Join(r.Regions, ","))
	}
	b.WriteString("k   throughput(KB/s)  vs k=1   best set (throughput)\n")
	for _, r := range thr {
		fmt.Fprintf(&b, "%d   %15.0f  %5.1f%%   %s\n", r.K, r.Value,
			100*(r.Value-thr[0].Value)/thr[0].Value, strings.Join(r.Regions, ","))
	}
	return b.String()
}

func runExtCompression(s *Study) string {
	_, an := s.Capture()
	est := traffic.EstimateCompression(an)
	var b strings.Builder
	b.WriteString("Extension: §3.3's compression implication, quantified\n")
	fmt.Fprintf(&b, "HTTP body bytes:        %.1f MB\n", float64(est.HTTPBodyBytes)/1e6)
	fmt.Fprintf(&b, "compressible-text share: %.1f%%\n", 100*est.TextShareOfBytes)
	fmt.Fprintf(&b, "after gzip-class codecs: %.1f MB (saves %.1f%%)\n",
		float64(est.CompressedBytes)/1e6, 100*est.SavedShare)
	return b.String()
}

func runExtDurations(s *Study) string {
	_, an := s.Capture()
	t := &stats.Table{
		Title:  "Extension: flow durations (the paper notes hours-long flows, omits the CDF)",
		Header: []string{"Cloud", "Kind", "n", "median (s)", "p90 (s)", "max (s)", "# >1h"},
	}
	for _, cloud := range []ipranges.Provider{ipranges.EC2, ipranges.Azure} {
		for _, kind := range []capture.Kind{capture.KindHTTP, capture.KindHTTPS} {
			d := traffic.Durations(an, cloud, kind, false)
			t.AddRow(string(cloud), kind.String(), d.Count,
				fmt.Sprintf("%.2f", d.MedianSeconds),
				fmt.Sprintf("%.1f", d.P90Seconds),
				fmt.Sprintf("%.0f", d.MaxSeconds), d.OverOneHourCount)
		}
	}
	return t.String()
}

func runExtOutage(s *Study) string {
	var b strings.Builder
	reg := s.Regions()
	listShare, cloudShare := reg.HeadlineImpact("ec2.us-east-1", s.Cfg.Domains, len(s.World().CloudDomains))
	fmt.Fprintf(&b, "Extension: outage blast radius\n")
	fmt.Fprintf(&b, "us-east-1 outage: %.1f%% of the ranked list, %.1f%% of cloud-using domains lose critical components\n",
		100*listShare, 100*cloudShare)
	t := &stats.Table{Header: []string{"Region", "subdomains down", "degraded", "domains hit"}}
	for i, imp := range reg.RegionOutages() {
		if i >= 5 {
			break
		}
		t.AddRow(imp.Region, imp.SubdomainsDown, imp.SubdomainsDegraded, imp.DomainsHit)
	}
	b.WriteString(t.String())
	z := s.Zones()
	zi := z.ZoneOutages()
	if len(zi) > 0 {
		fmt.Fprintf(&b, "worst zone (%s/%c): %d subdomains down; us-east zone-usage skew ratio %.2f\n",
			zi[0].Zone.Region, 'a'+zi[0].Zone.Zone, zi[0].SubdomainsDown, z.SkewRatio("ec2.us-east-1"))
	}
	return b.String()
}

func runExtBackend(s *Study) string {
	return backend.Analyze(s.World()).Table().String()
}

// renderSeries prints named point series compactly.
func renderSeries(title string, series map[string][]stats.Point, maxPts int) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		pts := series[name]
		if len(pts) > maxPts {
			stride := len(pts) / maxPts
			var thin []stats.Point
			for i := 0; i < len(pts); i += stride {
				thin = append(thin, pts[i])
			}
			pts = thin
		}
		fmt.Fprintf(&b, "  %s:\n    ", name)
		for _, p := range pts {
			fmt.Fprintf(&b, "(%.4g, %.2f) ", p.X, p.Y)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// regionsTop adapts regions.TopDomains to the study's ranker.
func regionsTop(s *Study, n int) []regionsTopRow {
	rows := regionsTopDomains(s, n)
	return rows
}

type regionsTopRow struct {
	Rank         int
	Domain       string
	CloudSubs    int
	TotalRegions int
	K1, K2       int
}

func regionsTopDomains(s *Study, n int) []regionsTopRow {
	raw := s.Regions()
	type agg struct {
		row     regionsTopRow
		regions map[string]bool
	}
	per := map[string]*agg{}
	for _, sr := range raw.Subdomains {
		a := per[sr.Domain]
		if a == nil {
			a = &agg{row: regionsTopRow{Domain: sr.Domain, Rank: s.RankOf(sr.Domain)}, regions: map[string]bool{}}
			per[sr.Domain] = a
		}
		a.row.CloudSubs++
		switch len(sr.Regions) {
		case 1:
			a.row.K1++
		case 2:
			a.row.K2++
		}
		for _, r := range sr.Regions {
			a.regions[r] = true
		}
	}
	var out []regionsTopRow
	for _, a := range per {
		if a.row.Rank == 0 {
			continue
		}
		a.row.TotalRegions = len(a.regions)
		out = append(out, a.row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	if len(out) > n {
		out = out[:n]
	}
	return out
}
