package cloudscope

import (
	"strings"
	"testing"

	"cloudscope/internal/chaos"
	"cloudscope/internal/chaos/trace"
)

// captureTrace records a study's capture stage under the
// hostile-capture scenario and returns its fault trace.
func captureTrace(t *testing.T, seed int64, workers int) *trace.Trace {
	t.Helper()
	sc, err := chaos.Load("hostile-capture")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seed: seed, Domains: 300, Vantages: 8, CaptureFlows: 400,
		WANClients: 6, Workers: workers, Chaos: sc, ChaosRecord: true,
	}
	s := NewStudy(cfg)
	s.Capture()
	tr := s.FaultTrace()
	if tr.Len() == 0 {
		t.Fatal("hostile-capture run recorded no verdicts")
	}
	return tr
}

// TestFaultTraceDiffSameSeedEmpty: two recorded runs of the same seed —
// even at different worker counts — produce byte-identical verdict
// sets, so their diff is empty; a seed change produces a readable delta
// that includes the capture-layer decision points.
func TestFaultTraceDiffSameSeedEmpty(t *testing.T) {
	a := captureTrace(t, 3, 1)
	b := captureTrace(t, 3, 4)
	if d := trace.Diff(a, b); !d.Empty() {
		t.Fatalf("same-seed runs diff non-empty:\n%s", d)
	}

	c := captureTrace(t, 4, 1)
	d := trace.Diff(a, c)
	if d.Empty() {
		t.Fatal("different seeds produced identical fault traces")
	}
	out := d.String()
	if !strings.Contains(out, "capflow") && !strings.Contains(out, "cappkt") {
		t.Fatalf("cross-seed delta mentions no capture verdicts:\n%s", out)
	}

	// The capture stage recorded capture-point verdicts at all.
	sawCap := false
	for _, ev := range a.Events {
		if ev.Point == trace.PointCapFlow || ev.Point == trace.PointCapPacket {
			sawCap = true
			break
		}
	}
	if !sawCap {
		t.Fatal("no capture-layer verdicts in the recorded trace")
	}
}
