package cloudscope

import (
	"fmt"
	"io"
	"sort"

	"cloudscope/internal/core/traffic"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/stats"
	"cloudscope/internal/wan"
)

// FigureSeries returns a figure's raw data as named point series, for
// plotting outside the library (cmd/experiments -plotdata writes them
// as TSV). Only figure IDs have series; tables return ok=false.
func (s *Study) FigureSeries(id string) (map[string][]stats.Point, bool) {
	switch id {
	case "figure3":
		_, an := s.Capture()
		return traffic.Figure3(an), true
	case "figure4":
		det := s.Detection()
		return map[string][]stats.Point{
			"vm-instances-per-subdomain":  stats.NewCDF(det.VMInstanceCounts()).Points(200),
			"physical-elbs-per-subdomain": stats.NewCDF(det.ELBInstanceCounts()).Points(200),
		}, true
	case "figure5":
		ns := s.NameServers()
		return map[string][]stats.Point{
			"nameservers-per-subdomain": stats.NewCDF(ns.PerSubdomainNS).Points(200),
		}, true
	case "figure6":
		reg := s.Regions()
		return map[string][]stats.Point{
			"ec2-regions-per-subdomain":   stats.NewCDF(reg.RegionCountCDF(ipranges.EC2)).Points(50),
			"azure-regions-per-subdomain": stats.NewCDF(reg.RegionCountCDF(ipranges.Azure)).Points(50),
			"ec2-avg-regions-per-domain":  stats.NewCDF(reg.DomainAvgRegionCDF(ipranges.EC2)).Points(50),
		}, true
	case "figure7":
		series := s.Zones().Figure7Points()
		out := map[string][]stats.Point{}
		for zone, pts := range series {
			out[fmt.Sprintf("zone-%c", 'a'+zone)] = pts
		}
		return out, true
	case "figure8":
		z := s.Zones()
		return map[string][]stats.Point{
			"zones-per-subdomain":  stats.NewCDF(z.ZonesPerSubdomain()).Points(50),
			"avg-zones-per-domain": stats.NewCDF(z.AvgZonesPerDomain()).Points(50),
		}, true
	case "figure9", "figure10":
		metric := wan.MetricLatency
		if id == "figure9" {
			metric = wan.MetricThroughput
		}
		cells := s.Campaign().Matrix(metric, usRegions, 15)
		out := map[string][]stats.Point{}
		clientIdx := map[string]int{}
		for _, c := range cells {
			if _, ok := clientIdx[c.Client]; !ok {
				clientIdx[c.Client] = len(clientIdx)
			}
			out[c.Region] = append(out[c.Region], stats.Point{X: float64(clientIdx[c.Client]), Y: c.Mean})
		}
		return out, true
	case "figure11":
		return s.Campaign().TimeSeries("Boulder", usRegions), true
	case "figure12":
		lat := s.Campaign().OptimalK(wan.MetricLatency, 5)
		thr := s.Campaign().OptimalK(wan.MetricThroughput, 5)
		out := map[string][]stats.Point{}
		for _, r := range lat {
			out["latency"] = append(out["latency"], stats.Point{X: float64(r.K), Y: r.Value})
		}
		for _, r := range thr {
			out["throughput"] = append(out["throughput"], stats.Point{X: float64(r.K), Y: r.Value})
		}
		return out, true
	}
	return nil, false
}

// WriteSeriesTSV writes series as tab-separated values: one block per
// series with a comment header, sorted by name for determinism.
func WriteSeriesTSV(w io.Writer, series map[string][]stats.Point) error {
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# %s\n", name); err != nil {
			return err
		}
		for _, p := range series[name] {
			if _, err := fmt.Fprintf(w, "%g\t%g\n", p.X, p.Y); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
