package cloudscope

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestStudyTelemetry runs a small study end to end and checks that every
// instrumented layer reported and every pipeline stage left a span.
func TestStudyTelemetry(t *testing.T) {
	s := NewStudy(Config{Seed: 7, Domains: 300, Vantages: 10, CaptureFlows: 400, WANClients: 16})
	tel := s.Telemetry()
	if tel == nil {
		t.Fatal("telemetry should be on by default")
	}

	// World first, so the simulated clock is wired before any stage that
	// should be charged simulated time.
	s.World()
	s.Dataset()
	s.Detection()
	s.Breakdown()
	s.Regions()
	s.Zones()
	s.NameServers()
	s.Capture()
	if _, err := s.RunExperiment("figure10"); err != nil {
		t.Fatal(err)
	}

	snap := tel.Registry().Snapshot()
	for _, name := range []string{
		"fabric.datagrams.sent",
		"fabric.datagrams.delivered",
		"dns.queries",
		"cloud.ec2.probes",
		"wan.rtt.samples",
	} {
		if snap.Counter(name) == 0 {
			t.Errorf("counter %s = 0 after full pipeline\n%s", name, snap.Table())
		}
	}
	// The parallelized stages report their fan-out shape.
	for _, stage := range []string{"detect", "regions", "zones", "wanperf"} {
		if snap.Gauge("parallel."+stage+".workers") == 0 {
			t.Errorf("parallel.%s.workers = 0 after full pipeline", stage)
		}
		if snap.Gauge("parallel."+stage+".shards") == 0 {
			t.Errorf("parallel.%s.shards = 0 after full pipeline", stage)
		}
	}
	rcodes := snap.Counter("dns.rcode.noerror") + snap.Counter("dns.rcode.nxdomain") +
		snap.Counter("dns.rcode.refused") + snap.Counter("dns.rcode.servfail")
	if rcodes == 0 {
		t.Error("no rcodes recorded")
	}
	// Every wire query resolves to exactly one rcode (or a failure).
	if q := snap.Counter("dns.queries"); rcodes > q {
		t.Errorf("rcodes (%d) exceed queries (%d)", rcodes, q)
	}
	if h, ok := snap.Histogram("fabric.rtt_ms"); !ok || h.Count == 0 {
		t.Error("fabric RTT histogram empty")
	}
	if h, ok := snap.Histogram("cloud.ec2.probe_rtt_ms"); !ok || h.Count != snap.Counter("cloud.ec2.probes") {
		t.Errorf("cloud probe histogram count %d != probes counter %d", h.Count, snap.Counter("cloud.ec2.probes"))
	}

	// The default pipeline runs every resolver with NoRecurse, so the
	// cache never fields a query: hits and misses must both be zero.
	if snap.Counter("dns.cache.hits") != 0 || snap.Counter("dns.cache.misses") != 0 {
		t.Errorf("NoRecurse pipeline touched the cache: hits=%d misses=%d",
			snap.Counter("dns.cache.hits"), snap.Counter("dns.cache.misses"))
	}

	tr := tel.Tracer()
	for _, name := range []string{
		"study/world", "study/dataset", "study/detect", "study/classify",
		"study/regions", "study/zones", "study/nameservers", "study/capture",
		"study/wanperf", "experiment/figure10",
	} {
		if tr.Find(name) == nil {
			t.Errorf("span %s missing\n%s", name, tr.Tree())
		}
	}
	// The discovery campaign consumes simulated network time; its span
	// opened after the world wired the simulated clock.
	if sp := tr.Find("study/dataset"); sp != nil && sp.Sim() <= 0 {
		t.Errorf("study/dataset sim duration = %v, want > 0", sp.Sim())
	}
	if strings.Contains(tr.Tree(), "(open)") {
		t.Errorf("unclosed span after pipeline:\n%s", tr.Tree())
	}

	// An experiment span opened on a cold study triggers world
	// construction inside itself; the tracer backfills its sim start,
	// so it still charges the discovery campaign's simulated time.
	cold := NewStudy(Config{Seed: 7, Domains: 300, Vantages: 10, CaptureFlows: 400, WANClients: 16})
	if _, err := cold.RunExperiment("table3"); err != nil {
		t.Fatal(err)
	}
	if sp := cold.Telemetry().Tracer().Find("experiment/table3"); sp == nil {
		t.Error("cold study has no experiment span")
	} else if sp.Sim() <= 0 {
		t.Errorf("cold experiment/table3 sim duration = %v, want > 0", sp.Sim())
	}

	var buf bytes.Buffer
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Counters map[string]int64 `json:"counters"`
		Spans    []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("telemetry JSON does not parse: %v", err)
	}
	if dump.Counters["dns.queries"] != snap.Counter("dns.queries") {
		t.Error("JSON dump disagrees with snapshot")
	}
	if len(dump.Spans) == 0 {
		t.Error("JSON dump has no spans")
	}
}

// TestStudyNoTelemetry checks the pipeline runs identically with
// telemetry disabled.
func TestStudyNoTelemetry(t *testing.T) {
	s := NewStudy(Config{Seed: 7, Domains: 300, Vantages: 10, CaptureFlows: 400, WANClients: 16, NoTelemetry: true})
	if s.Telemetry() != nil {
		t.Fatal("NoTelemetry study still has a handle")
	}
	if got := s.Telemetry().Report(); got != "telemetry disabled\n" {
		t.Fatalf("nil report = %q", got)
	}
	ds := s.Dataset()
	if ds.Stats.QueriesIssued == 0 {
		t.Fatal("pipeline did not run without telemetry")
	}

	// Determinism: telemetry must not perturb the measurement.
	ref := NewStudy(Config{Seed: 7, Domains: 300, Vantages: 10, CaptureFlows: 400, WANClients: 16})
	if ref.Dataset().Stats != ds.Stats {
		t.Fatalf("telemetry changed pipeline results:\n  with:    %+v\n  without: %+v",
			ref.Dataset().Stats, ds.Stats)
	}
}
