package cloudscope

// The benchmark harness regenerates every table and figure of the paper
// (one Benchmark per experiment, named after its number) plus the
// ablation benches DESIGN.md calls out. Expensive pipeline stages
// (world generation, DNS discovery, capture synthesis) run once and are
// shared; each benchmark measures regenerating its result from them.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"cloudscope/internal/capture"
	"cloudscope/internal/cartography"
	"cloudscope/internal/cloud"
	"cloudscope/internal/core/backend"
	"cloudscope/internal/core/classify"
	"cloudscope/internal/core/dataset"
	"cloudscope/internal/core/patterns"
	"cloudscope/internal/core/regions"
	"cloudscope/internal/core/traffic"
	"cloudscope/internal/core/wanperf"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
	"cloudscope/internal/telemetry/runtimeprof"
	"cloudscope/internal/wan"
	"cloudscope/internal/wordlist"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
)

// study prepares the shared pipeline state once.
func study(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy = NewStudy(Config{Seed: 3, Domains: 1500, Vantages: 30, CaptureFlows: 4000, WANClients: 60})
		benchStudy.Dataset()
		benchStudy.Detection()
		benchStudy.Capture()
	})
	return benchStudy
}

func BenchmarkTable1(b *testing.B) {
	_, an := study(b).Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = traffic.Table1(an)
	}
}

func BenchmarkTable2(b *testing.B) {
	_, an := study(b).Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = traffic.Table2(an)
	}
}

func BenchmarkTable3(b *testing.B) {
	s := study(b)
	ds := s.Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = classify.Classify(ds)
	}
}

func BenchmarkTable4(b *testing.B) {
	s := study(b)
	ds := s.Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = classify.TopEC2Domains(ds, s, 10)
	}
}

func BenchmarkTable5(b *testing.B) {
	_, an := study(b).Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = traffic.Table5(an, 15)
	}
}

func BenchmarkTable6(b *testing.B) {
	_, an := study(b).Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = traffic.Table6(an, 10)
	}
}

func BenchmarkTable7(b *testing.B) {
	ds := study(b).Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = patterns.DetectAll(ds)
	}
}

func BenchmarkTable8(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runTable8(s)
	}
}

func BenchmarkTable9(b *testing.B) {
	s := study(b)
	ds, det := s.Dataset(), s.Detection()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = regions.Analyze(ds, det)
	}
}

func BenchmarkTable10(b *testing.B) {
	s := study(b)
	s.Regions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runTable10(s)
	}
}

func BenchmarkTable11(b *testing.B) {
	// A fresh cloud per iteration: the experiment launches probe and
	// target instances, and unbounded iteration against one shared
	// world would slowly drain its address space.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ec2 := cloud.NewEC2(int64(i))
		_ = wanperf.IntraCloudRTTs(ec2, "ec2.us-east-1", wanperf.Options{Seed: int64(i), Par: parallel.Options{Workers: 1}})
	}
}

func BenchmarkTable12(b *testing.B) {
	s := study(b)
	z := s.Zones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Table12()
	}
}

func BenchmarkTable13(b *testing.B) {
	z := study(b).Zones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Table13()
	}
}

func BenchmarkTable14(b *testing.B) {
	z := study(b).Zones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = z.ZoneUsage()
	}
}

func BenchmarkTable15(b *testing.B) {
	s := study(b)
	z := s.Zones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.TopDomains(s, 10)
	}
}

func BenchmarkTable16(b *testing.B) {
	s := study(b)
	m := s.Campaign().Model
	zoneCounts := map[string]int{}
	for _, r := range ipranges.EC2Regions {
		zoneCounts[r] = s.World().EC2.ZoneCount(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wanperf.ISPDiversity(m, zoneCounts, wanperf.Options{Seed: int64(i), Par: parallel.Options{Workers: 1}})
	}
}

func BenchmarkFigure3(b *testing.B) {
	_, an := study(b).Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = traffic.Figure3(an)
	}
}

func BenchmarkFigure4(b *testing.B) {
	det := study(b).Detection()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.VMInstanceCounts()
		_ = det.ELBInstanceCounts()
	}
}

func BenchmarkFigure5(b *testing.B) {
	s := study(b)
	w := s.World()
	ds := s.Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = patterns.AnalyzeNS(ds, w.Fabric, w.Registry, 20)
	}
}

func BenchmarkFigure6(b *testing.B) {
	reg := study(b).Regions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.RegionCountCDF(ipranges.EC2)
		_ = reg.DomainAvgRegionCDF(ipranges.EC2)
	}
}

func BenchmarkFigure7(b *testing.B) {
	z := study(b).Zones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Figure7Points()
	}
}

func BenchmarkFigure8(b *testing.B) {
	z := study(b).Zones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.ZonesPerSubdomain()
		_ = z.AvgZonesPerDomain()
	}
}

func BenchmarkFigure9(b *testing.B) {
	c := study(b).Campaign()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Matrix(wan.MetricThroughput, usRegions, 15)
	}
}

func BenchmarkFigure10(b *testing.B) {
	c := study(b).Campaign()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Matrix(wan.MetricLatency, usRegions, 15)
	}
}

func BenchmarkFigure11(b *testing.B) {
	c := study(b).Campaign()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.TimeSeries("Boulder", usRegions)
	}
}

func BenchmarkFigure12(b *testing.B) {
	c := study(b).Campaign()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.OptimalK(wan.MetricLatency, 4)
	}
}

// --- End-to-end pipeline stages ---------------------------------------

func BenchmarkPipelineWorldGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NewStudy(Config{Seed: int64(i + 10), Domains: 500, Vantages: 10, CaptureFlows: 500}).World()
	}
}

func BenchmarkPipelineDiscovery(b *testing.B) {
	w := study(b).World()
	names := make([]string, 0, 300)
	for _, d := range w.Domains[:300] {
		names = append(names, d.Name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dataset.Build(dataset.Config{
			Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
			Domains: names, Vantages: 10,
		})
	}
}

func BenchmarkPipelineCaptureGen(b *testing.B) {
	w := study(b).World()
	cfg := capture.DefaultConfig()
	cfg.Flows = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		var buf bytes.Buffer
		g := capture.NewGenerator(cfg, w)
		if _, err := g.Generate(pcapio.NewWriter(&buf, cfg.Snaplen)); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// --- Worker-pool scaling -----------------------------------------------

var (
	benchWorkersOnce  sync.Once
	benchWorkersStudy *Study
)

// workersStudy prepares the 10K-domain study the scaling benchmark
// shards, with the expensive one-off stages (world, discovery, zone
// cartography targets) prebuilt and shared.
func workersStudy(b *testing.B) *Study {
	b.Helper()
	benchWorkersOnce.Do(func() {
		benchWorkersStudy = NewStudy(Config{
			Seed: 9, Domains: 10000, Vantages: 20, CaptureFlows: 1000, WANClients: 80,
			NoTelemetry: true,
		})
		benchWorkersStudy.Dataset()
		benchWorkersStudy.Detection()
		benchWorkersStudy.Zones()
		benchWorkersStudy.Campaign()
	})
	return benchWorkersStudy
}

// BenchmarkPipelineWorkers measures one pass of every parallelized
// analysis stage — pattern detection, region mapping, zone latency
// probing, and the WAN matrix — at fixed worker counts over the
// 10K-domain study. Outputs are bit-identical across sub-benchmarks;
// only the wall clock moves.
func BenchmarkPipelineWorkers(b *testing.B) {
	s := workersStudy(b)
	ds := s.Dataset()
	ec2 := s.World().EC2
	targets := s.Zones().Targets
	campaign := s.Campaign()
	latCfg := cartography.DefaultLatencyConfig()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := parallel.Options{Workers: workers}
			acct := ec2.NewAccount(fmt.Sprintf("pipeworkers-%d", workers))
			campaign.Par = opt
			campaign.Model.Par = opt
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := patterns.DetectAllPar(ds, opt)
				_ = regions.AnalyzePar(ds, d, opt)
				_ = cartography.IdentifyByLatency(ec2, acct, targets, latCfg, cartography.Options{Seed: int64(i), Par: opt})
				_ = campaign.Matrix(wan.MetricLatency, usRegions, 0)
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) ------------------------------------------

// BenchmarkAblationZoneThreshold sweeps the latency method's T and
// reports unknown/error trade-offs as metrics.
func BenchmarkAblationZoneThreshold(b *testing.B) {
	s := study(b)
	ec2 := s.World().EC2
	targets := s.Zones().Targets
	for _, tMs := range []float64{0.7, 0.9, 1.1, 1.5, 2.0} {
		b.Run(fmt.Sprintf("T=%.1fms", tMs), func(b *testing.B) {
			cfg := cartography.DefaultLatencyConfig()
			cfg.ThresholdMs = tMs
			acct := ec2.NewAccount(fmt.Sprintf("ablation-%d", int(tMs*10)))
			var unknownRate float64
			for i := 0; i < b.N; i++ {
				res := cartography.IdentifyByLatency(ec2, acct, targets, cfg, cartography.Options{Seed: int64(i), Par: parallel.Options{}})
				var unknown, responding int
				for _, rr := range res {
					unknown += rr.Unknown
					responding += rr.Responding
				}
				if responding > 0 {
					unknownRate = float64(unknown) / float64(responding)
				}
			}
			b.ReportMetric(100*unknownRate, "%unknown")
		})
	}
}

// BenchmarkAblationWordlist measures discovery recall vs dictionary size.
func BenchmarkAblationWordlist(b *testing.B) {
	s := study(b)
	w := s.World()
	names := make([]string, 0, 400)
	for _, d := range w.Domains[:400] {
		names = append(names, d.Name)
	}
	full := wordlist.Common()
	for _, frac := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("words=%d%%", frac), func(b *testing.B) {
			words := full[:len(full)*frac/100]
			var found int
			for i := 0; i < b.N; i++ {
				ds := dataset.Build(dataset.Config{
					Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
					Domains: names, Wordlist: words, Vantages: 5,
				})
				found = ds.Stats.CloudSubdomains
			}
			b.ReportMetric(float64(found), "cloud-subs")
		})
	}
}

// BenchmarkAblationVantages measures record discovery vs vantage count.
func BenchmarkAblationVantages(b *testing.B) {
	s := study(b)
	w := s.World()
	names := make([]string, 0, 400)
	for _, d := range w.Domains[:400] {
		names = append(names, d.Name)
	}
	for _, v := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("vantages=%d", v), func(b *testing.B) {
			var ips int
			for i := 0; i < b.N; i++ {
				ds := dataset.Build(dataset.Config{
					Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
					Domains: names, Vantages: v,
				})
				ips = 0
				for _, o := range ds.Subdomains {
					ips += len(o.IPs)
				}
			}
			b.ReportMetric(float64(ips), "records")
		})
	}
}

// BenchmarkAblationProximityPrefix sweeps the /16 granularity.
func BenchmarkAblationProximityPrefix(b *testing.B) {
	s := study(b)
	z := s.Zones()
	for _, bits := range []int{8, 12, 16, 20} {
		b.Run(fmt.Sprintf("prefix=%d", bits), func(b *testing.B) {
			var matched int
			for i := 0; i < b.N; i++ {
				idx := z.PM.Index("ec2.us-east-1", bits)
				matched = 0
				for _, t := range z.Targets {
					if t.Region != "ec2.us-east-1" {
						continue
					}
					if _, ok := cartography.IdentifyAt(idx, t.InternalIP, bits); ok {
						matched++
					}
				}
			}
			b.ReportMetric(float64(matched), "matched")
		})
	}
}

// BenchmarkAblationGreedyK compares greedy and exhaustive planners.
func BenchmarkAblationGreedyK(b *testing.B) {
	c := study(b).Campaign()
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c.OptimalK(wan.MetricLatency, 5)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c.GreedyK(wan.MetricLatency, 5)
		}
	})
}

// BenchmarkAblationCartographyDensity sweeps proximity sampling density.
// Each iteration samples a fresh cloud: repeated sampling against one
// shared world would eventually drain a small region's public pool.
func BenchmarkAblationCartographyDensity(b *testing.B) {
	for _, perZone := range []int{2, 6, 12} {
		b.Run(fmt.Sprintf("perZone=%d", perZone), func(b *testing.B) {
			var covered float64
			for i := 0; i < b.N; i++ {
				ec2 := cloud.NewEC2(int64(i))
				targets := make([]*cloud.Instance, 0, 120)
				for j := 0; j < 120; j++ {
					targets = append(targets, ec2.Launch("ec2.us-east-1", j%3, "m1.small", cloud.KindVM))
				}
				ref := ec2.NewAccount(fmt.Sprintf("dens-%d-%d", perZone, i))
				samples := cartography.SampleAccounts(ec2, ref, 3, perZone, cartography.Options{Seed: int64(i), Par: parallel.Options{Workers: 1}})
				pm := cartography.MergeAccounts(samples, "", cartography.Options{Par: parallel.Options{Workers: 1}})
				hit := 0
				for _, t := range targets {
					if _, ok := pm.Identify(t.Region, t.InternalIP); ok {
						hit++
					}
				}
				covered = float64(hit) / float64(len(targets))
			}
			b.ReportMetric(100*covered, "%coverage")
		})
	}
}

// --- Extension experiments ---------------------------------------------

func BenchmarkExtensionBackend(b *testing.B) {
	w := study(b).World()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = backend.Analyze(w)
	}
}

func BenchmarkExtensionCompression(b *testing.B) {
	_, an := study(b).Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = traffic.EstimateCompression(an)
	}
}

func BenchmarkExtensionDurations(b *testing.B) {
	_, an := study(b).Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = traffic.Durations(an, ipranges.EC2, capture.KindHTTPS, false)
	}
}

func BenchmarkExtensionOutage(b *testing.B) {
	s := study(b)
	reg := s.Regions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.RegionOutages()
		_, _ = reg.HeadlineImpact("ec2.us-east-1", s.Cfg.Domains, len(s.World().CloudDomains))
	}
}

// --- Telemetry overhead ------------------------------------------------

// BenchmarkTelemetryOverhead measures the full discovery pipeline with
// telemetry on (the default), on with the runtime sampler running, and
// off. The instrumented hot paths pay atomic increments when enabled
// and a nil check when disabled; the sampler adds one ReadMemStats per
// interval on its own goroutine. All three sub-benchmarks should stay
// within a few percent of each other.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, noTel, sample bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			s := NewStudy(Config{
				Seed: 11, Domains: 200, Vantages: 10,
				CaptureFlows: 100, WANClients: 8, NoTelemetry: noTel,
			})
			var smp *runtimeprof.Sampler
			if sample {
				smp = runtimeprof.Start(s.Telemetry().Registry(), 10*time.Millisecond)
			}
			ds := s.Dataset()
			smp.Stop()
			if ds.Stats.QueriesIssued == 0 {
				b.Fatal("pipeline produced no queries")
			}
		}
	}
	b.Run("instrumented", func(b *testing.B) { run(b, false, false) })
	b.Run("instrumented+sampler", func(b *testing.B) { run(b, false, true) })
	b.Run("noop", func(b *testing.B) { run(b, true, false) })
}
