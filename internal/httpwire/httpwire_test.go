package httpwire

import (
	"bytes"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	req := Request{
		Method: "GET", Path: "/index.html", Host: "www.dropbox.com",
		Headers: map[string]string{"User-Agent": "cloudscope/1.0", "Accept": "*/*"},
	}
	raw := req.SerializeRequest()
	got, ok := ParseRequest(raw)
	if !ok {
		t.Fatal("parse failed")
	}
	if got.Method != "GET" || got.Path != "/index.html" || got.Host != "www.dropbox.com" {
		t.Fatalf("got %+v", got)
	}
	if got.Headers["User-Agent"] != "cloudscope/1.0" {
		t.Fatalf("headers: %v", got.Headers)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := Response{StatusCode: 200, ContentType: "text/html", ContentLength: 5120,
		Headers: map[string]string{"Server": "Apache"}}
	raw := resp.SerializeResponse()
	got, ok := ParseResponse(raw)
	if !ok {
		t.Fatal("parse failed")
	}
	if got.StatusCode != 200 || got.ContentType != "text/html" || got.ContentLength != 5120 {
		t.Fatalf("got %+v", got)
	}
}

func TestContentTypeParamsStripped(t *testing.T) {
	raw := []byte("HTTP/1.1 200 OK\r\nContent-Type: text/html; charset=utf-8\r\n\r\n")
	got, ok := ParseResponse(raw)
	if !ok || got.ContentType != "text/html" {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
}

func TestMissingContentLength(t *testing.T) {
	raw := []byte("HTTP/1.1 304 Not Modified\r\n\r\n")
	got, ok := ParseResponse(raw)
	if !ok || got.ContentLength != -1 {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
}

func TestTruncatedHeadStillYieldsHost(t *testing.T) {
	req := Request{Host: "api.netflix.com", Headers: map[string]string{"X-Long": "aaaa"}}
	raw := req.SerializeRequest()
	// Snap truncation mid-headers, after the Host line.
	cut := bytes.Index(raw, []byte("X-Long")) + 3
	got, ok := ParseRequest(raw[:cut])
	if !ok || got.Host != "api.netflix.com" {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
}

func TestNonHTTPRejected(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		[]byte("\x16\x03\x01\x00\x05hello"),
		[]byte("NOT A REQUEST"),
		[]byte("123 456 789\r\n"),
		[]byte("HTTP/1.1 abc OK\r\n"),
	} {
		if _, ok := ParseRequest(raw); ok {
			t.Errorf("ParseRequest(%q) accepted", raw)
		}
	}
	if _, ok := ParseResponse([]byte("GET / HTTP/1.1\r\n")); ok {
		t.Error("ParseResponse accepted a request line")
	}
}

func TestLoneLFAccepted(t *testing.T) {
	raw := []byte("GET / HTTP/1.1\nHost: a.b\n\n")
	got, ok := ParseRequest(raw)
	if !ok || got.Host != "a.b" {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
}

func TestDefaultsInSerialization(t *testing.T) {
	raw := (&Request{Host: "h"}).SerializeRequest()
	if !bytes.HasPrefix(raw, []byte("GET / HTTP/1.1\r\n")) {
		t.Fatalf("raw = %q", raw)
	}
	rraw := (&Response{ContentLength: -1}).SerializeResponse()
	if !bytes.HasPrefix(rraw, []byte("HTTP/1.1 200 OK\r\n")) {
		t.Fatalf("rraw = %q", rraw)
	}
	if bytes.Contains(rraw, []byte("Content-Length")) {
		t.Fatal("negative Content-Length serialized")
	}
}
