// Package httpwire serializes and parses the HTTP/1.1 messages that
// appear in the synthetic border capture. It is deliberately not
// net/http: the capture analyzer must parse header blocks out of
// possibly snap-truncated TCP payloads, exactly as the paper's Bro
// pipeline extracted Host and Content-Type fields, so the parser works
// on raw bytes and tolerates missing bodies.
package httpwire

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Request is a parsed (or to-be-serialized) HTTP request head.
type Request struct {
	Method  string
	Path    string
	Host    string
	Headers map[string]string // canonical-cased keys, Host excluded
}

// Response is a parsed (or to-be-serialized) HTTP response head.
type Response struct {
	StatusCode    int
	ContentType   string
	ContentLength int64 // -1 when absent
	Headers       map[string]string
}

// SerializeRequest renders the request head (no body).
func (r *Request) SerializeRequest() []byte {
	var sb strings.Builder
	method := r.Method
	if method == "" {
		method = "GET"
	}
	path := r.Path
	if path == "" {
		path = "/"
	}
	fmt.Fprintf(&sb, "%s %s HTTP/1.1\r\n", method, path)
	fmt.Fprintf(&sb, "Host: %s\r\n", r.Host)
	writeSorted(&sb, r.Headers)
	sb.WriteString("\r\n")
	return []byte(sb.String())
}

// SerializeResponse renders the response head (no body).
func (r *Response) SerializeResponse() []byte {
	var sb strings.Builder
	code := r.StatusCode
	if code == 0 {
		code = 200
	}
	fmt.Fprintf(&sb, "HTTP/1.1 %d %s\r\n", code, statusText(code))
	if r.ContentType != "" {
		fmt.Fprintf(&sb, "Content-Type: %s\r\n", r.ContentType)
	}
	if r.ContentLength >= 0 {
		fmt.Fprintf(&sb, "Content-Length: %d\r\n", r.ContentLength)
	}
	writeSorted(&sb, r.Headers)
	sb.WriteString("\r\n")
	return []byte(sb.String())
}

func writeSorted(sb *strings.Builder, headers map[string]string) {
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s: %s\r\n", k, headers[k])
	}
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 206:
		return "Partial Content"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	}
	return "Status"
}

// ParseRequest extracts a request head from the start of data. ok is
// false when data does not begin with a plausible HTTP request line.
// A truncated header block still yields the fields seen so far.
func ParseRequest(data []byte) (req Request, ok bool) {
	line, rest, found := cutLine(data)
	if !found && len(line) == 0 {
		return req, false
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return req, false
	}
	if !isToken(parts[0]) {
		return req, false
	}
	req.Method = parts[0]
	req.Path = parts[1]
	req.Headers = map[string]string{}
	for {
		var hline string
		hline, rest, found = cutLine(rest)
		if hline == "" {
			break
		}
		k, v, hok := cutHeader(hline)
		if !hok {
			break
		}
		if strings.EqualFold(k, "Host") {
			req.Host = v
		} else {
			req.Headers[k] = v
		}
		if !found {
			break
		}
	}
	return req, true
}

// ParseResponse extracts a response head from the start of data.
func ParseResponse(data []byte) (resp Response, ok bool) {
	resp.ContentLength = -1
	line, rest, found := cutLine(data)
	if !found && len(line) == 0 {
		return resp, false
	}
	if !strings.HasPrefix(line, "HTTP/1.") {
		return resp, false
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 {
		return resp, false
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 599 {
		return resp, false
	}
	resp.StatusCode = code
	resp.Headers = map[string]string{}
	for {
		var hline string
		hline, rest, found = cutLine(rest)
		if hline == "" {
			break
		}
		k, v, hok := cutHeader(hline)
		if !hok {
			break
		}
		switch {
		case strings.EqualFold(k, "Content-Type"):
			resp.ContentType = strings.TrimSpace(strings.SplitN(v, ";", 2)[0])
		case strings.EqualFold(k, "Content-Length"):
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				resp.ContentLength = n
			}
		default:
			resp.Headers[k] = v
		}
		if !found {
			break
		}
	}
	return resp, true
}

// cutLine splits at the first CRLF (or lone LF). found is false when no
// terminator existed (line holds the partial tail).
func cutLine(data []byte) (line string, rest []byte, found bool) {
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			end := i
			if end > 0 && data[end-1] == '\r' {
				end--
			}
			return string(data[:end]), data[i+1:], true
		}
	}
	return string(data), nil, false
}

func cutHeader(line string) (key, value string, ok bool) {
	colon := strings.IndexByte(line, ':')
	if colon <= 0 {
		return "", "", false
	}
	return strings.TrimSpace(line[:colon]), strings.TrimSpace(line[colon+1:]), true
}

func isToken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c == '-') {
			return false
		}
	}
	return true
}
