package httpwire

import (
	"testing"
	"testing/quick"
)

func TestParsersNeverPanicOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", data, r)
			}
		}()
		_, _ = ParseRequest(data)
		_, _ = ParseResponse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseAnyTruncationOfValidMessages(t *testing.T) {
	req := (&Request{Host: "api.example.com", Path: "/v1/items?page=2",
		Headers: map[string]string{"User-Agent": "x", "Accept": "*/*"}}).SerializeRequest()
	resp := (&Response{StatusCode: 200, ContentType: "text/html", ContentLength: 1234}).SerializeResponse()
	for i := 0; i <= len(req); i++ {
		_, _ = ParseRequest(req[:i]) // must not panic; ok may be false
	}
	for i := 0; i <= len(resp); i++ {
		_, _ = ParseResponse(resp[:i])
	}
}
