// Package runtimeprof samples the Go runtime's memory, GC, and
// scheduler state into a telemetry registry, so a study's metric dump
// carries the process-level story (heap growth, GC pressure, goroutine
// count, peak footprint) next to the measurement metrics.
//
// A Sampler records the gauges below every interval and once more on
// Stop, so even a short run gets a final reading. Peaks are tracked
// across samples. Following the telemetry package's conventions,
// a nil registry yields a nil *Sampler and every method on a nil
// Sampler is a no-op.
//
//	runtime.heap_alloc_bytes       live heap (MemStats.HeapAlloc)
//	runtime.heap_sys_bytes         heap reserved from the OS (HeapSys)
//	runtime.heap_objects           live objects
//	runtime.total_alloc_bytes      cumulative allocated bytes
//	runtime.mallocs                cumulative allocations
//	runtime.gc_count               completed GC cycles (NumGC)
//	runtime.gc_pause_total_us      cumulative stop-the-world pause
//	runtime.goroutines             current goroutine count
//	runtime.peak_heap_alloc_bytes  max HeapAlloc seen by this sampler
//	runtime.peak_heap_sys_bytes    max HeapSys seen by this sampler
//	runtime.peak_goroutines        max goroutine count seen
package runtimeprof

import (
	"runtime"
	"sync"
	"time"

	"cloudscope/internal/telemetry"
)

// gauges bundles the registered instruments so each sample is a few
// atomic stores, not registry lookups.
type gauges struct {
	heapAlloc, heapSys, heapObjects *telemetry.Gauge
	totalAlloc, mallocs             *telemetry.Gauge
	gcCount, gcPauseUs              *telemetry.Gauge
	goroutines                      *telemetry.Gauge
	peakHeapAlloc, peakHeapSys      *telemetry.Gauge
	peakGoroutines                  *telemetry.Gauge
}

func newGauges(r *telemetry.Registry) gauges {
	return gauges{
		heapAlloc:      r.Gauge("runtime.heap_alloc_bytes"),
		heapSys:        r.Gauge("runtime.heap_sys_bytes"),
		heapObjects:    r.Gauge("runtime.heap_objects"),
		totalAlloc:     r.Gauge("runtime.total_alloc_bytes"),
		mallocs:        r.Gauge("runtime.mallocs"),
		gcCount:        r.Gauge("runtime.gc_count"),
		gcPauseUs:      r.Gauge("runtime.gc_pause_total_us"),
		goroutines:     r.Gauge("runtime.goroutines"),
		peakHeapAlloc:  r.Gauge("runtime.peak_heap_alloc_bytes"),
		peakHeapSys:    r.Gauge("runtime.peak_heap_sys_bytes"),
		peakGoroutines: r.Gauge("runtime.peak_goroutines"),
	}
}

// record takes one reading. Peak gauges only ratchet upward.
func (g gauges) record() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	n := int64(runtime.NumGoroutine())
	g.heapAlloc.Set(int64(ms.HeapAlloc))
	g.heapSys.Set(int64(ms.HeapSys))
	g.heapObjects.Set(int64(ms.HeapObjects))
	g.totalAlloc.Set(int64(ms.TotalAlloc))
	g.mallocs.Set(int64(ms.Mallocs))
	g.gcCount.Set(int64(ms.NumGC))
	g.gcPauseUs.Set(int64(ms.PauseTotalNs / 1000))
	g.goroutines.Set(n)
	ratchet(g.peakHeapAlloc, int64(ms.HeapAlloc))
	ratchet(g.peakHeapSys, int64(ms.HeapSys))
	ratchet(g.peakGoroutines, n)
}

func ratchet(g *telemetry.Gauge, v int64) {
	if v > g.Value() {
		g.Set(v)
	}
}

// Sample takes one immediate reading into r's runtime gauges, without
// a running sampler. A nil registry is a no-op.
func Sample(r *telemetry.Registry) {
	if r == nil {
		return
	}
	newGauges(r).record()
}

// Sampler periodically records runtime gauges until stopped.
type Sampler struct {
	g        gauges
	interval time.Duration
	done     chan struct{}
	wg       sync.WaitGroup
	once     sync.Once
}

// Start samples r's runtime gauges every interval until Stop. It takes
// an immediate first reading, so gauges are live before the first
// tick. A nil registry or non-positive interval returns a nil Sampler
// (a no-op).
func Start(r *telemetry.Registry, interval time.Duration) *Sampler {
	if r == nil || interval <= 0 {
		return nil
	}
	s := &Sampler{g: newGauges(r), interval: interval, done: make(chan struct{})}
	s.g.record()
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.g.record()
		case <-s.done:
			return
		}
	}
}

// Stop halts the sampler after one final reading, so the registry's
// last values cover the run's end. Stop is idempotent and nil-safe.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		close(s.done)
		s.wg.Wait()
		s.g.record()
	})
}
