package runtimeprof

import (
	"runtime"
	"testing"
	"time"

	"cloudscope/internal/telemetry"
)

func TestSampleRecordsGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	Sample(reg)
	for _, name := range []string{
		"runtime.heap_alloc_bytes",
		"runtime.heap_sys_bytes",
		"runtime.heap_objects",
		"runtime.total_alloc_bytes",
		"runtime.mallocs",
		"runtime.goroutines",
		"runtime.peak_heap_alloc_bytes",
		"runtime.peak_heap_sys_bytes",
		"runtime.peak_goroutines",
	} {
		if v := reg.Gauge(name).Value(); v <= 0 {
			t.Errorf("%s = %d, want > 0", name, v)
		}
	}
	// gc_count and gc_pause can legitimately be zero in a fresh
	// process; they just have to be present and non-negative.
	if v := reg.Gauge("runtime.gc_count").Value(); v < 0 {
		t.Errorf("runtime.gc_count = %d", v)
	}
}

func TestSampleNilRegistryIsNoop(t *testing.T) {
	Sample(nil) // must not panic
}

func TestStartReturnsNilWhenDisabled(t *testing.T) {
	if s := Start(nil, time.Millisecond); s != nil {
		t.Fatal("Start(nil, 1ms) != nil")
	}
	if s := Start(telemetry.NewRegistry(), 0); s != nil {
		t.Fatal("Start(reg, 0) != nil")
	}
	var s *Sampler
	s.Stop() // nil Sampler must be a no-op
}

func TestSamplerRecordsAcrossRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := Start(reg, time.Millisecond)
	if s == nil {
		t.Fatal("Start returned nil with a live registry")
	}
	// The first reading is synchronous, so gauges are live immediately.
	if v := reg.Gauge("runtime.heap_alloc_bytes").Value(); v <= 0 {
		t.Fatalf("no immediate reading: heap_alloc = %d", v)
	}
	// Allocate visibly, give the ticker a few periods, then stop; the
	// final synchronous reading makes the cumulative gauges current.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	runtime.KeepAlive(sink)

	mallocs := reg.Gauge("runtime.mallocs").Value()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if mallocs <= 0 || mallocs > int64(ms.Mallocs) {
		t.Fatalf("mallocs gauge %d out of range (process at %d)", mallocs, ms.Mallocs)
	}
	peak := reg.Gauge("runtime.peak_heap_alloc_bytes").Value()
	if peak <= 0 {
		t.Fatal("peak heap never recorded")
	}
	// Stop is idempotent and must not move the needle afterwards.
	s.Stop()
	before := reg.Gauge("runtime.total_alloc_bytes").Value()
	_ = make([]byte, 1<<20)
	s.Stop()
	if after := reg.Gauge("runtime.total_alloc_bytes").Value(); after != before {
		t.Fatalf("stopped sampler still recording: %d -> %d", before, after)
	}
}

func TestPeakGaugesOnlyRatchetUp(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Plant an absurdly high peak; a new reading must not lower it.
	reg.Gauge("runtime.peak_heap_alloc_bytes").Set(1 << 60)
	Sample(reg)
	if v := reg.Gauge("runtime.peak_heap_alloc_bytes").Value(); v != 1<<60 {
		t.Fatalf("peak gauge lowered to %d", v)
	}
	// The live gauge tracks the real value regardless.
	if v := reg.Gauge("runtime.heap_alloc_bytes").Value(); v <= 0 || v >= 1<<60 {
		t.Fatalf("live heap gauge = %d", v)
	}
}
