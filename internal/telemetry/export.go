package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's snapshot. Counts has one entry per
// bound plus a final overflow bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q < 1) by linear position over
// the bucket counts, returning the upper bound of the holding bucket.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	var acc int64
	for i, n := range h.Counts {
		acc += n
		if acc > target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Bounds[len(h.Bounds)-1] // overflow bucket: report last bound
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of a Registry, sorted by name.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Counter returns the named counter's value (0 when absent).
func (s *Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value (0 when absent).
func (s *Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram's snapshot.
func (s *Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Table renders the snapshot as an aligned text table.
func (s *Snapshot) Table() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-44s %12d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-44s %12d\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-44s n=%-10d mean=%-10.3g p50=%-8.3g p99=%.3g\n",
				h.Name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
		}
	}
	return b.String()
}

// jsonDump is the machine-consumption shape: flat name→value maps in
// the spirit of expvar, with histograms expanded. The map types
// marshal with explicitly sorted keys, so the dump is byte-identical
// for identical telemetry state — a property the golden test and the
// bench harness rely on, made structural here rather than inherited
// from encoding/json's map behavior.
type jsonDump struct {
	Counters   int64ByName `json:"counters"`
	Gauges     int64ByName `json:"gauges"`
	Histograms histsByName `json:"histograms"`
	Spans      []jsonSpan  `json:"spans,omitempty"`
	// Completeness reports per-stage attempted/succeeded/retried/
	// abandoned measurement accounting; present only when recorded.
	Completeness []StageCompleteness `json:"completeness,omitempty"`
}

// int64ByName marshals as a JSON object with keys in sorted order.
type int64ByName map[string]int64

func (m int64ByName) MarshalJSON() ([]byte, error) {
	return marshalSorted(sortedKeys(m), func(k string) any { return m[k] })
}

// histsByName marshals histograms with keys in sorted order.
type histsByName map[string]jsonHistogram

func (m histsByName) MarshalJSON() ([]byte, error) {
	return marshalSorted(sortedKeys(m), func(k string) any { return m[k] })
}

// float64ByName marshals span stats with keys in sorted order.
type float64ByName map[string]float64

func (m float64ByName) MarshalJSON() ([]byte, error) {
	return marshalSorted(sortedKeys(m), func(k string) any { return m[k] })
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// marshalSorted emits a JSON object with the given key order. The
// enclosing encoder re-indents the compact bytes, so nesting renders
// identically to plain struct fields.
func marshalSorted(keys []string, get func(string) any) ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.Write(kb)
		b.WriteByte(':')
		vb, err := json.Marshal(get(k))
		if err != nil {
			return nil, err
		}
		b.Write(vb)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

type jsonHistogram struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []jsonBucket `json:"buckets"`
}

type jsonBucket struct {
	LE float64 `json:"le"` // +Inf encoded as 0-valued "overflow": true bound omitted
	N  int64   `json:"n"`
}

type jsonSpan struct {
	Name       string        `json:"name"`
	WallMs     float64       `json:"wall_ms"`
	SimMs      float64       `json:"sim_ms"`
	AllocBytes uint64        `json:"alloc_bytes,omitempty"`
	AllocObjs  uint64        `json:"alloc_objects,omitempty"`
	Stats      float64ByName `json:"stats,omitempty"`
	Children   []jsonSpan    `json:"children,omitempty"`
}

// WriteJSON writes the snapshot as an expvar-style JSON document.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	return writeDump(w, s, nil, nil)
}

func writeDump(w io.Writer, s *Snapshot, tr *Tracer, comp *Completeness) error {
	d := jsonDump{
		Counters:   int64ByName{},
		Gauges:     int64ByName{},
		Histograms: histsByName{},
	}
	for _, c := range s.Counters {
		d.Counters[c.Name] = c.Value
	}
	for _, g := range s.Gauges {
		d.Gauges[g.Name] = g.Value
	}
	for _, h := range s.Histograms {
		jh := jsonHistogram{Count: h.Count, Sum: h.Sum}
		for i, n := range h.Counts {
			le := 0.0
			if i < len(h.Bounds) {
				le = h.Bounds[i]
			}
			jh.Buckets = append(jh.Buckets, jsonBucket{LE: le, N: n})
		}
		d.Histograms[h.Name] = jh
	}
	if tr != nil {
		var convert func(spans []*Span) []jsonSpan
		convert = func(spans []*Span) []jsonSpan {
			var out []jsonSpan
			for _, sp := range spans {
				out = append(out, jsonSpan{
					Name:       sp.Name(),
					WallMs:     float64(sp.Wall().Microseconds()) / 1000,
					SimMs:      float64(sp.Sim().Microseconds()) / 1000,
					AllocBytes: sp.AllocBytes(),
					AllocObjs:  sp.AllocObjects(),
					Stats:      sp.Stats(),
					Children:   convert(sp.Children()),
				})
			}
			return out
		}
		d.Spans = convert(tr.Roots())
	}
	d.Completeness = comp.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Report renders the full observability state — metrics table plus span
// tree — for human consumption after a run.
func (t *Telemetry) Report() string {
	if t == nil {
		return "telemetry disabled\n"
	}
	var b strings.Builder
	b.WriteString("=== telemetry ===\n")
	b.WriteString(t.reg.Snapshot().Table())
	if comp := t.comp.Report(); comp != "" {
		b.WriteString(comp)
	}
	if tree := t.tr.Tree(); tree != "" {
		b.WriteString("spans:\n")
		b.WriteString(tree)
	}
	return b.String()
}

// WriteJSON dumps metrics, completeness, and the span tree as one JSON
// document.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	return writeDump(w, t.reg.Snapshot(), t.tr, t.comp)
}
