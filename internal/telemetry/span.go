package telemetry

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records a tree of timed spans. Spans nest by call order: a
// span started while another is open becomes its child. Each span
// measures wall-clock time, allocation deltas (bytes and objects, via
// runtime.ReadMemStats), and, when a simulated clock is installed,
// simulated time — wall and sim diverge wildly in this codebase (a
// three-day measurement campaign runs in milliseconds of wall time),
// so both are worth seeing.
//
// A nil *Tracer (and the nil *Span it returns) is a no-op.
type Tracer struct {
	mu     sync.Mutex
	now    func() time.Time            // wall clock; swappable for tests
	simNow func() time.Time            // simulated clock; zero time when absent
	mem    func() (bytes, objs uint64) // alloc source; swappable for tests
	epoch  time.Time                   // start of the first span; trace-export origin
	roots  []*Span
	stack  []*Span
}

// NewTracer returns an empty tracer on the real wall clock.
func NewTracer() *Tracer {
	return &Tracer{now: time.Now}
}

// readMem samples cumulative allocation counters. The default source
// is runtime.ReadMemStats — a stop-the-world read, affordable because
// spans are stage-grained, not probe-grained.
func (t *Tracer) readMem() (uint64, uint64) {
	if t.mem != nil {
		return t.mem()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc, ms.Mallocs
}

// SetSimClock installs the simulated-time source. fn may return the
// zero time while the simulation is not yet constructed; spans open
// across that boundary report zero simulated duration.
func (t *Tracer) SetSimClock(fn func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.simNow = fn
}

// Span is one timed region of the pipeline.
type Span struct {
	tr       *Tracer
	name     string
	start    time.Time
	simStart time.Time
	wall     time.Duration
	sim      time.Duration
	children []*Span
	ended    bool

	// Cumulative allocation counters at start, and the fixed deltas
	// after End. The counters are process-global, so deltas are exact
	// for the sequential stage spans and approximate when spans overlap
	// across goroutines.
	startAllocB, startAllocO uint64
	allocB, allocO           uint64

	// stats are named accumulators fed by instrumented layers while the
	// span is open (e.g. the worker pool's shard counts and queue
	// waits); they ride into the flame summary and trace export.
	stats map[string]float64
}

// sampleSim reads the simulated clock and, on the first non-zero
// reading, backfills every open span that started before the clock was
// wired. A span that triggers the simulation's construction (an
// experiment forcing world generation) therefore charges the simulated
// time spent from the moment the clock existed, instead of reporting
// zero forever. Callers must hold t.mu.
func (t *Tracer) sampleSim() time.Time {
	if t.simNow == nil {
		return time.Time{}
	}
	now := t.simNow()
	if !now.IsZero() {
		for _, sp := range t.stack {
			if sp.simStart.IsZero() {
				sp.simStart = now
			}
		}
	}
	return now
}

// StartSpan opens a span named name as a child of the innermost open
// span (or as a root). Close it with End.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, name: name, start: t.now(), simStart: t.sampleSim()}
	sp.startAllocB, sp.startAllocO = t.readMem()
	if t.epoch.IsZero() {
		t.epoch = sp.start
	}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.children = append(parent.children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// End closes the span, fixing its durations. Ending a span that is not
// the innermost open one also closes nothing else — it is simply
// removed from the open stack wherever it sits. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.wall = t.now().Sub(s.start)
	if end := t.sampleSim(); !end.IsZero() && !s.simStart.IsZero() {
		s.sim = end.Sub(s.simStart)
	}
	if b, o := t.readMem(); b >= s.startAllocB && o >= s.startAllocO {
		s.allocB, s.allocO = b-s.startAllocB, o-s.startAllocO
	}
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Wall returns the wall-clock duration (zero until End).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.wall
}

// Sim returns the simulated-clock duration (zero until End, or when no
// simulated clock spanned the region).
func (s *Span) Sim() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.sim
}

// AllocBytes returns the bytes allocated while the span was open
// (zero until End). The measurement is a process-global delta: exact
// for sequential stage spans, approximate under concurrent spans.
func (s *Span) AllocBytes() uint64 {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.allocB
}

// AllocObjects returns the heap objects allocated while the span was
// open (zero until End); same caveats as AllocBytes.
func (s *Span) AllocObjects() uint64 {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.allocO
}

// StartOffset returns the span's start relative to the tracer's epoch
// (the first span's start) — the trace-export timestamp origin.
func (s *Span) StartOffset() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.start.Sub(s.tr.epoch)
}

// AddStat accumulates delta into the span's named statistic.
// Instrumented layers use it to charge per-stage facts (shard counts,
// queue waits) to the span that covers them; stats appear in the flame
// summary and the Chrome trace export.
func (s *Span) AddStat(name string, delta float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.stats == nil {
		s.stats = map[string]float64{}
	}
	s.stats[name] += delta
}

// MaxStat keeps the maximum of v and the current value of the span's
// named statistic.
func (s *Span) MaxStat(name string, v float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.stats == nil {
		s.stats = map[string]float64{}
	}
	if cur, ok := s.stats[name]; !ok || v > cur {
		s.stats[name] = v
	}
}

// Stats returns a copy of the span's named statistics (nil when none
// were recorded).
func (s *Span) Stats() map[string]float64 {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if len(s.stats) == 0 {
		return nil
	}
	out := make(map[string]float64, len(s.stats))
	for k, v := range s.stats {
		out[k] = v
	}
	return out
}

// statNames returns the span's stat names sorted. Callers hold tr.mu.
func (s *Span) statNames() []string {
	if len(s.stats) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.stats))
	for k := range s.stats {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Children returns the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Roots returns the tracer's top-level spans.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Current returns the innermost open span, or nil when the stack is
// empty. Layers that cannot be handed a span explicitly (the worker
// pool under a stage) use it to charge stats to whatever stage span
// covers them.
func (t *Tracer) Current() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.stack); n > 0 {
		return t.stack[n-1]
	}
	return nil
}

// Find returns the first span named name in depth-first order, or nil.
func (t *Tracer) Find(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(spans []*Span) *Span
	walk = func(spans []*Span) *Span {
		for _, sp := range spans {
			if sp.name == name {
				return sp
			}
			if hit := walk(sp.children); hit != nil {
				return hit
			}
		}
		return nil
	}
	return walk(t.roots)
}

// Tree renders the span forest, one span per line, indented by depth:
//
//	study/dataset              wall=412ms   sim=71h12m3s
//	  study/world              wall=98ms    sim=0s
func (t *Tracer) Tree() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	var walk func(spans []*Span, depth int)
	walk = func(spans []*Span, depth int) {
		for _, sp := range spans {
			pad := strings.Repeat("  ", depth)
			state := ""
			if !sp.ended {
				state = "  (open)"
			}
			fmt.Fprintf(&b, "%-44s wall=%-12s sim=%s%s\n",
				pad+sp.name, fmtDur(sp.wall), fmtDur(sp.sim), state)
			walk(sp.children, depth+1)
		}
	}
	walk(t.roots, 0)
	return b.String()
}

// fmtDur trims sub-microsecond noise from rendered durations.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
