package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// traceEvent is one Chrome trace_event "complete" record. Timestamps
// and durations are microseconds, per the trace-event format spec;
// chrome://tracing and Perfetto load the document directly.
type traceEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	TS   float64            `json:"ts"`
	Dur  float64            `json:"dur"`
	PID  int                `json:"pid"`
	TID  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// WriteTraceEvents writes the span forest as a Chrome trace_event JSON
// document: one complete ("ph":"X") event per ended span, timestamped
// relative to the tracer's epoch, with simulated time, allocation
// deltas, and accumulated span stats in args. Open spans are omitted
// (their durations are not fixed yet). Events are emitted in
// depth-first tree order, so the output is deterministic for a
// sequential pipeline.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	doc := traceDoc{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	if t != nil {
		t.mu.Lock()
		var walk func(spans []*Span)
		walk = func(spans []*Span) {
			for _, sp := range spans {
				if sp.ended {
					ev := traceEvent{
						Name: sp.name,
						Ph:   "X",
						TS:   float64(sp.start.Sub(t.epoch).Microseconds()),
						Dur:  float64(sp.wall.Microseconds()),
						PID:  1,
						TID:  1,
						Args: map[string]float64{
							"sim_ms":        float64(sp.sim.Microseconds()) / 1000,
							"alloc_bytes":   float64(sp.allocB),
							"alloc_objects": float64(sp.allocO),
						},
					}
					for _, name := range sp.statNames() {
						ev.Args[name] = sp.stats[name]
					}
					doc.TraceEvents = append(doc.TraceEvents, ev)
				}
				walk(sp.children)
			}
		}
		walk(t.roots)
		t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteTrace writes the study's span tree in Chrome trace_event format
// (see Tracer.WriteTraceEvents). A nil Telemetry writes an empty
// document.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	return t.Tracer().WriteTraceEvents(w)
}

// flameRow aggregates every span sharing one root-to-node name path.
type flameRow struct {
	path       string
	count      int
	wall, self time.Duration
	sim        time.Duration
	allocB     uint64
}

// Flame renders an aggregated text flame summary: one row per unique
// root-to-node span path, with cumulative wall time, self time (wall
// minus children), simulated time, and allocated bytes. Rows sort by
// cumulative wall descending (ties by path), so the hottest stage
// chain reads first.
func (t *Tracer) Flame() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	rows := map[string]*flameRow{}
	var walk func(spans []*Span, prefix string)
	walk = func(spans []*Span, prefix string) {
		for _, sp := range spans {
			path := sp.name
			if prefix != "" {
				path = prefix + ";" + sp.name
			}
			row := rows[path]
			if row == nil {
				row = &flameRow{path: path}
				rows[path] = row
			}
			var kids time.Duration
			for _, c := range sp.children {
				kids += c.wall
			}
			row.count++
			row.wall += sp.wall
			row.self += sp.wall - kids
			row.sim += sp.sim
			row.allocB += sp.allocB
			walk(sp.children, path)
		}
	}
	walk(t.roots, "")
	t.mu.Unlock()

	if len(rows) == 0 {
		return ""
	}
	list := make([]*flameRow, 0, len(rows))
	for _, r := range rows {
		list = append(list, r)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].wall != list[j].wall {
			return list[i].wall > list[j].wall
		}
		return list[i].path < list[j].path
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %-12s %-10s %5s  %s\n", "total", "self", "sim", "alloc", "n", "path")
	for _, r := range list {
		fmt.Fprintf(&b, "%-12s %-12s %-12s %-10s %5d  %s\n",
			fmtDur(r.wall), fmtDur(r.self), fmtDur(r.sim), fmtBytes(r.allocB), r.count, r.path)
	}
	return b.String()
}

// Flame renders the tracer's flame summary (see Tracer.Flame).
func (t *Telemetry) Flame() string {
	if t == nil {
		return ""
	}
	return t.tr.Flame()
}

// fmtBytes humanizes a byte count for the flame table.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
