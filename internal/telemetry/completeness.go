package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counts is one unit of completeness accounting: how many operations a
// measurement stage planned, how many produced an answer, how many
// needed more than one attempt, and how many were given up on
// (exhausted retries, tripped breakers, spent budgets, or deliberate
// skips of a dead vantage). Attempted == Succeeded + Abandoned.
type Counts struct {
	Attempted, Succeeded, Retried, Abandoned int64
}

// Add folds d into c.
func (c *Counts) Add(d Counts) {
	c.Attempted += d.Attempted
	c.Succeeded += d.Succeeded
	c.Retried += d.Retried
	c.Abandoned += d.Abandoned
}

// IsZero reports whether nothing was recorded.
func (c Counts) IsZero() bool {
	return c.Attempted == 0 && c.Succeeded == 0 && c.Retried == 0 && c.Abandoned == 0
}

// SuccessRate returns Succeeded/Attempted (1 when nothing was attempted).
func (c Counts) SuccessRate() float64 {
	if c.Attempted == 0 {
		return 1
	}
	return float64(c.Succeeded) / float64(c.Attempted)
}

// Completeness accumulates per-(stage, vantage) operation accounting
// across a study, so every campaign can report exactly how much of its
// planned measurement it actually completed — the paper's crawls ran
// against refused zone transfers and flaking PlanetLab nodes, and the
// honest result is "partial, and here is how partial".
//
// All additions commute, so the final snapshot is identical no matter
// how many workers recorded concurrently or in what order — the same
// property that keeps the rest of the pipeline worker-count invariant.
// A nil *Completeness ignores all recordings.
type Completeness struct {
	mu     sync.Mutex
	stages map[string]*stageAcc
}

type stageAcc struct {
	total    Counts
	vantages map[string]*Counts
}

// NewCompleteness returns an empty accumulator.
func NewCompleteness() *Completeness {
	return &Completeness{stages: map[string]*stageAcc{}}
}

// Merge folds d into the (stage, vantage) cell. An empty vantage
// attributes the counts to the stage total only.
func (c *Completeness) Merge(stage, vantage string, d Counts) {
	if c == nil || d.IsZero() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := c.stages[stage]
	if acc == nil {
		acc = &stageAcc{vantages: map[string]*Counts{}}
		c.stages[stage] = acc
	}
	acc.total.Add(d)
	if vantage != "" {
		vc := acc.vantages[vantage]
		if vc == nil {
			vc = &Counts{}
			acc.vantages[vantage] = vc
		}
		vc.Add(d)
	}
}

// Stage returns one stage's totals.
func (c *Completeness) Stage(stage string) (Counts, bool) {
	if c == nil {
		return Counts{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := c.stages[stage]
	if acc == nil {
		return Counts{}, false
	}
	return acc.total, true
}

// VantageCounts is one vantage's counts within a stage.
type VantageCounts struct {
	Vantage string
	Counts
}

// StageCompleteness is one stage's completeness, vantages sorted by name.
type StageCompleteness struct {
	Stage string
	Counts
	Vantages []VantageCounts
}

// Snapshot returns every stage's accounting, stages and vantages sorted
// by name — a pure function of the recorded multiset.
func (c *Completeness) Snapshot() []StageCompleteness {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.stages))
	for name := range c.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]StageCompleteness, 0, len(names))
	for _, name := range names {
		acc := c.stages[name]
		sc := StageCompleteness{Stage: name, Counts: acc.total}
		vnames := make([]string, 0, len(acc.vantages))
		for v := range acc.vantages {
			vnames = append(vnames, v)
		}
		sort.Strings(vnames)
		for _, v := range vnames {
			sc.Vantages = append(sc.Vantages, VantageCounts{Vantage: v, Counts: *acc.vantages[v]})
		}
		out = append(out, sc)
	}
	return out
}

// Degraded reports whether any stage abandoned work — i.e. whether the
// study's results are partial.
func (c *Completeness) Degraded() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, acc := range c.stages {
		if acc.total.Abandoned > 0 {
			return true
		}
	}
	return false
}

// Report renders the completeness table. Output is deterministic:
// stages sorted, per-stage vantage impact summarized by the worst
// (most-abandoning, ties to the lexicographically first) vantage.
func (c *Completeness) Report() string {
	snap := c.Snapshot()
	if len(snap) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("completeness (per stage):\n")
	fmt.Fprintf(&b, "  %-22s %10s %10s %8s %10s %8s\n",
		"stage", "attempted", "succeeded", "retried", "abandoned", "success")
	for _, sc := range snap {
		fmt.Fprintf(&b, "  %-22s %10d %10d %8d %10d %7.1f%%\n",
			sc.Stage, sc.Attempted, sc.Succeeded, sc.Retried, sc.Abandoned, 100*sc.SuccessRate())
		hit := 0
		var worst *VantageCounts
		for i := range sc.Vantages {
			v := &sc.Vantages[i]
			if v.Abandoned == 0 {
				continue
			}
			hit++
			if worst == nil || v.Abandoned > worst.Abandoned {
				worst = v
			}
		}
		if worst != nil {
			fmt.Fprintf(&b, "  %-22s   %d/%d vantages degraded; worst %s: %d/%d abandoned\n",
				"", hit, len(sc.Vantages), worst.Vantage, worst.Abandoned, worst.Attempted)
		}
	}
	return b.String()
}
