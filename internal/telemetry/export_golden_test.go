package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenState builds a fully deterministic telemetry state: fake wall
// clock (10ms per reading), fake simulated clock (30s per reading),
// fake allocation counters (4KiB / 32 objects per reading), metric
// names deliberately inserted out of order, and span stats with
// unsorted names — everything the sorted-export guarantee has to hold
// against.
func goldenState() (*Registry, *Tracer, *Completeness) {
	wall := time.Unix(1000, 0).UTC()
	sim := time.Date(2013, 4, 5, 0, 0, 0, 0, time.UTC)
	var allocB, allocO uint64
	tr := &Tracer{
		now: func() time.Time { wall = wall.Add(10 * time.Millisecond); return wall },
		mem: func() (uint64, uint64) { allocB += 4096; allocO += 32; return allocB, allocO },
	}
	tr.SetSimClock(func() time.Time { sim = sim.Add(30 * time.Second); return sim })

	root := tr.StartSpan("study/dataset")
	root.AddStat("zz.queue_wait_ms", 12.5)
	root.MaxStat("aa.workers", 4)
	child := tr.StartSpan("study/world")
	child.End()
	tr.StartSpan("study/detect").End()
	root.End()

	reg := NewRegistry()
	reg.Counter("zebra.count").Add(5)
	reg.Counter("alpha.count").Add(2)
	reg.Gauge("mid.gauge").Set(7)
	h := reg.Histogram("rtt.ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100) // overflow bucket

	comp := NewCompleteness()
	comp.Merge("dns", "vantage-b", Counts{Attempted: 4, Succeeded: 4})
	comp.Merge("dns", "vantage-a", Counts{Attempted: 10, Succeeded: 9, Retried: 1, Abandoned: 1})
	return reg, tr, comp
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/telemetry -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// TestExportGoldenJSON pins the telemetry JSON dump byte-for-byte:
// sorted metric keys, stable histogram bucket order, span allocs and
// sorted stats, completeness block. Identical telemetry state must
// always produce identical bytes — diffable dumps are the contract.
func TestExportGoldenJSON(t *testing.T) {
	reg, tr, comp := goldenState()
	var buf bytes.Buffer
	if err := writeDump(&buf, reg.Snapshot(), tr, comp); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "export_golden.json", buf.Bytes())

	var again bytes.Buffer
	if err := writeDump(&again, reg.Snapshot(), tr, comp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("writeDump is not deterministic across repeated calls")
	}
}

// TestTraceEventsGolden pins the Chrome trace_event export the same
// way: depth-first order, epoch-relative microsecond timestamps, args
// carrying sim time, alloc deltas, and span stats.
func TestTraceEventsGolden(t *testing.T) {
	_, tr, _ := goldenState()
	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_golden.json", buf.Bytes())
}
