package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				// Re-fetch through the registry half the time to exercise
				// the get-or-create path under contention.
				if j%2 == 0 {
					r.Counter("x").Inc()
				} else {
					c.Inc()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(float64(i%4) * 30) // 0, 30, 60, 90
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	want := float64(per) * (0 + 30 + 60 + 90) * float64(workers) / 4
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	hv, ok := r.Snapshot().Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCounts := []int64{1, 2, 1, 1} // <=1, <=2, <=4, overflow
	for i, n := range wantCounts {
		if hv.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hv.Counts[i], n, hv.Counts)
		}
	}
	if m := hv.Mean(); m != (0.5+1.5+1.7+3+100)/5 {
		t.Fatalf("mean = %g", m)
	}
	if q := hv.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %g, want 2", q)
	}
}

func TestSnapshotVsReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", SmallCountBuckets)
	c.Add(7)
	g.Set(3)
	h.Observe(2)

	snap := r.Snapshot()
	r.Reset()

	// The snapshot is a copy: unchanged by the reset.
	if snap.Counter("c") != 7 || snap.Gauge("g") != 3 {
		t.Fatalf("snapshot mutated by reset: c=%d g=%d", snap.Counter("c"), snap.Gauge("g"))
	}
	if hv, _ := snap.Histogram("h"); hv.Count != 1 {
		t.Fatalf("snapshot histogram count = %d, want 1", hv.Count)
	}
	// Live instruments are zeroed but the handed-out pointers stay wired.
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("reset left values: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	c.Inc()
	if r.Counter("c").Value() != 1 {
		t.Fatal("pointer decoupled from registry after reset")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(5)
	r.Histogram("x", LatencyBucketsMs).Observe(1)
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}

	var tel *Telemetry
	tel.StartSpan("x").End()
	if got := tel.Report(); got != "telemetry disabled\n" {
		t.Fatalf("nil report = %q", got)
	}
	var buf bytes.Buffer
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "{}" {
		t.Fatalf("nil JSON = %q", buf.String())
	}

	var tr *Tracer
	tr.StartSpan("x").End()
	if tr.Find("x") != nil || tr.Tree() != "" {
		t.Fatal("nil tracer not inert")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	outer := tr.StartSpan("outer")
	inner := tr.StartSpan("inner")
	leaf := tr.StartSpan("leaf")
	leaf.End()
	inner.End()
	sibling := tr.StartSpan("sibling")
	sibling.End()
	outer.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "outer" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "inner" || kids[1].Name() != "sibling" {
		t.Fatalf("outer children wrong: %d", len(kids))
	}
	grand := kids[0].Children()
	if len(grand) != 1 || grand[0].Name() != "leaf" {
		t.Fatal("leaf not nested under inner")
	}
	if tr.Find("leaf") != grand[0] {
		t.Fatal("Find missed the leaf")
	}
	tree := tr.Tree()
	if !strings.Contains(tree, "outer") || !strings.Contains(tree, "    leaf") {
		t.Fatalf("tree rendering wrong:\n%s", tree)
	}
	if strings.Contains(tree, "(open)") {
		t.Fatalf("all spans ended but tree shows open:\n%s", tree)
	}
}

func TestSpanEndIdempotentAndOutOfOrder(t *testing.T) {
	tr := NewTracer()
	a := tr.StartSpan("a")
	b := tr.StartSpan("b")
	a.End() // out of order: a removed from the stack, b stays open
	a.End() // idempotent
	c := tr.StartSpan("c")
	if got := tr.Find("c"); got == nil {
		t.Fatal("c not recorded")
	}
	// c opened while b was innermost, so it nests under b.
	if kids := b.Children(); len(kids) != 1 || kids[0].Name() != "c" {
		t.Fatalf("c should nest under b; b has %d children", len(kids))
	}
	if !strings.Contains(tr.Tree(), "(open)") {
		t.Fatal("b and c still open; tree should say so")
	}
	c.End()
	b.End()
}

func TestSpanSimClock(t *testing.T) {
	tr := NewTracer()
	sim := time.Date(2013, 4, 5, 0, 0, 0, 0, time.UTC)
	tr.SetSimClock(func() time.Time { return sim })
	sp := tr.StartSpan("work")
	sim = sim.Add(3 * time.Hour)
	sp.End()
	if got := sp.Sim(); got != 3*time.Hour {
		t.Fatalf("sim duration = %v, want 3h", got)
	}
	if sp.Wall() < 0 {
		t.Fatal("negative wall duration")
	}

	// A sim clock that isn't running yet (zero time) yields no sim span.
	tr2 := NewTracer()
	tr2.SetSimClock(func() time.Time { return time.Time{} })
	sp2 := tr2.StartSpan("idle")
	sp2.End()
	if sp2.Sim() != 0 {
		t.Fatalf("zero-clock sim duration = %v, want 0", sp2.Sim())
	}
}

func TestJSONDump(t *testing.T) {
	tel := New()
	tel.Registry().Counter("dns.queries").Add(42)
	tel.Registry().Histogram("fabric.rtt_ms", LatencyBucketsMs).Observe(12)
	sp := tel.StartSpan("study/dataset")
	tel.StartSpan("study/world").End()
	sp.End()

	var buf bytes.Buffer
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
		Spans []struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump does not parse: %v\n%s", err, buf.String())
	}
	if d.Counters["dns.queries"] != 42 {
		t.Fatalf("counters = %v", d.Counters)
	}
	if d.Histograms["fabric.rtt_ms"].Count != 1 {
		t.Fatalf("histograms = %v", d.Histograms)
	}
	if len(d.Spans) != 1 || d.Spans[0].Name != "study/dataset" ||
		len(d.Spans[0].Children) != 1 || d.Spans[0].Children[0].Name != "study/world" {
		t.Fatalf("span tree wrong: %+v", d.Spans)
	}
}

func TestReportRendering(t *testing.T) {
	tel := New()
	tel.Registry().Counter("dns.queries").Inc()
	tel.Registry().Gauge("dns.cache.entries").Set(9)
	tel.StartSpan("study/world").End()
	rep := tel.Report()
	for _, want := range []string{"=== telemetry ===", "dns.queries", "dns.cache.entries", "spans:", "study/world"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestConcurrentSpans(t *testing.T) {
	// Spans from concurrent goroutines interleave on one stack; the
	// tracer must stay consistent (no lost spans, no panics) even if
	// parentage is then arbitrary.
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.StartSpan("w")
				sp.End()
			}
		}()
	}
	wg.Wait()
	var count func(spans []*Span) int
	count = func(spans []*Span) int {
		n := 0
		for _, sp := range spans {
			n += 1 + count(sp.Children())
		}
		return n
	}
	if got := count(tr.Roots()); got != 800 {
		t.Fatalf("recorded %d spans, want 800", got)
	}
}

// TestSpanSimBackfill covers spans opened before the simulated clock
// starts: once the clock turns non-zero, every still-open span is
// backfilled so it charges sim time from that moment on — the
// experiment-span case, where a span triggers world construction and
// then drives a long simulated campaign.
func TestSpanSimBackfill(t *testing.T) {
	tr := NewTracer()
	var sim time.Time // zero: simulation not built yet
	tr.SetSimClock(func() time.Time { return sim })

	outer := tr.StartSpan("experiment/x") // opens before the sim clock runs
	sim = time.Date(2013, 4, 4, 0, 0, 0, 0, time.UTC)
	inner := tr.StartSpan("study/dataset") // first non-zero sample: backfills outer
	sim = sim.Add(71 * time.Hour)
	inner.End()
	sim = sim.Add(time.Hour)
	outer.End()

	if got := inner.Sim(); got != 71*time.Hour {
		t.Errorf("inner sim = %v, want 71h", got)
	}
	if got := outer.Sim(); got != 72*time.Hour {
		t.Errorf("outer sim = %v, want 72h (backfilled from first non-zero sample)", got)
	}

	// A span whose whole life predates the clock still reports zero.
	tr2 := NewTracer()
	var sim2 time.Time
	tr2.SetSimClock(func() time.Time { return sim2 })
	sp := tr2.StartSpan("early")
	sp.End()
	if sp.Sim() != 0 {
		t.Errorf("pre-clock span sim = %v, want 0", sp.Sim())
	}
}
