// Package telemetry is the study's dependency-free observability
// layer: a registry of named counters, gauges, and fixed-bucket
// histograms, plus lightweight span tracing over both wall-clock and
// simulated time.
//
// Everything is safe for concurrent use and nil-tolerant: a nil
// *Registry hands out nil instruments, and every instrument method on a
// nil receiver is a no-op. Instrumented code therefore never branches
// on "is telemetry enabled" — it just calls the hook, and a disabled
// pipeline pays only a nil check.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the value by delta (negative allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed buckets. Bucket i
// counts observations v with v <= Bounds[i] (and > Bounds[i-1]); one
// extra overflow bucket catches everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Default bucket layouts used across the instrumented packages.
var (
	// LatencyBucketsMs suits RTTs from intra-zone probes (sub-ms) to
	// intercontinental paths (hundreds of ms).
	LatencyBucketsMs = []float64{0.25, 0.5, 1, 2, 5, 10, 25, 50, 100, 200, 400, 800}
	// SmallCountBuckets suits per-event cardinalities such as CNAME
	// chain lengths.
	SmallCountBuckets = []float64{0, 1, 2, 3, 4, 6, 8}
)

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.n.Store(0)
	h.sum.Store(0)
}

// Registry is a namespace of instruments. Instruments are created on
// first use and shared thereafter: two callers asking for counter "x"
// increment the same cell.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if needed. An existing histogram keeps its original
// bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every instrument's value. Registrations (and handed-out
// instrument pointers) stay valid.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot captures every instrument's current value, sorted by name.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hv.Counts = append(hv.Counts, h.counts[i].Load())
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Telemetry bundles a Registry with a Tracer and a Completeness
// accumulator: one handle a Study (or any pipeline) carries for all
// its observability. A nil *Telemetry is a complete no-op.
type Telemetry struct {
	reg  *Registry
	tr   *Tracer
	comp *Completeness
}

// New returns a fresh Telemetry with an empty registry and tracer.
func New() *Telemetry {
	return &Telemetry{reg: NewRegistry(), tr: NewTracer(), comp: NewCompleteness()}
}

// Registry returns the metric registry (nil on a nil Telemetry).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracer returns the span tracer (nil on a nil Telemetry).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tr
}

// StartSpan opens a span on the tracer; see Tracer.StartSpan.
func (t *Telemetry) StartSpan(name string) *Span {
	return t.Tracer().StartSpan(name)
}

// Completeness returns the per-stage completeness accumulator (nil on
// a nil Telemetry; a nil accumulator ignores all recordings).
func (t *Telemetry) Completeness() *Completeness {
	if t == nil {
		return nil
	}
	return t.comp
}
