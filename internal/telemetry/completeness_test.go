package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCompletenessMergeAndSnapshot(t *testing.T) {
	c := NewCompleteness()
	c.Merge("dataset", "v001", Counts{Attempted: 10, Succeeded: 8, Retried: 3, Abandoned: 2})
	c.Merge("dataset", "v000", Counts{Attempted: 5, Succeeded: 5})
	c.Merge("dataset", "v001", Counts{Attempted: 1, Abandoned: 1})
	c.Merge("wanperf", "Boulder", Counts{Attempted: 4, Succeeded: 4})
	c.Merge("empty", "", Counts{}) // zero counts are dropped entirely

	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d stages, want 2", len(snap))
	}
	if snap[0].Stage != "dataset" || snap[1].Stage != "wanperf" {
		t.Fatalf("stages not sorted: %v %v", snap[0].Stage, snap[1].Stage)
	}
	ds := snap[0]
	if ds.Attempted != 16 || ds.Succeeded != 13 || ds.Retried != 3 || ds.Abandoned != 3 {
		t.Fatalf("dataset totals = %+v", ds.Counts)
	}
	if len(ds.Vantages) != 2 || ds.Vantages[0].Vantage != "v000" || ds.Vantages[1].Abandoned != 3 {
		t.Fatalf("vantages = %+v", ds.Vantages)
	}
	if !c.Degraded() {
		t.Fatal("Degraded() = false with abandoned work")
	}
	if got, ok := c.Stage("dataset"); !ok || got.Attempted != 16 {
		t.Fatalf("Stage(dataset) = %+v, %v", got, ok)
	}
}

func TestCompletenessNilSafe(t *testing.T) {
	var c *Completeness
	c.Merge("x", "y", Counts{Attempted: 1})
	if c.Degraded() || c.Snapshot() != nil || c.Report() != "" {
		t.Fatal("nil Completeness must be inert")
	}
	if _, ok := c.Stage("x"); ok {
		t.Fatal("nil Completeness reported a stage")
	}
}

// TestCompletenessOrderInvariant: the snapshot is a pure function of
// the merged multiset — concurrent recording from many goroutines in
// any interleaving yields the same report. This is the property that
// lets campaign workers record completeness directly.
func TestCompletenessOrderInvariant(t *testing.T) {
	build := func(parallelism int) string {
		c := NewCompleteness()
		var wg sync.WaitGroup
		for w := 0; w < parallelism; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < 100; i += parallelism {
					stage := "a"
					if i%3 == 0 {
						stage = "b"
					}
					c.Merge(stage, "v"+string(rune('0'+i%7)), Counts{
						Attempted: int64(i), Succeeded: int64(i / 2), Abandoned: int64(i - i/2),
					})
				}
			}(w)
		}
		wg.Wait()
		return c.Report()
	}
	want := build(1)
	for _, p := range []int{2, 5} {
		if got := build(p); got != want {
			t.Fatalf("report differs at parallelism %d:\n%s\nvs\n%s", p, got, want)
		}
	}
}

func TestCompletenessReportShape(t *testing.T) {
	c := NewCompleteness()
	c.Merge("dataset", "v003", Counts{Attempted: 12, Succeeded: 4, Abandoned: 8})
	c.Merge("dataset", "v001", Counts{Attempted: 10, Succeeded: 9, Abandoned: 1})
	r := c.Report()
	if !strings.Contains(r, "dataset") || !strings.Contains(r, "worst v003: 8/12 abandoned") {
		t.Fatalf("report missing expected lines:\n%s", r)
	}
	if !strings.Contains(r, "2/2 vantages degraded") {
		t.Fatalf("report missing vantage summary:\n%s", r)
	}
}
