package telemetry

import "testing"

// TestDisabledTelemetryAllocatesNothing pins the "free when off"
// contract: with telemetry disabled every handle is nil, and the nil
// paths the pipeline's hot loops hit — spans, stats, counters,
// completeness — must not allocate at all.
func TestDisabledTelemetryAllocatesNothing(t *testing.T) {
	var tel *Telemetry
	if n := testing.AllocsPerRun(200, func() {
		sp := tel.StartSpan("stage")
		sp.AddStat("par.queue_wait_ms", 1.5)
		sp.MaxStat("par.workers", 4)
		sp.End()
	}); n != 0 {
		t.Errorf("nil span lifecycle allocates %.1f objects/op", n)
	}

	var tr *Tracer
	if n := testing.AllocsPerRun(200, func() {
		if tr.Current() != nil {
			t.Fatal("nil tracer has a current span")
		}
		tr.StartSpan("x").End()
	}); n != 0 {
		t.Errorf("nil tracer allocates %.1f objects/op", n)
	}

	var comp *Completeness
	if n := testing.AllocsPerRun(200, func() {
		comp.Merge("stage", "vantage", Counts{Attempted: 1, Succeeded: 1})
	}); n != 0 {
		t.Errorf("nil completeness allocates %.1f objects/op", n)
	}
}
