package ipranges

import (
	"bytes"
	"strings"
	"testing"

	"cloudscope/internal/netaddr"
)

func TestPublishedIsValid(t *testing.T) {
	l := Published()
	if len(l.Entries()) == 0 {
		t.Fatal("empty published list")
	}
	if got := l.Regions(EC2); len(got) != 8 {
		t.Fatalf("EC2 regions = %v", got)
	}
	if got := l.Regions(Azure); len(got) != 8 {
		t.Fatalf("Azure regions = %v", got)
	}
	if got := l.Regions(CloudFront); len(got) != 1 {
		t.Fatalf("CloudFront regions = %v", got)
	}
}

func TestLookup(t *testing.T) {
	l := Published()
	e, ok := l.Lookup(netaddr.MustParseIP("54.230.1.1"))
	if !ok || e.Provider != EC2 || e.Region != "ec2.us-east-1" {
		t.Fatalf("us-east lookup: %+v ok=%v", e, ok)
	}
	e, ok = l.Lookup(netaddr.MustParseIP("205.251.200.9"))
	if !ok || e.Provider != CloudFront {
		t.Fatalf("cloudfront lookup: %+v ok=%v", e, ok)
	}
	e, ok = l.Lookup(netaddr.MustParseIP("65.52.0.1"))
	if !ok || e.Provider != Azure || e.Region != "az.us-north" {
		t.Fatalf("azure lookup: %+v ok=%v", e, ok)
	}
	if _, ok := l.Lookup(netaddr.MustParseIP("8.8.8.8")); ok {
		t.Fatal("8.8.8.8 classified as cloud")
	}
}

func TestContainsAndRegion(t *testing.T) {
	l := Published()
	ip := netaddr.MustParseIP("54.248.9.9")
	if !l.Contains(ip, EC2) || l.Contains(ip, Azure) {
		t.Fatal("Contains provider filter wrong")
	}
	if !l.Contains(ip, "") {
		t.Fatal("Contains any-provider wrong")
	}
	if got := l.Region(ip); got != "ec2.ap-northeast-1" {
		t.Fatalf("Region = %q", got)
	}
	if got := l.Region(netaddr.MustParseIP("9.9.9.9")); got != "" {
		t.Fatalf("unlisted Region = %q", got)
	}
}

func TestEveryPublishedPrefixRoundTrips(t *testing.T) {
	l := Published()
	for _, e := range l.Entries() {
		for _, probe := range []netaddr.IP{e.CIDR.First(), e.CIDR.Last(), e.CIDR.Nth(e.CIDR.Size() / 2)} {
			got, ok := l.Lookup(probe)
			if !ok || got.Region != e.Region {
				t.Fatalf("probe %v of %s classified as %+v ok=%v", probe, e.CIDR, got, ok)
			}
		}
	}
}

func TestOverlapRejected(t *testing.T) {
	_, err := NewList([]Entry{
		{EC2, "r1", netaddr.MustParseCIDR("10.0.0.0/16")},
		{Azure, "r2", netaddr.MustParseCIDR("10.0.128.0/24")},
	})
	if err == nil {
		t.Fatal("overlapping list accepted")
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	l := Published()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Entries()) != len(l.Entries()) {
		t.Fatalf("entries %d != %d", len(parsed.Entries()), len(l.Entries()))
	}
	for i, e := range l.Entries() {
		if parsed.Entries()[i] != e {
			t.Fatalf("entry %d mismatch: %+v != %+v", i, parsed.Entries()[i], e)
		}
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	in := "# comment\n\nec2\tec2.us-east-1\t10.0.0.0/8\n"
	l, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Entries()) != 1 {
		t.Fatalf("entries = %d", len(l.Entries()))
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"ec2 r1\n", "ec2 r1 notacidr\n", "a b c d\n"} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestRegionCIDRs(t *testing.T) {
	l := Published()
	cs := l.RegionCIDRs("ec2.us-east-1")
	if len(cs) != 5 {
		t.Fatalf("us-east-1 prefixes = %d", len(cs))
	}
	if len(l.RegionCIDRs("nope")) != 0 {
		t.Fatal("unknown region returned prefixes")
	}
}

func TestUSEastIsLargest(t *testing.T) {
	// The paper's region skew depends on us-east-1 having by far the
	// most address space; assert the simulated plan preserves that.
	l := Published()
	size := func(region string) uint64 {
		var n uint64
		for _, c := range l.RegionCIDRs(region) {
			n += c.Size()
		}
		return n
	}
	east := size("ec2.us-east-1")
	for _, r := range EC2Regions[1:] {
		if size(r) >= east {
			t.Fatalf("%s (%d) >= us-east-1 (%d)", r, size(r), east)
		}
	}
}
