// Package ipranges models the public IP address range lists that Amazon
// and Microsoft published for EC2, CloudFront, and Azure in 2013. The
// paper's entire classification methodology rests on the test "does this
// DNS answer fall inside a published cloud range, and if so in which
// region" — this package provides the published lists for the simulated
// clouds, a text serialization mirroring the published format, and fast
// (provider, region) lookup.
package ipranges

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"cloudscope/internal/netaddr"
)

// Provider identifies a cloud operator in the published lists.
type Provider string

// Providers covered by the study. CloudFront is published separately
// from EC2 (the paper exploits this to tell CDN use apart from VM use).
const (
	EC2        Provider = "ec2"
	Azure      Provider = "azure"
	CloudFront Provider = "cloudfront"
)

// Entry is one published (provider, region, prefix) row.
type Entry struct {
	Provider Provider
	Region   string // canonical region id, e.g. "ec2.us-east-1"
	CIDR     netaddr.CIDR
}

// List is a set of published entries with lookup indexes.
type List struct {
	entries []Entry
	// sorted by first address for binary-search classification
	firsts  []netaddr.IP
	lasts   []netaddr.IP
	indexes []int
}

// NewList builds a List from entries. Prefixes must not overlap across
// different (provider, region) pairs; overlapping entries make
// classification ambiguous and NewList returns an error.
func NewList(entries []Entry) (*List, error) {
	l := &List{entries: append([]Entry(nil), entries...)}
	order := make([]int, len(l.entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return l.entries[order[a]].CIDR.First() < l.entries[order[b]].CIDR.First()
	})
	var prevLast netaddr.IP
	for k, idx := range order {
		e := l.entries[idx]
		f, last := e.CIDR.First(), e.CIDR.Last()
		if k > 0 && f <= prevLast {
			return nil, fmt.Errorf("ipranges: overlapping prefixes near %s", e.CIDR)
		}
		prevLast = last
		l.firsts = append(l.firsts, f)
		l.lasts = append(l.lasts, last)
		l.indexes = append(l.indexes, idx)
	}
	return l, nil
}

// MustNewList is NewList that panics on error.
func MustNewList(entries []Entry) *List {
	l, err := NewList(entries)
	if err != nil {
		panic(err)
	}
	return l
}

// Entries returns the published rows in original order.
func (l *List) Entries() []Entry { return l.entries }

// Lookup classifies ip. ok is false when the address is in no published
// range.
func (l *List) Lookup(ip netaddr.IP) (e Entry, ok bool) {
	i := sort.Search(len(l.firsts), func(i int) bool { return l.firsts[i] > ip })
	if i == 0 || ip > l.lasts[i-1] {
		return Entry{}, false
	}
	return l.entries[l.indexes[i-1]], true
}

// Contains reports whether ip is in any published range of provider p.
// With p == "" it reports membership in any range at all.
func (l *List) Contains(ip netaddr.IP, p Provider) bool {
	e, ok := l.Lookup(ip)
	return ok && (p == "" || e.Provider == p)
}

// Region returns the canonical region for ip, or "" if unlisted.
func (l *List) Region(ip netaddr.IP) string {
	e, ok := l.Lookup(ip)
	if !ok {
		return ""
	}
	return e.Region
}

// Regions returns the distinct region ids for provider p, sorted.
func (l *List) Regions(p Provider) []string {
	seen := map[string]bool{}
	for _, e := range l.entries {
		if e.Provider == p {
			seen[e.Region] = true
		}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// RegionCIDRs returns the prefixes published for one region.
func (l *List) RegionCIDRs(region string) []netaddr.CIDR {
	var out []netaddr.CIDR
	for _, e := range l.entries {
		if e.Region == region {
			out = append(out, e.CIDR)
		}
	}
	return out
}

// WriteTo serializes the list in the one-row-per-prefix text form
// "provider<TAB>region<TAB>cidr", the shape of the 2013 published lists.
func (l *List) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range l.entries {
		m, err := fmt.Fprintf(w, "%s\t%s\t%s\n", e.Provider, e.Region, e.CIDR)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Parse reads the text form written by WriteTo. Blank lines and lines
// beginning with '#' are ignored.
func Parse(r io.Reader) (*List, error) {
	sc := bufio.NewScanner(r)
	var entries []Entry
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("ipranges: line %d: want 3 fields, got %d", line, len(fields))
		}
		c, err := netaddr.ParseCIDR(fields[2])
		if err != nil {
			return nil, fmt.Errorf("ipranges: line %d: %v", line, err)
		}
		entries = append(entries, Entry{Provider: Provider(fields[0]), Region: fields[1], CIDR: c})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewList(entries)
}

// EC2Regions lists the eight EC2 regions of early 2013 in the paper's
// order (Table 9).
var EC2Regions = []string{
	"ec2.us-east-1",
	"ec2.eu-west-1",
	"ec2.us-west-1",
	"ec2.us-west-2",
	"ec2.ap-southeast-1",
	"ec2.ap-northeast-1",
	"ec2.sa-east-1",
	"ec2.ap-southeast-2",
}

// AzureRegions lists the eight Azure regions of early 2013 (Table 9).
var AzureRegions = []string{
	"az.us-east",
	"az.us-west",
	"az.us-north",
	"az.us-south",
	"az.eu-west",
	"az.eu-north",
	"az.ap-southeast",
	"az.ap-east",
}

// Published returns the simulated published list: several prefixes per
// EC2 region (us-east-1 much larger, as in 2013), one block per Azure
// region, and a dedicated CloudFront block. The address plan is
// synthetic but disjoint and stable.
func Published() *List {
	var entries []Entry
	add := func(p Provider, region string, cidrs ...string) {
		for _, c := range cidrs {
			entries = append(entries, Entry{p, region, netaddr.MustParseCIDR(c)})
		}
	}
	// EC2: region sizes roughly proportional to 2013 capacity skew.
	add(EC2, "ec2.us-east-1", "54.224.0.0/13", "50.16.0.0/15", "23.20.0.0/14", "107.20.0.0/14", "184.72.0.0/15")
	add(EC2, "ec2.eu-west-1", "54.216.0.0/14", "46.136.0.0/16", "176.34.0.0/15")
	add(EC2, "ec2.us-west-1", "54.215.0.0/16", "184.169.0.0/16", "50.18.0.0/16")
	add(EC2, "ec2.us-west-2", "54.214.0.0/16", "50.112.0.0/16")
	add(EC2, "ec2.ap-southeast-1", "54.251.0.0/16", "46.137.192.0/18")
	add(EC2, "ec2.ap-northeast-1", "54.248.0.0/15", "176.32.64.0/19")
	add(EC2, "ec2.sa-east-1", "54.232.0.0/16", "177.71.128.0/17")
	add(EC2, "ec2.ap-southeast-2", "54.252.0.0/16")
	// CloudFront: one global block, deliberately outside the EC2 ranges.
	add(CloudFront, "cloudfront.global", "204.246.164.0/22", "205.251.192.0/19", "216.137.32.0/19")
	// Azure: one or two blocks per region.
	add(Azure, "az.us-east", "168.61.32.0/20", "137.116.112.0/20")
	add(Azure, "az.us-west", "168.62.0.0/19", "137.117.0.0/19")
	add(Azure, "az.us-north", "65.52.0.0/19", "157.55.160.0/20")
	add(Azure, "az.us-south", "65.54.48.0/20", "70.37.48.0/20", "157.56.0.0/20")
	add(Azure, "az.eu-west", "94.245.88.0/21", "137.135.128.0/17")
	add(Azure, "az.eu-north", "94.245.64.0/20", "168.63.0.0/19")
	add(Azure, "az.ap-southeast", "111.221.64.0/18", "137.116.128.0/19")
	add(Azure, "az.ap-east", "111.221.16.0/21", "168.63.128.0/19")
	return MustNewList(entries)
}
