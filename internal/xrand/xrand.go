// Package xrand provides deterministic pseudo-random sources and the
// heavy-tailed distributions used throughout the cloudscope simulators.
//
// Every generator in cloudscope is seeded explicitly so that worlds,
// traces, and measurements are reproducible bit-for-bit across runs.
// The package wraps math/rand with a splittable source (so independent
// subsystems draw from independent streams) and adds the distributions
// the paper's workloads require: Zipf-ranked popularity, Pareto and
// log-normal flow sizes, and weighted categorical choice.
package xrand

import (
	"math"
	"math/rand"
	"sort"
)

// Rand is a deterministic random source. The zero value is not usable;
// construct with New or Split.
type Rand struct {
	r    *rand.Rand
	seed int64
}

// New returns a Rand seeded with seed.
func New(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Split derives an independent stream identified by label. The derived
// stream depends only on the parent's seed and the label — never on how
// much of the parent stream has been consumed — so subsystem determinism
// is independent of call order. Splitting the same parent with the same
// label twice yields identical streams.
func (rn *Rand) Split(label string) *Rand {
	return SplitSeeded(rn.seed, label)
}

// SplitSeeded derives an independent stream from an explicit parent seed
// and a label, without consuming parent state.
func SplitSeeded(seed int64, label string) *Rand {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(int64(h))
}

// SubSeed derives the seed of the independent stream identified by
// (label, n) under a parent seed, without allocating: the label hash
// SplitSeeded uses with the integer mixed in afterwards, so hot loops
// can give every item its own stream (Reseed into a reused Rand)
// instead of formatting a label string per item.
func SubSeed(seed int64, label string, n int) int64 {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= uint64(n)
	h *= 1099511628211
	h ^= h >> 29
	return int64(h)
}

// Reseed rewinds the generator onto a fresh stream for seed, reusing
// the underlying source — the alloc-free counterpart of constructing a
// new Rand for code that needs one short-lived stream per item. Pair it
// with NewFast: math/rand's default source rebuilds a 607-word state
// array on every Seed, which defeats the point of reseeding in a hot
// loop.
func (rn *Rand) Reseed(seed int64) {
	rn.seed = seed
	rn.r.Seed(seed)
}

// fastSource is a splitmix64 rand.Source64: full 64-bit output period
// 2^64, passes the usual avalanche tests, and — the property NewFast
// exists for — seeding is a single word write.
type fastSource struct{ state uint64 }

func (s *fastSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *fastSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *fastSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// NewFast returns a Rand whose Reseed is O(1): a splitmix64 source
// behind the same math/rand adapter (so every distribution helper —
// NormFloat64, Perm, Shuffle — behaves identically in kind). Streams
// from NewFast and New differ for the same seed; a subsystem must pick
// one constructor and stay with it.
func NewFast(seed int64) *Rand {
	return &Rand{r: rand.New(&fastSource{state: uint64(seed)}), seed: seed}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (rn *Rand) Intn(n int) int { return rn.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (rn *Rand) Int63() int64 { return rn.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (rn *Rand) Float64() float64 { return rn.r.Float64() }

// NormFloat64 returns a standard normal variate.
func (rn *Rand) NormFloat64() float64 { return rn.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (rn *Rand) ExpFloat64() float64 { return rn.r.ExpFloat64() }

// Bool returns true with probability p.
func (rn *Rand) Bool(p float64) bool { return rn.r.Float64() < p }

// Range returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (rn *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + rn.r.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
func (rn *Rand) Perm(n int) []int { return rn.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (rn *Rand) Shuffle(n int, swap func(i, j int)) { rn.r.Shuffle(n, swap) }

// Pareto returns a Pareto(alpha, xmin) variate: heavy-tailed sizes with
// P(X > x) = (xmin/x)^alpha for x >= xmin.
func (rn *Rand) Pareto(alpha, xmin float64) float64 {
	u := rn.r.Float64()
	for u == 0 {
		u = rn.r.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// LogNormal returns exp(N(mu, sigma)).
func (rn *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rn.r.NormFloat64())
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF once; use NewZipf for repeated
// draws over the same support.
type Zipf struct {
	cdf []float64
	rn  *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(rn *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rn: rn}
}

// Next returns the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	u := z.rn.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// NextR draws a rank using an explicit source, letting one precomputed
// CDF be shared across many independent streams.
func (z *Zipf) NextR(rn *Rand) int {
	u := rn.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the size of the sampler's support.
func (z *Zipf) N() int { return len(z.cdf) }

// Weighted selects index i with probability weights[i]/sum(weights).
// Weights must be non-negative with a positive sum.
type Weighted struct {
	cdf []float64
	rn  *Rand
}

// NewWeighted builds a categorical sampler from weights.
func NewWeighted(rn *Rand, weights []float64) *Weighted {
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("xrand: weights sum to zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Weighted{cdf: cdf, rn: rn}
}

// Next returns the next weighted index.
func (w *Weighted) Next() int {
	return w.NextR(w.rn)
}

// NextR draws an index using an explicit source, letting one
// precomputed CDF be shared across many independent streams.
func (w *Weighted) NextR(rn *Rand) int {
	u := rn.Float64()
	i := sort.SearchFloat64s(w.cdf, u)
	if i >= len(w.cdf) {
		i = len(w.cdf) - 1
	}
	return i
}

// Pick returns one element of choices selected by weights. It panics if
// lengths differ.
func Pick[T any](rn *Rand, choices []T, weights []float64) T {
	if len(choices) != len(weights) {
		panic("xrand: Pick length mismatch")
	}
	return choices[NewWeighted(rn, weights).Next()]
}

// PickUniform returns a uniformly chosen element of choices.
func PickUniform[T any](rn *Rand, choices []T) T {
	return choices[rn.Intn(len(choices))]
}

// --- Stateless hashing -------------------------------------------------
//
// The helpers below turn arbitrary keys into well-distributed uint64
// hashes and uniform [0,1) fractions without any generator state. They
// back the per-event fault draws (packet loss, chaos scenarios): a
// verdict derived purely from the event's identity is the same no
// matter which worker evaluates it or in what order, which is what
// keeps fault-injected runs byte-identical across worker counts.

// mix64 is the splitmix64 finalizer: a cheap avalanche so related
// inputs (consecutive indexes, nearby IPs) land far apart.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 folds the values into one well-distributed hash. Hash64() is a
// fixed non-zero constant; every appended value permutes the state.
func Hash64(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h = mix64(h ^ v)
	}
	return h
}

// HashString folds s into seed, FNV-style, and finalizes.
func HashString(seed uint64, s string) uint64 {
	h := seed ^ 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// HashBytes folds b into seed, FNV-style, and finalizes.
func HashBytes(seed uint64, b []byte) uint64 {
	h := seed ^ 14695981039346656037
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// Frac maps a hash to a uniform float64 in [0, 1).
func Frac(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
