package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1000000) == b.Intn(1000000) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("suspiciously correlated streams: %d/100 equal draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	p := New(7)
	a := p.Split("dns")
	b := New(7).Split("dns")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("Split not deterministic across identical parents")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	p := New(7)
	a := p.Split("dns")
	c := p.Split("cloud")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1<<30) == c.Intn(1<<30) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split streams correlated: %d matches", same)
	}
}

func TestSplitSeeded(t *testing.T) {
	a := SplitSeeded(9, "x")
	b := SplitSeeded(9, "x")
	if a.Int63() != b.Int63() {
		t.Fatal("SplitSeeded not deterministic")
	}
	c := SplitSeeded(9, "y")
	d := SplitSeeded(10, "x")
	if v := a.Int63(); v == c.Int63() && v == d.Int63() {
		t.Fatal("SplitSeeded ignores label/seed")
	}
}

func TestRange(t *testing.T) {
	rn := New(3)
	for i := 0; i < 1000; i++ {
		v := rn.Range(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("Range(5,9) = %d out of bounds", v)
		}
	}
	if got := rn.Range(4, 4); got != 4 {
		t.Fatalf("Range(4,4) = %d, want 4", got)
	}
}

func TestRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(5,4) did not panic")
		}
	}()
	New(1).Range(5, 4)
}

func TestBoolProbability(t *testing.T) {
	rn := New(11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if rn.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) hit rate %.3f", frac)
	}
}

func TestParetoTail(t *testing.T) {
	rn := New(5)
	const alpha, xmin = 1.5, 10.0
	n, over := 200000, 0
	for i := 0; i < n; i++ {
		v := rn.Pareto(alpha, xmin)
		if v < xmin {
			t.Fatalf("Pareto below xmin: %f", v)
		}
		if v > 100 {
			over++
		}
	}
	// P(X>100) = (10/100)^1.5 ~= 0.0316.
	frac := float64(over) / float64(n)
	if math.Abs(frac-0.0316) > 0.01 {
		t.Fatalf("Pareto tail mass %.4f, want ~0.0316", frac)
	}
}

func TestLogNormalMedian(t *testing.T) {
	rn := New(6)
	n := 100000
	below := 0
	mu := 3.0
	for i := 0; i < n; i++ {
		if rn.LogNormal(mu, 1.2) < math.Exp(mu) {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("log-normal median off: %.3f below exp(mu)", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	rn := New(8)
	z := NewZipf(rn, 1000, 1.0)
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		r := z.Next()
		if r < 0 || r >= 1000 {
			t.Fatalf("Zipf rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] < counts[9]*5 {
		t.Fatalf("rank 0 (%d) not dominant over rank 9 (%d)", counts[0], counts[9])
	}
	if z.N() != 1000 {
		t.Fatalf("N = %d", z.N())
	}
}

func TestWeighted(t *testing.T) {
	rn := New(10)
	w := NewWeighted(rn, []float64{0, 1, 3})
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[w.Next()]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio %.2f, want ~3", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"negative": {1, -1},
		"zero-sum": {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights did not panic", name)
				}
			}()
			NewWeighted(New(1), weights)
		}()
	}
}

func TestPick(t *testing.T) {
	rn := New(12)
	got := Pick(rn, []string{"a", "b"}, []float64{1, 0})
	if got != "a" {
		t.Fatalf("Pick = %q, want a", got)
	}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[PickUniform(rn, []string{"x", "y", "z"})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("PickUniform covered %d/3 choices", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rn := New(seed)
		p := rn.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParetoMonotoneInXmin(t *testing.T) {
	// Property: scaling xmin scales every sample by the same factor for
	// the same underlying uniform stream.
	f := func(seed int64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			x, y := a.Pareto(2, 1), b.Pareto(2, 10)
			if math.Abs(y-10*x) > 1e-9*y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
