// Package classify implements §3.2's analyses of the Alexa subdomains
// dataset: the provider breakdown of domains and subdomains (Table 3),
// the top EC2-using domains by rank (Table 4), the rank skew of cloud
// adoption, and the most common subdomain prefixes.
package classify

import (
	"sort"
	"strings"

	"cloudscope/internal/core/dataset"
	"cloudscope/internal/stats"
)

// Category is a Table 3 row.
type Category int

// Table 3 categories.
const (
	EC2Only Category = iota
	EC2Other
	AzureOnly
	AzureOther
	EC2Azure
	NumCategories
)

// String names the category as Table 3 does.
func (c Category) String() string {
	switch c {
	case EC2Only:
		return "EC2 only"
	case EC2Other:
		return "EC2 + Other"
	case AzureOnly:
		return "Azure only"
	case AzureOther:
		return "Azure + Other"
	case EC2Azure:
		return "EC2 + Azure"
	}
	return "?"
}

// Breakdown is the Table 3 result.
type Breakdown struct {
	Domains    [NumCategories]int
	Subdomains [NumCategories]int
	// Totals across categories.
	TotalDomains    int
	TotalSubdomains int
	// Provider totals (EC2 total / Azure total rows; overlapping).
	EC2Domains, AzureDomains       int
	EC2Subdomains, AzureSubdomains int
}

// Ranker maps a domain name to its Alexa rank (0 = unranked).
type Ranker interface {
	RankOf(domain string) int
}

// Classify computes Table 3 from a dataset.
//
// Subdomain categories follow the paper: a subdomain is "EC2 only" if
// it always resolved only to EC2 addresses; "EC2 + Other" if it mixed
// EC2 and non-cloud addresses; similarly for Azure and for the
// EC2+Azure overlap. Domain categories aggregate subdomains, with
// "Other" meaning the domain also has non-cloud-resolving subdomains —
// approximated here, as in the paper, by whether any cloud-using
// subdomain mixes providers or the domain's discovered subdomains are
// not all cloud-using.
func Classify(ds *dataset.Dataset) *Breakdown {
	b := &Breakdown{}
	for domain, obsList := range ds.ByDomain {
		if len(obsList) == 0 {
			continue
		}
		var domEC2, domAzure, domOther bool
		for _, o := range obsList {
			ec2, azure, other := o.ProviderOf(ds.Ranges)
			domEC2 = domEC2 || ec2
			domAzure = domAzure || azure
			domOther = domOther || other
			b.Subdomains[categorize(ec2, azure, other)]++
			b.TotalSubdomains++
			if ec2 {
				b.EC2Subdomains++
			}
			if azure {
				b.AzureSubdomains++
			}
		}
		// Domains with non-cloud subdomains (or apex) count as +Other;
		// the discovery summary tells us whether more subdomains exist
		// than are cloud-using.
		if sum := ds.Domains[domain]; sum != nil && sum.SubdomainsSeen > len(obsList) {
			domOther = true
		}
		b.Domains[categorize(domEC2, domAzure, domOther)]++
		b.TotalDomains++
		if domEC2 {
			b.EC2Domains++
		}
		if domAzure {
			b.AzureDomains++
		}
	}
	return b
}

func categorize(ec2, azure, other bool) Category {
	switch {
	case ec2 && azure:
		return EC2Azure
	case ec2 && other:
		return EC2Other
	case ec2:
		return EC2Only
	case azure && other:
		return AzureOther
	default:
		return AzureOnly
	}
}

// TopDomainRow is a Table 4 row.
type TopDomainRow struct {
	Rank      int
	Domain    string
	TotalSubs int // all discovered subdomains
	CloudSubs int // cloud-using subdomains
}

// TopEC2Domains returns the n highest-ranked EC2-using domains,
// excluding Azure-dominated ones (as Table 4 excludes live.com etc.).
func TopEC2Domains(ds *dataset.Dataset, ranker Ranker, n int) []TopDomainRow {
	var rows []TopDomainRow
	for domain, obsList := range ds.ByDomain {
		usesEC2 := false
		azureOnly := true
		cloudSubs := 0
		for _, o := range obsList {
			ec2, azure, _ := o.ProviderOf(ds.Ranges)
			if ec2 {
				usesEC2 = true
				azureOnly = false
			}
			if !azure {
				azureOnly = false
			}
			cloudSubs++
		}
		if !usesEC2 || azureOnly {
			continue
		}
		rank := ranker.RankOf(domain)
		if rank == 0 {
			continue
		}
		total := cloudSubs
		if sum := ds.Domains[domain]; sum != nil {
			total = sum.SubdomainsSeen
		}
		rows = append(rows, TopDomainRow{Rank: rank, Domain: domain, TotalSubs: total, CloudSubs: cloudSubs})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Rank < rows[j].Rank })
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// TopCloudDomains returns the n highest-ranked cloud-using domains of
// either provider.
func TopCloudDomains(ds *dataset.Dataset, ranker Ranker, n int) []TopDomainRow {
	var rows []TopDomainRow
	for domain, obsList := range ds.ByDomain {
		if len(obsList) == 0 {
			continue
		}
		rank := ranker.RankOf(domain)
		if rank == 0 {
			continue
		}
		total := len(obsList)
		if sum := ds.Domains[domain]; sum != nil {
			total = sum.SubdomainsSeen
		}
		rows = append(rows, TopDomainRow{Rank: rank, Domain: domain, TotalSubs: total, CloudSubs: len(obsList)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Rank < rows[j].Rank })
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// RankSkew reports the fraction of cloud-using domains in the top
// quarter and bottom quarter of the ranking.
func RankSkew(ds *dataset.Dataset, ranker Ranker, listSize int) (topQuarter, bottomQuarter float64) {
	var top, bottom, total int
	for _, domain := range ds.CloudDomains() {
		rank := ranker.RankOf(domain)
		if rank == 0 {
			continue
		}
		total++
		if rank <= listSize/4 {
			top++
		}
		if rank > listSize*3/4 {
			bottom++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(top) / float64(total), float64(bottom) / float64(total)
}

// PrefixShare is one subdomain-prefix popularity row.
type PrefixShare struct {
	Prefix string
	Count  int
	Share  float64
}

// TopPrefixes returns the most common first labels of cloud-using
// subdomains (§3.2 found www first at 3.3%, then m, ftp, cdn, ...).
func TopPrefixes(ds *dataset.Dataset, n int) []PrefixShare {
	counts := map[string]int{}
	total := 0
	for fqdn := range ds.Subdomains {
		label := fqdn
		if dot := strings.IndexByte(fqdn, '.'); dot > 0 {
			label = fqdn[:dot]
		}
		counts[label]++
		total++
	}
	out := make([]PrefixShare, 0, len(counts))
	for p, c := range counts {
		out = append(out, PrefixShare{Prefix: p, Count: c, Share: stats.Frac(float64(c), float64(total))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Prefix < out[j].Prefix
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Table3 renders the breakdown as the paper's Table 3.
func (b *Breakdown) Table3() *stats.Table {
	t := &stats.Table{
		Title:  "Table 3: domains and subdomains by provider use",
		Header: []string{"Provider", "# Domains", "(%)", "# Subdomains", "(%)"},
	}
	for c := Category(0); c < NumCategories; c++ {
		t.AddRow(c.String(), b.Domains[c], stats.Pct(float64(b.Domains[c]), float64(b.TotalDomains)),
			b.Subdomains[c], stats.Pct(float64(b.Subdomains[c]), float64(b.TotalSubdomains)))
	}
	t.AddRow("Total", b.TotalDomains, "100.0%", b.TotalSubdomains, "100.0%")
	t.AddRow("EC2 total", b.EC2Domains, stats.Pct(float64(b.EC2Domains), float64(b.TotalDomains)),
		b.EC2Subdomains, stats.Pct(float64(b.EC2Subdomains), float64(b.TotalSubdomains)))
	t.AddRow("Azure total", b.AzureDomains, stats.Pct(float64(b.AzureDomains), float64(b.TotalDomains)),
		b.AzureSubdomains, stats.Pct(float64(b.AzureSubdomains), float64(b.TotalSubdomains)))
	return t
}
