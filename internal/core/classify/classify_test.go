package classify

import (
	"testing"

	"cloudscope/internal/core/dataset"
	"cloudscope/internal/deploy"
)

var (
	world = deploy.Generate(deploy.DefaultConfig().Scaled(1500))
	ds    = buildDataset()
	bd    = Classify(ds)
)

func buildDataset() *dataset.Dataset {
	names := make([]string, 0, len(world.Domains))
	for _, d := range world.Domains {
		names = append(names, d.Name)
	}
	return dataset.Build(dataset.Config{
		Fabric:   world.Fabric,
		Registry: world.Registry,
		Ranges:   world.Ranges,
		Domains:  names,
		Vantages: 30,
	})
}

type ranker struct{}

func (ranker) RankOf(domain string) int {
	if d, ok := world.List.Lookup(domain); ok {
		return d.Rank
	}
	return 0
}

func TestTable3Consistency(t *testing.T) {
	var domSum, subSum int
	for c := Category(0); c < NumCategories; c++ {
		domSum += bd.Domains[c]
		subSum += bd.Subdomains[c]
	}
	if domSum != bd.TotalDomains || subSum != bd.TotalSubdomains {
		t.Fatalf("category sums %d/%d != totals %d/%d", domSum, subSum, bd.TotalDomains, bd.TotalSubdomains)
	}
	if bd.TotalDomains < 40 {
		t.Fatalf("cloud domains = %d", bd.TotalDomains)
	}
}

func TestEC2Dominance(t *testing.T) {
	// Paper: 94.9% of cloud-using domains use EC2; 5.8% Azure; most EC2
	// domains are EC2+Other; subdomain-level EC2-only is 96%.
	if f := float64(bd.EC2Domains) / float64(bd.TotalDomains); f < 0.85 {
		t.Fatalf("EC2 domain share %.2f", f)
	}
	if bd.Domains[EC2Other] < bd.Domains[EC2Only] {
		t.Fatalf("EC2+Other (%d) should exceed EC2-only (%d)", bd.Domains[EC2Other], bd.Domains[EC2Only])
	}
	// At paper scale EC2-only subdomains are 96%; at this scale the
	// scripted Azure anchors (msn.com's 89 subdomains etc.) hold a
	// fixed absolute count and inflate the Azure share, so only the
	// ordering is asserted.
	subEC2Only := float64(bd.Subdomains[EC2Only]) / float64(bd.TotalSubdomains)
	if subEC2Only < 0.45 {
		t.Fatalf("EC2-only subdomain share %.2f", subEC2Only)
	}
	if bd.Subdomains[EC2Only] <= bd.Subdomains[AzureOnly] {
		t.Fatalf("EC2-only (%d) should exceed Azure-only (%d)", bd.Subdomains[EC2Only], bd.Subdomains[AzureOnly])
	}
}

func TestHybridSubdomainsSmall(t *testing.T) {
	f := float64(bd.Subdomains[EC2Other]) / float64(bd.TotalSubdomains)
	if f > 0.10 {
		t.Fatalf("EC2+Other subdomain share %.2f, want ~0.03", f)
	}
}

func TestTable4TopDomains(t *testing.T) {
	rows := TopEC2Domains(ds, ranker{}, 10)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Rank < rows[i-1].Rank {
			t.Fatal("rows not rank-sorted")
		}
	}
	// amazon.com (rank 9) leads Table 4; Azure anchors are excluded.
	if rows[0].Domain != "amazon.com" {
		t.Fatalf("top EC2 domain = %s (rank %d)", rows[0].Domain, rows[0].Rank)
	}
	for _, r := range rows {
		if r.Domain == "live.com" || r.Domain == "msn.com" || r.Domain == "bing.com" {
			t.Fatalf("Azure-only domain %s in Table 4", r.Domain)
		}
		if r.CloudSubs > r.TotalSubs {
			t.Fatalf("%s: cloud subs %d > total %d", r.Domain, r.CloudSubs, r.TotalSubs)
		}
	}
	// amazon.com: 2 cloud subdomains of ~68 total.
	if rows[0].CloudSubs != 2 {
		t.Fatalf("amazon.com cloud subs = %d, want 2", rows[0].CloudSubs)
	}
	if rows[0].TotalSubs < 30 {
		t.Fatalf("amazon.com total subs = %d, want ~68", rows[0].TotalSubs)
	}
}

func TestTopCloudDomainsIncludesAzure(t *testing.T) {
	rows := TopCloudDomains(ds, ranker{}, 10)
	found := false
	for _, r := range rows {
		if r.Domain == "live.com" {
			found = true
		}
	}
	if !found {
		t.Fatal("live.com (rank 7) missing from top cloud domains")
	}
}

func TestRankSkew(t *testing.T) {
	top, bottom := RankSkew(ds, ranker{}, world.Cfg.NumDomains)
	if top < 0.30 || top > 0.60 {
		t.Fatalf("top-quarter share %.2f, want ~0.42", top)
	}
	if bottom >= top {
		t.Fatalf("bottom quarter (%.2f) should trail top (%.2f)", bottom, top)
	}
}

func TestTopPrefixes(t *testing.T) {
	prefixes := TopPrefixes(ds, 10)
	if len(prefixes) == 0 {
		t.Fatal("no prefixes")
	}
	// www leads (§3.2).
	if prefixes[0].Prefix != "www" {
		t.Fatalf("top prefix = %q, want www", prefixes[0].Prefix)
	}
	for i := 1; i < len(prefixes); i++ {
		if prefixes[i].Count > prefixes[i-1].Count {
			t.Fatal("prefixes not sorted by count")
		}
	}
}

func TestTable3Renders(t *testing.T) {
	s := bd.Table3().String()
	for _, want := range []string{"EC2 only", "EC2 + Other", "Azure only", "EC2 total"} {
		if !containsStr(s, want) {
			t.Fatalf("Table 3 missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
