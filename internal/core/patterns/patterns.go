// Package patterns implements §4.1: detecting front-end deployment
// patterns from DNS observations. The heuristics are the paper's,
// verbatim: a direct A answer means a VM front end (P1); CNAMEs ending
// in elb.amazonaws.com mean ELB (P2); CNAMEs containing
// elasticbeanstalk or the Heroku names mean PaaS (P2/P3); cloudapp.net
// means an Azure Cloud Service; trafficmanager.net means Azure TM;
// addresses inside CloudFront's range or msecnd.net CNAMEs mean CDN
// (P4); anything else is an unidentified CNAME.
package patterns

import (
	"sort"
	"strings"

	"cloudscope/internal/core/dataset"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/parallel"
	"cloudscope/internal/simnet"
	"cloudscope/internal/stats"
)

// Feature is a detected front-end feature.
type Feature string

// Features, named as Table 7 rows.
const (
	FeatureVM           Feature = "VM"
	FeatureELB          Feature = "ELB"
	FeatureBeanstalk    Feature = "BeanStalk (w/ ELB)"
	FeatureHerokuELB    Feature = "Heroku (w/ ELB)"
	FeatureHeroku       Feature = "Heroku (no ELB)"
	FeatureCS           Feature = "CS"
	FeatureTM           Feature = "TM"
	FeatureCloudFront   Feature = "CloudFront"
	FeatureAzureCDN     Feature = "Azure CDN"
	FeatureUnknownCNAME Feature = "Unidentified CNAME"
)

// Class is one subdomain's detection result.
type Class struct {
	Obs      *dataset.Observation
	Provider ipranges.Provider // EC2 or Azure ("" if only CDN ranges seen)
	Primary  Feature
	// FrontIPs are the feature's instances: VM IPs for FeatureVM,
	// physical ELB proxy IPs for ELB-backed features, CS IPs, etc.
	FrontIPs []netaddr.IP
	// LogicalELBs are distinct *.elb.amazonaws.com names.
	LogicalELBs []string
}

// Detect classifies one observation.
func Detect(o *dataset.Observation, ranges *ipranges.List) *Class {
	c := &Class{Obs: o}
	ec2, azure, _ := o.ProviderOf(ranges)
	switch {
	case ec2:
		c.Provider = ipranges.EC2
	case azure:
		c.Provider = ipranges.Azure
	}

	targets := o.CNAMETargets()
	var hasELB, hasBeanstalk, hasHeroku, hasCS, hasTM, hasMSECN bool
	for _, t := range targets {
		switch {
		case strings.HasSuffix(t, "elb.amazonaws.com"):
			hasELB = true
			c.LogicalELBs = append(c.LogicalELBs, t)
		case strings.Contains(t, "elasticbeanstalk"):
			hasBeanstalk = true
		case strings.Contains(t, "heroku.com") || strings.Contains(t, "herokuapp") ||
			strings.Contains(t, "herokucom") || strings.Contains(t, "herokussl"):
			hasHeroku = true
		case strings.HasSuffix(t, "cloudapp.net"):
			hasCS = true
		case strings.HasSuffix(t, "trafficmanager.net"):
			hasTM = true
		case strings.Contains(t, "msecnd.net"):
			hasMSECN = true
		}
	}
	cfIPs, cloudIPs := splitIPs(o, ranges)

	switch {
	case len(cfIPs) > 0 && len(cloudIPs) == 0:
		c.Primary = FeatureCloudFront
		c.Provider = ipranges.EC2
		c.FrontIPs = cfIPs
	case hasMSECN:
		c.Primary = FeatureAzureCDN
		c.FrontIPs = cloudIPs
	case hasBeanstalk:
		c.Primary = FeatureBeanstalk
		c.FrontIPs = cloudIPs
	case hasHeroku && hasELB:
		c.Primary = FeatureHerokuELB
		c.FrontIPs = cloudIPs
	case hasHeroku:
		c.Primary = FeatureHeroku
		c.FrontIPs = cloudIPs
	case hasELB:
		c.Primary = FeatureELB
		c.FrontIPs = cloudIPs
	case hasTM:
		c.Primary = FeatureTM
		c.FrontIPs = cloudIPs
	case hasCS:
		c.Primary = FeatureCS
		c.FrontIPs = cloudIPs
	case len(targets) == 0 && c.Provider == ipranges.EC2:
		c.Primary = FeatureVM
		c.FrontIPs = cloudIPs
	case len(targets) == 0 && c.Provider == ipranges.Azure:
		// Azure direct IP: indistinguishable CS front end (§4.1).
		c.Primary = FeatureCS
		c.FrontIPs = cloudIPs
	default:
		c.Primary = FeatureUnknownCNAME
		c.FrontIPs = cloudIPs
	}
	return c
}

// splitIPs separates CloudFront-range addresses from EC2/Azure ones.
func splitIPs(o *dataset.Observation, ranges *ipranges.List) (cf, cloud []netaddr.IP) {
	for _, ip := range o.IPs {
		e, ok := ranges.Lookup(ip)
		if !ok {
			continue
		}
		if e.Provider == ipranges.CloudFront {
			cf = append(cf, ip)
		} else {
			cloud = append(cloud, ip)
		}
	}
	return cf, cloud
}

// Result aggregates detection over a dataset.
type Result struct {
	Classes map[string]*Class // by FQDN
	// Feature usage: subdomains, domains, and distinct instance IPs.
	SubCounts  map[Feature]int
	DomCounts  map[Feature]int
	InstCounts map[Feature]int
	// Per-provider subdomain totals.
	EC2Subs, AzureSubs int
}

// DetectAll classifies the whole dataset and builds Table 7's counts.
func DetectAll(ds *dataset.Dataset) *Result {
	return DetectAllPar(ds, parallel.Options{})
}

// DetectAllPar is DetectAll fanned out over a worker pool. Detect is a
// pure function, so the per-subdomain classification shards freely;
// the Table 7 aggregation walks the results in sorted-FQDN order on
// the caller's goroutine, making the output independent of worker
// count and scheduling.
func DetectAllPar(ds *dataset.Dataset, opt parallel.Options) *Result {
	fqdns := make([]string, 0, len(ds.Subdomains))
	for fqdn := range ds.Subdomains {
		fqdns = append(fqdns, fqdn)
	}
	sort.Strings(fqdns)
	classes, err := parallel.Map(opt, fqdns, func(_ int, fqdn string) (*Class, error) {
		return Detect(ds.Subdomains[fqdn], ds.Ranges), nil
	})
	if err != nil {
		panic(err) // workers only surface panics; re-raise on the caller
	}

	r := &Result{
		Classes:    make(map[string]*Class, len(fqdns)),
		SubCounts:  map[Feature]int{},
		DomCounts:  map[Feature]int{},
		InstCounts: map[Feature]int{},
	}
	domFeatures := map[string]map[Feature]bool{}
	instances := map[Feature]map[netaddr.IP]bool{}
	for i, fqdn := range fqdns {
		c := classes[i]
		o := c.Obs
		r.Classes[fqdn] = c
		r.SubCounts[c.Primary]++
		switch c.Provider {
		case ipranges.EC2:
			r.EC2Subs++
		case ipranges.Azure:
			r.AzureSubs++
		}
		if domFeatures[o.Domain] == nil {
			domFeatures[o.Domain] = map[Feature]bool{}
		}
		domFeatures[o.Domain][c.Primary] = true
		if instances[c.Primary] == nil {
			instances[c.Primary] = map[netaddr.IP]bool{}
		}
		for _, ip := range c.FrontIPs {
			instances[c.Primary][ip] = true
		}
	}
	for _, feats := range domFeatures {
		for f := range feats {
			r.DomCounts[f]++
		}
	}
	for f, ips := range instances {
		r.InstCounts[f] = len(ips)
	}
	return r
}

// VMInstanceCounts returns, for each VM-front subdomain, its number of
// front-end VM IPs (Figure 4a's CDF input).
func (r *Result) VMInstanceCounts() []float64 {
	var out []float64
	for _, c := range r.Classes {
		if c.Primary == FeatureVM && len(c.FrontIPs) > 0 {
			out = append(out, float64(len(c.FrontIPs)))
		}
	}
	return out
}

// ELBInstanceCounts returns, for each ELB-using subdomain, its number
// of physical ELB IPs (Figure 4b's CDF input).
func (r *Result) ELBInstanceCounts() []float64 {
	var out []float64
	for _, c := range r.Classes {
		switch c.Primary {
		case FeatureELB, FeatureBeanstalk, FeatureHerokuELB:
			if len(c.FrontIPs) > 0 {
				out = append(out, float64(len(c.FrontIPs)))
			}
		}
	}
	return out
}

// SharedELBStats reports how many subdomains share each physical ELB IP.
func (r *Result) SharedELBStats() (physical int, sharedBy10Plus int) {
	users := map[netaddr.IP]int{}
	for _, c := range r.Classes {
		switch c.Primary {
		case FeatureELB, FeatureBeanstalk, FeatureHerokuELB:
			for _, ip := range c.FrontIPs {
				users[ip]++
			}
		}
	}
	for _, n := range users {
		physical++
		if n >= 10 {
			sharedBy10Plus++
		}
	}
	return physical, sharedBy10Plus
}

// Table7 renders the feature-usage summary.
func (r *Result) Table7() *stats.Table {
	t := &stats.Table{
		Title:  "Table 7: cloud feature usage",
		Header: []string{"Cloud", "Feature", "# Domains", "# Subdomains", "(% of cloud's subs)", "# Inst."},
	}
	row := func(cloud string, f Feature, denom int) {
		pct := stats.Pct(float64(r.SubCounts[f]), float64(denom))
		t.AddRow(cloud, string(f), r.DomCounts[f], r.SubCounts[f], pct, r.InstCounts[f])
	}
	for _, f := range []Feature{FeatureVM, FeatureELB, FeatureBeanstalk, FeatureHerokuELB, FeatureHeroku, FeatureCloudFront, FeatureUnknownCNAME} {
		row("EC2", f, r.EC2Subs)
	}
	for _, f := range []Feature{FeatureCS, FeatureTM, FeatureAzureCDN} {
		row("Azure", f, r.AzureSubs)
	}
	return t
}

// --- Name-server analysis (§4.1's last part + Figure 5) ---------------

// NSLocation classifies where a name server runs.
type NSLocation string

// Locations, as §4.1 categorizes them.
const (
	NSCloudFront NSLocation = "cloudfront-route53"
	NSEC2VM      NSLocation = "ec2-vm"
	NSAzure      NSLocation = "azure"
	NSOutside    NSLocation = "outside"
)

// NSAnalysis is the name-server study output.
type NSAnalysis struct {
	// Servers maps NS host name → location.
	Servers map[string]NSLocation
	// Counts per location.
	Counts map[NSLocation]int
	// PerSubdomainNS is Figure 5's input: number of NS per subdomain.
	PerSubdomainNS []float64
}

// AnalyzeNS resolves each cloud-using domain's NS records from
// distributed vantages and locates the servers against the published
// ranges.
func AnalyzeNS(ds *dataset.Dataset, fabric *simnet.Fabric, registry *dnssrv.Registry, vantages int) *NSAnalysis {
	return AnalyzeNSMetered(ds, fabric, registry, vantages, nil)
}

// AnalyzeNSMetered is AnalyzeNS with resolver instrumentation shared
// across its vantage resolvers.
func AnalyzeNSMetered(ds *dataset.Dataset, fabric *simnet.Fabric, registry *dnssrv.Registry, vantages int, m *dnssrv.ResolverMetrics) *NSAnalysis {
	return AnalyzeNSPar(ds, fabric, registry, vantages, m, parallel.Options{Workers: 1})
}

// AnalyzeNSPar is AnalyzeNSMetered with the per-domain NS lookups and
// per-server location scans fanned out over opt. The analysis draws no
// randomness and folds results in sorted-domain (then first-seen
// server) order, so the output is byte-identical at every worker count.
func AnalyzeNSPar(ds *dataset.Dataset, fabric *simnet.Fabric, registry *dnssrv.Registry, vantages int, m *dnssrv.ResolverMetrics, opt parallel.Options) *NSAnalysis {
	if vantages <= 0 {
		vantages = 50
	}
	out := &NSAnalysis{Servers: map[string]NSLocation{}, Counts: map[NSLocation]int{}}
	resolvers := make([]*dnssrv.Resolver, vantages)
	for i := range resolvers {
		resolvers[i] = dnssrv.NewResolver(fabric, registry, netaddr.MustParseIP("194.9.0.0")+netaddr.IP(i*17+3))
		resolvers[i].NoRecurse = true
		resolvers[i].Metrics = m
	}
	// Fan out the per-domain NS lookups (NoRecurse resolvers carry no
	// per-query state, so one resolver serves all workers).
	domains := ds.CloudDomains()
	nsLists, err := parallel.Map(opt, domains, func(_ int, domain string) ([]string, error) {
		names, err := resolvers[0].LookupNS(domain)
		if err != nil {
			return nil, nil // unresolvable domains are skipped, not fatal
		}
		return names, nil
	})
	if err != nil {
		panic(err) // lookups return nil on failure; only re-raised panics arrive here
	}
	// Collect unique servers in first-seen order over the sorted
	// domain list — the same order the sequential loop produced.
	domNS := map[string][]string{}
	var uniqueNS []string
	seenNS := map[string]bool{}
	for i, domain := range domains {
		if nsLists[i] == nil {
			continue
		}
		domNS[domain] = nsLists[i]
		for _, ns := range nsLists[i] {
			if !seenNS[ns] {
				seenNS[ns] = true
				uniqueNS = append(uniqueNS, ns)
			}
		}
	}
	// Fan out the per-server location scans.
	locs, err := parallel.Map(opt, uniqueNS, func(_ int, ns string) (NSLocation, error) {
		loc := NSOutside
		for _, rv := range resolvers {
			chain, err := rv.LookupA(ns)
			if err != nil {
				continue
			}
			for _, rr := range chain {
				if rr.Type != dnswire.TypeA {
					continue
				}
				if e, ok := ds.Ranges.Lookup(rr.IP); ok {
					switch e.Provider {
					case ipranges.CloudFront:
						loc = NSCloudFront
					case ipranges.EC2:
						loc = NSEC2VM
					case ipranges.Azure:
						loc = NSAzure
					}
				}
			}
		}
		return loc, nil
	})
	if err != nil {
		panic(err) // scans cannot fail; only re-raised panics arrive here
	}
	for i, ns := range uniqueNS {
		out.Servers[ns] = locs[i]
	}
	for _, loc := range out.Servers {
		out.Counts[loc]++
	}
	for domain, obsList := range ds.ByDomain {
		n := float64(len(domNS[domain]))
		for range obsList {
			out.PerSubdomainNS = append(out.PerSubdomainNS, n)
		}
	}
	sort.Float64s(out.PerSubdomainNS)
	return out
}
