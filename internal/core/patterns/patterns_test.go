package patterns

import (
	"math"
	"testing"

	"cloudscope/internal/core/dataset"
	"cloudscope/internal/deploy"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/stats"
)

var (
	world = deploy.Generate(deploy.DefaultConfig().Scaled(1500))
	ds    = buildDataset()
	res   = DetectAll(ds)
)

func buildDataset() *dataset.Dataset {
	names := make([]string, 0, len(world.Domains))
	for _, d := range world.Domains {
		names = append(names, d.Name)
	}
	return dataset.Build(dataset.Config{
		Fabric:   world.Fabric,
		Registry: world.Registry,
		Ranges:   world.Ranges,
		Domains:  names,
		Vantages: 30,
	})
}

// truthFeature maps ground-truth patterns onto expected detections.
func truthFeature(p deploy.Pattern) (Feature, bool) {
	switch p {
	case deploy.PatternVM, deploy.PatternHybrid:
		return FeatureVM, true
	case deploy.PatternELB:
		return FeatureELB, true
	case deploy.PatternBeanstalk:
		return FeatureBeanstalk, true
	case deploy.PatternHerokuELB:
		return FeatureHerokuELB, true
	case deploy.PatternHeroku:
		return FeatureHeroku, true
	case deploy.PatternOpaqueCNAME, deploy.PatternAzureOpaque:
		return FeatureUnknownCNAME, true
	case deploy.PatternAzureCS, deploy.PatternAzureIP:
		return FeatureCS, true
	case deploy.PatternAzureTM:
		return FeatureTM, true
	case deploy.PatternCDN:
		return FeatureCloudFront, true
	case deploy.PatternAzureCDN:
		return FeatureAzureCDN, true
	}
	return "", false
}

func TestDetectionMatchesGroundTruth(t *testing.T) {
	checked, correct := 0, 0
	wrongByPair := map[string]int{}
	for fqdn, c := range res.Classes {
		sub, ok := world.Subdomain(fqdn)
		if !ok {
			t.Fatalf("phantom classified subdomain %s", fqdn)
		}
		want, ok := truthFeature(sub.Pattern)
		if !ok {
			continue
		}
		checked++
		if c.Primary == want {
			correct++
		} else {
			wrongByPair[string(sub.Pattern)+"->"+string(c.Primary)]++
		}
	}
	if checked < 200 {
		t.Fatalf("only %d classifications checked", checked)
	}
	if acc := float64(correct) / float64(checked); acc < 0.97 {
		t.Fatalf("detection accuracy %.3f; confusion: %v", acc, wrongByPair)
	}
}

func TestTable7Shares(t *testing.T) {
	if res.EC2Subs < 150 {
		t.Fatalf("EC2 subs = %d", res.EC2Subs)
	}
	share := func(f Feature) float64 { return float64(res.SubCounts[f]) / float64(res.EC2Subs) }
	if s := share(FeatureVM); s < 0.60 || s > 0.82 {
		t.Fatalf("VM share %.2f, want ~0.72", s)
	}
	if s := share(FeatureHeroku) + share(FeatureHerokuELB); s < 0.04 || s > 0.14 {
		t.Fatalf("heroku share %.2f, want ~0.08", s)
	}
	// The ~14 scripted anchor ELB subdomains inflate the share at this
	// small scale (paper scale: 4%); accept up to 13%.
	if s := share(FeatureELB) + share(FeatureBeanstalk) + share(FeatureHerokuELB); s < 0.02 || s > 0.13 {
		t.Fatalf("ELB share %.2f, want ~0.04-0.12", s)
	}
	if s := share(FeatureUnknownCNAME); s < 0.09 || s > 0.24 {
		t.Fatalf("unidentified share %.2f, want ~0.16", s)
	}
	// Azure: CS front ends dominate what is identifiable.
	azShare := func(f Feature) float64 { return float64(res.SubCounts[f]) / float64(res.AzureSubs) }
	if s := azShare(FeatureCS); s < 0.5 {
		t.Fatalf("CS share %.2f, want ~0.70", s)
	}
}

func TestHerokuMultiplexing(t *testing.T) {
	// All Heroku-no-ELB subdomains resolve into the small shared pool.
	ips := map[string]bool{}
	herokuSubs := 0
	for _, c := range res.Classes {
		if c.Primary != FeatureHeroku {
			continue
		}
		herokuSubs++
		for _, ip := range c.FrontIPs {
			ips[ip.String()] = true
		}
	}
	if herokuSubs < 5 {
		t.Skip("too few heroku subdomains in this world")
	}
	if len(ips) > len(world.Heroku.Pool) {
		t.Fatalf("heroku IPs %d exceed pool %d", len(ips), len(world.Heroku.Pool))
	}
	if herokuSubs < len(ips) {
		t.Fatalf("no multiplexing: %d subs over %d IPs", herokuSubs, len(ips))
	}
}

func TestFigure4CDFs(t *testing.T) {
	vm := res.VMInstanceCounts()
	if len(vm) < 100 {
		t.Fatalf("VM subdomains = %d", len(vm))
	}
	cdf := stats.NewCDF(vm)
	// Figure 4a: ~35% one VM, about half two, 15% three+.
	if got := cdf.At(1); math.Abs(got-0.33) > 0.15 {
		t.Fatalf("P(vms<=1) = %.2f, want ~0.35", got)
	}
	if got := 1 - cdf.At(2); got < 0.08 || got > 0.35 {
		t.Fatalf("P(vms>=3) = %.2f, want ~0.15", got)
	}
	// Figure 4b over non-anchor subdomains (scripted anchors like
	// m.netflix.com carry the paper's published 58- and 90-IP fleets,
	// which dominate a small sample): ~95% have ≤5 physical IPs.
	var elb []float64
	anchors := map[string]bool{
		"netflix.com": true, "fc2.com": true, "amazon.com": true,
		"conduit.com": true, "dropbox.com": true, "instagram.com": true,
		"foursquare.com": true, "linkedin.com": true,
	}
	for fqdn, c := range res.Classes {
		switch c.Primary {
		case FeatureELB, FeatureBeanstalk, FeatureHerokuELB:
			sub, _ := world.Subdomain(fqdn)
			if sub != nil && anchors[sub.Domain.Name] {
				continue
			}
			elb = append(elb, float64(len(c.FrontIPs)))
		}
	}
	if len(elb) == 0 {
		t.Skip("no non-anchor ELB subdomains")
	}
	ecdf := stats.NewCDF(elb)
	if got := ecdf.At(5); got < 0.80 {
		t.Fatalf("P(elbIPs<=5) = %.2f over %d subs, want ~0.95", got, len(elb))
	}
	// The anchors' big fleets are themselves visible (m.netflix.com).
	if m, ok := res.Classes["m.netflix.com"]; ok {
		if len(m.FrontIPs) < 60 {
			t.Fatalf("m.netflix.com physical ELBs = %d, want ~90", len(m.FrontIPs))
		}
	}
}

func TestSharedELBs(t *testing.T) {
	physical, shared10 := res.SharedELBStats()
	if physical == 0 {
		t.Skip("no physical ELBs")
	}
	// Total (subdomain, IP) pairs ≥ distinct physical IPs; strictly
	// greater once any proxy is shared.
	pairs := 0
	for _, c := range res.Classes {
		switch c.Primary {
		case FeatureELB, FeatureBeanstalk, FeatureHerokuELB:
			pairs += len(c.FrontIPs)
		}
	}
	if pairs < physical {
		t.Fatalf("pairs %d < physical %d", pairs, physical)
	}
	_ = shared10 // sharing by 10+ needs paper-scale data; just exercise it
}

func TestNSAnalysis(t *testing.T) {
	ns := AnalyzeNS(ds, world.Fabric, world.Registry, 20)
	if len(ns.Servers) == 0 {
		t.Fatal("no name servers analyzed")
	}
	total := 0
	for _, n := range ns.Counts {
		total += n
	}
	if total != len(ns.Servers) {
		t.Fatalf("counts %d != servers %d", total, len(ns.Servers))
	}
	// Majority outside the clouds; route53 present.
	if ns.Counts[NSOutside] < ns.Counts[NSCloudFront] {
		t.Fatalf("outside (%d) should dominate route53 (%d)", ns.Counts[NSOutside], ns.Counts[NSCloudFront])
	}
	if ns.Counts[NSCloudFront] == 0 {
		t.Fatal("no route53 name servers found")
	}
	// Figure 5: most subdomains use 2–10 name servers.
	if len(ns.PerSubdomainNS) == 0 {
		t.Fatal("no per-subdomain NS counts")
	}
	cdf := stats.NewCDF(ns.PerSubdomainNS)
	if got := cdf.At(10) - cdf.At(1); got < 0.6 {
		t.Fatalf("P(2<=ns<=10) = %.2f", got)
	}
}

func TestTable7Renders(t *testing.T) {
	tbl := res.Table7()
	s := tbl.String()
	for _, want := range []string{"VM", "Heroku", "CS", "Unidentified"} {
		if !contains(s, want) {
			t.Fatalf("Table 7 missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (stringIndex(s, sub) >= 0))
}

func stringIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestProviderAssignment(t *testing.T) {
	for fqdn, c := range res.Classes {
		sub, _ := world.Subdomain(fqdn)
		if sub == nil {
			continue
		}
		if sub.Provider == ipranges.EC2 && c.Provider == ipranges.Azure {
			t.Fatalf("%s: EC2 deployment classified as Azure", fqdn)
		}
		if sub.Provider == ipranges.Azure && c.Provider == ipranges.EC2 {
			t.Fatalf("%s: Azure deployment classified as EC2", fqdn)
		}
	}
}
