// Package backend is the reproduction's take on the paper's explicit
// future-work item: "we leave an exploration of deployment/usage
// patterns covering the later steps (e.g. back-end processing) for
// future work" (§2).
//
// Back-end tiers are invisible to DNS, so unlike the rest of
// internal/core this analysis runs on ground truth — it asks what a
// future measurement study *would* find: how back ends are placed
// relative to front ends, what the placement costs in request-path
// latency, and how it changes zone-failure blast radius.
package backend

import (
	"sort"
	"time"

	"cloudscope/internal/deploy"
	"cloudscope/internal/stats"
)

// PolicyStats aggregates one placement policy's properties.
type PolicyStats struct {
	Policy     string
	Subdomains int
	// MeanFrontBackRTTms is the mean front-end→back-end round trip a
	// request pays per tier hop.
	MeanFrontBackRTTms float64
	// SameZoneShare is the share of (front, back) pairs in one zone.
	SameZoneShare float64
	// SurvivesFrontZoneLoss is the share of subdomains whose back ends
	// keep at least one instance outside the front ends' zones.
	SurvivesFrontZoneLoss float64
}

// Analysis is the full back-end study.
type Analysis struct {
	// WithBackends / Total front-end subdomains examined.
	WithBackends, Total int
	Policies            []PolicyStats
}

// Analyze computes the back-end placement study over a world.
func Analyze(w *deploy.World) *Analysis {
	a := &Analysis{}
	type acc struct {
		subs      int
		rttSum    float64
		pairs     int
		samePairs int
		survive   int
	}
	per := map[string]*acc{}
	for _, d := range w.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			if len(s.VMs) == 0 {
				continue
			}
			a.Total++
			if len(s.Backends) == 0 {
				continue
			}
			a.WithBackends++
			st := per[s.BackendPolicy]
			if st == nil {
				st = &acc{}
				per[s.BackendPolicy] = st
			}
			st.subs++
			frontZones := map[[2]interface{}]bool{}
			for _, f := range s.VMs {
				frontZones[[2]interface{}{f.Region, f.ZoneIndex}] = true
			}
			survives := false
			for _, b := range s.Backends {
				if !frontZones[[2]interface{}{b.Region, b.ZoneIndex}] {
					survives = true
				}
				for _, f := range s.VMs {
					rtt := w.EC2.BaseRTT(f.Region, f.ZoneIndex, b.Region, b.ZoneIndex)
					st.rttSum += float64(rtt) / float64(time.Millisecond)
					st.pairs++
					if f.Region == b.Region && f.ZoneIndex == b.ZoneIndex {
						st.samePairs++
					}
				}
			}
			if survives {
				st.survive++
			}
		}
	}
	for policy, st := range per {
		a.Policies = append(a.Policies, PolicyStats{
			Policy:                policy,
			Subdomains:            st.subs,
			MeanFrontBackRTTms:    st.rttSum / float64(st.pairs),
			SameZoneShare:         stats.Frac(float64(st.samePairs), float64(st.pairs)),
			SurvivesFrontZoneLoss: stats.Frac(float64(st.survive), float64(st.subs)),
		})
	}
	sort.Slice(a.Policies, func(i, j int) bool { return a.Policies[i].Policy < a.Policies[j].Policy })
	return a
}

// Table renders the study.
func (a *Analysis) Table() *stats.Table {
	t := &stats.Table{
		Title:  "Extension: back-end placement (ground-truth study; future work in the paper)",
		Header: []string{"Policy", "# Subdom", "front-back RTT (ms)", "same-zone pairs", "survives front-zone loss"},
	}
	for _, p := range a.Policies {
		t.AddRow(p.Policy, p.Subdomains,
			p.MeanFrontBackRTTms,
			stats.Pct(p.SameZoneShare, 1),
			stats.Pct(p.SurvivesFrontZoneLoss, 1))
	}
	return t
}
