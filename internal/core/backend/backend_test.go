package backend

import (
	"strings"
	"testing"

	"cloudscope/internal/deploy"
)

var (
	world = deploy.Generate(deploy.DefaultConfig().Scaled(2500))
	an    = Analyze(world)
)

func TestBackendsPlanted(t *testing.T) {
	if an.Total < 100 {
		t.Fatalf("front-end subdomains = %d", an.Total)
	}
	frac := float64(an.WithBackends) / float64(an.Total)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("backend fraction %.2f, want ~0.5", frac)
	}
}

func TestPolicyProperties(t *testing.T) {
	byPolicy := map[string]PolicyStats{}
	for _, p := range an.Policies {
		byPolicy[p.Policy] = p
	}
	colo, okC := byPolicy["colocated"]
	spread, okS := byPolicy["spread"]
	remote, okR := byPolicy["remote"]
	if !okC || !okS || !okR {
		t.Fatalf("missing policies: %+v", an.Policies)
	}
	// Colocated dominates in count.
	if colo.Subdomains < spread.Subdomains || colo.Subdomains < remote.Subdomains {
		t.Fatalf("colocated (%d) should dominate spread (%d) and remote (%d)",
			colo.Subdomains, spread.Subdomains, remote.Subdomains)
	}
	// Latency ordering: colocated < spread << remote.
	if !(colo.MeanFrontBackRTTms < spread.MeanFrontBackRTTms) {
		t.Fatalf("colocated RTT %.2f >= spread %.2f", colo.MeanFrontBackRTTms, spread.MeanFrontBackRTTms)
	}
	if remote.MeanFrontBackRTTms < spread.MeanFrontBackRTTms*5 {
		t.Fatalf("remote RTT %.2f not wide-area scale", remote.MeanFrontBackRTTms)
	}
	// Failure-survival ordering: remote ≥ spread > colocated.
	if colo.SurvivesFrontZoneLoss >= spread.SurvivesFrontZoneLoss {
		t.Fatalf("colocated survival %.2f >= spread %.2f — the latency/robustness trade-off is missing",
			colo.SurvivesFrontZoneLoss, spread.SurvivesFrontZoneLoss)
	}
	if remote.SurvivesFrontZoneLoss < 0.95 {
		t.Fatalf("remote survival %.2f, want ~1", remote.SurvivesFrontZoneLoss)
	}
	// Same-zone share reflects the placement semantics.
	if colo.SameZoneShare < 0.5 {
		t.Fatalf("colocated same-zone share %.2f", colo.SameZoneShare)
	}
}

func TestBackendsInvisibleToDNS(t *testing.T) {
	// Backend IPs must never appear in any zone's records: they are the
	// unmeasurable part. Spot-check through the world's own resolver
	// path by scanning zone record IPs.
	backendIPs := map[string]bool{}
	for _, d := range world.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			for _, b := range s.Backends {
				backendIPs[b.PublicIP.String()] = true
			}
		}
	}
	if len(backendIPs) == 0 {
		t.Skip("no backends in world")
	}
	for _, d := range world.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			for _, vm := range s.VMs {
				if backendIPs[vm.PublicIP.String()] {
					t.Fatalf("backend IP reused as front end: %s", vm.PublicIP)
				}
			}
		}
	}
}

func TestTableRenders(t *testing.T) {
	s := an.Table().String()
	for _, want := range []string{"colocated", "spread", "remote"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}
