// Package zones implements §4.3: estimating which EC2 availability
// zones the dataset's physical instances occupy, using the cartography
// package's latency and address-proximity methods, and aggregating zone
// usage per subdomain and domain (Tables 12–15, Figures 7 and 8).
package zones

import (
	"sort"

	"cloudscope/internal/cartography"
	"cloudscope/internal/chaos"
	"cloudscope/internal/cloud"
	"cloudscope/internal/core/dataset"
	"cloudscope/internal/core/patterns"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/parallel"
	"cloudscope/internal/stats"
	"cloudscope/internal/telemetry"
)

// Config parameterizes the zone study.
type Config struct {
	// Accounts and SamplesPerZone control proximity sampling (the paper
	// had 5,096 samples across several accounts).
	Accounts       int
	SamplesPerZone int
	Latency        cartography.LatencyConfig
	Seed           int64
	// Par controls the latency-probing fan-out; results are identical
	// at every worker count.
	Par parallel.Options
	// Chaos, when non-nil, injects account outages and regional probe
	// faults; Completeness records the resulting coverage.
	Chaos        *chaos.Engine
	Completeness *telemetry.Completeness
}

// DefaultConfig mirrors the paper's setup at library scale.
func DefaultConfig() Config {
	return Config{
		Accounts:       6,
		SamplesPerZone: 8,
		Latency:        cartography.DefaultLatencyConfig(),
		Seed:           1,
	}
}

// ZoneKey identifies one availability zone (reference label space).
type ZoneKey struct {
	Region string
	Zone   int
}

// Study is the full §4.3 result.
type Study struct {
	Cloud    *cloud.Cloud
	Ref      *cloud.Account
	PM       *cartography.ProximityMap
	Lat      map[string]*cartography.LatencyRegionResult
	Combined *cartography.CombinedResult
	Samples  []cartography.Sample
	// Targets are the dataset's physical EC2 instances.
	Targets []*cloud.Instance
	// SubZones maps each EC2-using subdomain to its identified zones.
	SubZones map[string][]ZoneKey
	// subDomain maps subdomain FQDN → domain.
	subDomain map[string]string
}

// Run executes the study over a dataset's detection results.
func Run(ds *dataset.Dataset, det *patterns.Result, ec2 *cloud.Cloud, cfg Config) *Study {
	s := &Study{
		Cloud:     ec2,
		SubZones:  map[string][]ZoneKey{},
		subDomain: map[string]string{},
	}
	// Collect target instances: every front-end IP inside EC2's ranges
	// (VMs, physical ELBs, PaaS nodes). CloudFront edges carry no zone.
	subIPs := map[string][]netaddr.IP{}
	seen := map[netaddr.IP]bool{}
	for fqdn, c := range det.Classes {
		if c.Provider != ipranges.EC2 || c.Primary == patterns.FeatureCloudFront {
			continue
		}
		o := ds.Subdomains[fqdn]
		if o == nil {
			continue
		}
		s.subDomain[fqdn] = o.Domain
		for _, ip := range c.FrontIPs {
			if e, ok := ds.Ranges.Lookup(ip); !ok || e.Provider != ipranges.EC2 {
				continue
			}
			subIPs[fqdn] = append(subIPs[fqdn], ip)
			if !seen[ip] {
				seen[ip] = true
				if inst, ok := ec2.InstanceAt(ip); ok {
					s.Targets = append(s.Targets, inst)
				}
			}
		}
	}
	sort.Slice(s.Targets, func(i, j int) bool { return s.Targets[i].PublicIP < s.Targets[j].PublicIP })

	// Cartography.
	s.Ref = ec2.NewAccount("zones-reference")
	copt := cartography.Options{Seed: cfg.Seed, Par: cfg.Par, Chaos: cfg.Chaos, Completeness: cfg.Completeness}
	s.Samples = cartography.SampleAccounts(ec2, s.Ref, cfg.Accounts-1, cfg.SamplesPerZone, copt)
	s.PM = cartography.MergeAccounts(s.Samples, s.Ref.Name, copt)
	s.Lat = cartography.IdentifyByLatency(ec2, s.Ref, s.Targets, cfg.Latency, copt)
	s.Combined = cartography.IdentifyCombined(s.Targets, s.PM, s.Lat)

	// Subdomain zone sets from combined identifications.
	for fqdn, ips := range subIPs {
		zset := map[ZoneKey]bool{}
		for _, ip := range ips {
			id, ok := s.Combined.ByIP[ip]
			if !ok || id.Zone < 0 {
				continue
			}
			zset[ZoneKey{Region: id.Target.Region, Zone: id.Zone}] = true
		}
		if len(zset) == 0 {
			continue
		}
		keys := make([]ZoneKey, 0, len(zset))
		for k := range zset {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Region != keys[j].Region {
				return keys[i].Region < keys[j].Region
			}
			return keys[i].Zone < keys[j].Zone
		})
		s.SubZones[fqdn] = keys
	}
	return s
}

// Table12Row summarizes latency identification for one region.
type Table12Row struct {
	Region     string
	Targets    int
	Responding int
	ZoneCounts map[int]int
	UnknownPct float64
}

// Table12 builds the latency-method summary rows.
func (s *Study) Table12() []Table12Row {
	var rows []Table12Row
	regions := make([]string, 0, len(s.Lat))
	for r := range s.Lat {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	for _, region := range regions {
		rr := s.Lat[region]
		rows = append(rows, Table12Row{
			Region:     region,
			Targets:    rr.Targets,
			Responding: rr.Responding,
			ZoneCounts: rr.ZoneCounts,
			UnknownPct: 100 * rr.UnknownRate(),
		})
	}
	return rows
}

// Table13 returns the veracity rows.
func (s *Study) Table13() []cartography.VeracityRow {
	return cartography.Veracity(s.Targets, s.PM, s.Lat)
}

// ZoneUsage counts domains and subdomains using each zone (Table 14).
func (s *Study) ZoneUsage() (subCounts map[ZoneKey]int, domCounts map[ZoneKey]int) {
	subCounts = map[ZoneKey]int{}
	domCounts = map[ZoneKey]int{}
	domZones := map[string]map[ZoneKey]bool{}
	for fqdn, zones := range s.SubZones {
		domain := s.subDomain[fqdn]
		for _, z := range zones {
			subCounts[z]++
			if domZones[domain] == nil {
				domZones[domain] = map[ZoneKey]bool{}
			}
			domZones[domain][z] = true
		}
	}
	for _, zones := range domZones {
		for z := range zones {
			domCounts[z]++
		}
	}
	return subCounts, domCounts
}

// ZonesPerSubdomain returns Figure 8a's input.
func (s *Study) ZonesPerSubdomain() []float64 {
	var out []float64
	for _, zones := range s.SubZones {
		out = append(out, float64(len(zones)))
	}
	return out
}

// AvgZonesPerDomain returns Figure 8b's input.
func (s *Study) AvgZonesPerDomain() []float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for fqdn, zones := range s.SubZones {
		d := s.subDomain[fqdn]
		sums[d] += float64(len(zones))
		counts[d]++
	}
	var out []float64
	for d := range sums {
		out = append(out, sums[d]/float64(counts[d]))
	}
	return out
}

// MultiRegionZoneShare returns, among subdomains using 2+ zones, the
// fraction whose zones span more than one region (3.1% in the paper).
func (s *Study) MultiRegionZoneShare() float64 {
	multi, multiRegion := 0, 0
	for _, zones := range s.SubZones {
		if len(zones) < 2 {
			continue
		}
		multi++
		regions := map[string]bool{}
		for _, z := range zones {
			regions[z.Region] = true
		}
		if len(regions) > 1 {
			multiRegion++
		}
	}
	return stats.Frac(float64(multiRegion), float64(multi))
}

// TopDomainRow is a Table 15 row.
type TopDomainRow struct {
	Rank       int
	Domain     string
	Subs       int
	TotalZones int
	K          [4]int // K[1..3]: subdomains using 1, 2, 3+ zones
}

// TopDomains builds Table 15.
func (s *Study) TopDomains(ranker interface{ RankOf(string) int }, n int) []TopDomainRow {
	rows := map[string]*TopDomainRow{}
	domZones := map[string]map[ZoneKey]bool{}
	for fqdn, zones := range s.SubZones {
		d := s.subDomain[fqdn]
		row := rows[d]
		if row == nil {
			row = &TopDomainRow{Domain: d, Rank: ranker.RankOf(d)}
			rows[d] = row
			domZones[d] = map[ZoneKey]bool{}
		}
		row.Subs++
		k := len(zones)
		if k > 3 {
			k = 3
		}
		row.K[k]++
		for _, z := range zones {
			domZones[d][z] = true
		}
	}
	var out []TopDomainRow
	for d, row := range rows {
		if row.Rank == 0 {
			continue
		}
		row.TotalZones = len(domZones[d])
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Figure7Points returns the sampling scatter: internal address (x),
// low bits (y), zone (series) — the visual proof that /16s segregate
// zones.
func (s *Study) Figure7Points() map[int][]stats.Point {
	series := map[int][]stats.Point{}
	ref := s.Ref
	for _, sample := range s.Samples {
		if sample.Region != "ec2.us-east-1" {
			continue
		}
		// Zone in reference space for consistency across accounts.
		var zone int
		if sample.Account == s.PM.Reference {
			zone = int(sample.Label[0] - 'a')
		} else if perms := s.PM.Permutations[sample.Account]; perms != nil {
			perm := perms[sample.Region]
			li := int(sample.Label[0] - 'a')
			if li < len(perm) {
				zone = perm[li]
			} else {
				continue
			}
		} else {
			continue
		}
		series[zone] = append(series[zone], stats.Point{
			X: float64(sample.InternalIP),
			Y: float64(sample.InternalIP % 64),
		})
	}
	_ = ref
	return series
}
