package zones

import (
	"testing"

	"cloudscope/internal/core/dataset"
	"cloudscope/internal/core/patterns"
	"cloudscope/internal/deploy"
	"cloudscope/internal/stats"
)

var (
	world = deploy.Generate(deploy.DefaultConfig().Scaled(1500))
	ds    = buildDataset()
	det   = patterns.DetectAll(ds)
	study = Run(ds, det, world.EC2, DefaultConfig())
)

func buildDataset() *dataset.Dataset {
	names := make([]string, 0, len(world.Domains))
	for _, d := range world.Domains {
		names = append(names, d.Name)
	}
	return dataset.Build(dataset.Config{
		Fabric:   world.Fabric,
		Registry: world.Registry,
		Ranges:   world.Ranges,
		Domains:  names,
		Vantages: 30,
	})
}

type ranker struct{}

func (ranker) RankOf(domain string) int {
	if d, ok := world.List.Lookup(domain); ok {
		return d.Rank
	}
	return 0
}

func TestTargetsResolved(t *testing.T) {
	if len(study.Targets) < 150 {
		t.Fatalf("targets = %d", len(study.Targets))
	}
	for _, tgt := range study.Targets {
		if tgt.Region == "" || tgt.PublicIP == 0 {
			t.Fatalf("bad target %+v", tgt)
		}
	}
}

func TestCombinedCoverage(t *testing.T) {
	if cov := study.Combined.Coverage(); cov < 0.70 || cov > 1.0 {
		t.Fatalf("combined coverage %.2f, want ~0.87", cov)
	}
}

func TestCombinedAccuracyAgainstTruth(t *testing.T) {
	correct, wrong := 0, 0
	for _, tgt := range study.Targets {
		id := study.Combined.ByIP[tgt.PublicIP]
		if id.Zone < 0 {
			continue
		}
		trueZone := study.Ref.TrueZone(tgt.Region, string(rune('a'+id.Zone)))
		if trueZone == tgt.ZoneIndex {
			correct++
		} else {
			wrong++
		}
	}
	if correct+wrong == 0 {
		t.Fatal("nothing identified")
	}
	if acc := float64(correct) / float64(correct+wrong); acc < 0.85 {
		t.Fatalf("combined accuracy %.2f", acc)
	}
}

func TestZonesPerSubdomainDistribution(t *testing.T) {
	counts := study.ZonesPerSubdomain()
	if len(counts) < 100 {
		t.Fatalf("subdomains with zones = %d", len(counts))
	}
	cdf := stats.NewCDF(counts)
	one := cdf.At(1)
	two := cdf.At(2) - cdf.At(1)
	three := 1 - cdf.At(2)
	// Paper: 33.2% one zone, 44.5% two, 22.3% three+. Allow wide bands
	// (identification noise shifts mass toward fewer zones).
	if one < 0.18 || one > 0.60 {
		t.Fatalf("one-zone share %.2f, want ~0.33", one)
	}
	if two < 0.20 || two > 0.62 {
		t.Fatalf("two-zone share %.2f, want ~0.45", two)
	}
	if three < 0.05 || three > 0.40 {
		t.Fatalf("three-zone share %.2f, want ~0.22", three)
	}
}

func TestZoneUsageSkewUSEast(t *testing.T) {
	subCounts, domCounts := study.ZoneUsage()
	var east [3]int
	for z, n := range subCounts {
		if z.Region == "ec2.us-east-1" && z.Zone < 3 {
			east[z.Zone] = n
		}
	}
	total := east[0] + east[1] + east[2]
	if total < 50 {
		t.Skipf("too few us-east zone identifications (%d)", total)
	}
	// Skew: most and least popular zones differ substantially.
	max, min := east[0], east[0]
	for _, n := range east[1:] {
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if max < min*3/2 {
		t.Fatalf("us-east zone usage not skewed: %v", east)
	}
	for z, n := range domCounts {
		if n > subCounts[z] {
			t.Fatalf("zone %v: domains %d > subdomains %d", z, n, subCounts[z])
		}
	}
}

func TestMultiRegionZoneShareSmall(t *testing.T) {
	if s := study.MultiRegionZoneShare(); s > 0.25 {
		t.Fatalf("multi-region share among multi-zone subs %.2f, want ~0.03", s)
	}
}

func TestTable12Rows(t *testing.T) {
	rows := study.Table12()
	if len(rows) == 0 {
		t.Fatal("no Table 12 rows")
	}
	var east *Table12Row
	for i := range rows {
		if rows[i].Region == "ec2.us-east-1" {
			east = &rows[i]
		}
		if rows[i].Responding > rows[i].Targets {
			t.Fatalf("%s: responding > targets", rows[i].Region)
		}
	}
	if east == nil || east.Targets < 50 {
		t.Fatalf("us-east row missing or thin: %+v", east)
	}
	if east.UnknownPct > 40 {
		t.Fatalf("us-east unknown %.1f%%, want ~17%%", east.UnknownPct)
	}
}

func TestTable13ErrorOrdering(t *testing.T) {
	rows := study.Table13()
	byRegion := map[string]float64{}
	for _, r := range rows {
		byRegion[r.Region] = r.ErrorRate()
	}
	if rows[0].Region != "all" {
		t.Fatal("first row should be 'all'")
	}
	if east, ok := byRegion["ec2.us-east-1"]; ok && east > 0.10 {
		t.Fatalf("us-east error %.3f", east)
	}
	if west, ok := byRegion["ec2.eu-west-1"]; ok {
		if west < byRegion["ec2.us-east-1"] {
			t.Fatalf("eu-west error %.3f below us-east %.3f", west, byRegion["ec2.us-east-1"])
		}
	}
}

func TestTable15TopDomains(t *testing.T) {
	rows := study.TopDomains(ranker{}, 10)
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.K[1]+r.K[2]+r.K[3] != r.Subs {
			t.Fatalf("%s: K sums %d != subs %d", r.Domain, r.K[1]+r.K[2]+r.K[3], r.Subs)
		}
		if r.TotalZones == 0 {
			t.Fatalf("%s: no zones", r.Domain)
		}
	}
}

func TestFigure7SeriesSegregate(t *testing.T) {
	series := study.Figure7Points()
	if len(series) < 2 {
		t.Fatalf("zones in scatter = %d", len(series))
	}
	// /16s segregate: a /16 never appears in two zones' series.
	owner := map[uint32]int{}
	for zone, pts := range series {
		for _, p := range pts {
			p16 := uint32(p.X) &^ 0xffff
			if prev, ok := owner[p16]; ok && prev != zone {
				t.Fatalf("/16 %x in zones %d and %d", p16, prev, zone)
			}
			owner[p16] = zone
		}
	}
}
