package zones

import (
	"sort"

	"cloudscope/internal/stats"
)

// The §4.3 implications analysis: a single availability zone's failure
// strands every subdomain confined to it, and the skewed zone usage
// means the most popular zone's outage hurts far more than the least
// popular's (the paper: us-east-1a would take ~419K subdomains, its
// least-used sibling only ~155K).

// ZoneImpact quantifies one zone's blast radius among identified
// subdomains.
type ZoneImpact struct {
	Zone ZoneKey
	// SubdomainsDown are confined entirely to this zone.
	SubdomainsDown int
	// SubdomainsDegraded use this zone among others.
	SubdomainsDegraded int
	// DomainsDown have at least one subdomain entirely confined here.
	DomainsDown int
}

// ZoneOutages computes every zone's blast radius, sorted worst-first.
func (s *Study) ZoneOutages() []ZoneImpact {
	per := map[ZoneKey]*ZoneImpact{}
	domDown := map[ZoneKey]map[string]bool{}
	for fqdn, zones := range s.SubZones {
		domain := s.subDomain[fqdn]
		for _, z := range zones {
			imp := per[z]
			if imp == nil {
				imp = &ZoneImpact{Zone: z}
				per[z] = imp
				domDown[z] = map[string]bool{}
			}
			if len(zones) == 1 {
				imp.SubdomainsDown++
				domDown[z][domain] = true
			} else {
				imp.SubdomainsDegraded++
			}
		}
	}
	var out []ZoneImpact
	for z, imp := range per {
		imp.DomainsDown = len(domDown[z])
		out = append(out, *imp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SubdomainsDown != out[j].SubdomainsDown {
			return out[i].SubdomainsDown > out[j].SubdomainsDown
		}
		if out[i].Zone.Region != out[j].Zone.Region {
			return out[i].Zone.Region < out[j].Zone.Region
		}
		return out[i].Zone.Zone < out[j].Zone.Zone
	})
	return out
}

// SkewRatio returns, for one region, the ratio of subdomains using its
// most popular zone to its least popular (the paper's 419K / 155K ≈ 2.7
// for us-east-1).
func (s *Study) SkewRatio(region string) float64 {
	subCounts, _ := s.ZoneUsage()
	var max, min int
	first := true
	for z, n := range subCounts {
		if z.Region != region {
			continue
		}
		if first {
			max, min, first = n, n, false
			continue
		}
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if min == 0 {
		return 0
	}
	return stats.Frac(float64(max), float64(min))
}
