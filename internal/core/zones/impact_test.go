package zones

import (
	"testing"
)

func TestZoneOutages(t *testing.T) {
	impacts := study.ZoneOutages()
	if len(impacts) < 5 {
		t.Fatalf("impacts = %d", len(impacts))
	}
	// Worst zone is in us-east-1.
	if impacts[0].Zone.Region != "ec2.us-east-1" {
		t.Fatalf("worst zone in %s", impacts[0].Zone.Region)
	}
	for i := 1; i < len(impacts); i++ {
		if impacts[i].SubdomainsDown > impacts[i-1].SubdomainsDown {
			t.Fatal("not sorted")
		}
	}
	for _, imp := range impacts {
		if imp.DomainsDown > imp.SubdomainsDown {
			t.Fatalf("%v: domains %d > subdomains %d", imp.Zone, imp.DomainsDown, imp.SubdomainsDown)
		}
	}
}

func TestZoneSkewRatio(t *testing.T) {
	r := study.SkewRatio("ec2.us-east-1")
	// Paper: most popular us-east zone carries ~2.7x the least popular.
	if r < 1.2 || r > 6 {
		t.Fatalf("us-east skew ratio %.2f, want ~2-3", r)
	}
	if study.SkewRatio("ec2.nowhere") != 0 {
		t.Fatal("unknown region should yield 0")
	}
}
