package regions

import (
	"testing"

	"cloudscope/internal/core/dataset"
	"cloudscope/internal/core/patterns"
	"cloudscope/internal/deploy"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/stats"
)

var (
	world = deploy.Generate(deploy.DefaultConfig().Scaled(1500))
	ds    = buildDataset()
	det   = patterns.DetectAll(ds)
	an    = Analyze(ds, det)
)

func buildDataset() *dataset.Dataset {
	names := make([]string, 0, len(world.Domains))
	for _, d := range world.Domains {
		names = append(names, d.Name)
	}
	return dataset.Build(dataset.Config{
		Fabric:   world.Fabric,
		Registry: world.Registry,
		Ranges:   world.Ranges,
		Domains:  names,
		Vantages: 30,
	})
}

type ranker struct{}

func (ranker) RankOf(domain string) int {
	if d, ok := world.List.Lookup(domain); ok {
		return d.Rank
	}
	return 0
}

func TestRegionsMatchGroundTruth(t *testing.T) {
	checked := 0
	for _, sr := range an.Subdomains {
		sub, ok := world.Subdomain(sr.FQDN)
		if !ok {
			t.Fatalf("phantom subdomain %s", sr.FQDN)
		}
		truth := map[string]bool{}
		for _, r := range sub.Regions {
			truth[r] = true
		}
		if len(truth) == 0 {
			continue
		}
		for _, r := range sr.Regions {
			if !truth[r] {
				t.Fatalf("%s: observed region %s not in truth %v", sr.FQDN, r, sub.Regions)
			}
		}
		checked++
	}
	if checked < 150 {
		t.Fatalf("only %d subdomains checked", checked)
	}
}

func TestSingleRegionDominates(t *testing.T) {
	if s := an.SingleRegionShare(ipranges.EC2); s < 0.93 || s > 1 {
		t.Fatalf("EC2 single-region share %.3f, want ~0.97", s)
	}
	azure := an.SingleRegionShare(ipranges.Azure)
	if azure < 0.80 || azure > 1 {
		t.Fatalf("Azure single-region share %.3f, want ~0.92", azure)
	}
}

func TestUSEastDominance(t *testing.T) {
	totalEC2 := 0
	for _, r := range ipranges.EC2Regions {
		totalEC2 += an.RegionSubs[r]
	}
	share := stats.Frac(float64(an.RegionSubs["ec2.us-east-1"]), float64(totalEC2))
	if share < 0.55 || share > 0.85 {
		t.Fatalf("us-east share %.2f, want ~0.73", share)
	}
	if an.RegionSubs["ec2.eu-west-1"] <= an.RegionSubs["ec2.ap-southeast-2"] {
		t.Fatal("eu-west should outrank ap-southeast-2")
	}
}

func TestFigure6CDFs(t *testing.T) {
	ec2 := an.RegionCountCDF(ipranges.EC2)
	if len(ec2) < 100 {
		t.Fatalf("EC2 samples = %d", len(ec2))
	}
	cdf := stats.NewCDF(ec2)
	if got := cdf.At(1); got < 0.9 {
		t.Fatalf("P(regions<=1) = %.2f", got)
	}
	dom := an.DomainAvgRegionCDF(ipranges.EC2)
	if len(dom) == 0 {
		t.Fatal("no domain averages")
	}
	dcdf := stats.NewCDF(dom)
	// Figure 6b: domain-level single-region share is slightly lower
	// than subdomain-level for Azure; for EC2 both are ≥0.9.
	if got := dcdf.At(1); got < 0.75 {
		t.Fatalf("P(domain avg regions<=1) = %.2f", got)
	}
}

func TestTable10TopDomains(t *testing.T) {
	rows := TopDomains(an, ranker{}, 14)
	if len(rows) < 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byDomain := map[string]TopDomainRow{}
	for _, r := range rows {
		byDomain[r.Domain] = r
		if r.K1+r.K2 > r.CloudSubs {
			t.Fatalf("%s: k1+k2 %d > subs %d", r.Domain, r.K1+r.K2, r.CloudSubs)
		}
	}
	// Anchors with known shapes: pinterest single region; msn multiple.
	if pin, ok := byDomain["pinterest.com"]; ok {
		if pin.TotalRegions != 1 || pin.K1 != pin.CloudSubs {
			t.Fatalf("pinterest row: %+v", pin)
		}
	}
	if msn, ok := byDomain["msn.com"]; ok {
		if msn.TotalRegions < 3 {
			t.Fatalf("msn regions = %d, want 5-ish", msn.TotalRegions)
		}
		if msn.K2 == 0 {
			t.Fatalf("msn should have 2-region subdomains (TM): %+v", msn)
		}
	}
	// live.com: 18 subs across 3 regions, each single-region.
	if live, ok := byDomain["live.com"]; ok {
		if live.TotalRegions != 3 || live.K1 != live.CloudSubs {
			t.Fatalf("live row: %+v", live)
		}
	}
}

func TestCustomerCountryMismatch(t *testing.T) {
	res := CustomerCountry(an, world.AWIS)
	if res.Identified < 100 {
		t.Fatalf("identified = %d", res.Identified)
	}
	country := stats.Frac(float64(res.CountryMismatch), float64(res.Identified))
	continent := stats.Frac(float64(res.ContinentMismatch), float64(res.Identified))
	// Paper: 47% country mismatch, 32% continent mismatch.
	if country < 0.25 || country > 0.70 {
		t.Fatalf("country mismatch %.2f, want ~0.47", country)
	}
	if continent >= country {
		t.Fatalf("continent mismatch %.2f should be below country %.2f", continent, country)
	}
	if continent < 0.10 {
		t.Fatalf("continent mismatch %.2f suspiciously low", continent)
	}
}

func TestTable9Renders(t *testing.T) {
	s := an.Table9().String()
	for _, want := range []string{"ec2.us-east-1", "az.us-south", "Virginia"} {
		if !containsStr(s, want) {
			t.Fatalf("Table 9 missing %q", want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
