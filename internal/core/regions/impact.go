package regions

import (
	"sort"

	"cloudscope/internal/stats"
)

// The §4.2 implications analysis: because nearly every subdomain lives
// in one region, a regional outage takes down critical components of a
// quantifiable share of the web. The paper's headline: an outage of
// EC2's US East would hit at least 2.3% of the Alexa top million (61%
// of EC2-using domains).

// OutageImpact quantifies one region's blast radius.
type OutageImpact struct {
	Region string
	// SubdomainsDown are subdomains entirely hosted in the region.
	SubdomainsDown int
	// SubdomainsDegraded have some but not all front ends there.
	SubdomainsDegraded int
	// DomainsHit have at least one subdomain entirely down.
	DomainsHit int
}

// RegionOutages computes the blast radius of every region's failure.
func (a *Analysis) RegionOutages() []OutageImpact {
	byRegion := map[string]*OutageImpact{}
	domainsHit := map[string]map[string]bool{} // region → domains
	for _, sr := range a.Subdomains {
		for _, r := range sr.Regions {
			imp := byRegion[r]
			if imp == nil {
				imp = &OutageImpact{Region: r}
				byRegion[r] = imp
				domainsHit[r] = map[string]bool{}
			}
			if len(sr.Regions) == 1 {
				imp.SubdomainsDown++
				domainsHit[r][sr.Domain] = true
			} else {
				imp.SubdomainsDegraded++
			}
		}
	}
	var out []OutageImpact
	for r, imp := range byRegion {
		imp.DomainsHit = len(domainsHit[r])
		out = append(out, *imp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SubdomainsDown != out[j].SubdomainsDown {
			return out[i].SubdomainsDown > out[j].SubdomainsDown
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// HeadlineImpact reproduces the paper's §4.2 summary numbers for one
// region against a full ranked list of listSize domains: the fraction
// of the whole list and the fraction of cloud-using domains that would
// lose critical components.
func (a *Analysis) HeadlineImpact(region string, listSize, cloudDomains int) (listShare, cloudShare float64) {
	hit := map[string]bool{}
	for _, sr := range a.Subdomains {
		if len(sr.Regions) == 1 && sr.Regions[0] == region {
			hit[sr.Domain] = true
		}
	}
	return stats.Frac(float64(len(hit)), float64(listSize)),
		stats.Frac(float64(len(hit)), float64(cloudDomains))
}
