// Package regions implements §4.2: mapping cloud-using subdomains to
// provider regions via the published per-region address ranges, the
// single-region-dominance analysis (Figure 6, Tables 9 and 10), and the
// customer-country mismatch study.
//
// Only addresses belonging to VM, PaaS, ELB and TM front ends carry
// region information; CloudFront edges do not (the paper excluded
// them), so the analysis runs over the pattern-detection output.
package regions

import (
	"sort"

	"cloudscope/internal/core/dataset"
	"cloudscope/internal/core/patterns"
	"cloudscope/internal/geo"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/parallel"
	"cloudscope/internal/stats"
)

// SubdomainRegions is one subdomain's observed region set.
type SubdomainRegions struct {
	FQDN    string
	Domain  string
	Cloud   ipranges.Provider
	Regions []string // sorted
}

// Analysis is the region-usage result.
type Analysis struct {
	Subdomains []SubdomainRegions
	// PerRegion counts (Table 9): subdomains and domains touching each
	// region.
	RegionSubs map[string]int
	RegionDoms map[string]int
}

// Analyze maps every classified subdomain to its regions.
func Analyze(ds *dataset.Dataset, det *patterns.Result) *Analysis {
	return AnalyzePar(ds, det, parallel.Options{})
}

// AnalyzePar is Analyze fanned out over a worker pool. The per-subdomain
// region lookup is pure, so it shards over sorted FQDNs; the per-region
// and per-domain tallies run sequentially over the ordered results, so
// the output is independent of worker count.
func AnalyzePar(ds *dataset.Dataset, det *patterns.Result, opt parallel.Options) *Analysis {
	fqdns := make([]string, 0, len(det.Classes))
	for fqdn := range det.Classes {
		fqdns = append(fqdns, fqdn)
	}
	sort.Strings(fqdns)
	mapped, err := parallel.Map(opt, fqdns, func(_ int, fqdn string) (*SubdomainRegions, error) {
		c := det.Classes[fqdn]
		if c.Primary == patterns.FeatureCloudFront {
			return nil, nil // no region signal
		}
		o := ds.Subdomains[fqdn]
		if o == nil {
			return nil, nil
		}
		regionSet := map[string]bool{}
		for _, ip := range o.IPs {
			e, ok := ds.Ranges.Lookup(ip)
			if !ok || e.Provider == ipranges.CloudFront {
				continue
			}
			regionSet[e.Region] = true
		}
		if len(regionSet) == 0 {
			return nil, nil
		}
		sr := &SubdomainRegions{FQDN: fqdn, Domain: o.Domain, Cloud: c.Provider}
		for r := range regionSet {
			sr.Regions = append(sr.Regions, r)
		}
		sort.Strings(sr.Regions)
		return sr, nil
	})
	if err != nil {
		panic(err) // workers only surface panics; re-raise on the caller
	}

	a := &Analysis{RegionSubs: map[string]int{}, RegionDoms: map[string]int{}}
	domRegions := map[string]map[string]bool{}
	for _, sr := range mapped {
		if sr == nil {
			continue
		}
		a.Subdomains = append(a.Subdomains, *sr)
		if domRegions[sr.Domain] == nil {
			domRegions[sr.Domain] = map[string]bool{}
		}
		for _, r := range sr.Regions {
			a.RegionSubs[r]++
			domRegions[sr.Domain][r] = true
		}
	}
	for _, regs := range domRegions {
		for r := range regs {
			a.RegionDoms[r]++
		}
	}
	return a
}

// RegionCountCDF returns Figure 6a's input for one provider: the number
// of regions per subdomain.
func (a *Analysis) RegionCountCDF(cloud ipranges.Provider) []float64 {
	var out []float64
	for _, sr := range a.Subdomains {
		if sr.Cloud == cloud {
			out = append(out, float64(len(sr.Regions)))
		}
	}
	return out
}

// DomainAvgRegionCDF returns Figure 6b's input: the mean number of
// regions across each domain's subdomains.
func (a *Analysis) DomainAvgRegionCDF(cloud ipranges.Provider) []float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, sr := range a.Subdomains {
		if sr.Cloud != cloud {
			continue
		}
		sums[sr.Domain] += float64(len(sr.Regions))
		counts[sr.Domain]++
	}
	var out []float64
	for d, s := range sums {
		out = append(out, s/float64(counts[d]))
	}
	return out
}

// SingleRegionShare returns the fraction of one provider's subdomains
// confined to a single region.
func (a *Analysis) SingleRegionShare(cloud ipranges.Provider) float64 {
	single, total := 0, 0
	for _, sr := range a.Subdomains {
		if sr.Cloud != cloud {
			continue
		}
		total++
		if len(sr.Regions) == 1 {
			single++
		}
	}
	return stats.Frac(float64(single), float64(total))
}

// Table9 renders per-region usage.
func (a *Analysis) Table9() *stats.Table {
	t := &stats.Table{
		Title:  "Table 9: EC2 and Azure region usage",
		Header: []string{"Region", "Location", "# Dom", "# Subdom"},
	}
	order := append(append([]string(nil), ipranges.EC2Regions...), ipranges.AzureRegions...)
	for _, r := range order {
		t.AddRow(r, geo.RegionLocation(r).Name, a.RegionDoms[r], a.RegionSubs[r])
	}
	return t
}

// TopDomainRow is a Table 10 row.
type TopDomainRow struct {
	Rank         int
	Domain       string
	CloudSubs    int
	TotalRegions int
	K1, K2       int // subdomains using exactly 1 / 2 regions
}

// TopDomains builds Table 10 for the n highest-ranked cloud domains.
func TopDomains(a *Analysis, ranker interface{ RankOf(string) int }, n int) []TopDomainRow {
	perDomain := map[string]*TopDomainRow{}
	domRegions := map[string]map[string]bool{}
	for _, sr := range a.Subdomains {
		row := perDomain[sr.Domain]
		if row == nil {
			row = &TopDomainRow{Domain: sr.Domain, Rank: ranker.RankOf(sr.Domain)}
			perDomain[sr.Domain] = row
			domRegions[sr.Domain] = map[string]bool{}
		}
		row.CloudSubs++
		switch len(sr.Regions) {
		case 1:
			row.K1++
		case 2:
			row.K2++
		}
		for _, r := range sr.Regions {
			domRegions[sr.Domain][r] = true
		}
	}
	var rows []TopDomainRow
	for d, row := range perDomain {
		if row.Rank == 0 {
			continue
		}
		row.TotalRegions = len(domRegions[d])
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Rank < rows[j].Rank })
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// CustomerCountryResult is the §4.2 deployment-vs-customer analysis.
type CustomerCountryResult struct {
	Identified        int // subdomains whose customer country was known
	CountryMismatch   int // hosted outside the customer country
	ContinentMismatch int // hosted outside the customer continent
}

// CountryService answers customer-country queries (the Alexa Web
// Information Service stand-in).
type CountryService interface {
	CustomerCountry(domain string) (string, bool)
}

// CustomerCountry compares each subdomain's hosting region(s) with its
// domain's customer country.
func CustomerCountry(a *Analysis, svc CountryService) CustomerCountryResult {
	var res CustomerCountryResult
	for _, sr := range a.Subdomains {
		cc, ok := svc.CustomerCountry(sr.Domain)
		if !ok || len(sr.Regions) == 0 {
			continue
		}
		res.Identified++
		countryMatch, continentMatch := false, false
		wantCont := geo.CountryContinent[cc]
		for _, r := range sr.Regions {
			loc := geo.RegionLocation(r)
			if loc.Country == cc {
				countryMatch = true
			}
			if loc.Continent == wantCont && wantCont != "" {
				continentMatch = true
			}
		}
		if !countryMatch {
			res.CountryMismatch++
		}
		if !continentMatch {
			res.ContinentMismatch++
		}
	}
	return res
}
