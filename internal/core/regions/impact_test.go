package regions

import (
	"testing"
)

func TestRegionOutages(t *testing.T) {
	impacts := an.RegionOutages()
	if len(impacts) == 0 {
		t.Fatal("no impacts")
	}
	// us-east-1's outage is the worst, by a wide margin.
	if impacts[0].Region != "ec2.us-east-1" {
		t.Fatalf("worst region = %s", impacts[0].Region)
	}
	for i := 1; i < len(impacts); i++ {
		if impacts[i].SubdomainsDown > impacts[i-1].SubdomainsDown {
			t.Fatal("impacts not sorted")
		}
	}
	// Degraded (multi-region) subdomains are the small minority.
	east := impacts[0]
	if east.SubdomainsDegraded >= east.SubdomainsDown {
		t.Fatalf("degraded %d >= down %d", east.SubdomainsDegraded, east.SubdomainsDown)
	}
	if east.DomainsHit == 0 || east.DomainsHit > east.SubdomainsDown {
		t.Fatalf("domains hit = %d", east.DomainsHit)
	}
}

func TestHeadlineImpact(t *testing.T) {
	listShare, cloudShare := an.HeadlineImpact("ec2.us-east-1", world.Cfg.NumDomains, len(world.CloudDomains))
	// Paper: 2.3% of the full list, 61% of EC2-using domains.
	if listShare < 0.01 || listShare > 0.05 {
		t.Fatalf("list share %.3f, want ~0.023", listShare)
	}
	if cloudShare < 0.40 || cloudShare > 0.85 {
		t.Fatalf("cloud share %.2f, want ~0.61", cloudShare)
	}
	// A tiny region hurts much less.
	smallList, _ := an.HeadlineImpact("ec2.ap-southeast-2", world.Cfg.NumDomains, len(world.CloudDomains))
	if smallList >= listShare {
		t.Fatalf("ap-southeast-2 (%.3f) should hurt less than us-east (%.3f)", smallList, listShare)
	}
}
