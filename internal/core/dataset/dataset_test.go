package dataset

import (
	"testing"

	"cloudscope/internal/deploy"
	"cloudscope/internal/ipranges"
)

// world and ds are shared: dataset building is the expensive step.
var (
	world = deploy.Generate(deploy.DefaultConfig().Scaled(1200))
	ds    = buildForWorld(world, 0)
)

func buildForWorld(w *deploy.World, vantages int) *Dataset {
	names := make([]string, 0, len(w.Domains))
	for _, d := range w.Domains {
		names = append(names, d.Name)
	}
	if vantages == 0 {
		vantages = 40
	}
	return Build(Config{
		Fabric:   w.Fabric,
		Registry: w.Registry,
		Ranges:   w.Ranges,
		Domains:  names,
		Vantages: vantages,
	})
}

func TestDiscoveryFindsMostCloudDomains(t *testing.T) {
	truthCloud := map[string]bool{}
	for _, d := range world.CloudDomains {
		truthCloud[d.Name] = true
	}
	found := map[string]bool{}
	for _, name := range ds.CloudDomains() {
		found[name] = true
	}
	var hits, missed int
	for name := range truthCloud {
		if found[name] {
			hits++
		} else {
			missed++
		}
	}
	recall := float64(hits) / float64(hits+missed)
	// Brute force misses out-of-wordlist labels; the paper's numbers
	// are explicit lower bounds. With 90% wordlist bias and AXFR for
	// 8%, recall should be high but below 1.
	if recall < 0.90 {
		t.Fatalf("domain recall %.2f", recall)
	}
	// No false positives: every discovered domain truly uses the cloud.
	for name := range found {
		if !truthCloud[name] {
			t.Fatalf("false positive domain %s", name)
		}
	}
}

func TestDiscoveryIsLowerBound(t *testing.T) {
	truthSubs := 0
	for _, d := range world.CloudDomains {
		truthSubs += len(d.CloudSubdomains())
	}
	if ds.Stats.CloudSubdomains > truthSubs {
		t.Fatalf("found %d cloud subdomains, truth has %d — overcounting", ds.Stats.CloudSubdomains, truthSubs)
	}
	if float64(ds.Stats.CloudSubdomains) < 0.75*float64(truthSubs) {
		t.Fatalf("found %d of %d cloud subdomains — recall too low", ds.Stats.CloudSubdomains, truthSubs)
	}
}

func TestSubdomainObservationsMatchTruth(t *testing.T) {
	checked := 0
	for fqdn, obs := range ds.Subdomains {
		sub, ok := world.Subdomain(fqdn)
		if !ok {
			t.Fatalf("observed phantom subdomain %s", fqdn)
		}
		if !sub.CloudUsing() {
			t.Fatalf("non-cloud subdomain %s in dataset", fqdn)
		}
		// Every observed terminal IP must belong to the deployment.
		want := map[string]bool{}
		for _, vm := range sub.VMs {
			want[vm.PublicIP.String()] = true
		}
		if sub.ELB != nil {
			for _, p := range sub.ELB.Proxies {
				want[p.PublicIP.String()] = true
			}
		}
		if sub.CS != nil {
			want[sub.CS.Node.PublicIP.String()] = true
		}
		if sub.TM != nil {
			for _, m := range sub.TM.Members {
				want[m.Node.PublicIP.String()] = true
			}
		}
		if sub.Heroku != nil {
			for _, n := range world.Heroku.Pool {
				want[n.PublicIP.String()] = true
			}
			if sub.Heroku.ELB != nil {
				for _, p := range sub.Heroku.ELB.Proxies {
					want[p.PublicIP.String()] = true
				}
			}
		}
		if sub.CDN != nil {
			for _, ip := range sub.CDN.IPs {
				want[ip.String()] = true
			}
		}
		if sub.AzureCDN != nil {
			want[sub.AzureCDN.Node.PublicIP.String()] = true
		}
		for _, ip := range sub.OtherIPs {
			want[ip.String()] = true
		}
		if len(want) == 0 {
			continue
		}
		for _, ip := range obs.IPs {
			if !want[ip.String()] {
				t.Fatalf("%s observed %v not in ground truth", fqdn, ip)
			}
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d observations checked", checked)
	}
}

func TestAXFRSuccessRate(t *testing.T) {
	rate := float64(ds.Stats.AXFRSuccesses) / float64(ds.Stats.DomainsScanned)
	if rate < 0.04 || rate > 0.13 {
		t.Fatalf("AXFR success rate %.3f, want ~0.08", rate)
	}
}

func TestMultiRegionSubdomainsNeedVantageDiversity(t *testing.T) {
	// Find a ground-truth multi-region EC2 VM subdomain that the
	// dataset observed; distributed resolution must reveal >1 region.
	for fqdn, obs := range ds.Subdomains {
		sub, _ := world.Subdomain(fqdn)
		if sub == nil || len(sub.Regions) < 2 || len(sub.VMs) == 0 {
			continue
		}
		regions := map[string]bool{}
		for _, ip := range obs.IPs {
			if r := world.Ranges.Region(ip); r != "" {
				regions[r] = true
			}
		}
		if len(regions) < 2 {
			t.Fatalf("%s: truth spans %v but dataset saw only %v", fqdn, sub.Regions, regions)
		}
		return
	}
	t.Skip("no multi-region VM subdomain discovered in this world")
}

func TestObservationHelpers(t *testing.T) {
	for fqdn, obs := range ds.Subdomains {
		sub, _ := world.Subdomain(fqdn)
		if sub == nil {
			continue
		}
		switch sub.Pattern {
		case deploy.PatternVM:
			if len(sub.Regions) == 1 && !obs.DirectA() {
				t.Fatalf("%s: VM pattern but not direct A: %v", fqdn, obs.RRs[0])
			}
		case deploy.PatternELB:
			if !obs.HasCNAME() {
				t.Fatalf("%s: ELB without CNAME", fqdn)
			}
		}
		ec2, az, _ := obs.ProviderOf(world.Ranges)
		if sub.Provider == ipranges.EC2 && !ec2 && !az {
			t.Fatalf("%s: provider not recovered", fqdn)
		}
	}
}

func TestStatspopulated(t *testing.T) {
	if ds.Stats.DomainsScanned != len(world.Domains) {
		t.Fatalf("scanned %d of %d", ds.Stats.DomainsScanned, len(world.Domains))
	}
	if ds.Stats.QueriesIssued < int64(ds.Stats.DomainsScanned) {
		t.Fatal("query counter implausible")
	}
	if ds.Stats.SubdomainsSeen <= ds.Stats.CloudSubdomains {
		t.Fatal("should see more subdomains than cloud-using ones")
	}
}
