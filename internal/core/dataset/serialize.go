package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
)

// Serialization: the paper released its datasets; cloudscope's measured
// dataset round-trips through a line-oriented text format so analyses
// can run without re-probing (cmd/cloudmap -save / -load).
//
// Format, one record per line:
//
//	D <domain> <axfr:0|1> <subdomainsSeen> <cloudUsing>
//	S <fqdn> <domain>
//	R <fqdn> <rr zone-file style>
//
// Lines starting with '#' are comments.

// renderHeader renders the leading comment line from final stats.
func renderHeader(st Stats) string {
	return fmt.Sprintf("# cloudscope alexa-subdomains dataset: %d domains, %d cloud subdomains\n",
		st.DomainsScanned, st.CloudSubdomains)
}

// renderDomainLine renders one D record. Shared by WriteTo and the
// spill path, so the streamed file is byte-identical by construction.
func renderDomainLine(s *DomainSummary) string {
	axfr := 0
	if s.AXFRWorked {
		axfr = 1
	}
	return fmt.Sprintf("D %s %d %d %d\n", s.Domain, axfr, s.SubdomainsSeen, s.CloudUsing)
}

// renderObservation renders one subdomain's S/R.../E block.
func renderObservation(o *Observation) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "S %s %s\n", o.FQDN, o.Domain)
	for _, rr := range o.RRs {
		var line string
		switch rr.Type {
		case dnswire.TypeA:
			line = fmt.Sprintf("R %s A %d %s", o.FQDN, rr.TTL, rr.IP)
		case dnswire.TypeCNAME:
			line = fmt.Sprintf("R %s CNAME %d %s", o.FQDN, rr.TTL, rr.Target)
		default:
			continue
		}
		// Records in a chain may be owned by CNAME targets, not the
		// subdomain itself; keep the owner.
		line = strings.Replace(line, "R "+o.FQDN, "R "+rr.Name, 1)
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	sb.WriteString("E\n")
	return sb.String()
}

// WriteTo serializes the dataset (deterministic ordering).
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(m int, err error) error {
		n += int64(m)
		return err
	}
	if err := count(bw.WriteString(renderHeader(d.Stats))); err != nil {
		return n, err
	}
	domains := make([]string, 0, len(d.Domains))
	for name := range d.Domains {
		domains = append(domains, name)
	}
	sort.Strings(domains)
	for _, name := range domains {
		if err := count(bw.WriteString(renderDomainLine(d.Domains[name]))); err != nil {
			return n, err
		}
	}
	fqdns := make([]string, 0, len(d.Subdomains))
	for f := range d.Subdomains {
		fqdns = append(fqdns, f)
	}
	sort.Strings(fqdns)
	for _, f := range fqdns {
		if err := count(bw.WriteString(renderObservation(d.Subdomains[f]))); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a dataset written by WriteTo. ranges re-attaches the
// published list (it is not part of the file).
func Read(r io.Reader, ranges *ipranges.List) (*Dataset, error) {
	ds := &Dataset{
		Ranges:     ranges,
		Domains:    map[string]*DomainSummary{},
		Subdomains: map[string]*Observation{},
		ByDomain:   map[string][]*Observation{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var cur *Observation
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "D":
			if len(fields) != 5 {
				return nil, fmt.Errorf("dataset: line %d: bad D record", lineNo)
			}
			axfr := fields[2] == "1"
			seen, err1 := strconv.Atoi(fields[3])
			cu, err2 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: line %d: bad D counts", lineNo)
			}
			ds.Domains[fields[1]] = &DomainSummary{Domain: fields[1], AXFRWorked: axfr, SubdomainsSeen: seen, CloudUsing: cu}
			ds.Stats.DomainsScanned++
			ds.Stats.SubdomainsSeen += seen
			if axfr {
				ds.Stats.AXFRSuccesses++
			}
		case "S":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: bad S record", lineNo)
			}
			cur = &Observation{FQDN: fields[1], Domain: fields[2]}
		case "R":
			if cur == nil {
				return nil, fmt.Errorf("dataset: line %d: R before S", lineNo)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("dataset: line %d: bad R record", lineNo)
			}
			ttl, err := strconv.ParseUint(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad TTL", lineNo)
			}
			rr := dnswire.RR{Name: fields[1], Class: dnswire.ClassIN, TTL: uint32(ttl)}
			switch fields[2] {
			case "A":
				ip, err := netaddr.ParseIP(fields[4])
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: %v", lineNo, err)
				}
				rr.Type, rr.IP = dnswire.TypeA, ip
				cur.IPs = append(cur.IPs, ip)
			case "CNAME":
				rr.Type, rr.Target = dnswire.TypeCNAME, fields[4]
			default:
				return nil, fmt.Errorf("dataset: line %d: bad type %q", lineNo, fields[2])
			}
			cur.RRs = append(cur.RRs, rr)
		case "E":
			if cur == nil {
				return nil, fmt.Errorf("dataset: line %d: E before S", lineNo)
			}
			ds.Subdomains[cur.FQDN] = cur
			ds.ByDomain[cur.Domain] = append(ds.ByDomain[cur.Domain], cur)
			ds.Stats.CloudSubdomains++
			cur = nil
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("dataset: truncated: unterminated subdomain %s", cur.FQDN)
	}
	return ds, nil
}
