package dataset

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"cloudscope/internal/parallel"
)

// firstNames returns the first n ranked names of the shared test world.
func firstNames(n int) []string {
	names := make([]string, n)
	for i, d := range world.Domains[:n] {
		names[i] = d.Name
	}
	return names
}

// newTestStreamBuilder spills under parent so the test can watch the
// spill directory appear and vanish.
func newTestStreamBuilder(t *testing.T, parent string, total int, ctx context.Context, nilRanges bool) *StreamBuilder {
	t.Helper()
	cfg := StreamConfig{
		Config: Config{
			Fabric:   world.Fabric,
			Registry: world.Registry,
			Ranges:   world.Ranges,
			Vantages: 4,
		},
		Total:    total,
		Ctx:      ctx,
		SpillDir: parent,
	}
	if nilRanges {
		cfg.Ranges = nil
	}
	b, err := NewStreamBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// entries lists dir's entry names.
func entries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

// TestSpillCleanup pins the streaming build's no-leak contract: the
// spill directory is gone after Finish, after a failed AddChunk
// (overrun, cancellation, worker panic), and after Close — the caller
// never has to clean up, whatever path the build took.
func TestSpillCleanup(t *testing.T) {
	t.Run("finish", func(t *testing.T) {
		parent := t.TempDir()
		b := newTestStreamBuilder(t, parent, 60, nil, false)
		if err := b.AddChunk(firstNames(60)[:30]); err != nil {
			t.Fatal(err)
		}
		if err := b.AddChunk(firstNames(60)[30:]); err != nil {
			t.Fatal(err)
		}
		spill := entries(t, parent)
		if len(spill) != 1 {
			t.Fatalf("want one spill dir under %s, got %v", parent, spill)
		}
		if files := entries(t, parent+"/"+spill[0]); len(files) != 2 {
			t.Fatalf("want 2 spill files, got %v", files)
		}
		var out bytes.Buffer
		st, err := b.Finish(&out)
		if err != nil {
			t.Fatal(err)
		}
		if st.DomainsScanned != 60 || out.Len() == 0 {
			t.Fatalf("Finish: scanned=%d, %d bytes", st.DomainsScanned, out.Len())
		}
		if got := entries(t, parent); len(got) != 0 {
			t.Fatalf("spill dir survives Finish: %v", got)
		}
	})

	t.Run("overrun-error", func(t *testing.T) {
		parent := t.TempDir()
		b := newTestStreamBuilder(t, parent, 10, nil, false)
		err := b.AddChunk(firstNames(20))
		if err == nil || !strings.Contains(err.Error(), "overruns Total") {
			t.Fatalf("overrun err = %v", err)
		}
		if got := entries(t, parent); len(got) != 0 {
			t.Fatalf("spill dir survives overrun: %v", got)
		}
		if err := b.AddChunk(firstNames(5)); err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("AddChunk after failure = %v, want closed-builder error", err)
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		parent := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // canceled before the chunk even starts
		b := newTestStreamBuilder(t, parent, 30, ctx, false)
		err := b.AddChunk(firstNames(30))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled AddChunk err = %v, want context.Canceled", err)
		}
		if got := entries(t, parent); len(got) != 0 {
			t.Fatalf("spill dir survives cancellation: %v", got)
		}
	})

	t.Run("worker-panic", func(t *testing.T) {
		parent := t.TempDir()
		// A nil ranges list makes the cloud filter panic inside the scan
		// workers; parallel surfaces it as *PanicError and AddChunk must
		// still clean up.
		b := newTestStreamBuilder(t, parent, 30, nil, true)
		err := b.AddChunk(firstNames(30))
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("panicking AddChunk err = %v, want *parallel.PanicError", err)
		}
		if got := entries(t, parent); len(got) != 0 {
			t.Fatalf("spill dir survives worker panic: %v", got)
		}
	})

	t.Run("close-idempotent", func(t *testing.T) {
		parent := t.TempDir()
		b := newTestStreamBuilder(t, parent, 30, nil, false)
		if err := b.AddChunk(firstNames(10)); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		if got := entries(t, parent); len(got) != 0 {
			t.Fatalf("spill dir survives Close: %v", got)
		}
	})
}
