package dataset

import (
	"bytes"
	"fmt"
	"testing"

	"cloudscope/internal/deploy"
)

// freshWorld generates a small world per build: scan results embed
// simulated-clock-dependent state, so builds only compare equal when
// each starts from an identical clock.
func freshWorld() *deploy.World {
	return deploy.Generate(deploy.DefaultConfig().Scaled(200))
}

func buildWith(w *deploy.World, workers, parallelism int) *Dataset {
	names := make([]string, 0, len(w.Domains))
	for _, d := range w.Domains {
		names = append(names, d.Name)
	}
	return Build(Config{
		Fabric:      w.Fabric,
		Registry:    w.Registry,
		Ranges:      w.Ranges,
		Domains:     names,
		Vantages:    8,
		Workers:     workers,
		Parallelism: parallelism,
	})
}

func datasetBytes(t testing.TB, d *Dataset) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestWorkersParallelismAlias pins the deprecated knob's contract:
// Parallelism=n must behave exactly like Workers=n, and an explicit
// Workers wins when both are set.
func TestWorkersParallelismAlias(t *testing.T) {
	golden := datasetBytes(t, buildWith(freshWorld(), 1, 0))
	if got := datasetBytes(t, buildWith(freshWorld(), 0, 1)); got != golden {
		t.Error("Parallelism=1 differs from Workers=1")
	}
	if got := datasetBytes(t, buildWith(freshWorld(), 1, 4)); got != golden {
		t.Error("Workers=1 did not take precedence over Parallelism=4")
	}
	if got := datasetBytes(t, buildWith(freshWorld(), 0, 4)); got != golden {
		t.Error("Parallelism=4 output differs from sequential")
	}
}

// TestBuildWorkerCountInvariant checks the discovery pipeline is
// byte-identical at every worker bound. Run under -race this doubles as
// the scan fan-out's concurrency stress test.
func TestBuildWorkerCountInvariant(t *testing.T) {
	golden := datasetBytes(t, buildWith(freshWorld(), 1, 0))
	for _, workers := range []int{2, 4} {
		if got := datasetBytes(t, buildWith(freshWorld(), workers, 0)); got != golden {
			t.Errorf("dataset differs at Workers=%d", workers)
		}
	}
}

// BenchmarkDatasetBuildWorkers measures the discovery scan at several
// worker bounds. On a single-core host the parallel runs mostly measure
// pool overhead; multi-core hosts see the fan-out.
func BenchmarkDatasetBuildWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := freshWorld()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buildWith(w, workers, 0)
			}
		})
	}
}
