package dataset

import (
	"bytes"
	"fmt"
	"testing"

	"cloudscope/internal/deploy"
)

// freshWorld generates a small world per build: scan results embed
// simulated-clock-dependent state, so builds only compare equal when
// each starts from an identical clock.
func freshWorld() *deploy.World {
	return deploy.Generate(deploy.DefaultConfig().Scaled(200))
}

func buildWith(w *deploy.World, workers int) *Dataset {
	names := make([]string, 0, len(w.Domains))
	for _, d := range w.Domains {
		names = append(names, d.Name)
	}
	return Build(Config{
		Fabric:   w.Fabric,
		Registry: w.Registry,
		Ranges:   w.Ranges,
		Domains:  names,
		Vantages: 8,
		Workers:  workers,
	})
}

func datasetBytes(t testing.TB, d *Dataset) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestBuildWorkerCountInvariant checks the discovery pipeline is
// byte-identical at every worker bound (0 = GOMAXPROCS, the only
// worker knob now that the Parallelism alias is gone). Run under -race
// this doubles as the scan fan-out's concurrency stress test.
func TestBuildWorkerCountInvariant(t *testing.T) {
	golden := datasetBytes(t, buildWith(freshWorld(), 1))
	for _, workers := range []int{0, 2, 4} {
		if got := datasetBytes(t, buildWith(freshWorld(), workers)); got != golden {
			t.Errorf("dataset differs at Workers=%d", workers)
		}
	}
}

// BenchmarkDatasetBuildWorkers measures the discovery scan at several
// worker bounds. On a single-core host the parallel runs mostly measure
// pool overhead; multi-core hosts see the fan-out.
func BenchmarkDatasetBuildWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := freshWorld()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buildWith(w, workers)
			}
		})
	}
}
