package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// The shared ds/world variables come from dataset_test.go.

func TestSerializeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), world.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.DomainsScanned != ds.Stats.DomainsScanned {
		t.Fatalf("domains %d != %d", got.Stats.DomainsScanned, ds.Stats.DomainsScanned)
	}
	if got.Stats.CloudSubdomains != ds.Stats.CloudSubdomains {
		t.Fatalf("subdomains %d != %d", got.Stats.CloudSubdomains, ds.Stats.CloudSubdomains)
	}
	if got.Stats.AXFRSuccesses != ds.Stats.AXFRSuccesses {
		t.Fatalf("axfr %d != %d", got.Stats.AXFRSuccesses, ds.Stats.AXFRSuccesses)
	}
	for fqdn, o := range ds.Subdomains {
		g := got.Subdomains[fqdn]
		if g == nil {
			t.Fatalf("lost %s", fqdn)
		}
		if g.Domain != o.Domain || len(g.IPs) != len(o.IPs) {
			t.Fatalf("%s: %d IPs vs %d", fqdn, len(g.IPs), len(o.IPs))
		}
		// Provider classification survives.
		e1, a1, o1 := o.ProviderOf(ds.Ranges)
		e2, a2, o2 := g.ProviderOf(got.Ranges)
		if e1 != e2 || a1 != a2 || o1 != o2 {
			t.Fatalf("%s: provider classification changed", fqdn)
		}
	}
}

func TestSerializeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := ds.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization not deterministic")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad D":        "D only three\n",
		"R before S":   "R x.com A 60 1.2.3.4\n",
		"bad type":     "S x.com com\nR x.com MX 60 foo\nE\n",
		"bad ip":       "S x.com com\nR x.com A 60 999.9.9.9\nE\n",
		"unterminated": "S x.com com\nR x.com A 60 1.2.3.4\n",
		"unknown tag":  "Z whatever\n",
		"E before S":   "E\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in), world.Ranges); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
