// Package dataset builds the paper's primary dataset — the Alexa
// subdomains dataset (§2.1) — by running the published discovery
// pipeline against the simulated DNS:
//
//  1. attempt a zone transfer (AXFR) for each ranked domain;
//  2. fall back to dnsmap/knock-style wordlist brute forcing from
//     distributed vantage points;
//  3. resolve every discovered subdomain once and keep those whose
//     records contain an address inside the published cloud ranges;
//  4. re-resolve the cloud-using subdomains from every vantage point
//     (cache flushed, recursion off) to capture geo-dependent records.
//
// The pipeline sees only what a real measurer saw: DNS messages and the
// published range lists. Ground truth from the generator is never
// consulted here — tests compare the output against it afterwards.
package dataset

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cloudscope/internal/chaos"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/parallel"
	"cloudscope/internal/simnet"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/wordlist"
)

// Observation is everything learned about one cloud-using subdomain.
type Observation struct {
	FQDN   string
	Domain string
	// RRs is the deduplicated union of records seen across vantages,
	// in first-seen order: CNAME chains and terminal A records.
	RRs []dnswire.RR
	// IPs is the deduplicated set of terminal A answers.
	IPs []netaddr.IP
}

// HasCNAME reports whether any observed record is a CNAME.
func (o *Observation) HasCNAME() bool {
	for _, rr := range o.RRs {
		if rr.Type == dnswire.TypeCNAME {
			return true
		}
	}
	return false
}

// CNAMETargets returns the distinct CNAME targets observed.
func (o *Observation) CNAMETargets() []string {
	seen := map[string]bool{}
	var out []string
	for _, rr := range o.RRs {
		if rr.Type == dnswire.TypeCNAME && !seen[rr.Target] {
			seen[rr.Target] = true
			out = append(out, rr.Target)
		}
	}
	return out
}

// DirectA reports whether the lookup directly returned A records (no
// CNAME on the first-seen chain) — the paper's VM-front-end test.
func (o *Observation) DirectA() bool {
	return len(o.RRs) > 0 && o.RRs[0].Type == dnswire.TypeA
}

// DomainSummary tracks discovery totals for one ranked domain.
type DomainSummary struct {
	Domain         string
	AXFRWorked     bool
	SubdomainsSeen int // all valid subdomains discovered (cloud or not)
	CloudUsing     int
}

// Stats counts pipeline work.
type Stats struct {
	DomainsScanned  int
	AXFRSuccesses   int
	QueriesIssued   int64
	SubdomainsSeen  int
	CloudSubdomains int
	// SerialProbeTime is the total simulated network time the campaign's
	// queries consumed end-to-end (the paper spread its three-day
	// campaign over 150 PlanetLab nodes; divide accordingly).
	SerialProbeTime time.Duration
}

// Dataset is the pipeline's output.
type Dataset struct {
	Ranges     *ipranges.List
	Domains    map[string]*DomainSummary
	Subdomains map[string]*Observation // cloud-using only
	ByDomain   map[string][]*Observation
	Stats      Stats
}

// CloudDomains returns the domains with at least one cloud-using
// subdomain, sorted.
func (d *Dataset) CloudDomains() []string {
	var out []string
	for name, obs := range d.ByDomain {
		if len(obs) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Config parameterizes the pipeline.
type Config struct {
	Fabric   *simnet.Fabric
	Registry *dnssrv.Registry
	Ranges   *ipranges.List
	// Domains is the ranked list to scan (names only — ranks are public
	// Alexa metadata handled by the classify package).
	Domains []string
	// Wordlist is the brute-force dictionary; nil means wordlist.Common.
	Wordlist []string
	// Vantages is the number of distributed resolvers for the full
	// re-resolution pass (200 in the paper).
	Vantages int
	// Workers bounds concurrent domain scans: 0 uses GOMAXPROCS, 1
	// forces the sequential path. The dataset is identical at every
	// setting — domains land in rank slots, brute-force resolvers are
	// assigned by domain index, and the simulated clock sums probe time
	// commutatively.
	Workers int
	// Ctx, when set, cancels the scan fan-out between shards; Build
	// re-raises the context error as a panic, matching the other stage
	// error paths.
	Ctx context.Context
	// ParMetrics, when set, receives the scan fan-out's worker/shard
	// gauges and queue-wait histogram (parallel.dataset.*).
	ParMetrics *parallel.Metrics
	// Metrics, when set, is shared by every resolver the pipeline
	// creates, aggregating query/rcode accounting across vantages.
	Metrics *dnssrv.ResolverMetrics
	// Chaos, when set, injects campaign-level faults: vantage points go
	// dark for stretches of the scan and their work is skipped and
	// accounted. Wire-level faults (loss, SERVFAIL bursts) arrive
	// through the fabric's interceptor, not here.
	Chaos *chaos.Engine
	// Completeness, when set, receives per-vantage
	// attempted/succeeded/retried/abandoned accounting under stages
	// "dataset" (re-resolution vantages) and "dataset/brute".
	Completeness *telemetry.Completeness
	// Backoff configures retries on every resolver the pipeline creates;
	// the zero value keeps the legacy single-pass semantics.
	Backoff dnssrv.Backoff
	// MaxQueriesPerDomain and DomainDeadline bound each domain scan's
	// probe budget (0 = unlimited). An exhausted budget abandons the
	// rest of that domain's queries; the dataset stays valid, just
	// partial, and Completeness says by how much.
	MaxQueriesPerDomain int64
	DomainDeadline      time.Duration
	// BreakerFailures trips a per-vantage circuit breaker within one
	// domain scan: after this many consecutive failed lookups the
	// vantage sits out the rest of that scan (0 disables).
	BreakerFailures int
}

// vantageIP derives the i-th vantage's source address.
func vantageIP(i int) netaddr.IP {
	return netaddr.MustParseIP("193.5.0.0") + netaddr.IP(i*131+7)
}

// vantageLabel names the i-th re-resolution vantage in chaos plans and
// completeness reports.
func vantageLabel(i int) string {
	return fmt.Sprintf("v%03d", i)
}

// normalize fills the Config's defaults; Build calls it exactly once,
// so every default lives here.
//
// NOTE: the deprecated Parallelism alias for Workers is GONE. It was
// honored only when Workers was zero and existed solely to ease the
// Workers migration; callers that still set Parallelism must set
// Workers instead. The Workers contract is unchanged: 0 means
// GOMAXPROCS, 1 forces the exact sequential path, and the dataset is
// byte-identical at every setting.
func (cfg *Config) normalize() {
	if cfg.Wordlist == nil {
		cfg.Wordlist = wordlist.Common()
	}
	if cfg.Vantages <= 0 {
		cfg.Vantages = 200
	}
}

// Build runs the full pipeline.
func Build(cfg Config) *Dataset {
	cfg.normalize()
	ds := &Dataset{
		Ranges:     cfg.Ranges,
		Domains:    map[string]*DomainSummary{},
		Subdomains: map[string]*Observation{},
		ByDomain:   map[string][]*Observation{},
	}
	campaignStart := cfg.Fabric.Clock().Now()

	// Shared resolver pools: 150 brute-force nodes and cfg.Vantages
	// re-resolution nodes. Resolvers are safe for concurrent use and,
	// with NoRecurse set, stateless between queries.
	brute := make([]*dnssrv.Resolver, 150)
	for i := range brute {
		brute[i] = dnssrv.NewResolver(cfg.Fabric, cfg.Registry, vantageIP(i))
		brute[i].NoRecurse = true
		brute[i].Metrics = cfg.Metrics
		brute[i].Backoff = cfg.Backoff
	}
	vantages := make([]*dnssrv.Resolver, cfg.Vantages)
	for i := range vantages {
		vantages[i] = dnssrv.NewResolver(cfg.Fabric, cfg.Registry, vantageIP(i))
		vantages[i].NoRecurse = true
		vantages[i].Metrics = cfg.Metrics
		vantages[i].Backoff = cfg.Backoff
	}

	type domainResult struct {
		summary *DomainSummary
		obs     []*Observation
		queries int64
	}
	results := make([]domainResult, len(cfg.Domains))
	opt := parallel.Options{Workers: cfg.Workers, Metrics: cfg.ParMetrics, Ctx: cfg.Ctx}
	if err := parallel.Run(opt, len(cfg.Domains), func(sh parallel.Shard) error {
		for i := sh.Lo; i < sh.Hi; i++ {
			// Brute-force resolver assignment stays a function of the
			// domain index, not the shard, so results match the legacy
			// per-domain goroutine loop byte for byte.
			results[i] = scanDomain(cfg, brute[i%len(brute)], vantages, cfg.Domains[i], i, len(cfg.Domains))
		}
		return nil
	}); err != nil {
		panic(err) // only worker panics or Ctx cancellation land here
	}

	for _, r := range results {
		ds.Stats.DomainsScanned++
		ds.Stats.QueriesIssued += r.queries
		ds.Stats.SubdomainsSeen += r.summary.SubdomainsSeen
		if r.summary.AXFRWorked {
			ds.Stats.AXFRSuccesses++
		}
		ds.Domains[r.summary.Domain] = r.summary
		for _, o := range r.obs {
			ds.Subdomains[o.FQDN] = o
			ds.ByDomain[o.Domain] = append(ds.ByDomain[o.Domain], o)
			ds.Stats.CloudSubdomains++
		}
	}
	ds.Stats.SerialProbeTime = cfg.Fabric.Clock().Now().Sub(campaignStart)
	return ds
}

// scanDomain runs steps 1–4 for one domain. idx/total is the domain's
// position in the ranked list — the campaign-progress phase chaos
// windows are evaluated against. Everything fault-related is a function
// of (domain, vantage, phase), never of scheduling, so scans compose
// identically at any worker count; completeness counts merge through
// the commutative accumulator for the same reason.
func scanDomain(cfg Config, bruteRV *dnssrv.Resolver, vantages []*dnssrv.Resolver, domain string, idx, total int) (r struct {
	summary *DomainSummary
	obs     []*Observation
	queries int64
}) {
	r.summary = &DomainSummary{Domain: domain}
	phase := float64(idx) / float64(total)

	// Per-scan probe budget, shared by every step of this domain.
	var budget *dnssrv.Budget
	if cfg.MaxQueriesPerDomain > 0 || cfg.DomainDeadline > 0 {
		budget = &dnssrv.Budget{MaxQueries: cfg.MaxQueriesPerDomain, Deadline: cfg.DomainDeadline}
	}
	var bstats telemetry.Counts
	bruteRV = bruteRV.ForUnit("dataset/"+domain, budget, &bstats)
	defer func() {
		cfg.Completeness.Merge("dataset/brute", vantageLabel(idx%150), bstats)
	}()

	// Step 1: zone transfer.
	var names []string
	if rrs, err := bruteRV.AXFR(domain); err == nil {
		r.summary.AXFRWorked = true
		r.queries++
		seen := map[string]bool{}
		for _, rr := range rrs {
			n := dnswire.CanonicalName(rr.Name)
			if n != domain && !seen[n] && rr.Type != dnswire.TypeNS {
				seen[n] = true
				names = append(names, n)
			}
		}
	} else {
		r.queries++
		// Step 2: wordlist brute force.
		for _, w := range cfg.Wordlist {
			fqdn := w + "." + domain
			r.queries++
			if _, err := bruteRV.Query(fqdn, dnswire.TypeA); err == nil {
				names = append(names, fqdn)
			}
		}
	}
	r.summary.SubdomainsSeen = len(names)

	// Step 3: single lookup; keep cloud-using names.
	var cloudNames []string
	for _, fqdn := range names {
		chain, err := bruteRV.LookupA(fqdn)
		r.queries++
		if err != nil {
			continue
		}
		if containsCloudIP(cfg.Ranges, chain) {
			cloudNames = append(cloudNames, fqdn)
		}
	}

	// Step 4: distributed re-resolution of cloud-using subdomains.
	// Name-outer, vantage-inner preserves the legacy first-seen record
	// order. Per-vantage unit clones carry the scan's budget plus their
	// own completeness counts; a vantage that is chaos-dark or has
	// tripped its circuit breaker sits the lookup out, and the
	// observation is built from whoever answered.
	vrvs := make([]*dnssrv.Resolver, len(vantages))
	vstats := make([]telemetry.Counts, len(vantages))
	fails := make([]int, len(vantages))
	for _, fqdn := range cloudNames {
		o := &Observation{FQDN: fqdn, Domain: domain}
		seenRR := map[string]bool{}
		seenIP := map[netaddr.IP]bool{}
		for vi, rv := range vantages {
			if cfg.Chaos.VantageOut(vantageLabel(vi), phase) {
				vstats[vi].Attempted++
				vstats[vi].Abandoned++
				continue
			}
			if cfg.BreakerFailures > 0 && fails[vi] >= cfg.BreakerFailures {
				vstats[vi].Attempted++
				vstats[vi].Abandoned++
				continue
			}
			if vrvs[vi] == nil {
				vrvs[vi] = rv.ForUnit(domain+"|"+vantageLabel(vi), budget, &vstats[vi])
			}
			chain, err := vrvs[vi].LookupA(fqdn)
			r.queries++
			if err != nil {
				fails[vi]++
				continue
			}
			fails[vi] = 0
			for _, rr := range chain {
				k := rr.String()
				if !seenRR[k] {
					seenRR[k] = true
					o.RRs = append(o.RRs, rr)
				}
				if rr.Type == dnswire.TypeA && !seenIP[rr.IP] {
					seenIP[rr.IP] = true
					o.IPs = append(o.IPs, rr.IP)
				}
			}
		}
		if len(o.RRs) > 0 {
			r.obs = append(r.obs, o)
			r.summary.CloudUsing++
		}
	}
	for vi := range vstats {
		cfg.Completeness.Merge("dataset", vantageLabel(vi), vstats[vi])
	}
	return r
}

func containsCloudIP(ranges *ipranges.List, chain []dnswire.RR) bool {
	for _, rr := range chain {
		if rr.Type == dnswire.TypeA && ranges.Contains(rr.IP, "") {
			return true
		}
	}
	return false
}

// ProviderOf classifies an observation's providers from its terminal
// IPs: EC2 (CloudFront counts as EC2-affiliated), Azure, and other.
func (o *Observation) ProviderOf(ranges *ipranges.List) (usesEC2, usesAzure, usesOther bool) {
	for _, ip := range o.IPs {
		e, ok := ranges.Lookup(ip)
		switch {
		case !ok:
			usesOther = true
		case e.Provider == ipranges.EC2 || e.Provider == ipranges.CloudFront:
			usesEC2 = true
		case e.Provider == ipranges.Azure:
			usesAzure = true
		}
	}
	return
}
