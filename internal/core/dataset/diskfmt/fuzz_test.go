package diskfmt

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// decodeAll drains a stream, treating a clean io.EOF as success.
func decodeAll(data []byte) ([]Record, error) {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

func encodeAll(t testing.TB, recs []Record) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// FuzzDiskFmtRoundTrip throws arbitrary bytes at the decoder and checks
// the round-trip contract (mirroring FuzzPcapRead): decoding must never
// panic or over-read — truncated magic, mid-record EOF, and forged
// length prefixes all error cleanly — and whatever decodes successfully
// must re-encode to the identical byte stream.
func FuzzDiskFmtRoundTrip(f *testing.F) {
	valid := encodeAll(f, []Record{
		{Tag: TagDomain, Key: "amazon.com", Payload: []byte("D amazon.com 1 68 2\n")},
		{Tag: TagSub, Key: "ws.amazon.com", Payload: []byte("S ws.amazon.com amazon.com\nR ws.amazon.com CNAME 300 x\nE\n")},
		{Tag: TagSub, Key: "", Payload: nil}, // empty key and payload are legal
	})
	f.Add(valid)
	f.Add(valid[:3])                                            // truncated magic
	f.Add(valid[:4])                                            // magic only: a clean empty stream
	f.Add(valid[:len(valid)-2])                                 // mid-payload EOF
	f.Add(valid[:5])                                            // tag but no key length
	f.Add([]byte("XXD1"))                                       // wrong magic
	forged := append([]byte(Magic+"D"), 0xff, 0xff, 0xff, 0x7f) // length 2^28-1 > MaxLen
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := decodeAll(data)
		if err != nil {
			return // rejected input; not panicking is the contract
		}
		// Decoded cleanly: encode→decode must be the identity on the
		// records. (Byte-exactness with the input is NOT required — the
		// fuzzer found that ReadUvarint accepts non-minimal length
		// encodings, which re-encode canonically; see the committed
		// corpus seed with the \x80\x00 length prefix.)
		re := encodeAll(t, recs)
		recs2, err := decodeAll(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("re-decode record count %d != %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].Tag != recs2[i].Tag || recs[i].Key != recs2[i].Key || !bytes.Equal(recs[i].Payload, recs2[i].Payload) {
				t.Fatalf("record %d differs after round trip", i)
			}
		}
	})
}

// TestForgedLengthPrefixRejected pins the allocation guard: a record
// whose length prefix claims more than MaxLen must be rejected by the
// prefix check itself — before any allocation — not by the read failing.
func TestForgedLengthPrefixRejected(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"forged-key-length", append([]byte(Magic+"D"), 0xff, 0xff, 0xff, 0x7f)},
		{"forged-payload-length", append(encodeAll(t, nil), append([]byte{'S', 0x01, 'a'}, 0xff, 0xff, 0xff, 0xff, 0x0f)...)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeAll(tc.data)
			if err == nil {
				t.Fatal("forged length prefix decoded without error")
			}
			if !strings.Contains(err.Error(), "exceeds cap") {
				t.Fatalf("rejected for the wrong reason: %v", err)
			}
		})
	}
}

// TestCleanEOFVsTruncation pins the EOF semantics spill merging relies
// on: end-of-stream at a record boundary is io.EOF; inside a record it
// is an error wrapping io.ErrUnexpectedEOF.
func TestCleanEOFVsTruncation(t *testing.T) {
	data := encodeAll(t, []Record{{Tag: TagDomain, Key: "k", Payload: []byte("v")}})
	if recs, err := decodeAll(data); err != nil || len(recs) != 1 {
		t.Fatalf("clean stream: recs=%d err=%v", len(recs), err)
	}
	for cut := len(Magic) + 1; cut < len(data); cut++ {
		_, err := decodeAll(data[:cut])
		if err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}
