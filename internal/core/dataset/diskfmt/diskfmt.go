// Package diskfmt is the compact length-prefixed binary format the
// dataset spill-to-disk path uses for per-chunk partial datasets. A
// file is the magic "CSD1" followed by records:
//
//	tag      1 byte      'D' (domain summary) or 'S' (subdomain block)
//	keyLen   uvarint     sort key length
//	key      keyLen      domain name (D) or FQDN (S)
//	plLen    uvarint     payload length
//	payload  plLen       the record's pre-rendered text-format bytes
//
// Records carry the dataset text format's own rendering as payload, so
// the k-way merge that combines spill files is a pure byte
// concatenation in (tag, key) order — no re-parsing, and the merged
// output is byte-identical to the in-memory serializer's.
//
// The decoder is hardened the way the pcap reader is: it never panics,
// never trusts a length prefix (lengths are capped before allocation),
// and distinguishes a clean end-of-stream (io.EOF from Next) from a
// record truncated mid-way (an error wrapping io.ErrUnexpectedEOF).
package diskfmt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies a spill file.
const Magic = "CSD1"

// MaxLen caps a record's key and payload lengths. Real payloads are
// rendered text blocks of at most a few hundred KB; the cap exists so
// a forged length prefix cannot force a multi-gigabyte allocation.
const MaxLen = 1 << 24

// Record tags: 'D' sorts before 'S', matching the text format's layout
// (all domain lines, then all subdomain blocks).
const (
	TagDomain byte = 'D'
	TagSub    byte = 'S'
)

// Record is one spill entry: a sort key and its pre-rendered payload.
type Record struct {
	Tag     byte
	Key     string
	Payload []byte
}

// Less orders records by (tag, key) — the global output order.
func (r Record) Less(o Record) bool {
	if r.Tag != o.Tag {
		return r.Tag < o.Tag
	}
	return r.Key < o.Key
}

// Writer encodes records to a spill file.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter starts a spill stream on w, emitting the magic.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if r.Tag != TagDomain && r.Tag != TagSub {
		return fmt.Errorf("diskfmt: bad tag 0x%02x", r.Tag)
	}
	if len(r.Key) > MaxLen {
		return fmt.Errorf("diskfmt: key length %d exceeds cap %d", len(r.Key), MaxLen)
	}
	if len(r.Payload) > MaxLen {
		return fmt.Errorf("diskfmt: payload length %d exceeds cap %d", len(r.Payload), MaxLen)
	}
	if err := w.bw.WriteByte(r.Tag); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(r.Key)))
	if _, err := w.bw.Write(tmp[:n]); err != nil {
		return err
	}
	if _, err := w.bw.WriteString(r.Key); err != nil {
		return err
	}
	n = binary.PutUvarint(tmp[:], uint64(len(r.Payload)))
	if _, err := w.bw.Write(tmp[:n]); err != nil {
		return err
	}
	_, err := w.bw.Write(r.Payload)
	return err
}

// Flush commits buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader decodes a spill stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader validates the magic and prepares to decode records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("diskfmt: reading magic: %w", noEOF(err))
	}
	if string(magic) != Magic {
		return nil, errors.New("diskfmt: bad magic")
	}
	return &Reader{br: br}, nil
}

// Next decodes the next record. It returns io.EOF exactly at a clean
// record boundary; a stream that ends inside a record yields an error
// wrapping io.ErrUnexpectedEOF instead.
func (r *Reader) Next() (Record, error) {
	tag, err := r.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	if tag != TagDomain && tag != TagSub {
		return Record{}, fmt.Errorf("diskfmt: bad tag 0x%02x", tag)
	}
	key, err := r.readBlob("key")
	if err != nil {
		return Record{}, err
	}
	payload, err := r.readBlob("payload")
	if err != nil {
		return Record{}, err
	}
	return Record{Tag: tag, Key: string(key), Payload: payload}, nil
}

// readBlob reads one uvarint-length-prefixed field, rejecting lengths
// beyond MaxLen before allocating anything.
func (r *Reader) readBlob(what string) ([]byte, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, fmt.Errorf("diskfmt: reading %s length: %w", what, noEOF(err))
	}
	if n > MaxLen {
		return nil, fmt.Errorf("diskfmt: %s length %d exceeds cap %d (forged or corrupt length prefix)", what, n, MaxLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("diskfmt: reading %s: %w", what, noEOF(err))
	}
	return buf, nil
}

// noEOF converts a mid-record EOF into io.ErrUnexpectedEOF so clean
// end-of-stream stays distinguishable.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
