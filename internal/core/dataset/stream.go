package dataset

import (
	"bufio"
	"container/heap"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cloudscope/internal/core/dataset/diskfmt"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/parallel"
)

// StreamConfig parameterizes a spill-to-disk streaming build.
type StreamConfig struct {
	Config
	// Total is the full campaign's domain count across all chunks. The
	// pipeline's rank-indexed knobs (brute-force resolver assignment,
	// chaos phase) are functions of a domain's global index out of
	// Total, which is how chunked and whole-list scans stay identical.
	Total int
	// SpillDir is the directory per-chunk spill files are created
	// under (inside a fresh temp subdirectory); "" uses os.TempDir().
	Ctx      context.Context
	SpillDir string
}

// StreamBuilder runs the discovery pipeline incrementally: each
// AddChunk scans one rank-contiguous window of the list and spills the
// rendered partial dataset to disk in diskfmt, and Finish k-way merges
// the sorted spill files into the text format. Peak memory is one
// chunk's scan plus the merge readers — never the whole dataset — and
// the output is byte-identical to Build + WriteTo at every worker
// count and chunk size (the per-stage sha256 goldens hold it there).
type StreamBuilder struct {
	cfg      StreamConfig
	brute    []*dnssrv.Resolver
	vantages []*dnssrv.Resolver
	start    time.Time
	dir      string   // temp spill dir; "" once cleaned up
	files    []string // one sorted spill file per chunk
	next     int      // global index of the next chunk's first domain
	stats    Stats
}

// NewStreamBuilder prepares a streaming build. The caller must Close
// (or Finish) it, or spill files leak until the OS clears TempDir.
func NewStreamBuilder(cfg StreamConfig) (*StreamBuilder, error) {
	cfg.Config.normalize()
	if cfg.Total <= 0 {
		return nil, fmt.Errorf("dataset: StreamConfig.Total must be positive")
	}
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("dataset: creating spill dir: %w", err)
		}
	}
	dir, err := os.MkdirTemp(cfg.SpillDir, "cloudscope-spill-*")
	if err != nil {
		return nil, fmt.Errorf("dataset: creating spill dir: %w", err)
	}
	b := &StreamBuilder{
		cfg:   cfg,
		start: cfg.Fabric.Clock().Now(),
		dir:   dir,
	}
	// The shared resolver pools, constructed once like Build's.
	b.brute = make([]*dnssrv.Resolver, 150)
	for i := range b.brute {
		b.brute[i] = dnssrv.NewResolver(cfg.Fabric, cfg.Registry, vantageIP(i))
		b.brute[i].NoRecurse = true
		b.brute[i].Metrics = cfg.Metrics
		b.brute[i].Backoff = cfg.Backoff
	}
	b.vantages = make([]*dnssrv.Resolver, cfg.Vantages)
	for i := range b.vantages {
		b.vantages[i] = dnssrv.NewResolver(cfg.Fabric, cfg.Registry, vantageIP(i))
		b.vantages[i].NoRecurse = true
		b.vantages[i].Metrics = cfg.Metrics
		b.vantages[i].Backoff = cfg.Backoff
	}
	return b, nil
}

// Stats returns the campaign totals accumulated so far; final after
// Finish.
func (b *StreamBuilder) Stats() Stats { return b.stats }

// AddChunk scans the next len(names) domains of the ranked list (names
// must continue exactly where the previous chunk stopped) and spills
// their rendered partial dataset. Scans run in parallel under the
// Config's Workers; the spill file is written sorted, so Finish can
// stream-merge. On error (including cancellation via Ctx and worker
// panics, which surface as *parallel.PanicError) the builder is closed
// and its spill files are already removed.
func (b *StreamBuilder) AddChunk(names []string) error {
	if b.dir == "" {
		return fmt.Errorf("dataset: AddChunk on a closed builder")
	}
	if len(names) == 0 {
		return nil
	}
	if b.next+len(names) > b.cfg.Total {
		b.Close()
		return fmt.Errorf("dataset: chunk overruns Total (%d + %d > %d)", b.next, len(names), b.cfg.Total)
	}
	type domainResult struct {
		summary *DomainSummary
		obs     []*Observation
		queries int64
	}
	base := b.next
	results := make([]domainResult, len(names))
	opt := parallel.Options{Workers: b.cfg.Workers, Metrics: b.cfg.ParMetrics, Ctx: b.cfg.Ctx}
	if err := parallel.RunAt(opt, base, len(names), func(sh parallel.Shard) error {
		for i := sh.Lo; i < sh.Hi; i++ {
			// Global index i out of Total: resolver assignment and
			// chaos phase match the whole-list scan exactly.
			results[i-base] = scanDomain(b.cfg.Config, b.brute[i%len(b.brute)], b.vantages, names[i-base], i, b.cfg.Total)
		}
		return nil
	}); err != nil {
		b.Close()
		return err
	}
	b.next += len(names)

	// Fold stats in rank order (commutative sums, so chunk-at-a-time
	// equals Build's whole-slice fold) and render the spill records.
	recs := make([]diskfmt.Record, 0, 2*len(results))
	for _, r := range results {
		b.stats.DomainsScanned++
		b.stats.QueriesIssued += r.queries
		b.stats.SubdomainsSeen += r.summary.SubdomainsSeen
		if r.summary.AXFRWorked {
			b.stats.AXFRSuccesses++
		}
		recs = append(recs, diskfmt.Record{Tag: diskfmt.TagDomain, Key: r.summary.Domain, Payload: []byte(renderDomainLine(r.summary))})
		for _, o := range r.obs {
			b.stats.CloudSubdomains++
			recs = append(recs, diskfmt.Record{Tag: diskfmt.TagSub, Key: o.FQDN, Payload: []byte(renderObservation(o))})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Less(recs[j]) })

	path := filepath.Join(b.dir, fmt.Sprintf("chunk-%06d.csd", len(b.files)))
	if err := writeSpill(path, recs); err != nil {
		b.Close()
		return err
	}
	b.files = append(b.files, path)
	return nil
}

func writeSpill(path string, recs []diskfmt.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: creating spill file: %w", err)
	}
	w, err := diskfmt.NewWriter(f)
	if err == nil {
		for _, r := range recs {
			if err = w.Write(r); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("dataset: writing spill file: %w", err)
	}
	return nil
}

// Finish merges the spill files into w as the text format — header,
// sorted D lines, sorted S blocks — byte-identical to Build+WriteTo,
// then removes the spill directory. The builder is spent afterwards.
func (b *StreamBuilder) Finish(w io.Writer) (Stats, error) {
	defer b.Close()
	b.stats.SerialProbeTime = b.cfg.Fabric.Clock().Now().Sub(b.start)

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(renderHeader(b.stats)); err != nil {
		return b.stats, err
	}
	var mh mergeHeap
	for _, path := range b.files {
		f, err := os.Open(path)
		if err != nil {
			closeSources(mh)
			return b.stats, fmt.Errorf("dataset: reopening spill file: %w", err)
		}
		rd, err := diskfmt.NewReader(f)
		if err != nil {
			f.Close()
			closeSources(mh)
			return b.stats, err
		}
		src := &mergeSource{f: f, rd: rd}
		ok, err := src.advance()
		if err != nil {
			f.Close()
			closeSources(mh)
			return b.stats, err
		}
		if ok {
			mh = append(mh, src)
		} else {
			f.Close()
		}
	}
	heap.Init(&mh)
	// Every key is globally unique (domains are unique; FQDNs embed
	// their domain), so the heap order is total and the merge is a
	// single pass of byte concatenation.
	for mh.Len() > 0 {
		src := mh[0]
		if _, err := bw.Write(src.cur.Payload); err != nil {
			closeSources(mh)
			return b.stats, err
		}
		ok, err := src.advance()
		switch {
		case err != nil:
			closeSources(mh)
			return b.stats, err
		case ok:
			heap.Fix(&mh, 0)
		default:
			src.f.Close()
			heap.Pop(&mh)
		}
	}
	return b.stats, bw.Flush()
}

// Close removes the spill directory and every file in it. Idempotent;
// safe to defer alongside Finish for cancellation and panic paths.
func (b *StreamBuilder) Close() error {
	if b.dir == "" {
		return nil
	}
	err := os.RemoveAll(b.dir)
	b.dir = ""
	b.files = nil
	return err
}

// mergeSource is one spill file being merged.
type mergeSource struct {
	f   *os.File
	rd  *diskfmt.Reader
	cur diskfmt.Record
}

// advance loads the source's next record; ok=false on clean EOF.
func (s *mergeSource) advance() (ok bool, err error) {
	rec, err := s.rd.Next()
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	s.cur = rec
	return true, nil
}

func closeSources(srcs []*mergeSource) {
	for _, s := range srcs {
		s.f.Close()
	}
}

// mergeHeap is a min-heap of spill sources by current record order.
type mergeHeap []*mergeSource

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].cur.Less(h[j].cur) }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*mergeSource)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
