package dataset

import (
	"strings"
	"testing"
	"time"

	"cloudscope/internal/chaos"
	"cloudscope/internal/deploy"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/telemetry"
)

// Failure injection: the discovery pipeline must degrade gracefully,
// not collapse, when the network drops packets — resolvers retry across
// a delegation's name servers.

func TestDiscoveryUnderPacketLoss(t *testing.T) {
	w := deploy.Generate(deploy.DefaultConfig().Scaled(400))
	names := make([]string, 0, len(w.Domains))
	for _, d := range w.Domains {
		names = append(names, d.Name)
	}
	baseline := Build(Config{
		Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
		Domains: names, Vantages: 10,
	})

	// 15% loss: most domains have 3+ NS, so per-lookup failure
	// probability is ~0.3%. Discovery should lose almost nothing.
	w.Fabric.SetLoss(0.15, 7)
	defer w.Fabric.SetLoss(0, 0)
	lossy := Build(Config{
		Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
		Domains: names, Vantages: 10,
	})

	if lossy.Stats.CloudSubdomains == 0 {
		t.Fatal("discovery collapsed under loss")
	}
	ratio := float64(lossy.Stats.CloudSubdomains) / float64(baseline.Stats.CloudSubdomains)
	if ratio < 0.85 {
		t.Fatalf("loss degraded discovery to %.2f of baseline", ratio)
	}
	// Results stay a subset of truth (loss cannot invent records).
	for fqdn := range lossy.Subdomains {
		if _, ok := w.Subdomain(fqdn); !ok {
			t.Fatalf("phantom subdomain %s under loss", fqdn)
		}
	}
}

func TestDiscoveryUnderHeavyLossIsLowerBound(t *testing.T) {
	w := deploy.Generate(deploy.DefaultConfig().Scaled(300))
	names := make([]string, 0, len(w.Domains))
	for _, d := range w.Domains {
		names = append(names, d.Name)
	}
	w.Fabric.SetLoss(0.5, 11)
	defer w.Fabric.SetLoss(0, 0)
	ds := Build(Config{
		Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
		Domains: names, Vantages: 5,
	})
	// Heavy loss shrinks the dataset but never corrupts it.
	truthSubs := 0
	for _, d := range w.CloudDomains {
		truthSubs += len(d.CloudSubdomains())
	}
	if ds.Stats.CloudSubdomains > truthSubs {
		t.Fatalf("found %d > truth %d", ds.Stats.CloudSubdomains, truthSubs)
	}
	for fqdn, obs := range ds.Subdomains {
		sub, ok := w.Subdomain(fqdn)
		if !ok || !sub.CloudUsing() {
			t.Fatalf("corrupt observation %s", fqdn)
		}
		if len(obs.IPs) == 0 {
			t.Fatalf("%s kept with no addresses", fqdn)
		}
	}
}

// --- Worker-count invariance under faults ---------------------------
//
// The invariance contract must survive fault injection: every loss
// verdict, retry, breaker trip, and completeness count is a pure
// function of stable identities, never of worker scheduling.

func buildFaulted(w *deploy.World, workers int, eng *chaos.Engine, comp *telemetry.Completeness) *Dataset {
	names := make([]string, 0, len(w.Domains))
	for _, d := range w.Domains {
		names = append(names, d.Name)
	}
	return Build(Config{
		Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
		Domains: names, Vantages: 8, Workers: workers,
		Chaos:           eng,
		Completeness:    comp,
		Backoff:         dnssrv.Backoff{MaxAttempts: 4, Base: 50 * time.Millisecond, Max: time.Second},
		BreakerFailures: 4,
	})
}

func TestBuildUnderLossWorkerInvariant(t *testing.T) {
	run := func(workers int) (string, string) {
		w := freshWorld()
		w.Fabric.SetLoss(0.15, 7)
		comp := telemetry.NewCompleteness()
		ds := buildFaulted(w, workers, nil, comp)
		return datasetBytes(t, ds), comp.Report()
	}
	goldenDS, goldenComp := run(1)
	for _, workers := range []int{2, 4} {
		ds, comp := run(workers)
		if ds != goldenDS {
			t.Errorf("dataset differs at Workers=%d under loss", workers)
		}
		if comp != goldenComp {
			t.Errorf("completeness differs at Workers=%d under loss:\n%s\nvs\n%s", workers, comp, goldenComp)
		}
	}
}

func TestBuildChaosWorkerInvariant(t *testing.T) {
	sc, err := chaos.Load("planetlab-flux")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (string, string) {
		w := freshWorld()
		eng := chaos.New(sc, 42)
		w.Fabric.SetInterceptor(eng)
		comp := telemetry.NewCompleteness()
		ds := buildFaulted(w, workers, eng, comp)
		return datasetBytes(t, ds), comp.Report()
	}
	goldenDS, goldenComp := run(1)
	if !strings.Contains(goldenComp, "dataset") {
		t.Fatalf("completeness report records nothing:\n%s", goldenComp)
	}
	for _, workers := range []int{2, 4} {
		ds, comp := run(workers)
		if ds != goldenDS {
			t.Errorf("dataset differs at Workers=%d under chaos", workers)
		}
		if comp != goldenComp {
			t.Errorf("completeness differs at Workers=%d under chaos:\n%s\nvs\n%s", workers, comp, goldenComp)
		}
	}
}

// TestVantageOutageRecordsAbandonment pins the degradation contract: a
// vantage outage mid-campaign yields a partial dataset that is still a
// subset of truth, and Completeness reports the abandoned work.
func TestVantageOutageRecordsAbandonment(t *testing.T) {
	sc, err := chaos.Parse("vantage-down,frac=0.5,window=0.2-0.9")
	if err != nil {
		t.Fatal(err)
	}
	w := freshWorld()
	eng := chaos.New(sc, 3)
	comp := telemetry.NewCompleteness()
	ds := buildFaulted(w, 2, eng, comp)
	if !comp.Degraded() {
		t.Fatalf("expected degraded completeness, got:\n%s", comp.Report())
	}
	abandoned := int64(0)
	for _, st := range comp.Snapshot() {
		if st.Stage == "dataset" {
			abandoned += st.Abandoned
		}
	}
	if abandoned == 0 {
		t.Fatal("vantage outage recorded no abandoned probes")
	}
	for fqdn := range ds.Subdomains {
		if _, ok := w.Subdomain(fqdn); !ok {
			t.Fatalf("phantom subdomain %s under outage", fqdn)
		}
	}
}
