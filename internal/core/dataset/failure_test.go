package dataset

import (
	"testing"

	"cloudscope/internal/deploy"
)

// Failure injection: the discovery pipeline must degrade gracefully,
// not collapse, when the network drops packets — resolvers retry across
// a delegation's name servers.

func TestDiscoveryUnderPacketLoss(t *testing.T) {
	w := deploy.Generate(deploy.DefaultConfig().Scaled(400))
	names := make([]string, 0, len(w.Domains))
	for _, d := range w.Domains {
		names = append(names, d.Name)
	}
	baseline := Build(Config{
		Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
		Domains: names, Vantages: 10,
	})

	// 15% loss: most domains have 3+ NS, so per-lookup failure
	// probability is ~0.3%. Discovery should lose almost nothing.
	w.Fabric.SetLoss(0.15, 7)
	defer w.Fabric.SetLoss(0, 0)
	lossy := Build(Config{
		Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
		Domains: names, Vantages: 10,
	})

	if lossy.Stats.CloudSubdomains == 0 {
		t.Fatal("discovery collapsed under loss")
	}
	ratio := float64(lossy.Stats.CloudSubdomains) / float64(baseline.Stats.CloudSubdomains)
	if ratio < 0.85 {
		t.Fatalf("loss degraded discovery to %.2f of baseline", ratio)
	}
	// Results stay a subset of truth (loss cannot invent records).
	for fqdn := range lossy.Subdomains {
		if _, ok := w.Subdomain(fqdn); !ok {
			t.Fatalf("phantom subdomain %s under loss", fqdn)
		}
	}
}

func TestDiscoveryUnderHeavyLossIsLowerBound(t *testing.T) {
	w := deploy.Generate(deploy.DefaultConfig().Scaled(300))
	names := make([]string, 0, len(w.Domains))
	for _, d := range w.Domains {
		names = append(names, d.Name)
	}
	w.Fabric.SetLoss(0.5, 11)
	defer w.Fabric.SetLoss(0, 0)
	ds := Build(Config{
		Fabric: w.Fabric, Registry: w.Registry, Ranges: w.Ranges,
		Domains: names, Vantages: 5,
	})
	// Heavy loss shrinks the dataset but never corrupts it.
	truthSubs := 0
	for _, d := range w.CloudDomains {
		truthSubs += len(d.CloudSubdomains())
	}
	if ds.Stats.CloudSubdomains > truthSubs {
		t.Fatalf("found %d > truth %d", ds.Stats.CloudSubdomains, truthSubs)
	}
	for fqdn, obs := range ds.Subdomains {
		sub, ok := w.Subdomain(fqdn)
		if !ok || !sub.CloudUsing() {
			t.Fatalf("corrupt observation %s", fqdn)
		}
		if len(obs.IPs) == 0 {
			t.Fatalf("%s kept with no addresses", fqdn)
		}
	}
}
