package wanperf

import (
	"math"
	"testing"

	"cloudscope/internal/cloud"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/parallel"
	"cloudscope/internal/wan"
)

var usRegions = []string{"ec2.us-east-1", "ec2.us-west-1", "ec2.us-west-2"}

func newCampaign() *Campaign {
	c := NewCampaign(3, 80, ipranges.EC2Regions)
	c.Rounds = 96 // one day at 15-minute rounds keeps tests quick
	return c
}

func TestMatrixShapes(t *testing.T) {
	c := newCampaign()
	lat := c.Matrix(wan.MetricLatency, usRegions, 15)
	if len(lat) != 15*3 {
		t.Fatalf("cells = %d", len(lat))
	}
	byClient := map[string]map[string]float64{}
	for _, cell := range lat {
		if cell.Mean <= 0 || cell.Samples != c.Rounds {
			t.Fatalf("bad cell %+v", cell)
		}
		if byClient[cell.Client] == nil {
			byClient[cell.Client] = map[string]float64{}
		}
		byClient[cell.Client][cell.Region] = cell.Mean
	}
	// Seattle strongly prefers a west-coast region.
	if m, ok := byClient["Seattle"]; ok {
		if m["ec2.us-west-2"] >= m["ec2.us-east-1"] {
			t.Fatalf("Seattle: west %.0f >= east %.0f", m["ec2.us-west-2"], m["ec2.us-east-1"])
		}
		if m["ec2.us-east-1"]/m["ec2.us-west-2"] < 2 {
			t.Fatalf("Seattle latency ratio %.1f, want factor >2 (paper: ~6)", m["ec2.us-east-1"]/m["ec2.us-west-2"])
		}
	}
	thr := c.Matrix(wan.MetricThroughput, usRegions, 15)
	for _, cell := range thr {
		if cell.Mean < 10 || cell.Mean > 20000 {
			t.Fatalf("throughput cell %+v implausible", cell)
		}
	}
}

func TestBoulderSeries(t *testing.T) {
	c := newCampaign()
	series := c.TimeSeries("Boulder", usRegions)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	// The best region changes at least once over the campaign.
	bestAt := func(i int) string {
		best, bestV := "", math.Inf(1)
		for r, pts := range series {
			if pts[i].Y < bestV {
				best, bestV = r, pts[i].Y
			}
		}
		return best
	}
	changes := 0
	prev := bestAt(0)
	for i := 1; i < c.Rounds; i++ {
		if b := bestAt(i); b != prev {
			changes++
			prev = b
		}
	}
	if changes == 0 {
		t.Fatal("Boulder's best region never changed")
	}
	if series["ec2.us-east-1"][0].X != 0 {
		t.Fatal("series X should start at hour 0")
	}
	if _, ok := c.TimeSeries("Nowhere", usRegions)["ec2.us-east-1"]; ok {
		t.Fatal("unknown client should yield nil")
	}
}

func TestOptimalKFigure12(t *testing.T) {
	c := newCampaign()
	res := c.OptimalK(wan.MetricLatency, 4)
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	drop3 := (res[0].Value - res[2].Value) / res[0].Value
	if drop3 < 0.15 || drop3 > 0.55 {
		t.Fatalf("k=3 latency drop %.2f, want ~0.33", drop3)
	}
	greedy := c.GreedyK(wan.MetricLatency, 4)
	for i := range res {
		if greedy[i].Value < res[i].Value-1e-9 {
			t.Fatalf("greedy beat exhaustive at k=%d", i+1)
		}
	}
}

func TestIntraCloudRTTTable11(t *testing.T) {
	ec2 := cloud.NewEC2(33)
	rows := IntraCloudRTTs(ec2, "ec2.us-east-1", Options{Seed: 7, Par: parallel.Options{Workers: 1}})
	if len(rows) != len(cloud.InstanceTypes)*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MinMs > r.MedianMs {
			t.Fatalf("min %.2f > median %.2f", r.MinMs, r.MedianMs)
		}
		if r.DestZone == "a" {
			// Same-zone: ~0.5 ms regardless of instance type.
			if r.MinMs < 0.3 || r.MinMs > 0.8 {
				t.Fatalf("same-zone min %.2f ms for %s", r.MinMs, r.InstanceType)
			}
		} else {
			if r.MinMs < 1.0 || r.MinMs > 3.0 {
				t.Fatalf("cross-zone min %.2f ms", r.MinMs)
			}
		}
	}
}

func TestISPDiversityTable16(t *testing.T) {
	m := wan.New(5, 200, ipranges.EC2Regions)
	zoneCounts := map[string]int{
		"ec2.us-east-1": 3, "ec2.us-west-1": 2, "ec2.sa-east-1": 2,
	}
	rows := ISPDiversity(m, zoneCounts, Options{Seed: 9, Par: parallel.Options{Workers: 1}})
	byRegion := map[string]ISPRow{}
	for _, r := range rows {
		byRegion[r.Region] = r
	}
	east := byRegion["ec2.us-east-1"]
	sa := byRegion["ec2.sa-east-1"]
	if len(east.PerZone) != 3 || len(sa.PerZone) != 2 {
		t.Fatalf("zone columns wrong: %+v %+v", east, sa)
	}
	// us-east sees far more downstream ISPs than sa-east (36 vs 4).
	if east.PerZone[0] <= sa.PerZone[0] {
		t.Fatalf("east %d <= sa %d", east.PerZone[0], sa.PerZone[0])
	}
	if east.PerZone[0] > 36 || sa.PerZone[0] > 4 {
		t.Fatalf("observed more ISPs than exist: %+v %+v", east, sa)
	}
	if sa.PerZone[0] < 3 {
		t.Fatalf("sa-east observed only %d of 4 ISPs from 200 clients", sa.PerZone[0])
	}
	// Uneven spread: top ISP share ~30%.
	if east.TopShare < 0.10 || east.TopShare > 0.55 {
		t.Fatalf("us-east top-ISP share %.2f", east.TopShare)
	}
	// Zones of a region see (almost) the same counts.
	if diff := east.PerZone[0] - east.PerZone[2]; diff < -6 || diff > 6 {
		t.Fatalf("zone counts diverge: %v", east.PerZone)
	}
}

func TestOutagesImproveWithK(t *testing.T) {
	c := newCampaign()
	res := c.Outages(3, 25)
	if res.MeanUnreachable[1] <= res.MeanUnreachable[3] {
		// strictly better with 3 regions (could tie at 0 in theory).
		if res.MeanUnreachable[1] != 0 {
			t.Fatalf("outage risk not reduced: %v", res.MeanUnreachable)
		}
	}
}
