// Package wanperf implements §5's active-measurement campaigns: the
// per-region latency/throughput matrices (Figures 9 and 10), the
// time-varying best-region series (Figure 11), the optimal-k region
// analysis (Figure 12), intra-cloud RTT micro-benchmarks (Table 11),
// and downstream-ISP diversity via traceroute (Table 16), plus the
// route-outage simulation the paper alludes to.
package wanperf

import (
	"fmt"
	"sort"
	"time"

	"cloudscope/internal/chaos"
	"cloudscope/internal/cloud"
	"cloudscope/internal/geo"
	"cloudscope/internal/parallel"
	"cloudscope/internal/stats"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/wan"
	"cloudscope/internal/xrand"
)

// Options bundles the cross-cutting run parameters every standalone
// wanperf experiment takes: the seed its probe streams split from, the
// worker fan-out, and the optional fault-injection handles. The zero
// value is a bare sequential-or-parallel fault-free run (Par's zero
// value fans out to GOMAXPROCS; set Par.Workers to 1 to force the
// sequential path). Inside a Study, build Options from the study's
// fields: Options{Seed: s.Cfg.Seed, Par: s.Par("rtt"), Chaos:
// s.Chaos(), Completeness: s.Completeness()}.
type Options struct {
	// Seed roots the experiment's deterministic probe streams.
	Seed int64
	// Par bounds and instruments the worker fan-out; results are
	// bit-identical at every worker count.
	Par parallel.Options
	// Chaos, when set, injects faults into the experiment's probes.
	Chaos *chaos.Engine
	// Completeness, when set, receives the experiment's per-unit probe
	// accounting.
	Completeness *telemetry.Completeness
}

// Campaign bundles the §5 measurement setup: 80 PlanetLab clients, all
// EC2 regions, probing every 15 minutes for three days.
type Campaign struct {
	Model    *wan.Model
	Start    time.Time
	Interval time.Duration
	Rounds   int
	Seed     int64
	// Par controls the campaign's measurement fan-out. Each client
	// (and, in TimeSeries, each region) draws from its own
	// seed-derived stream, so results are identical at every worker
	// count.
	Par parallel.Options
	// Chaos, when set, injects faults: PlanetLab clients go dark for
	// stretches of the campaign (vantage-down) and region-scoped
	// loss/blackouts eat individual probes. Fault windows see the
	// campaign's round fraction as their phase.
	Chaos *chaos.Engine
	// Completeness, when set, receives per-client probe accounting
	// under stages "wanperf" (Matrix) and "wanperf/series".
	Completeness *telemetry.Completeness
}

// NewCampaign builds the paper's default campaign over regions.
func NewCampaign(seed int64, clients int, regions []string) *Campaign {
	return &Campaign{
		Model:    wan.New(seed, clients, regions),
		Start:    time.Date(2013, 4, 4, 0, 0, 0, 0, time.UTC),
		Interval: 15 * time.Minute,
		Rounds:   3 * 24 * 4, // three days at 15-minute rounds
		Seed:     seed,
	}
}

// MatrixCell is one (client, region) average.
type MatrixCell struct {
	Client  string
	Region  string
	Mean    float64
	Samples int
}

// Matrix measures the mean metric for every (client, region) pair —
// Figures 9 (throughput) and 10 (latency) restrict to the US regions.
// Clients fan out across workers, each on its own seed-derived stream.
func (c *Campaign) Matrix(metric wan.Metric, regions []string, maxClients int) []MatrixCell {
	clients := c.Model.Clients
	if maxClients > 0 && len(clients) > maxClients {
		clients = clients[:maxClients]
	}
	perClient, err := parallel.Map(c.Par, clients, func(_ int, client geo.Vantage) ([]MatrixCell, error) {
		rng := xrand.SplitSeeded(c.Seed, "wanperf/matrix/"+client.ID)
		cells := make([]MatrixCell, 0, len(regions))
		var cc telemetry.Counts
		for _, region := range regions {
			sum, n := 0.0, 0
			for round := 0; round < c.Rounds; round++ {
				t := c.Start.Add(time.Duration(round) * c.Interval)
				phase := float64(round) / float64(c.Rounds)
				// The probe value draws first so that surviving rounds
				// see the same stream with or without faults.
				var v float64
				if metric == wan.MetricLatency {
					v = c.Model.RTT(client, region, t, rng)
				} else {
					v = c.Model.Throughput(client, region, t, rng)
				}
				cc.Attempted++
				if c.Chaos.VantageOut(client.Name, phase) ||
					c.Chaos.ProbeLost(region, fmt.Sprintf("%s/%s/%d", client.ID, region, round), phase) {
					cc.Abandoned++
					continue
				}
				cc.Succeeded++
				sum += v
				n++
			}
			mean := 0.0
			if n > 0 {
				mean = sum / float64(n)
			}
			cells = append(cells, MatrixCell{
				Client:  client.Name,
				Region:  region,
				Mean:    mean,
				Samples: n,
			})
		}
		// Completeness additions commute, so recording from the worker
		// cannot perturb worker-count invariance.
		c.Completeness.Merge("wanperf", client.Name, cc)
		return cells, nil
	})
	if err != nil {
		panic(err) // workers only surface panics; re-raise on the caller
	}
	var cells []MatrixCell
	for _, cs := range perClient {
		cells = append(cells, cs...)
	}
	return cells
}

// TimeSeries measures one client's latency to several regions over the
// campaign (Figure 11's Boulder plot). Regions fan out across workers,
// each series on its own seed-derived stream.
func (c *Campaign) TimeSeries(clientName string, regions []string) map[string][]stats.Point {
	var client geo.Vantage
	found := false
	for _, cl := range c.Model.Clients {
		if cl.Name == clientName {
			client, found = cl, true
			break
		}
	}
	if !found {
		return nil
	}
	series, err := parallel.Map(c.Par, regions, func(ri int, region string) ([]stats.Point, error) {
		rng := xrand.SplitSeeded(c.Seed, "wanperf/series/"+client.ID+"/"+region)
		pts := make([]stats.Point, 0, c.Rounds)
		var cc telemetry.Counts
		for round := 0; round < c.Rounds; round++ {
			t := c.Start.Add(time.Duration(round) * c.Interval)
			hours := float64(round) * c.Interval.Hours()
			y := c.Model.RTT(client, region, t, rng)
			cc.Attempted++
			// Only client-level outages gate the series — the skip is
			// region-independent, so every region's series keeps the
			// same round set and Figure 11 stays aligned.
			if c.Chaos.VantageOut(client.Name, float64(round)/float64(c.Rounds)) {
				cc.Abandoned++
				continue
			}
			cc.Succeeded++
			pts = append(pts, stats.Point{X: hours, Y: y})
		}
		if ri == 0 {
			// Identical per region; record once.
			c.Completeness.Merge("wanperf/series", client.Name, cc)
		}
		return pts, nil
	})
	if err != nil {
		panic(err) // workers only surface panics; re-raise on the caller
	}
	out := map[string][]stats.Point{}
	for i, region := range regions {
		out[region] = series[i]
	}
	return out
}

// OptimalK runs Figure 12's exhaustive subset search.
func (c *Campaign) OptimalK(metric wan.Metric, maxK int) []wan.OptimalKResult {
	return c.Model.OptimalK(metric, maxK, c.Rounds/4, c.Interval*4, c.Start, c.Seed)
}

// GreedyK is the ablation comparator for OptimalK.
func (c *Campaign) GreedyK(metric wan.Metric, maxK int) []wan.OptimalKResult {
	return c.Model.GreedyK(metric, maxK, c.Rounds/4, c.Interval*4, c.Start, c.Seed)
}

// --- Table 11: intra-cloud RTT micro-benchmark ------------------------

// RTTRow is one (instance type, destination zone) measurement.
type RTTRow struct {
	InstanceType string
	DestZone     string // reference-account label, e.g. "us-east-1a"
	MinMs        float64
	MedianMs     float64
}

// IntraCloudRTTs reproduces Table 11: a micro instance in one zone
// probes instances of each type in each zone, 10 pings each.
//
// Instance launches mutate the cloud's address allocators, so they all
// happen up front in the original order; only the pure probe sampling
// fans out over opt.Par, each (instance type, zone) pair on its own
// seed-derived stream, so results match at every worker count. Under
// opt.Chaos, region-scoped loss eats individual pings (a pair losing
// all ten drops out of the table), brownouts inflate every sample, and
// per-pair accounting lands in opt.Completeness under stage
// "wanperf/rtt". The fault phase is the pair's index over the
// benchmark, and probe values draw before the loss verdict, so
// surviving samples equal the fault-free run's.
func IntraCloudRTTs(c *cloud.Cloud, region string, opt Options) []RTTRow {
	seed, eng, comp := opt.Seed, opt.Chaos, opt.Completeness
	acct := c.NewAccount("rtt-bench")
	labels := acct.ZoneLabels(region)
	src := acct.Launch(region, labels[0], "t1.micro")
	type pair struct {
		itype, label string
		dst          *cloud.Instance
	}
	var pairs []pair
	for _, itype := range cloud.InstanceTypes {
		for _, label := range labels {
			pairs = append(pairs, pair{itype, label, acct.Launch(region, label, itype)})
		}
	}
	type rowResult struct {
		row RTTRow
		ok  bool
	}
	rows, err := parallel.Map(opt.Par, pairs, func(pi int, p pair) (rowResult, error) {
		rng := xrand.SplitSeeded(seed, "wanperf/rtt/"+p.itype+"/"+p.label)
		phase := float64(pi) / float64(len(pairs))
		extraMs := eng.RegionExtraMs(region, phase)
		var samples []float64
		var cc telemetry.Counts
		for i := 0; i < 10; i++ {
			v := float64(c.ProbeRTT(rng, src, p.dst))/1e6 + extraMs
			cc.Attempted++
			if eng.ProbeLost(region, fmt.Sprintf("%s/%s/%d", p.itype, p.label, i), phase) {
				cc.Abandoned++
				continue
			}
			cc.Succeeded++
			samples = append(samples, v)
		}
		comp.Merge("wanperf/rtt", p.itype+"/"+p.label, cc)
		if len(samples) == 0 {
			return rowResult{}, nil // every ping lost: no row
		}
		return rowResult{
			row: RTTRow{
				InstanceType: p.itype,
				DestZone:     p.label,
				MinMs:        stats.Min(samples),
				MedianMs:     stats.Median(samples),
			},
			ok: true,
		}, nil
	})
	if err != nil {
		panic(err) // probes cannot fail; only re-raised panics arrive here
	}
	out := make([]RTTRow, 0, len(rows))
	for _, r := range rows {
		if r.ok {
			out = append(out, r.row)
		}
	}
	return out
}

// --- Table 16: downstream-ISP diversity -------------------------------

// ISPRow is one region's downstream-ISP counts per zone.
type ISPRow struct {
	Region   string
	PerZone  []int   // observed distinct downstream ASes per zone
	TopShare float64 // largest single-ISP route share in zone 0
}

// ISPDiversity runs the paper's §5.2 experiment: instances in every
// zone traceroute to every client; the first non-cloud AS is the
// downstream ISP. Counts are observed lower bounds, like the paper's.
//
// The (region, zone) traceroute sweeps fan out over opt.Par; each pair
// draws from its own seed-derived stream and results fold back in
// sorted-region order, so the table is identical at every worker
// count. Under opt.Chaos, chaos-dark clients contribute no traceroutes
// (phase = the pair's index over the sweep), so observed ISP counts
// are lower bounds of the fault-free run's, and per-zone accounting
// lands in opt.Completeness under stage "wanperf/isp".
func ISPDiversity(m *wan.Model, zoneCounts map[string]int, opt Options) []ISPRow {
	seed, eng, comp := opt.Seed, opt.Chaos, opt.Completeness
	regions := make([]string, 0, len(zoneCounts))
	for r := range zoneCounts {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	type zoneKey struct {
		region string
		zone   int
	}
	var pairs []zoneKey
	for _, region := range regions {
		for z := 0; z < zoneCounts[region]; z++ {
			pairs = append(pairs, zoneKey{region, z})
		}
	}
	type zoneStat struct {
		nISPs    int
		topShare float64 // meaningful for zone 0 only
	}
	zstats, err := parallel.Map(opt.Par, pairs, func(pi int, p zoneKey) (zoneStat, error) {
		rng := xrand.SplitSeeded(seed, fmt.Sprintf("wanperf/isp/%s/%d", p.region, p.zone))
		phase := float64(pi) / float64(len(pairs))
		seen := map[int]bool{}
		ispRoutes := map[int]int{}
		total := 0
		var cc telemetry.Counts
		for _, client := range m.Clients {
			// Draw the traceroute first so surviving clients' routes
			// match the fault-free run's streams.
			hops := m.Traceroute(client, p.region, p.zone, rng)
			cc.Attempted++
			if eng.VantageOut(client.Name, phase) {
				cc.Abandoned++
				continue
			}
			cc.Succeeded++
			if asn, ok := wan.FirstDownstream(hops); ok {
				seen[asn] = true
				ispRoutes[asn]++
				total++
			}
		}
		comp.Merge("wanperf/isp", fmt.Sprintf("%s/%d", p.region, p.zone), cc)
		st := zoneStat{nISPs: len(seen)}
		if p.zone == 0 && total > 0 {
			max := 0
			for _, n := range ispRoutes {
				if n > max {
					max = n
				}
			}
			st.topShare = float64(max) / float64(total)
		}
		return st, nil
	})
	if err != nil {
		panic(err) // traceroutes cannot fail; only re-raised panics arrive here
	}
	var rows []ISPRow
	i := 0
	for _, region := range regions {
		row := ISPRow{Region: region}
		for z := 0; z < zoneCounts[region]; z++ {
			row.PerZone = append(row.PerZone, zstats[i].nISPs)
			if z == 0 {
				row.TopShare = zstats[i].topShare
			}
			i++
		}
		rows = append(rows, row)
	}
	return rows
}

// Outages wraps the wan outage simulation using the latency-optimal
// region ordering.
func (c *Campaign) Outages(maxK, trials int) wan.OutageResult {
	best := c.OptimalK(wan.MetricLatency, maxK)
	order := make([]string, 0, maxK)
	seen := map[string]bool{}
	for _, res := range best {
		for _, r := range res.Regions {
			if !seen[r] {
				seen[r] = true
				order = append(order, r)
			}
		}
	}
	return c.Model.SimulateOutages(order, maxK, trials, c.Seed)
}
