package wanperf

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudscope/internal/chaos"
	"cloudscope/internal/cloud"
	"cloudscope/internal/parallel"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/wan"
)

// Failure injection for §5's WAN benchmarks: regional brownouts and
// vantage outages shrink what gets measured, never what a measurement
// says. Surviving rows are byte-identical to the fault-free run's, and
// Completeness reports the holes.

func renderRTTRows(rows []RTTRow) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s %s %.6f %.6f\n", r.InstanceType, r.DestZone, r.MinMs, r.MedianMs)
	}
	return b.String()
}

// TestRegionalBrownoutIntraCloudRTTs: loss eats pairs out of Table 11,
// and what survives must not be perturbed — an injected fault may hide
// a measurement, never skew one, unless the brownout explicitly
// inflates it.
func TestRegionalBrownoutIntraCloudRTTs(t *testing.T) {
	baseline := IntraCloudRTTs(cloud.NewEC2(41), "ec2.us-east-1", Options{Seed: 5})

	sc, err := chaos.Parse("loss,p=0.9,region=us-east,window=0.1-0.9")
	if err != nil {
		t.Fatal(err)
	}
	comp := telemetry.NewCompleteness()
	faulted := IntraCloudRTTs(cloud.NewEC2(41), "ec2.us-east-1", Options{Seed: 5, Par: parallel.Options{Workers: 2}, Chaos: chaos.New(sc, 13), Completeness: comp})

	if len(faulted) >= len(baseline) {
		t.Fatalf("90%% probe loss dropped no rows: %d vs %d", len(faulted), len(baseline))
	}
	if len(faulted) == 0 {
		t.Fatal("benchmark collapsed under partial loss")
	}
	// Every surviving row matches the fault-free run exactly: probe
	// values draw before the loss verdict... except rows that lost some
	// (not all) pings, whose min/median pool shrank. Check subset on
	// the (type, zone) key, and that at least the fully-surviving rows
	// are byte-equal.
	base := map[string]RTTRow{}
	for _, r := range baseline {
		base[r.InstanceType+"|"+r.DestZone] = r
	}
	exact := 0
	for _, r := range faulted {
		br, ok := base[r.InstanceType+"|"+r.DestZone]
		if !ok {
			t.Fatalf("phantom row %s/%s under loss", r.InstanceType, r.DestZone)
		}
		if r == br {
			exact++
		}
		// A lossy pool can only raise the observed minimum.
		if r.MinMs < br.MinMs {
			t.Fatalf("loss lowered min RTT for %s/%s: %.3f < %.3f", r.InstanceType, r.DestZone, r.MinMs, br.MinMs)
		}
	}
	if exact == 0 {
		t.Fatal("no surviving row is byte-equal to baseline")
	}
	st, ok := comp.Stage("wanperf/rtt")
	if !ok {
		t.Fatal("no wanperf/rtt stage recorded")
	}
	if st.Abandoned == 0 {
		t.Fatal("probe loss recorded no abandoned pings")
	}
	if st.Attempted != st.Succeeded+st.Abandoned {
		t.Fatalf("accounting does not add up: %+v", st)
	}
}

// TestVantageOutageMatrix: clients that go dark mid-campaign lose
// rounds from their (client, region) means; untouched clients keep
// byte-identical cells.
func TestVantageOutageMatrix(t *testing.T) {
	regions := []string{"ec2.us-east-1", "ec2.eu-west-1"}
	newCampaign := func() *Campaign {
		c := NewCampaign(3, 12, regions)
		c.Rounds = 48
		c.Interval = 15 * time.Minute
		return c
	}
	base := newCampaign()
	baseCells := base.Matrix(wan.MetricLatency, regions, 12)

	sc, err := chaos.Parse("vantage-down,frac=0.4,window=0.2-0.8")
	if err != nil {
		t.Fatal(err)
	}
	fc := newCampaign()
	fc.Chaos = chaos.New(sc, 29)
	fc.Completeness = telemetry.NewCompleteness()
	cells := fc.Matrix(wan.MetricLatency, regions, 12)

	if len(cells) != len(baseCells) {
		t.Fatalf("cell count changed: %d vs %d", len(cells), len(baseCells))
	}
	degraded, identical := 0, 0
	for i, c := range cells {
		bc := baseCells[i]
		if c.Client != bc.Client || c.Region != bc.Region {
			t.Fatalf("cell order changed at %d: %s/%s vs %s/%s", i, c.Client, c.Region, bc.Client, bc.Region)
		}
		switch {
		case c.Samples < bc.Samples:
			degraded++
		case c == bc:
			identical++
		default:
			t.Fatalf("cell %s/%s changed without losing samples: %+v vs %+v", c.Client, c.Region, c, bc)
		}
	}
	if degraded == 0 {
		t.Fatal("outage degraded no cells")
	}
	if identical == 0 {
		t.Fatal("no client escaped the outage untouched")
	}
	if !fc.Completeness.Degraded() {
		t.Fatal("completeness does not report degradation")
	}
}

// TestWanperfChaosWorkerInvariant: the faulted benchmarks are
// byte-identical at every worker count, completeness included.
func TestWanperfChaosWorkerInvariant(t *testing.T) {
	sc, err := chaos.Parse("loss,p=0.25,region=us-east,window=0.1-0.9;vantage-down,frac=0.3,window=0.2-0.8;brownout,region=us-east,add=30ms,window=0.3-0.7")
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"ec2.us-east-1", "ec2.eu-west-1"}
	run := func(workers int) (string, string) {
		eng := chaos.New(sc, 19)
		comp := telemetry.NewCompleteness()
		camp := NewCampaign(3, 10, regions)
		camp.Rounds = 24
		camp.Par = parallel.Options{Workers: workers}
		camp.Chaos, camp.Completeness = eng, comp
		cells := camp.Matrix(wan.MetricLatency, regions, 10)
		rows := IntraCloudRTTs(cloud.NewEC2(43), "ec2.us-east-1", Options{Seed: 5, Par: parallel.Options{Workers: workers}, Chaos: eng, Completeness: comp})
		isp := ISPDiversity(camp.Model, map[string]int{"ec2.us-east-1": 3, "ec2.eu-west-1": 2}, Options{Seed: 7, Par: parallel.Options{Workers: workers}, Chaos: eng, Completeness: comp})
		var b strings.Builder
		for _, c := range cells {
			fmt.Fprintf(&b, "%s %s %.6f %d\n", c.Client, c.Region, c.Mean, c.Samples)
		}
		b.WriteString(renderRTTRows(rows))
		for _, r := range isp {
			fmt.Fprintf(&b, "%v\n", r)
		}
		return b.String(), comp.Report()
	}
	out1, rep1 := run(1)
	for _, workers := range []int{2, 4} {
		out, rep := run(workers)
		if out != out1 {
			t.Errorf("benchmark output differs at Workers=%d", workers)
		}
		if rep != rep1 {
			t.Errorf("completeness differs at Workers=%d:\n%s\nvs\n%s", workers, rep, rep1)
		}
	}
}
