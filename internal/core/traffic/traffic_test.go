package traffic

import (
	"bytes"
	"strings"
	"testing"

	"cloudscope/internal/capture"
	"cloudscope/internal/deploy"
	"cloudscope/internal/pcapio"
)

var analysis = buildAnalysis()

func buildAnalysis() *capture.Analysis {
	world := deploy.Generate(deploy.DefaultConfig().Scaled(1000))
	cfg := capture.DefaultConfig()
	cfg.Flows = 3000
	var buf bytes.Buffer
	g := capture.NewGenerator(cfg, world)
	if _, err := g.Generate(pcapio.NewWriter(&buf, cfg.Snaplen)); err != nil {
		panic(err)
	}
	a, err := capture.Analyze(&buf, world.Ranges)
	if err != nil {
		panic(err)
	}
	return a
}

func TestTable1(t *testing.T) {
	s := Table1(analysis).String()
	for _, want := range []string{"EC2", "Azure", "Total", "100.00"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2(t *testing.T) {
	s := Table2(analysis).String()
	for _, want := range []string{"HTTP (TCP)", "HTTPS (TCP)", "DNS (UDP)", "ICMP"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, s)
		}
	}
}

func TestTable5(t *testing.T) {
	s := Table5(analysis, 15).String()
	if !strings.Contains(s, "dropbox.com") {
		t.Fatalf("Table 5 missing dropbox:\n%s", s)
	}
	if !strings.Contains(s, "atdmt.com") && !strings.Contains(s, "msn.com") {
		t.Fatalf("Table 5 missing Azure leaders:\n%s", s)
	}
}

func TestTable6(t *testing.T) {
	s := Table6(analysis, 10).String()
	for _, want := range []string{"text/html", "text/plain"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 6 missing %q:\n%s", want, s)
		}
	}
}

func TestFigure3Series(t *testing.T) {
	series := Figure3(analysis)
	if len(series) != 8 {
		t.Fatalf("series = %d, want 8", len(series))
	}
	for name, pts := range series {
		if len(pts) == 0 {
			t.Fatalf("series %q empty", name)
		}
		last := pts[len(pts)-1]
		if last.Y != 1 {
			t.Fatalf("series %q CDF does not reach 1 (%.2f)", name, last.Y)
		}
	}
}
