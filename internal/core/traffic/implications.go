package traffic

import (
	"time"

	"cloudscope/internal/capture"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/stats"
)

// §3.3's implications: flow durations are heavy-tailed (some flows run
// for hours), and because cloud HTTP traffic is dominated by html and
// plain text rather than already-compressed media, WAN compression
// would pay — the paper's pointer to EndRE-style redundancy
// elimination. These analyses quantify both.

// DurationStats summarizes flow durations for one cloud and kind.
type DurationStats struct {
	Count            int
	MedianSeconds    float64
	P90Seconds       float64
	MaxSeconds       float64
	OverOneHourCount int
}

// Durations computes duration statistics ("" matches any cloud/kind).
func Durations(a *capture.Analysis, cloud ipranges.Provider, kind capture.Kind, anyKind bool) DurationStats {
	var secs []float64
	over := 0
	for _, f := range a.Flows {
		if cloud != "" && f.Cloud != cloud {
			continue
		}
		if !anyKind && f.Kind != kind {
			continue
		}
		d := f.Duration().Seconds()
		secs = append(secs, d)
		if f.Duration() > time.Hour {
			over++
		}
	}
	return DurationStats{
		Count:            len(secs),
		MedianSeconds:    stats.Median(secs),
		P90Seconds:       stats.Percentile(secs, 90),
		MaxSeconds:       stats.Max(secs),
		OverOneHourCount: over,
	}
}

// compressibility maps content types to achievable compression ratios
// (compressed/original) for gzip-class codecs: text compresses to
// ~25–30%, XML better, images/video/zip not at all.
var compressibility = map[string]float64{
	"text/html":                     0.25,
	"text/plain":                    0.30,
	"text/xml":                      0.15,
	"application/pdf":               0.85,
	"application/octet-stream":      0.90,
	"image/jpeg":                    1.0,
	"image/png":                     1.0,
	"application/x-shockwave-flash": 1.0,
	"application/zip":               1.0,
	"video/mp4":                     1.0,
}

// CompressionEstimate is the §3.3 what-if: apply per-type compression
// ratios to the observed HTTP bodies.
type CompressionEstimate struct {
	HTTPBodyBytes    int64
	CompressedBytes  int64
	SavedBytes       int64
	SavedShare       float64 // of HTTP body bytes
	TextShareOfBytes float64 // how much of HTTP is (compressible) text
}

// EstimateCompression computes the achievable WAN savings over the
// capture's HTTP bodies.
func EstimateCompression(a *capture.Analysis) CompressionEstimate {
	var est CompressionEstimate
	var textBytes int64
	for _, row := range a.ContentTypes() {
		est.HTTPBodyBytes += row.Bytes
		ratio, known := compressibility[row.Type]
		if !known {
			ratio = 0.9
		}
		est.CompressedBytes += int64(float64(row.Bytes) * ratio)
		if ratio <= 0.5 {
			textBytes += row.Bytes
		}
	}
	est.SavedBytes = est.HTTPBodyBytes - est.CompressedBytes
	est.SavedShare = stats.Frac(float64(est.SavedBytes), float64(est.HTTPBodyBytes))
	est.TextShareOfBytes = stats.Frac(float64(textBytes), float64(est.HTTPBodyBytes))
	return est
}
