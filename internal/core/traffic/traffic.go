// Package traffic renders §3.1 and §3.3's capture analyses as the
// paper's tables and figure series: per-cloud traffic shares (Table 1),
// protocol mixes (Table 2), top domains by volume (Table 5), HTTP
// content types (Table 6), and the flow-count/size CDFs of Figure 3.
package traffic

import (
	"fmt"

	"cloudscope/internal/capture"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/stats"
)

// Table1 renders per-cloud byte and flow shares.
func Table1(a *capture.Analysis) *stats.Table {
	bytesPct, flowsPct := a.CloudShare()
	t := &stats.Table{
		Title:  "Table 1: traffic share per cloud",
		Header: []string{"Cloud", "Bytes (%)", "Flows (%)"},
	}
	for _, c := range []ipranges.Provider{ipranges.EC2, ipranges.Azure} {
		t.AddRow(providerName(c), fmt.Sprintf("%.2f", bytesPct[c]), fmt.Sprintf("%.2f", flowsPct[c]))
	}
	t.AddRow("Total", "100.00", "100.00")
	return t
}

func providerName(p ipranges.Provider) string {
	if p == ipranges.Azure {
		return "Azure"
	}
	return "EC2"
}

// Table2 renders protocol shares for EC2, Azure, and overall.
func Table2(a *capture.Analysis) *stats.Table {
	t := &stats.Table{
		Title:  "Table 2: traffic share per protocol",
		Header: []string{"Protocol", "EC2 Bytes", "EC2 Flows", "Az Bytes", "Az Flows", "All Bytes", "All Flows"},
	}
	eb, ef := a.ProtocolShare(ipranges.EC2)
	ab, af := a.ProtocolShare(ipranges.Azure)
	ob, of := a.ProtocolShare("")
	for _, k := range capture.Kinds {
		t.AddRow(k.String(),
			fmt.Sprintf("%.2f", eb[k]), fmt.Sprintf("%.2f", ef[k]),
			fmt.Sprintf("%.2f", ab[k]), fmt.Sprintf("%.2f", af[k]),
			fmt.Sprintf("%.2f", ob[k]), fmt.Sprintf("%.2f", of[k]))
	}
	return t
}

// Table5 renders the top-n domains by HTTP(S) volume per cloud.
func Table5(a *capture.Analysis, n int) *stats.Table {
	t := &stats.Table{
		Title:  fmt.Sprintf("Table 5: top %d domains by HTTP(S) volume", n),
		Header: []string{"EC2 domain", "GB", "(%)", "Azure domain", "GB", "(%)"},
	}
	total := float64(a.HTTPTotalBytes())
	ec2 := a.TopDomains(ipranges.EC2, n)
	az := a.TopDomains(ipranges.Azure, n)
	gb := func(b int64) string { return fmt.Sprintf("%.3f", float64(b)/1e9) }
	pct := func(b int64) string { return fmt.Sprintf("%.2f", 100*float64(b)/total) }
	for i := 0; i < n; i++ {
		var cells [6]string
		if i < len(ec2) {
			cells[0], cells[1], cells[2] = ec2[i].Domain, gb(ec2[i].Bytes), pct(ec2[i].Bytes)
		}
		if i < len(az) {
			cells[3], cells[4], cells[5] = az[i].Domain, gb(az[i].Bytes), pct(az[i].Bytes)
		}
		t.AddRow(cells[0], cells[1], cells[2], cells[3], cells[4], cells[5])
	}
	return t
}

// Table6 renders HTTP content types by byte count.
func Table6(a *capture.Analysis, n int) *stats.Table {
	t := &stats.Table{
		Title:  "Table 6: HTTP content types",
		Header: []string{"Content type", "Bytes (MB)", "(%)", "Mean (KB)", "Max (MB)"},
	}
	rows := a.ContentTypes()
	var total int64
	for _, r := range rows {
		total += r.Bytes
	}
	for i, r := range rows {
		if i >= n {
			break
		}
		t.AddRow(r.Type,
			fmt.Sprintf("%.1f", float64(r.Bytes)/1e6),
			stats.Pct(float64(r.Bytes), float64(total)),
			fmt.Sprintf("%.0f", r.Mean/1024),
			fmt.Sprintf("%.1f", float64(r.Max)/1e6))
	}
	return t
}

// Figure3 returns the four CDF series: HTTP and HTTPS flow counts per
// domain and flow sizes, per cloud.
func Figure3(a *capture.Analysis) map[string][]stats.Point {
	out := map[string][]stats.Point{}
	for _, cloud := range []ipranges.Provider{ipranges.EC2, ipranges.Azure} {
		for _, kind := range []capture.Kind{capture.KindHTTP, capture.KindHTTPS} {
			perDomain, sizes := a.FlowStats(cloud, kind)
			name := fmt.Sprintf("%s %s", providerName(cloud), kind)
			out["flows-per-domain: "+name] = stats.NewCDF(perDomain).Points(40)
			out["flow-size: "+name] = stats.NewCDF(sizes).Points(40)
		}
	}
	return out
}
