package traffic

import (
	"testing"

	"cloudscope/internal/capture"
	"cloudscope/internal/ipranges"
)

func TestDurations(t *testing.T) {
	all := Durations(analysis, "", 0, true)
	if all.Count < 1000 {
		t.Fatalf("count = %d", all.Count)
	}
	if all.MedianSeconds <= 0 || all.P90Seconds < all.MedianSeconds || all.MaxSeconds < all.P90Seconds {
		t.Fatalf("ordering broken: %+v", all)
	}
	// Heavy tail: some flows run over an hour; most are short.
	if all.MedianSeconds > 60 {
		t.Fatalf("median %.1fs implausibly long", all.MedianSeconds)
	}
	https := Durations(analysis, ipranges.EC2, capture.KindHTTPS, false)
	http := Durations(analysis, ipranges.EC2, capture.KindHTTP, false)
	if https.Count == 0 || http.Count == 0 {
		t.Fatal("missing kinds")
	}
	// §3.3: HTTPS flows last longer than HTTP flows.
	if https.MedianSeconds <= http.MedianSeconds {
		t.Fatalf("HTTPS median %.2fs <= HTTP median %.2fs", https.MedianSeconds, http.MedianSeconds)
	}
}

func TestCompressionEstimate(t *testing.T) {
	est := EstimateCompression(analysis)
	if est.HTTPBodyBytes <= 0 {
		t.Fatal("no HTTP bytes")
	}
	if est.SavedBytes <= 0 || est.SavedBytes >= est.HTTPBodyBytes {
		t.Fatalf("savings implausible: %+v", est)
	}
	// Paper: ~half of HTTP content is (compressible) text, so savings
	// should be substantial — a third-ish of body bytes.
	if est.SavedShare < 0.15 || est.SavedShare > 0.60 {
		t.Fatalf("saved share %.2f", est.SavedShare)
	}
	if est.TextShareOfBytes < 0.25 || est.TextShareOfBytes > 0.70 {
		t.Fatalf("text share %.2f, want ~0.5", est.TextShareOfBytes)
	}
}
