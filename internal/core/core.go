// Package core's subpackages implement the paper's contribution — the
// measurement and analysis pipeline of He et al., IMC 2013 — against
// the simulated substrates:
//
//	dataset   §2.1  the Alexa-subdomains discovery pipeline
//	classify  §3.2  provider breakdowns and rank analyses
//	traffic   §3.1, §3.3  border-capture tables and figures
//	patterns  §4.1  front-end deployment-pattern heuristics
//	regions   §4.2  region mapping and customer-country analysis
//	zones     §4.3  availability-zone cartography
//	wanperf   §5    wide-area performance and fault tolerance
//	backend   §2 (future work)  the back-end placement extension
//
// Every analysis consumes only measurement-visible data (DNS messages,
// published IP ranges, packets, probes); ground truth appears solely in
// tests and the explicitly ground-truth-side backend extension.
package core
