// Package tlswire frames the TLS 1.0/1.2 records and handshake messages
// the synthetic capture needs: a ClientHello carrying an SNI extension
// and a Certificate message carrying a minimal DER certificate whose
// subject CN names the server. The capture analyzer extracts SNI and CN
// the way the paper used Bro: TLS hides HTTP hostnames, so certificate
// common names stand in for them.
//
// No cryptography is involved — the capture never completes a real
// handshake; it records the cleartext handshake flights real captures
// expose.
package tlswire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cloudscope/internal/der"
)

// Record content types.
const (
	RecordHandshake       = 22
	RecordApplicationData = 23
)

// Handshake message types.
const (
	HandshakeClientHello = 1
	HandshakeServerHello = 2
	HandshakeCertificate = 11
)

// VersionTLS12 is the record version used throughout.
const VersionTLS12 = 0x0303

// Errors.
var (
	ErrTruncated = errors.New("tlswire: truncated")
	ErrBadRecord = errors.New("tlswire: malformed record")
)

// record frames a payload as one TLS record.
func record(contentType byte, payload []byte) []byte {
	out := make([]byte, 5+len(payload))
	out[0] = contentType
	binary.BigEndian.PutUint16(out[1:3], VersionTLS12)
	binary.BigEndian.PutUint16(out[3:5], uint16(len(payload)))
	copy(out[5:], payload)
	return out
}

// handshake frames a handshake message body.
func handshake(msgType byte, body []byte) []byte {
	out := make([]byte, 4+len(body))
	out[0] = msgType
	out[1] = byte(len(body) >> 16)
	out[2] = byte(len(body) >> 8)
	out[3] = byte(len(body))
	copy(out[4:], body)
	return out
}

// ClientHello builds a handshake record containing a ClientHello with a
// server_name extension for sni.
func ClientHello(sni string) []byte {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, VersionTLS12)
	body = append(body, make([]byte, 32)...) // random
	body = append(body, 0)                   // session id length
	body = binary.BigEndian.AppendUint16(body, 2)
	body = binary.BigEndian.AppendUint16(body, 0x002f) // one cipher suite
	body = append(body, 1, 0)                          // compression: null

	// server_name extension (type 0).
	name := []byte(sni)
	var ext []byte
	ext = binary.BigEndian.AppendUint16(ext, 0) // extension type
	inner := make([]byte, 0, len(name)+5)
	inner = binary.BigEndian.AppendUint16(inner, uint16(len(name)+3)) // server_name_list length
	inner = append(inner, 0)                                          // name type: host_name
	inner = binary.BigEndian.AppendUint16(inner, uint16(len(name)))
	inner = append(inner, name...)
	ext = binary.BigEndian.AppendUint16(ext, uint16(len(inner)))
	ext = append(ext, inner...)

	body = binary.BigEndian.AppendUint16(body, uint16(len(ext)))
	body = append(body, ext...)
	return record(RecordHandshake, handshake(HandshakeClientHello, body))
}

// ServerHello builds a minimal ServerHello record.
func ServerHello() []byte {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, VersionTLS12)
	body = append(body, make([]byte, 32)...) // random
	body = append(body, 0)                   // session id length
	body = binary.BigEndian.AppendUint16(body, 0x002f)
	body = append(body, 0) // compression
	return record(RecordHandshake, handshake(HandshakeServerHello, body))
}

// Certificate builds a Certificate record whose single certificate has
// subject CN = commonName.
func Certificate(commonName string) []byte {
	cert := buildCert(commonName)
	// certificate_list: 3-byte total length, then 3-byte per-cert length.
	body := make([]byte, 0, len(cert)+6)
	total := len(cert) + 3
	body = append(body, byte(total>>16), byte(total>>8), byte(total))
	body = append(body, byte(len(cert)>>16), byte(len(cert)>>8), byte(len(cert)))
	body = append(body, cert...)
	return record(RecordHandshake, handshake(HandshakeCertificate, body))
}

// buildCert produces a compact X.509-shaped DER structure: a SEQUENCE
// holding a serial and a subject Name with one CN RDN.
func buildCert(cn string) []byte {
	subject := der.Sequence(
		der.Set(der.Sequence(
			der.Encode(der.TagOID, der.OIDCommonName),
			der.PrintableString(cn),
		)),
	)
	return der.Sequence(
		der.Integer(0x01beef),
		subject,
	)
}

// ApplicationData builds one opaque application-data record header for
// length bytes of ciphertext; payload bytes are zeros (truncated in
// snap captures anyway).
func ApplicationData(length int) []byte {
	if length > 16384 {
		length = 16384
	}
	return record(RecordApplicationData, make([]byte, length))
}

// ParseRecord splits one TLS record off data.
func ParseRecord(data []byte) (contentType byte, payload []byte, rest []byte, err error) {
	if len(data) < 5 {
		return 0, nil, nil, ErrTruncated
	}
	contentType = data[0]
	n := int(binary.BigEndian.Uint16(data[3:5]))
	if len(data) < 5+n {
		// Snap truncation: return what exists.
		return contentType, data[5:], nil, nil
	}
	return contentType, data[5 : 5+n], data[5+n:], nil
}

// SNI extracts the server name from a ClientHello record at the start
// of data.
func SNI(data []byte) (string, bool) {
	ct, payload, _, err := ParseRecord(data)
	if err != nil || ct != RecordHandshake || len(payload) < 4 || payload[0] != HandshakeClientHello {
		return "", false
	}
	body := payload[4:]
	// Skip version(2) random(32) then session id, ciphers, compression.
	if len(body) < 35 {
		return "", false
	}
	p := 34
	p += 1 + int(body[p]) // session id
	if len(body) < p+2 {
		return "", false
	}
	p += 2 + int(binary.BigEndian.Uint16(body[p:])) // cipher suites
	if len(body) < p+1 {
		return "", false
	}
	p += 1 + int(body[p]) // compression methods
	if len(body) < p+2 {
		return "", false
	}
	extLen := int(binary.BigEndian.Uint16(body[p:]))
	p += 2
	if len(body) < p+extLen {
		return "", false
	}
	exts := body[p : p+extLen]
	for len(exts) >= 4 {
		extType := binary.BigEndian.Uint16(exts[0:2])
		n := int(binary.BigEndian.Uint16(exts[2:4]))
		if len(exts) < 4+n {
			return "", false
		}
		if extType == 0 {
			inner := exts[4 : 4+n]
			if len(inner) < 5 {
				return "", false
			}
			nameLen := int(binary.BigEndian.Uint16(inner[3:5]))
			if len(inner) < 5+nameLen {
				return "", false
			}
			return string(inner[5 : 5+nameLen]), true
		}
		exts = exts[4+n:]
	}
	return "", false
}

// CertificateCN extracts the subject CN from a Certificate record at
// the start of data (tolerating snap truncation of later bytes).
func CertificateCN(data []byte) (string, bool) {
	ct, payload, _, err := ParseRecord(data)
	if err != nil || ct != RecordHandshake || len(payload) < 4 || payload[0] != HandshakeCertificate {
		return "", false
	}
	body := payload[4:]
	if len(body) < 6 {
		return "", false
	}
	certLen := int(body[3])<<16 | int(body[4])<<8 | int(body[5])
	if len(body) < 6+certLen {
		certLen = len(body) - 6
	}
	cert := body[6 : 6+certLen]
	tlv, _, err := der.Parse(cert)
	if err != nil || tlv.Tag != der.TagSequence {
		return "", false
	}
	return der.FindString(tlv.Value, der.OIDCommonName)
}

// String helpers for debugging traces.
func RecordName(contentType byte) string {
	switch contentType {
	case RecordHandshake:
		return "handshake"
	case RecordApplicationData:
		return "application-data"
	}
	return fmt.Sprintf("type%d", contentType)
}
