package tlswire

import (
	"testing"
)

func TestSNIRoundTrip(t *testing.T) {
	for _, name := range []string{"dl.dropbox.com", "a.b.c.example.org", "x.io"} {
		rec := ClientHello(name)
		got, ok := SNI(rec)
		if !ok || got != name {
			t.Fatalf("SNI = %q ok=%v, want %q", got, ok, name)
		}
	}
}

func TestCertificateCNRoundTrip(t *testing.T) {
	for _, cn := range []string{"*.dropbox.com", "www.netflix.com"} {
		rec := Certificate(cn)
		got, ok := CertificateCN(rec)
		if !ok || got != cn {
			t.Fatalf("CN = %q ok=%v, want %q", got, ok, cn)
		}
	}
}

func TestServerHelloParses(t *testing.T) {
	ct, payload, rest, err := ParseRecord(ServerHello())
	if err != nil || ct != RecordHandshake || len(rest) != 0 {
		t.Fatalf("ct=%d err=%v", ct, err)
	}
	if payload[0] != HandshakeServerHello {
		t.Fatalf("msg type = %d", payload[0])
	}
}

func TestSNIRejectsOtherRecords(t *testing.T) {
	if _, ok := SNI(ServerHello()); ok {
		t.Fatal("SNI from ServerHello")
	}
	if _, ok := SNI(Certificate("x")); ok {
		t.Fatal("SNI from Certificate")
	}
	if _, ok := SNI([]byte("GET / HTTP/1.1\r\n")); ok {
		t.Fatal("SNI from HTTP")
	}
	if _, ok := SNI(nil); ok {
		t.Fatal("SNI from nil")
	}
}

func TestCNRejectsOtherRecords(t *testing.T) {
	if _, ok := CertificateCN(ClientHello("x")); ok {
		t.Fatal("CN from ClientHello")
	}
	if _, ok := CertificateCN([]byte{1, 2, 3}); ok {
		t.Fatal("CN from junk")
	}
}

func TestApplicationData(t *testing.T) {
	rec := ApplicationData(1000)
	ct, payload, rest, err := ParseRecord(rec)
	if err != nil || ct != RecordApplicationData || len(payload) != 1000 || len(rest) != 0 {
		t.Fatalf("ct=%d len=%d err=%v", ct, len(payload), err)
	}
	// Length capped at TLS max.
	rec = ApplicationData(1 << 20)
	_, payload, _, _ = ParseRecord(rec)
	if len(payload) != 16384 {
		t.Fatalf("cap failed: %d", len(payload))
	}
}

func TestSnapTruncatedRecord(t *testing.T) {
	rec := ClientHello("very-long-name.example.com")
	// Cut the record body short of its declared length.
	cut := rec[:len(rec)-10]
	ct, payload, rest, err := ParseRecord(cut)
	if err != nil || ct != RecordHandshake || rest != nil {
		t.Fatalf("truncated parse: ct=%d err=%v", ct, err)
	}
	if len(payload) != len(cut)-5 {
		t.Fatalf("payload = %d", len(payload))
	}
	// SNI extraction from a record truncated before the extension fails
	// cleanly rather than panicking.
	if _, ok := SNI(rec[:40]); ok {
		t.Fatal("SNI from 40-byte prefix")
	}
}

func TestMultipleRecordsSequential(t *testing.T) {
	stream := append(append(ServerHello(), Certificate("svc.example.com")...), ApplicationData(64)...)
	var types []byte
	for len(stream) > 0 {
		ct, _, rest, err := ParseRecord(stream)
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, ct)
		stream = rest
	}
	if len(types) != 3 || types[0] != RecordHandshake || types[2] != RecordApplicationData {
		t.Fatalf("types = %v", types)
	}
	// CN still extractable from the second record in the stream.
	_, _, rest, _ := ParseRecord(append(ServerHello(), Certificate("svc.example.com")...))
	cn, ok := CertificateCN(rest)
	if !ok || cn != "svc.example.com" {
		t.Fatalf("cn=%q ok=%v", cn, ok)
	}
}

func TestRecordName(t *testing.T) {
	if RecordName(22) != "handshake" || RecordName(23) != "application-data" || RecordName(9) != "type9" {
		t.Fatal("RecordName wrong")
	}
}
