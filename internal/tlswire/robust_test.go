package tlswire

import (
	"testing"
	"testing/quick"
)

func TestParsersNeverPanicOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		_, _, _, _ = ParseRecord(data)
		_, _ = SNI(data)
		_, _ = CertificateCN(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParsersNeverPanicOnMutatedRecords(t *testing.T) {
	base := append(ClientHello("dl.dropbox.com"), Certificate("*.dropbox.com")...)
	f := func(pos uint16, val byte, cut uint16) bool {
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] = val
		data = data[:len(data)-int(cut)%len(data)]
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic pos=%d val=%d cut=%d: %v", pos, val, cut, r)
			}
		}()
		_, _ = SNI(data)
		_, _ = CertificateCN(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
