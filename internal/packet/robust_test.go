package packet

import (
	"testing"
	"testing/quick"
)

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnMutatedFrames(t *testing.T) {
	tcp := &TCP{SrcPort: 40000, DstPort: 443, Seq: 1, Flags: FlagACK | FlagPSH}
	seg := tcp.Serialize(src, dst, []byte("GET / HTTP/1.1\r\nHost: x.com\r\n\r\n"))
	ip := &IPv4{Protocol: ProtoTCP, Src: src, Dst: dst}
	base := (&Ethernet{EtherType: EtherTypeIPv4}).Serialize(ip.Serialize(seg))
	f := func(pos uint16, val byte, cut uint16) bool {
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] = val
		data = data[:len(data)-int(cut)%len(data)]
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic pos=%d val=%d cut=%d: %v", pos, val, cut, r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
