package packet

import "testing"

func benchFrame() []byte {
	tcp := &TCP{SrcPort: 43210, DstPort: 443, Seq: 1000, Ack: 2000, Flags: FlagACK | FlagPSH}
	seg := tcp.Serialize(src, dst, []byte("GET /index.html HTTP/1.1\r\nHost: www.example.com\r\n\r\n"))
	ip := &IPv4{Protocol: ProtoTCP, Src: src, Dst: dst}
	return (&Ethernet{EtherType: EtherTypeIPv4}).Serialize(ip.Serialize(seg))
}

func BenchmarkDecode(b *testing.B) {
	frame := benchFrame()
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeTCP(b *testing.B) {
	payload := []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tcp := &TCP{SrcPort: 1, DstPort: 80, Seq: uint32(i)}
		seg := tcp.Serialize(src, dst, payload)
		ip := &IPv4{Protocol: ProtoTCP, Src: src, Dst: dst}
		frame := (&Ethernet{EtherType: EtherTypeIPv4}).Serialize(ip.Serialize(seg))
		b.SetBytes(int64(len(frame)))
	}
}
