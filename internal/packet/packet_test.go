package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"cloudscope/internal/netaddr"
)

var (
	src = netaddr.MustParseIP("128.105.1.1")
	dst = netaddr.MustParseIP("54.230.0.1")
)

func buildTCP(t *testing.T, payload []byte) []byte {
	t.Helper()
	tcp := &TCP{SrcPort: 43210, DstPort: 443, Seq: 1000, Ack: 2000, Flags: FlagACK | FlagPSH}
	seg := tcp.Serialize(src, dst, payload)
	ip := &IPv4{Protocol: ProtoTCP, Src: src, Dst: dst, ID: 7}
	dgram := ip.Serialize(seg)
	eth := &Ethernet{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{7, 8, 9, 10, 11, 12}, EtherType: EtherTypeIPv4}
	return eth.Serialize(dgram)
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	frame := buildTCP(t, payload)
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.IPv4.Src != src || p.IPv4.Dst != dst || p.IPv4.Protocol != ProtoTCP {
		t.Fatalf("ip: %+v", p.IPv4)
	}
	if p.TCP.SrcPort != 43210 || p.TCP.DstPort != 443 || p.TCP.Seq != 1000 {
		t.Fatalf("tcp: %+v", p.TCP)
	}
	if p.TCP.Flags != FlagACK|FlagPSH {
		t.Fatalf("flags: %x", p.TCP.Flags)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload: %q", p.Payload)
	}
}

func TestTCPChecksumValid(t *testing.T) {
	payload := []byte("hello world")
	tcp := &TCP{SrcPort: 1, DstPort: 2, Seq: 3}
	seg := tcp.Serialize(src, dst, payload)
	if !VerifyTCPChecksum(src, dst, seg) {
		t.Fatal("serialized segment fails checksum")
	}
	seg[25] ^= 0xff // corrupt payload
	if VerifyTCPChecksum(src, dst, seg) {
		t.Fatal("corrupted segment passes checksum")
	}
}

func TestIPv4ChecksumVerified(t *testing.T) {
	frame := buildTCP(t, []byte("x"))
	// Corrupt the IP TTL without fixing the checksum.
	frame[ethernetLen+8] ^= 0xff
	if _, err := Decode(frame); err != ErrChecksum {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	udp := &UDP{SrcPort: 5353, DstPort: 53}
	dg := udp.Serialize(src, dst, payload)
	ip := &IPv4{Protocol: ProtoUDP, Src: src, Dst: dst}
	eth := &Ethernet{EtherType: EtherTypeIPv4}
	frame := eth.Serialize(ip.Serialize(dg))
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.UDP.SrcPort != 5353 || p.UDP.DstPort != 53 || int(p.UDP.Length) != 8+len(payload) {
		t.Fatalf("udp: %+v", p.UDP)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload: %x", p.Payload)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	ic := &ICMP{Type: 8, Code: 0}
	ip := &IPv4{Protocol: ProtoICMP, Src: src, Dst: dst}
	eth := &Ethernet{EtherType: EtherTypeIPv4}
	frame := eth.Serialize(ip.Serialize(ic.Serialize([]byte("ping"))))
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.ICMP.Type != 8 || string(p.Payload) != "ping" {
		t.Fatalf("icmp: %+v payload %q", p.ICMP, p.Payload)
	}
}

func TestSnapTruncatedTotalLength(t *testing.T) {
	// A generator can pre-set TotalLength larger than the captured
	// payload — decode must still work, clipping to what exists.
	tcp := &TCP{SrcPort: 1, DstPort: 80, Seq: 9}
	seg := tcp.Serialize(src, dst, nil)
	ip := &IPv4{Protocol: ProtoTCP, Src: src, Dst: dst, TotalLength: 1500}
	frame := (&Ethernet{EtherType: EtherTypeIPv4}).Serialize(ip.Serialize(seg))
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.IPv4.TotalLength != 1500 {
		t.Fatalf("TotalLength = %d", p.IPv4.TotalLength)
	}
	if len(p.Payload) != 0 {
		t.Fatalf("payload = %d bytes", len(p.Payload))
	}
}

func TestDecodeErrors(t *testing.T) {
	frame := buildTCP(t, []byte("abc"))
	for _, n := range []int{0, 10, ethernetLen + 3, ethernetLen + ipv4Len + 5} {
		if _, err := Decode(frame[:n]); err == nil {
			t.Errorf("Decode of %d bytes succeeded", n)
		}
	}
	// Wrong ethertype.
	bad := append([]byte(nil), frame...)
	bad[12], bad[13] = 0x86, 0xdd // IPv6
	if _, err := Decode(bad); err == nil {
		t.Error("IPv6 frame decoded")
	}
}

func TestFlow(t *testing.T) {
	frame := buildTCP(t, nil)
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Flow()
	if f.Src != src || f.DstPort != 443 || f.Proto != ProtoTCP {
		t.Fatalf("flow: %+v", f)
	}
	r := f.Reverse()
	if r.Src != dst || r.SrcPort != 443 || r.DstPort != 43210 {
		t.Fatalf("reverse: %+v", r)
	}
	if f.Canonical() != r.Canonical() {
		t.Fatal("canonical not symmetric")
	}
}

func TestFlowCanonicalProperty(t *testing.T) {
	f := func(srcIP, dstIP uint32, sp, dp uint16) bool {
		fl := Flow{Proto: ProtoTCP, Src: netaddr.IP(srcIP), Dst: netaddr.IP(dstIP), SrcPort: sp, DstPort: dp}
		return fl.Canonical() == fl.Reverse().Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadRoundTripProperty(t *testing.T) {
	f := func(payload []byte, sp, dp uint16, seq uint32) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		tcp := &TCP{SrcPort: sp, DstPort: dp, Seq: seq, Flags: FlagACK}
		seg := tcp.Serialize(src, dst, payload)
		if !VerifyTCPChecksum(src, dst, seg) {
			return false
		}
		ip := &IPv4{Protocol: ProtoTCP, Src: src, Dst: dst}
		frame := (&Ethernet{EtherType: EtherTypeIPv4}).Serialize(ip.Serialize(seg))
		p, err := Decode(frame)
		if err != nil {
			return false
		}
		return bytes.Equal(p.Payload, payload) && p.TCP.Seq == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0, 1, 2, 3}
	if m.String() != "de:ad:00:01:02:03" {
		t.Fatalf("MAC = %s", m)
	}
}

func TestFlowString(t *testing.T) {
	f := Flow{Proto: 6, Src: src, Dst: dst, SrcPort: 1, DstPort: 2}
	want := "6 128.105.1.1:1 > 54.230.0.1:2"
	if f.String() != want {
		t.Fatalf("Flow = %q", f.String())
	}
}
