package packet

import (
	"encoding/binary"
)

// This file is the in-place frame serialization path: the zero-copy
// write half of the capture hot loop. Each Put*Frame builds a complete
// Ethernet/IPv4/transport frame directly into a caller-provided buffer
// (typically a pcapio.Block's reserved record slice), with the same
// defaulting and checksum semantics as the per-layer Serialize methods
// but no intermediate allocations. dst must be zeroed (block
// reservations are) and exactly *FrameLen(len(payload)) bytes long.

// TCPFrameLen returns the byte length of an Ethernet+IPv4+TCP frame
// carrying payloadLen application bytes.
func TCPFrameLen(payloadLen int) int { return ethernetLen + ipv4Len + tcpLen + payloadLen }

// UDPFrameLen returns the byte length of an Ethernet+IPv4+UDP frame.
func UDPFrameLen(payloadLen int) int { return ethernetLen + ipv4Len + udpLen + payloadLen }

// ICMPFrameLen returns the byte length of an Ethernet+IPv4+ICMP frame.
func ICMPFrameLen(payloadLen int) int { return ethernetLen + ipv4Len + icmpLen + payloadLen }

// putEthernet writes the link header into dst[0:14].
func putEthernet(dst []byte, e *Ethernet) {
	copy(dst[0:6], e.Dst[:])
	copy(dst[6:12], e.Src[:])
	binary.BigEndian.PutUint16(dst[12:14], e.EtherType)
}

// putIPv4 writes the network header into dst[0:20] over a payload of
// payloadLen bytes already in place after it, with Serialize's
// semantics: TotalLength keeps a larger pre-set value (snap-truncated
// frames describing the original datagram), TTL defaults to 64, and
// the header checksum is computed in place.
func putIPv4(dst []byte, ip *IPv4, payloadLen int) {
	want := uint16(ipv4Len + payloadLen)
	if ip.TotalLength < want {
		ip.TotalLength = want
	}
	dst[0] = 4<<4 | 5
	dst[1] = ip.TOS
	binary.BigEndian.PutUint16(dst[2:4], ip.TotalLength)
	binary.BigEndian.PutUint16(dst[4:6], ip.ID)
	if ip.TTL == 0 {
		ip.TTL = 64
	}
	dst[8] = ip.TTL
	dst[9] = ip.Protocol
	binary.BigEndian.PutUint32(dst[12:16], uint32(ip.Src))
	binary.BigEndian.PutUint32(dst[16:20], uint32(ip.Dst))
	ip.Checksum = checksum16(dst[:ipv4Len], 0)
	binary.BigEndian.PutUint16(dst[10:12], ip.Checksum)
}

// PutTCPFrame serializes a full TCP frame into dst, which must be
// exactly TCPFrameLen(len(payload)) zeroed bytes. The segment checksum
// uses the pseudo-header from ip.Src/ip.Dst; ip.Protocol is forced to
// TCP. Like the Serialize chain, it sets defaulted fields (TTL,
// Window) and computed fields (lengths, checksums) on ip and t.
func PutTCPFrame(dst []byte, eth *Ethernet, ip *IPv4, t *TCP, payload []byte) {
	ip.Protocol = ProtoTCP
	seg := dst[ethernetLen+ipv4Len:]
	binary.BigEndian.PutUint16(seg[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], t.DstPort)
	binary.BigEndian.PutUint32(seg[4:8], t.Seq)
	binary.BigEndian.PutUint32(seg[8:12], t.Ack)
	seg[12] = 5 << 4
	seg[13] = t.Flags
	if t.Window == 0 {
		t.Window = 65535
	}
	binary.BigEndian.PutUint16(seg[14:16], t.Window)
	copy(seg[tcpLen:], payload)
	t.Checksum = transportChecksum(ip.Src, ip.Dst, ProtoTCP, seg)
	binary.BigEndian.PutUint16(seg[16:18], t.Checksum)
	putIPv4(dst[ethernetLen:], ip, len(seg))
	putEthernet(dst, eth)
}

// PutUDPFrame serializes a full UDP frame into dst, which must be
// exactly UDPFrameLen(len(payload)) zeroed bytes.
func PutUDPFrame(dst []byte, eth *Ethernet, ip *IPv4, u *UDP, payload []byte) {
	ip.Protocol = ProtoUDP
	seg := dst[ethernetLen+ipv4Len:]
	u.Length = uint16(len(seg))
	binary.BigEndian.PutUint16(seg[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], u.DstPort)
	binary.BigEndian.PutUint16(seg[4:6], u.Length)
	copy(seg[udpLen:], payload)
	u.Checksum = transportChecksum(ip.Src, ip.Dst, ProtoUDP, seg)
	binary.BigEndian.PutUint16(seg[6:8], u.Checksum)
	putIPv4(dst[ethernetLen:], ip, len(seg))
	putEthernet(dst, eth)
}

// PutICMPFrame serializes a full ICMP frame into dst, which must be
// exactly ICMPFrameLen(len(payload)) zeroed bytes.
func PutICMPFrame(dst []byte, eth *Ethernet, ip *IPv4, ic *ICMP, payload []byte) {
	ip.Protocol = ProtoICMP
	seg := dst[ethernetLen+ipv4Len:]
	seg[0] = ic.Type
	seg[1] = ic.Code
	copy(seg[icmpLen:], payload)
	ic.Checksum = checksum16(seg, 0)
	binary.BigEndian.PutUint16(seg[2:4], ic.Checksum)
	putIPv4(dst[ethernetLen:], ip, len(seg))
	putEthernet(dst, eth)
}
