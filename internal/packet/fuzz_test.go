package packet

import (
	"bytes"
	"errors"
	"testing"

	"cloudscope/internal/netaddr"
)

// fuzzFrame builds one well-formed TCP frame to seed the corpus.
func fuzzFrame(payload []byte) []byte {
	buf := make([]byte, TCPFrameLen(len(payload)))
	eth := Ethernet{Src: MAC{0, 1, 2, 3, 4, 5}, Dst: MAC{6, 7, 8, 9, 10, 11}, EtherType: EtherTypeIPv4}
	ip := IPv4{Src: netaddr.IP(0x0a000001), Dst: netaddr.IP(0x36ed1401)}
	tcp := TCP{SrcPort: 49152, DstPort: 80, Seq: 7, Ack: 9, Flags: FlagACK | FlagPSH}
	PutTCPFrame(buf, &eth, &ip, &tcp, payload)
	return buf
}

// FuzzDecodePacket throws arbitrary bytes at the header decoder. The
// contract under attack: truncated headers, lying length fields, and
// unknown protocols must come back as errors — never a panic and never
// a Payload that extends past the frame — and the allocating Decode
// wrapper must agree with the in-place DecodeHeaders on every input.
func FuzzDecodePacket(f *testing.F) {
	valid := fuzzFrame([]byte("GET / HTTP/1.1\r\nHost: fuzz.example.com\r\n\r\n"))
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:13])             // truncated link header
	f.Add(valid[:ethernetLen+7])  // truncated IP header
	f.Add(valid[:ethernetLen+25]) // truncated TCP header
	f.Add(append([]byte{}, valid...)[:len(valid)-1])
	short := append([]byte{}, valid...)
	short[ethernetLen+2] = 0xff // absurd IP total length
	short[ethernetLen+3] = 0xff
	f.Add(short)
	proto := append([]byte{}, valid...)
	proto[ethernetLen+9] = 132 // SCTP: unknown transport
	f.Add(proto)

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		err := DecodeHeaders(&p, data)
		ok := err == nil || errors.Is(err, ErrUnknownTransport)
		if ok && len(p.Payload) > len(data) {
			t.Fatalf("payload over-read: %d bytes from a %d-byte frame", len(p.Payload), len(data))
		}
		p2, err2 := Decode(data)
		if (p2 != nil) != ok {
			t.Fatalf("Decode and DecodeHeaders disagree on %d bytes: %v vs %v", len(data), err2, err)
		}
		if !ok {
			return
		}
		if p2.Ethernet != p.Ethernet || p2.IPv4 != p.IPv4 ||
			p2.TCP != p.TCP || p2.UDP != p.UDP || p2.ICMP != p.ICMP ||
			!bytes.Equal(p2.Payload, p.Payload) {
			t.Fatal("Decode and DecodeHeaders decoded different packets")
		}
	})
}
