// Package packet implements the packet layers the border-capture
// pipeline produces and parses: Ethernet, IPv4, TCP, UDP, and ICMP,
// with correct lengths and checksums on serialization and strict
// validation on decode.
//
// The design follows gopacket's layering model in miniature: each layer
// type knows how to decode itself from bytes and serialize itself given
// a payload, and Decode walks the stack producing a Packet whose layers
// can be inspected. Five-tuple Flow values are comparable and usable as
// map keys, like gopacket's Flow/Endpoint.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cloudscope/internal/netaddr"
)

// EtherType values.
const (
	EtherTypeIPv4 uint16 = 0x0800
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
)

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrBadField  = errors.New("packet: invalid field")
	ErrChecksum  = errors.New("packet: bad checksum")
	// ErrUnknownTransport is returned by Decode for IP protocols other
	// than TCP/UDP/ICMP. The returned Packet still carries the valid
	// Ethernet and IPv4 layers (with the rest in Payload), so analyzers
	// can account for exotic traffic (IPv6-in-IPv4, GRE, ...) the way
	// Bro files it under "other".
	ErrUnknownTransport = errors.New("packet: unknown transport protocol")
)

// MAC is an Ethernet address.
type MAC [6]byte

// String returns colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is the link layer.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

const ethernetLen = 14

// Decode parses the header and returns the payload.
func (e *Ethernet) Decode(data []byte) (payload []byte, err error) {
	if len(data) < ethernetLen {
		return nil, ErrTruncated
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return data[ethernetLen:], nil
}

// Serialize prepends the header to payload.
func (e *Ethernet) Serialize(payload []byte) []byte {
	out := make([]byte, ethernetLen+len(payload))
	copy(out[0:6], e.Dst[:])
	copy(out[6:12], e.Src[:])
	binary.BigEndian.PutUint16(out[12:14], e.EtherType)
	copy(out[ethernetLen:], payload)
	return out
}

// IPv4 is the network layer (no options support; IHL is fixed at 5).
type IPv4 struct {
	TOS         uint8
	TotalLength uint16
	ID          uint16
	TTL         uint8
	Protocol    uint8
	Checksum    uint16
	Src, Dst    netaddr.IP
}

const ipv4Len = 20

// Decode parses the header, verifies the checksum, and returns the
// payload clipped to TotalLength.
func (ip *IPv4) Decode(data []byte) (payload []byte, err error) {
	if len(data) < ipv4Len {
		return nil, ErrTruncated
	}
	if data[0]>>4 != 4 {
		return nil, fmt.Errorf("%w: version %d", ErrBadField, data[0]>>4)
	}
	ihl := int(data[0]&0xf) * 4
	if ihl < ipv4Len || len(data) < ihl {
		return nil, fmt.Errorf("%w: IHL %d", ErrBadField, ihl)
	}
	if checksum16(data[:ihl], 0) != 0 {
		return nil, ErrChecksum
	}
	ip.TOS = data[1]
	ip.TotalLength = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = netaddr.IP(binary.BigEndian.Uint32(data[12:16]))
	ip.Dst = netaddr.IP(binary.BigEndian.Uint32(data[16:20]))
	end := int(ip.TotalLength)
	if end < ihl {
		return nil, fmt.Errorf("%w: total length %d < IHL", ErrBadField, end)
	}
	if end > len(data) {
		// Snap-length truncation: the header says more than was
		// captured. Return what we have.
		end = len(data)
	}
	return data[ihl:end], nil
}

// Serialize prepends the header (fixing TotalLength and Checksum) to
// payload. ip.TotalLength is set as a side effect; if it was pre-set to
// a larger value than 20+len(payload), that value is kept, which lets
// trace generators emit snap-truncated packets whose headers describe
// the original datagram size.
func (ip *IPv4) Serialize(payload []byte) []byte {
	want := uint16(ipv4Len + len(payload))
	if ip.TotalLength < want {
		ip.TotalLength = want
	}
	out := make([]byte, ipv4Len+len(payload))
	out[0] = 4<<4 | 5
	out[1] = ip.TOS
	binary.BigEndian.PutUint16(out[2:4], ip.TotalLength)
	binary.BigEndian.PutUint16(out[4:6], ip.ID)
	if ip.TTL == 0 {
		ip.TTL = 64
	}
	out[8] = ip.TTL
	out[9] = ip.Protocol
	binary.BigEndian.PutUint32(out[12:16], uint32(ip.Src))
	binary.BigEndian.PutUint32(out[16:20], uint32(ip.Dst))
	ip.Checksum = checksum16(out[:ipv4Len], 0)
	binary.BigEndian.PutUint16(out[10:12], ip.Checksum)
	copy(out[ipv4Len:], payload)
	return out
}

// TCP is the transport layer (no options; data offset fixed at 5).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
}

const tcpLen = 20

// Decode parses the header and returns the payload. The checksum is not
// verified by default because snap-truncated captures cannot carry the
// full segment; use VerifyTCPChecksum for intact packets.
func (t *TCP) Decode(data []byte) (payload []byte, err error) {
	if len(data) < tcpLen {
		return nil, ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	off := int(data[12]>>4) * 4
	if off < tcpLen {
		return nil, fmt.Errorf("%w: data offset %d", ErrBadField, off)
	}
	if off > len(data) {
		return nil, ErrTruncated
	}
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	return data[off:], nil
}

// Serialize prepends the header with a valid pseudo-header checksum.
func (t *TCP) Serialize(src, dst netaddr.IP, payload []byte) []byte {
	out := make([]byte, tcpLen+len(payload))
	binary.BigEndian.PutUint16(out[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], t.DstPort)
	binary.BigEndian.PutUint32(out[4:8], t.Seq)
	binary.BigEndian.PutUint32(out[8:12], t.Ack)
	out[12] = 5 << 4
	out[13] = t.Flags
	if t.Window == 0 {
		t.Window = 65535
	}
	binary.BigEndian.PutUint16(out[14:16], t.Window)
	copy(out[tcpLen:], payload)
	t.Checksum = transportChecksum(src, dst, ProtoTCP, out)
	binary.BigEndian.PutUint16(out[16:18], t.Checksum)
	return out
}

// UDP is the transport layer for datagrams.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

const udpLen = 8

// Decode parses the header and returns the payload.
func (u *UDP) Decode(data []byte) (payload []byte, err error) {
	if len(data) < udpLen {
		return nil, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return data[udpLen:], nil
}

// Serialize prepends the header with a valid checksum.
func (u *UDP) Serialize(src, dst netaddr.IP, payload []byte) []byte {
	out := make([]byte, udpLen+len(payload))
	u.Length = uint16(len(out))
	binary.BigEndian.PutUint16(out[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], u.DstPort)
	binary.BigEndian.PutUint16(out[4:6], u.Length)
	copy(out[udpLen:], payload)
	u.Checksum = transportChecksum(src, dst, ProtoUDP, out)
	binary.BigEndian.PutUint16(out[6:8], u.Checksum)
	return out
}

// ICMP covers echo request/reply.
type ICMP struct {
	Type, Code uint8
	Checksum   uint16
}

const icmpLen = 4

// Decode parses the header and returns the payload.
func (ic *ICMP) Decode(data []byte) (payload []byte, err error) {
	if len(data) < icmpLen {
		return nil, ErrTruncated
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	return data[icmpLen:], nil
}

// Serialize prepends the header with a valid checksum.
func (ic *ICMP) Serialize(payload []byte) []byte {
	out := make([]byte, icmpLen+len(payload))
	out[0] = ic.Type
	out[1] = ic.Code
	copy(out[icmpLen:], payload)
	ic.Checksum = checksum16(out, 0)
	binary.BigEndian.PutUint16(out[2:4], ic.Checksum)
	return out
}

// checksum16 is the Internet checksum over data with an initial sum.
func checksum16(data []byte, initial uint32) uint16 {
	sum := initial
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// transportChecksum computes the TCP/UDP checksum with the IPv4
// pseudo-header. The checksum field inside segment must be zero.
func transportChecksum(src, dst netaddr.IP, proto uint8, segment []byte) uint16 {
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:4], uint32(src))
	binary.BigEndian.PutUint32(pseudo[4:8], uint32(dst))
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	sum := uint32(0)
	for i := 0; i < 12; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(pseudo[i : i+2]))
	}
	return checksum16(segment, sum)
}

// VerifyTCPChecksum reports whether a full (untruncated) TCP segment's
// checksum is valid.
func VerifyTCPChecksum(src, dst netaddr.IP, segment []byte) bool {
	if len(segment) < tcpLen {
		return false
	}
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:4], uint32(src))
	binary.BigEndian.PutUint32(pseudo[4:8], uint32(dst))
	pseudo[9] = ProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	sum := uint32(0)
	for i := 0; i < 12; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(pseudo[i : i+2]))
	}
	return checksum16(segment, sum) == 0
}

// Packet is a decoded packet stack.
type Packet struct {
	Ethernet Ethernet
	IPv4     IPv4
	// Exactly one of the following is meaningful, per IPv4.Protocol.
	TCP     TCP
	UDP     UDP
	ICMP    ICMP
	Payload []byte
}

// Decode parses an Ethernet frame into a Packet. Non-IPv4 frames and
// unknown transports yield an error identifying what was unsupported.
func Decode(frame []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodeHeaders(p, frame); err != nil {
		if errors.Is(err, ErrUnknownTransport) {
			return p, err
		}
		return nil, err
	}
	return p, nil
}

// DecodeHeaders decodes frame's link, network, and transport headers
// into p without heap-allocating: p can live on the caller's stack or
// in a reused slot, and p.Payload is a view into frame — the lazy half
// of the decode, left for callers to parse on demand (most packets'
// application bytes are never looked at). On ErrUnknownTransport the
// Ethernet and IPv4 layers are valid and Payload carries the rest; on
// any other error p is partially filled and must not be used.
func DecodeHeaders(p *Packet, frame []byte) error {
	rest, err := p.Ethernet.Decode(frame)
	if err != nil {
		return err
	}
	if p.Ethernet.EtherType != EtherTypeIPv4 {
		return fmt.Errorf("%w: ethertype %#04x", ErrBadField, p.Ethernet.EtherType)
	}
	rest, err = p.IPv4.Decode(rest)
	if err != nil {
		return err
	}
	switch p.IPv4.Protocol {
	case ProtoTCP:
		p.Payload, err = p.TCP.Decode(rest)
	case ProtoUDP:
		p.Payload, err = p.UDP.Decode(rest)
	case ProtoICMP:
		p.Payload, err = p.ICMP.Decode(rest)
	default:
		p.Payload = rest
		return ErrUnknownTransport
	}
	return err
}

// Flow is a comparable transport five-tuple.
type Flow struct {
	Proto            uint8
	Src, Dst         netaddr.IP
	SrcPort, DstPort uint16
}

// Flow extracts the packet's five-tuple (ports zero for ICMP).
func (p *Packet) Flow() Flow {
	f := Flow{Proto: p.IPv4.Protocol, Src: p.IPv4.Src, Dst: p.IPv4.Dst}
	switch p.IPv4.Protocol {
	case ProtoTCP:
		f.SrcPort, f.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case ProtoUDP:
		f.SrcPort, f.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return f
}

// Reverse returns the opposite direction's tuple.
func (f Flow) Reverse() Flow {
	return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// Canonical returns a direction-independent key: the lexicographically
// smaller of f and f.Reverse(), so both directions of a connection map
// to one value (the symmetric-hash property gopacket's FastHash has).
func (f Flow) Canonical() Flow {
	r := f.Reverse()
	if f.Src < r.Src || (f.Src == r.Src && f.SrcPort <= r.SrcPort) {
		return f
	}
	return r
}

// String renders "proto src:port > dst:port".
func (f Flow) String() string {
	return fmt.Sprintf("%d %s:%d > %s:%d", f.Proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}
