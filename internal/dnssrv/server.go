package dnssrv

import (
	"strings"
	"sync"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/simnet"
)

// Server is an authoritative DNS server hosting one or more zones. It
// implements simnet.Handler; register it on a fabric at the server's
// public IPs to make it reachable.
type Server struct {
	mu    sync.RWMutex
	zones map[string]*Zone
}

// NewServer returns a server hosting zones.
func NewServer(zones ...*Zone) *Server {
	s := &Server{zones: make(map[string]*Zone)}
	for _, z := range zones {
		s.AddZone(z)
	}
	return s
}

// AddZone adds or replaces a zone by origin.
func (s *Server) AddZone(z *Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin] = z
}

// RemoveZone drops the zone with the given origin; unknown origins are
// a no-op. Streaming world generation uses it to detach released
// domains' zones from shared hosting servers.
func (s *Server) RemoveZone(origin string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, dnswire.CanonicalName(origin))
}

// Zone returns the hosted zone with the given origin, or nil.
func (s *Server) Zone(origin string) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.zones[dnswire.CanonicalName(origin)]
}

// findZone returns the zone with the longest origin suffix-matching name.
func (s *Server) findZone(name string) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name = dnswire.CanonicalName(name)
	var best *Zone
	for origin, z := range s.zones {
		if name == origin || strings.HasSuffix(name, "."+origin) {
			if best == nil || len(origin) > len(best.Origin) {
				best = z
			}
		}
	}
	return best
}

// ServePacket implements simnet.Handler: it parses payload as a DNS
// query and returns the packed authoritative response. Malformed
// payloads are dropped (nil), like a real server ignoring junk.
func (s *Server) ServePacket(src, dst netaddr.IP, payload []byte) []byte {
	q, err := dnswire.Unpack(payload)
	if err != nil || q.Header.Response || len(q.Questions) != 1 {
		return nil
	}
	resp := s.respond(src, q)
	buf, err := resp.Pack()
	if err != nil {
		return nil
	}
	return buf
}

func (s *Server) respond(src netaddr.IP, q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	question := q.Questions[0]
	z := s.findZone(question.Name)
	if z == nil {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}
	resp.Header.Authoritative = true
	switch question.Type {
	case dnswire.TypeAXFR:
		if !z.AllowAXFR {
			resp.Header.RCode = dnswire.RCodeRefused
			return resp
		}
		resp.Answers = z.Transfer(src)
	case dnswire.TypeSOA:
		if dnswire.CanonicalName(question.Name) == z.Origin {
			resp.Answers = []dnswire.RR{{Name: z.Origin, Type: dnswire.TypeSOA, Class: dnswire.ClassIN, TTL: 3600, SOA: z.SOA}}
			return resp
		}
		fallthrough
	default:
		answers, found := z.Lookup(src, question.Name, question.Type)
		if !found {
			resp.Header.RCode = dnswire.RCodeNXDomain
			return resp
		}
		resp.Answers = answers
	}
	return resp
}

// Registry maps zone origins to the IPs of their authoritative servers,
// playing the role of the TLD delegation tree: the resolver asks it
// "who is authoritative for the longest suffix of this name".
type Registry struct {
	mu          sync.RWMutex
	delegations map[string][]netaddr.IP
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{delegations: make(map[string][]netaddr.IP)}
}

// Delegate records that origin is served by the given name-server IPs,
// replacing any previous delegation.
func (r *Registry) Delegate(origin string, ips ...netaddr.IP) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.delegations[dnswire.CanonicalName(origin)] = append([]netaddr.IP(nil), ips...)
}

// Undelegate removes origin's delegation; unknown origins are a no-op.
func (r *Registry) Undelegate(origin string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.delegations, dnswire.CanonicalName(origin))
}

// Authoritative returns the origin and server IPs for the longest
// delegated suffix of name.
func (r *Registry) Authoritative(name string) (origin string, ips []netaddr.IP, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	name = dnswire.CanonicalName(name)
	for {
		if ips, found := r.delegations[name]; found {
			return name, ips, true
		}
		dot := strings.IndexByte(name, '.')
		if dot < 0 {
			return "", nil, false
		}
		name = name[dot+1:]
	}
}

// Origins returns all delegated origins (unordered).
func (r *Registry) Origins() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.delegations))
	for o := range r.delegations {
		out = append(out, o)
	}
	return out
}

// Deploy registers server at each ip on the fabric and delegates each of
// its zones in the registry. It is the one-call way generators publish a
// zone into the simulated DNS.
func Deploy(f *simnet.Fabric, reg *Registry, server *Server, ips ...netaddr.IP) {
	for _, ip := range ips {
		f.Register(ip, server)
	}
	server.mu.RLock()
	defer server.mu.RUnlock()
	for origin := range server.zones {
		reg.Delegate(origin, ips...)
	}
}
