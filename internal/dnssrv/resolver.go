package dnssrv

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/simnet"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/xrand"
)

// Resolution errors.
var (
	ErrNoDelegation = errors.New("dnssrv: no authoritative server known")
	ErrNXDomain     = errors.New("dnssrv: NXDOMAIN")
	ErrRefused      = errors.New("dnssrv: query refused")
	ErrServFail     = errors.New("dnssrv: server failure")
	ErrChainTooLong = errors.New("dnssrv: CNAME chain too long")
	// ErrBudgetExhausted reports a question abandoned because its
	// measurement unit spent its probe budget or deadline.
	ErrBudgetExhausted = errors.New("dnssrv: probe budget exhausted")
)

// Backoff configures retry behavior for one resolver. The zero value
// reproduces the legacy semantics exactly — one attempt per known
// authoritative server, no delay between attempts — so un-hardened
// callers are bit-identical to before.
type Backoff struct {
	// MaxAttempts caps wire attempts per question. Zero means one
	// attempt per authoritative server; larger values cycle through the
	// servers again (with backoff delays), the way the study's crawlers
	// re-asked flaky authorities.
	MaxAttempts int
	// Base is the delay before the second attempt; each further attempt
	// doubles it, capped at Max. Delays carry deterministic jitter in
	// [0.5, 1.5)× derived from the question identity — never from shared
	// generator state — and are charged to simulated time.
	Base time.Duration
	// Max caps the per-attempt delay. Zero with a nonzero Base means no
	// cap.
	Max time.Duration
}

// delay returns the pre-attempt backoff for attempt (1-based retry
// index), jittered by a pure hash of the question identity.
func (b Backoff) delay(h uint64, attempt int) time.Duration {
	if b.Base <= 0 || attempt <= 0 {
		return 0
	}
	d := b.Base << uint(attempt-1)
	if b.Max > 0 && (d > b.Max || d <= 0) { // <=0: shift overflow
		d = b.Max
	}
	jitter := 0.5 + xrand.Frac(xrand.Hash64(h, uint64(attempt), 0x6a69)) // [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// Budget bounds the probing effort one measurement unit (for the
// dataset crawl: one domain scan) may spend. It is consulted by every
// Query on a resolver carrying it and is not safe for concurrent use —
// a budget belongs to exactly one unit worker, mirroring how per-scan
// state stays worker-local to keep campaigns order-invariant.
type Budget struct {
	// MaxQueries caps wire questions; zero means unlimited.
	MaxQueries int64
	// Deadline caps the simulated time spent (RTTs, timeouts, backoff
	// delays); zero means unlimited.
	Deadline time.Duration

	queries int64
	spent   time.Duration
}

// Exhausted reports whether the budget has run out. Nil budgets never
// exhaust.
func (b *Budget) Exhausted() bool {
	if b == nil {
		return false
	}
	if b.MaxQueries > 0 && b.queries >= b.MaxQueries {
		return true
	}
	if b.Deadline > 0 && b.spent >= b.Deadline {
		return true
	}
	return false
}

// Spent returns the consumed (queries, simulated time) so far.
func (b *Budget) Spent() (int64, time.Duration) {
	if b == nil {
		return 0, 0
	}
	return b.queries, b.spent
}

func (b *Budget) charge(queries int64, d time.Duration) {
	if b == nil {
		return
	}
	b.queries += queries
	b.spent += d
}

// ResolverMetrics holds a resolver's instrumentation hooks. One
// ResolverMetrics is typically shared by every resolver of a
// measurement campaign (the instruments are concurrency-safe), so the
// counters aggregate across vantage points and CacheEntries tracks the
// fleet-wide cached-record total. A nil *ResolverMetrics disables
// accounting.
type ResolverMetrics struct {
	// Queries counts questions that reached the wire (cache misses and
	// uncached queries).
	Queries *telemetry.Counter
	// CacheHits / CacheMisses count cache consultations on resolvers
	// with recursion (caching) enabled.
	CacheHits   *telemetry.Counter
	CacheMisses *telemetry.Counter
	// Retries counts extra server attempts after the first failed.
	Retries *telemetry.Counter
	// Failed counts queries that exhausted every authoritative server.
	Failed *telemetry.Counter
	// CacheEntries tracks the aggregate number of live cache entries.
	CacheEntries *telemetry.Gauge
	// ChainLen is the distribution of CNAME hops per LookupA.
	ChainLen *telemetry.Histogram
	// Per-rcode response counts.
	NoError, NXDomain, Refused, ServFail *telemetry.Counter
}

// NewResolverMetrics registers the resolver's standard instruments on r.
func NewResolverMetrics(r *telemetry.Registry) *ResolverMetrics {
	return &ResolverMetrics{
		Queries:      r.Counter("dns.queries"),
		CacheHits:    r.Counter("dns.cache.hits"),
		CacheMisses:  r.Counter("dns.cache.misses"),
		Retries:      r.Counter("dns.retries"),
		Failed:       r.Counter("dns.failed"),
		CacheEntries: r.Gauge("dns.cache.entries"),
		ChainLen:     r.Histogram("dns.cname_chain_len", telemetry.SmallCountBuckets),
		NoError:      r.Counter("dns.rcode.noerror"),
		NXDomain:     r.Counter("dns.rcode.nxdomain"),
		Refused:      r.Counter("dns.rcode.refused"),
		ServFail:     r.Counter("dns.rcode.servfail"),
	}
}

// countRCode tallies one response's rcode.
func (m *ResolverMetrics) countRCode(rcode dnswire.RCode) {
	if m == nil {
		return
	}
	switch rcode {
	case dnswire.RCodeNoError:
		m.NoError.Inc()
	case dnswire.RCodeNXDomain:
		m.NXDomain.Inc()
	case dnswire.RCodeRefused:
		m.Refused.Inc()
	default:
		m.ServFail.Inc()
	}
}

// Resolver resolves names against the simulated DNS from one vantage
// point. It mirrors the controls the study used with dig: per-query
// recursion control and an explicitly flushable cache.
type Resolver struct {
	Fabric   *simnet.Fabric
	Registry *Registry
	// Metrics, when set, receives query/cache/rcode accounting. Set it
	// before the resolver is used; it may be shared across resolvers.
	Metrics *ResolverMetrics
	// Source is the IP queries originate from. Authoritative servers see
	// it and may answer geo-dependently, so two resolvers with different
	// sources can legitimately receive different records.
	Source netaddr.IP
	// NoRecurse disables the cache entirely (the paper's dig calls used
	// norecurse plus cache flushes to see authoritative data each time).
	NoRecurse bool
	// Backoff configures retries; the zero value keeps legacy semantics.
	Backoff Backoff
	// FlowLabel names the measurement unit this resolver works for. It
	// feeds the DNS message ID and the fabric flow identity, so fault
	// draws depend on what is being measured, never on when — the
	// property that keeps chaos runs worker-count invariant.
	FlowLabel string
	// Budget, when set, bounds this unit's probing effort. Must not be
	// shared across goroutines; see Budget.
	Budget *Budget
	// Unit, when set, accumulates this unit's completeness accounting.
	// Like Budget it belongs to one worker; campaigns fold units into a
	// telemetry.Completeness afterwards.
	Unit *telemetry.Counts

	mu    sync.Mutex
	cache map[string]cacheEntry
}

type cacheEntry struct {
	msg     *dnswire.Message
	expires time.Time
}

// NewResolver returns a resolver on fabric using reg for delegation.
func NewResolver(fabric *simnet.Fabric, reg *Registry, source netaddr.IP) *Resolver {
	return &Resolver{Fabric: fabric, Registry: reg, Source: source, cache: make(map[string]cacheEntry)}
}

// ForUnit returns a clone of rv dedicated to one measurement unit: it
// shares the fabric, registry, metrics, vantage, and backoff policy but
// carries its own flow label, budget, completeness counts, and a fresh
// cache. The clone (and its budget and unit counts) must stay on one
// goroutine.
func (rv *Resolver) ForUnit(flowLabel string, b *Budget, u *telemetry.Counts) *Resolver {
	return &Resolver{
		Fabric:    rv.Fabric,
		Registry:  rv.Registry,
		Metrics:   rv.Metrics,
		Source:    rv.Source,
		NoRecurse: rv.NoRecurse,
		Backoff:   rv.Backoff,
		FlowLabel: flowLabel,
		Budget:    b,
		Unit:      u,
		cache:     make(map[string]cacheEntry),
	}
}

// FlushCache drops all cached responses.
func (rv *Resolver) FlushCache() {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if n := len(rv.cache); n > 0 {
		rv.Metrics.cacheEntriesAdd(-int64(n))
	}
	rv.cache = make(map[string]cacheEntry)
}

// CacheSize returns the number of live cache entries (expired entries
// still count until the next flush or overwrite).
func (rv *Resolver) CacheSize() int {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	return len(rv.cache)
}

// cacheEntriesAdd moves the aggregate cache gauge, tolerating nil.
func (m *ResolverMetrics) cacheEntriesAdd(delta int64) {
	if m == nil {
		return
	}
	m.CacheEntries.Add(delta)
}

// lossTimeout is the simulated client-side wait charged to a unit's
// budget when a datagram is lost. The fabric itself charges no time for
// drops (a lost packet delivers nothing), but the measuring client
// still burned a timeout waiting for it.
const lossTimeout = time.Second

// Query sends one question to the authoritative servers for name and
// returns the validated response message. Failed attempts — timeouts,
// injected loss, and SERVFAIL responses — fail over across the
// delegation's server IPs, with optional exponential backoff between
// attempts (see Backoff). NXDOMAIN and REFUSED are authoritative
// verdicts and return immediately. The DNS message ID and fabric flow
// derive from (FlowLabel, name, qtype, attempt), so retries redraw
// their loss fate deterministically.
func (rv *Resolver) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	name = dnswire.CanonicalName(name)
	m := rv.Metrics
	key := fmt.Sprintf("%s|%d", name, qtype)
	if !rv.NoRecurse {
		rv.mu.Lock()
		if e, ok := rv.cache[key]; ok && rv.Fabric.Clock().Now().Before(e.expires) {
			rv.mu.Unlock()
			if m != nil {
				m.CacheHits.Inc()
			}
			return e.msg, nil
		}
		rv.mu.Unlock()
		if m != nil {
			m.CacheMisses.Inc()
		}
	}
	if rv.Budget.Exhausted() {
		if rv.Unit != nil {
			rv.Unit.Attempted++
			rv.Unit.Abandoned++
		}
		return nil, ErrBudgetExhausted
	}
	_, servers, ok := rv.Registry.Authoritative(name)
	if !ok {
		return nil, ErrNoDelegation
	}
	qh := xrand.Hash64(xrand.HashString(uint64(qtype), rv.FlowLabel+"|"+name))
	if m != nil {
		m.Queries.Inc()
	}
	if rv.Unit != nil {
		rv.Unit.Attempted++
	}
	attempts := rv.Backoff.MaxAttempts
	if attempts <= 0 {
		attempts = len(servers)
	}
	var lastResp *dnswire.Message
	var lastErr error = simnet.ErrTimeout
	retried := false
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if m != nil {
				m.Retries.Inc()
			}
			retried = true
			if d := rv.Backoff.delay(qh, attempt); d > 0 {
				rv.Fabric.Clock().Advance(d)
				rv.Budget.charge(0, d)
			}
			if rv.Budget.Exhausted() {
				break
			}
		}
		server := servers[attempt%len(servers)]
		// Per-attempt identity: retries are distinct datagrams on the
		// wire and draw independent fault fates.
		ah := xrand.Hash64(qh, uint64(attempt))
		id := uint16(ah)
		q := dnswire.NewQuery(id, name, qtype)
		q.Header.RecursionDesired = !rv.NoRecurse
		payload, err := q.Pack()
		if err != nil {
			return nil, err
		}
		raw, rtt, err := rv.Fabric.QueryFlow(rv.Source, server, ah, payload)
		if err != nil {
			if errors.Is(err, simnet.ErrTimeout) {
				rv.Budget.charge(1, lossTimeout)
			} else {
				rv.Budget.charge(1, rtt)
			}
			lastErr = err
			continue
		}
		rv.Budget.charge(1, rtt)
		resp, err := dnswire.Unpack(raw)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.ID != id || !resp.Header.Response {
			lastErr = errors.New("dnssrv: mismatched response")
			continue
		}
		m.countRCode(resp.Header.RCode)
		switch resp.Header.RCode {
		case dnswire.RCodeNoError:
		case dnswire.RCodeNXDomain:
			rv.unitDone(retried, true)
			return resp, ErrNXDomain
		case dnswire.RCodeRefused:
			rv.unitDone(retried, true)
			return resp, ErrRefused
		default:
			// SERVFAIL: a broken or overloaded authority, not a verdict
			// about the name — fail over to the remaining servers.
			lastResp, lastErr = resp, ErrServFail
			continue
		}
		if !rv.NoRecurse {
			ttl := minTTL(resp.Answers)
			rv.mu.Lock()
			if _, existed := rv.cache[key]; !existed {
				rv.Metrics.cacheEntriesAdd(1)
			}
			rv.cache[key] = cacheEntry{msg: resp, expires: rv.Fabric.Clock().Now().Add(time.Duration(ttl) * time.Second)}
			rv.mu.Unlock()
		}
		rv.unitDone(retried, true)
		return resp, nil
	}
	if m != nil {
		m.Failed.Inc()
	}
	rv.unitDone(retried, false)
	return lastResp, lastErr
}

// unitDone finalizes one question's completeness accounting.
func (rv *Resolver) unitDone(retried, succeeded bool) {
	if rv.Unit == nil {
		return
	}
	if retried {
		rv.Unit.Retried++
	}
	if succeeded {
		rv.Unit.Succeeded++
	} else {
		rv.Unit.Abandoned++
	}
}

func minTTL(rrs []dnswire.RR) uint32 {
	ttl := uint32(300)
	for _, r := range rrs {
		if r.TTL < ttl {
			ttl = r.TTL
		}
	}
	return ttl
}

// Answer is one resolved record from a full lookup: the chain of CNAMEs
// plus terminal A records.
type Answer = dnswire.RR

// LookupA resolves name to its full record chain, following CNAMEs
// across zone and delegation boundaries (at most 8 hops, like real
// resolvers). The returned slice contains every CNAME traversed followed
// by the A records of the final target. ErrNXDomain is returned only if
// the first name does not exist.
func (rv *Resolver) LookupA(name string) ([]Answer, error) {
	chain, err := rv.lookupA(name)
	if err == nil && rv.Metrics != nil {
		cnames := 0
		for _, rr := range chain {
			if rr.Type == dnswire.TypeCNAME {
				cnames++
			}
		}
		rv.Metrics.ChainLen.Observe(float64(cnames))
	}
	return chain, err
}

func (rv *Resolver) lookupA(name string) ([]Answer, error) {
	var chain []Answer
	seen := map[string]bool{}
	current := dnswire.CanonicalName(name)
	for hop := 0; hop < 8; hop++ {
		if seen[current] {
			return chain, ErrChainTooLong
		}
		seen[current] = true
		resp, err := rv.Query(current, dnswire.TypeA)
		if err != nil {
			if len(chain) > 0 && errors.Is(err, ErrNXDomain) {
				// Dangling CNAME: report what we have.
				return chain, nil
			}
			return chain, err
		}
		var next string
		gotA := false
		for _, rr := range resp.Answers {
			chain = append(chain, rr)
			switch rr.Type {
			case dnswire.TypeA:
				gotA = true
			case dnswire.TypeCNAME:
				next = dnswire.CanonicalName(rr.Target)
			}
		}
		if gotA || next == "" {
			return chain, nil
		}
		current = next
	}
	return chain, ErrChainTooLong
}

// LookupNS returns the NS target names for a domain.
func (rv *Resolver) LookupNS(name string) ([]string, error) {
	resp, err := rv.Query(name, dnswire.TypeNS)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range resp.Answers {
		if rr.Type == dnswire.TypeNS {
			out = append(out, dnswire.CanonicalName(rr.Target))
		}
	}
	return out, nil
}

// AXFR attempts a zone transfer for origin and returns the zone's
// records (without the framing SOA pair).
func (rv *Resolver) AXFR(origin string) ([]dnswire.RR, error) {
	resp, err := rv.Query(origin, dnswire.TypeAXFR)
	if err != nil {
		return nil, err
	}
	rrs := resp.Answers
	if len(rrs) >= 2 && rrs[0].Type == dnswire.TypeSOA && rrs[len(rrs)-1].Type == dnswire.TypeSOA {
		rrs = rrs[1 : len(rrs)-1]
	}
	return rrs, nil
}
