package dnssrv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/simnet"
	"cloudscope/internal/telemetry"
)

// Resolution errors.
var (
	ErrNoDelegation = errors.New("dnssrv: no authoritative server known")
	ErrNXDomain     = errors.New("dnssrv: NXDOMAIN")
	ErrRefused      = errors.New("dnssrv: query refused")
	ErrServFail     = errors.New("dnssrv: server failure")
	ErrChainTooLong = errors.New("dnssrv: CNAME chain too long")
)

// ResolverMetrics holds a resolver's instrumentation hooks. One
// ResolverMetrics is typically shared by every resolver of a
// measurement campaign (the instruments are concurrency-safe), so the
// counters aggregate across vantage points and CacheEntries tracks the
// fleet-wide cached-record total. A nil *ResolverMetrics disables
// accounting.
type ResolverMetrics struct {
	// Queries counts questions that reached the wire (cache misses and
	// uncached queries).
	Queries *telemetry.Counter
	// CacheHits / CacheMisses count cache consultations on resolvers
	// with recursion (caching) enabled.
	CacheHits   *telemetry.Counter
	CacheMisses *telemetry.Counter
	// Retries counts extra server attempts after the first failed.
	Retries *telemetry.Counter
	// Failed counts queries that exhausted every authoritative server.
	Failed *telemetry.Counter
	// CacheEntries tracks the aggregate number of live cache entries.
	CacheEntries *telemetry.Gauge
	// ChainLen is the distribution of CNAME hops per LookupA.
	ChainLen *telemetry.Histogram
	// Per-rcode response counts.
	NoError, NXDomain, Refused, ServFail *telemetry.Counter
}

// NewResolverMetrics registers the resolver's standard instruments on r.
func NewResolverMetrics(r *telemetry.Registry) *ResolverMetrics {
	return &ResolverMetrics{
		Queries:      r.Counter("dns.queries"),
		CacheHits:    r.Counter("dns.cache.hits"),
		CacheMisses:  r.Counter("dns.cache.misses"),
		Retries:      r.Counter("dns.retries"),
		Failed:       r.Counter("dns.failed"),
		CacheEntries: r.Gauge("dns.cache.entries"),
		ChainLen:     r.Histogram("dns.cname_chain_len", telemetry.SmallCountBuckets),
		NoError:      r.Counter("dns.rcode.noerror"),
		NXDomain:     r.Counter("dns.rcode.nxdomain"),
		Refused:      r.Counter("dns.rcode.refused"),
		ServFail:     r.Counter("dns.rcode.servfail"),
	}
}

// countRCode tallies one response's rcode.
func (m *ResolverMetrics) countRCode(rcode dnswire.RCode) {
	if m == nil {
		return
	}
	switch rcode {
	case dnswire.RCodeNoError:
		m.NoError.Inc()
	case dnswire.RCodeNXDomain:
		m.NXDomain.Inc()
	case dnswire.RCodeRefused:
		m.Refused.Inc()
	default:
		m.ServFail.Inc()
	}
}

// Resolver resolves names against the simulated DNS from one vantage
// point. It mirrors the controls the study used with dig: per-query
// recursion control and an explicitly flushable cache.
type Resolver struct {
	Fabric   *simnet.Fabric
	Registry *Registry
	// Metrics, when set, receives query/cache/rcode accounting. Set it
	// before the resolver is used; it may be shared across resolvers.
	Metrics *ResolverMetrics
	// Source is the IP queries originate from. Authoritative servers see
	// it and may answer geo-dependently, so two resolvers with different
	// sources can legitimately receive different records.
	Source netaddr.IP
	// NoRecurse disables the cache entirely (the paper's dig calls used
	// norecurse plus cache flushes to see authoritative data each time).
	NoRecurse bool

	nextID atomic.Uint32
	mu     sync.Mutex
	cache  map[string]cacheEntry
}

type cacheEntry struct {
	msg     *dnswire.Message
	expires time.Time
}

// NewResolver returns a resolver on fabric using reg for delegation.
func NewResolver(fabric *simnet.Fabric, reg *Registry, source netaddr.IP) *Resolver {
	return &Resolver{Fabric: fabric, Registry: reg, Source: source, cache: make(map[string]cacheEntry)}
}

// FlushCache drops all cached responses.
func (rv *Resolver) FlushCache() {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if n := len(rv.cache); n > 0 {
		rv.Metrics.cacheEntriesAdd(-int64(n))
	}
	rv.cache = make(map[string]cacheEntry)
}

// CacheSize returns the number of live cache entries (expired entries
// still count until the next flush or overwrite).
func (rv *Resolver) CacheSize() int {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	return len(rv.cache)
}

// cacheEntriesAdd moves the aggregate cache gauge, tolerating nil.
func (m *ResolverMetrics) cacheEntriesAdd(delta int64) {
	if m == nil {
		return
	}
	m.CacheEntries.Add(delta)
}

// Query sends one question to the authoritative servers for name and
// returns the validated response message. It retries across the
// delegation's server IPs on timeout.
func (rv *Resolver) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	name = dnswire.CanonicalName(name)
	m := rv.Metrics
	key := fmt.Sprintf("%s|%d", name, qtype)
	if !rv.NoRecurse {
		rv.mu.Lock()
		if e, ok := rv.cache[key]; ok && rv.Fabric.Clock().Now().Before(e.expires) {
			rv.mu.Unlock()
			if m != nil {
				m.CacheHits.Inc()
			}
			return e.msg, nil
		}
		rv.mu.Unlock()
		if m != nil {
			m.CacheMisses.Inc()
		}
	}
	_, servers, ok := rv.Registry.Authoritative(name)
	if !ok {
		return nil, ErrNoDelegation
	}
	id := uint16(rv.nextID.Add(1))
	q := dnswire.NewQuery(id, name, qtype)
	q.Header.RecursionDesired = !rv.NoRecurse
	payload, err := q.Pack()
	if err != nil {
		return nil, err
	}
	if m != nil {
		m.Queries.Inc()
	}
	var lastErr error = simnet.ErrTimeout
	for attempt, server := range servers {
		if m != nil && attempt > 0 {
			m.Retries.Inc()
		}
		raw, _, err := rv.Fabric.Query(rv.Source, server, payload)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := dnswire.Unpack(raw)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.ID != id || !resp.Header.Response {
			lastErr = errors.New("dnssrv: mismatched response")
			continue
		}
		m.countRCode(resp.Header.RCode)
		switch resp.Header.RCode {
		case dnswire.RCodeNoError:
		case dnswire.RCodeNXDomain:
			return resp, ErrNXDomain
		case dnswire.RCodeRefused:
			return resp, ErrRefused
		default:
			return resp, ErrServFail
		}
		if !rv.NoRecurse {
			ttl := minTTL(resp.Answers)
			rv.mu.Lock()
			if _, existed := rv.cache[key]; !existed {
				rv.Metrics.cacheEntriesAdd(1)
			}
			rv.cache[key] = cacheEntry{msg: resp, expires: rv.Fabric.Clock().Now().Add(time.Duration(ttl) * time.Second)}
			rv.mu.Unlock()
		}
		return resp, nil
	}
	if m != nil {
		m.Failed.Inc()
	}
	return nil, lastErr
}

func minTTL(rrs []dnswire.RR) uint32 {
	ttl := uint32(300)
	for _, r := range rrs {
		if r.TTL < ttl {
			ttl = r.TTL
		}
	}
	return ttl
}

// Answer is one resolved record from a full lookup: the chain of CNAMEs
// plus terminal A records.
type Answer = dnswire.RR

// LookupA resolves name to its full record chain, following CNAMEs
// across zone and delegation boundaries (at most 8 hops, like real
// resolvers). The returned slice contains every CNAME traversed followed
// by the A records of the final target. ErrNXDomain is returned only if
// the first name does not exist.
func (rv *Resolver) LookupA(name string) ([]Answer, error) {
	chain, err := rv.lookupA(name)
	if err == nil && rv.Metrics != nil {
		cnames := 0
		for _, rr := range chain {
			if rr.Type == dnswire.TypeCNAME {
				cnames++
			}
		}
		rv.Metrics.ChainLen.Observe(float64(cnames))
	}
	return chain, err
}

func (rv *Resolver) lookupA(name string) ([]Answer, error) {
	var chain []Answer
	seen := map[string]bool{}
	current := dnswire.CanonicalName(name)
	for hop := 0; hop < 8; hop++ {
		if seen[current] {
			return chain, ErrChainTooLong
		}
		seen[current] = true
		resp, err := rv.Query(current, dnswire.TypeA)
		if err != nil {
			if len(chain) > 0 && errors.Is(err, ErrNXDomain) {
				// Dangling CNAME: report what we have.
				return chain, nil
			}
			return chain, err
		}
		var next string
		gotA := false
		for _, rr := range resp.Answers {
			chain = append(chain, rr)
			switch rr.Type {
			case dnswire.TypeA:
				gotA = true
			case dnswire.TypeCNAME:
				next = dnswire.CanonicalName(rr.Target)
			}
		}
		if gotA || next == "" {
			return chain, nil
		}
		current = next
	}
	return chain, ErrChainTooLong
}

// LookupNS returns the NS target names for a domain.
func (rv *Resolver) LookupNS(name string) ([]string, error) {
	resp, err := rv.Query(name, dnswire.TypeNS)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range resp.Answers {
		if rr.Type == dnswire.TypeNS {
			out = append(out, dnswire.CanonicalName(rr.Target))
		}
	}
	return out, nil
}

// AXFR attempts a zone transfer for origin and returns the zone's
// records (without the framing SOA pair).
func (rv *Resolver) AXFR(origin string) ([]dnswire.RR, error) {
	resp, err := rv.Query(origin, dnswire.TypeAXFR)
	if err != nil {
		return nil, err
	}
	rrs := resp.Answers
	if len(rrs) >= 2 && rrs[0].Type == dnswire.TypeSOA && rrs[len(rrs)-1].Type == dnswire.TypeSOA {
		rrs = rrs[1 : len(rrs)-1]
	}
	return rrs, nil
}
