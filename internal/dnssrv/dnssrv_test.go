package dnssrv

import (
	"errors"
	"testing"
	"time"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/simnet"
	"cloudscope/internal/telemetry"
)

var (
	nsIP     = netaddr.MustParseIP("198.51.100.53")
	client   = netaddr.MustParseIP("203.0.113.7")
	vmIP     = netaddr.MustParseIP("54.230.0.10")
	otherIP  = netaddr.MustParseIP("66.77.88.99")
	herokuIP = netaddr.MustParseIP("54.230.0.99")
)

// testWorld wires one authoritative server for example.com into a fabric.
func testWorld(t *testing.T) (*simnet.Fabric, *Registry, *Zone, *Resolver) {
	t.Helper()
	fabric := simnet.NewFabric(nil)
	reg := NewRegistry()
	z := NewZone("example.com")
	z.AllowAXFR = true
	z.MustAdd(
		dnswire.RR{Name: "example.com", Type: dnswire.TypeNS, TTL: 3600, Target: "ns1.example.com"},
		dnswire.RR{Name: "ns1.example.com", Type: dnswire.TypeA, TTL: 3600, IP: nsIP},
		dnswire.RR{Name: "www.example.com", Type: dnswire.TypeA, TTL: 300, IP: vmIP},
		dnswire.RR{Name: "m.example.com", Type: dnswire.TypeCNAME, TTL: 300, Target: "www.example.com"},
		dnswire.RR{Name: "app.example.com", Type: dnswire.TypeCNAME, TTL: 300, Target: "proxy.heroku.com"},
	)
	srv := NewServer(z)
	Deploy(fabric, reg, srv, nsIP)
	return fabric, reg, z, NewResolver(fabric, reg, client)
}

func TestLookupADirect(t *testing.T) {
	_, _, _, rv := testWorld(t)
	chain, err := rv.LookupA("www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].Type != dnswire.TypeA || chain[0].IP != vmIP {
		t.Fatalf("chain = %+v", chain)
	}
}

func TestLookupAInZoneCNAME(t *testing.T) {
	_, _, _, rv := testWorld(t)
	chain, err := rv.LookupA("m.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].Type != dnswire.TypeCNAME || chain[1].IP != vmIP {
		t.Fatalf("chain = %+v", chain)
	}
}

func TestLookupACrossZoneCNAME(t *testing.T) {
	fabric, reg, _, rv := testWorld(t)
	hz := NewZone("heroku.com")
	hz.MustAdd(dnswire.RR{Name: "proxy.heroku.com", Type: dnswire.TypeA, TTL: 60, IP: herokuIP})
	Deploy(fabric, reg, NewServer(hz), netaddr.MustParseIP("198.51.100.54"))

	chain, err := rv.LookupA("app.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain = %+v", chain)
	}
	if chain[0].Target != "proxy.heroku.com" || chain[1].IP != herokuIP {
		t.Fatalf("chain = %+v", chain)
	}
}

func TestNXDomain(t *testing.T) {
	_, _, _, rv := testWorld(t)
	_, err := rv.LookupA("missing.example.com")
	if !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoDelegation(t *testing.T) {
	_, _, _, rv := testWorld(t)
	_, err := rv.LookupA("www.unknown-tld-domain.net")
	if !errors.Is(err, ErrNoDelegation) {
		t.Fatalf("err = %v", err)
	}
}

func TestAXFRAllowed(t *testing.T) {
	_, _, _, rv := testWorld(t)
	rrs, err := rv.AXFR("example.com")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range rrs {
		if r.Type == dnswire.TypeSOA {
			t.Fatalf("framing SOA leaked into records: %v", r)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"www.example.com", "m.example.com", "app.example.com", "ns1.example.com"} {
		if !names[want] {
			t.Errorf("AXFR missing %s", want)
		}
	}
}

func TestAXFRRefused(t *testing.T) {
	fabric, reg, _, _ := testWorld(t)
	z2 := NewZone("private.org")
	z2.MustAdd(dnswire.RR{Name: "www.private.org", Type: dnswire.TypeA, TTL: 60, IP: otherIP})
	Deploy(fabric, reg, NewServer(z2), netaddr.MustParseIP("198.51.100.99"))
	rv := NewResolver(fabric, reg, client)
	_, err := rv.AXFR("private.org")
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v", err)
	}
}

func TestLookupNS(t *testing.T) {
	_, _, _, rv := testWorld(t)
	ns, err := rv.LookupNS("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0] != "ns1.example.com" {
		t.Fatalf("ns = %v", ns)
	}
}

func TestDynamicGeoAnswer(t *testing.T) {
	fabric, reg, z, _ := testWorld(t)
	east := netaddr.MustParseIP("54.230.0.1")
	west := netaddr.MustParseIP("54.215.0.1")
	z.SetDynamic("geo.example.com", func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
		ip := east
		if src == client {
			ip = west
		}
		return []dnswire.RR{{Name: "geo.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 30, IP: ip}}
	})
	rv1 := NewResolver(fabric, reg, client)
	rv2 := NewResolver(fabric, reg, netaddr.MustParseIP("192.0.2.99"))
	c1, err := rv1.LookupA("geo.example.com")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := rv2.LookupA("geo.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if c1[0].IP != west || c2[0].IP != east {
		t.Fatalf("geo answers wrong: %v / %v", c1[0].IP, c2[0].IP)
	}
}

func TestCacheHitAndFlush(t *testing.T) {
	fabric, reg, z, _ := testWorld(t)
	calls := 0
	z.SetDynamic("count.example.com", func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
		calls++
		return []dnswire.RR{{Name: "count.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300, IP: 1}}
	})
	rv := NewResolver(fabric, reg, client)
	for i := 0; i < 3; i++ {
		if _, err := rv.LookupA("count.example.com"); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Fatalf("authoritative hit %d times; cache broken", calls)
	}
	rv.FlushCache()
	if _, err := rv.LookupA("count.example.com"); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("flush did not force re-query (calls=%d)", calls)
	}
}

// TestCacheMetricsDeterministic pins the exact cache-size and hit/miss
// accounting of a caching resolver: two names resolved twice each, a
// flush, then one re-resolution. Every number below is forced by the
// query sequence, so cache-hit metrics are testable without relying on
// timing or ordering.
func TestCacheMetricsDeterministic(t *testing.T) {
	_, _, _, rv := testWorld(t)
	reg := telemetry.NewRegistry()
	rv.Metrics = NewResolverMetrics(reg)

	for i := 0; i < 2; i++ {
		if _, err := rv.LookupA("www.example.com"); err != nil {
			t.Fatal(err)
		}
		if _, err := rv.LookupA("m.example.com"); err != nil {
			t.Fatal(err)
		}
	}
	// www caches 1 key; m caches its own key plus the chased www key
	// (already present) — 2 distinct keys total.
	if got := rv.CacheSize(); got != 2 {
		t.Fatalf("CacheSize = %d, want 2", got)
	}
	snap := reg.Snapshot()
	// The authoritative server chases in-zone CNAMEs, so each name costs
	// exactly one wire query. Round 1: two misses. Round 2: two hits.
	if got := snap.Counter("dns.cache.misses"); got != 2 {
		t.Fatalf("cache misses = %d, want 2", got)
	}
	if got := snap.Counter("dns.cache.hits"); got != 2 {
		t.Fatalf("cache hits = %d, want 2", got)
	}
	if got := snap.Gauge("dns.cache.entries"); got != 2 {
		t.Fatalf("cache entries gauge = %d, want 2", got)
	}
	if got := snap.Counter("dns.queries"); got != 2 {
		t.Fatalf("wire queries = %d, want 2", got)
	}

	// FlushCache must zero both the resolver's view and the gauge.
	rv.FlushCache()
	if got := rv.CacheSize(); got != 0 {
		t.Fatalf("CacheSize after flush = %d, want 0", got)
	}
	if got := reg.Snapshot().Gauge("dns.cache.entries"); got != 0 {
		t.Fatalf("cache entries gauge after flush = %d, want 0", got)
	}

	// Re-resolution after the flush is a miss again, not a hit.
	if _, err := rv.LookupA("www.example.com"); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counter("dns.cache.misses"); got != 3 {
		t.Fatalf("cache misses after flush = %d, want 3", got)
	}
	if got := snap.Counter("dns.rcode.noerror"); got != 3 {
		t.Fatalf("noerror responses = %d, want 3", got)
	}
	if h, ok := snap.Histogram("dns.cname_chain_len"); !ok || h.Count != 5 {
		t.Fatalf("chain-length histogram = %+v, want 5 observations", h)
	}
}

func TestCacheExpiry(t *testing.T) {
	fabric, reg, z, _ := testWorld(t)
	calls := 0
	z.SetDynamic("ttl.example.com", func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
		calls++
		return []dnswire.RR{{Name: "ttl.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 10, IP: 1}}
	})
	rv := NewResolver(fabric, reg, client)
	rv.LookupA("ttl.example.com")
	fabric.Clock().Advance(11 * time.Second)
	rv.LookupA("ttl.example.com")
	if calls != 2 {
		t.Fatalf("expired entry served from cache (calls=%d)", calls)
	}
}

func TestNoRecurseBypassesCache(t *testing.T) {
	fabric, reg, z, _ := testWorld(t)
	calls := 0
	z.SetDynamic("nr.example.com", func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
		calls++
		return []dnswire.RR{{Name: "nr.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300, IP: 1}}
	})
	rv := NewResolver(fabric, reg, client)
	rv.NoRecurse = true
	rv.LookupA("nr.example.com")
	rv.LookupA("nr.example.com")
	if calls != 2 {
		t.Fatalf("NoRecurse used cache (calls=%d)", calls)
	}
}

func TestRetryAcrossServers(t *testing.T) {
	fabric, reg, _, _ := testWorld(t)
	// Delegate a zone to one dead IP and one live server.
	z := NewZone("retry.net")
	z.MustAdd(dnswire.RR{Name: "www.retry.net", Type: dnswire.TypeA, TTL: 60, IP: 77})
	srv := NewServer(z)
	live := netaddr.MustParseIP("198.51.100.77")
	dead := netaddr.MustParseIP("198.51.100.78")
	fabric.Register(live, srv)
	reg.Delegate("retry.net", dead, live)
	rv := NewResolver(fabric, reg, client)
	chain, err := rv.LookupA("www.retry.net")
	if err != nil {
		t.Fatal(err)
	}
	if chain[0].IP != 77 {
		t.Fatalf("chain = %+v", chain)
	}
}

func TestCNAMELoopDetected(t *testing.T) {
	fabric, reg, _, _ := testWorld(t)
	z := NewZone("loop.net")
	z.MustAdd(
		dnswire.RR{Name: "a.loop.net", Type: dnswire.TypeCNAME, TTL: 60, Target: "b.loop.net"},
	)
	// b -> a lives in a different zone so the resolver must chase it.
	z2 := NewZone("loopb.net")
	z2.MustAdd(dnswire.RR{Name: "b.loopb.net", Type: dnswire.TypeCNAME, TTL: 60, Target: "a.loop.net"})
	// Rewire: make a -> b.loopb.net
	z = NewZone("loop.net")
	z.MustAdd(dnswire.RR{Name: "a.loop.net", Type: dnswire.TypeCNAME, TTL: 60, Target: "b.loopb.net"})
	Deploy(fabric, reg, NewServer(z), netaddr.MustParseIP("198.51.100.60"))
	Deploy(fabric, reg, NewServer(z2), netaddr.MustParseIP("198.51.100.61"))
	rv := NewResolver(fabric, reg, client)
	_, err := rv.LookupA("a.loop.net")
	if !errors.Is(err, ErrChainTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestZoneAddOutsideOrigin(t *testing.T) {
	z := NewZone("example.com")
	err := z.Add(dnswire.RR{Name: "www.other.com", Type: dnswire.TypeA, IP: 1})
	if err == nil {
		t.Fatal("out-of-zone record accepted")
	}
}

func TestZoneNodata(t *testing.T) {
	_, _, _, rv := testWorld(t)
	resp, err := rv.Query("www.example.com", dnswire.TypeTXT)
	if err != nil {
		t.Fatalf("NODATA should not error: %v", err)
	}
	if len(resp.Answers) != 0 {
		t.Fatalf("answers = %v", resp.Answers)
	}
}

func TestServerRefusesForeignName(t *testing.T) {
	_, _, _, rv := testWorld(t)
	// Point delegation for foreign.org at example.com's server.
	rv.Registry.Delegate("foreign.org", nsIP)
	_, err := rv.Query("www.foreign.org", dnswire.TypeA)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v", err)
	}
}

func TestSOAQuery(t *testing.T) {
	_, _, _, rv := testWorld(t)
	resp, err := rv.Query("example.com", dnswire.TypeSOA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].SOA.MName != "ns1.example.com" {
		t.Fatalf("soa = %+v", resp.Answers)
	}
}

func TestRegistryLongestMatch(t *testing.T) {
	reg := NewRegistry()
	reg.Delegate("com", 1)
	reg.Delegate("example.com", 2)
	origin, ips, ok := reg.Authoritative("deep.sub.example.com")
	if !ok || origin != "example.com" || ips[0] != 2 {
		t.Fatalf("got %q %v %v", origin, ips, ok)
	}
	origin, ips, ok = reg.Authoritative("other.com")
	if !ok || origin != "com" || ips[0] != 1 {
		t.Fatalf("got %q %v %v", origin, ips, ok)
	}
	if _, _, ok := reg.Authoritative("nope.org"); ok {
		t.Fatal("unexpected delegation")
	}
}

func TestTransferIncludesDynamic(t *testing.T) {
	_, _, z, rv := testWorld(t)
	z.SetDynamic("dyn.example.com", func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
		return []dnswire.RR{{Name: "dyn.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 30, IP: 123}}
	})
	rrs, err := rv.AXFR("example.com")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rrs {
		if r.Name == "dyn.example.com" && r.IP == 123 {
			found = true
		}
	}
	if !found {
		t.Fatal("dynamic record missing from transfer")
	}
}

// servfailServer forges SERVFAIL for every question — a broken
// authority that still answers the wire.
func servfailServer() simnet.HandlerFunc {
	return func(_, _ netaddr.IP, payload []byte) []byte {
		q, err := dnswire.Unpack(payload)
		if err != nil {
			return nil
		}
		r := q.Reply()
		r.Header.RCode = dnswire.RCodeServFail
		raw, err := r.Pack()
		if err != nil {
			return nil
		}
		return raw
	}
}

// TestServFailFailsOverToNextServer: SERVFAIL says "this server is
// broken", not "this name is bad" — the resolver must try the
// delegation's remaining servers instead of giving up.
func TestServFailFailsOverToNextServer(t *testing.T) {
	fabric, reg, _, rv := testWorld(t)
	m := NewResolverMetrics(telemetry.NewRegistry())
	rv.Metrics = m

	sickIP := netaddr.MustParseIP("198.51.100.66")
	fabric.Register(sickIP, servfailServer())
	// Sick server listed first: the naive resolver would return its
	// SERVFAIL as the final verdict.
	reg.Delegate("example.com", sickIP, nsIP)

	resp, err := rv.Query("www.example.com", dnswire.TypeA)
	if err != nil {
		t.Fatalf("query did not fail over past SERVFAIL: %v", err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].IP != vmIP {
		t.Fatalf("answers = %+v", resp.Answers)
	}
	if got := m.Retries.Value(); got < 1 {
		t.Fatalf("retries = %d, want >= 1", got)
	}
	if got := m.ServFail.Value(); got < 1 {
		t.Fatalf("servfail count = %d, want >= 1", got)
	}
	if got := m.Failed.Value(); got != 0 {
		t.Fatalf("failed = %d, want 0", got)
	}
}

// TestServFailOnAllServersReported: when every server is sick, the
// caller still gets the SERVFAIL verdict and Failed accounting.
func TestServFailOnAllServersReported(t *testing.T) {
	fabric, reg, _, rv := testWorld(t)
	m := NewResolverMetrics(telemetry.NewRegistry())
	rv.Metrics = m
	sickIP := netaddr.MustParseIP("198.51.100.66")
	fabric.Register(sickIP, servfailServer())
	reg.Delegate("example.com", sickIP)

	resp, err := rv.Query("www.example.com", dnswire.TypeA)
	if !errors.Is(err, ErrServFail) {
		t.Fatalf("err = %v, want ErrServFail", err)
	}
	if resp == nil || resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("resp = %+v, want the SERVFAIL message", resp)
	}
	if m.Failed.Value() != 1 {
		t.Fatalf("failed = %d, want 1", m.Failed.Value())
	}
}

// TestNXDomainDoesNotFailOver: NXDOMAIN is an authoritative verdict
// about the name; asking another server would just waste probes.
func TestNXDomainDoesNotFailOver(t *testing.T) {
	_, reg, _, rv := testWorld(t)
	m := NewResolverMetrics(telemetry.NewRegistry())
	rv.Metrics = m
	reg.Delegate("example.com", nsIP, nsIP, nsIP)
	if _, err := rv.Query("missing.example.com", dnswire.TypeA); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v", err)
	}
	if got := m.Retries.Value(); got != 0 {
		t.Fatalf("retries = %d after NXDOMAIN, want 0", got)
	}
}

// TestBackoffRetriesAndBudget: with loss on the path, a hardened
// resolver retries with sim-time backoff; a budget bounds the effort
// and the unit counts record what was abandoned.
func TestBackoffRetriesAndBudget(t *testing.T) {
	fabric, _, _, rv := testWorld(t)
	m := NewResolverMetrics(telemetry.NewRegistry())
	rv.Metrics = m
	rv.Backoff = Backoff{MaxAttempts: 4, Base: 100 * time.Millisecond, Max: time.Second}
	fabric.SetLoss(1.0, 9) // nothing gets through

	var unit telemetry.Counts
	budget := &Budget{MaxQueries: 100}
	urv := rv.ForUnit("test/unit", budget, &unit)

	start := fabric.Clock().Now()
	_, err := urv.Query("www.example.com", dnswire.TypeA)
	if !errors.Is(err, simnet.ErrInjectedLoss) {
		t.Fatalf("err = %v", err)
	}
	if got := m.Retries.Value(); got != 3 {
		t.Fatalf("retries = %d, want 3 (MaxAttempts=4)", got)
	}
	if q, _ := budget.Spent(); q != 4 {
		t.Fatalf("budget queries = %d, want 4", q)
	}
	if elapsed := fabric.Clock().Now().Sub(start); elapsed < 150*time.Millisecond {
		t.Fatalf("sim clock advanced %v, backoff delays must be charged", elapsed)
	}
	if unit.Attempted != 1 || unit.Abandoned != 1 || unit.Retried != 1 || unit.Succeeded != 0 {
		t.Fatalf("unit = %+v", unit)
	}

	// Budget exhaustion short-circuits the next question.
	budget.MaxQueries = 4
	if _, err := urv.Query("m.example.com", dnswire.TypeA); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if unit.Attempted != 2 || unit.Abandoned != 2 {
		t.Fatalf("unit after exhaustion = %+v", unit)
	}

	// Lifting the loss: the clone answers and counts a success.
	fabric.SetLoss(0, 0)
	budget.MaxQueries = 100
	if _, err := urv.Query("www.example.com", dnswire.TypeA); err != nil {
		t.Fatalf("recovered query: %v", err)
	}
	if unit.Succeeded != 1 {
		t.Fatalf("unit after recovery = %+v", unit)
	}
}

// TestZeroBackoffKeepsLegacySemantics: the zero value tries each
// delegated server once with no delay — the pre-hardening behavior.
func TestZeroBackoffKeepsLegacySemantics(t *testing.T) {
	fabric, reg, _, rv := testWorld(t)
	m := NewResolverMetrics(telemetry.NewRegistry())
	rv.Metrics = m
	deadIP := netaddr.MustParseIP("198.51.100.77")
	fabric.Register(deadIP, simnet.HandlerFunc(func(_, _ netaddr.IP, _ []byte) []byte { return nil }))
	reg.Delegate("example.com", deadIP, nsIP)

	start := fabric.Clock().Now()
	resp, err := rv.Query("www.example.com", dnswire.TypeA)
	if err != nil || len(resp.Answers) != 1 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if m.Retries.Value() != 1 {
		t.Fatalf("retries = %d, want 1 (second server)", m.Retries.Value())
	}
	// Two RTTs at the 0.5ms default one-way latency; no backoff delay.
	if elapsed := fabric.Clock().Now().Sub(start); elapsed != 2*time.Millisecond {
		t.Fatalf("sim time = %v, want 2ms (two queries, no backoff)", elapsed)
	}
}
