// Package dnssrv implements the DNS serving and resolution layer of the
// simulated Internet: authoritative zones, a server that speaks the
// dnswire format over the simnet fabric, a caching resolver with the
// dig-like controls the study's probing needs (cache flush, norecurse),
// and zone transfers (AXFR) — the first step of the paper's subdomain
// discovery pipeline.
package dnssrv

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
)

// DynamicFunc computes answer records per query, letting a zone give
// source-dependent answers (geo load balancing, Azure Traffic Manager)
// or rotate record order (ELB round-robin DNS).
type DynamicFunc func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR

// Zone holds the authoritative data for one origin.
type Zone struct {
	Origin    string
	SOA       dnswire.SOAData
	AllowAXFR bool

	mu      sync.RWMutex
	records map[string][]dnswire.RR
	dynamic map[string]DynamicFunc
}

// NewZone creates an empty zone for origin with a default SOA.
func NewZone(origin string) *Zone {
	origin = dnswire.CanonicalName(origin)
	return &Zone{
		Origin: origin,
		SOA: dnswire.SOAData{
			MName: "ns1." + origin, RName: "hostmaster." + origin,
			Serial: 2013020601, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		},
		records: make(map[string][]dnswire.RR),
		dynamic: make(map[string]DynamicFunc),
	}
}

// contains reports whether name falls under the zone's origin.
func (z *Zone) contains(name string) bool {
	name = dnswire.CanonicalName(name)
	return name == z.Origin || strings.HasSuffix(name, "."+z.Origin)
}

// Add appends static records. Record names must be inside the zone.
func (z *Zone) Add(rrs ...dnswire.RR) error {
	z.mu.Lock()
	defer z.mu.Unlock()
	for _, r := range rrs {
		name := dnswire.CanonicalName(r.Name)
		if !z.contains(name) {
			return fmt.Errorf("dnssrv: %q outside zone %q", name, z.Origin)
		}
		r.Name = name
		if r.Class == 0 {
			r.Class = dnswire.ClassIN
		}
		z.records[name] = append(z.records[name], r)
	}
	return nil
}

// MustAdd is Add that panics on error; for generator code.
func (z *Zone) MustAdd(rrs ...dnswire.RR) {
	if err := z.Add(rrs...); err != nil {
		panic(err)
	}
}

// SetDynamic installs fn as the answer source for name, overriding any
// static records.
func (z *Zone) SetDynamic(name string, fn DynamicFunc) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.dynamic[dnswire.CanonicalName(name)] = fn
}

// Remove deletes every record — static and dynamic — owned by name.
// Unknown names are a no-op. Streaming world generation uses it to
// return provider-zone entries (ELB rotations, CDN edge names, PaaS
// CNAMEs) once a released domain chunk no longer needs them.
func (z *Zone) Remove(name string) {
	z.mu.Lock()
	defer z.mu.Unlock()
	name = dnswire.CanonicalName(name)
	delete(z.records, name)
	delete(z.dynamic, name)
}

// Names returns all record owner names, sorted; dynamic names included.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	seen := make(map[string]bool, len(z.records)+len(z.dynamic))
	for n := range z.records {
		seen[n] = true
	}
	for n := range z.dynamic {
		seen[n] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// matches reports whether a record of type rt answers a query of type qt.
func matches(rt, qt dnswire.Type) bool {
	return qt == dnswire.TypeANY || rt == qt
}

// Lookup resolves (name, qtype) inside the zone, chasing CNAME chains
// that stay within the zone. found is false when the name does not exist
// at all (NXDOMAIN); an existing name with no records of the requested
// type yields found=true with empty answers (NODATA).
func (z *Zone) Lookup(src netaddr.IP, name string, qtype dnswire.Type) (answers []dnswire.RR, found bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	name = dnswire.CanonicalName(name)
	for hops := 0; hops < 8; hops++ {
		var rrs []dnswire.RR
		if fn, ok := z.dynamic[name]; ok {
			rrs = fn(src, qtype)
			found = true
		} else if static, ok := z.records[name]; ok {
			rrs = static
			found = true
		} else {
			if hops == 0 {
				return nil, false
			}
			return answers, true // chain left the zone's data
		}
		var cname *dnswire.RR
		matched := false
		for i := range rrs {
			r := rrs[i]
			if matches(r.Type, qtype) {
				answers = append(answers, r)
				matched = true
			}
			if r.Type == dnswire.TypeCNAME {
				cname = &rrs[i]
			}
		}
		if matched || cname == nil || qtype == dnswire.TypeCNAME {
			return answers, true
		}
		// Name exists only as an alias: emit the CNAME and chase it.
		answers = append(answers, *cname)
		target := dnswire.CanonicalName(cname.Target)
		if !z.contains(target) {
			return answers, true
		}
		name = target
	}
	return answers, true
}

// Transfer returns the full zone contents for AXFR: the SOA record,
// every static and dynamic record (dynamic ones evaluated for src), and
// the closing SOA, per RFC 5936 framing conventions.
func (z *Zone) Transfer(src netaddr.IP) []dnswire.RR {
	soa := dnswire.RR{Name: z.Origin, Type: dnswire.TypeSOA, Class: dnswire.ClassIN, TTL: 3600, SOA: z.SOA}
	out := []dnswire.RR{soa}
	for _, name := range z.Names() {
		z.mu.RLock()
		if fn, ok := z.dynamic[name]; ok {
			z.mu.RUnlock()
			out = append(out, fn(src, dnswire.TypeANY)...)
			continue
		}
		rrs := append([]dnswire.RR(nil), z.records[name]...)
		z.mu.RUnlock()
		out = append(out, rrs...)
	}
	return append(out, soa)
}
