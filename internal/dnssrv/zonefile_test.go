package dnssrv

import (
	"bytes"
	"strings"
	"testing"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
)

func sampleZone() *Zone {
	z := NewZone("example.com")
	z.MustAdd(
		dnswire.RR{Name: "example.com", Type: dnswire.TypeNS, TTL: 86400, Target: "ns1.example.com"},
		dnswire.RR{Name: "ns1.example.com", Type: dnswire.TypeA, TTL: 86400, IP: netaddr.MustParseIP("198.51.100.53")},
		dnswire.RR{Name: "www.example.com", Type: dnswire.TypeA, TTL: 300, IP: netaddr.MustParseIP("54.230.0.10")},
		dnswire.RR{Name: "www.example.com", Type: dnswire.TypeA, TTL: 300, IP: netaddr.MustParseIP("54.230.0.11")},
		dnswire.RR{Name: "m.example.com", Type: dnswire.TypeCNAME, TTL: 300, Target: "www.example.com"},
		dnswire.RR{Name: "_spf.example.com", Type: dnswire.TypeTXT, TTL: 60, Text: "v=spf1 include:x -all"},
	)
	return z
}

func TestZoneFileRoundTrip(t *testing.T) {
	z := sampleZone()
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ParseZone(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != "example.com" {
		t.Fatalf("origin = %q", got.Origin)
	}
	if got.SOA.Serial != z.SOA.Serial || got.SOA.MName != z.SOA.MName {
		t.Fatalf("SOA = %+v", got.SOA)
	}
	for _, name := range z.Names() {
		want, _ := z.Lookup(0, name, dnswire.TypeANY)
		have, found := got.Lookup(0, name, dnswire.TypeANY)
		if !found || len(have) != len(want) {
			t.Fatalf("%s: %d records, want %d", name, len(have), len(want))
		}
	}
	// Specific record contents survive.
	rrs, _ := got.Lookup(0, "_spf.example.com", dnswire.TypeTXT)
	if len(rrs) != 1 || rrs[0].Text != "v=spf1 include:x -all" {
		t.Fatalf("TXT: %+v", rrs)
	}
	rrs, _ = got.Lookup(0, "www.example.com", dnswire.TypeA)
	if len(rrs) != 2 {
		t.Fatalf("www A records: %d", len(rrs))
	}
}

func TestZoneFileMaterializesDynamic(t *testing.T) {
	z := sampleZone()
	z.SetDynamic("geo.example.com", func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
		return []dnswire.RR{{Name: "geo.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 30, IP: 7}}
	})
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "geo.example.com. 30 IN A 0.0.0.7") {
		t.Fatalf("dynamic record not materialized:\n%s", buf.String())
	}
}

func TestZoneFileCommentsAndBlanks(t *testing.T) {
	in := `
; a hand-written zone
$ORIGIN test.org
test.org. 3600 IN SOA ns1.test.org. hostmaster.test.org. 1 2 3 4 5
www.test.org. 300 IN A 10.0.0.1 ; trailing comment
`
	z, err := ParseZone(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != "test.org" || z.SOA.Serial != 1 {
		t.Fatalf("parsed %q SOA %+v", z.Origin, z.SOA)
	}
	rrs, found := z.Lookup(0, "www.test.org", dnswire.TypeA)
	if !found || rrs[0].IP != netaddr.MustParseIP("10.0.0.1") {
		t.Fatalf("www: %+v", rrs)
	}
}

func TestZoneFileErrors(t *testing.T) {
	cases := map[string]string{
		"record before origin": "www.x.com. 300 IN A 1.2.3.4\n",
		"bad ttl":              "$ORIGIN x.com\nwww.x.com. abc IN A 1.2.3.4\n",
		"bad class":            "$ORIGIN x.com\nwww.x.com. 300 CH A 1.2.3.4\n",
		"bad type":             "$ORIGIN x.com\nwww.x.com. 300 IN MX mail\n",
		"bad ip":               "$ORIGIN x.com\nwww.x.com. 300 IN A 999.2.3.4\n",
		"out of zone":          "$ORIGIN x.com\nwww.y.com. 300 IN A 1.2.3.4\n",
		"empty":                "; nothing\n",
	}
	for name, in := range cases {
		if _, err := ParseZone(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestZoneFileServableAfterParse(t *testing.T) {
	// A parsed zone behaves identically when served.
	var buf bytes.Buffer
	if _, err := sampleZone().WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	z, err := ParseZone(&buf)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(z)
	q := dnswire.NewQuery(1, "m.example.com", dnswire.TypeA)
	payload, _ := q.Pack()
	raw := srv.ServePacket(1, 2, payload)
	resp, err := dnswire.Unpack(raw)
	if err != nil {
		t.Fatal(err)
	}
	// CNAME chase: m -> www -> two A records.
	if len(resp.Answers) != 3 {
		t.Fatalf("answers: %+v", resp.Answers)
	}
}
