package dnssrv

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
)

// Zone-file serialization: a BIND-flavored subset covering exactly the
// record types the study uses. Lines are
//
//	name TTL IN TYPE rdata...
//
// with $ORIGIN declaring the zone origin and ';' starting comments.
// Dynamic records are materialized at write time (for a nil viewpoint
// they answer as an unspecified client would).

// WriteTo serializes the zone in textual form. Dynamic records are
// evaluated once from the given source address.
func (z *Zone) WriteTo(w io.Writer, src netaddr.IP) (int64, error) {
	var n int64
	count := func(m int, err error) error {
		n += int64(m)
		return err
	}
	if err := count(fmt.Fprintf(w, "$ORIGIN %s.\n", z.Origin)); err != nil {
		return n, err
	}
	soa := z.SOA
	if err := count(fmt.Fprintf(w, "%s. 3600 IN SOA %s. %s. %d %d %d %d %d\n",
		z.Origin, soa.MName, soa.RName, soa.Serial, soa.Refresh, soa.Retry, soa.Expire, soa.Minimum)); err != nil {
		return n, err
	}
	for _, name := range z.Names() {
		z.mu.RLock()
		var rrs []dnswire.RR
		if fn, ok := z.dynamic[name]; ok {
			rrs = fn(src, dnswire.TypeANY)
		} else {
			rrs = append(rrs, z.records[name]...)
		}
		z.mu.RUnlock()
		for _, rr := range rrs {
			line, err := formatRR(rr)
			if err != nil {
				return n, err
			}
			if err := count(fmt.Fprintln(w, line)); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

func formatRR(rr dnswire.RR) (string, error) {
	switch rr.Type {
	case dnswire.TypeA:
		return fmt.Sprintf("%s. %d IN A %s", rr.Name, rr.TTL, rr.IP), nil
	case dnswire.TypeNS:
		return fmt.Sprintf("%s. %d IN NS %s.", rr.Name, rr.TTL, rr.Target), nil
	case dnswire.TypeCNAME:
		return fmt.Sprintf("%s. %d IN CNAME %s.", rr.Name, rr.TTL, rr.Target), nil
	case dnswire.TypeTXT:
		return fmt.Sprintf("%s. %d IN TXT %q", rr.Name, rr.TTL, rr.Text), nil
	default:
		return "", fmt.Errorf("dnssrv: cannot serialize RR type %s", rr.Type)
	}
}

// ParseZone reads a zone file written by WriteTo (or hand-authored in
// the same subset). The returned zone has AllowAXFR unset.
func ParseZone(r io.Reader) (*Zone, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var z *Zone
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "$ORIGIN") {
			origin := strings.TrimSpace(strings.TrimPrefix(line, "$ORIGIN"))
			z = NewZone(origin)
			continue
		}
		if z == nil {
			return nil, fmt.Errorf("dnssrv: line %d: record before $ORIGIN", lineNo)
		}
		rr, isSOA, err := parseRRLine(line)
		if err != nil {
			return nil, fmt.Errorf("dnssrv: line %d: %v", lineNo, err)
		}
		if isSOA {
			z.SOA = rr.SOA
			continue
		}
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("dnssrv: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if z == nil {
		return nil, fmt.Errorf("dnssrv: empty zone file")
	}
	return z, nil
}

func parseRRLine(line string) (rr dnswire.RR, isSOA bool, err error) {
	fields := strings.Fields(line)
	if len(fields) < 5 {
		return rr, false, fmt.Errorf("short record %q", line)
	}
	rr.Name = dnswire.CanonicalName(fields[0])
	ttl, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return rr, false, fmt.Errorf("bad TTL %q", fields[1])
	}
	rr.TTL = uint32(ttl)
	if fields[2] != "IN" {
		return rr, false, fmt.Errorf("unsupported class %q", fields[2])
	}
	rr.Class = dnswire.ClassIN
	switch fields[3] {
	case "A":
		ip, err := netaddr.ParseIP(fields[4])
		if err != nil {
			return rr, false, err
		}
		rr.Type, rr.IP = dnswire.TypeA, ip
	case "NS":
		rr.Type, rr.Target = dnswire.TypeNS, dnswire.CanonicalName(fields[4])
	case "CNAME":
		rr.Type, rr.Target = dnswire.TypeCNAME, dnswire.CanonicalName(fields[4])
	case "TXT":
		text := strings.TrimSpace(strings.Join(fields[4:], " "))
		unq, uerr := strconv.Unquote(text)
		if uerr != nil {
			return rr, false, fmt.Errorf("bad TXT %q", text)
		}
		rr.Type, rr.Text = dnswire.TypeTXT, unq
	case "SOA":
		if len(fields) < 11 {
			return rr, false, fmt.Errorf("short SOA")
		}
		rr.Type = dnswire.TypeSOA
		rr.SOA.MName = dnswire.CanonicalName(fields[4])
		rr.SOA.RName = dnswire.CanonicalName(fields[5])
		vals := make([]uint32, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(fields[6+i], 10, 32)
			if err != nil {
				return rr, false, fmt.Errorf("bad SOA field %q", fields[6+i])
			}
			vals[i] = uint32(v)
		}
		rr.SOA.Serial, rr.SOA.Refresh, rr.SOA.Retry, rr.SOA.Expire, rr.SOA.Minimum =
			vals[0], vals[1], vals[2], vals[3], vals[4]
		return rr, true, nil
	default:
		return rr, false, fmt.Errorf("unsupported type %q", fields[3])
	}
	return rr, false, nil
}
