package parallel

import (
	"errors"
	"fmt"
	"testing"
)

// FuzzMergeShards drives MapShards through random (n, shardSize,
// workers, failShard) combinations — including empty shards,
// single-item inputs, and a worker panicking mid-shard — and asserts
// the two invariants the pipeline depends on: merged output is exactly
// the input order, and a failure is always reported as the
// lowest-indexed failing shard regardless of scheduling.
func FuzzMergeShards(f *testing.F) {
	f.Add(0, 0, 0, -1)      // empty input
	f.Add(1, 0, 4, -1)      // single item
	f.Add(100, 1, 8, -1)    // one item per shard
	f.Add(100, 1000, 4, -1) // one shard holds everything
	f.Add(257, 16, 3, 5)    // panic mid-run
	f.Add(64, 7, 2, 0)      // panic in the first shard
	f.Fuzz(func(t *testing.T, n, shardSize, workers, failShard int) {
		if n < 0 || n > 5000 || shardSize > 10000 || workers < 0 || workers > 32 {
			t.Skip()
		}
		shards := Shards(n, shardSize)
		opt := Options{Workers: workers, ShardSize: shardSize}
		got, err := MapShards(opt, n, func(sh Shard) ([]int, error) {
			if sh.Index == failShard {
				panic(fmt.Sprintf("fuzz shard %d", sh.Index))
			}
			out := make([]int, 0, sh.Len())
			for i := sh.Lo; i < sh.Hi; i++ {
				out = append(out, i)
			}
			return out, nil
		})

		if failShard >= 0 && failShard < len(shards) {
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("n=%d size=%d workers=%d: got err %v, want *PanicError", n, shardSize, workers, err)
			}
			// The reported shard must be the lowest-indexed failure;
			// with a single failing shard that is failShard itself.
			if pe.Shard.Index != failShard {
				t.Fatalf("reported shard %d, want %d", pe.Shard.Index, failShard)
			}
			if got != nil {
				t.Fatalf("failed run returned results: %v", got)
			}
			return
		}
		if err != nil {
			t.Fatalf("n=%d size=%d workers=%d: %v", n, shardSize, workers, err)
		}
		if len(got) != n {
			t.Fatalf("merged %d items, want %d", len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("merged[%d] = %d: order broken", i, v)
			}
		}
	})
}
