package parallel_test

import (
	"fmt"
	"runtime"
	"testing"

	"cloudscope/internal/parallel"
	"cloudscope/internal/telemetry"
)

// TestCompletenessInvariantUnderWorkers drives telemetry.Completeness
// from inside parallel.Run at the worker counts the matrix sweeps and
// demands byte-identical reports: the accounting is a commutative
// multiset, so scheduling order must not show through in Report or
// Snapshot output.
func TestCompletenessInvariantUnderWorkers(t *testing.T) {
	const items = 1000

	build := func(workers int) *telemetry.Completeness {
		comp := telemetry.NewCompleteness()
		err := parallel.Run(parallel.Options{Workers: workers}, items, func(sh parallel.Shard) error {
			for i := sh.Lo; i < sh.Hi; i++ {
				stage := fmt.Sprintf("stage-%d", i%3)
				vantage := fmt.Sprintf("vantage-%02d", i%7)
				c := telemetry.Counts{Attempted: 1, Succeeded: 1}
				if i%11 == 0 {
					c.Retried, c.Succeeded = 1, 0
				}
				if i%13 == 0 {
					c.Abandoned = 1
				}
				comp.Merge(stage, vantage, c)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return comp
	}

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	baseline := build(workerCounts[0])
	baseReport := baseline.Report()
	if baseReport == "" {
		t.Fatal("baseline report is empty")
	}
	baseSnap := fmt.Sprintf("%+v", baseline.Snapshot())
	for _, w := range workerCounts[1:] {
		comp := build(w)
		if got := comp.Report(); got != baseReport {
			t.Errorf("Report at workers=%d diverges from workers=1:\n--- workers=1 ---\n%s--- workers=%d ---\n%s", w, baseReport, w, got)
		}
		if got := fmt.Sprintf("%+v", comp.Snapshot()); got != baseSnap {
			t.Errorf("Snapshot at workers=%d diverges from workers=1", w)
		}
	}

	// Sanity on the totals themselves: every item accounted exactly once.
	for s := 0; s < 3; s++ {
		c, ok := baseline.Stage(fmt.Sprintf("stage-%d", s))
		if !ok {
			t.Fatalf("stage-%d missing", s)
		}
		if c.Attempted == 0 || c.Attempted != c.Succeeded+c.Retried {
			t.Fatalf("stage-%d counts inconsistent: %+v", s, c)
		}
	}
}
