// Package parallel is cloudscope's deterministic fan-out layer: a
// bounded worker pool that shards an input range, runs the shards on
// GOMAXPROCS workers (or any explicit count), and merges results in
// input order.
//
// The central contract is that parallelism never changes results. The
// shard layout is a pure function of the input size — never of the
// worker count or the machine — so a stage that derives one xrand
// sub-stream per shard produces bit-identical output whether it runs
// on one goroutine or sixteen. Workers=1 runs the same shards inline
// on the calling goroutine: the exact legacy sequential path, with no
// channels or goroutines involved.
//
// Run propagates the first error by shard order, converts worker
// panics into *PanicError (with the worker's stack), and honors
// context cancellation between shards. MapShards and Map layer
// ordered result collection on top.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"cloudscope/internal/telemetry"
)

// Options configures a parallel stage. The zero value runs with
// GOMAXPROCS workers, the default shard layout, no metrics, and no
// cancellation — the right call for library code that is handed no
// policy.
type Options struct {
	// Workers is the number of concurrent workers: 0 means
	// GOMAXPROCS, 1 runs every shard inline on the caller's
	// goroutine (the exact sequential path), n > 1 uses a pool.
	Workers int
	// ShardSize overrides the shard granularity. 0 picks a default
	// that depends only on the input size, keeping shard layouts —
	// and therefore per-shard random streams — machine-independent.
	ShardSize int
	// Metrics, when non-nil, receives per-stage worker/shard gauges
	// and queue-wait observations.
	Metrics *Metrics
	// Ctx, when non-nil, cancels the stage between shards.
	Ctx context.Context
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Shard is a half-open slice [Lo, Hi) of the input, with its position
// in the deterministic layout. Stages derive per-shard random streams
// from Index, which depends only on the input size.
type Shard struct {
	Index int
	Lo    int
	Hi    int
}

// Len returns the number of items in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// DefaultShardSize returns the shard granularity used when Options
// leaves ShardSize zero: input split into at most 64 shards, but
// never shards smaller than 16 items. It is a pure function of n so
// the layout (and any per-shard random stream) is identical on every
// machine and at every worker count.
func DefaultShardSize(n int) int {
	size := (n + 63) / 64
	if size < 16 {
		size = 16
	}
	return size
}

// Shards computes the deterministic layout for n items. shardSize <= 0
// selects DefaultShardSize(n).
func Shards(n, shardSize int) []Shard {
	return ShardsAt(0, n, shardSize)
}

// ShardsAt computes the layout for the n items [base, base+n): shard
// Lo/Hi are global indices, while Index and the shard boundaries are
// the same pure function of n as Shards. Chunked stages use it so a
// chunk's items keep their global positions (rank-indexed resolver
// assignment, phase computation) regardless of how the stream was cut
// into chunks.
func ShardsAt(base, n, shardSize int) []Shard {
	if n <= 0 {
		return nil
	}
	if shardSize <= 0 {
		shardSize = DefaultShardSize(n)
	}
	shards := make([]Shard, 0, (n+shardSize-1)/shardSize)
	for lo := 0; lo < n; lo += shardSize {
		hi := lo + shardSize
		if hi > n {
			hi = n
		}
		shards = append(shards, Shard{Index: len(shards), Lo: base + lo, Hi: base + hi})
	}
	return shards
}

// PanicError wraps a panic recovered from a worker, carrying the shard
// it died in and the worker's stack trace.
type PanicError struct {
	Shard Shard
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in shard %d [%d,%d): %v", e.Shard.Index, e.Shard.Lo, e.Shard.Hi, e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As, so a nested
// stage's re-raised cancellation still matches context.Canceled.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run shards [0, n) and executes fn once per shard. With one worker
// the shards run inline in order; otherwise they are queued in order
// to a bounded pool. Run returns the error (or captured panic) from
// the lowest-indexed failing shard, so the reported failure does not
// depend on scheduling. Remaining shards are abandoned after the
// first failure or when opt.Ctx is cancelled.
func Run(opt Options, n int, fn func(Shard) error) error {
	return RunAt(opt, 0, n, fn)
}

// RunAt is Run over the global index range [base, base+n): the shard
// layout is the same pure function of n as Run's, but each shard's
// Lo/Hi carry the global offset. It is the chunk-granular entry point
// for streaming stages that process a window of a larger logical input.
func RunAt(opt Options, base, n int, fn func(Shard) error) error {
	shards := ShardsAt(base, n, opt.ShardSize)
	workers := opt.workers()
	if workers > len(shards) {
		workers = len(shards)
	}
	opt.Metrics.observeStart(workers, len(shards))
	if len(shards) == 0 {
		return ctxErr(opt.Ctx)
	}

	if workers <= 1 {
		for _, sh := range shards {
			if err := ctxErr(opt.Ctx); err != nil {
				return err
			}
			if err := runShard(sh, fn); err != nil {
				return err
			}
		}
		return nil
	}

	type job struct {
		shard    Shard
		enqueued time.Time
	}
	var (
		jobs = make(chan job)
		stop = make(chan struct{}) // closed on first failure or cancel
		once sync.Once
		wg   sync.WaitGroup

		mu       sync.Mutex
		firstErr error
		errShard = len(shards) // shard index of firstErr
	)
	fail := func(sh Shard, err error) {
		mu.Lock()
		if sh.Index < errShard {
			firstErr, errShard = err, sh.Index
		}
		mu.Unlock()
		once.Do(func() { close(stop) })
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				opt.Metrics.observeQueueWait(time.Since(j.enqueued))
				if err := runShard(j.shard, fn); err != nil {
					fail(j.shard, err)
				}
			}
		}()
	}

	var done <-chan struct{}
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}
feed:
	for _, sh := range shards {
		select {
		case jobs <- job{shard: sh, enqueued: time.Now()}:
		case <-stop:
			break feed
		case <-done:
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctxErr(opt.Ctx)
}

// runShard executes fn on one shard, converting a panic into a
// *PanicError that carries the worker's stack.
func runShard(sh Shard, fn func(Shard) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Shard: sh, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(sh)
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// MapShards runs fn once per shard of [0, n) and concatenates the
// per-shard slices in shard order. Each shard's result lands in its
// layout position, so output order is independent of scheduling.
func MapShards[R any](opt Options, n int, fn func(Shard) ([]R, error)) ([]R, error) {
	shards := Shards(n, opt.ShardSize)
	outs := make([][]R, len(shards))
	err := Run(opt, n, func(sh Shard) error {
		rs, err := fn(sh)
		if err != nil {
			return err
		}
		outs[sh.Index] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, rs := range outs {
		total += len(rs)
	}
	merged := make([]R, 0, total)
	for _, rs := range outs {
		merged = append(merged, rs...)
	}
	return merged, nil
}

// Map applies fn to every item of in, preserving input order. Workers
// write disjoint index ranges of the output, so no merge is needed.
func Map[T, R any](opt Options, in []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	err := Run(opt, len(in), func(sh Shard) error {
		for i := sh.Lo; i < sh.Hi; i++ {
			r, err := fn(i, in[i])
			if err != nil {
				return err
			}
			out[i] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueueWaitBucketsMs suits shard queue waits: sub-microsecond handoffs
// on an idle pool up to tens of milliseconds behind a long stage.
var QueueWaitBucketsMs = []float64{0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50}

// Metrics reports a stage's fan-out shape into a telemetry registry
// and, when a tracer is attached, into whatever stage span covers the
// run. A nil *Metrics (and nil instruments inside) is a no-op,
// matching the registry's conventions.
type Metrics struct {
	Workers     *telemetry.Gauge     // workers used by the last run
	Shards      *telemetry.Gauge     // shards in the last run's layout
	QueueWaitMs *telemetry.Histogram // per-shard wait from enqueue to pickup
	// Tracer, when non-nil, charges the pool's fan-out shape to the
	// innermost open span as span stats: par.workers (max across runs),
	// par.runs and par.shards (accumulated), and par.queue_wait_ms
	// (total shard queue delay). The stats ride into the flame summary
	// and the Chrome trace export.
	Tracer *telemetry.Tracer
}

// NewMetrics registers the stage's instruments as
// parallel.<stage>.{workers,shards,queue_wait_ms}. A nil registry
// yields nil Metrics.
func NewMetrics(r *telemetry.Registry, stage string) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Workers:     r.Gauge("parallel." + stage + ".workers"),
		Shards:      r.Gauge("parallel." + stage + ".shards"),
		QueueWaitMs: r.Histogram("parallel."+stage+".queue_wait_ms", QueueWaitBucketsMs),
	}
}

// WithSpans attaches a tracer so the pool's runs feed span stats; it
// returns m for call chaining and is nil-safe on both sides.
func (m *Metrics) WithSpans(tr *telemetry.Tracer) *Metrics {
	if m == nil {
		return nil
	}
	m.Tracer = tr
	return m
}

func (m *Metrics) observeStart(workers, shards int) {
	if m == nil {
		return
	}
	m.Workers.Set(int64(workers))
	m.Shards.Set(int64(shards))
	if sp := m.Tracer.Current(); sp != nil {
		sp.MaxStat("par.workers", float64(workers))
		sp.AddStat("par.runs", 1)
		sp.AddStat("par.shards", float64(shards))
	}
}

func (m *Metrics) observeQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.QueueWaitMs.Observe(float64(d) / float64(time.Millisecond))
	m.Tracer.Current().AddStat("par.queue_wait_ms", float64(d)/float64(time.Millisecond))
}
