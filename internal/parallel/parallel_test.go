package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"cloudscope/internal/telemetry"
	"cloudscope/internal/xrand"
)

func TestShardsLayout(t *testing.T) {
	cases := []struct {
		n, size    int
		wantShards int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{16, 0, 1},
		{17, 0, 2},    // default size 16 for small n
		{1024, 0, 64}, // 1024/64 = 16 per shard
		{1025, 0, 61}, // ceil(1025/64)=17 per shard -> ceil(1025/17)
		{100, 7, 15},
		{100, 100, 1},
		{100, 1000, 1},
	}
	for _, c := range cases {
		shards := Shards(c.n, c.size)
		if len(shards) != c.wantShards {
			t.Errorf("Shards(%d, %d): got %d shards, want %d", c.n, c.size, len(shards), c.wantShards)
		}
		// Layout must tile [0, n) exactly, in order.
		next := 0
		for i, sh := range shards {
			if sh.Index != i {
				t.Errorf("Shards(%d, %d)[%d].Index = %d", c.n, c.size, i, sh.Index)
			}
			if sh.Lo != next || sh.Hi <= sh.Lo || sh.Hi > c.n {
				t.Errorf("Shards(%d, %d)[%d] = [%d,%d), want lo=%d", c.n, c.size, i, sh.Lo, sh.Hi, next)
			}
			next = sh.Hi
		}
		if len(shards) > 0 && next != c.n {
			t.Errorf("Shards(%d, %d) covers [0,%d), want [0,%d)", c.n, c.size, next, c.n)
		}
	}
}

// TestShardsIndependentOfWorkers is the determinism keystone: the
// layout must not consult the worker count or GOMAXPROCS.
func TestShardsIndependentOfWorkers(t *testing.T) {
	ref := Shards(5000, 0)
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	got := Shards(5000, 0)
	if len(got) != len(ref) {
		t.Fatalf("shard layout changed with GOMAXPROCS: %d vs %d shards", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("shard %d changed with GOMAXPROCS: %+v vs %+v", i, got[i], ref[i])
		}
	}
}

func TestMapOrderAndDeterminism(t *testing.T) {
	const n = 3000
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	fn := func(i int, v int) (int, error) { return v * v, nil }

	var ref []int
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		got, err := Map(Options{Workers: workers}, in, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		if ref == nil {
			ref = got
			for i, v := range got {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestPerShardStreams exercises the intended stage pattern: one xrand
// stream per shard, derived from shard index. Output must not depend
// on worker count.
func TestPerShardStreams(t *testing.T) {
	const n, seed = 2000, 42
	run := func(workers int) []float64 {
		out := make([]float64, n)
		err := Run(Options{Workers: workers, ShardSize: 64}, n, func(sh Shard) error {
			rng := xrand.SplitSeeded(seed, fmt.Sprintf("stage/shard%d", sh.Index))
			for i := sh.Lo; i < sh.Hi; i++ {
				out[i] = rng.Float64()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestMapShardsConcatOrder(t *testing.T) {
	// Shards emit variable-length slices; concat must follow layout order.
	got, err := MapShards(Options{Workers: 4, ShardSize: 10}, 95, func(sh Shard) ([]int, error) {
		var rs []int
		for i := sh.Lo; i < sh.Hi; i++ {
			if i%3 == 0 { // uneven per-shard lengths
				rs = append(rs, i)
			}
		}
		return rs, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range got {
		if v != want {
			t.Fatalf("merged order broken: got %d, want %d", v, want)
		}
		want += 3
	}
	if want != 96 {
		t.Fatalf("merged %d items, want 32", len(got))
	}
}

func TestErrorPropagation(t *testing.T) {
	sentinel := errors.New("shard 3 failed")
	err := Run(Options{Workers: 4, ShardSize: 10}, 100, func(sh Shard) error {
		if sh.Index >= 3 {
			return fmt.Errorf("shard %d failed", sh.Index)
		}
		return nil
	})
	if err == nil || err.Error() != sentinel.Error() {
		t.Fatalf("got %v, want lowest-indexed failure %q", err, sentinel)
	}
	// Same failure must be reported at Workers=1.
	err = Run(Options{Workers: 1, ShardSize: 10}, 100, func(sh Shard) error {
		if sh.Index >= 3 {
			return fmt.Errorf("shard %d failed", sh.Index)
		}
		return nil
	})
	if err == nil || err.Error() != sentinel.Error() {
		t.Fatalf("workers=1: got %v, want %q", err, sentinel)
	}
}

func TestPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Run(Options{Workers: workers, ShardSize: 8}, 64, func(sh Shard) error {
			if sh.Index == 2 {
				panic("boom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v, want *PanicError", workers, err)
		}
		if pe.Shard.Index != 2 || pe.Value != "boom" {
			t.Fatalf("workers=%d: PanicError = %+v", workers, pe)
		}
		if !strings.Contains(string(pe.Stack), "goroutine") {
			t.Fatalf("workers=%d: PanicError has no stack", workers)
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Fatalf("workers=%d: Error() = %q", workers, pe.Error())
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Run(Options{Workers: 2, ShardSize: 1, Ctx: ctx}, 10000, func(sh Shard) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatalf("cancellation did not stop the feed: %d shards ran", n)
	}

	// Pre-cancelled context: nothing runs, even at Workers=1.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	var ran2 atomic.Int64
	err = Run(Options{Workers: 1, Ctx: ctx2}, 100, func(Shard) error { ran2.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran2.Load() != 0 {
		t.Fatalf("pre-cancelled context ran %d shards", ran2.Load())
	}
}

func TestMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg, "teststage")
	err := Run(Options{Workers: 4, ShardSize: 10, Metrics: m}, 100, func(Shard) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("parallel.teststage.workers").Value(); got != 4 {
		t.Errorf("workers gauge = %d, want 4", got)
	}
	if got := reg.Gauge("parallel.teststage.shards").Value(); got != 10 {
		t.Errorf("shards gauge = %d, want 10", got)
	}
	if got := reg.Histogram("parallel.teststage.queue_wait_ms", QueueWaitBucketsMs).Count(); got != 10 {
		t.Errorf("queue-wait observations = %d, want 10", got)
	}

	// Nil registry and nil metrics are no-ops.
	if NewMetrics(nil, "x") != nil {
		t.Error("NewMetrics(nil) != nil")
	}
	if err := Run(Options{Workers: 2, Metrics: nil}, 50, func(Shard) error { return nil }); err != nil {
		t.Errorf("nil metrics run: %v", err)
	}
}

func TestEmptyAndSingleInput(t *testing.T) {
	if err := Run(Options{}, 0, func(Shard) error { t.Fatal("fn called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
	got, err := Map(Options{}, []int{7}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 8 {
		t.Fatalf("single-item Map = %v, %v", got, err)
	}
	got2, err := MapShards(Options{}, 0, func(Shard) ([]int, error) { return []int{1}, nil })
	if err != nil || len(got2) != 0 {
		t.Fatalf("empty MapShards = %v, %v", got2, err)
	}
}

// TestStressShardBoundaries forces shard-boundary interleavings with
// tiny shards and many workers; run under -race -count=5 by `make
// check`. Every worker writes its own disjoint output range, so the
// race detector stays quiet iff sharding really partitions the input.
func TestStressShardBoundaries(t *testing.T) {
	const n = 5000
	out := make([]int64, n)
	var calls atomic.Int64
	err := Run(Options{Workers: 16, ShardSize: 3}, n, func(sh Shard) error {
		calls.Add(1)
		for i := sh.Lo; i < sh.Hi; i++ {
			out[i] = int64(i) * 7
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64((n + 2) / 3); calls.Load() != want {
		t.Fatalf("ran %d shards, want %d", calls.Load(), want)
	}
	for i, v := range out {
		if v != int64(i)*7 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
