package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseIPRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.0.1"} {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if ip.String() != s {
			t.Fatalf("round trip %q -> %q", s, ip.String())
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "-1.2.3.4", "a.b.c.d", "1.2.3.04", "1..2.3"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded", s)
		}
	}
}

func TestParseIPRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		got, err := ParseIP(ip.String())
		return err == nil && got == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOctets(t *testing.T) {
	ip := MustParseIP("1.2.3.4")
	if o := ip.Octets(); o != [4]byte{1, 2, 3, 4} {
		t.Fatalf("Octets = %v", o)
	}
}

func TestPrefix(t *testing.T) {
	ip := MustParseIP("10.20.30.40")
	if got := ip.Prefix(16); got != MustParseIP("10.20.0.0") {
		t.Fatalf("/16 = %v", got)
	}
	if got := ip.Prefix(8); got != MustParseIP("10.0.0.0") {
		t.Fatalf("/8 = %v", got)
	}
	if got := ip.Prefix(32); got != ip {
		t.Fatalf("/32 = %v", got)
	}
	if got := ip.Prefix(0); got != 0 {
		t.Fatalf("/0 = %v", got)
	}
}

func TestCIDRParse(t *testing.T) {
	c := MustParseCIDR("10.1.2.3/16")
	if c.Base != MustParseIP("10.1.0.0") || c.Bits != 16 {
		t.Fatalf("parsed %+v", c)
	}
	if c.String() != "10.1.0.0/16" {
		t.Fatalf("String = %q", c.String())
	}
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8"} {
		if _, err := ParseCIDR(s); err == nil {
			t.Errorf("ParseCIDR(%q) succeeded", s)
		}
	}
}

func TestCIDRContains(t *testing.T) {
	c := MustParseCIDR("192.168.4.0/22")
	for _, in := range []string{"192.168.4.0", "192.168.5.77", "192.168.7.255"} {
		if !c.Contains(MustParseIP(in)) {
			t.Errorf("%s not in %s", in, c)
		}
	}
	for _, out := range []string{"192.168.3.255", "192.168.8.0", "10.0.0.1"} {
		if c.Contains(MustParseIP(out)) {
			t.Errorf("%s in %s", out, c)
		}
	}
}

func TestCIDRFirstLastSize(t *testing.T) {
	c := MustParseCIDR("10.0.0.0/24")
	if c.First() != MustParseIP("10.0.0.0") || c.Last() != MustParseIP("10.0.0.255") {
		t.Fatalf("bounds %v..%v", c.First(), c.Last())
	}
	if c.Size() != 256 {
		t.Fatalf("Size = %d", c.Size())
	}
	host := MustParseCIDR("1.2.3.4/32")
	if host.First() != host.Last() || host.Size() != 1 {
		t.Fatal("/32 bounds wrong")
	}
}

func TestCIDRNth(t *testing.T) {
	c := MustParseCIDR("10.0.0.0/30")
	if c.Nth(3) != MustParseIP("10.0.0.3") {
		t.Fatalf("Nth(3) = %v", c.Nth(3))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Nth out of range did not panic")
		}
	}()
	c.Nth(4)
}

func TestSetMembership(t *testing.T) {
	s := NewSet([]CIDR{
		MustParseCIDR("10.0.0.0/16"),
		MustParseCIDR("10.1.0.0/16"), // adjacent, should merge
		MustParseCIDR("172.16.0.0/12"),
		MustParseCIDR("10.0.128.0/24"), // contained
	})
	if s.Len() != 2 {
		t.Fatalf("intervals = %d, want 2 after merge", s.Len())
	}
	for _, in := range []string{"10.0.0.1", "10.1.255.255", "172.31.9.9"} {
		if !s.Contains(MustParseIP(in)) {
			t.Errorf("%s should be in set", in)
		}
	}
	for _, out := range []string{"10.2.0.0", "9.255.255.255", "172.32.0.0", "0.0.0.0"} {
		if s.Contains(MustParseIP(out)) {
			t.Errorf("%s should not be in set", out)
		}
	}
}

func TestSetSize(t *testing.T) {
	s := NewSet([]CIDR{MustParseCIDR("10.0.0.0/24"), MustParseCIDR("10.0.1.0/24")})
	if s.Size() != 512 {
		t.Fatalf("Size = %d", s.Size())
	}
}

func TestSetEmpty(t *testing.T) {
	s := NewSet(nil)
	if s.Contains(MustParseIP("1.2.3.4")) || s.Len() != 0 || s.Size() != 0 {
		t.Fatal("empty set misbehaves")
	}
}

func TestSetMatchesCIDRProperty(t *testing.T) {
	// Property: a Set of one CIDR agrees with CIDR.Contains everywhere.
	f := func(base uint32, bits uint8, probe uint32) bool {
		c := CIDR{Base: IP(base).Prefix(int(bits % 33)), Bits: int(bits % 33)}
		s := NewSet([]CIDR{c})
		return s.Contains(IP(probe)) == c.Contains(IP(probe))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
