// Package netaddr implements the small amount of IPv4 arithmetic the
// cloud models and classifiers need: compact 32-bit addresses, CIDR
// prefixes, and sorted prefix sets with binary-search membership.
//
// The standard library's net.IP is a byte slice, which is costly as a
// map key and awkward to do arithmetic on; measurement datasets hold
// millions of addresses, so we use uint32 throughout and convert at the
// edges.
package netaddr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// ParseIP parses dotted-quad notation. It returns an error for anything
// that is not exactly four octets in [0, 255].
func ParseIP(s string) (IP, error) {
	var ip uint32
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netaddr: bad IP %q", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		if part == "" || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("netaddr: bad IP %q", s)
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("netaddr: bad IP %q", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return IP(ip), nil
}

// MustParseIP is ParseIP that panics on error; for tests and constants.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String returns dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Octets returns the four octets most-significant first.
func (ip IP) Octets() [4]byte {
	return [4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// Prefix returns the address truncated to the first bits bits, e.g.
// ip.Prefix(16) is the /16 network containing ip.
func (ip IP) Prefix(bits int) IP {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ip
	}
	return ip &^ (1<<(32-uint(bits)) - 1)
}

// CIDR is an IPv4 prefix.
type CIDR struct {
	Base IP
	Bits int
}

// ParseCIDR parses "a.b.c.d/n". The base address is truncated to the
// prefix length.
func ParseCIDR(s string) (CIDR, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return CIDR{}, fmt.Errorf("netaddr: bad CIDR %q", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return CIDR{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return CIDR{}, fmt.Errorf("netaddr: bad CIDR %q", s)
	}
	return CIDR{Base: ip.Prefix(bits), Bits: bits}, nil
}

// MustParseCIDR is ParseCIDR that panics on error.
func MustParseCIDR(s string) CIDR {
	c, err := ParseCIDR(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String returns "a.b.c.d/n".
func (c CIDR) String() string { return fmt.Sprintf("%s/%d", c.Base, c.Bits) }

// Contains reports whether ip is inside the prefix.
func (c CIDR) Contains(ip IP) bool { return ip.Prefix(c.Bits) == c.Base }

// First returns the first address of the prefix.
func (c CIDR) First() IP { return c.Base }

// Last returns the last address of the prefix.
func (c CIDR) Last() IP {
	if c.Bits >= 32 {
		return c.Base
	}
	return c.Base | IP(1<<(32-uint(c.Bits))-1)
}

// Size returns the number of addresses in the prefix.
func (c CIDR) Size() uint64 { return 1 << (32 - uint(c.Bits)) }

// Nth returns the n-th address of the prefix (0-based). It panics if n
// is out of range.
func (c CIDR) Nth(n uint64) IP {
	if n >= c.Size() {
		panic("netaddr: Nth out of range")
	}
	return c.Base + IP(n)
}

// Set is an immutable collection of CIDR prefixes supporting O(log n)
// membership tests. Build with NewSet; overlapping prefixes are allowed.
type Set struct {
	// ranges kept as disjoint, sorted [first, last] intervals.
	first []IP
	last  []IP
}

// NewSet builds a Set from prefixes, merging overlaps and adjacency.
func NewSet(prefixes []CIDR) *Set {
	type iv struct{ f, l IP }
	ivs := make([]iv, 0, len(prefixes))
	for _, p := range prefixes {
		ivs = append(ivs, iv{p.First(), p.Last()})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].f < ivs[j].f })
	s := &Set{}
	for _, v := range ivs {
		n := len(s.first)
		if n > 0 && uint64(v.f) <= uint64(s.last[n-1])+1 {
			if v.l > s.last[n-1] {
				s.last[n-1] = v.l
			}
			continue
		}
		s.first = append(s.first, v.f)
		s.last = append(s.last, v.l)
	}
	return s
}

// Contains reports whether ip is in any prefix of the set.
func (s *Set) Contains(ip IP) bool {
	i := sort.Search(len(s.first), func(i int) bool { return s.first[i] > ip })
	return i > 0 && ip <= s.last[i-1]
}

// Len returns the number of disjoint intervals in the set.
func (s *Set) Len() int { return len(s.first) }

// Size returns the total number of addresses covered.
func (s *Set) Size() uint64 {
	var n uint64
	for i := range s.first {
		n += uint64(s.last[i]) - uint64(s.first[i]) + 1
	}
	return n
}
