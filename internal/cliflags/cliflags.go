// Package cliflags registers the measurement flags every cloudscope
// command shares, so -workers, -chaos, -telemetry[-json], the
// fault-trace flags, and the profiling flags (-cpuprofile,
// -memprofile, -trace-out, -runtime-sample) have one name, one help
// string, and one meaning across all seven binaries instead of seven
// drifting copies.
//
// Usage from a main:
//
//	shared := cliflags.Register(flag.CommandLine)
//	flag.Parse()
//	cfg := cloudscope.Config{Seed: *seed, Domains: *domains}
//	if err := shared.Apply(&cfg); err != nil { ... }
//	study := cloudscope.NewStudy(cfg)
//	if err := shared.Start(study.Telemetry()); err != nil { ... }
//	... run ...
//	if err := shared.Finish(os.Stdout, study); err != nil { ... }
//
// Apply validates flag combinations and fills the Config fields the
// shared flags control; Start arms the run-scoped observability (the
// pprof CPU profile and the runtime sampler); Finish handles the
// post-run obligations (writing the recorded fault trace, printing the
// telemetry report, dumping telemetry JSON, writing the Chrome trace
// and the pprof profiles). Commands that run no study (traceanalyze)
// call Start(nil) and FinishProfiles instead of Finish.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cloudscope"
	"cloudscope/internal/chaos"
	"cloudscope/internal/chaos/trace"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/telemetry/runtimeprof"
)

// Set holds the parsed values of the shared measurement flags.
type Set struct {
	Workers       int
	Chaos         string
	Telemetry     bool
	TelemetryJSON string
	ChaosRecord   string
	ChaosReplay   string
	CPUProfile    string
	MemProfile    string
	TraceOut      string
	RuntimeSample time.Duration

	// Run-scoped observability state armed by Start and released by
	// Finish/FinishProfiles.
	cpuFile *os.File
	sampler *runtimeprof.Sampler
}

// Register installs the shared flags on fs (flag.CommandLine from a
// main) and returns the Set their values parse into.
func Register(fs *flag.FlagSet) *Set {
	s := &Set{}
	fs.IntVar(&s.Workers, "workers", 0,
		"worker bound for every parallel stage (0 = GOMAXPROCS, 1 = sequential; results identical)")
	fs.StringVar(&s.Chaos, "chaos", "",
		"fault scenario: a library name ("+strings.Join(chaos.Library(), ", ")+
			") or an inline spec like 'loss,p=0.05;servfail,p=0.3,window=0.3-0.7'")
	fs.BoolVar(&s.Telemetry, "telemetry", false,
		"print the study's metric and span report after the run")
	fs.StringVar(&s.TelemetryJSON, "telemetry-json", "",
		"write the telemetry dump as JSON to this file (- for stdout)")
	fs.StringVar(&s.ChaosRecord, "chaos-record", "",
		"write this run's fault trace to this file for later -chaos-replay (requires -chaos)")
	fs.StringVar(&s.ChaosReplay, "chaos-replay", "",
		"re-inject the fault trace recorded in this file instead of drawing faults (excludes -chaos)")
	fs.StringVar(&s.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the whole run to this file")
	fs.StringVar(&s.MemProfile, "memprofile", "",
		"write a pprof heap profile (after a final GC) to this file at exit")
	fs.StringVar(&s.TraceOut, "trace-out", "",
		"write the study's span tree as Chrome trace_event JSON to this file (load in chrome://tracing or Perfetto)")
	fs.DurationVar(&s.RuntimeSample, "runtime-sample", 0,
		"sample Go runtime heap/GC/goroutine gauges into telemetry at this interval (e.g. 50ms; 0 = off)")
	return s
}

// StreamSet holds the parsed streaming data-path flags. Only the
// commands with a bounded-memory mode (worldgen, experiments) register
// these; the other binaries always hold their world in memory.
type StreamSet struct {
	Stream    bool
	ChunkSize int
	SpillDir  string
}

// RegisterStreaming installs the streaming data-path flags on fs.
func RegisterStreaming(fs *flag.FlagSet) *StreamSet {
	s := &StreamSet{}
	fs.BoolVar(&s.Stream, "stream", false,
		"run the bounded-memory streaming data path: generate (and scan) the world chunk-by-chunk, releasing each chunk when done — output is byte-identical to the in-memory path")
	fs.IntVar(&s.ChunkSize, "chunk-size", 4096,
		"domains per streaming chunk (with -stream; smaller = less memory, more merge files)")
	fs.StringVar(&s.SpillDir, "spill-dir", "",
		"directory per-chunk partial datasets spill under (with -stream; default: the system temp dir)")
	return s
}

// Validate rejects contradictory streaming flag combinations.
func (s *StreamSet) Validate() error {
	if s.ChunkSize <= 0 {
		return fmt.Errorf("-chunk-size must be positive, got %d", s.ChunkSize)
	}
	if !s.Stream && s.SpillDir != "" {
		return fmt.Errorf("-spill-dir only applies with -stream")
	}
	return nil
}

// validate rejects contradictory flag combinations with errors that
// say what to change.
func (s *Set) validate() error {
	if s.ChaosReplay != "" && s.Chaos != "" {
		return fmt.Errorf("-chaos-replay re-injects a recorded trace and cannot be combined with -chaos; drop one")
	}
	if s.ChaosReplay != "" && s.ChaosRecord != "" {
		return fmt.Errorf("-chaos-record would re-record the trace being replayed; drop one of the two flags")
	}
	if s.ChaosRecord != "" && s.Chaos == "" {
		return fmt.Errorf("-chaos-record needs a fault scenario to record; add -chaos")
	}
	if s.RuntimeSample < 0 {
		return fmt.Errorf("-runtime-sample must be a positive interval (or 0 for off), got %v", s.RuntimeSample)
	}
	return nil
}

// Apply validates the shared flags and fills the Config fields they
// control: Workers, Chaos, ChaosRecord, and ChaosReplay. The other
// Config fields are the caller's. The filled config then runs
// cloudscope.Config.Validate, so every command reports the same typed
// field errors instead of each main (or a NewStudy panic) inventing
// its own.
func (s *Set) Apply(cfg *cloudscope.Config) error {
	if err := s.validate(); err != nil {
		return err
	}
	cfg.Workers = s.Workers
	sc, err := chaos.Load(s.Chaos)
	if err != nil {
		return err
	}
	cfg.Chaos = sc
	cfg.ChaosRecord = s.ChaosRecord != ""
	if s.ChaosReplay != "" {
		tr, err := trace.ReadFile(s.ChaosReplay)
		if err != nil {
			return err
		}
		cfg.ChaosReplay = tr
	}
	return cfg.Validate()
}

// Faulting reports whether the study runs under injected faults —
// from a live scenario or a replayed trace — i.e. whether a
// completeness report is worth printing.
func (s *Set) Faulting() bool {
	return s.Chaos != "" || s.ChaosReplay != ""
}

// Start arms the run-scoped observability: the pprof CPU profile and
// the runtime sampler (which records into tel's registry — a nil tel,
// e.g. a NoTelemetry study, leaves the sampler off). Call it after
// constructing the study and pair it with Finish, or with
// FinishProfiles for commands that run no study.
func (s *Set) Start(tel *telemetry.Telemetry) error {
	if s.CPUProfile != "" {
		f, err := os.Create(s.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		s.cpuFile = f
	}
	if s.RuntimeSample > 0 {
		s.sampler = runtimeprof.Start(tel.Registry(), s.RuntimeSample)
	}
	return nil
}

// FinishProfiles closes out the pprof flags armed by Start: stops the
// CPU profile and writes the heap profile. Finish calls it; commands
// without a study call it directly.
func (s *Set) FinishProfiles() error {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		err := s.cpuFile.Close()
		s.cpuFile = nil
		if err != nil {
			return err
		}
	}
	if s.MemProfile != "" {
		f, err := os.Create(s.MemProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// Finish performs the post-run obligations of the shared flags: stops
// the runtime sampler (final reading included), writes the recorded
// fault trace, prints the telemetry report, dumps telemetry JSON,
// writes the Chrome span trace, and closes out the pprof profiles.
// Progress lines go to w (a main's os.Stdout).
func (s *Set) Finish(w io.Writer, study *cloudscope.Study) error {
	if s.sampler != nil {
		s.sampler.Stop() // before the report, so final runtime gauges are in it
		s.sampler = nil
	}
	if s.ChaosRecord != "" {
		if err := study.WriteFaultTrace(s.ChaosRecord); err != nil {
			return err
		}
		fmt.Fprintf(w, "fault trace: %d events written to %s\n", study.FaultTrace().Len(), s.ChaosRecord)
	}
	if s.Telemetry {
		fmt.Fprint(w, study.Telemetry().Report())
	}
	if s.TelemetryJSON != "" {
		out := os.Stdout
		if s.TelemetryJSON != "-" {
			f, err := os.Create(s.TelemetryJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := study.Telemetry().WriteJSON(out); err != nil {
			return err
		}
	}
	if s.TraceOut != "" {
		f, err := os.Create(s.TraceOut)
		if err != nil {
			return err
		}
		if err := study.Telemetry().WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "span trace: %s (open in chrome://tracing or https://ui.perfetto.dev)\n", s.TraceOut)
	}
	return s.FinishProfiles()
}

// DiffTraces resolves the -chaos-diff operands, reads both fault
// traces, writes their human-readable verdict delta to w, and reports
// whether the traces agree. The flag value names both files as
// "A.jsonl,B.jsonl", or names the first with the second given as the
// command's positional argument (extra).
func DiffTraces(spec, extra string, w io.Writer) (identical bool, err error) {
	pathA, pathB := spec, extra
	if i := strings.IndexByte(spec, ','); i >= 0 {
		if extra != "" {
			return false, fmt.Errorf("-chaos-diff %q already names both traces; drop the extra argument %q", spec, extra)
		}
		pathA, pathB = spec[:i], spec[i+1:]
	}
	if pathA == "" || pathB == "" {
		return false, fmt.Errorf("-chaos-diff compares two fault traces: -chaos-diff A.jsonl B.jsonl (or -chaos-diff A.jsonl,B.jsonl)")
	}
	a, err := trace.ReadFile(pathA)
	if err != nil {
		return false, err
	}
	b, err := trace.ReadFile(pathB)
	if err != nil {
		return false, err
	}
	d := trace.Diff(a, b)
	fmt.Fprintf(w, "%s: %d events (scenario %q, seed %d)\n%s: %d events (scenario %q, seed %d)\n",
		pathA, a.Len(), a.Header.Scenario, a.Header.Seed,
		pathB, b.Len(), b.Header.Scenario, b.Header.Seed)
	fmt.Fprint(w, d.String())
	return d.Empty(), nil
}

// RejectStudyFlags errors when a flag that needs a full measurement
// study is set. Commands that never build one (traceanalyze works on
// an existing capture file) call it right after parsing so the user
// learns the flag is inert instead of silently losing it.
func (s *Set) RejectStudyFlags(cmd string) error {
	var set []string
	if s.Chaos != "" {
		set = append(set, "-chaos")
	}
	if s.ChaosRecord != "" {
		set = append(set, "-chaos-record")
	}
	if s.ChaosReplay != "" {
		set = append(set, "-chaos-replay")
	}
	if s.Telemetry {
		set = append(set, "-telemetry")
	}
	if s.TelemetryJSON != "" {
		set = append(set, "-telemetry-json")
	}
	if s.TraceOut != "" {
		set = append(set, "-trace-out")
	}
	if s.RuntimeSample != 0 {
		set = append(set, "-runtime-sample")
	}
	if len(set) > 0 {
		return fmt.Errorf("%s runs no measurement study, so %s cannot apply here", cmd, strings.Join(set, ", "))
	}
	return nil
}
