// Package cliflags registers the measurement flags every cloudscope
// command shares, so -workers, -chaos, -telemetry[-json], and the
// fault-trace flags have one name, one help string, and one meaning
// across all seven binaries instead of seven drifting copies.
//
// Usage from a main:
//
//	shared := cliflags.Register(flag.CommandLine)
//	flag.Parse()
//	cfg := cloudscope.Config{Seed: *seed, Domains: *domains}
//	if err := shared.Apply(&cfg); err != nil { ... }
//	study := cloudscope.NewStudy(cfg)
//	... run ...
//	if err := shared.Finish(study); err != nil { ... }
//
// Apply validates flag combinations and fills the Config fields the
// shared flags control; Finish handles the post-run obligations
// (writing the recorded fault trace, printing the telemetry report,
// dumping telemetry JSON).
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cloudscope"
	"cloudscope/internal/chaos"
	"cloudscope/internal/chaos/trace"
)

// Set holds the parsed values of the shared measurement flags.
type Set struct {
	Workers       int
	Chaos         string
	Telemetry     bool
	TelemetryJSON string
	ChaosRecord   string
	ChaosReplay   string
}

// Register installs the shared flags on fs (flag.CommandLine from a
// main) and returns the Set their values parse into.
func Register(fs *flag.FlagSet) *Set {
	s := &Set{}
	fs.IntVar(&s.Workers, "workers", 0,
		"worker bound for every parallel stage (0 = GOMAXPROCS, 1 = sequential; results identical)")
	fs.StringVar(&s.Chaos, "chaos", "",
		"fault scenario: a library name ("+strings.Join(chaos.Library(), ", ")+
			") or an inline spec like 'loss,p=0.05;servfail,p=0.3,window=0.3-0.7'")
	fs.BoolVar(&s.Telemetry, "telemetry", false,
		"print the study's metric and span report after the run")
	fs.StringVar(&s.TelemetryJSON, "telemetry-json", "",
		"write the telemetry dump as JSON to this file (- for stdout)")
	fs.StringVar(&s.ChaosRecord, "chaos-record", "",
		"write this run's fault trace to this file for later -chaos-replay (requires -chaos)")
	fs.StringVar(&s.ChaosReplay, "chaos-replay", "",
		"re-inject the fault trace recorded in this file instead of drawing faults (excludes -chaos)")
	return s
}

// validate rejects contradictory flag combinations with errors that
// say what to change.
func (s *Set) validate() error {
	if s.ChaosReplay != "" && s.Chaos != "" {
		return fmt.Errorf("-chaos-replay re-injects a recorded trace and cannot be combined with -chaos; drop one")
	}
	if s.ChaosReplay != "" && s.ChaosRecord != "" {
		return fmt.Errorf("-chaos-record would re-record the trace being replayed; drop one of the two flags")
	}
	if s.ChaosRecord != "" && s.Chaos == "" {
		return fmt.Errorf("-chaos-record needs a fault scenario to record; add -chaos")
	}
	return nil
}

// Apply validates the shared flags and fills the Config fields they
// control: Workers, Chaos, ChaosRecord, and ChaosReplay. The other
// Config fields are the caller's.
func (s *Set) Apply(cfg *cloudscope.Config) error {
	if err := s.validate(); err != nil {
		return err
	}
	cfg.Workers = s.Workers
	sc, err := chaos.Load(s.Chaos)
	if err != nil {
		return err
	}
	cfg.Chaos = sc
	cfg.ChaosRecord = s.ChaosRecord != ""
	if s.ChaosReplay != "" {
		tr, err := trace.ReadFile(s.ChaosReplay)
		if err != nil {
			return err
		}
		cfg.ChaosReplay = tr
	}
	return nil
}

// Faulting reports whether the study runs under injected faults —
// from a live scenario or a replayed trace — i.e. whether a
// completeness report is worth printing.
func (s *Set) Faulting() bool {
	return s.Chaos != "" || s.ChaosReplay != ""
}

// Finish performs the post-run obligations of the shared flags:
// writes the recorded fault trace, prints the telemetry report, and
// dumps telemetry JSON. Progress lines go to w (a main's os.Stdout).
func (s *Set) Finish(w io.Writer, study *cloudscope.Study) error {
	if s.ChaosRecord != "" {
		if err := study.WriteFaultTrace(s.ChaosRecord); err != nil {
			return err
		}
		fmt.Fprintf(w, "fault trace: %d events written to %s\n", study.FaultTrace().Len(), s.ChaosRecord)
	}
	if s.Telemetry {
		fmt.Fprint(w, study.Telemetry().Report())
	}
	if s.TelemetryJSON != "" {
		out := os.Stdout
		if s.TelemetryJSON != "-" {
			f, err := os.Create(s.TelemetryJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := study.Telemetry().WriteJSON(out); err != nil {
			return err
		}
	}
	return nil
}

// RejectStudyFlags errors when a flag that needs a full measurement
// study is set. Commands that never build one (traceanalyze works on
// an existing capture file) call it right after parsing so the user
// learns the flag is inert instead of silently losing it.
func (s *Set) RejectStudyFlags(cmd string) error {
	var set []string
	if s.Chaos != "" {
		set = append(set, "-chaos")
	}
	if s.ChaosRecord != "" {
		set = append(set, "-chaos-record")
	}
	if s.ChaosReplay != "" {
		set = append(set, "-chaos-replay")
	}
	if s.Telemetry {
		set = append(set, "-telemetry")
	}
	if s.TelemetryJSON != "" {
		set = append(set, "-telemetry-json")
	}
	if len(set) > 0 {
		return fmt.Errorf("%s runs no measurement study, so %s cannot apply here", cmd, strings.Join(set, ", "))
	}
	return nil
}
