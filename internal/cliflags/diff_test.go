package cliflags

import (
	"path/filepath"
	"strings"
	"testing"

	"cloudscope/internal/chaos/trace"
)

// writeTrace writes a small fault trace under dir and returns its path.
func writeTrace(t *testing.T, dir, name string, events []trace.Event) string {
	t.Helper()
	tr := &trace.Trace{
		Header: trace.Header{Version: 1, Scenario: "hostile-capture", Seed: 3},
		Events: events,
	}
	path := filepath.Join(dir, name)
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffTraces covers the -chaos-diff operand forms and the
// identical/differing verdicts the commands exit on.
func TestDiffTraces(t *testing.T) {
	dir := t.TempDir()
	evs := []trace.Event{
		{Point: trace.PointWire, ID: 12, Kind: "loss", Phase: 0.25, Drop: true},
		{Point: trace.PointCapFlow, ID: 9, Kind: "cap-truncate", Phase: 0.7, Name: "flow-9", KeepFrac: 0.5},
	}
	a := writeTrace(t, dir, "a.jsonl", evs)
	b := writeTrace(t, dir, "b.jsonl", evs)
	c := writeTrace(t, dir, "c.jsonl", evs[:1])

	var out strings.Builder
	identical, err := DiffTraces(a, b, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !identical {
		t.Fatalf("identical traces reported as differing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "traces agree") {
		t.Fatalf("agreeing diff output missing verdict line:\n%s", out.String())
	}

	// Combined "A,B" spec, differing traces.
	out.Reset()
	identical, err = DiffTraces(a+","+c, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if identical {
		t.Fatal("differing traces reported as identical")
	}
	if !strings.Contains(out.String(), "-1 removed") {
		t.Fatalf("delta output missing removed count:\n%s", out.String())
	}

	// Operand errors: both forms at once, a missing operand, and an
	// unreadable file.
	if _, err := DiffTraces(a+","+b, c, &out); err == nil {
		t.Fatal("comma spec plus positional arg accepted")
	}
	if _, err := DiffTraces(a, "", &out); err == nil {
		t.Fatal("single operand accepted")
	}
	if _, err := DiffTraces(filepath.Join(dir, "missing.jsonl"), b, &out); err == nil {
		t.Fatal("unreadable trace accepted")
	}
}
