package pcapio

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestReaderNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return true
		}
		for i := 0; i < 100; i++ {
			if _, err := rd.Next(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderHandlesMutatedCaptures(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 256)
	for i := 0; i < 5; i++ {
		w.WriteRecord(Record{Time: time.Unix(int64(1340668800+i), 0), Data: bytes.Repeat([]byte{byte(i)}, 20+i)})
	}
	w.Flush()
	base := buf.Bytes()
	f := func(pos uint16, val byte) bool {
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] = val
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic pos=%d val=%d: %v", pos, val, r)
			}
		}()
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return true
		}
		for {
			if _, err := rd.Next(); err != nil {
				return err == io.EOF || err != nil
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
