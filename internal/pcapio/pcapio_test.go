package pcapio

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

var t0 = time.Date(2012, 6, 26, 12, 0, 0, 123456000, time.UTC)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 512)
	recs := []Record{
		{Time: t0, Data: []byte("first packet")},
		{Time: t0.Add(time.Millisecond), Data: bytes.Repeat([]byte{0xab}, 100), OrigLen: 1514},
		{Time: t0.Add(time.Second), Data: nil, OrigLen: 60},
	}
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Snaplen() != 512 || rd.LinkType() != LinkTypeEthernet {
		t.Fatalf("header: snap=%d link=%d", rd.Snaplen(), rd.LinkType())
	}
	for i, want := range recs {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !got.Time.Equal(want.Time.Truncate(time.Microsecond)) {
			t.Fatalf("record %d time %v != %v", i, got.Time, want.Time)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("record %d data mismatch", i)
		}
		wantOrig := want.OrigLen
		if wantOrig < len(want.Data) {
			wantOrig = len(want.Data)
		}
		if got.OrigLen != wantOrig {
			t.Fatalf("record %d origlen %d != %d", i, got.OrigLen, wantOrig)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("tail err = %v", err)
	}
}

func TestSnapTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 64)
	big := bytes.Repeat([]byte{1}, 1000)
	if err := w.WriteRecord(Record{Time: t0, Data: big}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	rd, _ := NewReader(&buf)
	rec, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 64 {
		t.Fatalf("captured %d bytes, want snaplen 64", len(rec.Data))
	}
	if rec.OrigLen != 1000 {
		t.Fatalf("OrigLen = %d, want 1000", rec.OrigLen)
	}
}

func TestEmptyCaptureHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Fatalf("empty capture = %d bytes", buf.Len())
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Snaplen() != 65535 {
		t.Fatalf("default snaplen = %d", rd.Snaplen())
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("err = %v", err)
	}
}

func TestBigEndianAccepted(t *testing.T) {
	var buf bytes.Buffer
	var h [24]byte
	binary.BigEndian.PutUint32(h[0:4], Magic)
	binary.BigEndian.PutUint16(h[4:6], 2)
	binary.BigEndian.PutUint16(h[6:8], 4)
	binary.BigEndian.PutUint32(h[16:20], 1500)
	binary.BigEndian.PutUint32(h[20:24], LinkTypeEthernet)
	buf.Write(h[:])
	var rh [16]byte
	binary.BigEndian.PutUint32(rh[0:4], uint32(t0.Unix()))
	binary.BigEndian.PutUint32(rh[4:8], 42)
	binary.BigEndian.PutUint32(rh[8:12], 3)
	binary.BigEndian.PutUint32(rh[12:16], 3)
	buf.Write(rh[:])
	buf.Write([]byte{9, 9, 9})

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Snaplen() != 1500 {
		t.Fatalf("snaplen = %d", rd.Snaplen())
	}
	rec, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.OrigLen != 3 || len(rec.Data) != 3 {
		t.Fatalf("record: %+v", rec)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewReader(bytes.Repeat([]byte{0x42}, 24))
	if _, err := NewReader(buf); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 512)
	w.WriteRecord(Record{Time: t0, Data: []byte("hello")})
	w.Flush()
	full := buf.Bytes()
	// Chop the body mid-record.
	rd, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want mid-record error", err)
	}
}

func TestManyRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 256)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := w.WriteRecord(Record{Time: t0.Add(time.Duration(i) * time.Millisecond), Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	rd, _ := NewReader(&buf)
	count := 0
	var last time.Time
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if count > 0 && rec.Time.Before(last) {
			t.Fatal("timestamps went backwards")
		}
		last = rec.Time
		count++
	}
	if count != n {
		t.Fatalf("read %d records, want %d", count, n)
	}
}
