package pcapio

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// readAllNext drains a stream with the record-at-a-time reader,
// treating a clean io.EOF as success.
func readAllNext(data []byte) ([]Record, error) {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// FuzzPcapRead throws arbitrary bytes at both read paths. The contract:
// truncated global headers, mid-record EOF, and absurd captured lengths
// must error — never panic or over-read — and the zero-copy ReadBlock
// path must parse byte-for-byte the same records, and fail with the
// same error, as the allocating Next path.
func FuzzPcapRead(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 96)
	_ = w.WriteRecord(Record{Time: time.Unix(5, 2000), Data: []byte("first frame bytes"), OrigLen: 1500})
	_ = w.WriteRecord(Record{Time: time.Unix(6, 0), Data: bytes.Repeat([]byte{0xab}, 96)})
	_ = w.WriteRecord(Record{Time: time.Unix(7, 999000), Data: nil})
	_ = w.Flush()
	full := buf.Bytes()

	f.Add(full)
	f.Add(full[:23])          // truncated global header
	f.Add(full[:24])          // header only: a clean empty capture
	f.Add(full[:len(full)-2]) // mid-record EOF
	f.Add(full[:24+9])        // mid record-header EOF
	huge := append([]byte{}, full...)
	huge[24+8], huge[24+9], huge[24+10] = 0xff, 0xff, 0xff // implausible incl
	f.Add(huge)
	swapped := append([]byte{}, full...)
	swapped[0], swapped[1], swapped[2], swapped[3] = 0xd4, 0xc3, 0xb2, 0xa1 // big-endian magic
	f.Add(swapped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, nerr := readAllNext(data)

		b := GetBlock()
		defer b.Release()
		var berr error
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			berr = err
		} else {
			for {
				_, err := rd.ReadBlock(b, 3) // small batches hit block boundaries
				if err == io.EOF {
					break
				}
				if err != nil {
					berr = err
					break
				}
			}
		}

		if (nerr == nil) != (berr == nil) {
			t.Fatalf("paths disagree on failure: Next=%v ReadBlock=%v", nerr, berr)
		}
		if nerr != nil && nerr.Error() != berr.Error() {
			t.Fatalf("paths fail differently: Next=%v ReadBlock=%v", nerr, berr)
		}
		// On a body-read failure ReadBlock has already reserved the
		// failing record (the caller releases the block on error), so
		// it may hold one record the Next path discarded.
		if b.Len() != len(recs) && !(berr != nil && b.Len() == len(recs)+1) {
			t.Fatalf("record counts differ: Next=%d ReadBlock=%d (err=%v)", len(recs), b.Len(), berr)
		}
		for i, rec := range recs {
			if !b.Time(i).Equal(rec.Time) || b.OrigLen(i) != rec.OrigLen || !bytes.Equal(b.Data(i), rec.Data) {
				t.Fatalf("record %d differs between Next and ReadBlock", i)
			}
		}
	})
}
