// Package pcapio reads and writes classic libpcap capture files
// (the tcpdump format the study's border capture was stored in):
// a 24-byte global header followed by per-packet record headers with
// second/microsecond timestamps, captured length, and original length.
//
// Snap-length semantics are preserved exactly: a record's OrigLen may
// exceed len(Data) (the capture truncated the packet), and analyzers
// must use OrigLen for volume accounting — as the paper's Bro pipeline
// did.
package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers for microsecond-resolution captures.
const (
	Magic        uint32 = 0xa1b2c3d4
	versionMajor uint16 = 2
	versionMinor uint16 = 4
)

// LinkTypeEthernet is the only link type cloudscope produces.
const LinkTypeEthernet uint32 = 1

// Record is one captured packet.
type Record struct {
	Time    time.Time
	OrigLen int    // length on the wire
	Data    []byte // captured bytes (≤ snaplen)
}

// Writer emits a pcap stream.
type Writer struct {
	w       *bufio.Writer
	snaplen int
	started bool
}

// NewWriter returns a Writer with the given snap length (0 means 65535).
func NewWriter(w io.Writer, snaplen int) *Writer {
	if snaplen <= 0 {
		snaplen = 65535
	}
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), snaplen: snaplen}
}

// Snaplen returns the writer's snap length.
func (w *Writer) Snaplen() int { return w.snaplen }

func (w *Writer) writeHeader() error {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:4], Magic)
	binary.LittleEndian.PutUint16(h[4:6], versionMajor)
	binary.LittleEndian.PutUint16(h[6:8], versionMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(h[16:20], uint32(w.snaplen))
	binary.LittleEndian.PutUint32(h[20:24], LinkTypeEthernet)
	_, err := w.w.Write(h[:])
	return err
}

// WriteRecord appends one packet, truncating Data to the snap length.
// OrigLen defaults to len(Data) when zero.
func (w *Writer) WriteRecord(r Record) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.started = true
	}
	data := r.Data
	orig := r.OrigLen
	if orig < len(data) {
		orig = len(data) // default: wire length is the full frame
	}
	if len(data) > w.snaplen {
		data = data[:w.snaplen]
	}
	var h [16]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(r.Time.Unix()))
	binary.LittleEndian.PutUint32(h[4:8], uint32(r.Time.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(h[12:16], uint32(orig))
	if _, err := w.w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// Flush writes buffered data to the underlying writer. An empty capture
// still gets a valid global header.
func (w *Writer) Flush() error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.started = true
	}
	return w.w.Flush()
}

// Reader consumes a pcap stream.
type Reader struct {
	r        *bufio.Reader
	bigEnd   bool
	snaplen  int
	linkType uint32
}

// Errors returned by NewReader/Next/ReadBlock.
var (
	ErrBadMagic = errors.New("pcapio: bad magic")
	// ErrTruncated marks a stream that ended inside a record header or
	// body — a capture cut off mid-write. Both read paths (Next and
	// ReadBlock) wrap it identically, so errors.Is(err, ErrTruncated)
	// distinguishes a chopped capture from a malformed one.
	ErrTruncated = errors.New("pcapio: truncated capture")
)

// readErr wraps a mid-record read failure: an unexpected EOF becomes
// ErrTruncated (the stream ended inside a record), any other transport
// error passes through with context. Next and ReadBlock share it so
// both paths fail with identical error strings.
func readErr(what string, err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %s cut short: %v", ErrTruncated, what, err)
	}
	return fmt.Errorf("pcapio: %s: %w", what, err)
}

// maxSnaplen bounds the snap length NewReader accepts. tcpdump caps
// snaplen at 256 KiB; anything past 1 MiB is a forged header, and
// accepting it would let a 24-byte file demand multi-gigabyte record
// allocations (the per-record plausibility bound is snaplen-relative).
const maxSnaplen = 1 << 20

// NewReader parses the global header. Both byte orders are accepted.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var h [24]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		return nil, fmt.Errorf("pcapio: global header: %w", err)
	}
	rd := &Reader{r: br}
	switch binary.LittleEndian.Uint32(h[0:4]) {
	case Magic:
	case 0xd4c3b2a1:
		rd.bigEnd = true
	default:
		return nil, ErrBadMagic
	}
	order := rd.order()
	rd.snaplen = int(order.Uint32(h[16:20]))
	rd.linkType = order.Uint32(h[20:24])
	if rd.snaplen > maxSnaplen {
		return nil, fmt.Errorf("pcapio: implausible snap length %d", rd.snaplen)
	}
	return rd, nil
}

func (r *Reader) order() binary.ByteOrder {
	if r.bigEnd {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

// Snaplen returns the capture's snap length.
func (r *Reader) Snaplen() int { return r.snaplen }

// LinkType returns the capture's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// Next returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Next() (Record, error) {
	var h [16]byte
	if _, err := io.ReadFull(r.r, h[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, readErr("record header", err)
	}
	order := r.order()
	sec := order.Uint32(h[0:4])
	usec := order.Uint32(h[4:8])
	incl := order.Uint32(h[8:12])
	orig := order.Uint32(h[12:16])
	if int(incl) > r.snaplen+65535 {
		return Record{}, fmt.Errorf("pcapio: implausible captured length %d", incl)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, readErr("record body", err)
	}
	return Record{
		Time:    time.Unix(int64(sec), int64(usec)*1000).UTC(),
		OrigLen: int(orig),
		Data:    data,
	}, nil
}
