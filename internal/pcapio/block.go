package pcapio

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// Block is a batch of packet records laid out over one contiguous,
// reusable buffer: each record is a fixed 16-byte prefix — unix
// nanoseconds, captured length, original length — followed by the
// captured bytes, with an offset index for O(1) random access. Blocks
// are the unit the capture hot path moves between pipeline shards:
// the generator fills one block per shard and the analyzer reads the
// pcap stream block-wise, so a million-packet capture costs a handful
// of buffer allocations instead of one per record.
//
// Blocks come from a sync.Pool (GetBlock/Release). Data returned by
// Data/Record aliases the block's buffer and is only valid until the
// block is released; callers that outlive the block must copy.
type Block struct {
	buf  []byte
	offs []int // offset of each record's prefix in buf
}

// blockPrefixLen is the per-record prefix: 8 bytes of unix nanoseconds,
// 4 of captured length, 4 of original (wire) length.
const blockPrefixLen = 16

// DefaultBlockRecords is the batch size ReadBlock uses when the caller
// passes no bound. Large enough that per-block overheads vanish, small
// enough that a shard of blocks is meaningful parallel work.
const DefaultBlockRecords = 2048

var blockPool = sync.Pool{New: func() any { return new(Block) }}

// PoisonReleasedBlocks is a test hook: when true, Release scribbles
// 0xDB over the block's entire buffer capacity before pooling it, so
// any consumer that wrongly retained a view into a released block reads
// garbage instead of silently working. Leak tests flip it on and assert
// analyzer outputs are unchanged; production code leaves it false.
var PoisonReleasedBlocks = false

// GetBlock returns an empty block from the pool, retaining whatever
// buffer capacity its previous life grew.
func GetBlock() *Block {
	b := blockPool.Get().(*Block)
	b.Reset()
	return b
}

// Release resets the block and returns it to the pool. The caller must
// not touch the block — or any Data view into it — afterwards.
func (b *Block) Release() {
	if PoisonReleasedBlocks {
		full := b.buf[:cap(b.buf)]
		for i := range full {
			full[i] = 0xDB
		}
	}
	b.Reset()
	blockPool.Put(b)
}

// Reset empties the block, keeping its capacity.
func (b *Block) Reset() {
	b.buf = b.buf[:0]
	b.offs = b.offs[:0]
}

// Len returns the number of records in the block.
func (b *Block) Len() int { return len(b.offs) }

// Time returns record i's timestamp.
func (b *Block) Time(i int) time.Time {
	off := b.offs[i]
	return time.Unix(0, int64(binary.LittleEndian.Uint64(b.buf[off:off+8]))).UTC()
}

// OrigLen returns record i's original (on-the-wire) length.
func (b *Block) OrigLen(i int) int {
	off := b.offs[i]
	return int(binary.LittleEndian.Uint32(b.buf[off+12 : off+16]))
}

// Data returns record i's captured bytes. The slice aliases the block's
// buffer: it is valid only until the block is released or reset.
func (b *Block) Data(i int) []byte {
	off := b.offs[i]
	n := int(binary.LittleEndian.Uint32(b.buf[off+8 : off+12]))
	return b.buf[off+blockPrefixLen : off+blockPrefixLen+n : off+blockPrefixLen+n]
}

// Record materializes record i as a Record whose Data aliases the
// block's buffer (valid until release).
func (b *Block) Record(i int) Record {
	return Record{Time: b.Time(i), OrigLen: b.OrigLen(i), Data: b.Data(i)}
}

// AppendRecord reserves a new record of n captured bytes with the given
// timestamp and wire length, returning the zeroed data slice for the
// caller to fill in place — the zero-copy write path frame builders
// serialize directly into.
func (b *Block) AppendRecord(t time.Time, origLen, n int) []byte {
	off := len(b.buf)
	b.buf = append(b.buf, make([]byte, blockPrefixLen+n)...)
	binary.LittleEndian.PutUint64(b.buf[off:off+8], uint64(t.UnixNano()))
	binary.LittleEndian.PutUint32(b.buf[off+8:off+12], uint32(n))
	binary.LittleEndian.PutUint32(b.buf[off+12:off+16], uint32(origLen))
	b.offs = append(b.offs, off)
	return b.buf[off+blockPrefixLen : off+blockPrefixLen+n : off+blockPrefixLen+n]
}

// Append copies one record into the block.
func (b *Block) Append(r Record) {
	copy(b.AppendRecord(r.Time, r.OrigLen, len(r.Data)), r.Data)
}

// TruncateRecord shrinks record i's captured length to n bytes; its
// original (wire) length is untouched, so the record reads back as a
// short frame — a capture that cut the packet off mid-write. n must
// not exceed the record's current captured length. The bytes past the
// cut stay reserved in the buffer and are simply never part of the
// record again.
func (b *Block) TruncateRecord(i, n int) {
	off := b.offs[i]
	cur := int(binary.LittleEndian.Uint32(b.buf[off+8 : off+12]))
	if n < 0 || n > cur {
		panic(fmt.Sprintf("pcapio: TruncateRecord(%d, %d) outside captured length %d", i, n, cur))
	}
	binary.LittleEndian.PutUint32(b.buf[off+8:off+12], uint32(n))
}

// ReadBlock reads up to maxRecords records from the stream into b,
// appending to whatever the block already holds, and returns how many
// were read. It reports io.EOF at a clean end of stream (possibly
// alongside a non-zero count); any other error means a malformed or
// truncated record. Record bytes land directly in the block's buffer —
// no per-record allocation — and are subject to the same implausible-
// length check as Next.
func (r *Reader) ReadBlock(b *Block, maxRecords int) (int, error) {
	if maxRecords <= 0 {
		maxRecords = DefaultBlockRecords
	}
	order := r.order()
	n := 0
	for n < maxRecords {
		var h [16]byte
		if _, err := io.ReadFull(r.r, h[:]); err != nil {
			if err == io.EOF {
				return n, io.EOF
			}
			return n, readErr("record header", err)
		}
		sec := order.Uint32(h[0:4])
		usec := order.Uint32(h[4:8])
		incl := order.Uint32(h[8:12])
		orig := order.Uint32(h[12:16])
		if int(incl) > r.snaplen+65535 {
			return n, fmt.Errorf("pcapio: implausible captured length %d", incl)
		}
		dst := b.AppendRecord(time.Unix(int64(sec), int64(usec)*1000).UTC(), int(orig), int(incl))
		if _, err := io.ReadFull(r.r, dst); err != nil {
			return n, readErr("record body", err)
		}
		n++
	}
	return n, nil
}
