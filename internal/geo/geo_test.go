package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	ny := Location{Lat: 40.71, Lon: -74.01}
	london := Location{Lat: 51.51, Lon: -0.13}
	d := DistanceKm(ny, london)
	// True great-circle distance is ~5570 km.
	if d < 5400 || d > 5750 {
		t.Fatalf("NY-London = %.0f km", d)
	}
	if got := DistanceKm(ny, ny); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Location{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Location{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0 && d1 <= math.Pi*EarthRadiusKm+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropagationRTT(t *testing.T) {
	seattle := Location{Lat: 47.61, Lon: -122.33}
	virginia := RegionLocation("ec2.us-east-1")
	rtt := PropagationRTTms(seattle, virginia)
	// Coast to coast: observed floor is ~60 ms; propagation model should
	// land in a plausible 40-80 ms band.
	if rtt < 40 || rtt > 80 {
		t.Fatalf("Seattle-Virginia propagation RTT = %.1f ms", rtt)
	}
}

func TestRegionLocationsExist(t *testing.T) {
	for _, r := range []string{
		"ec2.us-east-1", "ec2.eu-west-1", "ec2.us-west-1", "ec2.us-west-2",
		"ec2.ap-southeast-1", "ec2.ap-northeast-1", "ec2.sa-east-1", "ec2.ap-southeast-2",
		"az.us-east", "az.us-west", "az.us-north", "az.us-south",
		"az.eu-west", "az.eu-north", "az.ap-southeast", "az.ap-east",
	} {
		loc := RegionLocation(r)
		if loc.Name == "" || loc.Country == "" || loc.Continent == "" {
			t.Errorf("region %s incomplete: %+v", r, loc)
		}
	}
}

func TestRegionLocationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown region did not panic")
		}
	}()
	RegionLocation("ec2.mars-1")
}

func TestPlanetLab(t *testing.T) {
	vs := PlanetLab(80)
	if len(vs) != 80 {
		t.Fatalf("len = %d", len(vs))
	}
	ids := map[string]bool{}
	continents := map[string]int{}
	for _, v := range vs {
		if ids[v.ID] {
			t.Fatalf("duplicate vantage id %s", v.ID)
		}
		ids[v.ID] = true
		continents[v.Continent]++
	}
	for _, want := range []string{"NA", "EU", "AS", "SA", "OC"} {
		if continents[want] == 0 {
			t.Errorf("no vantage on continent %s", want)
		}
	}
	// Determinism.
	again := PlanetLab(80)
	for i := range vs {
		if vs[i] != again[i] {
			t.Fatal("PlanetLab not deterministic")
		}
	}
}

func TestPlanetLabCycles(t *testing.T) {
	vs := PlanetLab(100)
	if len(vs) != 100 {
		t.Fatalf("len = %d", len(vs))
	}
	if vs[0].Name != vs[len(Catalog())].Name {
		t.Fatal("catalog cycling broken")
	}
	if vs[0].ID == vs[len(Catalog())].ID {
		t.Fatal("cycled vantage reused ID")
	}
}

func TestCountryLocation(t *testing.T) {
	us := CountryLocation("US")
	if us.Country != "US" {
		t.Fatalf("US centroid: %+v", us)
	}
	mx := CountryLocation("MX")
	if mx.Name != "Mexico City" {
		t.Fatalf("MX centroid: %+v", mx)
	}
	unknown := CountryLocation("XX")
	if unknown.Country != "XX" {
		t.Fatalf("fallback centroid: %+v", unknown)
	}
}

func TestCountryContinentCoversCatalog(t *testing.T) {
	for _, c := range Catalog() {
		if CountryContinent[c.Country] != c.Continent {
			t.Errorf("%s: CountryContinent=%q, catalog=%q", c.Country, CountryContinent[c.Country], c.Continent)
		}
	}
}

func TestCatalogIsCopy(t *testing.T) {
	c := Catalog()
	orig := c[0].Name
	c[0].Name = "mutated"
	if Catalog()[0].Name != orig {
		t.Fatal("Catalog returned shared slice")
	}
}
