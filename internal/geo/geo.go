// Package geo provides the geographic scaffolding behind the wide-area
// models: locations with coordinates and countries, great-circle
// distances, the data-center locations of every 2013 EC2/Azure region,
// and a PlanetLab-like set of globally distributed vantage points.
package geo

import (
	"fmt"
	"math"
)

// Location is a named point on the globe.
type Location struct {
	Name      string
	Lat, Lon  float64 // degrees
	Country   string  // ISO-like short country name
	Continent string
}

// EarthRadiusKm is the mean Earth radius used by Distance.
const EarthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between a and b using the
// haversine formula.
func DistanceKm(a, b Location) float64 {
	const rad = math.Pi / 180
	dLat := (b.Lat - a.Lat) * rad
	dLon := (b.Lon - a.Lon) * rad
	sa := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(a.Lat*rad)*math.Cos(b.Lat*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(sa)))
}

// PropagationRTTms estimates the round-trip propagation delay between
// two locations in milliseconds. Light in fiber travels at roughly
// 2/3 c, and real paths are not geodesics; the conventional
// path-inflation factor of 1.4 is applied (so RTT ≈ distance * 2 *
// 1.4 / 200km-per-ms).
func PropagationRTTms(a, b Location) float64 {
	const kmPerMsInFiber = 200.0 // ~2/3 of c, one way
	const inflation = 1.4
	return DistanceKm(a, b) * 2 * inflation / kmPerMsInFiber
}

// RegionLocation returns the data-center location of a canonical
// cloudscope region id (ec2.* or az.*). It panics on unknown regions so
// that configuration errors surface immediately.
func RegionLocation(region string) Location {
	loc, ok := regionLocations[region]
	if !ok {
		panic(fmt.Sprintf("geo: unknown region %q", region))
	}
	return loc
}

var regionLocations = map[string]Location{
	"ec2.us-east-1":      {Name: "Virginia, USA", Lat: 38.9, Lon: -77.45, Country: "US", Continent: "NA"},
	"ec2.us-west-1":      {Name: "N. California, USA", Lat: 37.35, Lon: -121.96, Country: "US", Continent: "NA"},
	"ec2.us-west-2":      {Name: "Oregon, USA", Lat: 45.84, Lon: -119.7, Country: "US", Continent: "NA"},
	"ec2.eu-west-1":      {Name: "Ireland", Lat: 53.34, Lon: -6.26, Country: "IE", Continent: "EU"},
	"ec2.ap-southeast-1": {Name: "Singapore", Lat: 1.35, Lon: 103.82, Country: "SG", Continent: "AS"},
	"ec2.ap-northeast-1": {Name: "Tokyo, Japan", Lat: 35.68, Lon: 139.69, Country: "JP", Continent: "AS"},
	"ec2.sa-east-1":      {Name: "Sao Paulo, Brazil", Lat: -23.55, Lon: -46.63, Country: "BR", Continent: "SA"},
	"ec2.ap-southeast-2": {Name: "Sydney, Australia", Lat: -33.87, Lon: 151.21, Country: "AU", Continent: "OC"},

	"az.us-east":      {Name: "Virginia, USA", Lat: 37.54, Lon: -77.44, Country: "US", Continent: "NA"},
	"az.us-west":      {Name: "California, USA", Lat: 37.77, Lon: -122.42, Country: "US", Continent: "NA"},
	"az.us-north":     {Name: "Illinois, USA", Lat: 41.88, Lon: -87.63, Country: "US", Continent: "NA"},
	"az.us-south":     {Name: "Texas, USA", Lat: 29.42, Lon: -98.49, Country: "US", Continent: "NA"},
	"az.eu-west":      {Name: "Ireland", Lat: 53.34, Lon: -6.26, Country: "IE", Continent: "EU"},
	"az.eu-north":     {Name: "Netherlands", Lat: 52.37, Lon: 4.9, Country: "NL", Continent: "EU"},
	"az.ap-southeast": {Name: "Singapore", Lat: 1.35, Lon: 103.82, Country: "SG", Continent: "AS"},
	"az.ap-east":      {Name: "Hong Kong", Lat: 22.32, Lon: 114.17, Country: "HK", Continent: "AS"},

	"cloudfront.global": {Name: "Global edge", Lat: 39.0, Lon: -77.0, Country: "US", Continent: "NA"},
}

// CountryContinent maps the country codes used by the synthetic client
// populations to continents.
var CountryContinent = map[string]string{
	"US": "NA", "CA": "NA", "MX": "NA",
	"BR": "SA", "AR": "SA", "CL": "SA",
	"GB": "EU", "DE": "EU", "FR": "EU", "NL": "EU", "IE": "EU", "ES": "EU", "IT": "EU", "PL": "EU", "RU": "EU",
	"CN": "AS", "JP": "AS", "KR": "AS", "IN": "AS", "SG": "AS", "HK": "AS", "TW": "AS", "ID": "AS", "TH": "AS",
	"AU": "OC", "NZ": "OC",
	"ZA": "AF", "EG": "AF", "NG": "AF",
}

// Vantage is a measurement host (a PlanetLab-node stand-in).
type Vantage struct {
	ID string
	Location
}

// PlanetLab returns n globally distributed vantage points drawn from a
// fixed catalog of real university-city coordinates, cycling with
// distinct IDs when n exceeds the catalog. The catalog ordering is
// stable, so Vantages(80) is always the same set.
func PlanetLab(n int) []Vantage {
	out := make([]Vantage, 0, n)
	for i := 0; i < n; i++ {
		c := catalog[i%len(catalog)]
		out = append(out, Vantage{
			ID:       fmt.Sprintf("pl-%03d-%s", i, c.Country),
			Location: c,
		})
	}
	return out
}

// catalog lists PlanetLab-dense sites: North America and Europe heavy,
// with Asia, South America, and Oceania represented — matching Figure 2.
var catalog = []Location{
	{Name: "Seattle", Lat: 47.61, Lon: -122.33, Country: "US", Continent: "NA"},
	{Name: "Berkeley", Lat: 37.87, Lon: -122.27, Country: "US", Continent: "NA"},
	{Name: "Boulder", Lat: 40.01, Lon: -105.27, Country: "US", Continent: "NA"},
	{Name: "Madison", Lat: 43.07, Lon: -89.4, Country: "US", Continent: "NA"},
	{Name: "Boston", Lat: 42.36, Lon: -71.06, Country: "US", Continent: "NA"},
	{Name: "Princeton", Lat: 40.35, Lon: -74.66, Country: "US", Continent: "NA"},
	{Name: "Atlanta", Lat: 33.75, Lon: -84.39, Country: "US", Continent: "NA"},
	{Name: "Austin", Lat: 30.27, Lon: -97.74, Country: "US", Continent: "NA"},
	{Name: "Toronto", Lat: 43.65, Lon: -79.38, Country: "CA", Continent: "NA"},
	{Name: "Vancouver", Lat: 49.28, Lon: -123.12, Country: "CA", Continent: "NA"},
	// PlanetLab was US-university-heavy; extra NA sites keep the
	// vantage mix (and §5's best-region results) faithful to that.
	{Name: "Pittsburgh", Lat: 40.44, Lon: -79.99, Country: "US", Continent: "NA"},
	{Name: "Urbana", Lat: 40.11, Lon: -88.2, Country: "US", Continent: "NA"},
	{Name: "Salt Lake City", Lat: 40.76, Lon: -111.89, Country: "US", Continent: "NA"},
	{Name: "Durham", Lat: 35.99, Lon: -78.9, Country: "US", Continent: "NA"},
	{Name: "Gainesville", Lat: 29.65, Lon: -82.32, Country: "US", Continent: "NA"},
	{Name: "College Park", Lat: 38.99, Lon: -76.93, Country: "US", Continent: "NA"},
	{Name: "Ithaca", Lat: 42.44, Lon: -76.5, Country: "US", Continent: "NA"},
	{Name: "Pasadena", Lat: 34.15, Lon: -118.14, Country: "US", Continent: "NA"},
	{Name: "London", Lat: 51.51, Lon: -0.13, Country: "GB", Continent: "EU"},
	{Name: "Cambridge UK", Lat: 52.21, Lon: 0.12, Country: "GB", Continent: "EU"},
	{Name: "Paris", Lat: 48.86, Lon: 2.35, Country: "FR", Continent: "EU"},
	{Name: "Berlin", Lat: 52.52, Lon: 13.4, Country: "DE", Continent: "EU"},
	{Name: "Munich", Lat: 48.14, Lon: 11.58, Country: "DE", Continent: "EU"},
	{Name: "Amsterdam", Lat: 52.37, Lon: 4.9, Country: "NL", Continent: "EU"},
	{Name: "Madrid", Lat: 40.42, Lon: -3.7, Country: "ES", Continent: "EU"},
	{Name: "Rome", Lat: 41.9, Lon: 12.5, Country: "IT", Continent: "EU"},
	{Name: "Warsaw", Lat: 52.23, Lon: 21.01, Country: "PL", Continent: "EU"},
	{Name: "Moscow", Lat: 55.76, Lon: 37.62, Country: "RU", Continent: "EU"},
	{Name: "Beijing", Lat: 39.9, Lon: 116.41, Country: "CN", Continent: "AS"},
	{Name: "Shanghai", Lat: 31.23, Lon: 121.47, Country: "CN", Continent: "AS"},
	{Name: "Tokyo", Lat: 35.68, Lon: 139.69, Country: "JP", Continent: "AS"},
	{Name: "Seoul", Lat: 37.57, Lon: 126.98, Country: "KR", Continent: "AS"},
	{Name: "Singapore", Lat: 1.35, Lon: 103.82, Country: "SG", Continent: "AS"},
	{Name: "Taipei", Lat: 25.03, Lon: 121.57, Country: "TW", Continent: "AS"},
	{Name: "Bangalore", Lat: 12.97, Lon: 77.59, Country: "IN", Continent: "AS"},
	{Name: "Sao Paulo", Lat: -23.55, Lon: -46.63, Country: "BR", Continent: "SA"},
	{Name: "Buenos Aires", Lat: -34.6, Lon: -58.38, Country: "AR", Continent: "SA"},
	{Name: "Santiago", Lat: -33.45, Lon: -70.67, Country: "CL", Continent: "SA"},
	{Name: "Sydney", Lat: -33.87, Lon: 151.21, Country: "AU", Continent: "OC"},
	{Name: "Auckland", Lat: -36.85, Lon: 174.76, Country: "NZ", Continent: "OC"},
}

// Catalog returns a copy of the full vantage catalog.
func Catalog() []Location {
	return append([]Location(nil), catalog...)
}

// CountryLocation returns a representative location for a country code
// (used to position synthetic client populations). Unknown countries get
// a mid-Atlantic fallback so distance math stays defined.
func CountryLocation(country string) Location {
	if loc, ok := countryCentroids[country]; ok {
		return loc
	}
	return Location{Name: country, Lat: 30, Lon: -40, Country: country, Continent: "NA"}
}

var countryCentroids = map[string]Location{}

func init() {
	for _, c := range catalog {
		if _, ok := countryCentroids[c.Country]; !ok {
			countryCentroids[c.Country] = c
		}
	}
	// Countries present in client populations but not in the catalog.
	extra := []Location{
		{Name: "Mexico City", Lat: 19.43, Lon: -99.13, Country: "MX", Continent: "NA"},
		{Name: "Dublin", Lat: 53.34, Lon: -6.26, Country: "IE", Continent: "EU"},
		{Name: "Hong Kong", Lat: 22.32, Lon: 114.17, Country: "HK", Continent: "AS"},
		{Name: "Jakarta", Lat: -6.21, Lon: 106.85, Country: "ID", Continent: "AS"},
		{Name: "Bangkok", Lat: 13.76, Lon: 100.5, Country: "TH", Continent: "AS"},
		{Name: "Johannesburg", Lat: -26.2, Lon: 28.05, Country: "ZA", Continent: "AF"},
		{Name: "Cairo", Lat: 30.04, Lon: 31.24, Country: "EG", Continent: "AF"},
		{Name: "Lagos", Lat: 6.52, Lon: 3.38, Country: "NG", Continent: "AF"},
	}
	for _, c := range extra {
		countryCentroids[c.Country] = c
	}
}
