package der

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeParseShortForm(t *testing.T) {
	enc := Encode(TagPrintableString, []byte("hello"))
	tlv, rest, err := Parse(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("err=%v rest=%d", err, len(rest))
	}
	if tlv.Tag != TagPrintableString || string(tlv.Value) != "hello" {
		t.Fatalf("tlv: %+v", tlv)
	}
}

func TestEncodeParseLongForms(t *testing.T) {
	for _, n := range []int{0x7f, 0x80, 0xff, 0x100, 0xffff, 0x10000} {
		enc := Encode(TagSequence, bytes.Repeat([]byte{0xaa}, n))
		tlv, rest, err := Parse(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("n=%d: err=%v", n, err)
		}
		if len(tlv.Value) != n {
			t.Fatalf("n=%d: got %d", n, len(tlv.Value))
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(tag uint8, value []byte) bool {
		enc := Encode(int(tag), value)
		tlv, rest, err := Parse(enc)
		return err == nil && len(rest) == 0 && tlv.Tag == int(tag) && bytes.Equal(tlv.Value, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceChildren(t *testing.T) {
	seq := Sequence(PrintableString("a"), Integer(300), OID(2, 5, 4, 3))
	tlv, _, err := Parse(seq)
	if err != nil || tlv.Tag != TagSequence {
		t.Fatalf("err=%v tag=%x", err, tlv.Tag)
	}
	kids, err := Children(tlv.Value)
	if err != nil || len(kids) != 3 {
		t.Fatalf("kids=%d err=%v", len(kids), err)
	}
	if kids[0].Tag != TagPrintableString || kids[1].Tag != TagInteger || kids[2].Tag != TagOID {
		t.Fatalf("tags: %x %x %x", kids[0].Tag, kids[1].Tag, kids[2].Tag)
	}
	if !bytes.Equal(kids[2].Value, OIDCommonName) {
		t.Fatalf("CN OID = %x", kids[2].Value)
	}
}

func TestInteger(t *testing.T) {
	tlv, _, err := Parse(Integer(0))
	if err != nil || !bytes.Equal(tlv.Value, []byte{0}) {
		t.Fatalf("Integer(0) = %x err=%v", tlv.Value, err)
	}
	tlv, _, _ = Parse(Integer(0x80))
	if !bytes.Equal(tlv.Value, []byte{0, 0x80}) {
		t.Fatalf("Integer(0x80) = %x (needs leading zero)", tlv.Value)
	}
}

func TestOIDBase128(t *testing.T) {
	// 1.3.6.1.4.1.311 → 0x2b 06 01 04 01 82 37
	tlv, _, err := Parse(OID(1, 3, 6, 1, 4, 1, 311))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x2b, 0x06, 0x01, 0x04, 0x01, 0x82, 0x37}
	if !bytes.Equal(tlv.Value, want) {
		t.Fatalf("OID = %x, want %x", tlv.Value, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, data := range [][]byte{nil, {0x30}, {0x30, 0x82, 0x01}, {0x30, 0x05, 1, 2}, {0x30, 0x84, 1, 1, 1, 1}} {
		if _, _, err := Parse(data); err == nil {
			t.Errorf("Parse(%x) succeeded", data)
		}
	}
}

func TestFindString(t *testing.T) {
	subject := Sequence(
		Set(Sequence(Encode(TagOID, []byte{0x55, 0x04, 0x06}), PrintableString("US"))),
		Set(Sequence(Encode(TagOID, OIDCommonName), PrintableString("dl.dropbox.com"))),
	)
	outer := Sequence(Integer(1), subject)
	tlv, _, _ := Parse(outer)
	cn, ok := FindString(tlv.Value, OIDCommonName)
	if !ok || cn != "dl.dropbox.com" {
		t.Fatalf("cn=%q ok=%v", cn, ok)
	}
	if _, ok := FindString(tlv.Value, []byte{0x55, 0x04, 0x99}); ok {
		t.Fatal("phantom OID matched")
	}
}
