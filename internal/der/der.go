// Package der implements the small subset of ASN.1 DER needed to build
// and parse the X.509-style certificates appearing in the synthetic
// capture's TLS handshakes: TLV encoding with definite lengths,
// SEQUENCE/SET constructors, OIDs, and printable strings.
package der

import (
	"bytes"
	"errors"
	"fmt"
)

// Universal tags used by the certificate encoder.
const (
	TagInteger         = 0x02
	TagOID             = 0x06
	TagPrintableString = 0x13
	TagUTF8String      = 0x0c
	TagSequence        = 0x30
	TagSet             = 0x31
)

// Errors.
var (
	ErrTruncated = errors.New("der: truncated")
	ErrBadLength = errors.New("der: bad length")
)

// TLV is one decoded element.
type TLV struct {
	Tag   int
	Value []byte
}

// Encode renders a TLV with definite-length encoding.
func Encode(tag int, value []byte) []byte {
	out := []byte{byte(tag)}
	n := len(value)
	switch {
	case n < 0x80:
		out = append(out, byte(n))
	case n <= 0xff:
		out = append(out, 0x81, byte(n))
	case n <= 0xffff:
		out = append(out, 0x82, byte(n>>8), byte(n))
	default:
		out = append(out, 0x83, byte(n>>16), byte(n>>8), byte(n))
	}
	return append(out, value...)
}

// Sequence encodes a SEQUENCE of already-encoded children.
func Sequence(children ...[]byte) []byte {
	return Encode(TagSequence, bytes.Join(children, nil))
}

// Set encodes a SET of already-encoded children.
func Set(children ...[]byte) []byte {
	return Encode(TagSet, bytes.Join(children, nil))
}

// PrintableString encodes s.
func PrintableString(s string) []byte { return Encode(TagPrintableString, []byte(s)) }

// Integer encodes a small non-negative integer.
func Integer(v uint64) []byte {
	var b []byte
	for v > 0 {
		b = append([]byte{byte(v & 0xff)}, b...)
		v >>= 8
	}
	if len(b) == 0 || b[0]&0x80 != 0 {
		b = append([]byte{0}, b...)
	}
	return Encode(TagInteger, b)
}

// OID encodes an object identifier from its arc values.
func OID(arcs ...int) []byte {
	if len(arcs) < 2 {
		panic("der: OID needs at least two arcs")
	}
	out := []byte{byte(arcs[0]*40 + arcs[1])}
	for _, arc := range arcs[2:] {
		out = append(out, base128(arc)...)
	}
	return Encode(TagOID, out)
}

func base128(v int) []byte {
	if v == 0 {
		return []byte{0}
	}
	var tmp []byte
	for v > 0 {
		tmp = append([]byte{byte(v & 0x7f)}, tmp...)
		v >>= 7
	}
	for i := 0; i < len(tmp)-1; i++ {
		tmp[i] |= 0x80
	}
	return tmp
}

// Parse decodes the first TLV in data, returning it and the remainder.
func Parse(data []byte) (TLV, []byte, error) {
	if len(data) < 2 {
		return TLV{}, nil, ErrTruncated
	}
	tag := int(data[0])
	lb := data[1]
	var n, skip int
	switch {
	case lb < 0x80:
		n, skip = int(lb), 2
	case lb == 0x81:
		if len(data) < 3 {
			return TLV{}, nil, ErrTruncated
		}
		n, skip = int(data[2]), 3
	case lb == 0x82:
		if len(data) < 4 {
			return TLV{}, nil, ErrTruncated
		}
		n, skip = int(data[2])<<8|int(data[3]), 4
	case lb == 0x83:
		if len(data) < 5 {
			return TLV{}, nil, ErrTruncated
		}
		n, skip = int(data[2])<<16|int(data[3])<<8|int(data[4]), 5
	default:
		return TLV{}, nil, fmt.Errorf("%w: form %#02x", ErrBadLength, lb)
	}
	if len(data) < skip+n {
		return TLV{}, nil, ErrTruncated
	}
	return TLV{Tag: tag, Value: data[skip : skip+n]}, data[skip+n:], nil
}

// Children parses all TLVs inside a constructed value.
func Children(value []byte) ([]TLV, error) {
	var out []TLV
	for len(value) > 0 {
		tlv, rest, err := Parse(value)
		if err != nil {
			return nil, err
		}
		out = append(out, tlv)
		value = rest
	}
	return out, nil
}

// FindString walks a DER structure depth-first and returns the first
// printable/UTF8 string directly following an OID equal to want
// (encoded form, tag+len stripped). This is how the capture analyzer
// digs the CN out of a certificate's subject.
func FindString(data []byte, wantOID []byte) (string, bool) {
	tlvs, err := Children(data)
	if err != nil {
		return "", false
	}
	prevWasOID := false
	for _, tlv := range tlvs {
		switch tlv.Tag {
		case TagOID:
			prevWasOID = bytes.Equal(tlv.Value, wantOID)
		case TagPrintableString, TagUTF8String:
			if prevWasOID {
				return string(tlv.Value), true
			}
			prevWasOID = false
		case TagSequence, TagSet:
			if s, ok := FindString(tlv.Value, wantOID); ok {
				return s, true
			}
			prevWasOID = false
		default:
			prevWasOID = false
		}
	}
	return "", false
}

// OIDCommonName is the encoded value of id-at-commonName (2.5.4.3),
// without the tag/length prefix.
var OIDCommonName = []byte{0x55, 0x04, 0x03}
