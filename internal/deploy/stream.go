package deploy

import (
	"fmt"
	"io"

	"cloudscope/internal/alexa"
	"cloudscope/internal/cloud"
	"cloudscope/internal/xrand"
)

// Chunk is one rank-contiguous window of a streamed world: Domains[0]
// has rank Start+1. Each domain in it is fully deployed — zone, cloud
// artifacts, DNS delegation — until the chunk is Released.
type Chunk struct {
	Start   int // 0-based global index (rank-1) of Domains[0]
	Domains []*Domain
}

// WorldStream generates a world chunk by chunk so an Alexa-1M-scale
// study runs in memory bounded by the chunk size, not the list size.
// The stream draws from exactly the random streams Generate uses — the
// alexa name/geo streams, the shared "domains" AXFR stream, and the
// per-domain split streams — in the same order, so the sequence of
// domains (and every zone byte) is identical to the in-memory path at
// any chunk size and worker count. The per-stage sha256 goldens in
// stage_determinism_test.go hold the two paths to that contract.
//
// Call Next until it returns nil, and Release each chunk when its
// consumers are done: Release returns the chunk's provider-zone
// records, DNS delegations, and fabric registrations, so live state
// stays proportional to one chunk.
type WorldStream struct {
	w         *World
	src       *alexa.Stream
	rng       *xrand.Rand // shared "domains" stream: per-domain AXFR flags
	gp        genParams
	chunkSize int
	start     int // 0-based global index of the next chunk's first domain
	cloud     int // cloud-using domains committed so far
}

// GenerateStream starts a streaming generation of cfg's world.
// chunkSize <= 0 generates everything as one chunk.
func GenerateStream(cfg Config, chunkSize int) *WorldStream {
	w := newWorld(cfg, true)
	return &WorldStream{
		w:         w,
		src:       alexa.NewStream(cfg.NumDomains, cfg.Seed, alexa.DefaultAnchors),
		rng:       w.rng.Split("domains"),
		gp:        newGenParams(cfg),
		chunkSize: chunkSize,
	}
}

// World exposes the shared substrate (fabric, registry, clouds) that
// measurement consumers resolve against. Its Domains/CloudDomains
// slices stay empty: per-domain truth lives only in live chunks.
func (ws *WorldStream) World() *World { return ws.w }

// NumCloudDomains counts the cloud-using domains committed so far; the
// final total once Next has returned nil.
func (ws *WorldStream) NumCloudDomains() int { return ws.cloud }

// Next deploys and returns the next chunk, or nil when the ranked list
// is exhausted.
func (ws *WorldStream) Next() *Chunk {
	ads := ws.src.Next(ws.chunkSize)
	if len(ads) == 0 {
		return nil
	}
	c := &Chunk{Start: ws.start, Domains: ws.w.deployChunk(ws.rng, ads, ws.gp)}
	ws.start += len(c.Domains)
	for _, d := range c.Domains {
		if d.CloudUsing() {
			ws.cloud++
		}
	}
	return c
}

// Release tears down every domain in the chunk: zone delegations,
// provider-zone records, per-domain name-server registrations, and the
// FQDN index. Allocation cursors (addresses, feature IDs, the vanity
// counter) are never rewound, so later chunks are unaffected.
func (ws *WorldStream) Release(c *Chunk) {
	for _, d := range c.Domains {
		ws.w.releaseDomain(d)
	}
	c.Domains = nil
}

// DumpTrailer writes the summary line DumpTruth ends with, so chunked
// DumpTo output concatenates to exactly the whole-world dump.
func (ws *WorldStream) DumpTrailer(dst io.Writer) {
	fmt.Fprintf(dst, "cloudDomains=%d subs=%d\n", ws.cloud, ws.w.NumSubdomains())
}

// releaseDomain undoes a domain's footprint in shared state: the
// delegation, its zone on the hosting provider's server, self-hosted
// name-server fabric registrations, and every subdomain's provider-zone
// records.
func (w *World) releaseDomain(d *Domain) {
	if p := d.DNS; p != nil {
		p.Server.RemoveZone(d.Name)
		if p.Kind == "ec2-vm" {
			// Self-hosted name servers exist only for this domain; drop
			// their fabric endpoints too. (The VMs' address space is not
			// reused — allocation cursors only move forward.)
			for _, ip := range p.NSIPs {
				w.Fabric.Unregister(ip)
			}
		}
	}
	w.Registry.Undelegate(d.Name)
	for _, s := range d.Subdomains {
		w.releaseSubdomain(s)
	}
	d.Subdomains = nil
}

// releaseSubdomain removes the subdomain's records from the shared
// zones its deployment wrote into (the per-domain zone dies with the
// domain and needs no cleanup).
func (w *World) releaseSubdomain(s *Subdomain) {
	delete(w.bySub, s.FQDN)
	if s.vanity != "" {
		if s.OtherCDN {
			w.otherCDNZone.Remove(s.vanity)
		} else {
			w.opaqueZone.Remove(s.vanity)
		}
	}
	if s.ELB != nil {
		w.EC2.ProviderZone(cloud.ZoneAmazonAWS).Remove(s.ELB.Name)
	}
	if s.Beanstalk != nil {
		w.EC2.ProviderZone(cloud.ZoneAmazonAWS).Remove(s.Beanstalk.Name)
	}
	if s.Heroku != nil {
		w.EC2.ProviderZone(cloud.ZoneHerokuApp).Remove(s.Heroku.Name)
	}
	if s.CDN != nil {
		w.EC2.ProviderZone(cloud.ZoneCloudFront).Remove(s.CDN.Name)
	}
	if s.CS != nil {
		w.Azure.ProviderZone(cloud.ZoneCloudApp).Remove(s.CS.Name)
	}
	if s.TM != nil {
		w.Azure.ProviderZone(cloud.ZoneTrafficManager).Remove(s.TM.Name)
		for _, m := range s.TM.Members {
			w.Azure.ProviderZone(cloud.ZoneCloudApp).Remove(m.Name)
		}
	}
	if s.AzureCDN != nil {
		w.Azure.ProviderZone(cloud.ZoneMSECN).Remove(s.AzureCDN.Name)
	}
}
