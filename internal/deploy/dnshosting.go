package deploy

import (
	"fmt"

	"cloudscope/internal/cloud"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/xrand"
)

// DNSProvider is a DNS hosting operator: a set of name-server host
// names and IPs, a server process hosting its customers' zones, and a
// location class the paper's §4.1 name-server analysis recovers.
type DNSProvider struct {
	Name string
	// Kind is where the provider's name servers live: "external" (not
	// in any cloud), "route53" (CloudFront ranges), "ec2-vm" (tenant
	// VMs inside EC2), or "azure".
	Kind    string
	NSNames []string
	NSIPs   []netaddr.IP
	Server  *dnssrv.Server
}

// buildDNSProviders provisions the shared hosting pool: a Zipf-popular
// set of external hosters, a route53 fleet in CloudFront address space,
// and small EC2-VM and Azure pools for self-hosters. Every provider's
// own glue zone (A records for its NS names) is served by itself.
func (w *World) buildDNSProviders() {
	rng := w.rng.Split("dnshosting")
	nExternal := w.Cfg.NumDomains/800 + 8

	externalIP := func(i, j int) netaddr.IP {
		// Carve NS addresses from a dedicated non-cloud block.
		return netaddr.MustParseIP("204.13.0.0") + netaddr.IP(i*64+j+1)
	}
	for i := 0; i < nExternal; i++ {
		name := fmt.Sprintf("dnshost%02d.net", i)
		p := &DNSProvider{Name: name, Kind: "external", Server: dnssrv.NewServer()}
		glue := dnssrv.NewZone(name)
		n := rng.Range(3, 8)
		for j := 0; j < n; j++ {
			fq := fmt.Sprintf("ns%d.%s", j+1, name)
			ip := externalIP(i, j)
			p.NSNames = append(p.NSNames, fq)
			p.NSIPs = append(p.NSIPs, ip)
			glue.MustAdd(dnswire.RR{Name: fq, Type: dnswire.TypeA, TTL: 86400, IP: ip})
		}
		p.Server.AddZone(glue)
		dnssrv.Deploy(w.Fabric, w.Registry, p.Server, p.NSIPs...)
		w.DNSProviders = append(w.DNSProviders, p)
	}

	// Route53: one logical provider with a larger NS fleet; customers
	// pick 4 servers each. All fleet IPs serve all route53 zones.
	r53 := &DNSProvider{Name: "route53", Kind: "route53", Server: dnssrv.NewServer()}
	fleet := 8 + w.Cfg.NumDomains/2500
	for j := 0; j < fleet; j++ {
		fq, ip := w.EC2.Route53NS()
		r53.NSNames = append(r53.NSNames, fq)
		r53.NSIPs = append(r53.NSIPs, ip)
	}
	dnssrv.Deploy(w.Fabric, w.Registry, r53.Server, r53.NSIPs...)
	w.DNSProviders = append(w.DNSProviders, r53)

	// A small Azure-hosted provider.
	azp := &DNSProvider{Name: "azuredns.net", Kind: "azure", Server: dnssrv.NewServer()}
	glue := dnssrv.NewZone("azuredns.net")
	for j := 0; j < 2; j++ {
		inst := w.Azure.Launch("az.us-north", -1, "azure.cs", cloud.KindNS)
		fq := fmt.Sprintf("ns%d.azuredns.net", j+1)
		azp.NSNames = append(azp.NSNames, fq)
		azp.NSIPs = append(azp.NSIPs, inst.PublicIP)
		glue.MustAdd(dnswire.RR{Name: fq, Type: dnswire.TypeA, TTL: 86400, IP: inst.PublicIP})
	}
	azp.Server.AddZone(glue)
	dnssrv.Deploy(w.Fabric, w.Registry, azp.Server, azp.NSIPs...)
	w.DNSProviders = append(w.DNSProviders, azp)
}

// externalProviders returns the external pool with Zipf weights (a few
// big hosters serve most domains).
func (w *World) externalProviders() ([]*DNSProvider, []float64) {
	var ps []*DNSProvider
	for _, p := range w.DNSProviders {
		if p.Kind == "external" {
			ps = append(ps, p)
		}
	}
	weights := make([]float64, len(ps))
	for i := range ps {
		weights[i] = 1 / float64(i+1)
	}
	return ps, weights
}

func (w *World) providerOfKind(kind string) *DNSProvider {
	for _, p := range w.DNSProviders {
		if p.Kind == kind {
			return p
		}
	}
	return nil
}

// assignDNS hosts d's zone: picks a provider kind by the paper's NS
// location mix, installs NS records, and delegates. Self-hosters get a
// fresh per-domain provider whose name servers are VMs in the domain's
// home region. The provider choice (and every draw behind it) happens
// at plan time — the pools it reads are fixed before deployDomains
// runs, and self-hosters only ever append "ec2-vm" providers the
// plan-time lookups filter out — while the zone delegation and any VM
// launches land in commit ops.
func (w *World) assignDNS(pl *domainPlan, rng *xrand.Rand, d *Domain) {
	kind := pickKind(rng)
	if (kind == "ec2-vm" || kind == "azure") && d.HomeRegion == "" {
		kind = "external"
	}
	switch kind {
	case "route53":
		base := w.providerOfKind("route53")
		// Pick 4 fleet servers for this domain.
		p := &DNSProvider{Name: "route53", Kind: "route53", Server: base.Server}
		start := rng.Intn(len(base.NSIPs))
		for j := 0; j < 4 && j < len(base.NSIPs); j++ {
			i := (start + j) % len(base.NSIPs)
			p.NSNames = append(p.NSNames, base.NSNames[i])
			p.NSIPs = append(p.NSIPs, base.NSIPs[i])
		}
		pl.op(func() { w.attachDNS(d, p) })
	case "ec2-vm":
		pl.op(func() { w.attachDNS(d, w.selfHostedProvider(d, w.EC2)) })
	case "azure":
		p := w.providerOfKind("azure")
		pl.op(func() { w.attachDNS(d, p) })
	default:
		ps, weights := w.externalProviders()
		p := xrand.Pick(rng, ps, weights)
		pl.op(func() { w.attachDNS(d, p) })
	}
}

// attachDNS installs p's NS records in d's zone and delegates to it.
func (w *World) attachDNS(d *Domain, p *DNSProvider) {
	d.DNS = p
	for _, nsName := range p.NSNames {
		d.Zone.MustAdd(dnswire.RR{Name: d.Name, Type: dnswire.TypeNS, TTL: 86400, Target: nsName})
	}
	p.Server.AddZone(d.Zone)
	w.Registry.Delegate(d.Name, p.NSIPs...)
}

// selfHostedProvider launches name-server VMs inside the tenant's cloud
// (the 5% of cloud-using subdomains whose DNS itself runs on VMs).
func (w *World) selfHostedProvider(d *Domain, c *cloud.Cloud) *DNSProvider {
	region := d.HomeRegion
	if c.Region(region) == nil {
		region = c.Regions()[0]
	}
	p := &DNSProvider{Name: "self:" + d.Name, Kind: "ec2-vm", Server: dnssrv.NewServer()}
	for j := 0; j < 2; j++ {
		inst := c.Launch(region, -1, "m1.small", cloud.KindNS)
		fq := fmt.Sprintf("ns%d.%s", j+1, d.Name)
		p.NSNames = append(p.NSNames, fq)
		p.NSIPs = append(p.NSIPs, inst.PublicIP)
		// Glue lives in the domain's own zone — which makes the NS
		// host a discoverable, genuinely cloud-using subdomain;
		// record it as ground truth like any other VM front end.
		d.Zone.MustAdd(dnswire.RR{Name: fq, Type: dnswire.TypeA, TTL: 86400, IP: inst.PublicIP})
		s := &Subdomain{
			FQDN: fq, Label: fmt.Sprintf("ns%d", j+1), Domain: d,
			Pattern: PatternVM, Provider: ipranges.EC2,
			Regions: []string{region},
			Zones:   map[string][]int{region: {inst.ZoneIndex}},
			VMs:     []*cloud.Instance{inst}, InWordlist: true,
		}
		w.registerSubdomain(s)
	}
	dnssrv.Deploy(w.Fabric, w.Registry, p.Server, p.NSIPs...)
	// The pool only serves inspection (plan-time lookups filter out
	// "ec2-vm" entries); a streaming world drops per-domain providers
	// with their chunk instead of accumulating one per self-hoster.
	if !w.streaming {
		w.DNSProviders = append(w.DNSProviders, p)
	}
	return p
}

func pickKind(rng *xrand.Rand) string {
	kinds := []string{"external", "route53", "ec2-vm", "azure"}
	weights := make([]float64, len(kinds))
	for i, k := range kinds {
		weights[i] = nsKindWeights[k]
	}
	return xrand.Pick(rng, kinds, weights)
}
