// Package deploy generates the ground-truth world the measurement study
// rediscovers: a ranked web population whose cloud deployments follow
// the marginal distributions the paper measured, published into a fully
// functional simulated DNS (zones, name servers, delegations) over real
// cloud-model infrastructure (VMs, ELBs, PaaS apps, CDNs, Cloud
// Services, Traffic Manager).
//
// Every allocation is recorded as ground truth on the World, so each
// analysis in internal/core can be validated against what was actually
// deployed — the reproduction's substitute for the authors' manual
// spot-checking.
package deploy

import (
	"cloudscope/internal/ipranges"
	"cloudscope/internal/parallel"
)

// Config parameterizes world generation. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	Seed int64
	// NumDomains is the size of the ranked list (the paper's "top 1M",
	// scaled).
	NumDomains int
	// CloudFraction is the fraction of ranked domains using EC2/Azure
	// (~4% in the paper).
	CloudFraction float64
	// TopQuarterShare is the fraction of cloud-using domains that fall
	// in the top quarter of the ranking (0.423 in the paper).
	TopQuarterShare float64
	// MeanCloudSubs controls the heavy-tailed number of cloud-using
	// subdomains per cloud-using domain (paper mean ≈ 17.7).
	MeanCloudSubs float64
	// MaxCloudSubs caps the tail.
	MaxCloudSubs int
	// WordlistBias is the probability a subdomain label is drawn from
	// the brute-force dictionary (labels outside it are invisible to
	// dnsmap-style discovery, keeping results a lower bound).
	WordlistBias float64
	// AXFRFraction is the fraction of domains answering zone transfers
	// (~8% of the paper's 1M).
	AXFRFraction float64
	// GeoAffinity is the probability a domain's home region is chosen
	// near its customer country rather than by global popularity.
	GeoAffinity float64
	// HerokuPoolSize is the size of Heroku's shared routing pool (94
	// distinct IPs in the paper, scaled by default).
	HerokuPoolSize int
	// BackendFraction is the probability a VM-front subdomain also runs
	// back-end instances (databases, caches, workers). Back ends are
	// invisible to DNS — the paper explicitly left them to future work —
	// but the generator plants them so the extension analysis in
	// internal/core/backend has ground truth to study.
	BackendFraction float64
	// Par bounds and instruments the generator's plan-phase fan-out.
	// The generated world is bit-identical at every worker count: domain
	// plans run in parallel on per-domain split streams, and all shared
	// allocator mutations commit sequentially in rank order.
	Par parallel.Options
}

// DefaultConfig returns the paper-calibrated configuration at 50k-domain
// scale (the "top 1M" scaled 20x down).
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		NumDomains:      50000,
		CloudFraction:   0.04,
		TopQuarterShare: 0.423,
		MeanCloudSubs:   17.7,
		MaxCloudSubs:    400,
		WordlistBias:    0.90,
		AXFRFraction:    0.08,
		GeoAffinity:     0.50,
		HerokuPoolSize:  24,
		BackendFraction: 0.5,
	}
}

// Scaled returns the config with NumDomains set to n and pools scaled
// proportionally; used by tests and benchmarks.
func (c Config) Scaled(n int) Config {
	c.NumDomains = n
	c.HerokuPoolSize = 6 + n/5000
	return c
}

// Pattern is a subdomain's ground-truth front-end deployment shape.
type Pattern string

// Ground-truth deployment patterns. The detector in core/patterns maps
// DNS observations back onto these.
const (
	PatternVM          Pattern = "vm"           // P1: A records to tenant VMs
	PatternELB         Pattern = "elb"          // P2: CNAME to an ELB
	PatternBeanstalk   Pattern = "beanstalk"    // P2 over PaaS: CNAME to Beanstalk env (always ELB)
	PatternHerokuELB   Pattern = "heroku-elb"   // P2 over PaaS: Heroku app fronted by ELB
	PatternHeroku      Pattern = "heroku"       // P3: Heroku without ELB
	PatternOpaqueCNAME Pattern = "opaque-cname" // cloud IP behind an unrecognized CNAME
	PatternHybrid      Pattern = "hybrid"       // A records mixing cloud and other IPs
	PatternAzureCS     Pattern = "azure-cs"     // CNAME to *.cloudapp.net
	PatternAzureIP     Pattern = "azure-ip"     // direct A record to a Cloud Service IP
	PatternAzureTM     Pattern = "azure-tm"     // CNAME to *.trafficmanager.net
	PatternAzureOpaque Pattern = "azure-opaque" // Azure IP behind an unrecognized CNAME
	PatternOther       Pattern = "other"        // hosted outside both clouds
)

// patternWeightsEC2 follows Table 7's estimated shares of EC2-using
// subdomains (VM 71.5%, ELB 3.8%, Beanstalk <0.1%, Heroku 8.2% of which
// ~3% are ELB-fronted, unidentified CNAMEs 16%, hybrid 3%).
var patternWeightsEC2 = map[Pattern]float64{
	PatternVM:          0.680,
	PatternELB:         0.035,
	PatternBeanstalk:   0.0008,
	PatternHerokuELB:   0.0026,
	PatternHeroku:      0.079,
	PatternOpaqueCNAME: 0.160,
	PatternHybrid:      0.030,
}

// patternWeightsAzure follows §4.1's Azure results: 17% direct IP, CS
// CNAMEs dominate the rest, TM 1.5%, ~28% unidentified.
var patternWeightsAzure = map[Pattern]float64{
	PatternAzureCS:     0.525,
	PatternAzureIP:     0.170,
	PatternAzureTM:     0.015,
	PatternAzureOpaque: 0.285,
	PatternHybrid:      0.005,
}

// providerMix follows Table 3's domain-level provider categories.
type providerCategory int

const (
	catEC2Only providerCategory = iota
	catEC2Other
	catAzureOnly
	catAzureOther
	catBoth
)

var providerCategoryWeights = []float64{0.081, 0.861, 0.005, 0.046, 0.007}

// regionWeightsEC2 follows Table 9's EC2 subdomain distribution.
var regionWeightsEC2 = map[string]float64{
	"ec2.us-east-1":      0.78,
	"ec2.eu-west-1":      0.125,
	"ec2.us-west-1":      0.057,
	"ec2.us-west-2":      0.022,
	"ec2.ap-southeast-1": 0.029,
	"ec2.ap-northeast-1": 0.024,
	"ec2.sa-east-1":      0.021,
	"ec2.ap-southeast-2": 0.0008,
}

// regionWeightsAzure follows Table 9's Azure subdomain distribution.
var regionWeightsAzure = map[string]float64{
	"az.us-east":      862,
	"az.us-west":      558,
	"az.us-north":     2071,
	"az.us-south":     1395,
	"az.eu-west":      1035,
	"az.eu-north":     1205,
	"az.ap-southeast": 632,
	"az.ap-east":      502,
}

// zoneWeights gives per-region zone popularity (Table 14's skew).
var zoneWeights = map[string][]float64{
	"ec2.us-east-1":      {0.48, 0.18, 0.34},
	"ec2.us-west-1":      {0.47, 0.53},
	"ec2.us-west-2":      {0.44, 0.32, 0.24},
	"ec2.eu-west-1":      {0.32, 0.27, 0.41},
	"ec2.ap-northeast-1": {0.25, 0.75},
	"ec2.ap-southeast-1": {0.37, 0.63},
	"ec2.ap-southeast-2": {0.5, 0.5},
	"ec2.sa-east-1":      {0.62, 0.38},
}

// zoneCountWeights follows Figure 8a: 33.2% of subdomains in one zone,
// 44.5% in two, 22.3% in three or more.
var zoneCountWeights = []float64{0.332, 0.445, 0.223}

// regionCount distributions (Figure 6a): EC2 97% single region, Azure 92%.
var (
	regionCountWeightsEC2   = []float64{0.97, 0.025, 0.005}
	regionCountWeightsAzure = []float64{0.92, 0.07, 0.01}
)

// nsProviderKind weights: most DNS is hosted outside the clouds; route53
// (inside CloudFront ranges), EC2-VM self-hosting, and Azure hosting
// cover the rest (§4.1's name-server analysis).
var nsKindWeights = map[string]float64{
	"external": 0.92,
	"route53":  0.060,
	"ec2-vm":   0.017,
	"azure":    0.003,
}

// continentRegionsEC2 lists EC2 regions per continent for geo-affine
// home-region choice.
var continentRegionsEC2 = map[string][]string{
	"NA": {"ec2.us-east-1", "ec2.us-west-1", "ec2.us-west-2"},
	"SA": {"ec2.sa-east-1"},
	"EU": {"ec2.eu-west-1"},
	"AS": {"ec2.ap-southeast-1", "ec2.ap-northeast-1"},
	"OC": {"ec2.ap-southeast-2"},
}

var continentRegionsAzure = map[string][]string{
	"NA": {"az.us-east", "az.us-west", "az.us-north", "az.us-south"},
	"EU": {"az.eu-west", "az.eu-north"},
	"AS": {"az.ap-southeast", "az.ap-east"},
}

// providerOf reports which provider a pattern deploys on.
func providerOf(p Pattern) ipranges.Provider {
	switch p {
	case PatternAzureCS, PatternAzureIP, PatternAzureTM, PatternAzureOpaque:
		return ipranges.Azure
	case PatternOther:
		return ""
	default:
		return ipranges.EC2
	}
}
