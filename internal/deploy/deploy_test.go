package deploy

import (
	"math"
	"testing"

	"cloudscope/internal/dnssrv"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
)

// testWorld is shared across tests: generation is the expensive step.
var testW = Generate(DefaultConfig().Scaled(4000))

func TestCloudFraction(t *testing.T) {
	frac := float64(len(testW.CloudDomains)) / float64(len(testW.Domains))
	if frac < 0.028 || frac > 0.056 {
		t.Fatalf("cloud-using fraction = %.3f, want ~0.04", frac)
	}
}

func TestRankSkew(t *testing.T) {
	quarter := testW.Cfg.NumDomains / 4
	top := 0
	for _, d := range testW.CloudDomains {
		if d.Rank <= quarter {
			top++
		}
	}
	share := float64(top) / float64(len(testW.CloudDomains))
	if share < 0.30 || share > 0.55 {
		t.Fatalf("top-quarter share = %.2f, want ~0.42", share)
	}
}

func TestProviderMix(t *testing.T) {
	var ec2, azure int
	for _, d := range testW.CloudDomains {
		if d.UsesEC2() {
			ec2++
		}
		if d.UsesAzure() {
			azure++
		}
	}
	n := len(testW.CloudDomains)
	if f := float64(ec2) / float64(n); f < 0.88 || f > 0.99 {
		t.Fatalf("EC2 share of cloud domains = %.2f, want ~0.95", f)
	}
	if f := float64(azure) / float64(n); f < 0.02 || f > 0.12 {
		t.Fatalf("Azure share = %.2f, want ~0.06", f)
	}
}

func TestPatternShares(t *testing.T) {
	counts := map[Pattern]int{}
	totalEC2 := 0
	for _, d := range testW.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			if s.Provider == ipranges.EC2 {
				totalEC2++
				counts[s.Pattern]++
			}
		}
	}
	if totalEC2 < 500 {
		t.Fatalf("only %d EC2 subdomains generated", totalEC2)
	}
	share := func(p Pattern) float64 { return float64(counts[p]) / float64(totalEC2) }
	if s := share(PatternVM) + share(PatternHybrid); s < 0.60 || s < 0.5 {
		t.Fatalf("VM-front share = %.2f, want ~0.72", s)
	}
	if s := share(PatternHeroku) + share(PatternHerokuELB); s < 0.04 || s > 0.14 {
		t.Fatalf("heroku share = %.2f, want ~0.08", s)
	}
	if s := share(PatternELB) + share(PatternBeanstalk) + share(PatternHerokuELB); s < 0.015 || s > 0.09 {
		t.Fatalf("ELB share = %.2f, want ~0.04", s)
	}
	if s := share(PatternOpaqueCNAME); s < 0.09 || s > 0.24 {
		t.Fatalf("opaque share = %.2f, want ~0.16", s)
	}
}

func TestRegionDistribution(t *testing.T) {
	regionSubs := map[string]int{}
	single, multi := 0, 0
	for _, d := range testW.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			if s.Provider != ipranges.EC2 || len(s.Regions) == 0 {
				continue
			}
			for _, r := range s.Regions {
				regionSubs[r]++
			}
			if len(s.Regions) == 1 {
				single++
			} else {
				multi++
			}
		}
	}
	total := single + multi
	if f := float64(single) / float64(total); f < 0.94 || f > 0.995 {
		t.Fatalf("single-region share = %.3f, want ~0.97", f)
	}
	if f := float64(regionSubs["ec2.us-east-1"]) / float64(total); f < 0.55 || f > 0.85 {
		t.Fatalf("us-east share = %.2f, want ~0.73", f)
	}
	if regionSubs["ec2.eu-west-1"] < regionSubs["ec2.ap-southeast-2"] {
		t.Fatal("eu-west should dominate ap-southeast-2")
	}
}

func TestZoneDistribution(t *testing.T) {
	zc := map[int]int{}
	total := 0
	for _, d := range testW.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			if s.Provider != ipranges.EC2 || s.Pattern == PatternCDN {
				continue
			}
			zones := 0
			for _, zs := range s.Zones {
				zones += len(zs)
			}
			if zones == 0 {
				continue
			}
			k := zones
			if k > 3 {
				k = 3
			}
			zc[k]++
			total++
		}
	}
	one := float64(zc[1]) / float64(total)
	two := float64(zc[2]) / float64(total)
	three := float64(zc[3]) / float64(total)
	if math.Abs(one-0.33) > 0.12 || math.Abs(two-0.445) > 0.13 || math.Abs(three-0.223) > 0.12 {
		t.Fatalf("zone-count mix = %.2f/%.2f/%.2f, want ~0.33/0.45/0.22", one, two, three)
	}
}

func TestGroundTruthMatchesDNS(t *testing.T) {
	// Every VM-front subdomain's A records must resolve (through the
	// real resolver) to its recorded VM IPs.
	rv := dnssrv.NewResolver(testW.Fabric, testW.Registry, netaddr.MustParseIP("128.105.1.1"))
	checked := 0
	for _, d := range testW.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			if s.Pattern != PatternVM || len(s.Regions) != 1 {
				continue
			}
			chain, err := rv.LookupA(s.FQDN)
			if err != nil {
				t.Fatalf("LookupA(%s): %v", s.FQDN, err)
			}
			want := map[netaddr.IP]bool{}
			for _, vm := range s.VMs {
				want[vm.PublicIP] = true
			}
			for _, rr := range chain {
				if rr.Type == dnswire.TypeA && !want[rr.IP] {
					t.Fatalf("%s resolved to unexpected IP %v", s.FQDN, rr.IP)
				}
			}
			checked++
			if checked >= 50 {
				return
			}
		}
	}
	if checked == 0 {
		t.Fatal("no VM subdomains checked")
	}
}

func TestELBResolvesThroughCNAME(t *testing.T) {
	rv := dnssrv.NewResolver(testW.Fabric, testW.Registry, netaddr.MustParseIP("128.105.1.2"))
	for _, d := range testW.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			if s.Pattern != PatternELB {
				continue
			}
			chain, err := rv.LookupA(s.FQDN)
			if err != nil {
				t.Fatalf("LookupA(%s): %v", s.FQDN, err)
			}
			var sawCNAME, sawA bool
			for _, rr := range chain {
				if rr.Type == dnswire.TypeCNAME && rr.Target == s.ELB.Name {
					sawCNAME = true
				}
				if rr.Type == dnswire.TypeA {
					sawA = true
					if testW.Ranges.Region(rr.IP) != s.ELB.Region {
						t.Fatalf("%s ELB proxy in %s, want %s", s.FQDN, testW.Ranges.Region(rr.IP), s.ELB.Region)
					}
				}
			}
			if !sawCNAME || !sawA {
				t.Fatalf("%s chain incomplete: %v", s.FQDN, chain)
			}
			return
		}
	}
	t.Skip("no ELB subdomain in test world")
}

func TestAnchorsDeployed(t *testing.T) {
	for _, name := range []string{"amazon.com", "pinterest.com", "msn.com", "dropbox.com", "netflix.com"} {
		var dom *Domain
		for _, d := range testW.CloudDomains {
			if d.Name == name {
				dom = d
			}
		}
		if dom == nil {
			t.Fatalf("anchor %s not cloud-using", name)
		}
	}
	// pinterest: 18 cloud subdomains, single region.
	var pin *Domain
	for _, d := range testW.CloudDomains {
		if d.Name == "pinterest.com" {
			pin = d
		}
	}
	if got := len(pin.CloudSubdomains()); got != 18 {
		t.Fatalf("pinterest cloud subdomains = %d, want 18", got)
	}
	for _, s := range pin.CloudSubdomains() {
		if len(s.Regions) != 1 || s.Regions[0] != "ec2.us-east-1" {
			t.Fatalf("pinterest %s regions = %v", s.FQDN, s.Regions)
		}
	}
	// netflix m. has a large physical ELB fleet.
	msub, ok := testW.Subdomain("m.netflix.com")
	if !ok || msub.ELB == nil {
		t.Fatal("m.netflix.com missing ELB")
	}
	if got := len(msub.ELB.Proxies); got < 60 {
		t.Fatalf("m.netflix.com ELB proxies = %d, want ~90", got)
	}
}

func TestAXFRFraction(t *testing.T) {
	allowed := 0
	for _, d := range testW.Domains {
		if d.Zone.AllowAXFR {
			allowed++
		}
	}
	f := float64(allowed) / float64(len(testW.Domains))
	if f < 0.05 || f > 0.11 {
		t.Fatalf("AXFR fraction = %.3f, want ~0.08", f)
	}
}

func TestNSDelegationsWork(t *testing.T) {
	rv := dnssrv.NewResolver(testW.Fabric, testW.Registry, netaddr.MustParseIP("128.105.1.3"))
	for i, d := range testW.Domains {
		if i >= 30 {
			break
		}
		ns, err := rv.LookupNS(d.Name)
		if err != nil {
			t.Fatalf("LookupNS(%s): %v", d.Name, err)
		}
		if len(ns) < 2 {
			t.Fatalf("%s has %d NS", d.Name, len(ns))
		}
		// NS host names themselves resolve.
		for _, n := range ns {
			if _, err := rv.LookupA(n); err != nil {
				t.Fatalf("NS %s unresolvable: %v", n, err)
			}
		}
	}
}

func TestDNSProviderKindMix(t *testing.T) {
	kinds := map[string]int{}
	for _, d := range testW.CloudDomains {
		kinds[d.DNS.Kind]++
	}
	if kinds["external"] < kinds["route53"] {
		t.Fatal("external DNS hosting should dominate")
	}
	if kinds["route53"] == 0 {
		t.Fatal("no route53-hosted domain")
	}
}

func TestSubdomainIndex(t *testing.T) {
	s, ok := testW.Subdomain("www.pinterest.com")
	if !ok || s.Domain.Name != "pinterest.com" {
		t.Fatal("Subdomain index broken")
	}
	if _, ok := testW.Subdomain("nope.nope.nope"); ok {
		t.Fatal("phantom subdomain")
	}
}

func TestWordlistBias(t *testing.T) {
	in, out := 0, 0
	for _, d := range testW.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			if s.InWordlist {
				in++
			} else {
				out++
			}
		}
	}
	f := float64(in) / float64(in+out)
	if f < 0.80 || f > 0.97 {
		t.Fatalf("wordlist share = %.2f, want ~0.90", f)
	}
}

func TestHerokuSharedPool(t *testing.T) {
	// All heroku apps resolve into the small shared pool.
	pool := map[netaddr.IP]bool{}
	for _, inst := range testW.Heroku.Pool {
		pool[inst.PublicIP] = true
	}
	rv := dnssrv.NewResolver(testW.Fabric, testW.Registry, netaddr.MustParseIP("128.105.1.4"))
	count := 0
	for _, d := range testW.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			if s.Pattern != PatternHeroku {
				continue
			}
			chain, err := rv.LookupA(s.FQDN)
			if err != nil {
				t.Fatalf("LookupA(%s): %v", s.FQDN, err)
			}
			for _, rr := range chain {
				if rr.Type == dnswire.TypeA && !pool[rr.IP] {
					t.Fatalf("%s heroku IP %v outside pool", s.FQDN, rr.IP)
				}
			}
			count++
			if count > 20 {
				return
			}
		}
	}
}

func TestCustomerCountryMismatchRate(t *testing.T) {
	// §4.2: ~47% of subdomains are hosted outside their customer country
	// (we check the domain level, continent-agnostic: country of the
	// home region vs customer country).
	mismatch, total := 0, 0
	for _, d := range testW.CloudDomains {
		if d.HomeRegion == "" || d.CustomerCountry == "" {
			continue
		}
		total++
		if regionCountry(d.HomeRegion) != d.CustomerCountry {
			mismatch++
		}
	}
	f := float64(mismatch) / float64(total)
	if f < 0.32 || f > 0.68 {
		t.Fatalf("customer-country mismatch = %.2f, want ~0.5", f)
	}
}

func regionCountry(region string) string {
	switch region {
	case "ec2.us-east-1", "ec2.us-west-1", "ec2.us-west-2",
		"az.us-east", "az.us-west", "az.us-north", "az.us-south":
		return "US"
	case "ec2.eu-west-1", "az.eu-west":
		return "IE"
	case "az.eu-north":
		return "NL"
	case "ec2.ap-southeast-1", "az.ap-southeast":
		return "SG"
	case "ec2.ap-northeast-1":
		return "JP"
	case "ec2.sa-east-1":
		return "BR"
	case "ec2.ap-southeast-2":
		return "AU"
	case "az.ap-east":
		return "HK"
	}
	return ""
}

func TestDeterminism(t *testing.T) {
	a := Generate(DefaultConfig().Scaled(300))
	b := Generate(DefaultConfig().Scaled(300))
	if len(a.CloudDomains) != len(b.CloudDomains) {
		t.Fatalf("cloud domain counts differ: %d vs %d", len(a.CloudDomains), len(b.CloudDomains))
	}
	for i := range a.CloudDomains {
		da, db := a.CloudDomains[i], b.CloudDomains[i]
		if da.Name != db.Name || len(da.Subdomains) != len(db.Subdomains) {
			t.Fatalf("domain %d differs: %s/%d vs %s/%d", i, da.Name, len(da.Subdomains), db.Name, len(db.Subdomains))
		}
	}
}

func TestMeanCloudSubsInRange(t *testing.T) {
	total := 0
	for _, d := range testW.CloudDomains {
		total += len(d.CloudSubdomains())
	}
	mean := float64(total) / float64(len(testW.CloudDomains))
	// Anchors inflate the mean slightly; accept a broad band around 17.7.
	if mean < 4 || mean > 40 {
		t.Fatalf("mean cloud subdomains per domain = %.1f, want ~10-20", mean)
	}
}
