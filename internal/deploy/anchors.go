package deploy

import (
	"fmt"

	"cloudscope/internal/cloud"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/xrand"
)

// anchorSub describes one scripted subdomain of an anchor domain.
type anchorSub struct {
	label    string
	count    int // >1 expands to label1, label2, ... (label kept for 1)
	pattern  Pattern
	region   string // "" = domain home region
	zones    []int
	proxies  int  // extra ELB proxy placements beyond one per zone
	otherCDN bool // CNAME into a non-CloudFront CDN
}

// anchorSpec scripts a top domain's deployment to match the paper's
// Tables 4, 8, 10 and 15 rows.
type anchorSpec struct {
	azure      bool
	home       string
	extraOther int // additional other-hosted subdomains (Table 4 totals)
	subs       []anchorSub
}

// anchorSpecs reproduces the paper's top cloud-using domains. Counts are
// per the published tables; ELB proxy fleets are kept at published scale
// where practical.
var anchorSpecs = map[string]anchorSpec{
	// Table 8: amazon.com — 2 cloud subdomains: 1 PaaS, 1 ELB, 27 ELB IPs.
	"amazon.com": {home: "ec2.us-east-1", extraOther: 66, subs: []anchorSub{
		{label: "ws", pattern: PatternBeanstalk, zones: []int{0, 1, 2}, proxies: 12},
		{label: "cloudreader", pattern: PatternELB, zones: []int{0, 1, 2}, proxies: 9},
	}},
	// linkedin.com — 3 subdomains, 1 PaaS, 1 ELB; 2 regions (Table 10).
	"linkedin.com": {home: "ec2.us-east-1", extraOther: 139, subs: []anchorSub{
		{label: "platform", pattern: PatternHeroku},
		{label: "api", pattern: PatternELB, zones: []int{0}},
		{label: "static", pattern: PatternVM, region: "ec2.eu-west-1", zones: []int{0, 1, 2}},
	}},
	// 163.com — 4 subdomains on a CDN other than CloudFront.
	"163.com": {home: "ec2.us-east-1", extraOther: 177, subs: []anchorSub{
		{label: "cdn", count: 4, pattern: PatternOpaqueCNAME, zones: []int{0}, otherCDN: true},
	}},
	// pinterest.com — 18 subdomains, 4 VM front ends; 1 region; 10 subs
	// in one zone, 8 in three (Table 15).
	"pinterest.com": {home: "ec2.us-east-1", extraOther: 6, subs: []anchorSub{
		{label: "www", pattern: PatternVM, zones: []int{0, 1, 2}},
		{label: "api", pattern: PatternVM, zones: []int{0, 1, 2}},
		{label: "m", pattern: PatternVM, zones: []int{0, 1, 2}},
		{label: "events", pattern: PatternVM, zones: []int{0, 1, 2}},
		{label: "pin", count: 4, pattern: PatternOpaqueCNAME, zones: []int{0, 1, 2}},
		{label: "media", count: 10, pattern: PatternOpaqueCNAME, zones: []int{0}},
	}},
	// fc2.com — 14 subdomains: 10 VM fronts, 4 ELBs with a large proxy
	// fleet; 2 regions.
	"fc2.com": {home: "ec2.us-east-1", extraOther: 75, subs: []anchorSub{
		{label: "blog", count: 9, pattern: PatternVM, zones: []int{0, 1}},
		{label: "video", pattern: PatternVM, region: "ec2.ap-northeast-1", zones: []int{0, 1}},
		{label: "lb", count: 4, pattern: PatternELB, zones: []int{0, 1}, proxies: 15},
	}},
	// conduit.com — 1 subdomain: Beanstalk (PaaS + ELB), 3 ELB IPs.
	"conduit.com": {home: "ec2.us-east-1", extraOther: 39, subs: []anchorSub{
		{label: "apps", pattern: PatternBeanstalk, zones: []int{0, 1}, proxies: 1},
	}},
	// ask.com — 1 VM-front subdomain.
	"ask.com": {home: "ec2.us-east-1", extraOther: 96, subs: []anchorSub{
		{label: "widgets", pattern: PatternVM, zones: []int{0}},
	}},
	// apple.com — 1 VM-front subdomain.
	"apple.com": {home: "ec2.us-east-1", extraOther: 72, subs: []anchorSub{
		{label: "concierge", pattern: PatternVM, zones: []int{0}},
	}},
	// imdb.com — 2 subdomains, one on CloudFront.
	"imdb.com": {home: "ec2.us-east-1", extraOther: 24, subs: []anchorSub{
		{label: "ia", pattern: PatternCDN},
		{label: "app", pattern: PatternOpaqueCNAME, zones: []int{0}},
	}},
	// hao123.com — 1 subdomain on a non-CloudFront CDN.
	"hao123.com": {home: "ec2.us-east-1", extraOther: 44, subs: []anchorSub{
		{label: "static", pattern: PatternOpaqueCNAME, zones: []int{0}, otherCDN: true},
	}},

	// Azure anchors (Table 10).
	"live.com": {azure: true, home: "az.us-north", subs: []anchorSub{
		{label: "login", count: 6, pattern: PatternAzureCS},
		{label: "mail", count: 6, pattern: PatternAzureCS, region: "az.us-south"},
		{label: "cid", count: 6, pattern: PatternAzureCS, region: "az.us-east"},
	}},
	"msn.com": {azure: true, home: "az.us-north", extraOther: 20, subs: []anchorSub{
		{label: "portal", count: 30, pattern: PatternAzureCS},
		{label: "ent", count: 20, pattern: PatternAzureCS, region: "az.us-south"},
		{label: "eu", count: 14, pattern: PatternAzureCS, region: "az.eu-west"},
		{label: "asia", count: 8, pattern: PatternAzureCS, region: "az.ap-southeast"},
		{label: "west", count: 6, pattern: PatternAzureCS, region: "az.us-west"},
		{label: "tm", count: 11, pattern: PatternAzureTM},
	}},
	"bing.com": {azure: true, home: "az.us-north", subs: []anchorSub{
		{label: "apiservices", pattern: PatternAzureCS},
	}},
	"microsoft.com": {azure: true, home: "az.us-north", extraOther: 30, subs: []anchorSub{
		{label: "svc", count: 3, pattern: PatternAzureCS},
		{label: "dl", count: 2, pattern: PatternAzureCS, region: "az.us-south"},
		{label: "euportal", pattern: PatternAzureCS, region: "az.eu-north"},
		{label: "hk", pattern: PatternAzureCS, region: "az.ap-east"},
		{label: "tmsvc", count: 4, pattern: PatternAzureTM},
	}},
	"go.com": {azure: true, home: "az.us-south", subs: []anchorSub{
		{label: "video", count: 4, pattern: PatternAzureCS},
	}},

	// High-traffic capture anchors (Table 5).
	"dropbox.com": {home: "ec2.us-east-1", extraOther: 4, subs: []anchorSub{
		{label: "www", pattern: PatternVM, zones: []int{0, 1, 2}},
		{label: "dl", pattern: PatternVM, zones: []int{0, 1, 2}},
		{label: "dl-web", pattern: PatternVM, zones: []int{0, 1}},
		{label: "client", pattern: PatternVM, zones: []int{0, 1}},
		{label: "notify", pattern: PatternELB, zones: []int{0, 1}, proxies: 2},
	}},
	"netflix.com": {home: "ec2.us-east-1", extraOther: 10, subs: []anchorSub{
		{label: "www", pattern: PatternELB, zones: []int{0, 1, 2}, proxies: 5},
		{label: "api", pattern: PatternELB, zones: []int{0, 1, 2}, proxies: 3},
		{label: "m", pattern: PatternELB, zones: []int{0, 1, 2}, proxies: 87},
	}},
	"instagram.com": {home: "ec2.us-east-1", extraOther: 3, subs: []anchorSub{
		{label: "www", pattern: PatternVM, zones: []int{0, 1, 2}},
		{label: "api", pattern: PatternELB, zones: []int{0, 1}, proxies: 2},
	}},
	"zynga.com": {home: "ec2.us-east-1", extraOther: 8, subs: []anchorSub{
		{label: "api", pattern: PatternVM, zones: []int{0, 1}},
		{label: "assets", pattern: PatternCDN},
	}},
	"vimeo.com": {home: "ec2.us-east-1", extraOther: 12, subs: []anchorSub{
		{label: "player", pattern: PatternVM, zones: []int{0, 1}},
	}},
	"foursquare.com": {home: "ec2.us-east-1", extraOther: 5, subs: []anchorSub{
		{label: "api", pattern: PatternELB, zones: []int{0, 1}, proxies: 1},
	}},
}

// anchorNames returns the set of domain names that must be cloud-using.
func anchorNames() map[string]bool {
	out := make(map[string]bool, len(anchorSpecs))
	for name := range anchorSpecs {
		out[name] = true
	}
	return out
}

// deployAnchor scripts an anchor domain from its spec. Anchor zones
// answer AXFR so the discovery pipeline sees their full subdomain sets
// — the paper's top-domain tables (4, 8, 10, 15) enumerate these
// domains completely, which wordlist brute forcing alone cannot
// guarantee for their numbered host names.
func (w *World) deployAnchor(p *domainPlan, rng *xrand.Rand, d *Domain) {
	spec := anchorSpecs[d.Name]
	d.Zone.AllowAXFR = true
	d.HomeRegion = spec.home
	if spec.azure {
		d.Category = catAzureOther
	} else {
		d.Category = catEC2Other
	}
	for _, as := range spec.subs {
		n := as.count
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			label := as.label
			if n > 1 {
				label = fmt.Sprintf("%s%d", as.label, i+1)
			}
			w.deployAnchorSub(p, rng, d, label, as)
		}
	}
	for i := 0; i < spec.extraOther; i++ {
		label := fmt.Sprintf("corp%d", i+1)
		s := &Subdomain{FQDN: fqdn(label, d.Name), Label: label, Domain: d, Pattern: PatternOther}
		p.op(func() {
			s.OtherIPs = []netaddr.IP{w.otherIPs.next()}
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeA, TTL: 300, IP: s.OtherIPs[0]})
			w.registerSubdomain(s)
		})
	}
}

func (w *World) deployAnchorSub(p *domainPlan, rng *xrand.Rand, d *Domain, label string, as anchorSub) {
	region := as.region
	if region == "" {
		region = d.HomeRegion
	}
	s := &Subdomain{
		FQDN:       fqdn(label, d.Name),
		Label:      label,
		Domain:     d,
		Pattern:    as.pattern,
		Provider:   providerOf(as.pattern),
		Regions:    []string{region},
		Zones:      map[string][]int{},
		InWordlist: true,
		OtherCDN:   as.otherCDN,
	}
	switch as.pattern {
	case PatternCDN:
		s.Provider = ipranges.EC2
	case PatternAzureCDN:
		s.Provider = ipranges.Azure
	}
	zones := as.zones
	if len(zones) == 0 {
		zones = []int{0}
	}
	clampZones := func(zs []int, max int) []int {
		var out []int
		for _, z := range zs {
			if z < max {
				out = append(out, z)
			}
		}
		if len(out) == 0 {
			out = []int{0}
		}
		return out
	}

	switch as.pattern {
	case PatternVM:
		zs := clampZones(zones, w.EC2.ZoneCount(region))
		s.Zones[region] = zs
		p.op(func() {
			for i := 0; i < len(zs); i++ {
				inst := w.EC2.Launch(region, zs[i], "m1.medium", "vm")
				s.VMs = append(s.VMs, inst)
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeA, TTL: 300, IP: inst.PublicIP})
			}
		})
	case PatternELB, PatternBeanstalk:
		zs := clampZones(zones, w.EC2.ZoneCount(region))
		s.Zones[region] = zs
		placements := append([]int(nil), zs...)
		for i := 0; i < as.proxies; i++ {
			placements = append(placements, zs[i%len(zs)])
		}
		if as.pattern == PatternBeanstalk {
			p.op(func() {
				s.Beanstalk = w.EC2.CreateBeanstalk(sanitize(label)+"-"+sanitize(d.Name), region, placements)
				s.ELB = s.Beanstalk.ELB
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: s.Beanstalk.Name})
			})
		} else {
			p.op(func() {
				s.ELB = w.EC2.CreateELB(sanitize(label), region, placements, 0)
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: s.ELB.Name})
			})
		}
	case PatternHeroku:
		s.Regions = []string{"ec2.us-east-1"}
		s.Zones["ec2.us-east-1"] = []int{0}
		p.op(func() {
			app := w.Heroku.CreateApp(sanitize(label)+"-"+sanitize(d.Name), false, false)
			s.Heroku = app
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: app.Name})
		})
	case PatternOpaqueCNAME:
		zs := clampZones(zones, w.EC2.ZoneCount(region))
		s.Zones[region] = zs
		if as.otherCDN {
			vanity := fmt.Sprintf("%s-%s.edgekey-cdn.net", sanitize(label), sanitize(d.Name))
			s.vanity = vanity
			// Non-CloudFront CDN serves from outside the clouds: the
			// subdomain is not itself cloud-using.
			s.Provider = ""
			s.Pattern = PatternOther
			s.Regions = nil
			s.Zones = map[string][]int{}
			p.op(func() {
				for range zs {
					ip := w.otherIPs.next()
					s.OtherIPs = append(s.OtherIPs, ip)
					w.otherCDNZone.MustAdd(dnswire.RR{Name: vanity, Type: dnswire.TypeA, TTL: 300, IP: ip})
				}
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: vanity})
			})
		} else {
			vanity := fmt.Sprintf("edge-%s-%s.ghs-hosting.net", sanitize(label), sanitize(d.Name))
			s.vanity = vanity
			p.op(func() {
				for i := 0; i < len(zs); i++ {
					inst := w.EC2.Launch(region, zs[i], "m1.medium", "vm")
					s.VMs = append(s.VMs, inst)
					w.opaqueZone.MustAdd(dnswire.RR{Name: vanity, Type: dnswire.TypeA, TTL: 300, IP: inst.PublicIP})
				}
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: vanity})
			})
		}
	case PatternCDN:
		s.Regions = nil
		p.op(func() {
			s.CDN = w.EC2.CreateDistribution(3)
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: s.CDN.Name})
		})
	case PatternAzureCS:
		s.Zones[region] = []int{0}
		contents := csContents(rng)
		p.op(func() {
			cs := w.Azure.CreateCloudService(sanitize(label), region, contents)
			s.CS = cs
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: cs.Name})
		})
	case PatternAzureTM:
		// TM over two CSs: home region plus one more (Table 10's k=2 rows).
		second := "az.us-east"
		if region == second {
			second = "az.us-west"
		}
		contentsA := csContents(rng)
		contentsB := csContents(rng)
		s.Regions = []string{region, second}
		s.Zones[region] = []int{0}
		s.Zones[second] = []int{0}
		p.op(func() {
			csA := w.Azure.CreateCloudService(sanitize(label), region, contentsA)
			csB := w.Azure.CreateCloudService(sanitize(label), second, contentsB)
			s.TM = w.Azure.CreateTrafficManager(sanitize(label), "performance", []*cloud.CloudService{csA, csB})
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: s.TM.Name})
		})
	default:
		panic("deploy: unhandled anchor pattern " + string(as.pattern))
	}
	p.op(func() { w.registerSubdomain(s) })
}
