package deploy

import (
	"fmt"
	"io"
	"sort"
	"time"

	"cloudscope/internal/alexa"
	"cloudscope/internal/cloud"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/geo"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/simnet"
	"cloudscope/internal/xrand"
)

// Subdomain is one deployed host name with its ground truth.
type Subdomain struct {
	FQDN       string
	Label      string
	Domain     *Domain
	Pattern    Pattern
	Provider   ipranges.Provider // "" for other-hosted
	Regions    []string
	Zones      map[string][]int // region → true zone indexes in use
	InWordlist bool

	VMs []*cloud.Instance
	// Backends are the subdomain's invisible back-end tier (databases,
	// caches, workers): never published in DNS, reachable only through
	// the front ends. BackendPolicy records how they were placed:
	// "colocated" (front ends' zones), "spread" (other zones, same
	// region), or "remote" (a different region).
	Backends      []*cloud.Instance
	BackendPolicy string
	ELB           *cloud.ELB
	Heroku        *cloud.HerokuApp
	Beanstalk     *cloud.BeanstalkEnv
	CS            *cloud.CloudService
	TM            *cloud.TrafficManager
	CDN           *cloud.Distribution // CloudFront, when used (P4)
	AzureCDN      *cloud.AzureCDNEndpoint
	OtherCDN      bool // uses a non-CloudFront CDN
	OtherIPs      []netaddr.IP

	// vanity is the CNAME target this subdomain owns in the shared
	// opaque (or third-party CDN) zone, recorded so streaming release
	// can remove the records; "" when the pattern has none.
	vanity string
}

// CloudUsing reports whether the subdomain resolves into EC2 or Azure.
func (s *Subdomain) CloudUsing() bool { return s.Provider != "" }

// Domain is one ranked site with its zone and deployments.
type Domain struct {
	Name            string
	Rank            int
	Category        providerCategory
	CustomerCountry string
	HomeRegion      string // "" when not cloud-using
	Zone            *dnssrv.Zone
	DNS             *DNSProvider
	Subdomains      []*Subdomain
}

// UsesEC2 reports whether any subdomain is on EC2.
func (d *Domain) UsesEC2() bool { return d.usesProvider(ipranges.EC2) }

// UsesAzure reports whether any subdomain is on Azure.
func (d *Domain) UsesAzure() bool { return d.usesProvider(ipranges.Azure) }

func (d *Domain) usesProvider(p ipranges.Provider) bool {
	for _, s := range d.Subdomains {
		if s.Provider == p {
			return true
		}
	}
	return false
}

// CloudUsing reports whether the domain has any cloud-using subdomain.
func (d *Domain) CloudUsing() bool { return d.UsesEC2() || d.UsesAzure() }

// CloudSubdomains returns the subdomains on either cloud.
func (d *Domain) CloudSubdomains() []*Subdomain {
	var out []*Subdomain
	for _, s := range d.Subdomains {
		if s.CloudUsing() {
			out = append(out, s)
		}
	}
	return out
}

// World is the generated ground truth plus the live simulated Internet.
type World struct {
	Cfg      Config
	List     *alexa.List
	AWIS     *alexa.WebInfoService
	EC2      *cloud.Cloud
	Azure    *cloud.Cloud
	Heroku   *cloud.Heroku
	Fabric   *simnet.Fabric
	Registry *dnssrv.Registry
	Ranges   *ipranges.List

	Domains      []*Domain // every ranked domain, rank order
	CloudDomains []*Domain // subset with cloud deployments, rank order
	DNSProviders []*DNSProvider

	bySub        map[string]*Subdomain
	subCount     int // distinct FQDNs ever registered; survives release
	otherIPs     *otherAllocator
	rng          *xrand.Rand
	opaqueZone   *dnssrv.Zone // shared vanity zone hiding cloud IPs behind CNAMEs
	otherCDNZone *dnssrv.Zone // shared third-party CDN zone
	// streaming marks a world built by GenerateStream: released chunks
	// are reclaimed, per-domain state (Domains, CloudDomains, AWIS, the
	// self-hosted DNSProviders appends, cloud instance records) is not
	// retained, and bySub only covers live chunks.
	streaming bool
}

// DumpTruth writes a deterministic plain-text rendering of the world's
// entire ground truth — every domain, subdomain, deployment artifact,
// and zone file. Two worlds are behaviorally identical iff their dumps
// match, which is what the worker-count-invariance goldens hash.
func (w *World) DumpTruth(dst io.Writer) {
	for _, d := range w.Domains {
		d.DumpTo(dst)
	}
	fmt.Fprintf(dst, "cloudDomains=%d subs=%d\n", len(w.CloudDomains), w.NumSubdomains())
}

// DumpTo writes one domain's ground-truth block — the per-domain unit
// of DumpTruth. A domain's block is complete as soon as its chunk
// commits, so streaming consumers can dump chunk by chunk and obtain
// exactly the whole-world dump.
func (d *Domain) DumpTo(dst io.Writer) {
	fmt.Fprintf(dst, "D %s rank=%d cat=%v cc=%s home=%s axfr=%v", d.Name, d.Rank, d.Category, d.CustomerCountry, d.HomeRegion, d.Zone.AllowAXFR)
	if d.DNS != nil {
		fmt.Fprintf(dst, " dns=%s/%s ns=%v ips=%v", d.DNS.Name, d.DNS.Kind, d.DNS.NSNames, d.DNS.NSIPs)
	}
	fmt.Fprintln(dst)
	for _, s := range d.Subdomains {
		fmt.Fprintf(dst, "  S %s pat=%s prov=%s regs=%v wl=%v bp=%s ocdn=%v", s.FQDN, s.Pattern, s.Provider, s.Regions, s.InWordlist, s.BackendPolicy, s.OtherCDN)
		regs := make([]string, 0, len(s.Zones))
		for r := range s.Zones {
			regs = append(regs, r)
		}
		sort.Strings(regs)
		for _, r := range regs {
			zs := append([]int(nil), s.Zones[r]...)
			sort.Ints(zs)
			fmt.Fprintf(dst, " z[%s]=%v", r, zs)
		}
		for _, vm := range s.VMs {
			fmt.Fprintf(dst, " vm=%s/%d/%s/%s", vm.Region, vm.ZoneIndex, vm.Type, vm.PublicIP)
		}
		for _, b := range s.Backends {
			fmt.Fprintf(dst, " be=%s/%d/%s/%s", b.Region, b.ZoneIndex, b.Type, b.PublicIP)
		}
		if s.ELB != nil {
			fmt.Fprintf(dst, " elb=%s", s.ELB.Name)
		}
		if s.Heroku != nil {
			fmt.Fprintf(dst, " heroku=%s", s.Heroku.Name)
		}
		if s.Beanstalk != nil {
			fmt.Fprintf(dst, " bean=%s", s.Beanstalk.Name)
		}
		if s.CS != nil {
			fmt.Fprintf(dst, " cs=%s/%s", s.CS.Name, s.CS.Node.PublicIP)
		}
		if s.TM != nil {
			fmt.Fprintf(dst, " tm=%s", s.TM.Name)
		}
		if s.CDN != nil {
			fmt.Fprintf(dst, " cdn=%s", s.CDN.Name)
		}
		if s.AzureCDN != nil {
			fmt.Fprintf(dst, " azcdn=%s", s.AzureCDN.Name)
		}
		fmt.Fprintf(dst, " oips=%v\n", s.OtherIPs)
	}
	// Full zone content as seen from a fixed client.
	d.Zone.WriteTo(dst, netaddr.MustParseIP("8.8.8.8"))
}

// Subdomain returns ground truth for an FQDN.
func (w *World) Subdomain(fqdn string) (*Subdomain, bool) {
	s, ok := w.bySub[dnswire.CanonicalName(fqdn)]
	return s, ok
}

// NumSubdomains returns the total deployed subdomain count, counting
// streamed-and-released subdomains too.
func (w *World) NumSubdomains() int { return w.subCount }

// otherAllocator hands out non-cloud hosting addresses from realistic
// hoster blocks, never colliding with the published cloud ranges.
type otherAllocator struct {
	blocks []netaddr.CIDR
	cursor uint64
	ranges *ipranges.List
}

func newOtherAllocator(ranges *ipranges.List) *otherAllocator {
	return &otherAllocator{
		blocks: []netaddr.CIDR{
			netaddr.MustParseCIDR("66.100.0.0/14"),
			netaddr.MustParseCIDR("72.32.0.0/14"),
			netaddr.MustParseCIDR("88.80.0.0/14"),
			netaddr.MustParseCIDR("93.184.0.0/16"),
			netaddr.MustParseCIDR("119.63.0.0/16"),
			netaddr.MustParseCIDR("151.101.0.0/16"),
			netaddr.MustParseCIDR("199.16.0.0/14"),
		},
		ranges: ranges,
	}
}

func (o *otherAllocator) next() netaddr.IP {
	for {
		o.cursor += 3
		total := uint64(0)
		for _, b := range o.blocks {
			total += b.Size()
		}
		off := o.cursor % total
		for _, b := range o.blocks {
			if off < b.Size() {
				ip := b.Nth(off)
				if !o.ranges.Contains(ip, "") {
					return ip
				}
				break
			}
			off -= b.Size()
		}
	}
}

// Generate builds a world from cfg. It is deterministic in cfg.Seed,
// and — because it is exactly one all-domain chunk of the streaming
// path — byte-identical to GenerateStream at any chunk size.
func Generate(cfg Config) *World {
	w := newWorld(cfg, false)
	w.List = alexa.Generate(cfg.NumDomains, cfg.Seed, alexa.DefaultAnchors)
	w.AWIS = alexa.NewWebInfoService(w.List, 0.75, cfg.Seed)
	rng := w.rng.Split("domains")
	gp := newGenParams(cfg)
	for _, d := range w.deployChunk(rng, w.List.Domains, gp) {
		w.Domains = append(w.Domains, d)
		if d.CloudUsing() {
			w.CloudDomains = append(w.CloudDomains, d)
		}
	}
	return w
}

// newWorld builds the shared substrate both generators start from: the
// clouds, fabric, registry, provider zones, DNS-provider pool, and the
// shared vanity zones — everything that is not per-ranked-domain. In
// streaming mode the clouds skip instance-record retention (collision
// bitmaps still guarantee allocation behavior is unchanged).
func newWorld(cfg Config, streaming bool) *World {
	rng := xrand.SplitSeeded(cfg.Seed, "deploy")
	ranges := ipranges.Published()
	w := &World{
		Cfg:       cfg,
		EC2:       cloud.New(ipranges.EC2, ranges, cfg.Seed),
		Azure:     cloud.New(ipranges.Azure, ranges, cfg.Seed),
		Fabric:    simnet.NewFabric(nil),
		Registry:  dnssrv.NewRegistry(),
		Ranges:    ranges,
		bySub:     make(map[string]*Subdomain),
		rng:       rng,
		streaming: streaming,
	}
	if streaming {
		w.EC2.SetRetain(false)
		w.Azure.SetRetain(false)
	}
	w.otherIPs = newOtherAllocator(ranges)
	w.Heroku = cloud.NewHeroku(w.EC2, cfg.HerokuPoolSize)

	// Wide-area-ish DNS latency: a stable per-pair one-way delay in
	// 5–90 ms, so measurement campaigns consume plausible simulated
	// time (dataset.Stats.SerialProbeTime).
	w.Fabric.SetLatency(func(src, dst netaddr.IP) time.Duration {
		h := uint64(src)*2654435761 ^ uint64(dst)*40503
		h ^= h >> 13
		return time.Duration(5+h%86) * time.Millisecond
	})

	w.deployProviderZones()
	w.buildDNSProviders()
	w.deploySharedZones()
	return w
}

// deployProviderZones publishes amazonaws.com, cloudapp.net, etc. on an
// infrastructure DNS server.
func (w *World) deployProviderZones() {
	infra := dnssrv.NewServer()
	for _, z := range w.EC2.ProviderZones() {
		infra.AddZone(z)
	}
	for _, z := range w.Azure.ProviderZones() {
		infra.AddZone(z)
	}
	ns1 := netaddr.MustParseIP("192.5.6.30")
	ns2 := netaddr.MustParseIP("192.33.14.30")
	dnssrv.Deploy(w.Fabric, w.Registry, infra, ns1, ns2)
}

// pickRegion selects a home region for a domain, geo-affine with
// probability cfg.GeoAffinity.
func (w *World) pickRegion(rng *xrand.Rand, provider ipranges.Provider, customerCountry string) string {
	weights := regionWeightsEC2
	continents := continentRegionsEC2
	if provider == ipranges.Azure {
		weights = regionWeightsAzure
		continents = continentRegionsAzure
	}
	if customerCountry != "" && rng.Bool(w.Cfg.GeoAffinity) {
		// Exact-country regions first (US customers overwhelmingly land
		// in US regions), then same-continent.
		var exact []string
		for r := range weights {
			if geo.RegionLocation(r).Country == customerCountry {
				exact = append(exact, r)
			}
		}
		if len(exact) > 0 {
			sort.Strings(exact)
			return weightedRegion(rng, exact, weights)
		}
		cont := geoContinent(customerCountry)
		if regs := continents[cont]; len(regs) > 0 {
			return weightedRegion(rng, regs, weights)
		}
	}
	var regs []string
	for r := range weights {
		regs = append(regs, r)
	}
	sort.Strings(regs)
	return weightedRegion(rng, regs, weights)
}

func weightedRegion(rng *xrand.Rand, regs []string, weights map[string]float64) string {
	ws := make([]float64, len(regs))
	for i, r := range regs {
		ws[i] = weights[r]
		if ws[i] == 0 {
			ws[i] = 0.001
		}
	}
	return xrand.Pick(rng, regs, ws)
}

// pickZones chooses how many and which zones a subdomain uses in region.
func (w *World) pickZones(rng *xrand.Rand, c *cloud.Cloud, region string) []int {
	zc := c.ZoneCount(region)
	if zc <= 1 {
		return []int{0}
	}
	want := 1 + xrand.NewWeighted(rng, zoneCountWeights).Next()
	if want > zc {
		want = zc
	}
	weights := zoneWeights[region]
	if len(weights) != zc {
		weights = make([]float64, zc)
		for i := range weights {
			weights[i] = 1
		}
	}
	picked := map[int]bool{}
	out := make([]int, 0, want)
	for len(out) < want {
		z := xrand.NewWeighted(rng, weights).Next()
		if !picked[z] {
			picked[z] = true
			out = append(out, z)
		}
	}
	sort.Ints(out)
	return out
}

func (w *World) cloudFor(p ipranges.Provider) *cloud.Cloud {
	if p == ipranges.Azure {
		return w.Azure
	}
	return w.EC2
}

// registerSubdomain records ground truth and indexes the FQDN. The
// registration counter feeds the opaque vanity names; it only ever
// grows, so releasing chunks never shifts later names.
func (w *World) registerSubdomain(s *Subdomain) {
	s.Domain.Subdomains = append(s.Domain.Subdomains, s)
	if _, dup := w.bySub[s.FQDN]; !dup {
		w.subCount++
	}
	w.bySub[s.FQDN] = s
}

// fqdn joins a label and domain.
func fqdn(label, domain string) string { return fmt.Sprintf("%s.%s", label, domain) }

func geoContinent(country string) string {
	if c, ok := geo.CountryContinent[country]; ok {
		return c
	}
	return "NA"
}
