package deploy

import (
	"fmt"
	"sort"
	"strings"

	"cloudscope/internal/alexa"
	"cloudscope/internal/cloud"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/parallel"
	"cloudscope/internal/wordlist"
	"cloudscope/internal/xrand"
)

// Extra patterns assigned during deployment (see config.go for the
// base sets): CloudFront- and Azure-CDN-fronted subdomains.
const (
	PatternCDN      Pattern = "cloudfront" // CNAME to *.cloudfront.net (P4)
	PatternAzureCDN Pattern = "azure-cdn"  // CNAME to *.msecnd.net (P4)
)

// domainPlan is one domain's deferred deployment. The plan phase —
// which runs in parallel, one call per domain — performs every random
// draw on the domain's private split stream and records each mutation
// of shared or ordered state (cloud launches, allocator advances,
// shared-zone writes, subdomain registration) as an op closure. The
// commit phase replays the ops sequentially in rank order, so every
// shared allocator sees exactly the call sequence the legacy
// sequential generator produced and the world is bit-for-bit
// identical at any worker count.
type domainPlan struct {
	d   *Domain
	ops []func()
}

// op defers a mutation of shared or ordered state to the commit phase.
func (p *domainPlan) op(f func()) { p.ops = append(p.ops, f) }

// commit replays the plan's mutations in order.
func (p *domainPlan) commit() {
	for _, f := range p.ops {
		f()
	}
}

// deploySharedZones publishes the shared vanity zones every chunk's
// opaque subdomains write into.
func (w *World) deploySharedZones() {
	// Shared vanity zone for opaque CNAME targets.
	w.opaqueZone = dnssrv.NewZone("ghs-hosting.net")
	opaqueSrv := dnssrv.NewServer(w.opaqueZone)
	dnssrv.Deploy(w.Fabric, w.Registry, opaqueSrv, netaddr.MustParseIP("204.14.80.2"), netaddr.MustParseIP("204.14.80.3"))
	// Shared third-party CDN zone (the paper's "CDN other than
	// CloudFront" rows).
	w.otherCDNZone = dnssrv.NewZone("edgekey-cdn.net")
	cdnSrv := dnssrv.NewServer(w.otherCDNZone)
	dnssrv.Deploy(w.Fabric, w.Registry, cdnSrv, netaddr.MustParseIP("204.14.81.2"))
}

// genParams are the rank-skew constants shared by every chunk of one
// generation run.
type genParams struct {
	quarter     int
	pTop, pRest float64
	forced      map[string]bool
}

func newGenParams(cfg Config) genParams {
	// Rank-skewed cloud adoption: probability in the top quarter vs the
	// rest chosen so the overall fraction and top-quarter share match.
	return genParams{
		quarter: cfg.NumDomains / 4,
		pTop:    cfg.CloudFraction * cfg.TopQuarterShare / 0.25,
		pRest:   cfg.CloudFraction * (1 - cfg.TopQuarterShare) / 0.75,
		forced:  anchorNames(),
	}
}

// deployChunk decides who is cloud-using and deploys one rank-contiguous
// run of the ranked list: domains are planned in parallel, then
// committed sequentially in rank order. rng must be the generation's
// shared "domains" stream; its only draws are the per-domain AXFR
// flags, consumed here in rank order, so cutting the list into chunks
// of any size replays the exact flag sequence the whole-list path
// draws. Per-domain draws live on split streams keyed by name, which
// are position-independent, and commit order across chunks equals rank
// order — so the world is bit-for-bit identical at any chunk size and
// worker count.
func (w *World) deployChunk(rng *xrand.Rand, ads []*alexa.Domain, gp genParams) []*Domain {
	if len(ads) == 0 {
		return nil
	}
	axfr := make([]bool, len(ads))
	for i := range ads {
		axfr[i] = rng.Bool(w.Cfg.AXFRFraction)
	}

	base := ads[0].Rank - 1
	plans := make([]*domainPlan, len(ads))
	if err := parallel.RunAt(w.Cfg.Par, base, len(ads), func(sh parallel.Shard) error {
		for i := sh.Lo; i < sh.Hi; i++ {
			plans[i-base] = w.planDomain(rng, ads[i-base], axfr[i-base], gp.quarter, gp.pTop, gp.pRest, gp.forced)
		}
		return nil
	}); err != nil {
		panic(err) // plan fns return nil errors; only worker panics land here
	}

	out := make([]*Domain, len(plans))
	for i, p := range plans {
		p.commit()
		out[i] = p.d
	}
	return out
}

// planDomain decides one domain's fate on its private stream and plans
// its deployment. Everything it reads besides the domain itself is
// static by the time deployDomains runs (weight tables, anchor specs,
// zone counts, the external DNS-provider pool); everything it writes
// outside the domain's own structs is deferred to commit ops.
func (w *World) planDomain(rng *xrand.Rand, ad *alexa.Domain, axfr bool, quarter int, pTop, pRest float64, forced map[string]bool) *domainPlan {
	d := &Domain{
		Name:            ad.Name,
		Rank:            ad.Rank,
		CustomerCountry: ad.CustomerCountry(),
		Zone:            dnssrv.NewZone(ad.Name),
	}
	d.Zone.AllowAXFR = axfr
	drng := rng.Split("domain/" + ad.Name)
	p := &domainPlan{d: d}

	_, isAnchor := anchorSpecs[ad.Name]
	prob := pRest
	if ad.Rank <= quarter {
		prob = pTop
	}
	// Cloud adoption skews toward US-customer sites (the paper finds
	// 53% of subdomains hosted in their customer country while
	// us-east alone holds 73% — only possible if the cloud-using
	// population is US-heavy). The bias factors keep the overall
	// adoption rate at CloudFraction.
	if d.CustomerCountry == "US" {
		prob *= 2.2 / 1.15
	} else {
		prob *= 0.7 / 1.15
	}
	// The 2013 top-of-list giants (google, facebook, youtube, ...)
	// ran their own infrastructure; the highest-ranked cloud-using
	// domains were the anchors (live.com at 7, amazon.com at 9).
	if ad.Rank < 7 {
		prob = 0
	}
	cloudUsing := isAnchor || forced[ad.Name] || drng.Bool(prob)

	if cloudUsing {
		if isAnchor {
			w.deployAnchor(p, drng, d)
		} else {
			w.deployCloudDomain(p, drng, d)
		}
	} else {
		w.deployPlainDomain(p, drng, d)
	}
	// Apex record so the bare domain resolves.
	p.op(func() {
		d.Zone.MustAdd(dnswire.RR{Name: d.Name, Type: dnswire.TypeA, TTL: 300, IP: w.otherIPs.next()})
	})
	w.assignDNS(p, drng, d)
	return p
}

// deployPlainDomain gives a non-cloud domain a few ordinary subdomains.
func (w *World) deployPlainDomain(p *domainPlan, rng *xrand.Rand, d *Domain) {
	labels := newLabelPicker(rng, w.Cfg.WordlistBias)
	n := rng.Range(1, 5)
	for i := 0; i < n; i++ {
		label, inList := labels.next()
		s := &Subdomain{FQDN: fqdn(label, d.Name), Label: label, Domain: d, Pattern: PatternOther, InWordlist: inList}
		p.op(func() {
			s.OtherIPs = []netaddr.IP{w.otherIPs.next()}
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeA, TTL: 300, IP: s.OtherIPs[0]})
			w.registerSubdomain(s)
		})
	}
}

// deployCloudDomain deploys a generic (non-anchor) cloud-using domain.
func (w *World) deployCloudDomain(p *domainPlan, rng *xrand.Rand, d *Domain) {
	d.Category = providerCategory(xrand.NewWeighted(rng, providerCategoryWeights).Next())
	primary := ipranges.EC2
	if d.Category == catAzureOnly || d.Category == catAzureOther {
		primary = ipranges.Azure
	}
	d.HomeRegion = w.pickRegion(rng, primary, d.CustomerCountry)

	// Heavy-tailed cloud subdomain count with the configured mean.
	alpha := 1.0 + 1.0/(w.Cfg.MeanCloudSubs-1.0)*2.4
	n := int(rng.Pareto(alpha, 1.2))
	if n < 1 {
		n = 1
	}
	if n > w.Cfg.MaxCloudSubs {
		n = w.Cfg.MaxCloudSubs
	}

	labels := newLabelPicker(rng, w.Cfg.WordlistBias)
	for i := 0; i < n; i++ {
		label, inList := labels.next()
		provider := primary
		if d.Category == catBoth && rng.Bool(0.3) {
			provider = ipranges.Azure
		}
		pattern := w.pickPattern(rng, provider, label)
		w.deploySubdomain(p, rng, d, label, inList, pattern)
	}

	// Other-hosted subdomains for the "+Other" categories.
	if d.Category == catEC2Other || d.Category == catAzureOther || d.Category == catBoth {
		m := rng.Range(1, 8)
		for i := 0; i < m; i++ {
			label, inList := labels.next()
			s := &Subdomain{FQDN: fqdn(label, d.Name), Label: label, Domain: d, Pattern: PatternOther, InWordlist: inList}
			p.op(func() {
				s.OtherIPs = []netaddr.IP{w.otherIPs.next()}
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeA, TTL: 300, IP: s.OtherIPs[0]})
				w.registerSubdomain(s)
			})
		}
	}
}

// pickPattern draws a front-end pattern for a subdomain, biasing CDN
// onto content-ish labels.
func (w *World) pickPattern(rng *xrand.Rand, provider ipranges.Provider, label string) Pattern {
	cdnish := label == "cdn" || label == "static" || label == "img" || label == "images" ||
		label == "assets" || label == "media" || strings.HasPrefix(label, "cdn")
	if provider == ipranges.Azure {
		if cdnish && rng.Bool(0.3) || rng.Bool(0.005) {
			return PatternAzureCDN
		}
		return pickWeighted(rng, patternWeightsAzure)
	}
	if cdnish && rng.Bool(0.4) || rng.Bool(0.006) {
		return PatternCDN
	}
	return pickWeighted(rng, patternWeightsEC2)
}

func pickWeighted(rng *xrand.Rand, m map[Pattern]float64) Pattern {
	// Deterministic iteration order.
	patterns := make([]Pattern, 0, len(m))
	for p := range m {
		patterns = append(patterns, p)
	}
	sortPatterns(patterns)
	weights := make([]float64, len(patterns))
	for i, p := range patterns {
		weights[i] = m[p]
	}
	return xrand.Pick(rng, patterns, weights)
}

func sortPatterns(ps []Pattern) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// deploySubdomain plans infrastructure and DNS for one subdomain: all
// draws happen here, all provisioning lands in commit ops.
func (w *World) deploySubdomain(p *domainPlan, rng *xrand.Rand, d *Domain, label string, inList bool, pattern Pattern) *Subdomain {
	s := &Subdomain{
		FQDN:       fqdn(label, d.Name),
		Label:      label,
		Domain:     d,
		Pattern:    pattern,
		Provider:   providerOf(pattern),
		Zones:      map[string][]int{},
		InWordlist: inList,
	}
	switch pattern {
	case PatternCDN:
		s.Provider = ipranges.EC2 // CloudFront is EC2-affiliated in the dataset
	case PatternAzureCDN:
		s.Provider = ipranges.Azure
	}

	regions := w.pickSubRegions(rng, s.Provider, d)
	s.Regions = regions

	switch pattern {
	case PatternVM:
		w.deployVMFront(p, rng, d, s, regions, 0)
	case PatternHybrid:
		w.deployVMFront(p, rng, d, s, regions[:1], rng.Range(1, 2))
	case PatternELB:
		region := regions[0]
		s.Regions = regions[:1]
		zones := w.pickZones(rng, w.EC2, region)
		placements := elbPlacements(rng, zones)
		s.Zones[region] = zones
		p.op(func() {
			s.ELB = w.EC2.CreateELB(sanitize(label), region, placements, 0.55)
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: s.ELB.Name})
		})
	case PatternBeanstalk:
		region := regions[0]
		s.Regions = regions[:1]
		zones := w.pickZones(rng, w.EC2, region)
		s.Zones[region] = zones
		p.op(func() {
			s.Beanstalk = w.EC2.CreateBeanstalk(sanitize(label)+"-"+sanitize(d.Name), region, zones)
			s.ELB = s.Beanstalk.ELB
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: s.Beanstalk.Name})
		})
	case PatternHeroku, PatternHerokuELB:
		s.Regions = []string{"ec2.us-east-1"}
		useProxy := pattern == PatternHeroku && rng.Bool(0.35)
		p.op(func() {
			app := w.Heroku.CreateApp(sanitize(label)+"-"+sanitize(strings.Split(d.Name, ".")[0]), useProxy, pattern == PatternHerokuELB)
			s.Heroku = app
			s.ELB = app.ELB
			zones := map[int]bool{}
			for _, node := range append(app.Nodes, w.Heroku.Pool[:min(2, len(w.Heroku.Pool))]...) {
				zones[node.ZoneIndex] = true
			}
			zs := make([]int, 0, len(zones))
			for z := range zones {
				zs = append(zs, z)
			}
			sort.Ints(zs)
			s.Zones["ec2.us-east-1"] = zs
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: app.Name})
		})
	case PatternOpaqueCNAME:
		w.deployOpaque(p, rng, d, s, regions[:1])
	case PatternCDN:
		locs := rng.Range(2, 4)
		s.Regions = nil // CloudFront IPs carry no region
		p.op(func() {
			s.CDN = w.EC2.CreateDistribution(locs)
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: s.CDN.Name})
		})
	case PatternAzureCDN:
		region := regions[0]
		s.Regions = regions[:1]
		s.Zones[region] = []int{0}
		p.op(func() {
			ep := w.Azure.CreateAzureCDN(region)
			s.AzureCDN = ep
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: ep.Name})
		})
	case PatternAzureCS, PatternAzureIP:
		region := regions[0]
		s.Regions = regions[:1]
		s.Zones[region] = []int{0}
		contents := csContents(rng)
		p.op(func() {
			cs := w.Azure.CreateCloudService(sanitize(label), region, contents)
			s.CS = cs
			if pattern == PatternAzureIP {
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeA, TTL: 300, IP: cs.Node.PublicIP})
			} else {
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: cs.Name})
			}
		})
	case PatternAzureTM:
		contents := make([]string, len(regions))
		for i, region := range regions {
			contents[i] = csContents(rng)
			s.Zones[region] = []int{0}
		}
		policy := xrand.Pick(rng, []string{"performance", "failover", "round-robin"}, []float64{0.5, 0.25, 0.25})
		p.op(func() {
			var members []*cloud.CloudService
			for i, region := range regions {
				members = append(members, w.Azure.CreateCloudService(sanitize(label), region, contents[i]))
			}
			s.TM = w.Azure.CreateTrafficManager(sanitize(label), policy, members)
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: s.TM.Name})
		})
	case PatternAzureOpaque:
		region := regions[0]
		s.Regions = regions[:1]
		s.Zones[region] = []int{0}
		contents := csContents(rng)
		p.op(func() {
			cs := w.Azure.CreateCloudService(sanitize(label), region, contents)
			s.CS = cs
			vanity := fmt.Sprintf("az-%s-%d.ghs-hosting.net", sanitize(label), w.subCount)
			s.vanity = vanity
			w.opaqueZone.MustAdd(dnswire.RR{Name: vanity, Type: dnswire.TypeA, TTL: 300, IP: cs.Node.PublicIP})
			d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: vanity})
		})
	default:
		panic("deploy: unhandled pattern " + string(pattern))
	}
	p.op(func() { w.registerSubdomain(s) })
	return s
}

// deployVMFront plans front-end VMs (pattern P1) in each region with
// the Figure 4a instance-count distribution, plus optional other-hosted
// A records (hybrid). Multi-region subdomains answer geo-dependently.
func (w *World) deployVMFront(p *domainPlan, rng *xrand.Rand, d *Domain, s *Subdomain, regions []string, otherCount int) {
	s.Regions = regions
	type regionVMs struct {
		region string
		zones  []int
		types  []string // instance type per VM
	}
	vmPlans := make([]regionVMs, 0, len(regions))
	plannedVMs := 0
	for _, region := range regions {
		zones := w.pickZones(rng, w.EC2, region)
		s.Zones[region] = zones
		nVMs := len(zones) + xrand.Pick(rng, []int{0, 1, 2}, []float64{0.70, 0.25, 0.05})
		rp := regionVMs{region: region, zones: zones}
		for i := 0; i < nVMs; i++ {
			rp.types = append(rp.types, xrand.PickUniform(rng, cloud.InstanceTypes))
		}
		plannedVMs += nVMs
		vmPlans = append(vmPlans, rp)
	}
	perRegion := make(map[string][]*cloud.Instance)
	p.op(func() {
		for _, rp := range vmPlans {
			for i, itype := range rp.types {
				inst := w.EC2.Launch(rp.region, rp.zones[i%len(rp.zones)], itype, cloud.KindVM)
				s.VMs = append(s.VMs, inst)
				perRegion[rp.region] = append(perRegion[rp.region], inst)
			}
		}
		for i := 0; i < otherCount; i++ {
			s.OtherIPs = append(s.OtherIPs, w.otherIPs.next())
		}
	})
	if len(regions) == 1 {
		w.deployBackends(p, rng, s, regions[0], plannedVMs)
		p.op(func() {
			for _, inst := range s.VMs {
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeA, TTL: 300, IP: inst.PublicIP})
			}
			for _, ip := range s.OtherIPs {
				d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeA, TTL: 300, IP: ip})
			}
		})
		return
	}
	// Geo-dependent answers: each client source is stably mapped to one
	// region's VM set, so only globally distributed probing reveals the
	// full deployment.
	name := s.FQDN
	p.op(func() {
		d.Zone.SetDynamic(name, func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
			if qtype != dnswire.TypeA && qtype != dnswire.TypeANY {
				return nil
			}
			region := regions[int(src>>6)%len(regions)]
			var out []dnswire.RR
			for _, inst := range perRegion[region] {
				out = append(out, dnswire.RR{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, IP: inst.PublicIP})
			}
			return out
		})
	})
}

// deployBackends plans the DNS-invisible back-end tier behind a
// VM-front subdomain (the paper's dashed boxes in Figure 1, left to
// future work). Placement policy: mostly colocated with the front
// ends' zones, sometimes spread across the region's other zones, rarely
// in another region entirely. plannedVMs is the front-end VM count the
// plan will launch — the sequential code checked len(s.VMs), which is
// not populated until commit.
func (w *World) deployBackends(p *domainPlan, rng *xrand.Rand, s *Subdomain, homeRegion string, plannedVMs int) {
	if !rng.Bool(w.Cfg.BackendFraction) || plannedVMs == 0 {
		return
	}
	n := rng.Range(1, 3)
	s.BackendPolicy = xrand.Pick(rng, []string{"colocated", "spread", "remote"}, []float64{0.6, 0.3, 0.1})
	frontZones := s.Zones[homeRegion]
	type backendPlan struct {
		region string
		zone   int
		itype  string
	}
	plans := make([]backendPlan, 0, n)
	for i := 0; i < n; i++ {
		region := homeRegion
		zone := -1
		switch s.BackendPolicy {
		case "colocated":
			if len(frontZones) > 0 {
				zone = frontZones[i%len(frontZones)]
			}
		case "spread":
			zc := w.EC2.ZoneCount(region)
			if zc > 0 {
				zone = rng.Intn(zc)
			}
		case "remote":
			for tries := 0; tries < 10 && region == homeRegion; tries++ {
				region = w.pickRegion(rng, ipranges.EC2, "")
			}
			if region == homeRegion { // us-east's weight makes repeats likely
				region = "ec2.eu-west-1"
				if homeRegion == region {
					region = "ec2.us-east-1"
				}
			}
		}
		itype := xrand.PickUniform(rng, []string{"m1.xlarge", "m3.2xlarge", "m1.medium"})
		plans = append(plans, backendPlan{region: region, zone: zone, itype: itype})
	}
	p.op(func() {
		for _, bp := range plans {
			s.Backends = append(s.Backends, w.EC2.Launch(bp.region, bp.zone, bp.itype, "backend"))
		}
	})
}

// deployOpaque hides EC2 VMs behind a vanity CNAME in a third-party
// zone — the 16% of EC2-using subdomains the paper's filters could not
// classify. The vanity name embeds the registration counter, so it is
// computed at commit when w.subCount matches the sequential order.
func (w *World) deployOpaque(p *domainPlan, rng *xrand.Rand, d *Domain, s *Subdomain, regions []string) {
	s.Regions = regions
	region := regions[0]
	zones := w.pickZones(rng, w.EC2, region)
	s.Zones[region] = zones
	types := make([]string, len(zones))
	for i := range zones {
		types[i] = xrand.PickUniform(rng, cloud.InstanceTypes)
	}
	p.op(func() {
		vanity := fmt.Sprintf("edge-%s-%d.ghs-hosting.net", sanitize(s.Label), w.subCount)
		s.vanity = vanity
		for i := 0; i < len(zones); i++ {
			inst := w.EC2.Launch(region, zones[i], types[i], cloud.KindVM)
			s.VMs = append(s.VMs, inst)
			w.opaqueZone.MustAdd(dnswire.RR{Name: vanity, Type: dnswire.TypeA, TTL: 300, IP: inst.PublicIP})
		}
		d.Zone.MustAdd(dnswire.RR{Name: s.FQDN, Type: dnswire.TypeCNAME, TTL: 300, Target: vanity})
	})
}

// pickSubRegions selects a subdomain's regions: home region first, then
// Figure 6a's multi-region tail.
func (w *World) pickSubRegions(rng *xrand.Rand, provider ipranges.Provider, d *Domain) []string {
	weights := regionCountWeightsEC2
	if provider == ipranges.Azure {
		weights = regionCountWeightsAzure
	}
	count := 1 + xrand.NewWeighted(rng, weights).Next()
	home := d.HomeRegion
	c := w.cloudFor(provider)
	if c.Region(home) == nil {
		home = w.pickRegion(rng, provider, d.CustomerCountry)
	}
	regions := []string{home}
	for len(regions) < count {
		r := w.pickRegion(rng, provider, "")
		dup := false
		for _, have := range regions {
			if have == r {
				dup = true
			}
		}
		if !dup {
			regions = append(regions, r)
		}
	}
	return regions
}

// elbPlacements maps a zone set to proxy placements (Figure 4b: ~95% of
// ELB-using subdomains have ≤5 physical instances).
func elbPlacements(rng *xrand.Rand, zones []int) []int {
	placements := append([]int(nil), zones...)
	extra := xrand.Pick(rng, []int{0, 1, 2, 8}, []float64{0.72, 0.18, 0.07, 0.03})
	for i := 0; i < extra; i++ {
		placements = append(placements, zones[i%len(zones)])
	}
	return placements
}

func csContents(rng *xrand.Rand) string {
	return xrand.Pick(rng, []string{"vm", "vm-collection", "paas"}, []float64{0.5, 0.2, 0.3})
}

// labelPicker hands out unique labels for one domain: mostly Zipf draws
// from the shared wordlist, sometimes synthetic labels invisible to
// brute-force discovery.
type labelPicker struct {
	rng      *xrand.Rand
	words    []string
	used     map[string]bool
	bias     float64
	synthSeq int
}

// wordZipf is the shared label-popularity CDF; the word list is static,
// so one table serves every domain (NextR keeps draws on the caller's
// stream, so concurrent planners never contend).
var (
	sharedWords = wordlist.Common()
	wordZipf    = xrand.NewZipf(xrand.New(0), len(sharedWords), 0.9)
)

func newLabelPicker(rng *xrand.Rand, bias float64) *labelPicker {
	return &labelPicker{
		rng:   rng,
		words: sharedWords,
		used:  map[string]bool{},
		bias:  bias,
	}
}

func (lp *labelPicker) next() (label string, inWordlist bool) {
	if lp.rng.Bool(lp.bias) {
		for tries := 0; tries < 40; tries++ {
			w := lp.words[wordZipf.NextR(lp.rng)]
			if !lp.used[w] {
				lp.used[w] = true
				return w, true
			}
		}
	}
	for {
		lp.synthSeq++
		w := fmt.Sprintf("%s%d", xrand.PickUniform(lp.rng, []string{"srv", "x", "app", "node", "zz", "int"}), lp.rng.Intn(10000))
		if !lp.used[w] {
			lp.used[w] = true
			return w, false
		}
	}
}

// sanitize makes a DNS-label-safe token from an arbitrary name.
func sanitize(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s) && sb.Len() < 20; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			sb.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			sb.WriteByte(c + 32)
		}
	}
	if sb.Len() == 0 {
		return "x"
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
