package deploy

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"cloudscope/internal/parallel"
)

// worldDigest hashes the full ground-truth dump of a generated world.
func worldDigest(w *World) string {
	h := sha256.New()
	w.DumpTruth(h)
	return fmt.Sprintf("%x", h.Sum(nil))
}

func genDigest(seed int64, domains, workers, shardSize int) string {
	cfg := DefaultConfig().Scaled(domains)
	cfg.Seed = seed
	cfg.Par = parallel.Options{Workers: workers, ShardSize: shardSize}
	return worldDigest(Generate(cfg))
}

// TestGenerateWorkerCountInvariant drives the generator's parallel path
// with a deliberately tiny shard size (so shard boundaries cut through
// every synthesis stage) and checks the world is byte-identical to the
// sequential run. Run under -race this doubles as the generator's
// concurrency stress test.
func TestGenerateWorkerCountInvariant(t *testing.T) {
	for _, seed := range []int64{7, 21} {
		golden := genDigest(seed, 300, 1, 0)
		for _, workers := range []int{2, 4} {
			for _, shard := range []int{1, 17} {
				if got := genDigest(seed, 300, workers, shard); got != golden {
					t.Errorf("seed %d: world digest differs at Workers=%d ShardSize=%d", seed, workers, shard)
				}
			}
		}
	}
}

// BenchmarkWorldGenWorkers measures domain synthesis at several worker
// bounds. On a single-core host the parallel runs mostly measure pool
// overhead; multi-core hosts see the fan-out.
func BenchmarkWorldGenWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig().Scaled(1000)
			cfg.Seed = 5
			cfg.Par = parallel.Options{Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Generate(cfg)
			}
		})
	}
}
