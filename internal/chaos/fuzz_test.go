package chaos

import "testing"

// FuzzParseScenario: the spec parser must never panic, and anything it
// accepts must validate, round-trip through String, and build an
// engine.
func FuzzParseScenario(f *testing.F) {
	for _, spec := range library {
		f.Add(spec)
	}
	f.Add("loss,p=0.5;brownout,add=10ms,window=0.1-0.9")
	f.Add("blackout,frac=0.02,dst=54.0.0.0/8")
	f.Add("vantage-down")
	f.Add("loss,p=;;")
	f.Add("axfr-refuse,domains=example.com,dfrac=2")
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := Parse(spec)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Parse accepted %q but Validate rejected: %v", spec, err)
		}
		rt, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("String() of accepted spec %q does not re-parse: %v", spec, err)
		}
		if rt.String() != sc.String() {
			t.Fatalf("String round trip unstable: %q vs %q", rt.String(), sc.String())
		}
		e := New(sc, 1)
		if e == nil {
			t.Fatalf("accepted scenario %q built no engine", spec)
		}
		e.Intercept(1, 2, 3, []byte(spec))
		e.VantageOut("v", 0.5)
		e.ProbeLost("r", "k", 0.5)
	})
}

// FuzzParseTriggerPath fuzzes the multi-hop trigger clause specifically:
// a spec built around an arbitrary trigger path must never panic the
// parser, anything accepted must round-trip through String, and the
// engine must answer boost queries (including capture verdicts, the
// newest boost targets) without panicking at any phase.
func FuzzParseTriggerPath(f *testing.F) {
	f.Add("brownout:us-east=>servfail+0.2")
	f.Add("brownout:us-east=>servfail+0.3=>vantage-down+0.2=>loss+0.15")
	f.Add("brownout=>loss+0.1=>cap-drop+0.1")
	f.Add("loss=>cap-truncate+0.5")
	f.Add("servfail=>vantage-down")
	f.Add("=>+")
	f.Add("a:b=>c+d=>e+f")
	f.Add("brownout:us-east=>servfail+0.3=>servfail+0.3")
	f.Fuzz(func(t *testing.T, path string) {
		spec := "brownout,region=us-east,add=50ms;servfail,p=0.05;vantage-down,frac=0.1;" +
			"loss,p=0.03;cap-truncate,frac=0.1;cap-drop,p=0.01;" + path
		sc, err := Parse(spec)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Parse accepted %q but Validate rejected: %v", path, err)
		}
		rt, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("String() of accepted trigger %q does not re-parse: %v", path, err)
		}
		if rt.String() != sc.String() {
			t.Fatalf("String round trip unstable: %q vs %q", rt.String(), sc.String())
		}
		for _, tr := range sc.Triggers {
			if len(tr.Hops) == 0 {
				t.Fatalf("accepted trigger %q has no hops", path)
			}
		}
		e := New(sc, 1)
		for _, phase := range []float64{0, 0.25, 0.5, 0.75, 1} {
			e.VantageOut("v", phase)
			e.ProbeLost("r", "k", phase)
		}
		for flow := 0; flow < 4; flow++ {
			e.CaptureFlow(flow)
			e.CapturePacket(flow, 0)
		}
	})
}
