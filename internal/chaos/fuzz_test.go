package chaos

import "testing"

// FuzzParseScenario: the spec parser must never panic, and anything it
// accepts must validate, round-trip through String, and build an
// engine.
func FuzzParseScenario(f *testing.F) {
	for _, spec := range library {
		f.Add(spec)
	}
	f.Add("loss,p=0.5;brownout,add=10ms,window=0.1-0.9")
	f.Add("blackout,frac=0.02,dst=54.0.0.0/8")
	f.Add("vantage-down")
	f.Add("loss,p=;;")
	f.Add("axfr-refuse,domains=example.com,dfrac=2")
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := Parse(spec)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Parse accepted %q but Validate rejected: %v", spec, err)
		}
		rt, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("String() of accepted spec %q does not re-parse: %v", spec, err)
		}
		if rt.String() != sc.String() {
			t.Fatalf("String round trip unstable: %q vs %q", rt.String(), sc.String())
		}
		e := New(sc, 1)
		if e == nil {
			t.Fatalf("accepted scenario %q built no engine", spec)
		}
		e.Intercept(1, 2, 3, []byte(spec))
		e.VantageOut("v", 0.5)
		e.ProbeLost("r", "k", 0.5)
	})
}
