// Package chaos is the study's deterministic fault engine. A Scenario
// describes a set of faults — packet loss and latency brownouts on the
// fabric, SERVFAIL/REFUSED bursts and zone-transfer lockdowns at the
// authoritative DNS layer, vantage-point and measurement-account
// outages, and host blackouts — and an Engine injects them into a run.
//
// Determinism is the design center. Real measurement campaigns meet
// real failures at unpredictable moments; a simulation that reproduces
// a paper must meet the *same* failures at the *same* moments on every
// run, at every worker count. Every fault verdict is therefore a pure
// hash of (scenario seed, fault index, the thing being decided): which
// datagram drops, which vantage is dark at 40% campaign progress, which
// domain refuses AXFR. Nothing reads a clock, counts arrivals, or keeps
// generator state, so a fixed fault plan is byte-identical whether the
// campaign runs on one worker or sixteen.
//
// Faults see time as *campaign progress*, a fraction in [0,1):
// campaign-level faults (vantage/account outages, regional brownouts)
// are handed the campaign's own progress (domain index over total,
// round over rounds), while wire-level faults (loss, SERVFAIL bursts)
// derive a pseudo-phase from the datagram's flow identity — a
// deterministic stand-in for "when in the campaign this packet flew".
//
// Beyond independent faults, a scenario can declare correlated
// failures: Trigger clauses ("brownout:us-east => servfail+0.2") raise
// the decision probability of one fault kind while a cause fault is
// active, so a regional brownout drags SERVFAIL rates up with it, the
// way real incidents cascade.
//
// Every verdict the engine emits can be captured by a trace.Recorder
// (SetRecorder) and later re-injected verbatim by a replay engine
// (NewReplay) that bypasses the hash draws entirely — the
// record/replay/bisect loop lives in internal/chaos/trace.
package chaos

import (
	"fmt"
	"strings"
	"time"

	"cloudscope/internal/chaos/trace"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/simnet"
	"cloudscope/internal/xrand"
)

// Kind names one fault class.
type Kind string

// The fault taxonomy. See the README's fault-model table for the
// layer each kind acts at and the error clients observe.
const (
	// Loss drops datagrams with probability Prob. With a Region it is
	// consulted by model-level probes (ProbeLost) instead of the fabric.
	Loss Kind = "loss"
	// Brownout adds ExtraRTT to round trips. With a Region it applies
	// to that region's model-level probes (RegionExtraMs).
	Brownout Kind = "brownout"
	// VantageDown marks measurement vantage points dark during the
	// window; campaigns skip and account for them.
	VantageDown Kind = "vantage-down"
	// AccountDown marks cloud measurement accounts unusable during the
	// window (the paper's probe accounts hit API limits and closures).
	AccountDown Kind = "account-down"
	// ServFail forges SERVFAIL responses from authoritative DNS.
	ServFail Kind = "servfail"
	// Refused forges REFUSED responses from authoritative DNS.
	Refused Kind = "refused"
	// AXFRRefuse locks down zone transfers for a stable subset of
	// domains — the paper's crawl found most zones refuse AXFR.
	AXFRRefuse Kind = "axfr-refuse"
	// Blackout silently drops every datagram to a hash-chosen fraction
	// of destination hosts, for the whole run (a dead prefix).
	Blackout Kind = "blackout"

	// Capture-layer faults, injected inside capture.Generator. Verdicts
	// are pure hash draws over flow identity (global flow index, packet
	// sequence), so a faulted pcap is still byte-identical at every
	// worker count and shard layout.

	// CapTruncate cuts a hash-chosen fraction (frac) of flows short:
	// only the leading packets of the flow reach the capture, as when a
	// tap starts late or a flow outlives the capture window.
	CapTruncate Kind = "cap-truncate"
	// CapRST ends a hash-chosen fraction (frac) of TCP flows with a
	// forged mid-stream RST; nothing after the reset is captured.
	CapRST Kind = "cap-rst"
	// CapReorder swaps one adjacent packet pair of a hash-chosen
	// fraction (frac) of flows in capture-time order.
	CapReorder Kind = "cap-reorder"
	// CapCorrupt damages captured frames with probability p: half the
	// draws shorten the captured length (a cut-off frame), the rest
	// flip a byte in place.
	CapCorrupt Kind = "cap-corrupt"
	// CapDrop silently drops pcap records with probability p — the
	// classic overloaded-capture symptom.
	CapDrop Kind = "cap-drop"
)

// validKind reports whether k names a declared fault kind.
func validKind(k Kind) bool {
	switch k {
	case Loss, Brownout, VantageDown, AccountDown, ServFail, Refused, AXFRRefuse, Blackout,
		CapTruncate, CapRST, CapReorder, CapCorrupt, CapDrop:
		return true
	}
	return false
}

// Fault is one fault clause of a scenario.
type Fault struct {
	Kind Kind
	// From/To bound the fault's activity window in campaign progress
	// [0,1). From==To means always active.
	From, To float64
	// Prob is the per-decision probability for loss/servfail/refused
	// (0 means 1: always, within scope and window).
	Prob float64
	// Src/Dst scope wire-level faults to address ranges.
	Src, Dst       netaddr.CIDR
	HasSrc, HasDst bool
	// Region scopes loss/brownout to one region's model-level probes
	// (substring match), and is ignored by other kinds.
	Region string
	// DomainSuffix scopes DNS-layer faults to names under one suffix.
	DomainSuffix string
	// DomainFrac selects a stable hash-chosen fraction of base domains
	// for DNS-layer faults (0 means all in scope).
	DomainFrac float64
	// Frac selects a stable fraction of vantages/accounts/hosts for
	// vantage-down/account-down/blackout (0 means all in scope).
	Frac float64
	// ExtraRTT is the brownout's added round-trip latency.
	ExtraRTT time.Duration
}

// active reports whether the fault's window covers campaign phase p.
func (f *Fault) active(p float64) bool {
	if f.From == f.To {
		return true
	}
	return p >= f.From && p < f.To
}

// prob returns the effective decision probability.
func (f *Fault) prob() float64 {
	if f.Prob == 0 {
		return 1
	}
	return f.Prob
}

// frac returns the effective selection fraction.
func (f *Fault) frac() float64 {
	if f.Frac == 0 {
		return 1
	}
	return f.Frac
}

// Hop is one link of a trigger chain: the fault kind whose draws are
// boosted and the additive probability raise, in (0, 1].
type Hop struct {
	Target Kind
	Boost  float64
}

// Trigger is a correlated-failure clause: while any cause fault is
// active, the chained target kinds' decision draws run against raised
// thresholds. Spec form: "cause[:region]=>t1+b1=>t2+b2=>…".
type Trigger struct {
	// CauseKind selects the cause fault clauses by kind; CauseRegion,
	// when non-empty, restricts them to clauses whose Region scope
	// contains it.
	CauseKind   Kind
	CauseRegion string
	// Hops is the boost chain. Hop 0's target draws — the decision
	// probability (loss, servfail, refused, cap-*) or the selection
	// fraction (vantage-down, account-down) of every target-kind clause
	// — are raised by its Boost while a cause fault is window-active.
	// Hop k>0's draws are raised only while, additionally, some
	// declared clause of hop k-1's target kind is window-active: a
	// cascade conducts hop by hop through live fault kinds and is
	// severed at the first dormant one. A trigger amplifies existing
	// clauses; it cannot conjure a fault kind the scenario does not
	// declare.
	Hops []Hop
}

// String renders the trigger in spec form.
func (tr *Trigger) String() string {
	return tr.prefix(len(tr.Hops) - 1)
}

// prefix renders the causal path through hop hi — the cause and every
// hop up to and including hi, in spec syntax. This is the Cause label
// recorded with verdicts the chain induces, so a deep cascade's
// culprits name the whole path that fired them.
func (tr *Trigger) prefix(hi int) string {
	var b strings.Builder
	b.WriteString(string(tr.CauseKind))
	if tr.CauseRegion != "" {
		b.WriteString(":")
		b.WriteString(tr.CauseRegion)
	}
	for i := 0; i <= hi && i < len(tr.Hops); i++ {
		fmt.Fprintf(&b, "=>%s+%g", tr.Hops[i].Target, tr.Hops[i].Boost)
	}
	return b.String()
}

// triggerTargets lists the kinds whose draws a trigger may boost.
func triggerTarget(k Kind) bool {
	switch k {
	case Loss, ServFail, Refused, VantageDown, AccountDown,
		CapTruncate, CapRST, CapReorder, CapCorrupt, CapDrop:
		return true
	}
	return false
}

// Scenario is a named fault plan.
type Scenario struct {
	Name     string
	Faults   []Fault
	Triggers []Trigger
}

// Validate checks the scenario's clauses for well-formedness.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		if !validKind(f.Kind) {
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
		if f.Prob < 0 || f.Prob > 1 {
			return fmt.Errorf("chaos: fault %d (%s): p=%g out of [0,1]", i, f.Kind, f.Prob)
		}
		if f.Frac < 0 || f.Frac > 1 || f.DomainFrac < 0 || f.DomainFrac > 1 {
			return fmt.Errorf("chaos: fault %d (%s): fraction out of [0,1]", i, f.Kind)
		}
		if f.From < 0 || f.To > 1 || f.From > f.To {
			return fmt.Errorf("chaos: fault %d (%s): window %g-%g out of order or range", i, f.Kind, f.From, f.To)
		}
		if f.Kind == Brownout && f.ExtraRTT <= 0 {
			return fmt.Errorf("chaos: fault %d: brownout needs add=<duration>", i)
		}
		if f.ExtraRTT < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative add", i, f.Kind)
		}
	}
	for i := range s.Triggers {
		tr := &s.Triggers[i]
		if !validKind(tr.CauseKind) {
			return fmt.Errorf("chaos: trigger %d: unknown cause kind %q", i, tr.CauseKind)
		}
		if len(tr.Hops) == 0 {
			return fmt.Errorf("chaos: trigger %d: no hops", i)
		}
		for hi := range tr.Hops {
			hop := &tr.Hops[hi]
			if !triggerTarget(hop.Target) {
				return fmt.Errorf("chaos: trigger %d hop %d: kind %q cannot be a trigger target", i, hi, hop.Target)
			}
			if hop.Boost <= 0 || hop.Boost > 1 {
				return fmt.Errorf("chaos: trigger %d hop %d: boost %g out of (0,1]", i, hi, hop.Boost)
			}
		}
	}
	return nil
}

// Engine evaluates a scenario's faults. It is stateless after
// construction (an optional trace recorder accumulates on the side)
// and safe for concurrent use; all methods are nil-safe, so un-chaosed
// runs pay only a nil check. Engine implements simnet.Interceptor for
// the wire-level faults.
//
// An engine runs in one of two modes. A live engine (New) decides every
// verdict by pure hash draw and can record the faulting verdicts it
// emits. A replay engine (NewReplay) answers every decision from a
// recorded trace instead — the hash draws are bypassed entirely, so a
// past faulted run reproduces byte-identically even after the draw
// logic or scenario probabilities change.
type Engine struct {
	sc *Scenario
	h0 uint64   // scenario hash root
	fh []uint64 // per-fault sub-stream roots

	// hasCapFlow/hasCapPkt note whether any capture-layer clause is
	// declared, so the capture hot path pays one bool check per flow or
	// packet under scenarios without capture faults.
	hasCapFlow bool
	hasCapPkt  bool

	rec *trace.Recorder // armed via SetRecorder (live mode only)
	rp  *trace.Lookup   // replay mode: verdicts come from here
}

// New builds an engine for sc with all fault draws derived from seed.
// A nil or empty scenario yields a nil engine (no faults).
func New(sc *Scenario, seed int64) *Engine {
	if sc == nil || len(sc.Faults) == 0 {
		return nil
	}
	h0 := xrand.HashString(uint64(seed), "chaos/"+sc.Name)
	e := &Engine{sc: sc, h0: h0, fh: make([]uint64, len(sc.Faults))}
	for i := range sc.Faults {
		e.fh[i] = xrand.Hash64(h0, uint64(i)+1)
		switch sc.Faults[i].Kind {
		case CapTruncate, CapRST, CapReorder:
			e.hasCapFlow = true
		case CapCorrupt, CapDrop:
			e.hasCapPkt = true
		}
	}
	return e
}

// NewReplay builds an engine that re-injects a recorded fault trace
// verbatim: every decision point looks its verdict up by stable
// identity, decisions absent from the trace are no-faults, and no hash
// draw is ever consulted. The trace header's scenario spec is parsed
// back (best-effort) so Scenario() still names the fault plan. A nil
// trace yields a nil engine.
func NewReplay(tr *trace.Trace) *Engine {
	if tr == nil {
		return nil
	}
	e := &Engine{rp: trace.NewLookup(tr)}
	if sc, err := Parse(tr.Header.Spec); err == nil {
		sc.Name = tr.Header.Scenario
		e.sc = sc
	}
	return e
}

// Replaying reports whether the engine re-injects a recorded trace.
func (e *Engine) Replaying() bool { return e != nil && e.rp != nil }

// SetRecorder arms fault-trace recording: every faulting verdict the
// engine emits is logged to r (see internal/chaos/trace). Arm before
// the run starts; a nil recorder disarms. Replay engines never record
// — the trace they would produce is their input.
func (e *Engine) SetRecorder(r *trace.Recorder) {
	if e != nil && e.rp == nil {
		e.rec = r
	}
}

// Scenario returns the engine's fault plan (nil for a nil engine, and
// possibly nil for a replay engine whose trace header did not carry a
// parseable spec).
func (e *Engine) Scenario() *Scenario {
	if e == nil {
		return nil
	}
	return e.sc
}

// salts keep the independent draw families uncorrelated.
const (
	saltPhase    = 0x7068   // pseudo-phase of a wire datagram
	saltSelect   = 0x73656c // stable subset selection
	saltDraw     = 0x6472   // per-decision probability draw
	saltCapPhase = 0x636170 // pseudo-phase of a capture flow
)

// scopeMatch reports whether the fault's CIDR scopes cover (src, dst).
func (f *Fault) scopeMatch(src, dst netaddr.IP) bool {
	if f.HasSrc && !f.Src.Contains(src) {
		return false
	}
	if f.HasDst && !f.Dst.Contains(dst) {
		return false
	}
	return true
}

// baseDomain returns the last two labels of a canonical name — the
// unit AXFR policies and DNS bursts select domains by.
func baseDomain(name string) string {
	name = dnswire.CanonicalName(name)
	i := strings.LastIndexByte(name, '.')
	if i < 0 {
		return name
	}
	j := strings.LastIndexByte(name[:i], '.')
	if j < 0 {
		return name
	}
	return name[j+1:]
}

// domainMatch reports whether fault i's domain scope covers name.
func (e *Engine) domainMatch(i int, name string) bool {
	f := &e.sc.Faults[i]
	if f.DomainSuffix != "" {
		suf := dnswire.CanonicalName(f.DomainSuffix)
		if name != suf && !strings.HasSuffix(name, "."+suf) {
			return false
		}
	}
	if f.DomainFrac > 0 {
		h := xrand.HashString(xrand.Hash64(e.fh[i], saltSelect), baseDomain(name))
		if xrand.Frac(h) >= f.DomainFrac {
			return false
		}
	}
	return true
}

// boostFor returns the total probability boost active for target-kind
// draws at phase, plus the causal-path label of the first contributing
// trigger hop (the causal edge recorded with induced verdicts). A
// trigger's hop 0 contributes while at least one cause fault of its
// cause kind (and region scope) is window-active; hop k>0 contributes
// only while every earlier hop's target kind also has a window-active
// declared clause — the cascade conducts through live kinds and is
// severed at the first dormant one.
func (e *Engine) boostFor(target Kind, phase float64) (float64, string) {
	if len(e.sc.Triggers) == 0 {
		return 0, ""
	}
	var total float64
	var label string
	for ti := range e.sc.Triggers {
		tg := &e.sc.Triggers[ti]
		if !e.causeActive(tg.CauseKind, tg.CauseRegion, phase) {
			continue
		}
		for hi := range tg.Hops {
			if hi > 0 && !e.kindActive(tg.Hops[hi-1].Target, phase) {
				break // chain severed: the intermediate kind is dormant
			}
			if tg.Hops[hi].Target != target {
				continue
			}
			total += tg.Hops[hi].Boost
			if label == "" {
				label = tg.prefix(hi)
			}
		}
	}
	return total, label
}

// causeActive reports whether any declared fault clause of the cause
// kind (restricted by region scope when non-empty) is window-active at
// phase.
func (e *Engine) causeActive(kind Kind, region string, phase float64) bool {
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if f.Kind != kind || !f.active(phase) {
			continue
		}
		if region != "" && !strings.Contains(f.Region, region) {
			continue
		}
		return true
	}
	return false
}

// kindActive reports whether any declared clause of kind is
// window-active at phase — the condition for a cascade to conduct
// through an intermediate hop.
func (e *Engine) kindActive(kind Kind, phase float64) bool {
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if f.Kind == kind && f.active(phase) {
			return true
		}
	}
	return false
}

// forge builds a response to q with the given rcode, or nil if the
// query cannot be answered in kind.
func forge(q *dnswire.Message, rcode dnswire.RCode) []byte {
	r := q.Reply()
	r.Header.RCode = rcode
	raw, err := r.Pack()
	if err != nil {
		return nil
	}
	return raw
}

// Intercept implements simnet.Interceptor: blackouts, unscoped loss
// and brownouts, and the DNS-layer faults. The datagram's pseudo-phase
// — its stand-in position in the campaign — is a hash of its identity,
// so the same packet meets the same window on every run. In replay
// mode the verdict is looked up instead of drawn.
func (e *Engine) Intercept(src, dst netaddr.IP, flow uint64, payload []byte) simnet.Verdict {
	if e == nil {
		return simnet.Verdict{}
	}
	if e.rp != nil {
		ev, ok := e.rp.Get(trace.PointWire, trace.WireID(uint64(src), uint64(dst), flow, payload))
		if !ok {
			return simnet.Verdict{}
		}
		return replayVerdict(ev, payload)
	}
	v, kind, rcode, cause, phase := e.interceptLive(src, dst, flow, payload)
	if e.rec != nil && (v.Drop || v.Respond != nil || v.ExtraRTT != 0) {
		ev := trace.Event{
			Point: trace.PointWire,
			ID:    trace.WireID(uint64(src), uint64(dst), flow, payload),
			Kind:  string(kind),
			Phase: phase,
			Drop:  v.Drop,
			Cause: cause,
		}
		if !v.Drop {
			ev.ExtraNs = int64(v.ExtraRTT)
		}
		if v.Respond != nil {
			ev.Forged = true
			ev.RCode = int(rcode)
		}
		e.rec.Record(ev)
	}
	return v
}

// replayVerdict reconstructs a recorded wire verdict against the
// datagram actually in flight: drops replay as drops, forged responses
// re-pack against the live query (byte-identical, since the query is),
// and brownout delay replays as recorded.
func replayVerdict(ev trace.Event, payload []byte) simnet.Verdict {
	if ev.Drop {
		return simnet.Verdict{Drop: true}
	}
	v := simnet.Verdict{ExtraRTT: time.Duration(ev.ExtraNs)}
	if ev.Forged {
		if m, err := dnswire.Unpack(payload); err == nil && !m.Header.Response && len(m.Questions) == 1 {
			if raw := forge(m, dnswire.RCode(ev.RCode)); raw != nil {
				v.Respond = raw
			}
		}
	}
	return v
}

// interceptLive draws the wire verdict, reporting the deciding fault
// kind, forged rcode, causal trigger label, and pseudo-phase for the
// recorder.
func (e *Engine) interceptLive(src, dst netaddr.IP, flow uint64, payload []byte) (v simnet.Verdict, kind Kind, rcode dnswire.RCode, cause string, phase float64) {
	phase = xrand.Frac(xrand.HashBytes(xrand.Hash64(e.h0, saltPhase, uint64(src), uint64(dst), flow), payload))
	var q *dnswire.Message
	unpacked := false
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		switch f.Kind {
		case Blackout:
			if !f.scopeMatch(src, dst) || f.Region != "" {
				continue
			}
			if xrand.Frac(xrand.Hash64(e.fh[i], saltSelect, uint64(dst))) < f.frac() {
				return simnet.Verdict{Drop: true}, Blackout, 0, "", phase
			}
		case Loss:
			if f.Region != "" || !f.active(phase) || !f.scopeMatch(src, dst) {
				continue
			}
			draw := xrand.Frac(xrand.HashBytes(xrand.Hash64(e.fh[i], saltDraw, flow), payload))
			if draw < f.prob() {
				return simnet.Verdict{Drop: true}, Loss, 0, "", phase
			}
			if boost, cz := e.boostFor(Loss, phase); boost > 0 && draw < f.prob()+boost {
				return simnet.Verdict{Drop: true}, Loss, 0, cz, phase
			}
		case Brownout:
			if f.Region != "" || !f.active(phase) || !f.scopeMatch(src, dst) {
				continue
			}
			v.ExtraRTT += f.ExtraRTT
			kind = Brownout
		case ServFail, Refused, AXFRRefuse:
			if !f.scopeMatch(src, dst) {
				continue
			}
			if !unpacked {
				unpacked = true
				if m, err := dnswire.Unpack(payload); err == nil && !m.Header.Response && len(m.Questions) == 1 {
					q = m
				}
			}
			if q == nil || !e.domainMatch(i, q.Questions[0].Name) {
				continue
			}
			if f.Kind == AXFRRefuse {
				// A zone-transfer policy, not a transient: no window, no
				// draw — the selected domains always refuse.
				if q.Questions[0].Type != dnswire.TypeAXFR {
					continue
				}
				if raw := forge(q, dnswire.RCodeRefused); raw != nil {
					v.Respond = raw
					return v, AXFRRefuse, dnswire.RCodeRefused, "", phase
				}
				continue
			}
			if !f.active(phase) {
				continue
			}
			draw := xrand.Frac(xrand.HashBytes(xrand.Hash64(e.fh[i], saltDraw, flow), payload))
			var cz string
			if draw >= f.prob() {
				boost, label := e.boostFor(f.Kind, phase)
				if boost <= 0 || draw >= f.prob()+boost {
					continue
				}
				cz = label
			}
			rc := dnswire.RCodeServFail
			if f.Kind == Refused {
				rc = dnswire.RCodeRefused
			}
			if raw := forge(q, rc); raw != nil {
				v.Respond = raw
				return v, f.Kind, rc, cz, phase
			}
		}
	}
	return v, kind, 0, "", phase
}

// outAt reports whether the named unit (vantage or account) is dark at
// campaign phase for any fault of the given kind, and the causal
// trigger label when only a boost darkened it.
func (e *Engine) outAt(kind Kind, name string, phase float64) (bool, string) {
	boosted := false
	var boost float64
	var label string
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if f.Kind != kind || !f.active(phase) {
			continue
		}
		if f.Frac == 0 {
			return true, ""
		}
		draw := xrand.Frac(xrand.HashString(xrand.Hash64(e.fh[i], saltSelect), name))
		if draw < f.Frac {
			return true, ""
		}
		if !boosted {
			boosted = true
			boost, label = e.boostFor(kind, phase)
		}
		if boost > 0 && draw < f.Frac+boost {
			return true, label
		}
	}
	return false, ""
}

// VantageOut reports whether a measurement vantage point is dark at
// campaign phase in [0,1). Campaigns pass their own progress fraction.
func (e *Engine) VantageOut(vantage string, phase float64) bool {
	if e == nil {
		return false
	}
	if e.rp != nil {
		ev, ok := e.rp.Get(trace.PointVantage, trace.VantageID(vantage, phase))
		return ok && ev.Out
	}
	out, cause := e.outAt(VantageDown, vantage, phase)
	if out {
		e.rec.Record(trace.Event{
			Point: trace.PointVantage, ID: trace.VantageID(vantage, phase),
			Kind: string(VantageDown), Phase: phase, Name: vantage, Out: true, Cause: cause,
		})
	}
	return out
}

// AccountOut reports whether a cloud measurement account is unusable at
// campaign phase.
func (e *Engine) AccountOut(account string, phase float64) bool {
	if e == nil {
		return false
	}
	if e.rp != nil {
		ev, ok := e.rp.Get(trace.PointAccount, trace.AccountID(account, phase))
		return ok && ev.Out
	}
	out, cause := e.outAt(AccountDown, account, phase)
	if out {
		e.rec.Record(trace.Event{
			Point: trace.PointAccount, ID: trace.AccountID(account, phase),
			Kind: string(AccountDown), Phase: phase, Name: account, Out: true, Cause: cause,
		})
	}
	return out
}

// RegionExtraMs returns the extra round-trip milliseconds region-scoped
// brownouts add to probes in region at campaign phase.
func (e *Engine) RegionExtraMs(region string, phase float64) float64 {
	if e == nil {
		return 0
	}
	if e.rp != nil {
		ev, ok := e.rp.Get(trace.PointRegion, trace.RegionID(region, phase))
		if !ok {
			return 0
		}
		return ev.ExtraMs
	}
	var ms float64
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if f.Kind != Brownout || f.Region == "" || !f.active(phase) {
			continue
		}
		if strings.Contains(region, f.Region) {
			ms += float64(f.ExtraRTT) / float64(time.Millisecond)
		}
	}
	if ms != 0 {
		e.rec.Record(trace.Event{
			Point: trace.PointRegion, ID: trace.RegionID(region, phase),
			Kind: string(Brownout), Phase: phase, Name: region, ExtraMs: ms,
		})
	}
	return ms
}

// ProbeLost reports whether a model-level probe in region, identified
// by a stable key, is lost at campaign phase — region-scoped loss draws
// per key, region-scoped blackouts drop everything.
func (e *Engine) ProbeLost(region, key string, phase float64) bool {
	if e == nil {
		return false
	}
	if e.rp != nil {
		ev, ok := e.rp.Get(trace.PointProbe, trace.ProbeID(region, key, phase))
		return ok && ev.Drop
	}
	lost, kind, cause := e.probeLostLive(region, key, phase)
	if lost {
		e.rec.Record(trace.Event{
			Point: trace.PointProbe, ID: trace.ProbeID(region, key, phase),
			Kind: string(kind), Phase: phase, Name: region + "/" + key, Drop: true, Cause: cause,
		})
	}
	return lost
}

// probeLostLive draws the model-level loss verdict.
func (e *Engine) probeLostLive(region, key string, phase float64) (bool, Kind, string) {
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if f.Region == "" || !strings.Contains(region, f.Region) {
			continue
		}
		switch f.Kind {
		case Blackout:
			return true, Blackout, ""
		case Loss:
			if !f.active(phase) {
				continue
			}
			draw := xrand.Frac(xrand.HashString(xrand.Hash64(e.fh[i], saltDraw), key))
			if draw < f.prob() {
				return true, Loss, ""
			}
			if boost, cz := e.boostFor(Loss, phase); boost > 0 && draw < f.prob()+boost {
				return true, Loss, cz
			}
		}
	}
	return false, "", ""
}
