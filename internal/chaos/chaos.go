// Package chaos is the study's deterministic fault engine. A Scenario
// describes a set of faults — packet loss and latency brownouts on the
// fabric, SERVFAIL/REFUSED bursts and zone-transfer lockdowns at the
// authoritative DNS layer, vantage-point and measurement-account
// outages, and host blackouts — and an Engine injects them into a run.
//
// Determinism is the design center. Real measurement campaigns meet
// real failures at unpredictable moments; a simulation that reproduces
// a paper must meet the *same* failures at the *same* moments on every
// run, at every worker count. Every fault verdict is therefore a pure
// hash of (scenario seed, fault index, the thing being decided): which
// datagram drops, which vantage is dark at 40% campaign progress, which
// domain refuses AXFR. Nothing reads a clock, counts arrivals, or keeps
// generator state, so a fixed fault plan is byte-identical whether the
// campaign runs on one worker or sixteen.
//
// Faults see time as *campaign progress*, a fraction in [0,1):
// campaign-level faults (vantage/account outages, regional brownouts)
// are handed the campaign's own progress (domain index over total,
// round over rounds), while wire-level faults (loss, SERVFAIL bursts)
// derive a pseudo-phase from the datagram's flow identity — a
// deterministic stand-in for "when in the campaign this packet flew".
package chaos

import (
	"fmt"
	"strings"
	"time"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/simnet"
	"cloudscope/internal/xrand"
)

// Kind names one fault class.
type Kind string

// The fault taxonomy. See the README's fault-model table for the
// layer each kind acts at and the error clients observe.
const (
	// Loss drops datagrams with probability Prob. With a Region it is
	// consulted by model-level probes (ProbeLost) instead of the fabric.
	Loss Kind = "loss"
	// Brownout adds ExtraRTT to round trips. With a Region it applies
	// to that region's model-level probes (RegionExtraMs).
	Brownout Kind = "brownout"
	// VantageDown marks measurement vantage points dark during the
	// window; campaigns skip and account for them.
	VantageDown Kind = "vantage-down"
	// AccountDown marks cloud measurement accounts unusable during the
	// window (the paper's probe accounts hit API limits and closures).
	AccountDown Kind = "account-down"
	// ServFail forges SERVFAIL responses from authoritative DNS.
	ServFail Kind = "servfail"
	// Refused forges REFUSED responses from authoritative DNS.
	Refused Kind = "refused"
	// AXFRRefuse locks down zone transfers for a stable subset of
	// domains — the paper's crawl found most zones refuse AXFR.
	AXFRRefuse Kind = "axfr-refuse"
	// Blackout silently drops every datagram to a hash-chosen fraction
	// of destination hosts, for the whole run (a dead prefix).
	Blackout Kind = "blackout"
)

// Fault is one fault clause of a scenario.
type Fault struct {
	Kind Kind
	// From/To bound the fault's activity window in campaign progress
	// [0,1). From==To means always active.
	From, To float64
	// Prob is the per-decision probability for loss/servfail/refused
	// (0 means 1: always, within scope and window).
	Prob float64
	// Src/Dst scope wire-level faults to address ranges.
	Src, Dst       netaddr.CIDR
	HasSrc, HasDst bool
	// Region scopes loss/brownout to one region's model-level probes
	// (substring match), and is ignored by other kinds.
	Region string
	// DomainSuffix scopes DNS-layer faults to names under one suffix.
	DomainSuffix string
	// DomainFrac selects a stable hash-chosen fraction of base domains
	// for DNS-layer faults (0 means all in scope).
	DomainFrac float64
	// Frac selects a stable fraction of vantages/accounts/hosts for
	// vantage-down/account-down/blackout (0 means all in scope).
	Frac float64
	// ExtraRTT is the brownout's added round-trip latency.
	ExtraRTT time.Duration
}

// active reports whether the fault's window covers campaign phase p.
func (f *Fault) active(p float64) bool {
	if f.From == f.To {
		return true
	}
	return p >= f.From && p < f.To
}

// prob returns the effective decision probability.
func (f *Fault) prob() float64 {
	if f.Prob == 0 {
		return 1
	}
	return f.Prob
}

// frac returns the effective selection fraction.
func (f *Fault) frac() float64 {
	if f.Frac == 0 {
		return 1
	}
	return f.Frac
}

// Scenario is a named fault plan.
type Scenario struct {
	Name   string
	Faults []Fault
}

// Validate checks the scenario's clauses for well-formedness.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		switch f.Kind {
		case Loss, Brownout, VantageDown, AccountDown, ServFail, Refused, AXFRRefuse, Blackout:
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
		if f.Prob < 0 || f.Prob > 1 {
			return fmt.Errorf("chaos: fault %d (%s): p=%g out of [0,1]", i, f.Kind, f.Prob)
		}
		if f.Frac < 0 || f.Frac > 1 || f.DomainFrac < 0 || f.DomainFrac > 1 {
			return fmt.Errorf("chaos: fault %d (%s): fraction out of [0,1]", i, f.Kind)
		}
		if f.From < 0 || f.To > 1 || f.From > f.To {
			return fmt.Errorf("chaos: fault %d (%s): window %g-%g out of order or range", i, f.Kind, f.From, f.To)
		}
		if f.Kind == Brownout && f.ExtraRTT <= 0 {
			return fmt.Errorf("chaos: fault %d: brownout needs add=<duration>", i)
		}
		if f.ExtraRTT < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative add", i, f.Kind)
		}
	}
	return nil
}

// Engine evaluates a scenario's faults. It is stateless after
// construction and safe for concurrent use; all methods are nil-safe,
// so un-chaosed runs pay only a nil check. Engine implements
// simnet.Interceptor for the wire-level faults.
type Engine struct {
	sc *Scenario
	h0 uint64   // scenario hash root
	fh []uint64 // per-fault sub-stream roots
}

// New builds an engine for sc with all fault draws derived from seed.
// A nil or empty scenario yields a nil engine (no faults).
func New(sc *Scenario, seed int64) *Engine {
	if sc == nil || len(sc.Faults) == 0 {
		return nil
	}
	h0 := xrand.HashString(uint64(seed), "chaos/"+sc.Name)
	e := &Engine{sc: sc, h0: h0, fh: make([]uint64, len(sc.Faults))}
	for i := range sc.Faults {
		e.fh[i] = xrand.Hash64(h0, uint64(i)+1)
	}
	return e
}

// Scenario returns the engine's fault plan (nil for a nil engine).
func (e *Engine) Scenario() *Scenario {
	if e == nil {
		return nil
	}
	return e.sc
}

// salts keep the independent draw families uncorrelated.
const (
	saltPhase  = 0x7068 // pseudo-phase of a wire datagram
	saltSelect = 0x73656c // stable subset selection
	saltDraw   = 0x6472 // per-decision probability draw
)

// scopeMatch reports whether the fault's CIDR scopes cover (src, dst).
func (f *Fault) scopeMatch(src, dst netaddr.IP) bool {
	if f.HasSrc && !f.Src.Contains(src) {
		return false
	}
	if f.HasDst && !f.Dst.Contains(dst) {
		return false
	}
	return true
}

// baseDomain returns the last two labels of a canonical name — the
// unit AXFR policies and DNS bursts select domains by.
func baseDomain(name string) string {
	name = dnswire.CanonicalName(name)
	i := strings.LastIndexByte(name, '.')
	if i < 0 {
		return name
	}
	j := strings.LastIndexByte(name[:i], '.')
	if j < 0 {
		return name
	}
	return name[j+1:]
}

// domainMatch reports whether fault i's domain scope covers name.
func (e *Engine) domainMatch(i int, name string) bool {
	f := &e.sc.Faults[i]
	if f.DomainSuffix != "" {
		suf := dnswire.CanonicalName(f.DomainSuffix)
		if name != suf && !strings.HasSuffix(name, "."+suf) {
			return false
		}
	}
	if f.DomainFrac > 0 {
		h := xrand.HashString(xrand.Hash64(e.fh[i], saltSelect), baseDomain(name))
		if xrand.Frac(h) >= f.DomainFrac {
			return false
		}
	}
	return true
}

// forge builds a response to q with the given rcode, or nil if the
// query cannot be answered in kind.
func forge(q *dnswire.Message, rcode dnswire.RCode) []byte {
	r := q.Reply()
	r.Header.RCode = rcode
	raw, err := r.Pack()
	if err != nil {
		return nil
	}
	return raw
}

// Intercept implements simnet.Interceptor: blackouts, unscoped loss
// and brownouts, and the DNS-layer faults. The datagram's pseudo-phase
// — its stand-in position in the campaign — is a hash of its identity,
// so the same packet meets the same window on every run.
func (e *Engine) Intercept(src, dst netaddr.IP, flow uint64, payload []byte) simnet.Verdict {
	if e == nil {
		return simnet.Verdict{}
	}
	phase := xrand.Frac(xrand.HashBytes(xrand.Hash64(e.h0, saltPhase, uint64(src), uint64(dst), flow), payload))
	var v simnet.Verdict
	var q *dnswire.Message
	unpacked := false
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		switch f.Kind {
		case Blackout:
			if !f.scopeMatch(src, dst) || f.Region != "" {
				continue
			}
			if xrand.Frac(xrand.Hash64(e.fh[i], saltSelect, uint64(dst))) < f.frac() {
				return simnet.Verdict{Drop: true}
			}
		case Loss:
			if f.Region != "" || !f.active(phase) || !f.scopeMatch(src, dst) {
				continue
			}
			if xrand.Frac(xrand.HashBytes(xrand.Hash64(e.fh[i], saltDraw, flow), payload)) < f.prob() {
				return simnet.Verdict{Drop: true}
			}
		case Brownout:
			if f.Region != "" || !f.active(phase) || !f.scopeMatch(src, dst) {
				continue
			}
			v.ExtraRTT += f.ExtraRTT
		case ServFail, Refused, AXFRRefuse:
			if !f.scopeMatch(src, dst) {
				continue
			}
			if !unpacked {
				unpacked = true
				if m, err := dnswire.Unpack(payload); err == nil && !m.Header.Response && len(m.Questions) == 1 {
					q = m
				}
			}
			if q == nil || !e.domainMatch(i, q.Questions[0].Name) {
				continue
			}
			if f.Kind == AXFRRefuse {
				// A zone-transfer policy, not a transient: no window, no
				// draw — the selected domains always refuse.
				if q.Questions[0].Type != dnswire.TypeAXFR {
					continue
				}
				if raw := forge(q, dnswire.RCodeRefused); raw != nil {
					v.Respond = raw
					return v
				}
				continue
			}
			if !f.active(phase) {
				continue
			}
			if xrand.Frac(xrand.HashBytes(xrand.Hash64(e.fh[i], saltDraw, flow), payload)) >= f.prob() {
				continue
			}
			rcode := dnswire.RCodeServFail
			if f.Kind == Refused {
				rcode = dnswire.RCodeRefused
			}
			if raw := forge(q, rcode); raw != nil {
				v.Respond = raw
				return v
			}
		}
	}
	return v
}

// outAt reports whether the named unit (vantage or account) is dark at
// campaign phase for any fault of the given kind.
func (e *Engine) outAt(kind Kind, name string, phase float64) bool {
	if e == nil {
		return false
	}
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if f.Kind != kind || !f.active(phase) {
			continue
		}
		if f.Frac == 0 {
			return true
		}
		if xrand.Frac(xrand.HashString(xrand.Hash64(e.fh[i], saltSelect), name)) < f.Frac {
			return true
		}
	}
	return false
}

// VantageOut reports whether a measurement vantage point is dark at
// campaign phase in [0,1). Campaigns pass their own progress fraction.
func (e *Engine) VantageOut(vantage string, phase float64) bool {
	return e.outAt(VantageDown, vantage, phase)
}

// AccountOut reports whether a cloud measurement account is unusable at
// campaign phase.
func (e *Engine) AccountOut(account string, phase float64) bool {
	return e.outAt(AccountDown, account, phase)
}

// RegionExtraMs returns the extra round-trip milliseconds region-scoped
// brownouts add to probes in region at campaign phase.
func (e *Engine) RegionExtraMs(region string, phase float64) float64 {
	if e == nil {
		return 0
	}
	var ms float64
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if f.Kind != Brownout || f.Region == "" || !f.active(phase) {
			continue
		}
		if strings.Contains(region, f.Region) {
			ms += float64(f.ExtraRTT) / float64(time.Millisecond)
		}
	}
	return ms
}

// ProbeLost reports whether a model-level probe in region, identified
// by a stable key, is lost at campaign phase — region-scoped loss draws
// per key, region-scoped blackouts drop everything.
func (e *Engine) ProbeLost(region, key string, phase float64) bool {
	if e == nil {
		return false
	}
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if f.Region == "" || !strings.Contains(region, f.Region) {
			continue
		}
		switch f.Kind {
		case Blackout:
			return true
		case Loss:
			if !f.active(phase) {
				continue
			}
			if xrand.Frac(xrand.HashString(xrand.Hash64(e.fh[i], saltDraw), key)) < f.prob() {
				return true
			}
		}
	}
	return false
}
