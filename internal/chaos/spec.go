package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cloudscope/internal/netaddr"
)

// The textual scenario format, accepted by every CLI's -chaos flag:
//
//	clause[;clause...]
//	clause  = fault | trigger
//	fault   = kind[,key=value...]
//	trigger = cause[:region]=>target+boost[=>target+boost...]
//
// Fault keys: p=<prob> window=<from>-<to> src=<cidr> dst=<cidr>
// region=<substr> domains=<suffix> dfrac=<frac> frac=<frac> add=<dur>.
//
// A trigger clause declares a correlated failure: while any fault of
// the cause kind (optionally region-scoped) is window-active, the
// target kind's decision draws run with their probability raised by
// boost — a regional brownout dragging SERVFAIL rates up with it. A
// chain of hops ("a=>b+0.3=>c+0.2") cascades hop by hop: each later
// hop's boost applies only while the previous hop's target kind also
// has a window-active clause.
//
// Examples: "loss,p=0.1,window=0.2-0.8;axfr-refuse,dfrac=0.9",
// "brownout,region=us-east,add=100ms;servfail,p=0.05;brownout:us-east=>servfail+0.2".

// Parse parses a scenario spec. The scenario's name is the spec itself,
// so two runs with the same spec and seed draw identical faults.
func Parse(spec string) (*Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("chaos: empty scenario spec")
	}
	sc := &Scenario{Name: spec}
	for ci, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return nil, fmt.Errorf("chaos: clause %d is empty", ci)
		}
		if strings.Contains(clause, "=>") {
			tr, err := parseTrigger(clause)
			if err != nil {
				return nil, fmt.Errorf("chaos: clause %d: %v", ci, err)
			}
			sc.Triggers = append(sc.Triggers, tr)
			continue
		}
		parts := strings.Split(clause, ",")
		f := Fault{Kind: Kind(strings.TrimSpace(parts[0]))}
		for _, kv := range parts[1:] {
			kv = strings.TrimSpace(kv)
			key, val, ok := strings.Cut(kv, "=")
			if !ok || val == "" {
				return nil, fmt.Errorf("chaos: clause %d: malformed option %q", ci, kv)
			}
			var err error
			switch key {
			case "p":
				f.Prob, err = parseFrac(val)
			case "frac":
				f.Frac, err = parseFrac(val)
			case "dfrac":
				f.DomainFrac, err = parseFrac(val)
			case "window":
				from, to, cut := strings.Cut(val, "-")
				if !cut {
					return nil, fmt.Errorf("chaos: clause %d: window %q is not from-to", ci, val)
				}
				if f.From, err = parseFrac(from); err == nil {
					f.To, err = parseFrac(to)
				}
			case "src":
				f.Src, err = netaddr.ParseCIDR(val)
				f.HasSrc = err == nil
			case "dst":
				f.Dst, err = netaddr.ParseCIDR(val)
				f.HasDst = err == nil
			case "region":
				f.Region = val
			case "domains":
				f.DomainSuffix = val
			case "add":
				f.ExtraRTT, err = time.ParseDuration(val)
			default:
				return nil, fmt.Errorf("chaos: clause %d: unknown option %q", ci, key)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: clause %d: option %q: %v", ci, kv, err)
			}
		}
		sc.Faults = append(sc.Faults, f)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// parseTrigger parses one "cause[:region]=>target+boost[=>...]"
// clause; every "=>" past the first extends the hop chain.
func parseTrigger(clause string) (Trigger, error) {
	parts := strings.Split(clause, "=>")
	var tr Trigger
	cause, region, scoped := strings.Cut(strings.TrimSpace(parts[0]), ":")
	tr.CauseKind = Kind(strings.TrimSpace(cause))
	if scoped {
		tr.CauseRegion = strings.TrimSpace(region)
		if tr.CauseRegion == "" {
			return tr, fmt.Errorf("trigger %q: empty cause region", clause)
		}
	}
	for _, hopSpec := range parts[1:] {
		hopSpec = strings.TrimSpace(hopSpec)
		plus := strings.LastIndexByte(hopSpec, '+')
		if plus < 0 {
			return tr, fmt.Errorf("trigger %q: want target+boost after \"=>\"", clause)
		}
		boost, err := parseFrac(hopSpec[plus+1:])
		if err != nil {
			return tr, fmt.Errorf("trigger %q: boost: %v", clause, err)
		}
		tr.Hops = append(tr.Hops, Hop{Target: Kind(strings.TrimSpace(hopSpec[:plus])), Boost: boost})
	}
	return tr, nil
}

func parseFrac(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("%g out of [0,1]", v)
	}
	return v, nil
}

// String renders the scenario in the spec format; Parse(sc.String())
// yields an equivalent scenario.
func (s *Scenario) String() string {
	if s == nil {
		return ""
	}
	var clauses []string
	for i := range s.Faults {
		f := &s.Faults[i]
		parts := []string{string(f.Kind)}
		if f.Prob > 0 {
			parts = append(parts, fmt.Sprintf("p=%g", f.Prob))
		}
		if f.From != 0 || f.To != 0 {
			parts = append(parts, fmt.Sprintf("window=%g-%g", f.From, f.To))
		}
		if f.HasSrc {
			parts = append(parts, "src="+f.Src.String())
		}
		if f.HasDst {
			parts = append(parts, "dst="+f.Dst.String())
		}
		if f.Region != "" {
			parts = append(parts, "region="+f.Region)
		}
		if f.DomainSuffix != "" {
			parts = append(parts, "domains="+f.DomainSuffix)
		}
		if f.DomainFrac > 0 {
			parts = append(parts, fmt.Sprintf("dfrac=%g", f.DomainFrac))
		}
		if f.Frac > 0 {
			parts = append(parts, fmt.Sprintf("frac=%g", f.Frac))
		}
		if f.ExtraRTT > 0 {
			parts = append(parts, "add="+f.ExtraRTT.String())
		}
		clauses = append(clauses, strings.Join(parts, ","))
	}
	for i := range s.Triggers {
		clauses = append(clauses, s.Triggers[i].String())
	}
	return strings.Join(clauses, ";")
}

// library holds the named scenarios shipped with the CLIs, each
// modelling a failure mode the paper's measurement campaign actually
// met.
var library = map[string]string{
	// flaky-internet: background packet loss plus a mid-campaign burst
	// of overloaded authorities.
	"flaky-internet": "loss,p=0.05;servfail,p=0.3,window=0.3-0.7",
	// axfr-lockdown: most zones refuse transfers (the paper's crawl got
	// AXFR from only a small minority of zones).
	"axfr-lockdown": "axfr-refuse,dfrac=0.85",
	// planetlab-flux: PlanetLab-style vantage churn — a third of the
	// vantage fleet dark through the campaign's middle half, with
	// background loss.
	"planetlab-flux": "vantage-down,frac=0.35,window=0.25-0.75;loss,p=0.03",
	// brownout-us-east: a regional latency event with correlated probe
	// loss, in the style of the 2012 us-east incidents.
	"brownout-us-east": "brownout,region=us-east,add=120ms,window=0.2-0.8;loss,p=0.15,region=us-east,window=0.2-0.8",
	// hostile: everything at once — the stress scenario the chaos
	// goldens run.
	"hostile": "loss,p=0.08;servfail,p=0.25,window=0.1-0.9;refused,p=0.05,window=0.5-0.6;" +
		"axfr-refuse,dfrac=0.9;vantage-down,frac=0.25,window=0.3-0.8;account-down,frac=0.25,window=0.4-0.9;" +
		"brownout,region=us-east,add=80ms,window=0.2-0.7;brownout,add=5ms,window=0.6-0.9;blackout,frac=0.02",
	// cascade: a regional brownout whose correlated failures drag the
	// authoritative DNS layer and the vantage fleet down with it — the
	// trigger-clause showcase.
	"cascade": "brownout,region=us-east,add=100ms,window=0.25-0.65;servfail,p=0.05;" +
		"vantage-down,frac=0.1,window=0.2-0.9;loss,p=0.03;" +
		"brownout:us-east=>servfail+0.35;brownout:us-east=>vantage-down+0.25",
	// cascade-deep: a multi-hop chain — the brownout drags the
	// authoritative layer down, which drags the vantage fleet, which
	// drags the wire — severed outside each intermediate kind's window.
	"cascade-deep": "brownout,region=us-east,add=100ms,window=0.2-0.7;servfail,p=0.05,window=0.2-0.8;" +
		"vantage-down,frac=0.1,window=0.25-0.9;loss,p=0.03;" +
		"brownout:us-east=>servfail+0.3=>vantage-down+0.2=>loss+0.15",
	// lossy-capture: every capture-layer fault kind at once — the
	// border tap truncating, resetting, reordering, corrupting, and
	// dropping what it records.
	"lossy-capture": "cap-truncate,frac=0.12;cap-rst,frac=0.06;cap-reorder,frac=0.08;" +
		"cap-corrupt,p=0.015;cap-drop,p=0.02",
	// hostile-capture: the hostile stress scenario with the lossy
	// capture tap on top — what the capture-fault bench leg and the
	// capture chaos goldens run.
	"hostile-capture": "loss,p=0.08;servfail,p=0.25,window=0.1-0.9;refused,p=0.05,window=0.5-0.6;" +
		"axfr-refuse,dfrac=0.9;vantage-down,frac=0.25,window=0.3-0.8;account-down,frac=0.25,window=0.4-0.9;" +
		"brownout,region=us-east,add=80ms,window=0.2-0.7;brownout,add=5ms,window=0.6-0.9;blackout,frac=0.02;" +
		"cap-truncate,frac=0.12;cap-rst,frac=0.06;cap-reorder,frac=0.08;cap-corrupt,p=0.015;cap-drop,p=0.02;" +
		"brownout:us-east=>loss+0.1=>cap-drop+0.1",
}

// Library returns the names of the built-in scenarios, sorted.
func Library() []string {
	names := make([]string, 0, len(library))
	for name := range library {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Load resolves a -chaos flag value: empty means no scenario, a library
// name loads the built-in of that name, and anything else parses as an
// inline spec.
func Load(s string) (*Scenario, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if spec, ok := library[s]; ok {
		sc, err := Parse(spec)
		if err != nil {
			panic("chaos: bad library scenario " + s + ": " + err.Error())
		}
		sc.Name = s
		return sc, nil
	}
	return Parse(s)
}
