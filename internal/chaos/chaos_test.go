package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudscope/internal/dnssrv"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/simnet"
)

func mustParse(t *testing.T, spec string) *Scenario {
	t.Helper()
	sc, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return sc
}

func TestParseRoundTrip(t *testing.T) {
	spec := "loss,p=0.1,window=0.2-0.8,dst=54.0.0.0/8;brownout,add=150ms,region=us-east;" +
		"axfr-refuse,domains=example.com,dfrac=0.9;vantage-down,frac=0.3,window=0.25-0.75"
	sc := mustParse(t, spec)
	if len(sc.Faults) != 4 {
		t.Fatalf("faults = %d", len(sc.Faults))
	}
	f := sc.Faults[0]
	if f.Kind != Loss || f.Prob != 0.1 || f.From != 0.2 || f.To != 0.8 || !f.HasDst || f.HasSrc {
		t.Fatalf("fault 0 = %+v", f)
	}
	if sc.Faults[1].ExtraRTT != 150*time.Millisecond || sc.Faults[1].Region != "us-east" {
		t.Fatalf("fault 1 = %+v", sc.Faults[1])
	}
	rt := mustParse(t, sc.String())
	if rt.String() != sc.String() {
		t.Fatalf("round trip changed spec:\n%s\nvs\n%s", rt.String(), sc.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "meteor-strike", "loss,p=1.5", "loss,p=x", "loss,window=0.8-0.2",
		"loss,window=half", "loss,dst=not-a-cidr", "brownout", "loss,p=0.1,",
		"loss,bogus=1", "brownout,add=-5ms", ";",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestLibraryScenariosParse(t *testing.T) {
	names := Library()
	if len(names) < 5 {
		t.Fatalf("library = %v", names)
	}
	for _, name := range names {
		sc, err := Load(name)
		if err != nil || sc == nil || sc.Name != name {
			t.Fatalf("Load(%q) = %+v, %v", name, sc, err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("library scenario %q invalid: %v", name, err)
		}
	}
	if sc, err := Load(""); sc != nil || err != nil {
		t.Fatalf("Load(\"\") = %v, %v", sc, err)
	}
	if sc, err := Load("loss,p=0.5"); err != nil || len(sc.Faults) != 1 {
		t.Fatalf("Load(inline) = %+v, %v", sc, err)
	}
}

func TestNilEngineIsInert(t *testing.T) {
	var e *Engine
	if e := New(nil, 1); e != nil {
		t.Fatal("New(nil) != nil")
	}
	if e := New(&Scenario{Name: "empty"}, 1); e != nil {
		t.Fatal("New(empty) != nil")
	}
	if v := e.Intercept(1, 2, 3, []byte("x")); v.Drop || v.ExtraRTT != 0 || v.Respond != nil {
		t.Fatalf("nil Intercept = %+v", v)
	}
	if e.VantageOut("v", 0.5) || e.AccountOut("a", 0.5) || e.ProbeLost("r", "k", 0.5) {
		t.Fatal("nil engine injected a fault")
	}
	if e.RegionExtraMs("r", 0.5) != 0 {
		t.Fatal("nil engine added latency")
	}
}

func TestInterceptDeterministic(t *testing.T) {
	sc := mustParse(t, "loss,p=0.5;brownout,add=10ms,window=0.3-0.7")
	a, b := New(sc, 42), New(sc, 42)
	other := New(sc, 43)
	differ := 0
	for i := 0; i < 500; i++ {
		payload := []byte{byte(i), byte(i >> 8)}
		va := a.Intercept(1, 2, uint64(i), payload)
		if vb := b.Intercept(1, 2, uint64(i), payload); va.Drop != vb.Drop || va.ExtraRTT != vb.ExtraRTT {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, va, vb)
		}
		if vo := other.Intercept(1, 2, uint64(i), payload); vo.Drop != va.Drop || vo.ExtraRTT != va.ExtraRTT {
			differ++
		}
	}
	if differ == 0 {
		t.Fatal("different seeds produced identical fault plans")
	}
}

func TestLossScopedByCIDR(t *testing.T) {
	sc := mustParse(t, "loss,p=1,dst=54.0.0.0/8")
	e := New(sc, 7)
	in := netaddr.MustParseIP("54.1.2.3")
	out := netaddr.MustParseIP("13.1.2.3")
	if v := e.Intercept(1, in, 0, []byte("x")); !v.Drop {
		t.Fatal("in-scope datagram survived p=1 loss")
	}
	if v := e.Intercept(1, out, 0, []byte("x")); v.Drop {
		t.Fatal("out-of-scope datagram dropped")
	}
}

func TestBlackoutSelectsStableHosts(t *testing.T) {
	e := New(mustParse(t, "blackout,frac=0.3"), 9)
	dropped := 0
	for i := 0; i < 1000; i++ {
		dst := netaddr.IP(0x36000000 + uint32(i))
		v1 := e.Intercept(1, dst, 0, []byte("a"))
		v2 := e.Intercept(2, dst, 99, []byte("entirely different"))
		if v1.Drop != v2.Drop {
			t.Fatal("blackout fate varied with datagram; must be per-host")
		}
		if v1.Drop {
			dropped++
		}
	}
	if dropped < 200 || dropped > 400 {
		t.Fatalf("blackout hit %d/1000 hosts with frac=0.3", dropped)
	}
}

func TestVantageOutWindowAndFrac(t *testing.T) {
	e := New(mustParse(t, "vantage-down,frac=0.4,window=0.25-0.75"), 3)
	out := 0
	for i := 0; i < 1000; i++ {
		name := "v" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		mid := e.VantageOut(name, 0.5)
		if e.VantageOut(name, 0.1) || e.VantageOut(name, 0.9) {
			t.Fatal("vantage dark outside the window")
		}
		if mid != e.VantageOut(name, 0.6) {
			t.Fatal("vantage fate changed within the window")
		}
		if mid {
			out++
		}
	}
	if out < 300 || out > 500 {
		t.Fatalf("%d/1000 vantages out with frac=0.4", out)
	}
	// frac=0 means all in-window units are out.
	all := New(mustParse(t, "account-down,window=0.4-0.6"), 3)
	if !all.AccountOut("anything", 0.5) || all.AccountOut("anything", 0.7) {
		t.Fatal("account-down without frac must take out every account in-window")
	}
}

func TestRegionBrownoutAndProbeLoss(t *testing.T) {
	e := New(mustParse(t, "brownout,region=us-east,add=120ms,window=0.2-0.8;loss,p=1,region=us-east,window=0.2-0.8"), 5)
	if ms := e.RegionExtraMs("ec2.us-east-1", 0.5); ms != 120 {
		t.Fatalf("extra = %gms, want 120", ms)
	}
	if ms := e.RegionExtraMs("ec2.us-east-1", 0.9); ms != 0 {
		t.Fatalf("extra outside window = %gms", ms)
	}
	if ms := e.RegionExtraMs("ec2.eu-west-1", 0.5); ms != 0 {
		t.Fatalf("extra in other region = %gms", ms)
	}
	if !e.ProbeLost("ec2.us-east-1", "probe-1", 0.5) {
		t.Fatal("in-window region probe survived p=1 loss")
	}
	if e.ProbeLost("ec2.us-east-1", "probe-1", 0.9) || e.ProbeLost("ec2.eu-west-1", "probe-1", 0.5) {
		t.Fatal("probe lost out of scope")
	}
	// Region-scoped faults must not leak onto the fabric.
	if v := e.Intercept(1, 2, 0, []byte("x")); v.Drop || v.ExtraRTT != 0 {
		t.Fatalf("region-scoped fault leaked to Intercept: %+v", v)
	}
}

// dnsQuery packs one question for the forging tests.
func dnsQuery(t *testing.T, name string, qtype dnswire.Type) []byte {
	t.Helper()
	q := dnswire.NewQuery(77, name, qtype)
	raw, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestServFailForgesResponse(t *testing.T) {
	e := New(mustParse(t, "servfail,p=1,domains=example.com"), 11)
	v := e.Intercept(1, 2, 5, dnsQuery(t, "www.example.com", dnswire.TypeA))
	if v.Respond == nil {
		t.Fatal("no forged response")
	}
	resp, err := dnswire.Unpack(v.Respond)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Response || resp.Header.ID != 77 || resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("forged header = %+v", resp.Header)
	}
	// Out-of-scope domain untouched; non-DNS payload untouched.
	if v := e.Intercept(1, 2, 5, dnsQuery(t, "www.other.net", dnswire.TypeA)); v.Respond != nil {
		t.Fatal("forged for out-of-scope domain")
	}
	if v := e.Intercept(1, 2, 5, []byte("GET / HTTP/1.1")); v.Respond != nil {
		t.Fatal("forged for non-DNS payload")
	}
}

func TestAXFRRefusePolicyStable(t *testing.T) {
	e := New(mustParse(t, "axfr-refuse,dfrac=0.5"), 13)
	refused := 0
	for i := 0; i < 200; i++ {
		name := "zone" + string(rune('a'+i%26)) + string(rune('a'+i/26)) + ".com"
		axfr := e.Intercept(1, 2, 0, dnsQuery(t, name, dnswire.TypeAXFR))
		if a := e.Intercept(1, 2, 0, dnsQuery(t, name, dnswire.TypeA)); a.Respond != nil {
			t.Fatal("axfr-refuse forged for an A query")
		}
		if sub := e.Intercept(1, 2, 0, dnsQuery(t, "www."+name, dnswire.TypeAXFR)); (sub.Respond != nil) != (axfr.Respond != nil) {
			t.Fatal("AXFR policy differed between a domain and its subdomain")
		}
		if axfr.Respond == nil {
			continue
		}
		refused++
		resp, err := dnswire.Unpack(axfr.Respond)
		if err != nil || resp.Header.RCode != dnswire.RCodeRefused {
			t.Fatalf("refusal resp = %+v err = %v", resp, err)
		}
	}
	if refused < 60 || refused > 140 {
		t.Fatalf("refused %d/200 zones with dfrac=0.5", refused)
	}
}

// TestEngineAgainstResolver wires the engine into a real fabric and
// resolver: SERVFAIL bursts exhaust failover, AXFR lockdown refuses
// transfers while ordinary lookups keep working.
func TestEngineAgainstResolver(t *testing.T) {
	fabric := simnet.NewFabric(nil)
	reg := dnssrv.NewRegistry()
	z := dnssrv.NewZone("example.com")
	z.AllowAXFR = true
	nsIP := netaddr.MustParseIP("198.51.100.53")
	z.MustAdd(
		dnswire.RR{Name: "example.com", Type: dnswire.TypeNS, TTL: 3600, Target: "ns1.example.com"},
		dnswire.RR{Name: "ns1.example.com", Type: dnswire.TypeA, TTL: 3600, IP: nsIP},
		dnswire.RR{Name: "www.example.com", Type: dnswire.TypeA, TTL: 300, IP: netaddr.MustParseIP("54.230.0.10")},
	)
	dnssrv.Deploy(fabric, reg, dnssrv.NewServer(z), nsIP)
	rv := dnssrv.NewResolver(fabric, reg, netaddr.MustParseIP("203.0.113.7"))

	fabric.SetInterceptor(New(mustParse(t, "axfr-refuse"), 1))
	if _, err := rv.AXFR("example.com"); !errors.Is(err, dnssrv.ErrRefused) {
		t.Fatalf("AXFR under lockdown err = %v, want ErrRefused", err)
	}
	if chain, err := rv.LookupA("www.example.com"); err != nil || len(chain) != 1 {
		t.Fatalf("LookupA under axfr lockdown: %v %v", chain, err)
	}

	fabric.SetInterceptor(New(mustParse(t, "servfail,p=1"), 1))
	rv.FlushCache()
	if _, err := rv.Query("www.example.com", dnswire.TypeA); !errors.Is(err, dnssrv.ErrServFail) {
		t.Fatalf("query under total SERVFAIL err = %v", err)
	}
}

func TestScenarioStringEmpty(t *testing.T) {
	var sc *Scenario
	if sc.String() != "" {
		t.Fatal("nil scenario String() non-empty")
	}
	if !strings.Contains((&Scenario{Faults: []Fault{{Kind: Loss, Prob: 0.5}}}).String(), "loss,p=0.5") {
		t.Fatal("String() missing clause")
	}
}
