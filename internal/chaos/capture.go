package chaos

import (
	"fmt"

	"cloudscope/internal/chaos/trace"
	"cloudscope/internal/xrand"
)

// This file is the capture-layer decision surface: per-flow and
// per-packet verdicts capture.Generator consults while synthesizing
// the border pcap. Like every other decision point, verdicts are pure
// hashes of stable identities — the global flow index and the packet
// sequence within the flow — so a faulted pcap is byte-identical at
// every worker count and shard layout, and the verdicts record and
// replay through the same trace machinery as the wire faults.

// CaptureFlowVerdict is the per-flow capture fault decision. The zero
// value means "capture this flow faithfully".
type CaptureFlowVerdict struct {
	// KeepFrac, when >0, truncates the flow: only the leading KeepFrac
	// fraction of its packets (at least one) reach the pcap.
	KeepFrac float64
	// RSTFrac, when >0, ends a TCP flow with a forged mid-stream reset
	// after the leading RSTFrac fraction of its planned packets; the
	// rest were never captured. Supersedes KeepFrac.
	RSTFrac float64
	// Reorder, when >0, swaps one adjacent pair of the flow's captured
	// packets in time; the draw's value picks the pair.
	Reorder float64
}

// Faulted reports whether any per-flow capture fault fired.
func (v CaptureFlowVerdict) Faulted() bool {
	return v.KeepFrac > 0 || v.RSTFrac > 0 || v.Reorder > 0
}

// CapturePacketVerdict is the per-packet capture fault decision. The
// zero value means "record this packet faithfully".
type CapturePacketVerdict struct {
	// Drop elides the pcap record entirely.
	Drop bool
	// Corrupt, when >0, damages the recorded frame; the draw's value
	// picks the damage shape (short frame vs flipped byte) and site.
	Corrupt float64
}

// capFlowPhase derives a capture flow's pseudo-phase — its stand-in
// position in the campaign — from its global flow index.
func (e *Engine) capFlowPhase(flow int) float64 {
	return xrand.Frac(xrand.Hash64(e.h0, saltCapPhase, uint64(flow)))
}

// CaptureFlow returns the per-flow capture verdict for the flow with
// the given global index. In replay mode the verdict is looked up from
// the recorded trace instead of drawn.
func (e *Engine) CaptureFlow(flow int) CaptureFlowVerdict {
	var v CaptureFlowVerdict
	if e == nil {
		return v
	}
	if e.rp != nil {
		if ev, ok := e.rp.Get(trace.PointCapFlow, trace.CapFlowID(uint64(flow))); ok {
			v = CaptureFlowVerdict{KeepFrac: ev.KeepFrac, RSTFrac: ev.RSTFrac, Reorder: ev.Reorder}
		}
		return v
	}
	if !e.hasCapFlow {
		return v
	}
	phase := e.capFlowPhase(flow)
	var kind Kind
	var cause string
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		switch f.Kind {
		case CapTruncate:
			if v.KeepFrac > 0 {
				continue
			}
		case CapRST:
			if v.RSTFrac > 0 {
				continue
			}
		case CapReorder:
			if v.Reorder > 0 {
				continue
			}
		default:
			continue
		}
		if !f.active(phase) {
			continue
		}
		draw := xrand.Frac(xrand.Hash64(e.fh[i], saltSelect, uint64(flow)))
		cz := ""
		if draw >= f.frac() {
			boost, label := e.boostFor(f.Kind, phase)
			if boost <= 0 || draw >= f.frac()+boost {
				continue
			}
			cz = label
		}
		// The verdict's shape comes from an independent sub-draw, so
		// the selection threshold does not skew it.
		sub := xrand.Frac(xrand.Hash64(e.fh[i], saltDraw, uint64(flow)))
		switch f.Kind {
		case CapTruncate:
			v.KeepFrac = 0.15 + 0.7*sub
		case CapRST:
			v.RSTFrac = 0.25 + 0.65*sub
		case CapReorder:
			if sub == 0 {
				sub = 0.5
			}
			v.Reorder = sub
		}
		if kind == "" {
			kind, cause = f.Kind, cz
		} else if cause == "" {
			cause = cz
		}
	}
	if v.Faulted() && e.rec != nil {
		e.rec.Record(trace.Event{
			Point: trace.PointCapFlow, ID: trace.CapFlowID(uint64(flow)),
			Kind: string(kind), Phase: phase, Name: fmt.Sprintf("flow-%d", flow),
			KeepFrac: v.KeepFrac, RSTFrac: v.RSTFrac, Reorder: v.Reorder, Cause: cause,
		})
	}
	return v
}

// CapturePacket returns the per-packet capture verdict for packet pkt
// of the flow with the given global index. A dropped record is never
// also corrupted.
func (e *Engine) CapturePacket(flow, pkt int) CapturePacketVerdict {
	var v CapturePacketVerdict
	if e == nil {
		return v
	}
	if e.rp != nil {
		if ev, ok := e.rp.Get(trace.PointCapPacket, trace.CapPacketID(uint64(flow), uint64(pkt))); ok {
			v = CapturePacketVerdict{Drop: ev.Drop, Corrupt: ev.Corrupt}
		}
		return v
	}
	if !e.hasCapPkt {
		return v
	}
	phase := e.capFlowPhase(flow)
	var kind Kind
	var cause string
	fire := func(want Kind) (bool, string) {
		for i := range e.sc.Faults {
			f := &e.sc.Faults[i]
			if f.Kind != want || !f.active(phase) {
				continue
			}
			draw := xrand.Frac(xrand.Hash64(e.fh[i], saltDraw, uint64(flow), uint64(pkt)))
			if draw < f.prob() {
				return true, ""
			}
			if boost, label := e.boostFor(want, phase); boost > 0 && draw < f.prob()+boost {
				return true, label
			}
		}
		return false, ""
	}
	if hit, cz := fire(CapDrop); hit {
		v.Drop = true
		kind, cause = CapDrop, cz
	} else if hit, cz := fire(CapCorrupt); hit {
		sub := xrand.Frac(xrand.Hash64(e.h0, saltSelect, uint64(flow), uint64(pkt)))
		if sub == 0 {
			sub = 0.5
		}
		v.Corrupt = sub
		kind, cause = CapCorrupt, cz
	}
	if (v.Drop || v.Corrupt > 0) && e.rec != nil {
		e.rec.Record(trace.Event{
			Point: trace.PointCapPacket, ID: trace.CapPacketID(uint64(flow), uint64(pkt)),
			Kind: string(kind), Phase: phase, Name: fmt.Sprintf("flow-%d/pkt-%d", flow, pkt),
			Drop: v.Drop, Corrupt: v.Corrupt, Cause: cause,
		})
	}
	return v
}
