package chaos

import (
	"testing"

	"cloudscope/internal/chaos/trace"
)

// deepSpec declares a three-hop cascade whose intermediate kind
// (servfail) is only window-active in the middle of the campaign, so
// the chain conducts at phase 0.5 and is severed at phase 0.2.
const deepSpec = "brownout,region=us-east,add=100ms,window=0.1-0.9;" +
	"servfail,p=0.01,window=0.4-0.6;vantage-down,frac=0.1;" +
	"brownout:us-east=>servfail+0.5=>vantage-down+0.6"

func vantageRate(e *Engine, phase float64) int {
	out := 0
	for i := 0; i < 1000; i++ {
		name := "v" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		if e.VantageOut(name, phase) {
			out++
		}
	}
	return out
}

// TestCascadeConductsThroughLiveKinds: a hop's boost applies only while
// every upstream hop's kind is window-active — the cascade is severed
// at the first dormant intermediate.
func TestCascadeConductsThroughLiveKinds(t *testing.T) {
	e := New(mustParse(t, deepSpec), 9)
	conducting := vantageRate(e, 0.5) // brownout and servfail both active
	severed := vantageRate(e, 0.2)    // servfail dormant: boost must not reach hop 2
	if conducting < 550 || conducting > 850 {
		t.Fatalf("conducting-chain outage rate %d/1000, want ~700", conducting)
	}
	if severed < 40 || severed > 200 {
		t.Fatalf("severed-chain outage rate %d/1000, want base ~100", severed)
	}
}

// TestCascadeCauseLabels: verdicts induced along the chain carry the
// causal-path prefix through their own hop, not the whole chain.
func TestCascadeCauseLabels(t *testing.T) {
	e := New(mustParse(t, deepSpec), 9)
	rec := trace.NewRecorder(trace.Header{Scenario: "deep", Seed: 9})
	e.SetRecorder(rec)
	vantageRate(e, 0.5)
	want := "brownout:us-east=>servfail+0.5=>vantage-down+0.6"
	caused := 0
	for _, ev := range rec.Snapshot().Events {
		if ev.Cause == "" {
			continue
		}
		caused++
		if ev.Cause != want {
			t.Fatalf("cause label %q, want %q", ev.Cause, want)
		}
	}
	if caused == 0 {
		t.Fatal("no chain-induced verdicts recorded at a conducting phase")
	}
}

// TestCascadeDeepScenario: the library's cascade-deep plan parses, its
// trigger is a three-hop chain, and a recorded run bisects down to a
// single culprit event with ddmin.
func TestCascadeDeepScenario(t *testing.T) {
	sc, err := Load("cascade-deep")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Triggers) != 1 || len(sc.Triggers[0].Hops) != 3 {
		t.Fatalf("cascade-deep triggers = %+v, want one 3-hop chain", sc.Triggers)
	}

	e := New(sc, 5)
	rec := trace.NewRecorder(trace.Header{Scenario: sc.Name, Spec: sc.String(), Seed: 5})
	e.SetRecorder(rec)
	for i := 0; i < 400; i++ {
		name := "v" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		e.VantageOut(name, 0.5)
	}
	tr := rec.Snapshot()
	if tr.Len() == 0 {
		t.Fatal("cascade-deep recorded no verdicts")
	}

	// Culprit: the verdict that darkened one specific vantage. The
	// predicate replays a candidate trace and checks that vantage is
	// still out; ddmin must converge to exactly that one event.
	var culprit string
	for _, ev := range tr.Events {
		if ev.Out {
			culprit = ev.Name
			break
		}
	}
	if culprit == "" {
		t.Skip("no vantage outage at this seed/phase")
	}
	min, evals := trace.Minimize(tr, func(cand *trace.Trace) bool {
		return NewReplay(cand).VantageOut(culprit, 0.5)
	})
	if min.Len() != 1 || min.Events[0].Name != culprit {
		t.Fatalf("ddmin on cascade-deep: %d events (culprit %q), want exactly 1", min.Len(), culprit)
	}
	if evals <= 0 {
		t.Fatalf("evals = %d", evals)
	}
}

// TestCaptureVerdictsDeterministic: capture verdicts are pure functions
// of (scenario, seed, flow identity) — two engines built alike agree on
// every draw, and a different seed diverges somewhere.
func TestCaptureVerdictsDeterministic(t *testing.T) {
	sc, err := Load("lossy-capture")
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := New(sc, 4), New(sc, 4), New(sc, 5)
	diverged := false
	for flow := 0; flow < 500; flow++ {
		va, vb := a.CaptureFlow(flow), b.CaptureFlow(flow)
		if va != vb {
			t.Fatalf("flow %d: same-seed verdicts differ: %+v vs %+v", flow, va, vb)
		}
		if va != c.CaptureFlow(flow) {
			diverged = true
		}
		for pkt := 0; pkt < 12; pkt++ {
			pa, pb := a.CapturePacket(flow, pkt), b.CapturePacket(flow, pkt)
			if pa != pb {
				t.Fatalf("flow %d pkt %d: same-seed verdicts differ", flow, pkt)
			}
		}
		// Shapes stay in their documented ranges.
		if va.KeepFrac != 0 && (va.KeepFrac < 0.15 || va.KeepFrac >= 0.85) {
			t.Fatalf("KeepFrac %v out of [0.15, 0.85)", va.KeepFrac)
		}
		if va.RSTFrac != 0 && (va.RSTFrac < 0.25 || va.RSTFrac >= 0.9) {
			t.Fatalf("RSTFrac %v out of [0.25, 0.9)", va.RSTFrac)
		}
	}
	if !diverged {
		t.Fatal("500 flows: different seeds never diverged")
	}
}

// TestCaptureVerdictsRecordReplay: capture verdicts round-trip through
// a recorded trace, and a nil engine is inert.
func TestCaptureVerdictsRecordReplay(t *testing.T) {
	sc, err := Load("lossy-capture")
	if err != nil {
		t.Fatal(err)
	}
	live := New(sc, 4)
	rec := trace.NewRecorder(trace.Header{Scenario: sc.Name, Spec: sc.String(), Seed: 4})
	live.SetRecorder(rec)
	type pair struct {
		fv CaptureFlowVerdict
		pv [8]CapturePacketVerdict
	}
	query := func(e *Engine) []pair {
		var out []pair
		for flow := 0; flow < 400; flow++ {
			var p pair
			p.fv = e.CaptureFlow(flow)
			for pkt := range p.pv {
				p.pv[pkt] = e.CapturePacket(flow, pkt)
			}
			out = append(out, p)
		}
		return out
	}
	lv := query(live)
	faulted := 0
	for _, p := range lv {
		if p.fv.Faulted() {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("lossy-capture fired no per-flow faults over 400 flows")
	}
	rp := NewReplay(rec.Snapshot())
	rv := query(rp)
	for i := range lv {
		if lv[i] != rv[i] {
			t.Fatalf("flow %d: replay diverged: %+v vs %+v", i, lv[i], rv[i])
		}
	}

	var nilEng *Engine
	if v := nilEng.CaptureFlow(3); v != (CaptureFlowVerdict{}) {
		t.Fatalf("nil engine CaptureFlow = %+v", v)
	}
	if v := nilEng.CapturePacket(3, 1); v != (CapturePacketVerdict{}) {
		t.Fatalf("nil engine CapturePacket = %+v", v)
	}
}
