package trace

import (
	"sort"
	"sync"
)

// key addresses one decision in the recorder's and replayer's maps.
type key struct {
	pt Point
	id uint64
}

// Recorder accumulates fault verdicts as a run executes. It is safe
// for concurrent use: workers record in whatever order scheduling
// produces, and Snapshot returns the canonical (point, id)-sorted
// trace, so the recorded bytes are identical at every worker count.
//
// The same decision may be recorded many times (an identical datagram
// retried on the same flow meets the same verdict); duplicates collapse
// onto the first recording. A nil *Recorder ignores all recordings, so
// the engine can call it unconditionally.
type Recorder struct {
	mu  sync.Mutex
	hdr Header
	ev  map[key]Event
}

// NewRecorder returns an empty recorder carrying the run's metadata.
func NewRecorder(hdr Header) *Recorder {
	return &Recorder{hdr: hdr, ev: map[key]Event{}}
}

// Record logs one faulting verdict.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	k := key{ev.Point, ev.ID}
	r.mu.Lock()
	if _, dup := r.ev[k]; !dup {
		r.ev[k] = ev
	}
	r.mu.Unlock()
}

// Len returns the number of distinct verdicts recorded so far.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ev)
}

// Snapshot returns the trace recorded so far in canonical order — a
// pure function of the verdict set, independent of recording order.
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	events := make([]Event, 0, len(r.ev))
	for _, ev := range r.ev {
		events = append(events, ev)
	}
	hdr := r.hdr
	r.mu.Unlock()
	sort.Slice(events, func(i, j int) bool {
		if events[i].Point != events[j].Point {
			return events[i].Point < events[j].Point
		}
		return events[i].ID < events[j].ID
	})
	hdr.Version = 1
	hdr.Events = len(events)
	return &Trace{Header: hdr, Events: events}
}

// Lookup answers replay-mode verdict queries in O(1). A nil *Lookup
// returns no faults.
type Lookup struct {
	hdr Header
	m   map[key]Event
}

// NewLookup indexes a trace for replay. A nil trace yields a nil
// lookup. Later duplicates of a (point, id) key are ignored, mirroring
// the recorder.
func NewLookup(t *Trace) *Lookup {
	if t == nil {
		return nil
	}
	l := &Lookup{hdr: t.Header, m: make(map[key]Event, len(t.Events))}
	for _, ev := range t.Events {
		k := key{ev.Point, ev.ID}
		if _, dup := l.m[k]; !dup {
			l.m[k] = ev
		}
	}
	return l
}

// Header returns the indexed trace's metadata.
func (l *Lookup) Header() Header {
	if l == nil {
		return Header{}
	}
	return l.hdr
}

// Get returns the recorded verdict for a decision, if any.
func (l *Lookup) Get(pt Point, id uint64) (Event, bool) {
	if l == nil {
		return Event{}, false
	}
	ev, ok := l.m[key{pt, id}]
	return ev, ok
}
