package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		Header: Header{Version: 1, Scenario: "hostile", Spec: "loss,p=0.08", Seed: 3},
		Events: []Event{
			{Point: PointWire, ID: 12, Kind: "loss", Phase: 0.25, Drop: true},
			{Point: PointWire, ID: 99, Kind: "servfail", Phase: 0.5, RCode: 2, Forged: true, Cause: "brownout:us-east=>servfail+0.2"},
			{Point: PointVantage, ID: 7, Kind: "vantage-down", Phase: 0.4, Name: "v003", Out: true},
			{Point: PointRegion, ID: 3, Kind: "brownout", Phase: 0.3, Name: "ec2.us-east-1", ExtraMs: 80},
			{Point: PointProbe, ID: 5, Kind: "loss", Phase: 0.6, Name: "t1.micro/a/3", Drop: true},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleTrace()
	want.Header.Events = len(want.Events)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	if _, err := sampleTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	lines := strings.Split(strings.TrimSuffix(full, "\n"), "\n")

	cases := map[string]string{
		"empty":          "",
		"bad header":     "not json\n",
		"bad version":    `{"v":2,"seed":1,"events":0}` + "\n",
		"negative count": `{"v":1,"seed":1,"events":-1}` + "\n",
		"truncated":      strings.Join(lines[:len(lines)-1], "\n") + "\n",
		"extra event":    full + lines[1] + "\n",
		"bad event json": lines[0] + "\n{oops\n",
		"unknown point":  `{"v":1,"seed":1,"events":1}` + "\n" + `{"pt":"zzz","id":1,"ph":0}` + "\n",
		"phase range":    `{"v":1,"seed":1,"events":1}` + "\n" + `{"pt":"wire","id":1,"ph":2}` + "\n",
		"bad rcode":      `{"v":1,"seed":1,"events":1}` + "\n" + `{"pt":"wire","id":1,"ph":0,"rc":99}` + "\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}

// TestRecorderCanonical: snapshots are a pure function of the verdict
// set — recording order and duplicates cannot change the bytes.
func TestRecorderCanonical(t *testing.T) {
	evs := sampleTrace().Events
	fwd := NewRecorder(Header{Seed: 3})
	for _, ev := range evs {
		fwd.Record(ev)
	}
	rev := NewRecorder(Header{Seed: 3})
	for i := len(evs) - 1; i >= 0; i-- {
		rev.Record(evs[i])
		rev.Record(evs[i]) // duplicates collapse
	}
	var a, b bytes.Buffer
	if _, err := fwd.Snapshot().WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := rev.Snapshot().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshot depends on recording order:\n%s\nvs\n%s", a.String(), b.String())
	}
	if fwd.Len() != len(evs) {
		t.Fatalf("Len = %d, want %d", fwd.Len(), len(evs))
	}
}

func TestLookup(t *testing.T) {
	l := NewLookup(sampleTrace())
	if ev, ok := l.Get(PointWire, 99); !ok || ev.RCode != 2 || !ev.Forged {
		t.Fatalf("Get(wire, 99) = %+v, %v", ev, ok)
	}
	if _, ok := l.Get(PointWire, 1000); ok {
		t.Fatal("Get returned a verdict for an unrecorded decision")
	}
	if _, ok := l.Get(PointAccount, 99); ok {
		t.Fatal("lookup ignored the decision point")
	}
	var nilL *Lookup
	if _, ok := nilL.Get(PointWire, 1); ok {
		t.Fatal("nil lookup returned a verdict")
	}
	if NewLookup(nil) != nil {
		t.Fatal("NewLookup(nil) != nil")
	}
}

// TestMinimize: ddmin finds the minimal culprit pair among decoys.
func TestMinimize(t *testing.T) {
	var events []Event
	for i := 0; i < 40; i++ {
		events = append(events, Event{Point: PointWire, ID: uint64(i), Kind: "loss", Drop: true})
	}
	tr := &Trace{Events: events}
	pred := func(c *Trace) bool {
		has := map[uint64]bool{}
		for _, ev := range c.Events {
			has[ev.ID] = true
		}
		return has[7] && has[31]
	}
	min, evals := Minimize(tr, pred)
	if len(min.Events) != 2 || min.Events[0].ID != 7 || min.Events[1].ID != 31 {
		t.Fatalf("minimized to %+v, want IDs [7 31]", min.Events)
	}
	if !pred(min) {
		t.Fatal("minimized trace no longer satisfies the predicate")
	}
	if evals > 200 {
		t.Fatalf("ddmin spent %d evaluations on 40 events", evals)
	}
}

// TestMinimizeUnsatisfied: a predicate the full trace cannot trigger
// returns the trace unchanged.
func TestMinimizeUnsatisfied(t *testing.T) {
	tr := sampleTrace()
	min, evals := Minimize(tr, func(*Trace) bool { return false })
	if len(min.Events) != len(tr.Events) || evals != 1 {
		t.Fatalf("Minimize on unsatisfiable predicate: %d events, %d evals", len(min.Events), evals)
	}
}

// TestMinimizeSingle: a single-culprit trace shrinks to exactly it.
func TestMinimizeSingle(t *testing.T) {
	tr := sampleTrace()
	min, _ := Minimize(tr, func(c *Trace) bool {
		for _, ev := range c.Events {
			if ev.Point == PointVantage {
				return true
			}
		}
		return false
	})
	if len(min.Events) != 1 || min.Events[0].Point != PointVantage {
		t.Fatalf("minimized to %+v, want the single vantage event", min.Events)
	}
}

// TestIDsAreStable pins the frozen identity hashes: any change here
// orphans previously recorded traces.
func TestIDsAreStable(t *testing.T) {
	if a, b := WireID(1, 2, 3, []byte("x")), WireID(1, 2, 3, []byte("x")); a != b {
		t.Fatal("WireID not deterministic")
	}
	if WireID(1, 2, 3, []byte("x")) == WireID(1, 2, 4, []byte("x")) {
		t.Fatal("WireID ignores flow")
	}
	if VantageID("v1", 0.5) == VantageID("v1", 0.25) {
		t.Fatal("VantageID ignores phase")
	}
	if VantageID("v1", 0.5) == AccountID("v1", 0.5) {
		t.Fatal("vantage and account identities collide")
	}
	if ProbeID("us-east", "k", 0.5) == ProbeID("us-west", "k", 0.5) {
		t.Fatal("ProbeID ignores region")
	}
	if RegionID("us-east", 0.5) == RegionID("us-east", 0.75) {
		t.Fatal("RegionID ignores phase")
	}
}
