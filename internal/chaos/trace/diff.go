package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Delta is the structured difference between two fault traces: verdicts
// present only in the second trace (Added), only in the first
// (Removed), and present in both under the same (Point, ID) identity
// but with different verdicts (Changed). Two runs of the same scenario
// and seed record identical verdict sets, so their Delta is empty; a
// seed change, a scenario tweak, or an engine-logic change shows up as
// a readable verdict delta instead of a wall of JSONL.
type Delta struct {
	Added   []Event
	Removed []Event
	Changed []Change
}

// Change pairs the two verdicts one decision identity received.
type Change struct {
	A, B Event
}

// Diff compares trace a against trace b (either may be nil, meaning
// empty). Events are keyed by (Point, ID) — the same identity replay
// uses — with later duplicates of a key ignored, mirroring Lookup. The
// result is in canonical (Point, ID) order, so Diff is a pure function
// of the two verdict sets.
func Diff(a, b *Trace) *Delta {
	am, bm := indexEvents(a), indexEvents(b)
	d := &Delta{}
	for k, ea := range am {
		if eb, ok := bm[k]; !ok {
			d.Removed = append(d.Removed, ea)
		} else if ea != eb {
			d.Changed = append(d.Changed, Change{A: ea, B: eb})
		}
	}
	for k, eb := range bm {
		if _, ok := am[k]; !ok {
			d.Added = append(d.Added, eb)
		}
	}
	sortEvents(d.Added)
	sortEvents(d.Removed)
	sort.Slice(d.Changed, func(i, j int) bool {
		if d.Changed[i].A.Point != d.Changed[j].A.Point {
			return d.Changed[i].A.Point < d.Changed[j].A.Point
		}
		return d.Changed[i].A.ID < d.Changed[j].A.ID
	})
	return d
}

func indexEvents(t *Trace) map[key]Event {
	m := map[key]Event{}
	if t == nil {
		return m
	}
	for _, ev := range t.Events {
		k := key{ev.Point, ev.ID}
		if _, dup := m[k]; !dup {
			m[k] = ev
		}
	}
	return m
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Point != evs[j].Point {
			return evs[i].Point < evs[j].Point
		}
		return evs[i].ID < evs[j].ID
	})
}

// Empty reports whether the two traces recorded identical verdict sets.
func (d *Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// maxDetail caps the per-category sample lines String renders; the
// grouped counts above them are always complete.
const maxDetail = 12

// String renders the delta for humans: a one-line summary, per
// (point, kind) group counts, then a capped sample of concrete verdict
// lines per category. The rendering is deterministic.
func (d *Delta) String() string {
	if d.Empty() {
		return "traces agree: no verdicts added, removed, or changed\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault-trace delta: +%d added  -%d removed  ~%d changed\n",
		len(d.Added), len(d.Removed), len(d.Changed))

	type group struct {
		pt   Point
		kind string
	}
	counts := map[group]*[3]int{}
	bump := func(pt Point, kind string, slot int) {
		g := group{pt, kind}
		c, ok := counts[g]
		if !ok {
			c = &[3]int{}
			counts[g] = c
		}
		c[slot]++
	}
	for _, ev := range d.Added {
		bump(ev.Point, ev.Kind, 0)
	}
	for _, ev := range d.Removed {
		bump(ev.Point, ev.Kind, 1)
	}
	for _, ch := range d.Changed {
		bump(ch.A.Point, ch.A.Kind, 2)
	}
	groups := make([]group, 0, len(counts))
	for g := range counts {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].pt != groups[j].pt {
			return groups[i].pt < groups[j].pt
		}
		return groups[i].kind < groups[j].kind
	})
	for _, g := range groups {
		c := counts[g]
		kind := g.kind
		if kind == "" {
			kind = "-"
		}
		fmt.Fprintf(&b, "  %-8s %-14s +%d  -%d  ~%d\n", g.pt, kind, c[0], c[1], c[2])
	}

	sample := func(tag string, evs []Event) {
		for i, ev := range evs {
			if i == maxDetail {
				fmt.Fprintf(&b, "  %s … and %d more\n", tag, len(evs)-maxDetail)
				break
			}
			fmt.Fprintf(&b, "  %s %s\n", tag, eventLine(ev))
		}
	}
	sample("+", d.Added)
	sample("-", d.Removed)
	for i, ch := range d.Changed {
		if i == maxDetail {
			fmt.Fprintf(&b, "  ~ … and %d more\n", len(d.Changed)-maxDetail)
			break
		}
		fmt.Fprintf(&b, "  ~ %s\n    was %s\n    now %s\n",
			fmt.Sprintf("%s id=%016x", ch.A.Point, ch.A.ID), eventLine(ch.A), eventLine(ch.B))
	}
	return b.String()
}

// eventLine renders one verdict compactly for delta listings.
func eventLine(e Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s id=%016x phase=%.3f", e.Point, orDash(e.Kind), e.ID, e.Phase)
	if e.Name != "" {
		b.WriteString(" " + e.Name)
	}
	if e.Drop {
		b.WriteString(" drop")
	}
	if e.Forged {
		fmt.Fprintf(&b, " forged-rcode=%d", e.RCode)
	}
	if e.ExtraNs > 0 {
		fmt.Fprintf(&b, " +%dns", e.ExtraNs)
	}
	if e.ExtraMs > 0 {
		fmt.Fprintf(&b, " +%gms", e.ExtraMs)
	}
	if e.Out {
		b.WriteString(" out")
	}
	if e.KeepFrac > 0 {
		fmt.Fprintf(&b, " keep=%.3f", e.KeepFrac)
	}
	if e.RSTFrac > 0 {
		fmt.Fprintf(&b, " rst=%.3f", e.RSTFrac)
	}
	if e.Reorder > 0 {
		fmt.Fprintf(&b, " reorder=%.3f", e.Reorder)
	}
	if e.Corrupt > 0 {
		fmt.Fprintf(&b, " corrupt=%.3f", e.Corrupt)
	}
	if e.Cause != "" {
		b.WriteString(" cause=" + e.Cause)
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
