package trace

import (
	"strings"
	"testing"
)

func diffFixture() *Trace {
	return &Trace{
		Header: Header{Scenario: "t", Seed: 7},
		Events: []Event{
			{Point: PointWire, ID: 10, Kind: "loss", Phase: 0.2, Drop: true},
			{Point: PointVantage, ID: 20, Kind: "vantage-down", Phase: 0.5, Name: "pl-03", Out: true},
			{Point: PointCapFlow, ID: 30, Kind: "cap-truncate", Phase: 0.4, Name: "flow-12", KeepFrac: 0.4},
			{Point: PointCapPacket, ID: 40, Kind: "cap-drop", Phase: 0.6, Name: "flow-3/pkt-2", Drop: true},
		},
	}
}

// TestDiffIdentical: a trace diffed against itself — or a structurally
// equal copy — is empty, and says so.
func TestDiffIdentical(t *testing.T) {
	a, b := diffFixture(), diffFixture()
	d := Diff(a, b)
	if !d.Empty() {
		t.Fatalf("Diff of equal traces not empty: %+v", d)
	}
	if !strings.Contains(d.String(), "traces agree") {
		t.Fatalf("empty delta String() = %q", d.String())
	}
	if !Diff(nil, nil).Empty() {
		t.Fatal("Diff(nil, nil) not empty")
	}
}

// TestDiffAddedRemovedChanged: each divergence class lands in the right
// bucket and shows up in the rendering.
func TestDiffAddedRemovedChanged(t *testing.T) {
	a, b := diffFixture(), diffFixture()
	b.Events = b.Events[:3]    // drop the cappkt event: removed
	b.Events[2].KeepFrac = 0.9 // reshape the capflow verdict: changed
	extra := Event{Point: PointProbe, ID: 99, Kind: "loss", Phase: 0.1, Drop: true}
	b.Events = append(b.Events, extra) // new probe verdict: added

	d := Diff(a, b)
	if len(d.Added) != 1 || d.Added[0].ID != 99 {
		t.Fatalf("Added = %+v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0].Point != PointCapPacket {
		t.Fatalf("Removed = %+v", d.Removed)
	}
	if len(d.Changed) != 1 || d.Changed[0].B.KeepFrac != 0.9 {
		t.Fatalf("Changed = %+v", d.Changed)
	}
	out := d.String()
	for _, want := range []string{"+1 added", "-1 removed", "~1 changed", "was ", "now ", "keep=0.900"} {
		if !strings.Contains(out, want) {
			t.Fatalf("delta rendering missing %q:\n%s", want, out)
		}
	}

	// Diff is direction-sensitive but symmetric in magnitude.
	rd := Diff(b, a)
	if len(rd.Added) != 1 || len(rd.Removed) != 1 || len(rd.Changed) != 1 {
		t.Fatalf("reverse diff = %+v", rd)
	}
}

// TestDiffOrderInsensitive: event order within a trace does not matter —
// verdicts are keyed by (point, id).
func TestDiffOrderInsensitive(t *testing.T) {
	a, b := diffFixture(), diffFixture()
	b.Events[0], b.Events[3] = b.Events[3], b.Events[0]
	if d := Diff(a, b); !d.Empty() {
		t.Fatalf("permuted trace diffs non-empty: %+v", d)
	}
}

// TestDiffDetailCap: sample rendering is capped, counts are not.
func TestDiffDetailCap(t *testing.T) {
	a := &Trace{}
	b := &Trace{}
	for i := 0; i < 3*maxDetail; i++ {
		b.Events = append(b.Events, Event{Point: PointWire, ID: uint64(i + 1), Kind: "loss", Drop: true})
	}
	d := Diff(a, b)
	if len(d.Added) != 3*maxDetail {
		t.Fatalf("Added = %d", len(d.Added))
	}
	out := d.String()
	if !strings.Contains(out, "+36 added") {
		t.Fatalf("rendering lost the count:\n%s", out)
	}
	if n := strings.Count(out, "\n  + wire"); n > maxDetail {
		t.Fatalf("%d sample lines rendered, cap is %d", n, maxDetail)
	}
	if !strings.Contains(out, "and 24 more") {
		t.Fatalf("overflow line missing:\n%s", out)
	}
}
