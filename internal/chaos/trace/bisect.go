package trace

// Minimize delta-debugs a trace: it returns a locally-minimal
// sub-trace whose replay still satisfies pred, plus the number of
// predicate evaluations spent. pred must hold on t itself (Minimize
// returns t unchanged and zero evaluations otherwise — a predicate
// that the full trace cannot trigger has no culprit to find).
//
// The algorithm is Zeller's ddmin over the event list: split into n
// chunks, try each chunk alone, then each chunk's complement, refining
// granularity until single events cannot be removed. The result is
// 1-minimal — removing any one remaining event breaks the predicate —
// but not necessarily a global minimum, the standard delta-debugging
// contract. Every candidate keeps canonical event order, so candidate
// traces are themselves valid, replayable traces.
//
// pred typically replays the candidate into a fresh run and checks an
// outcome ("output differs from the fault-free golden", "completeness
// reports abandonment"), so each evaluation costs a run; Minimize
// spends O(n log n) evaluations in the usual case and O(n²) worst
// case.
func Minimize(t *Trace, pred func(*Trace) bool) (*Trace, int) {
	evals := 0
	test := func(events []Event) bool {
		evals++
		return pred(&Trace{Header: t.Header, Events: events})
	}
	if !test(t.Events) {
		return t, evals
	}
	events := t.Events
	n := 2
	for len(events) >= 2 {
		chunks := split(events, n)
		reduced := false
		// Reduce to one chunk.
		for _, c := range chunks {
			if len(c) < len(events) && test(c) {
				events, n, reduced = c, 2, true
				break
			}
		}
		// Reduce to a complement: drop one chunk.
		if !reduced {
			for i := range chunks {
				c := complement(chunks, i)
				if len(c) < len(events) && test(c) {
					events = c
					if n > 2 {
						n--
					}
					reduced = true
					break
				}
			}
		}
		if !reduced {
			if n >= len(events) {
				break // single events; nothing removable
			}
			n *= 2
			if n > len(events) {
				n = len(events)
			}
		}
	}
	return &Trace{Header: t.Header, Events: events}, evals
}

// split partitions events into n nearly-equal contiguous chunks.
func split(events []Event, n int) [][]Event {
	if n > len(events) {
		n = len(events)
	}
	chunks := make([][]Event, 0, n)
	for i := 0; i < n; i++ {
		lo := i * len(events) / n
		hi := (i + 1) * len(events) / n
		if lo < hi {
			chunks = append(chunks, events[lo:hi])
		}
	}
	return chunks
}

// complement concatenates every chunk except chunks[skip].
func complement(chunks [][]Event, skip int) []Event {
	var out []Event
	for i, c := range chunks {
		if i != skip {
			out = append(out, c...)
		}
	}
	return out
}
