// Package trace records, replays, and minimizes fault traces.
//
// A Trace is the flight recorder of a chaotic run: every fault verdict
// the chaos engine actually emitted — which datagram it dropped, which
// vantage it darkened at which point of the campaign, which response it
// forged — keyed by a stable hash of the decision's identity. Because
// engine verdicts are pure functions of stable identities, the set of
// faulting verdicts is the complete causal record of the run: replaying
// a trace (answering each decision from the recorded verdict instead of
// re-drawing it) reproduces the faulted run byte-identically, even
// after the engine's draw logic or the scenario's probabilities change.
//
// The package has three parts:
//
//   - a Recorder that accumulates verdicts concurrently and snapshots
//     them in canonical order (so record→record is itself deterministic
//     at every worker count);
//   - a Lookup the engine consults in replay mode;
//   - Minimize, a delta-debugging bisector that shrinks a trace to a
//     locally-minimal sub-trace still triggering a caller predicate —
//     the "which fault broke this run" loop.
//
// Traces serialize as JSONL: one header line, then one line per event,
// append-only and stable. The decoder rejects malformed or truncated
// input with an error; it never panics.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"cloudscope/internal/xrand"
)

// Point names a fault decision family — the engine call site a verdict
// was emitted from. The replayer keys lookups by (Point, ID), so the
// values are frozen: changing one orphans every recorded trace.
type Point string

const (
	// PointWire is a fabric datagram interception (drop, forge, delay).
	PointWire Point = "wire"
	// PointVantage is a vantage-point outage verdict.
	PointVantage Point = "vantage"
	// PointAccount is a cloud-account outage verdict.
	PointAccount Point = "account"
	// PointProbe is a model-level probe loss verdict.
	PointProbe Point = "probe"
	// PointRegion is a region-scoped extra-latency verdict.
	PointRegion Point = "region"
	// PointCapFlow is a capture-layer per-flow verdict (truncation,
	// mid-stream reset, segment reorder).
	PointCapFlow Point = "capflow"
	// PointCapPacket is a capture-layer per-packet verdict (dropped
	// pcap record, corrupted frame).
	PointCapPacket Point = "cappkt"
)

// validPoint reports whether p is a known decision family.
func validPoint(p Point) bool {
	switch p {
	case PointWire, PointVantage, PointAccount, PointProbe, PointRegion,
		PointCapFlow, PointCapPacket:
		return true
	}
	return false
}

// Event is one recorded fault verdict. Only faulting verdicts are
// recorded; a decision absent from the trace replays as "no fault",
// which is exactly what the original run saw.
type Event struct {
	// Point and ID identify the decision; ID is a stable hash of the
	// decision's identity (see WireID and friends).
	Point Point  `json:"pt"`
	ID    uint64 `json:"id"`
	// Kind is the fault kind that produced the verdict ("loss",
	// "servfail", ...), informational for humans and bisect reports.
	Kind string `json:"k,omitempty"`
	// Phase is the campaign-progress fraction the decision saw.
	Phase float64 `json:"ph"`
	// Name labels the faulted unit where one exists (vantage, account,
	// region, probe key) so bisect culprits are human-readable.
	Name string `json:"n,omitempty"`

	// The verdict. Exactly the fields the decision family uses are set.
	Drop    bool    `json:"d,omitempty"`   // wire, probe: datagram/probe lost
	RCode   int     `json:"rc,omitempty"`  // wire: forged DNS response rcode
	Forged  bool    `json:"f,omitempty"`   // wire: RCode is a forged response (distinguishes rcode 0)
	ExtraNs int64   `json:"xns,omitempty"` // wire: injected extra round-trip, nanoseconds
	ExtraMs float64 `json:"xms,omitempty"` // region: injected extra round-trip, milliseconds
	Out     bool    `json:"out,omitempty"` // vantage, account: unit dark

	// Capture-layer verdicts (capflow, cappkt points). All fractions
	// live in [0,1]; zero means "that fault did not fire".
	KeepFrac float64 `json:"kf,omitempty"`   // capflow: fraction of the flow's packets kept (truncation)
	RSTFrac  float64 `json:"rstf,omitempty"` // capflow: fraction of the flow captured before the forged reset
	Reorder  float64 `json:"ro,omitempty"`   // capflow: adjacent-swap position draw (>0 = a swap happened)
	Corrupt  float64 `json:"crp,omitempty"`  // cappkt: corruption-shape draw (>0 = frame damaged)

	// Cause, when non-empty, names the correlated-failure trigger whose
	// probability boost fired this verdict — the causal edge between a
	// cause fault and its induced effect.
	Cause string `json:"cz,omitempty"`
}

// validate checks an event decoded from untrusted input.
func (e *Event) validate() error {
	if !validPoint(e.Point) {
		return fmt.Errorf("trace: unknown decision point %q", e.Point)
	}
	if math.IsNaN(e.Phase) || math.IsInf(e.Phase, 0) || e.Phase < 0 || e.Phase > 1 {
		return fmt.Errorf("trace: event phase %v out of [0,1]", e.Phase)
	}
	if math.IsNaN(e.ExtraMs) || math.IsInf(e.ExtraMs, 0) || e.ExtraMs < 0 || e.ExtraNs < 0 {
		return fmt.Errorf("trace: negative or non-finite extra latency")
	}
	if e.RCode < 0 || e.RCode > 15 {
		return fmt.Errorf("trace: rcode %d out of range", e.RCode)
	}
	for _, fr := range [...]float64{e.KeepFrac, e.RSTFrac, e.Reorder, e.Corrupt} {
		if math.IsNaN(fr) || math.IsInf(fr, 0) || fr < 0 || fr > 1 {
			return fmt.Errorf("trace: capture fraction %v out of [0,1]", fr)
		}
	}
	return nil
}

// Header is a trace's run metadata, serialized as the first JSONL line.
type Header struct {
	// Version is the encoding version; currently always 1.
	Version int `json:"v"`
	// Scenario and Spec describe the fault plan the trace was recorded
	// under (name and parseable spec form).
	Scenario string `json:"scenario,omitempty"`
	Spec     string `json:"spec,omitempty"`
	// Seed is the study seed of the recorded run.
	Seed int64 `json:"seed"`
	// Events is the event-line count that must follow; decoders use it
	// to reject truncated traces.
	Events int `json:"events"`
}

// Trace is a decoded or snapshotted fault trace.
type Trace struct {
	Header Header
	Events []Event
}

// Len returns the event count (0 for a nil trace).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.Events)
}

// WriteTo serializes the trace as JSONL. The header's Events count is
// rewritten to match the event slice.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	hdr := t.Header
	hdr.Version = 1
	hdr.Events = len(t.Events)
	line, err := json.Marshal(hdr)
	if err != nil {
		return n, err
	}
	m, err := bw.Write(append(line, '\n'))
	n += int64(m)
	if err != nil {
		return n, err
	}
	for i := range t.Events {
		line, err := json.Marshal(&t.Events[i])
		if err != nil {
			return n, err
		}
		m, err := bw.Write(append(line, '\n'))
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// maxLine bounds one JSONL line; real events are well under 1 KiB.
const maxLine = 1 << 20

// Read decodes a JSONL trace. Malformed and truncated input returns an
// error; Read never panics.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: malformed header: %w", err)
	}
	if hdr.Version != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr.Version)
	}
	if hdr.Events < 0 {
		return nil, fmt.Errorf("trace: negative event count %d", hdr.Events)
	}
	t := &Trace{Header: hdr}
	for sc.Scan() {
		if len(t.Events) >= hdr.Events {
			return nil, fmt.Errorf("trace: more than the declared %d events", hdr.Events)
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("trace: malformed event %d: %w", len(t.Events), err)
		}
		if err := ev.validate(); err != nil {
			return nil, fmt.Errorf("event %d: %w", len(t.Events), err)
		}
		t.Events = append(t.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading events: %w", err)
	}
	if len(t.Events) != hdr.Events {
		return nil, fmt.Errorf("trace: truncated: header declares %d events, found %d", hdr.Events, len(t.Events))
	}
	return t, nil
}

// ReadFile decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// WriteFile serializes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- decision identities ---------------------------------------------
//
// The ID functions below are the frozen contract between recording and
// replay: a decision's ID is a pure hash of the decision's own inputs,
// independent of the scenario, the seed, and the engine's draw logic.
// Recording hashes the live decision; replay hashes the identical
// decision the re-run presents and looks the verdict up. The salts are
// arbitrary but MUST never change — doing so orphans every trace ever
// recorded.

const (
	saltWire    = 0x74727761 // "trwa"
	saltVantage = 0x74727661 // "trva"
	saltAccount = 0x74726163 // "trac"
	saltProbe   = 0x74727072 // "trpr"
	saltRegion  = 0x74727267 // "trrg"
	saltCapFlow = 0x74726366 // "trcf"
	saltCapPkt  = 0x74726370 // "trcp"
)

// WireID identifies one fabric datagram interception.
func WireID(src, dst, flow uint64, payload []byte) uint64 {
	return xrand.HashBytes(xrand.Hash64(saltWire, src, dst, flow), payload)
}

// VantageID identifies one vantage-outage decision at a campaign phase.
func VantageID(vantage string, phase float64) uint64 {
	return xrand.Hash64(xrand.HashString(saltVantage, vantage), math.Float64bits(phase))
}

// AccountID identifies one account-outage decision at a campaign phase.
func AccountID(account string, phase float64) uint64 {
	return xrand.Hash64(xrand.HashString(saltAccount, account), math.Float64bits(phase))
}

// ProbeID identifies one model-level probe-loss decision.
func ProbeID(region, key string, phase float64) uint64 {
	return xrand.Hash64(xrand.HashString(xrand.HashString(saltProbe, region), key), math.Float64bits(phase))
}

// RegionID identifies one region-latency decision at a campaign phase.
func RegionID(region string, phase float64) uint64 {
	return xrand.Hash64(xrand.HashString(saltRegion, region), math.Float64bits(phase))
}

// CapFlowID identifies one capture-flow verdict by global flow index.
func CapFlowID(flow uint64) uint64 {
	return xrand.Hash64(saltCapFlow, flow)
}

// CapPacketID identifies one capture-packet verdict by (flow, packet).
func CapPacketID(flow, pkt uint64) uint64 {
	return xrand.Hash64(saltCapPkt, flow, pkt)
}
