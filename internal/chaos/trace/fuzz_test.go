package trace

import (
	"bytes"
	"testing"
)

// FuzzRead: the trace decoder must reject malformed and truncated
// input with an error and never panic, and accepted traces must
// round-trip byte-identically through the encoder.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if _, err := (&Trace{
		Header: Header{Version: 1, Scenario: "hostile", Seed: 3},
		Events: []Event{
			{Point: PointWire, ID: 12, Kind: "loss", Phase: 0.25, Drop: true},
			{Point: PointVantage, ID: 7, Phase: 0.4, Name: "v003", Out: true},
		},
	}).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"v":1,"seed":1,"events":0}` + "\n"))
	f.Add([]byte(`{"v":1,"seed":1,"events":1}` + "\n" + `{"pt":"wire","id":1,"ph":0.5,"d":true}` + "\n"))
	f.Add([]byte("not a trace"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must survive encode → decode unchanged.
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := tr2.WriteTo(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("encode/decode not a fixed point:\n%q\nvs\n%q", out.Bytes(), out2.Bytes())
		}
	})
}
