package trace

import (
	"bytes"
	"testing"
)

// FuzzRead: the trace decoder must reject malformed and truncated
// input with an error and never panic, and accepted traces must
// round-trip byte-identically through the encoder.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if _, err := (&Trace{
		Header: Header{Version: 1, Scenario: "hostile", Seed: 3},
		Events: []Event{
			{Point: PointWire, ID: 12, Kind: "loss", Phase: 0.25, Drop: true},
			{Point: PointVantage, ID: 7, Phase: 0.4, Name: "v003", Out: true},
		},
	}).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"v":1,"seed":1,"events":0}` + "\n"))
	f.Add([]byte(`{"v":1,"seed":1,"events":1}` + "\n" + `{"pt":"wire","id":1,"ph":0.5,"d":true}` + "\n"))
	f.Add([]byte("not a trace"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must survive encode → decode unchanged.
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := tr2.WriteTo(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("encode/decode not a fixed point:\n%q\nvs\n%q", out.Bytes(), out2.Bytes())
		}
	})
}

// FuzzTraceDiff: Diff over two arbitrary decoded traces must never
// panic, must be empty exactly on self-comparison, must render, and
// must be magnitude-symmetric under operand swap.
func FuzzTraceDiff(f *testing.F) {
	enc := func(tr *Trace) []byte {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	a := &Trace{Header: Header{Version: 1, Seed: 3}, Events: []Event{
		{Point: PointWire, ID: 12, Kind: "loss", Phase: 0.25, Drop: true},
		{Point: PointCapFlow, ID: 9, Kind: "cap-truncate", Phase: 0.7, Name: "flow-9", KeepFrac: 0.5},
	}}
	b := &Trace{Header: Header{Version: 1, Seed: 4}, Events: []Event{
		{Point: PointWire, ID: 12, Kind: "loss", Phase: 0.25, Drop: true},
		{Point: PointCapPacket, ID: 2, Kind: "cap-drop", Phase: 0.1, Name: "flow-0/pkt-2", Drop: true},
	}}
	f.Add(enc(a), enc(b))
	f.Add(enc(a), enc(a))
	f.Add(enc(&Trace{Header: Header{Version: 1}}), enc(b))
	f.Add([]byte("junk"), enc(a))

	f.Fuzz(func(t *testing.T, da, db []byte) {
		ta, errA := Read(bytes.NewReader(da))
		tb, errB := Read(bytes.NewReader(db))
		if errA != nil {
			ta = nil
		}
		if errB != nil {
			tb = nil
		}
		d := Diff(ta, tb)
		if d.String() == "" {
			t.Fatal("delta rendered empty string")
		}
		if self := Diff(ta, ta); !self.Empty() {
			t.Fatalf("Diff(x, x) not empty: %+v", self)
		}
		rd := Diff(tb, ta)
		if len(rd.Added) != len(d.Removed) || len(rd.Removed) != len(d.Added) ||
			len(rd.Changed) != len(d.Changed) {
			t.Fatalf("swap asymmetry: %d/%d/%d vs %d/%d/%d",
				len(d.Added), len(d.Removed), len(d.Changed),
				len(rd.Added), len(rd.Removed), len(rd.Changed))
		}
		if d.Empty() != rd.Empty() {
			t.Fatal("Empty() differs under operand swap")
		}
	})
}
