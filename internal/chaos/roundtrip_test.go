package chaos

import (
	"reflect"
	"testing"

	"cloudscope/internal/chaos/trace"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/netaddr"
)

// TestLibraryRoundTrip: for every library scenario (triggers included),
// Parse(sc.String()) reconstructs the scenario structurally.
func TestLibraryRoundTrip(t *testing.T) {
	for _, name := range Library() {
		sc, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%q): %v", name, err)
		}
		rt, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("%s: Parse(String()) failed: %v\nspec: %s", name, err, sc.String())
		}
		rt.Name = sc.Name // Parse names the scenario after the spec
		if !reflect.DeepEqual(rt, sc) {
			t.Errorf("%s: round trip changed the scenario:\n got %+v\nwant %+v", name, rt, sc)
		}
		if rt.String() != sc.String() {
			t.Errorf("%s: String() not a fixed point:\n%s\nvs\n%s", name, rt.String(), sc.String())
		}
	}
	if sc, _ := Load("cascade"); len(sc.Triggers) != 2 {
		t.Fatalf("cascade triggers = %+v, want 2", sc.Triggers)
	}
}

func TestTriggerParse(t *testing.T) {
	sc := mustParse(t, "brownout,region=us-east,add=100ms;servfail,p=0.05;brownout:us-east=>servfail+0.2")
	if len(sc.Faults) != 2 || len(sc.Triggers) != 1 {
		t.Fatalf("faults=%d triggers=%d", len(sc.Faults), len(sc.Triggers))
	}
	tr := sc.Triggers[0]
	want := Trigger{CauseKind: Brownout, CauseRegion: "us-east", Hops: []Hop{{Target: ServFail, Boost: 0.2}}}
	if !reflect.DeepEqual(tr, want) {
		t.Fatalf("trigger = %+v, want %+v", tr, want)
	}
	// Unscoped cause.
	sc = mustParse(t, "loss,p=0.1;vantage-down,frac=0.2;loss=>vantage-down+0.3")
	if tr := sc.Triggers[0]; tr.CauseRegion != "" ||
		!reflect.DeepEqual(tr.Hops, []Hop{{Target: VantageDown, Boost: 0.3}}) {
		t.Fatalf("trigger = %+v", tr)
	}
	// Multi-hop chain.
	sc = mustParse(t, "brownout,region=us-east,add=50ms;servfail,p=0.05;vantage-down,frac=0.1;"+
		"brownout:us-east=>servfail+0.3=>vantage-down+0.2")
	wantDeep := Trigger{CauseKind: Brownout, CauseRegion: "us-east",
		Hops: []Hop{{Target: ServFail, Boost: 0.3}, {Target: VantageDown, Boost: 0.2}}}
	if !reflect.DeepEqual(sc.Triggers[0], wantDeep) {
		t.Fatalf("deep trigger = %+v, want %+v", sc.Triggers[0], wantDeep)
	}
	if got := sc.Triggers[0].String(); got != "brownout:us-east=>servfail+0.3=>vantage-down+0.2" {
		t.Fatalf("deep trigger String() = %q", got)
	}

	for _, bad := range []string{
		"loss,p=0.1;loss=>servfail",                                  // no boost
		"loss,p=0.1;loss=>servfail+2",                                // boost out of range
		"loss,p=0.1;loss=>servfail+0",                                // zero boost
		"loss,p=0.1;loss=>brownout+0.2",                              // brownout cannot be a target
		"loss,p=0.1;meteor=>servfail+0.2",                            // unknown cause kind
		"loss,p=0.1;loss:=>servfail+0.2",                             // empty cause region
		"loss,p=0.1;loss=>axfr-refuse+0.2",                           // policy faults cannot be boosted
		"loss,p=0.1;servfail,p=0.1;loss=>servfail+0.2=>brownout+0.1", // chain hop cannot target brownout
		"loss,p=0.1;servfail,p=0.1;loss=>servfail+0.2=>vantage-down", // chain hop without boost
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestTriggerBoostsVantageDraws: inside the cause window the trigger
// raises the vantage-down selection fraction; outside it the base rate
// rules.
func TestTriggerBoostsVantageDraws(t *testing.T) {
	spec := "vantage-down,frac=0.1;brownout,region=us-east,add=100ms,window=0.3-0.7;" +
		"brownout:us-east=>vantage-down+0.5"
	e := New(mustParse(t, spec), 21)
	// Same scenario name (hence identical hash draws) minus the trigger.
	baseSc := mustParse(t, spec)
	baseSc.Triggers = nil
	base := New(baseSc, 21)
	inWin, outWin := 0, 0
	for i := 0; i < 1000; i++ {
		name := "v" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		if e.VantageOut(name, 0.5) {
			inWin++
		}
		if e.VantageOut(name, 0.1) {
			outWin++
		}
		// The boost only widens the dark set: every vantage the base
		// scenario takes out stays out.
		if base.VantageOut(name, 0.5) && !e.VantageOut(name, 0.5) {
			t.Fatal("trigger revived a base-rate casualty")
		}
	}
	if inWin < 450 || inWin > 750 {
		t.Fatalf("boosted rate %d/1000, want ~600", inWin)
	}
	if outWin < 40 || outWin > 200 {
		t.Fatalf("unboosted rate %d/1000, want ~100", outWin)
	}
}

// TestTriggerBoostsProbeLoss: region-scoped probe loss rises while the
// cause brownout is active.
func TestTriggerBoostsProbeLoss(t *testing.T) {
	spec := "loss,p=0.05,region=us-east;brownout,region=us-east,add=50ms,window=0.2-0.6;" +
		"brownout:us-east=>loss+0.4"
	e := New(mustParse(t, spec), 33)
	inWin, outWin := 0, 0
	for i := 0; i < 1000; i++ {
		key := "probe-" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		if e.ProbeLost("ec2.us-east-1", key, 0.4) {
			inWin++
		}
		if e.ProbeLost("ec2.us-east-1", key, 0.8) {
			outWin++
		}
	}
	if inWin < 350 || inWin > 550 {
		t.Fatalf("boosted loss %d/1000, want ~450", inWin)
	}
	if outWin < 10 || outWin > 120 {
		t.Fatalf("unboosted loss %d/1000, want ~50", outWin)
	}
}

// TestTriggerRecordsCause: verdicts induced by a trigger carry the
// causal edge; base-rate verdicts do not.
func TestTriggerRecordsCause(t *testing.T) {
	spec := "vantage-down,frac=0.1;brownout,region=us-east,add=100ms,window=0.3-0.7;" +
		"brownout:us-east=>vantage-down+0.5"
	e := New(mustParse(t, spec), 21)
	rec := trace.NewRecorder(trace.Header{Scenario: "t", Spec: spec, Seed: 21})
	e.SetRecorder(rec)
	for i := 0; i < 300; i++ {
		name := "v" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		e.VantageOut(name, 0.5)
	}
	snap := rec.Snapshot()
	caused, uncaused := 0, 0
	for _, ev := range snap.Events {
		switch ev.Cause {
		case "":
			uncaused++
		case "brownout:us-east=>vantage-down+0.5":
			caused++
		default:
			t.Fatalf("unexpected cause label %q", ev.Cause)
		}
	}
	if caused == 0 || uncaused == 0 {
		t.Fatalf("caused=%d uncaused=%d; want both base-rate and induced verdicts", caused, uncaused)
	}
}

// TestRecordReplayUnits: every decision point answers identically from
// a replay engine fed the live engine's own trace.
func TestRecordReplayUnits(t *testing.T) {
	sc, err := Load("cascade")
	if err != nil {
		t.Fatal(err)
	}
	live := New(sc, 17)
	rec := trace.NewRecorder(trace.Header{Scenario: sc.Name, Spec: sc.String(), Seed: 17})
	live.SetRecorder(rec)

	type wirecase struct {
		src, dst uint64
		flow     uint64
		payload  []byte
	}
	var wires []wirecase
	for i := 0; i < 400; i++ {
		wires = append(wires, wirecase{1, uint64(0x36000000 + i), uint64(i), dnsQuery(t, "www.example.com", dnswire.TypeA)})
	}
	phases := []float64{0.05, 0.3, 0.5, 0.85}

	type flatVerdict struct {
		drop    bool
		extra   int64
		respond string
	}
	query := func(e *Engine) (verdicts []flatVerdict, vout, aout, plost []bool, extra []float64) {
		for _, w := range wires {
			v := e.Intercept(netaddr.IP(w.src), netaddr.IP(w.dst), w.flow, w.payload)
			verdicts = append(verdicts, flatVerdict{drop: v.Drop, extra: int64(v.ExtraRTT), respond: string(v.Respond)})
		}
		for _, ph := range phases {
			for i := 0; i < 50; i++ {
				name := "u" + string(rune('a'+i%26)) + string(rune('0'+i/26))
				vout = append(vout, e.VantageOut(name, ph))
				aout = append(aout, e.AccountOut(name, ph))
				plost = append(plost, e.ProbeLost("ec2.us-east-1", name, ph))
			}
			extra = append(extra, e.RegionExtraMs("ec2.us-east-1", ph), e.RegionExtraMs("azure.West-Europe", ph))
		}
		return
	}

	lv, lvo, lao, lpl, lex := query(live)
	snap := rec.Snapshot()
	if snap.Len() == 0 {
		t.Fatal("cascade run recorded no fault verdicts")
	}
	rp := NewReplay(snap)
	if !rp.Replaying() {
		t.Fatal("replay engine not in replay mode")
	}
	if rp.Scenario() == nil || rp.Scenario().Name != sc.Name {
		t.Fatalf("replay Scenario() = %+v", rp.Scenario())
	}
	rv, rvo, rao, rpl, rex := query(rp)
	if !reflect.DeepEqual(lv, rv) {
		t.Fatal("wire verdicts diverged under replay")
	}
	if !reflect.DeepEqual(lvo, rvo) || !reflect.DeepEqual(lao, rao) {
		t.Fatal("vantage/account outages diverged under replay")
	}
	if !reflect.DeepEqual(lpl, rpl) {
		t.Fatal("probe-loss verdicts diverged under replay")
	}
	if !reflect.DeepEqual(lex, rex) {
		t.Fatal("region brownout latencies diverged under replay")
	}

	// A replay engine never records, and NewReplay(nil) is inert.
	rp.SetRecorder(trace.NewRecorder(trace.Header{}))
	if rp.rec != nil {
		t.Fatal("replay engine accepted a recorder")
	}
	if NewReplay(nil) != nil {
		t.Fatal("NewReplay(nil) != nil")
	}
}
