package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cloudscope"
	"cloudscope/internal/chaos"
	"cloudscope/internal/load"
)

func testStudyConfig() cloudscope.Config {
	cfg := cloudscope.DefaultConfig()
	cfg.Domains = 300
	cfg.Vantages = 8
	cfg.CaptureFlows = 500
	cfg.Workers = 1
	return cfg
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

type envelope struct {
	APIVersion   string `json:"api_version"`
	Endpoint     string `json:"endpoint"`
	Epoch        int64  `json:"epoch"`
	Seed         int64  `json:"seed"`
	Degraded     bool   `json:"degraded"`
	Completeness []struct {
		Stage       string  `json:"stage"`
		SuccessRate float64 `json:"success_rate"`
	} `json:"completeness"`
	Data json.RawMessage `json:"data"`
}

var allEndpoints = []string{
	"/v1/patterns", "/v1/regions", "/v1/zones", "/v1/wanperf",
	"/v1/outage?region=ec2.us-east-1", "/v1/completeness",
}

// TestServeSmoke is the CI smoke leg (`make serve-smoke`): a real
// daemon on a random port, a small deterministic cloudload mix, zero
// errors, and a parseable metrics endpoint.
func TestServeSmoke(t *testing.T) {
	srv, ts := newTestServer(t, Config{Study: testStudyConfig()})
	mix, err := load.ParseMix("4:/v1/patterns,3:/v1/regions,2:/v1/zones,2:/v1/outage?region=ec2.us-east-1,1:/v1/completeness,1:/v1/domain?name=missing.example")
	if err != nil {
		t.Fatal(err)
	}
	res, err := load.Run(load.Config{
		BaseURL:     ts.URL,
		Mix:         mix,
		Requests:    200,
		Concurrency: 8,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Shed != 0 {
		t.Fatalf("smoke run had %d errors, %d shed:\n%s", res.Errors, res.Shed, res.Report())
	}
	if res.OK != 200 {
		t.Fatalf("OK = %d, want 200", res.OK)
	}

	status, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if _, ok := m["serve"]; !ok {
		t.Fatal("/metrics missing serve section")
	}
	if _, ok := m["study"]; !ok {
		t.Fatal("/metrics missing study section")
	}
	if srv.MaxInSystem() > 256 {
		t.Fatalf("in-system high-water %d exceeded default queue bound", srv.MaxInSystem())
	}

	status, body = get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", status, body)
	}
}

// TestCacheHitRatio checks the second identical query is served from
// cache and the counters say so.
func TestCacheHitRatio(t *testing.T) {
	srv, ts := newTestServer(t, Config{Study: testStudyConfig()})
	_, first := get(t, ts.URL+"/v1/patterns")
	_, second := get(t, ts.URL+"/v1/patterns")
	if string(first) != string(second) {
		t.Fatal("cached answer differs from first answer")
	}
	reg := srv.Telemetry().Registry()
	if hits := reg.Counter("serve.cache_hits").Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if misses := reg.Counter("serve.cache_misses").Value(); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}
}

// TestDeterminism: two same-seed daemons answer every endpoint with
// byte-identical V1 JSON when queried in the same order (completeness
// accounting accumulates across stage builds, so order matters).
// Worker-count invariance of the payloads is pinned separately in the
// api package's golden tests.
func TestDeterminism(t *testing.T) {
	_, tsA := newTestServer(t, Config{Study: testStudyConfig()})
	_, tsB := newTestServer(t, Config{Study: testStudyConfig()})

	paths := append([]string{}, allEndpoints...)
	paths = append(paths, "/v1/domain?name=missing.example")
	for _, p := range paths {
		sa, ba := get(t, tsA.URL+p)
		sb, bb := get(t, tsB.URL+p)
		if sa != sb {
			t.Fatalf("%s: status %d vs %d", p, sa, sb)
		}
		if string(ba) != string(bb) {
			t.Fatalf("%s: bodies differ between same-seed daemons\nA: %.200s\nB: %.200s", p, ba, bb)
		}
	}
}

// TestReloadEpoch checks /admin/reload swaps the world: the epoch
// bumps, the cache is discarded, and answers reflect the new seed.
func TestReloadEpoch(t *testing.T) {
	srv, ts := newTestServer(t, Config{Study: testStudyConfig()})
	_, body1 := get(t, ts.URL+"/v1/patterns")
	var env1 envelope
	if err := json.Unmarshal(body1, &env1); err != nil {
		t.Fatal(err)
	}
	if env1.Epoch != 1 || env1.Seed != 1 {
		t.Fatalf("epoch/seed = %d/%d, want 1/1", env1.Epoch, env1.Seed)
	}

	resp, err := http.Post(ts.URL+"/admin/reload?seed=42", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if srv.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", srv.Epoch())
	}

	_, body2 := get(t, ts.URL+"/v1/patterns")
	var env2 envelope
	if err := json.Unmarshal(body2, &env2); err != nil {
		t.Fatal(err)
	}
	if env2.Epoch != 2 || env2.Seed != 42 {
		t.Fatalf("post-reload epoch/seed = %d/%d, want 2/42", env2.Epoch, env2.Seed)
	}
	if string(body1) == string(body2) {
		t.Fatal("reload did not invalidate the cached answer")
	}

	// GET must not reload.
	status, _ := get(t, ts.URL+"/admin/reload")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reload status %d", status)
	}
}

// TestConcurrentReload hammers mixed queries across an epoch swap
// under -race: every answer must be internally consistent (epoch 1
// pairs with the old seed, epoch 2+ with the new), and the admission
// high-water mark must respect the queue bound.
func TestConcurrentReload(t *testing.T) {
	cfg := Config{Study: testStudyConfig(), MaxQueue: 64, EndpointConcurrency: 8}
	srv, ts := newTestServer(t, cfg)

	const workers = 8
	const perWorker = 30
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)

	paths := []string{"/v1/patterns", "/v1/regions", "/v1/outage?region=ec2.us-east-1", "/v1/completeness"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + paths[(w+i)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var env envelope
					if err := json.Unmarshal(body, &env); err != nil {
						errs <- fmt.Errorf("bad envelope: %v", err)
						return
					}
					wantSeed := int64(1)
					if env.Epoch >= 2 {
						wantSeed = 42
					}
					if env.Seed != wantSeed {
						errs <- fmt.Errorf("stale answer: epoch %d with seed %d", env.Epoch, env.Seed)
						return
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Backpressure is a legal answer under load.
				default:
					errs <- fmt.Errorf("status %d: %.120s", resp.StatusCode, body)
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	resp, err := http.Post(ts.URL+"/admin/reload?seed=42", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if max := srv.MaxInSystem(); max > 64 {
		t.Fatalf("admission high-water %d exceeded MaxQueue 64", max)
	}
	if srv.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", srv.Epoch())
	}
}

// TestBackpressure forces queue overflow: with MaxQueue 2 and slow
// first-build endpoints, a burst must see 429s, and the in-system
// count must never exceed the bound.
func TestBackpressure(t *testing.T) {
	cfg := Config{Study: testStudyConfig(), MaxQueue: 2, EndpointConcurrency: 1, QueueTimeout: 50 * time.Millisecond}
	srv, ts := newTestServer(t, cfg)

	const burst = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/zones") // first build is slow
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			counts[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[http.StatusTooManyRequests]+counts[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("burst of %d against queue of 2 produced no backpressure: %v", burst, counts)
	}
	if max := srv.MaxInSystem(); max > 2 {
		t.Fatalf("admission high-water %d exceeded MaxQueue 2", max)
	}
	reg := srv.Telemetry().Registry()
	if reg.Counter("serve.rejected_429").Value()+reg.Counter("serve.rejected_503").Value() == 0 {
		t.Fatal("rejection counters did not move")
	}
}

// TestChaosDegraded: a chaos-scenario daemon serves 200-OK answers
// whose envelopes carry Completeness fractions below 1 — degraded but
// honest.
func TestChaosDegraded(t *testing.T) {
	sc, err := chaos.Load("hostile")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testStudyConfig()
	cfg.Seed = 3
	cfg.Domains = 500
	cfg.Vantages = 10
	cfg.Chaos = sc
	_, ts := newTestServer(t, Config{Study: cfg})

	status, body := get(t, ts.URL+"/v1/patterns")
	if status != http.StatusOK {
		t.Fatalf("chaos daemon answered %d, want 200: %.200s", status, body)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Degraded {
		t.Fatal("chaos answer not flagged degraded")
	}
	below := false
	for _, st := range env.Completeness {
		if st.SuccessRate < 1.0 {
			below = true
		}
	}
	if !below {
		t.Fatalf("no completeness fraction below 1 in %s", body)
	}
}

// TestDomainParamErrors pins the parameter-error paths.
func TestDomainParamErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Study: testStudyConfig()})
	status, _ := get(t, ts.URL+"/v1/domain")
	if status != http.StatusBadRequest {
		t.Fatalf("missing name -> %d, want 400", status)
	}
	status, body := get(t, ts.URL+"/v1/domain?name=missing.example")
	if status != http.StatusOK {
		t.Fatalf("unknown domain -> %d, want 200 (found=false)", status)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Found bool `json:"found"`
	}
	if err := json.Unmarshal(env.Data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Found {
		t.Fatal("unknown domain reported found")
	}
}

// TestReloadValidation: a bad reload request must not bump the epoch.
func TestReloadValidation(t *testing.T) {
	srv, ts := newTestServer(t, Config{Study: testStudyConfig()})
	for _, q := range []string{"seed=abc", "domains=-5", "chaos=no-such-scenario"} {
		resp, err := http.Post(ts.URL+"/admin/reload?"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("reload?%s -> %d, want 400", q, resp.StatusCode)
		}
	}
	if srv.Epoch() != 1 {
		t.Fatalf("failed reloads bumped epoch to %d", srv.Epoch())
	}
}
