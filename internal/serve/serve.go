// Package serve implements cloudscoped: an HTTP daemon answering the
// study's questions — deployment patterns, region/zone usage,
// per-domain identification and latency, outage what-ifs — from one
// shared immutable Study per world epoch.
//
// Architecture:
//
//   - One epochState holds the epoch number, the Study, and the
//     result cache. The server swaps the whole state atomically on
//     /admin/reload, so a bumped epoch discards the old cache by
//     construction and a request always answers from exactly one
//     epoch (the one it captured at admission).
//   - The cache keys on (endpoint, sorted params); the epoch is
//     implicit in which state owns the map. Only 200 responses are
//     cached, and a build aborted by cancellation leaves the slot
//     empty for the next request to retry (single-flight per key).
//   - Admission control: a global bounded queue (429 when full — the
//     client should back off) and a per-endpoint concurrency limit
//     (503 when the wait exceeds the queue timeout — the server is
//     saturated). Cancelled waiters abort stage compute through the
//     Study's *Context accessors.
//   - Telemetry: the serve.* registry (requests, rejections, cache
//     hits, latency histograms) exports on /metrics next to the
//     study's own registry; under chaos every answer carries its
//     Completeness fractions (degraded-but-honest).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cloudscope"
	"cloudscope/api"
	"cloudscope/internal/chaos"
	"cloudscope/internal/telemetry"
)

// Config parameterizes the daemon.
type Config struct {
	// Study is the world served at epoch 1. Validate before use.
	Study cloudscope.Config
	// MaxQueue bounds requests in the system (waiting + executing);
	// excess requests get 429 immediately. Default 256.
	MaxQueue int
	// QueueTimeout bounds how long an admitted request may wait for an
	// endpoint slot before 503. Default 5s.
	QueueTimeout time.Duration
	// EndpointConcurrency bounds concurrently executing requests per
	// endpoint. Default 4 — stage builds fan out internally, so a few
	// concurrent builds saturate the CPU; cached answers are so cheap
	// the limit never binds on them.
	EndpointConcurrency int
	// RequestSpans records a serve/<endpoint> span per request in the
	// serve tracer. Off by default: spans accumulate memory for the
	// daemon's lifetime, which a long-running server cannot afford.
	RequestSpans bool
}

func (c Config) withDefaults() Config {
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.EndpointConcurrency == 0 {
		c.EndpointConcurrency = 4
	}
	return c
}

// cacheEntry is one memoized answer. done guards body/status; the
// mutex single-flights concurrent builders of the same key.
type cacheEntry struct {
	mu     sync.Mutex
	done   bool
	status int
	body   []byte
}

// epochState is everything tied to one world generation. Immutable
// after swap-in except the cache, which only grows.
type epochState struct {
	epoch int64
	study *cloudscope.Study

	mu    sync.Mutex
	cache map[string]*cacheEntry
}

func (st *epochState) entry(key string) *cacheEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.cache[key]
	if e == nil {
		e = &cacheEntry{}
		st.cache[key] = e
	}
	return e
}

// Server is the cloudscoped daemon. Create with New, serve with
// (net/http).Server{Handler: s}.
type Server struct {
	cfg Config
	tel *telemetry.Telemetry

	state atomic.Pointer[epochState]
	// reloadMu serializes /admin/reload; queries never take it.
	reloadMu sync.Mutex

	// inSystem counts requests between admission and response;
	// inSystemMax ratchets its high-water mark (exported as a gauge and
	// asserted by the bounded-queue test).
	inSystem    atomic.Int64
	inSystemMax atomic.Int64

	// sems holds one buffered-channel semaphore per endpoint.
	sems map[string]chan struct{}

	mux *http.ServeMux
}

// New builds the daemon around cfg.Study at epoch 1.
func New(cfg Config) (*Server, error) {
	if err := cfg.Study.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		tel:  telemetry.New(),
		sems: map[string]chan struct{}{},
		mux:  http.NewServeMux(),
	}
	s.state.Store(&epochState{
		epoch: 1,
		study: cloudscope.NewStudy(cfg.Study),
		cache: map[string]*cacheEntry{},
	})
	s.tel.Registry().Gauge("serve.epoch").Set(1)

	for _, ep := range endpoints {
		ep := ep
		s.sems[ep.name] = make(chan struct{}, cfg.EndpointConcurrency)
		s.mux.HandleFunc("/v1/"+ep.name, func(w http.ResponseWriter, r *http.Request) {
			s.serveQuery(w, r, ep)
		})
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/admin/reload", s.handleReload)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Epoch returns the currently served world epoch.
func (s *Server) Epoch() int64 { return s.state.Load().epoch }

// Telemetry exposes the serve-side registry (for tests and cloudbench).
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// MaxInSystem returns the high-water mark of concurrently admitted
// requests — the bounded-queue invariant is MaxInSystem <= MaxQueue.
func (s *Server) MaxInSystem() int64 { return s.inSystemMax.Load() }

// Warm pre-builds the current epoch's world and discovery dataset so
// the first query doesn't pay for them.
func (s *Server) Warm(ctx context.Context) error {
	_, err := s.state.Load().study.DatasetContext(ctx)
	return err
}

// httpError carries a status through the handler plumbing.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// endpoint is one /v1/* route: a name and a payload builder.
type endpoint struct {
	name  string
	build func(ctx context.Context, study *cloudscope.Study, q url.Values) (any, error)
}

var endpoints = []endpoint{
	{"patterns", func(ctx context.Context, st *cloudscope.Study, _ url.Values) (any, error) {
		return api.Patterns(ctx, st)
	}},
	{"regions", func(ctx context.Context, st *cloudscope.Study, _ url.Values) (any, error) {
		return api.Regions(ctx, st)
	}},
	{"zones", func(ctx context.Context, st *cloudscope.Study, _ url.Values) (any, error) {
		return api.Zones(ctx, st)
	}},
	{"domain", func(ctx context.Context, st *cloudscope.Study, q url.Values) (any, error) {
		name := q.Get("name")
		if name == "" {
			return nil, &httpError{http.StatusBadRequest, "missing required parameter: name"}
		}
		return api.Domain(ctx, st, name)
	}},
	{"wanperf", func(ctx context.Context, st *cloudscope.Study, _ url.Values) (any, error) {
		return api.WANPerf(ctx, st)
	}},
	{"outage", func(ctx context.Context, st *cloudscope.Study, q url.Values) (any, error) {
		return api.Outage(ctx, st, q.Get("region"))
	}},
	{"completeness", func(_ context.Context, st *cloudscope.Study, _ url.Values) (any, error) {
		return api.CompletenessReport(st), nil
	}},
}

// cacheKey canonicalizes the query so parameter order cannot split the
// cache.
func cacheKey(name string, q url.Values) string {
	if len(q) == 0 {
		return name
	}
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	key := name
	for _, k := range keys {
		vs := append([]string(nil), q[k]...)
		sort.Strings(vs)
		for _, v := range vs {
			key += "&" + k + "=" + v
		}
	}
	return key
}

// serveQuery is the admission + cache + build pipeline every /v1/*
// request runs through.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, ep endpoint) {
	reg := s.tel.Registry()
	reg.Counter("serve.requests").Inc()
	reg.Counter("serve.requests." + ep.name).Inc()

	// Global bounded queue: cap on requests in the system. Admission is
	// a CAS loop so the count can never exceed MaxQueue, even
	// transiently — the high-water mark is an invariant, not a hint.
	var n int64
	for {
		cur := s.inSystem.Load()
		if cur >= int64(s.cfg.MaxQueue) {
			reg.Counter("serve.rejected_429").Inc()
			writeError(w, http.StatusTooManyRequests, "server queue full; retry with backoff")
			return
		}
		if s.inSystem.CompareAndSwap(cur, cur+1) {
			n = cur + 1
			break
		}
	}
	defer s.inSystem.Add(-1)
	for {
		max := s.inSystemMax.Load()
		if n <= max || s.inSystemMax.CompareAndSwap(max, n) {
			break
		}
	}

	// Per-endpoint concurrency slot, bounded by the queue timeout and
	// the client's own patience.
	sem := s.sems[ep.name]
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case sem <- struct{}{}:
		defer func() { <-sem }()
	case <-timer.C:
		reg.Counter("serve.rejected_503").Inc()
		writeError(w, http.StatusServiceUnavailable, "endpoint saturated; retry later")
		return
	case <-r.Context().Done():
		reg.Counter("serve.rejected_503").Inc()
		writeError(w, http.StatusServiceUnavailable, "client went away while queued")
		return
	}

	reg.Gauge("serve.inflight").Add(1)
	defer reg.Gauge("serve.inflight").Add(-1)

	var sp *telemetry.Span
	if s.cfg.RequestSpans {
		sp = s.tel.StartSpan("serve/" + ep.name)
		defer sp.End()
	}

	// The request answers from exactly the epoch it captured here; a
	// concurrent reload swaps the pointer for *later* requests.
	st := s.state.Load()
	start := time.Now()
	status, body := s.answer(r.Context(), st, ep, r.URL.Query())
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	reg.Histogram("serve.latency_ms", latencyBounds).Observe(ms)
	reg.Histogram("serve.latency_ms."+ep.name, latencyBounds).Observe(ms)
	if status != http.StatusOK {
		reg.Counter("serve.errors").Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

var latencyBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// answer resolves one query against one epoch, through its cache.
func (s *Server) answer(ctx context.Context, st *epochState, ep endpoint, q url.Values) (int, []byte) {
	reg := s.tel.Registry()
	e := st.entry(cacheKey(ep.name, q))
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		reg.Counter("serve.cache_hits").Inc()
		return e.status, e.body
	}
	reg.Counter("serve.cache_misses").Inc()

	data, err := ep.build(ctx, st.study, q)
	if err != nil {
		if he, ok := err.(*httpError); ok {
			status, body := he.status, errorBody(he.status, he.msg)
			// Parameter errors are deterministic for the key: cache them
			// too so repeat offenders stay cheap.
			e.done, e.status, e.body = true, status, body
			return status, body
		}
		if ctx.Err() != nil {
			// Cancelled mid-build: leave the slot empty so the next
			// request retries, and tell this client it was them.
			return 499, errorBody(499, "request cancelled during compute")
		}
		return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err.Error())
	}
	env := api.NewEnvelope(ep.name, st.epoch, st.study, data)
	body, err := json.Marshal(env)
	if err != nil {
		return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err.Error())
	}
	e.done, e.status, e.body = true, http.StatusOK, body
	return http.StatusOK, body
}

func errorBody(status int, msg string) []byte {
	b, _ := json.Marshal(map[string]any{"error": msg, "status": status})
	return b
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(errorBody(status, msg))
}

// handleHealthz reports liveness and the current epoch.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.state.Load()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ok":true,"epoch":%d,"seed":%d,"domains":%d}`+"\n",
		st.epoch, st.study.Cfg.Seed, st.study.Cfg.Domains)
}

// handleMetrics exports the serve registry and the current study's
// telemetry as one JSON document.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.PublishQueueGauge()
	st := s.state.Load()
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"serve":`))
	if err := s.tel.WriteJSON(w); err != nil {
		return
	}
	w.Write([]byte(`,"study":`))
	if tel := st.study.Telemetry(); tel != nil {
		if err := tel.WriteJSON(w); err != nil {
			return
		}
	} else {
		w.Write([]byte("null"))
	}
	w.Write([]byte("}\n"))
}

// handleReload swaps in a new world epoch. POST with optional seed=,
// domains=, chaos= (a library scenario name; "none" clears); omitted
// parameters keep the current values. The response reports the new
// epoch; requests admitted after the swap answer from it.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "reload requires POST")
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	cur := s.state.Load()
	cfg := cur.study.Cfg
	q := r.URL.Query()
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return
		}
		cfg.Seed = seed
	}
	if v := q.Get("domains"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad domains: "+err.Error())
			return
		}
		cfg.Domains = n
	}
	if v := q.Get("chaos"); v != "" {
		if v == "none" {
			cfg.Chaos = nil
		} else {
			sc, err := chaos.Load(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad chaos scenario: "+err.Error())
				return
			}
			cfg.Chaos = sc
		}
	}
	if err := cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	next := &epochState{
		epoch: cur.epoch + 1,
		study: cloudscope.NewStudy(cfg),
		cache: map[string]*cacheEntry{},
	}
	s.state.Store(next)
	reg := s.tel.Registry()
	reg.Counter("serve.reloads").Inc()
	reg.Gauge("serve.epoch").Set(next.epoch)

	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ok":true,"epoch":%d,"seed":%d,"domains":%d}`+"\n", next.epoch, cfg.Seed, cfg.Domains)
}

// PublishQueueGauge copies the admission high-water mark into the
// registry; called before metrics snapshots so the gauge is current.
func (s *Server) PublishQueueGauge() {
	s.tel.Registry().Gauge("serve.in_system_max").Set(s.inSystemMax.Load())
}
