// Package bench is cloudscope's perf-trajectory harness: it runs a
// standardized benchmark matrix over the pipeline's heaviest stages
// (world synthesis, DNS discovery, border-capture generation and
// analysis) across world sizes and worker counts, records the rates
// into a schema-versioned snapshot, and compares snapshots across
// commits so scale wins — and regressions — are proven by numbers in
// the repository instead of anecdotes in commit messages.
//
// The committed BENCH_<date>.json files at the repo root are this
// package's output; cmd/cloudbench is the CLI over it.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// Schema is the snapshot format version. Bump it when Metric or
// Snapshot fields change incompatibly; Compare refuses mismatched
// schemas rather than reporting nonsense deltas.
const Schema = 1

// Direction says which way a metric should move.
const (
	Higher = "higher" // throughput-style: bigger is better
	Lower  = "lower"  // cost-style: smaller is better
)

// Metric is one measured value of the matrix, e.g.
// "capture_gen_mb_per_s/world=10000/workers=4".
type Metric struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
	Better string  `json:"better"`
}

// Host describes the machine a snapshot was taken on — context for a
// human comparing numbers, never part of metric identity.
type Host struct {
	Go         string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CurrentHost captures the running machine.
func CurrentHost() Host {
	return Host{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Params records the matrix a snapshot ran, for provenance.
type Params struct {
	Sizes         []int    `json:"sizes"`
	StreamSizes   []int    `json:"stream_sizes,omitempty"`
	Workers       []string `json:"workers"`
	Reps          int      `json:"reps"`
	Seed          int64    `json:"seed"`
	Vantages      int      `json:"vantages"`
	DiscoveryMax  int      `json:"discovery_max"`
	Chaos         string   `json:"chaos,omitempty"`
	CaptureChaos  string   `json:"capture_chaos,omitempty"`
	Serve         bool     `json:"serve,omitempty"`
	ServeRequests int      `json:"serve_requests,omitempty"`
}

// Snapshot is one benchmark run: the full matrix's metrics, sorted by
// name, plus the context needed to interpret them later.
type Snapshot struct {
	Schema    int      `json:"schema"`
	CreatedAt string   `json:"created_at"` // RFC3339; caller-supplied
	Host      Host     `json:"host"`
	Params    Params   `json:"params"`
	Metrics   []Metric `json:"metrics"`
}

// Metric returns the named metric, if present.
func (s *Snapshot) Metric(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// sortMetrics orders metrics by name so the JSON bytes are a pure
// function of the measured values.
func (s *Snapshot) sortMetrics() {
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
}

// WriteTo writes the snapshot as indented JSON, metrics sorted.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	s.sortMetrics()
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// WriteFile writes the snapshot to path.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a snapshot and validates its schema.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("bench: decoding snapshot: %w", err)
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("bench: snapshot schema %d, this binary speaks %d", s.Schema, Schema)
	}
	s.sortMetrics()
	return &s, nil
}

// ReadFile reads a snapshot from path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Delta is one metric's old-vs-new movement.
type Delta struct {
	Name     string
	Unit     string
	Better   string
	Old, New float64
	// Pct is the signed relative change of New vs Old in percent;
	// positive means the value grew.
	Pct float64
	// Regressed/Improved report whether the move crossed the
	// comparison threshold in the worse/better direction.
	Regressed bool
	Improved  bool
}

// Comparison is the metric-by-metric delta of two snapshots.
type Comparison struct {
	ThresholdPct float64
	Deltas       []Delta  // metrics present in both, sorted by name
	OnlyOld      []string // metrics that disappeared
	OnlyNew      []string // metrics that appeared
}

// Compare matches old and new snapshots metric-by-metric. A move
// larger than thresholdPct percent in a metric's worse direction is a
// regression; in the better direction, an improvement.
func Compare(oldSnap, newSnap *Snapshot, thresholdPct float64) *Comparison {
	c := &Comparison{ThresholdPct: thresholdPct}
	oldBy := map[string]Metric{}
	for _, m := range oldSnap.Metrics {
		oldBy[m.Name] = m
	}
	seen := map[string]bool{}
	for _, n := range newSnap.Metrics {
		o, ok := oldBy[n.Name]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, n.Name)
			continue
		}
		seen[n.Name] = true
		d := Delta{Name: n.Name, Unit: n.Unit, Better: n.Better, Old: o.Value, New: n.Value}
		if o.Value != 0 {
			d.Pct = 100 * (n.Value - o.Value) / o.Value
			worse := d.Pct < -thresholdPct // value fell
			better := d.Pct > thresholdPct // value grew
			if n.Better == Lower {
				worse, better = better, worse
			}
			d.Regressed, d.Improved = worse, better
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, o := range oldSnap.Metrics {
		if !seen[o.Name] {
			if _, stillThere := oldBy[o.Name]; stillThere {
				if _, inNew := findMetric(newSnap, o.Name); !inNew {
					c.OnlyOld = append(c.OnlyOld, o.Name)
				}
			}
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool { return c.Deltas[i].Name < c.Deltas[j].Name })
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
	return c
}

func findMetric(s *Snapshot, name string) (Metric, bool) { return s.Metric(name) }

// Regressions returns the deltas that crossed the threshold in the
// worse direction.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Table renders the comparison as an aligned text table: one row per
// common metric, flagged ▼ for regressions and ▲ for improvements
// beyond the threshold.
func (c *Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-58s %12s %12s %8s\n", "metric", "old", "new", "delta")
	for _, d := range c.Deltas {
		flag := ""
		switch {
		case d.Regressed:
			flag = "  ▼ REGRESSION"
		case d.Improved:
			flag = "  ▲ improved"
		}
		fmt.Fprintf(&b, "%-58s %12.3f %12.3f %+7.1f%%%s\n", d.Name, d.Old, d.New, d.Pct, flag)
	}
	// A smoke run compares a small matrix against a full snapshot;
	// listing every absent cell would drown the deltas, so long lists
	// collapse to a count.
	const listCap = 5
	if len(c.OnlyOld) <= listCap {
		for _, name := range c.OnlyOld {
			fmt.Fprintf(&b, "%-58s %12s %12s   (metric gone)\n", name, "-", "-")
		}
	} else {
		fmt.Fprintf(&b, "(%d metrics in old snapshot only — smaller matrix this run)\n", len(c.OnlyOld))
	}
	if len(c.OnlyNew) <= listCap {
		for _, name := range c.OnlyNew {
			fmt.Fprintf(&b, "%-58s %12s %12s   (new metric)\n", name, "-", "-")
		}
	} else {
		fmt.Fprintf(&b, "(%d new metrics not in old snapshot)\n", len(c.OnlyNew))
	}
	regs := c.Regressions()
	if len(regs) > 0 {
		fmt.Fprintf(&b, "\n%d metric(s) regressed more than %.0f%%\n", len(regs), c.ThresholdPct)
	} else if len(c.Deltas) > 0 {
		fmt.Fprintf(&b, "\nno regressions beyond %.0f%% across %d common metric(s)\n", c.ThresholdPct, len(c.Deltas))
	} else {
		b.WriteString("\nno common metrics to compare\n")
	}
	return b.String()
}
