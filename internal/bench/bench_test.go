package bench

import (
	"bytes"
	"strings"
	"testing"
)

func snapWith(metrics ...Metric) *Snapshot {
	return &Snapshot{Schema: Schema, CreatedAt: "2026-08-08T00:00:00Z", Host: CurrentHost(), Metrics: metrics}
}

// TestCompareDetectsSyntheticRegression is the harness's reason to
// exist: a 10%+ move in the worse direction must be flagged, for both
// metric polarities.
func TestCompareDetectsSyntheticRegression(t *testing.T) {
	oldSnap := snapWith(
		Metric{Name: "capture_gen_mb_per_s/world=1000/workers=1", Value: 100, Unit: "MB/s", Better: Higher},
		Metric{Name: "peak_heap_mb/world=1000/workers=1", Value: 50, Unit: "MB", Better: Lower},
		Metric{Name: "discovery_domains_per_s/world=1000/workers=1", Value: 300, Unit: "domains/s", Better: Higher},
		Metric{Name: "capture_bytes_per_packet/world=1000/workers=1", Value: 400, Unit: "B/pkt", Better: Lower},
		Metric{Name: "peak_rss_vs_world_size/world=100000", Value: 80, Unit: "MB", Better: Lower},
	)
	newSnap := snapWith(
		// 11% slower: regression for a higher-better metric.
		Metric{Name: "capture_gen_mb_per_s/world=1000/workers=1", Value: 89, Unit: "MB/s", Better: Higher},
		// 20% more heap: regression for a lower-better metric.
		Metric{Name: "peak_heap_mb/world=1000/workers=1", Value: 60, Unit: "MB", Better: Lower},
		// 15% faster: improvement, not a regression.
		Metric{Name: "discovery_domains_per_s/world=1000/workers=1", Value: 345, Unit: "domains/s", Better: Higher},
		// 25% fatter records: regression in the new wire-density cell.
		Metric{Name: "capture_bytes_per_packet/world=1000/workers=1", Value: 500, Unit: "B/pkt", Better: Lower},
		// 50% more streaming peak heap: the bounded-memory ceiling broke.
		Metric{Name: "peak_rss_vs_world_size/world=100000", Value: 120, Unit: "MB", Better: Lower},
	)
	c := Compare(oldSnap, newSnap, 10)
	regs := c.Regressions()
	if len(regs) != 4 {
		t.Fatalf("got %d regressions, want 4: %+v", len(regs), regs)
	}
	names := map[string]bool{}
	for _, d := range regs {
		names[d.Name] = true
	}
	if !names["capture_gen_mb_per_s/world=1000/workers=1"] || !names["peak_heap_mb/world=1000/workers=1"] ||
		!names["capture_bytes_per_packet/world=1000/workers=1"] || !names["peak_rss_vs_world_size/world=100000"] {
		t.Fatalf("wrong regressions flagged: %+v", regs)
	}
	var improved int
	for _, d := range c.Deltas {
		if d.Improved {
			improved++
			if d.Name != "discovery_domains_per_s/world=1000/workers=1" {
				t.Fatalf("unexpected improvement flag on %s", d.Name)
			}
		}
	}
	if improved != 1 {
		t.Fatalf("got %d improvements, want 1", improved)
	}
	table := c.Table()
	if !strings.Contains(table, "REGRESSION") || !strings.Contains(table, "4 metric(s) regressed") {
		t.Fatalf("table missing regression summary:\n%s", table)
	}
}

func TestCompareWithinThresholdIsQuiet(t *testing.T) {
	oldSnap := snapWith(Metric{Name: "m", Value: 100, Unit: "MB/s", Better: Higher})
	newSnap := snapWith(Metric{Name: "m", Value: 95, Unit: "MB/s", Better: Higher}) // -5% < threshold
	c := Compare(oldSnap, newSnap, 10)
	if len(c.Regressions()) != 0 {
		t.Fatalf("5%% move flagged as regression: %+v", c.Regressions())
	}
	if c.Deltas[0].Improved {
		t.Fatal("5% move flagged as improvement")
	}
	if !strings.Contains(c.Table(), "no regressions beyond 10%") {
		t.Fatalf("table missing all-clear line:\n%s", c.Table())
	}
}

func TestCompareReportsAppearedAndVanishedMetrics(t *testing.T) {
	oldSnap := snapWith(
		Metric{Name: "common", Value: 1, Better: Higher},
		Metric{Name: "vanished", Value: 2, Better: Higher},
	)
	newSnap := snapWith(
		Metric{Name: "appeared", Value: 3, Better: Higher},
		Metric{Name: "common", Value: 1, Better: Higher},
	)
	c := Compare(oldSnap, newSnap, 10)
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "vanished" {
		t.Fatalf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "appeared" {
		t.Fatalf("OnlyNew = %v", c.OnlyNew)
	}
	if len(c.Deltas) != 1 || c.Deltas[0].Name != "common" {
		t.Fatalf("Deltas = %+v", c.Deltas)
	}
}

func TestCompareZeroBaselineNeverRegresses(t *testing.T) {
	oldSnap := snapWith(Metric{Name: "m", Value: 0, Better: Higher})
	newSnap := snapWith(Metric{Name: "m", Value: 5, Better: Higher})
	c := Compare(oldSnap, newSnap, 10)
	if c.Deltas[0].Regressed || c.Deltas[0].Improved {
		t.Fatalf("zero baseline produced a verdict: %+v", c.Deltas[0])
	}
}

func TestSnapshotRoundTripSortsAndValidates(t *testing.T) {
	s := snapWith(
		Metric{Name: "zzz", Value: 1, Unit: "u", Better: Higher},
		Metric{Name: "aaa", Value: 2, Unit: "u", Better: Lower},
	)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics[0].Name != "aaa" || got.Metrics[1].Name != "zzz" {
		t.Fatalf("metrics not sorted: %+v", got.Metrics)
	}
	if m, ok := got.Metric("aaa"); !ok || m.Value != 2 || m.Better != Lower {
		t.Fatalf("Metric lookup = %+v, %v", m, ok)
	}

	// Writing twice must be byte-identical — snapshots are committed
	// files, and diff noise would bury real movement.
	var buf2 bytes.Buffer
	if _, err := s.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteTo is not deterministic")
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	_, err := Read(strings.NewReader(`{"schema": 99, "metrics": []}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want schema mismatch", err)
	}
}

func TestWorkerLabel(t *testing.T) {
	if got := WorkerLabel(0); got != "max" {
		t.Fatalf("WorkerLabel(0) = %q", got)
	}
	if got := WorkerLabel(4); got != "4" {
		t.Fatalf("WorkerLabel(4) = %q", got)
	}
}

// TestRunTinyMatrix exercises the real measurement path end to end on
// a deliberately tiny world: every expected metric shows up, rates are
// finite and positive, and the snapshot survives a round trip.
func TestRunTinyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (tiny) study")
	}
	var logBuf bytes.Buffer
	snap, err := Run(MatrixConfig{
		Sizes:        []int{300},
		Workers:      []int{1},
		Vantages:     2,
		DiscoveryMax: 300,
		CaptureChaos: "lossy-capture",
		StreamSizes:  []int{300},
		StreamChunk:  64,
		Log:          &logBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"worldgen_domains_per_s/world=300/workers=1",
		"capture_gen_mb_per_s/world=300/workers=1",
		"capture_gen_allocs_per_packet/world=300/workers=1",
		"capture_analyze_mb_per_s/world=300/workers=1",
		"capture_analyze_allocs_per_packet/world=300/workers=1",
		"capture_bytes_per_packet/world=300/workers=1",
		"discovery_domains_per_s/world=300/workers=1",
		"peak_heap_mb/world=300/workers=1",
		"capture_chaos_gen_mb_per_s/world=300",
		"capture_chaos_analyze_mb_per_s/world=300",
		"capture_chaos_overhead_ratio/world=300",
		"peak_rss_vs_world_size/world=300",
	}
	for _, name := range want {
		m, ok := snap.Metric(name)
		if !ok {
			t.Fatalf("metric %s missing; have %+v", name, snap.Metrics)
		}
		if m.Value <= 0 || m.Value != m.Value /* NaN */ {
			t.Fatalf("metric %s has non-positive value %v", name, m.Value)
		}
	}
	if len(snap.Metrics) != len(want) {
		t.Fatalf("got %d metrics, want %d: %+v", len(snap.Metrics), len(want), snap.Metrics)
	}
	if !strings.Contains(logBuf.String(), "world=300 workers=1 done") {
		t.Fatalf("progress log missing: %q", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "stream world=300 done") {
		t.Fatalf("streaming-leg progress missing: %q", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "world=300 capture-chaos leg done") {
		t.Fatalf("capture-chaos-leg progress missing: %q", logBuf.String())
	}
	if snap.Params.CaptureChaos != "lossy-capture" {
		t.Fatalf("Params.CaptureChaos = %q", snap.Params.CaptureChaos)
	}
}

// TestStreamingPeakHeapBudget is the bounded-memory claim as a hard
// number: streaming a 100K-domain world chunk-by-chunk must fit a
// fixed heap budget far below the in-memory build (the committed
// snapshots put the in-memory 100K cell at ~1.2 GB; the streamed
// build measures ~50 MB). The budget leaves ~4x headroom for GC
// timing noise — blowing it means chunks are no longer being released.
func TestStreamingPeakHeapBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a 100K-domain world")
	}
	const budgetMB = 200
	cfg := MatrixConfig{StreamSizes: []int{100000}}
	cfg.fill()
	c := &cell{}
	if err := runStreamCell(cfg, 100000, c); err != nil {
		t.Fatal(err)
	}
	m, ok := c.vals["peak_rss_vs_world_size/world=100000"]
	if !ok {
		t.Fatalf("peak metric missing: %+v", c.vals)
	}
	if m.Value <= 0 || m.Value > budgetMB {
		t.Fatalf("streaming 100K world peaked at %.1f MB, budget %d MB", m.Value, budgetMB)
	}
}
