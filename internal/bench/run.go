package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"time"

	"cloudscope"
	"cloudscope/internal/capture"
	"cloudscope/internal/chaos"
	"cloudscope/internal/deploy"
	"cloudscope/internal/parallel"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/telemetry/runtimeprof"
)

// MatrixConfig parameterizes a benchmark matrix run.
type MatrixConfig struct {
	// Sizes are the world sizes (ranked-list domain counts) to sweep.
	Sizes []int
	// Workers are the worker bounds to sweep; 0 means GOMAXPROCS and is
	// reported as "max" so snapshots from different machines share
	// metric names.
	Workers []int
	// Reps runs each cell this many times and keeps the best value per
	// metric (fastest rate, lowest cost). Default 1.
	Reps int
	// Seed drives the generated worlds. Default 1.
	Seed int64
	// Vantages is the discovery vantage count. Default 10 — enough to
	// exercise the distributed-resolution merge without making the
	// discovery leg dominate the matrix.
	Vantages int
	// DiscoveryMax caps the world size for the discovery and chaos legs
	// (the crawl is quadratic-ish in practice and would dwarf the rest
	// of the matrix at the largest sizes). Default 10000.
	DiscoveryMax int
	// Chaos names a fault scenario for the chaos-overhead leg; empty
	// skips the leg.
	Chaos string
	// CaptureChaos names a fault scenario for the capture-fault leg: the
	// capture data path (pcap generation + analysis) timed under
	// capture-layer fault injection against a clean run of the same
	// world. Empty skips the leg.
	CaptureChaos string
	// StreamSizes are world sizes for the streaming world-build leg:
	// each world is generated chunk-by-chunk via deploy.GenerateStream
	// with chunks released as soon as they are counted, and the cell
	// records peak heap as peak_rss_vs_world_size/world=N. Flat values
	// across sizes — 100K vs 1M in the committed snapshots — are the
	// proof the streaming data path runs in bounded memory. Empty skips
	// the leg.
	StreamSizes []int
	// StreamChunk is the streaming leg's chunk size. Default 4096.
	StreamChunk int
	// Serve enables the query-daemon leg: a cloudscoped server over
	// loopback HTTP, warmed, then driven closed-loop with a seeded mix.
	// Gated to sizes <= DiscoveryMax (the zones endpoint needs the
	// discovery crawl).
	Serve bool
	// ServeRequests is the serve leg's request budget per rep. Default
	// 2000.
	ServeRequests int
	// Log receives one progress line per cell; nil is quiet.
	Log io.Writer
}

func (c *MatrixConfig) fill() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1000, 10000, 100000}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 4, 0}
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Vantages <= 0 {
		c.Vantages = 10
	}
	if c.DiscoveryMax == 0 {
		c.DiscoveryMax = 10000
	}
	if c.StreamChunk <= 0 {
		c.StreamChunk = 4096
	}
	if c.ServeRequests <= 0 {
		c.ServeRequests = 2000
	}
}

// WorkerLabel renders a worker bound for metric names: "max" for 0
// (GOMAXPROCS) so names stay machine-independent, the number otherwise.
func WorkerLabel(w int) string {
	if w == 0 {
		return "max"
	}
	return fmt.Sprintf("%d", w)
}

// flowsFor sizes the border capture to the world: enough flows that
// the generator and analyzer run long enough to time, scaled so the
// 100K cell stays in seconds.
func flowsFor(size int) int {
	f := size
	if f < 2000 {
		f = 2000
	}
	if f > 60000 {
		f = 60000
	}
	return f
}

// cell accumulates one (size, workers) cell's metrics, keeping the
// best value per metric across reps.
type cell struct {
	vals map[string]Metric
}

func (c *cell) keep(name string, v float64, unit, better string) {
	if c.vals == nil {
		c.vals = map[string]Metric{}
	}
	old, ok := c.vals[name]
	if !ok || (better == Higher && v > old.Value) || (better == Lower && v < old.Value) {
		c.vals[name] = Metric{Name: name, Value: v, Unit: unit, Better: better}
	}
}

// Run executes the matrix and returns the snapshot (CreatedAt is left
// for the caller to stamp).
func Run(cfg MatrixConfig) (*Snapshot, error) {
	cfg.fill()
	var scenario *chaos.Scenario
	if cfg.Chaos != "" {
		var err error
		scenario, err = chaos.Load(cfg.Chaos)
		if err != nil {
			return nil, err
		}
	}
	var capScenario *chaos.Scenario
	if cfg.CaptureChaos != "" {
		var err error
		capScenario, err = chaos.Load(cfg.CaptureChaos)
		if err != nil {
			return nil, err
		}
	}

	snap := &Snapshot{Schema: Schema, Host: CurrentHost()}
	snap.Params = Params{
		Reps: cfg.Reps, Seed: cfg.Seed, Vantages: cfg.Vantages,
		DiscoveryMax: cfg.DiscoveryMax, Chaos: cfg.Chaos,
		CaptureChaos: cfg.CaptureChaos,
		Serve:        cfg.Serve,
	}
	if cfg.Serve {
		snap.Params.ServeRequests = cfg.ServeRequests
	}
	snap.Params.Sizes = append(snap.Params.Sizes, cfg.Sizes...)
	snap.Params.StreamSizes = append(snap.Params.StreamSizes, cfg.StreamSizes...)
	for _, w := range cfg.Workers {
		snap.Params.Workers = append(snap.Params.Workers, WorkerLabel(w))
	}

	chaosWorkers := cfg.Workers[len(cfg.Workers)-1]
	for _, size := range cfg.Sizes {
		// cleanDataset is the best clean discovery time at this size
		// under the chaos leg's worker setting — the like-for-like
		// baseline the overhead ratio divides by.
		var cleanDataset time.Duration
		for _, w := range cfg.Workers {
			c := &cell{}
			for rep := 0; rep < cfg.Reps; rep++ {
				dt, err := runCell(cfg, size, w, c)
				if err != nil {
					return nil, err
				}
				if w == chaosWorkers && dt > 0 && (cleanDataset == 0 || dt < cleanDataset) {
					cleanDataset = dt
				}
			}
			for _, m := range c.vals {
				snap.Metrics = append(snap.Metrics, m)
			}
			logf(cfg.Log, "bench: world=%d workers=%s done", size, WorkerLabel(w))
		}
		if scenario != nil && size <= cfg.DiscoveryMax && cleanDataset > 0 {
			ratio, err := chaosOverhead(cfg, scenario, size, cleanDataset)
			if err != nil {
				return nil, err
			}
			snap.Metrics = append(snap.Metrics, Metric{
				Name:   fmt.Sprintf("chaos_overhead_ratio/world=%d", size),
				Value:  ratio,
				Unit:   "ratio",
				Better: Lower,
			})
			logf(cfg.Log, "bench: world=%d chaos leg done (%.2fx)", size, ratio)
		}
		if capScenario != nil {
			c := &cell{}
			ratio, err := captureChaosLeg(cfg, capScenario, size, c)
			if err != nil {
				return nil, err
			}
			for _, m := range c.vals {
				snap.Metrics = append(snap.Metrics, m)
			}
			logf(cfg.Log, "bench: world=%d capture-chaos leg done (%.2fx)", size, ratio)
		}
		if cfg.Serve && size <= cfg.DiscoveryMax {
			c := &cell{}
			for rep := 0; rep < cfg.Reps; rep++ {
				if err := serveLeg(cfg, size, c); err != nil {
					return nil, err
				}
			}
			for _, m := range c.vals {
				snap.Metrics = append(snap.Metrics, m)
			}
			logf(cfg.Log, "bench: world=%d serve leg done", size)
		}
	}
	for _, size := range cfg.StreamSizes {
		c := &cell{}
		for rep := 0; rep < cfg.Reps; rep++ {
			if err := runStreamCell(cfg, size, c); err != nil {
				return nil, err
			}
		}
		for _, m := range c.vals {
			snap.Metrics = append(snap.Metrics, m)
		}
		logf(cfg.Log, "bench: stream world=%d done", size)
	}
	return snap, nil
}

// runStreamCell measures the streaming world-build leg: generate the
// world chunk-by-chunk, releasing each chunk once counted, and record
// the peak heap the sweep ever needed. Unlike the main matrix there is
// no workers axis — the metric is a memory ceiling, not a rate, and
// one name per size keeps the trajectory across snapshots legible.
func runStreamCell(cfg MatrixConfig, size int, c *cell) error {
	// Drop the previous cells' dead heap first — the sampler ratchets
	// absolute HeapAlloc, and the claim here is the streaming build's
	// own footprint, not whatever the in-memory matrix left uncollected.
	// Two collections, not one: sync.Pool contents (the capture cells'
	// pooled packet blocks) survive a single GC in the victim cache.
	runtime.GC()
	runtime.GC()
	reg := telemetry.NewRegistry()
	sampler := runtimeprof.Start(reg, 10*time.Millisecond)

	dcfg := deploy.DefaultConfig().Scaled(size)
	dcfg.Seed = cfg.Seed
	ws := deploy.GenerateStream(dcfg, cfg.StreamChunk)
	n := 0
	for {
		chunk := ws.Next()
		if chunk == nil {
			break
		}
		n += len(chunk.Domains)
		ws.Release(chunk)
	}
	sampler.Stop()
	if n != size {
		return fmt.Errorf("bench: streaming leg generated %d domains, want %d", n, size)
	}
	peak := reg.Gauge("runtime.peak_heap_alloc_bytes").Value()
	c.keep(fmt.Sprintf("peak_rss_vs_world_size/world=%d", size), float64(peak)/1e6, "MB", Lower)
	return nil
}

// runCell measures one rep of one matrix cell, folding results into c.
// It returns the clean discovery wall time (0 when the discovery leg
// was skipped) so the chaos leg can use it as baseline.
func runCell(cfg MatrixConfig, size, w int, c *cell) (time.Duration, error) {
	suffix := fmt.Sprintf("/world=%d/workers=%s", size, WorkerLabel(w))

	// The sampler watches the whole cell on a private registry, so peak
	// heap covers world synthesis, discovery, and the capture legs.
	reg := telemetry.NewRegistry()
	sampler := runtimeprof.Start(reg, 10*time.Millisecond)

	study := cloudscope.NewStudy(cloudscope.Config{
		Seed:         cfg.Seed,
		Domains:      size,
		Vantages:     cfg.Vantages,
		CaptureFlows: flowsFor(size),
		Workers:      w,
		NoTelemetry:  true,
	})

	// World synthesis.
	t0 := time.Now()
	world := study.World()
	dt := time.Since(t0)
	c.keep("worldgen_domains_per_s"+suffix, rate(size, dt), "domains/s", Higher)

	// Capture generation: pcap MB/s and allocations per packet.
	var buf bytes.Buffer
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 = time.Now()
	if _, err := study.WriteCapture(&buf); err != nil {
		sampler.Stop()
		return 0, err
	}
	dt = time.Since(t0)
	runtime.ReadMemStats(&ms1)
	genAllocs := ms1.Mallocs - ms0.Mallocs
	mb := float64(buf.Len()) / 1e6
	c.keep("capture_gen_mb_per_s"+suffix, mb/secs(dt), "MB/s", Higher)

	// Capture analysis over the same bytes.
	runtime.ReadMemStats(&ms0)
	t0 = time.Now()
	an, err := capture.AnalyzePar(bytes.NewReader(buf.Bytes()), world.Ranges, parallel.Options{Workers: w})
	dt = time.Since(t0)
	if err != nil {
		sampler.Stop()
		return 0, err
	}
	runtime.ReadMemStats(&ms1)
	packets := an.NonIPv4 + an.UnknownIP + an.DecodeErrs
	for _, fr := range an.Flows {
		packets += fr.Packets
	}
	c.keep("capture_analyze_mb_per_s"+suffix, mb/secs(dt), "MB/s", Higher)
	if packets > 0 {
		c.keep("capture_gen_allocs_per_packet"+suffix, float64(genAllocs)/float64(packets), "allocs/pkt", Lower)
		c.keep("capture_analyze_allocs_per_packet"+suffix, float64(ms1.Mallocs-ms0.Mallocs)/float64(packets), "allocs/pkt", Lower)
		// Wire density of the pcap: creeping per-packet overhead (frame
		// padding, record bloat) shows up here before it moves MB/s.
		c.keep("capture_bytes_per_packet"+suffix, float64(buf.Len())/float64(packets), "B/pkt", Lower)
	}
	buf = bytes.Buffer{} // release the pcap before the discovery leg

	// Discovery, gated: the crawl dominates wall time at large sizes.
	var dsTime time.Duration
	if size <= cfg.DiscoveryMax {
		t0 = time.Now()
		study.Dataset()
		dsTime = time.Since(t0)
		c.keep("discovery_domains_per_s"+suffix, rate(size, dsTime), "domains/s", Higher)
	}

	sampler.Stop()
	peak := reg.Gauge("runtime.peak_heap_alloc_bytes").Value()
	c.keep("peak_heap_mb"+suffix, float64(peak)/1e6, "MB", Lower)
	return dsTime, nil
}

// captureChaosLeg times the capture data path — pcap generation plus
// flow analysis — under capture-layer fault injection against a clean
// run of the same world, folding faulted throughput and the wall-time
// overhead ratio into c. The capture-fault draws are per-flow hashes,
// so the leg measures the cost of the injection machinery and of the
// analyzer's partial-flow fallbacks, not a different workload.
func captureChaosLeg(cfg MatrixConfig, sc *chaos.Scenario, size int, c *cell) (float64, error) {
	w := cfg.Workers[len(cfg.Workers)-1]
	suffix := fmt.Sprintf("/world=%d", size)

	runOnce := func(faulted bool) (wall time.Duration, genMBs, anMBs float64, err error) {
		ccfg := cloudscope.Config{
			Seed:         cfg.Seed,
			Domains:      size,
			Vantages:     cfg.Vantages,
			CaptureFlows: flowsFor(size),
			Workers:      w,
			NoTelemetry:  true,
		}
		if faulted {
			ccfg.Chaos = sc
		}
		study := cloudscope.NewStudy(ccfg)
		world := study.World()
		var buf bytes.Buffer
		t0 := time.Now()
		if _, err := study.WriteCapture(&buf); err != nil {
			return 0, 0, 0, err
		}
		genDt := time.Since(t0)
		mb := float64(buf.Len()) / 1e6
		t0 = time.Now()
		_, err = capture.AnalyzePar(bytes.NewReader(buf.Bytes()), world.Ranges, parallel.Options{Workers: w})
		anDt := time.Since(t0)
		if err != nil {
			return 0, 0, 0, err
		}
		return genDt + anDt, mb / secs(genDt), mb / secs(anDt), nil
	}

	bestClean, bestFaulted := time.Duration(0), time.Duration(0)
	for rep := 0; rep < cfg.Reps; rep++ {
		clean, _, _, err := runOnce(false)
		if err != nil {
			return 0, err
		}
		faulted, genMBs, anMBs, err := runOnce(true)
		if err != nil {
			return 0, err
		}
		c.keep("capture_chaos_gen_mb_per_s"+suffix, genMBs, "MB/s", Higher)
		c.keep("capture_chaos_analyze_mb_per_s"+suffix, anMBs, "MB/s", Higher)
		if bestClean == 0 || clean < bestClean {
			bestClean = clean
		}
		if bestFaulted == 0 || faulted < bestFaulted {
			bestFaulted = faulted
		}
	}
	ratio := secs(bestFaulted) / secs(bestClean)
	c.keep("capture_chaos_overhead_ratio"+suffix, ratio, "ratio", Lower)
	return ratio, nil
}

// chaosOverhead times the discovery pipeline under the fault scenario
// (hardened path: retries, backoff, breakers) against the clean
// baseline and returns the wall-time ratio.
func chaosOverhead(cfg MatrixConfig, sc *chaos.Scenario, size int, clean time.Duration) (float64, error) {
	w := cfg.Workers[len(cfg.Workers)-1]
	best := 0.0
	for rep := 0; rep < cfg.Reps; rep++ {
		study := cloudscope.NewStudy(cloudscope.Config{
			Seed:         cfg.Seed,
			Domains:      size,
			Vantages:     cfg.Vantages,
			CaptureFlows: flowsFor(size),
			Workers:      w,
			NoTelemetry:  true,
			Chaos:        sc,
		})
		study.World()
		t0 := time.Now()
		study.Dataset()
		dt := time.Since(t0)
		ratio := secs(dt) / secs(clean)
		if rep == 0 || ratio < best {
			best = ratio
		}
	}
	return best, nil
}

func rate(n int, d time.Duration) float64 { return float64(n) / secs(d) }

// secs guards against a sub-resolution timer reading turning a rate
// into +Inf on very fast cells.
func secs(d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 1e-9
	}
	return s
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
