package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"cloudscope"
	"cloudscope/internal/load"
	"cloudscope/internal/serve"
)

// serveMix is the request mix the serve leg drives: the cacheable
// study endpoints weighted roughly like cmd/cloudload's default, minus
// wanperf (whose first build is a full WAN campaign and would turn the
// leg into a campaign benchmark).
const serveMix = "4:/v1/patterns,3:/v1/regions,2:/v1/zones,2:/v1/outage?region=ec2.us-east-1,1:/v1/completeness"

// serveLeg measures the query daemon end-to-end over loopback HTTP: a
// cloudscoped server on a random port, every mix endpoint warmed once
// (stage builds + cache fill), then a closed-loop seeded load run.
// Cells record sustained req/s, p50/p99 latency of the cached path,
// and the cache hit ratio.
func serveLeg(cfg MatrixConfig, size int, c *cell) error {
	w := cfg.Workers[len(cfg.Workers)-1]
	suffix := fmt.Sprintf("/world=%d", size)

	srv, err := serve.New(serve.Config{
		Study: cloudscope.Config{
			Seed:         cfg.Seed,
			Domains:      size,
			Vantages:     cfg.Vantages,
			CaptureFlows: flowsFor(size),
			Workers:      w,
		},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	mix, err := load.ParseMix(serveMix)
	if err != nil {
		return err
	}
	// Warm sequentially so the load run measures the cached hot path,
	// not one giant stage build racing 15 queued requests.
	client := &http.Client{Timeout: 10 * time.Minute}
	for _, m := range mix {
		resp, err := client.Get(base + m.Path)
		if err != nil {
			return fmt.Errorf("bench: warming %s: %w", m.Path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("bench: warming %s: status %d", m.Path, resp.StatusCode)
		}
	}

	res, err := load.Run(load.Config{
		BaseURL:     base,
		Mix:         mix,
		Requests:    cfg.ServeRequests,
		Concurrency: 16,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return err
	}
	if res.Errors > 0 {
		return fmt.Errorf("bench: serve leg at world=%d had %d request errors", size, res.Errors)
	}

	c.keep("serve_req_per_s"+suffix, res.Throughput, "req/s", Higher)
	c.keep("serve_p50_ms"+suffix, res.P50Ms, "ms", Lower)
	c.keep("serve_p99_ms"+suffix, res.P99Ms, "ms", Lower)
	reg := srv.Telemetry().Registry()
	hits := float64(reg.Counter("serve.cache_hits").Value())
	misses := float64(reg.Counter("serve.cache_misses").Value())
	if hits+misses > 0 {
		c.keep("serve_cache_hit_ratio"+suffix, hits/(hits+misses), "ratio", Higher)
	}
	return nil
}
