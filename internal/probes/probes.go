// Package probes bundles the study's hand tools — the dig, hping3,
// traceroute, whois, and HTTP-GET equivalents — behind one Prober that
// operates on the simulated Internet. The core pipeline uses the
// underlying packages directly; Prober is the interactive/scripting
// surface (cmd/probe, examples).
package probes

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudscope/internal/cloud"
	"cloudscope/internal/dnssrv"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/geo"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/simnet"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/wan"
	"cloudscope/internal/xrand"
)

// Prober is a measurement host on the simulated Internet.
type Prober struct {
	resolver *dnssrv.Resolver
	ranges   *ipranges.List
	ec2      *cloud.Cloud
	wan      *wan.Model
	vantage  geo.Vantage
	rng      *xrand.Rand
}

// Config wires a Prober to a world's components. WAN and EC2 are
// optional; tools needing them fail gracefully when absent.
type Config struct {
	Fabric   *simnet.Fabric
	Registry *dnssrv.Registry
	Ranges   *ipranges.List
	EC2      *cloud.Cloud
	WAN      *wan.Model
	// VantageIndex selects the PlanetLab vantage the prober runs from.
	VantageIndex int
	Seed         int64
	// Telemetry, when set, instruments the prober's resolver and WAN
	// model against the handle's registry. Instrument names are shared
	// (get-or-create), so passing a Study's handle aggregates with the
	// pipeline's own counters.
	Telemetry *telemetry.Telemetry
}

// New builds a Prober.
func New(cfg Config) *Prober {
	vantages := geo.PlanetLab(cfg.VantageIndex + 1)
	v := vantages[cfg.VantageIndex]
	src := netaddr.MustParseIP("195.113.0.0") + netaddr.IP(cfg.VantageIndex*251+9)
	p := &Prober{
		ranges:  cfg.Ranges,
		ec2:     cfg.EC2,
		wan:     cfg.WAN,
		vantage: v,
		rng:     xrand.SplitSeeded(cfg.Seed, "probes/"+v.ID),
	}
	if cfg.Fabric != nil && cfg.Registry != nil {
		p.resolver = dnssrv.NewResolver(cfg.Fabric, cfg.Registry, src)
		p.resolver.NoRecurse = true
	}
	if cfg.Telemetry != nil {
		reg := cfg.Telemetry.Registry()
		if p.resolver != nil {
			p.resolver.Metrics = dnssrv.NewResolverMetrics(reg)
		}
		if p.wan != nil {
			p.wan.SetMetrics(wan.NewMetrics(reg))
		}
	}
	return p
}

// DigAnswer is one resolved record with its provider classification.
type DigAnswer struct {
	Record   dnswire.RR
	Provider ipranges.Provider // "" when outside the published ranges
	Region   string
}

// Dig resolves a name and classifies every record against the published
// ranges — the study's basic unit of work.
func (p *Prober) Dig(name string) ([]DigAnswer, error) {
	if p.resolver == nil {
		return nil, fmt.Errorf("probes: no DNS fabric configured")
	}
	chain, err := p.resolver.LookupA(name)
	if err != nil {
		return nil, err
	}
	out := make([]DigAnswer, 0, len(chain))
	for _, rr := range chain {
		ans := DigAnswer{Record: rr}
		if rr.Type == dnswire.TypeA {
			if e, ok := p.ranges.Lookup(rr.IP); ok {
				ans.Provider, ans.Region = e.Provider, e.Region
			}
		}
		out = append(out, ans)
	}
	return out, nil
}

// DigNS resolves and classifies a domain's name servers.
func (p *Prober) DigNS(domain string) (map[string]string, error) {
	if p.resolver == nil {
		return nil, fmt.Errorf("probes: no DNS fabric configured")
	}
	names, err := p.resolver.LookupNS(domain)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, ns := range names {
		loc := "outside"
		if chain, err := p.resolver.LookupA(ns); err == nil {
			for _, rr := range chain {
				if rr.Type != dnswire.TypeA {
					continue
				}
				if e, ok := p.ranges.Lookup(rr.IP); ok {
					loc = string(e.Provider)
				}
			}
		}
		out[ns] = loc
	}
	return out, nil
}

// TCPPing measures n RTT samples to a cloud instance's public IP, like
// hping3. It requires the EC2 model (the probe runs from inside the
// region, as the paper's cartography probes did).
func (p *Prober) TCPPing(from *cloud.Instance, target netaddr.IP, n int) ([]time.Duration, error) {
	if p.ec2 == nil {
		return nil, fmt.Errorf("probes: no cloud configured")
	}
	inst, ok := p.ec2.InstanceAt(target)
	if !ok {
		return nil, fmt.Errorf("probes: no instance at %v", target)
	}
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.ec2.ProbeRTT(p.rng, from, inst))
	}
	return out, nil
}

// Traceroute runs an AS-level traceroute from an EC2 region/zone back
// to this prober's vantage.
func (p *Prober) Traceroute(region string, zone int) ([]wan.Hop, error) {
	if p.wan == nil {
		return nil, fmt.Errorf("probes: no WAN model configured")
	}
	return p.wan.Traceroute(p.vantage, region, zone, p.rng), nil
}

// Whois names an ASN.
func (p *Prober) Whois(asn int) string { return wan.Whois(asn) }

// Get measures one HTTP download from region at the given time,
// returning throughput in KB/s.
func (p *Prober) Get(region string, at time.Time) (float64, error) {
	if p.wan == nil {
		return 0, fmt.Errorf("probes: no WAN model configured")
	}
	return p.wan.Throughput(p.vantage, region, at, p.rng), nil
}

// RTT measures one wide-area latency sample to region in milliseconds.
func (p *Prober) RTT(region string, at time.Time) (float64, error) {
	if p.wan == nil {
		return 0, fmt.Errorf("probes: no WAN model configured")
	}
	return p.wan.RTT(p.vantage, region, at, p.rng), nil
}

// Vantage returns where this prober runs from.
func (p *Prober) Vantage() geo.Vantage { return p.vantage }

// FormatDig renders dig output in a familiar shape.
func FormatDig(name string, answers []DigAnswer) string {
	var b strings.Builder
	fmt.Fprintf(&b, ";; ANSWER SECTION (%s):\n", name)
	for _, a := range answers {
		fmt.Fprintf(&b, "%-50s", a.Record.String())
		if a.Provider != "" {
			fmt.Fprintf(&b, " ; %s (%s)", a.Provider, a.Region)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTraceroute renders hops traceroute-style.
func FormatTraceroute(hops []wan.Hop) string {
	var b strings.Builder
	for i, h := range hops {
		fmt.Fprintf(&b, "%2d  %-16s %8.2f ms  %s\n", i+1, h.IP, h.RTT, wan.Whois(h.ASN))
	}
	return b.String()
}

// SummarizeRTTs renders min/median/max of a sample set.
func SummarizeRTTs(samples []time.Duration) string {
	if len(samples) == 0 {
		return "no samples"
	}
	ms := make([]float64, len(samples))
	for i, s := range samples {
		ms[i] = float64(s) / float64(time.Millisecond)
	}
	sort.Float64s(ms)
	return fmt.Sprintf("min %.2f ms / median %.2f ms / max %.2f ms (%d probes)",
		ms[0], ms[len(ms)/2], ms[len(ms)-1], len(ms))
}
