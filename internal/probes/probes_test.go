package probes

import (
	"strings"
	"testing"
	"time"

	"cloudscope/internal/cloud"
	"cloudscope/internal/deploy"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/wan"
)

var world = deploy.Generate(deploy.DefaultConfig().Scaled(400))

func newProber(idx int) *Prober {
	return New(Config{
		Fabric:       world.Fabric,
		Registry:     world.Registry,
		Ranges:       world.Ranges,
		EC2:          world.EC2,
		WAN:          wan.New(1, 16, ipranges.EC2Regions),
		VantageIndex: idx,
		Seed:         1,
	})
}

func TestDig(t *testing.T) {
	p := newProber(0)
	var target *deploy.Subdomain
	for _, d := range world.CloudDomains {
		for _, s := range d.CloudSubdomains() {
			if s.Pattern == deploy.PatternVM && len(s.Regions) == 1 {
				target = s
			}
		}
	}
	if target == nil {
		t.Skip("no VM subdomain")
	}
	answers, err := p.Dig(target.FQDN)
	if err != nil {
		t.Fatal(err)
	}
	foundEC2 := false
	for _, a := range answers {
		if a.Provider == ipranges.EC2 {
			foundEC2 = true
			if a.Region != target.Regions[0] {
				t.Fatalf("region %s, want %s", a.Region, target.Regions[0])
			}
		}
	}
	if !foundEC2 {
		t.Fatalf("no EC2 answer for %s: %v", target.FQDN, answers)
	}
	out := FormatDig(target.FQDN, answers)
	if !strings.Contains(out, "ec2") {
		t.Fatalf("FormatDig missing classification:\n%s", out)
	}
}

func TestDigNXDomain(t *testing.T) {
	p := newProber(0)
	if _, err := p.Dig("definitely-not-real." + world.Domains[0].Name); err == nil {
		t.Fatal("expected error")
	}
}

func TestDigNS(t *testing.T) {
	p := newProber(1)
	locs, err := p.DigNS(world.CloudDomains[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) < 2 {
		t.Fatalf("NS = %d", len(locs))
	}
}

func TestTCPPing(t *testing.T) {
	p := newProber(0)
	src := world.EC2.Launch("ec2.us-east-1", 0, "m1.medium", cloud.KindVM)
	dst := world.EC2.Launch("ec2.us-east-1", 0, "m1.small", cloud.KindVM)
	samples, err := p.TCPPing(src, dst.PublicIP, 10)
	if err != nil || len(samples) != 10 {
		t.Fatalf("err=%v n=%d", err, len(samples))
	}
	sum := SummarizeRTTs(samples)
	if !strings.Contains(sum, "10 probes") {
		t.Fatalf("summary: %s", sum)
	}
	if _, err := p.TCPPing(src, 12345, 3); err == nil {
		t.Fatal("ping to nonexistent instance succeeded")
	}
}

func TestTracerouteAndWhois(t *testing.T) {
	p := newProber(2)
	hops, err := p.Traceroute("ec2.eu-west-1", 0)
	if err != nil || len(hops) < 4 {
		t.Fatalf("err=%v hops=%d", err, len(hops))
	}
	out := FormatTraceroute(hops)
	if !strings.Contains(out, "AMAZON") {
		t.Fatalf("traceroute output:\n%s", out)
	}
	if p.Whois(16509) != "AS16509 AMAZON-02" {
		t.Fatal("whois wrong")
	}
}

func TestWANMeasurements(t *testing.T) {
	p := newProber(3)
	at := time.Date(2013, 4, 5, 12, 0, 0, 0, time.UTC)
	rtt, err := p.RTT("ec2.us-east-1", at)
	if err != nil || rtt <= 0 {
		t.Fatalf("rtt=%v err=%v", rtt, err)
	}
	thr, err := p.Get("ec2.us-east-1", at)
	if err != nil || thr <= 0 {
		t.Fatalf("thr=%v err=%v", thr, err)
	}
}

func TestGracefulWithoutComponents(t *testing.T) {
	p := New(Config{Ranges: world.Ranges})
	if _, err := p.Dig("x.com"); err == nil {
		t.Fatal("Dig without fabric should fail")
	}
	if _, err := p.Traceroute("ec2.us-east-1", 0); err == nil {
		t.Fatal("Traceroute without WAN should fail")
	}
	if _, err := p.Get("ec2.us-east-1", time.Time{}); err == nil {
		t.Fatal("Get without WAN should fail")
	}
	if _, err := p.TCPPing(nil, 1, 1); err == nil {
		t.Fatal("TCPPing without cloud should fail")
	}
}

func TestVantagesDiffer(t *testing.T) {
	a, b := newProber(0), newProber(5)
	if a.Vantage().ID == b.Vantage().ID {
		t.Fatal("vantages identical")
	}
}
