package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 10}
	if got := Mean(xs); got != 4 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("Median = %v", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be infinities")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2.5 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Percentile mutated input")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("constant StdDev = %v", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("StdDev = %v, want 1", got)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {5, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if got := c.Quantile(0.5); got != 20 {
		t.Fatalf("Q(0.5) = %v", got)
	}
	if got := c.Quantile(1); got != 40 {
		t.Fatalf("Q(1) = %v", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("Q(0) = %v", got)
	}
	if got := c.Quantile(0.26); got != 20 {
		t.Fatalf("Q(0.26) = %v", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("last point Y = %v, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y <= pts[i-1].Y {
			t.Fatal("points not monotone")
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileAtInverse(t *testing.T) {
	// Property: At(Quantile(q)) >= q for sample data.
	f := func(seed int64) bool {
		xs := []float64{float64(seed % 97), 3, 1, 4, 1, 5, 9, 2, 6}
		c := NewCDF(xs)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			if c.At(c.Quantile(q)) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 50} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bounds did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Table 1: test", Header: []string{"Cloud", "Bytes"}}
	tb.AddRow("EC2", 81.73)
	tb.AddRow("Azure", 18.27)
	s := tb.String()
	if !strings.Contains(s, "Table 1: test") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "81.73") || !strings.Contains(s, "Azure") {
		t.Fatalf("missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Columns align: "Bytes" starts at same offset in header and rows.
	off := strings.Index(lines[1], "Bytes")
	if !strings.HasPrefix(lines[3][off:], "81.73") {
		t.Fatalf("misaligned columns:\n%s", s)
	}
}

func TestPctFrac(t *testing.T) {
	if got := Pct(1, 4); got != "25.0%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "0.0%" {
		t.Fatalf("Pct zero whole = %q", got)
	}
	if Frac(3, 4) != 0.75 || Frac(1, 0) != 0 {
		t.Fatal("Frac wrong")
	}
}

func TestCDFQuantileMatchesSorted(t *testing.T) {
	xs := []float64{9, 7, 5, 3, 1}
	c := NewCDF(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		if got := c.Quantile(q); got != sorted[i] {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, sorted[i])
		}
	}
}
