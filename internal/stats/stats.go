// Package stats provides the summary statistics the measurement analyses
// report: empirical CDFs, percentiles, means, histograms, and aligned
// text tables matching the layout of the paper's tables and figure
// series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies xs; the input is not
// modified. An empty slice yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// CDF is an empirical cumulative distribution function over observed
// samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an ECDF from samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// SearchFloat64s returns the first index >= x; advance past equals.
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample x with P(X <= x) >= q, for q in
// (0, 1]. Quantile(0) returns the smallest sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Points returns up to n (x, P(X<=x)) pairs evenly spaced through the
// sample set, suitable for plotting the CDF curve a figure reports.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for k := 1; k <= n; k++ {
		i := k*len(c.sorted)/n - 1
		pts = append(pts, Point{X: c.sorted[i], Y: float64(i+1) / float64(len(c.sorted))})
	}
	return pts
}

// Point is one (x, y) sample of a figure series.
type Point struct{ X, Y float64 }

// Series is a named sequence of points, one line in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Histogram counts samples into fixed-width bins over [lo, hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram builds a histogram with bins equal-width bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard float rounding at the top edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Table is an aligned text table with a title, matching the presentation
// of the paper's numbered tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b []byte
	if t.Title != "" {
		b = append(b, t.Title...)
		b = append(b, '\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			b = append(b, fmt.Sprintf("%-*s", widths[i]+2, cell)...)
		}
		b = append(b, '\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		for i := 0; i < total; i++ {
			b = append(b, '-')
		}
		b = append(b, '\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return string(b)
}

// Pct formats part/whole as a percentage string like "12.3%". A zero
// whole yields "0.0%".
func Pct(part, whole float64) string {
	if whole == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*part/whole)
}

// Frac returns part/whole, or 0 when whole is 0.
func Frac(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return part / whole
}
