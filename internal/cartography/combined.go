package cartography

import (
	"sort"

	"cloudscope/internal/cloud"
	"cloudscope/internal/netaddr"
)

// Combined identification: address proximity where a sampled /16
// matches, latency for the rest — §4.3's final estimator, which covered
// 87% of the dataset's instances. Both methods' zones live in the same
// reference account's label space (the proximity map's reference is the
// account the latency probes launched under), so verdicts compose
// directly, as they did for the paper's authors.

// Identification is one target's final verdict.
type Identification struct {
	Target *cloud.Instance
	Zone   int    // reference-label zone index; -1 unknown
	Method string // "proximity" | "latency" | ""
}

// CombinedResult aggregates a full run.
type CombinedResult struct {
	ByIP       map[netaddr.IP]Identification // keyed by public IP
	Identified int
	Total      int
}

// Coverage returns identified / total.
func (r *CombinedResult) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Identified) / float64(r.Total)
}

// IdentifyCombined merges the two methods, preferring proximity.
func IdentifyCombined(targets []*cloud.Instance, pm *ProximityMap, lat map[string]*LatencyRegionResult) *CombinedResult {
	res := &CombinedResult{ByIP: map[netaddr.IP]Identification{}}
	latZone := map[netaddr.IP]int{}
	for _, rr := range lat {
		for _, o := range rr.Outcomes {
			if o.Zone >= 0 {
				latZone[o.Target.PublicIP] = o.Zone
			}
		}
	}
	for _, t := range targets {
		res.Total++
		id := Identification{Target: t, Zone: -1}
		if z, ok := pm.Identify(t.Region, t.InternalIP); ok {
			id.Zone, id.Method = z, "proximity"
		} else if z, ok := latZone[t.PublicIP]; ok {
			id.Zone, id.Method = z, "latency"
		}
		if id.Zone >= 0 {
			res.Identified++
		}
		res.ByIP[t.PublicIP] = id
	}
	return res
}

// VeracityRow is one region's row of Table 13: latency-method accuracy
// judged against proximity identifications.
type VeracityRow struct {
	Region   string
	Count    int // latency-probed instances
	Match    int
	Unknown  int // one or both methods silent
	Mismatch int
}

// ErrorRate is mismatch / (count - unknown).
func (v VeracityRow) ErrorRate() float64 {
	denom := v.Count - v.Unknown
	if denom <= 0 {
		return 0
	}
	return float64(v.Mismatch) / float64(denom)
}

// Veracity compares the latency method against proximity as ground
// truth, per region plus an "all" summary row (Table 13).
func Veracity(targets []*cloud.Instance, pm *ProximityMap, lat map[string]*LatencyRegionResult) []VeracityRow {
	latZone := map[netaddr.IP]int{}
	latSeen := map[netaddr.IP]bool{}
	for _, rr := range lat {
		for _, o := range rr.Outcomes {
			latSeen[o.Target.PublicIP] = true
			if o.Zone >= 0 {
				latZone[o.Target.PublicIP] = o.Zone
			}
		}
	}
	rows := map[string]*VeracityRow{}
	all := &VeracityRow{Region: "all"}
	for _, t := range targets {
		if !latSeen[t.PublicIP] {
			continue
		}
		row := rows[t.Region]
		if row == nil {
			row = &VeracityRow{Region: t.Region}
			rows[t.Region] = row
		}
		row.Count++
		all.Count++
		lz, hasLat := latZone[t.PublicIP]
		pz, hasProx := pm.Identify(t.Region, t.InternalIP)
		if !hasLat || !hasProx {
			row.Unknown++
			all.Unknown++
			continue
		}
		if pz == lz {
			row.Match++
			all.Match++
		} else {
			row.Mismatch++
			all.Mismatch++
		}
	}
	out := []VeracityRow{*all}
	regions := make([]string, 0, len(rows))
	for r := range rows {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	for _, r := range regions {
		out = append(out, *rows[r])
	}
	return out
}
