package cartography

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"cloudscope/internal/chaos"
	"cloudscope/internal/cloud"
	"cloudscope/internal/parallel"
	"cloudscope/internal/telemetry"
)

// Failure injection for §4's cartography: accounts drop out
// mid-campaign and regions brown out under the probes, but whatever the
// methods still report must be a subset of what a fault-free run would
// have found, and Completeness must say exactly what was lost.

// renderLat serializes latency results for byte comparison (outcomes
// keyed by public IP, never by pointer).
func renderLat(res map[string]*LatencyRegionResult) string {
	regions := make([]string, 0, len(res))
	for r := range res {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	var b strings.Builder
	for _, region := range regions {
		rr := res[region]
		fmt.Fprintf(&b, "%s targets=%d responding=%d unknown=%d\n", region, rr.Targets, rr.Responding, rr.Unknown)
		for _, o := range rr.Outcomes {
			fmt.Fprintf(&b, "  %v zone=%d\n", o.Target.PublicIP, o.Zone)
		}
	}
	return b.String()
}

func renderSamples(samples []Sample) string {
	var b strings.Builder
	for _, s := range samples {
		fmt.Fprintf(&b, "%s %s %s %v\n", s.Account, s.Region, s.Label, s.InternalIP)
	}
	return b.String()
}

func mustScenario(t *testing.T, spec string) *chaos.Scenario {
	t.Helper()
	sc, err := chaos.Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestAccountOutageDuringSampling: an account going dark mid-campaign
// loses its planned launches, the survivors still merge into a usable
// proximity map, and the per-account accounting adds up.
func TestAccountOutageDuringSampling(t *testing.T) {
	sc := mustScenario(t, "account-down,frac=0.4,window=0.2-0.9")
	eng := chaos.New(sc, 9)
	c := cloud.NewEC2(31)
	ref := c.NewAccount("ref")
	comp := telemetry.NewCompleteness()
	samples := SampleAccounts(c, ref, 4, 3, Options{Seed: 5, Par: parallel.Options{Workers: 2}, Chaos: eng, Completeness: comp})

	st, ok := comp.Stage("cartography/sample")
	if !ok {
		t.Fatal("no cartography/sample stage recorded")
	}
	if st.Abandoned == 0 {
		t.Fatal("account outage recorded no abandoned launches")
	}
	if st.Attempted != st.Succeeded+st.Abandoned {
		t.Fatalf("accounting does not add up: %+v", st)
	}
	if int64(len(samples)) != st.Succeeded {
		t.Fatalf("%d samples but %d successes recorded", len(samples), st.Succeeded)
	}
	// Every surviving sample is truthful: its label exists under its
	// account and its instance really sits in that region.
	for _, s := range samples {
		if s.Region == "" || s.Label == "" {
			t.Fatalf("corrupt sample %+v", s)
		}
	}
	// The partial sample set still yields a proximity map anchored on
	// the reference account.
	pm := MergeAccounts(samples, ref.Name, Options{})
	if len(pm.ZoneOf16) == 0 {
		t.Fatal("partial samples produced an empty proximity map")
	}
}

// TestRegionalBrownoutLatencyProbes: a brownout plus loss scoped to
// us-east degrades that region's identification — and only that
// region's. Unfaulted regions stay byte-identical to a fault-free run.
func TestRegionalBrownoutLatencyProbes(t *testing.T) {
	build := func() (*cloud.Cloud, *cloud.Account, []*cloud.Instance) {
		c := cloud.NewEC2(33)
		acct := c.NewAccount("probe-acct")
		targets := launchTargets(c, "ec2.us-east-1", 200)
		targets = append(targets, launchTargets(c, "ec2.eu-west-1", 200)...)
		return c, acct, targets
	}

	c0, a0, t0 := build()
	baseline := IdentifyByLatency(c0, a0, t0, DefaultLatencyConfig(), Options{Seed: 1})

	sc := mustScenario(t, "brownout,region=us-east,add=50ms;loss,p=0.4,region=us-east")
	c1, a1, t1 := build()
	cfg := DefaultLatencyConfig()
	cfg.Chaos = chaos.New(sc, 17)
	cfg.Completeness = telemetry.NewCompleteness()
	faulted := IdentifyByLatency(c1, a1, t1, cfg, Options{Seed: 1, Par: parallel.Options{Workers: 3}})

	// The unfaulted region is untouched, byte for byte.
	if renderLat(map[string]*LatencyRegionResult{"ec2.eu-west-1": faulted["ec2.eu-west-1"]}) !=
		renderLat(map[string]*LatencyRegionResult{"ec2.eu-west-1": baseline["ec2.eu-west-1"]}) {
		t.Fatal("brownout scoped to us-east changed eu-west results")
	}
	// The faulted region lost probes to injected loss...
	fe, be := faulted["ec2.us-east-1"], baseline["ec2.us-east-1"]
	if fe.Responding >= be.Responding {
		t.Fatalf("injected loss did not reduce responding targets: %d vs %d", fe.Responding, be.Responding)
	}
	// ...and the brownout inflates min-RTTs past T, so the survivors
	// skew to unknown rather than ever flipping to a wrong zone.
	if fe.UnknownRate() <= be.UnknownRate() {
		t.Fatalf("brownout did not raise unknown rate: %.3f vs %.3f", fe.UnknownRate(), be.UnknownRate())
	}
	st, ok := cfg.Completeness.Stage("cartography/latency")
	if !ok {
		t.Fatal("no cartography/latency stage recorded")
	}
	if st.Abandoned == 0 {
		t.Fatal("probe loss recorded no abandoned probes")
	}
	if st.Attempted != int64(len(t1)) {
		t.Fatalf("attempted %d, want one per target (%d)", st.Attempted, len(t1))
	}
}

// TestCartographyChaosWorkerInvariant: fault verdicts are pure hash
// draws over stable identities, so faulted cartography is byte-identical
// at every worker count.
func TestCartographyChaosWorkerInvariant(t *testing.T) {
	sc := mustScenario(t, "brownout,region=us-east,add=40ms;loss,p=0.2,region=us-east;account-down,frac=0.4,window=0.1-0.8")
	run := func(workers int) (string, string, string) {
		c := cloud.NewEC2(35)
		acct := c.NewAccount("probe-acct")
		targets := launchTargets(c, "ec2.us-east-1", 150)
		targets = append(targets, launchTargets(c, "ec2.eu-west-1", 150)...)
		eng := chaos.New(sc, 7)
		comp := telemetry.NewCompleteness()
		cfg := DefaultLatencyConfig()
		cfg.Chaos, cfg.Completeness = eng, comp
		lat := IdentifyByLatency(c, acct, targets, cfg, Options{Seed: 1, Par: parallel.Options{Workers: workers}})
		samples := SampleAccounts(c, acct, 3, 2, Options{Seed: 5, Par: parallel.Options{Workers: workers}, Chaos: eng, Completeness: comp})
		return renderLat(lat), renderSamples(samples), comp.Report()
	}
	lat1, smp1, rep1 := run(1)
	for _, workers := range []int{2, 4} {
		lat, smp, rep := run(workers)
		if lat != lat1 {
			t.Errorf("latency results differ at Workers=%d", workers)
		}
		if smp != smp1 {
			t.Errorf("samples differ at Workers=%d", workers)
		}
		if rep != rep1 {
			t.Errorf("completeness differs at Workers=%d:\n%s\nvs\n%s", workers, rep, rep1)
		}
	}
}
