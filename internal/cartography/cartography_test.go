package cartography

import (
	"testing"

	"cloudscope/internal/cloud"
	"cloudscope/internal/parallel"
)

// launchTargets spreads n VMs across a region's zones.
func launchTargets(c *cloud.Cloud, region string, n int) []*cloud.Instance {
	zc := c.ZoneCount(region)
	out := make([]*cloud.Instance, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.Launch(region, i%zc, "m1.small", cloud.KindVM))
	}
	return out
}

// trueZoneOf translates a reference-label zone index to the provider's
// true zone (ground truth the algorithms never see).
func trueZoneOf(acct *cloud.Account, region string, labelIdx int) int {
	return acct.TrueZone(region, string(rune('a'+labelIdx)))
}

func TestLatencyMethodUSEast(t *testing.T) {
	c := cloud.NewEC2(21)
	acct := c.NewAccount("probe-acct")
	targets := launchTargets(c, "ec2.us-east-1", 300)
	res := IdentifyByLatency(c, acct, targets, DefaultLatencyConfig(), Options{Seed: 1, Par: parallel.Options{Workers: 1}})
	rr := res["ec2.us-east-1"]
	if rr == nil || rr.Targets != 300 {
		t.Fatalf("result: %+v", rr)
	}
	if rr.Responding < 280 {
		t.Fatalf("responding = %d", rr.Responding)
	}
	// us-east is the paper's best case: low unknown rate, low error.
	if rate := rr.UnknownRate(); rate > 0.25 {
		t.Fatalf("unknown rate %.2f too high", rate)
	}
	correct, wrong := 0, 0
	for _, o := range rr.Outcomes {
		if o.Zone < 0 {
			continue
		}
		if trueZoneOf(acct, "ec2.us-east-1", o.Zone) == o.Target.ZoneIndex {
			correct++
		} else {
			wrong++
		}
	}
	if errRate := float64(wrong) / float64(correct+wrong); errRate > 0.08 {
		t.Fatalf("us-east error rate %.3f, want <3%%-ish", errRate)
	}
}

func TestLatencyMethodEuWestErrs(t *testing.T) {
	c := cloud.NewEC2(22)
	acct := c.NewAccount("probe-acct")
	targets := launchTargets(c, "ec2.eu-west-1", 300)
	res := IdentifyByLatency(c, acct, targets, DefaultLatencyConfig(), Options{Seed: 2, Par: parallel.Options{Workers: 1}})
	rr := res["ec2.eu-west-1"]
	wrong, known := 0, 0
	for _, o := range rr.Outcomes {
		if o.Zone < 0 {
			continue
		}
		known++
		if trueZoneOf(acct, "ec2.eu-west-1", o.Zone) != o.Target.ZoneIndex {
			wrong++
		}
	}
	errRate := float64(wrong) / float64(known)
	// The planted fabric anomaly defeats the method for zone-1 targets.
	if errRate < 0.10 {
		t.Fatalf("eu-west error rate %.3f, want ~0.25", errRate)
	}
}

func TestLatencyMissingProbeZone(t *testing.T) {
	c := cloud.NewEC2(23)
	acct := c.NewAccount("probe-acct")
	targets := launchTargets(c, "ec2.ap-northeast-1", 200)
	res := IdentifyByLatency(c, acct, targets, DefaultLatencyConfig(), Options{Seed: 3, Par: parallel.Options{Workers: 1}})
	rr := res["ec2.ap-northeast-1"]
	// One label has no probes: targets in that true zone are unknowable.
	if rate := rr.UnknownRate(); rate < 0.35 {
		t.Fatalf("ap-northeast unknown rate %.2f, want ~0.5", rate)
	}
	if rr.ZoneCounts[1] != 0 {
		t.Fatalf("assigned %d targets to unprobed zone label", rr.ZoneCounts[1])
	}
}

func TestSampleAccounts(t *testing.T) {
	c := cloud.NewEC2(24)
	ref := c.NewAccount("ref")
	samples := SampleAccounts(c, ref, 2, 2, Options{Seed: 5, Par: parallel.Options{Workers: 1}})
	// 3 accounts × sum of zones (3+2+3+3+2+2+2+2=19) × 2.
	if len(samples) != 3*19*2 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].Account != "ref" {
		t.Fatal("reference samples must come first")
	}
	for _, s := range samples {
		if s.InternalIP == 0 {
			t.Fatal("sample without internal IP")
		}
	}
}

func TestMergeAccountsRecoversZones(t *testing.T) {
	c := cloud.NewEC2(25)
	ref := c.NewAccount("ref")
	samples := SampleAccounts(c, ref, 5, 4, Options{Seed: 6, Par: parallel.Options{Workers: 1}})
	pm := MergeAccounts(samples, "", Options{Par: parallel.Options{Workers: 1}})
	if pm.Reference != "ref" {
		t.Fatalf("reference = %q", pm.Reference)
	}
	for _, region := range []string{"ec2.us-east-1", "ec2.us-west-2"} {
		targets := launchTargets(c, region, 120)
		correct, wrong, unknown := 0, 0, 0
		for _, tgt := range targets {
			z, ok := pm.Identify(region, tgt.InternalIP)
			if !ok {
				unknown++
				continue
			}
			if trueZoneOf(ref, region, z) == tgt.ZoneIndex {
				correct++
			} else {
				wrong++
			}
		}
		if unknown > len(targets)/2 {
			t.Fatalf("%s: %d/%d unknown", region, unknown, len(targets))
		}
		if wrong > 0 {
			t.Fatalf("%s: %d proximity misidentifications (should be exact)", region, wrong)
		}
		if correct == 0 {
			t.Fatalf("%s: nothing identified", region)
		}
	}
}

func TestMergePermutationsAreBijections(t *testing.T) {
	c := cloud.NewEC2(26)
	ref := c.NewAccount("ref")
	samples := SampleAccounts(c, ref, 4, 3, Options{Seed: 7, Par: parallel.Options{Workers: 1}})
	pm := MergeAccounts(samples, "", Options{Par: parallel.Options{Workers: 1}})
	if len(pm.Permutations) == 0 {
		t.Fatal("no permutations recorded")
	}
	for acct, regions := range pm.Permutations {
		for region, perm := range regions {
			seen := map[int]bool{}
			for _, v := range perm {
				if seen[v] {
					t.Fatalf("%s/%s perm %v not a bijection", acct, region, perm)
				}
				seen[v] = true
			}
		}
	}
}

func TestMergeRecoversTruePermutations(t *testing.T) {
	// The merge must recover each account's actual label permutation
	// relative to the reference (up to zones with no shared /16s).
	c := cloud.NewEC2(30)
	ref := c.NewAccount("ref")
	samples := SampleAccounts(c, ref, 3, 6, Options{Seed: 8, Par: parallel.Options{Workers: 1}})
	pm := MergeAccounts(samples, "", Options{Par: parallel.Options{Workers: 1}})
	region := "ec2.us-east-1"
	for acct, regions := range pm.Permutations {
		perm := regions[region]
		other := c.NewAccount(acct) // deterministic: same permutation
		for li, refIdx := range perm {
			gotTrue := other.TrueZone(region, string(rune('a'+li)))
			wantTrue := ref.TrueZone(region, string(rune('a'+refIdx)))
			if gotTrue != wantTrue {
				t.Fatalf("%s label %c: merged to ref %c (true %d), actual true %d",
					acct, 'a'+li, 'a'+refIdx, wantTrue, gotTrue)
			}
		}
	}
}

func TestIndexGranularityTradeoff(t *testing.T) {
	c := cloud.NewEC2(27)
	ref := c.NewAccount("ref")
	samples := SampleAccounts(c, ref, 3, 4, Options{Seed: 8, Par: parallel.Options{Workers: 1}})
	pm := MergeAccounts(samples, "", Options{Par: parallel.Options{Workers: 1}})
	region := "ec2.us-east-1"
	targets := launchTargets(c, region, 150)

	coverage := map[int]float64{}
	for _, bits := range []int{8, 16, 24} {
		idx := pm.Index(region, bits)
		matched := 0
		for _, tgt := range targets {
			if _, ok := IdentifyAt(idx, tgt.InternalIP, bits); ok {
				matched++
			}
		}
		coverage[bits] = float64(matched) / float64(len(targets))
	}
	if coverage[8] < coverage[16] {
		t.Fatalf("coverage /8 (%.2f) < /16 (%.2f)", coverage[8], coverage[16])
	}
	if coverage[24] > coverage[16] {
		t.Fatalf("coverage /24 (%.2f) > /16 (%.2f)", coverage[24], coverage[16])
	}
	acc := func(bits int) float64 {
		idx := pm.Index(region, bits)
		correct, known := 0, 0
		for _, tgt := range targets {
			z, ok := IdentifyAt(idx, tgt.InternalIP, bits)
			if !ok {
				continue
			}
			known++
			if trueZoneOf(ref, region, z) == tgt.ZoneIndex {
				correct++
			}
		}
		if known == 0 {
			return 0
		}
		return float64(correct) / float64(known)
	}
	if acc(16) < 0.99 {
		t.Fatalf("/16 accuracy %.2f", acc(16))
	}
	if acc(8) >= acc(16) {
		t.Fatalf("/8 accuracy %.2f not worse than /16 %.2f", acc(8), acc(16))
	}
}

func TestCombinedCoverage(t *testing.T) {
	c := cloud.NewEC2(28)
	ref := c.NewAccount("ref")
	var targets []*cloud.Instance
	for _, region := range []string{"ec2.us-east-1", "ec2.us-west-2", "ec2.eu-west-1"} {
		targets = append(targets, launchTargets(c, region, 150)...)
	}
	samples := SampleAccounts(c, ref, 4, 4, Options{Seed: 9, Par: parallel.Options{Workers: 1}})
	pm := MergeAccounts(samples, "", Options{Par: parallel.Options{Workers: 1}})
	lat := IdentifyByLatency(c, ref, targets, DefaultLatencyConfig(), Options{Seed: 10, Par: parallel.Options{Workers: 1}})
	comb := IdentifyCombined(targets, pm, lat)
	if comb.Total != len(targets) {
		t.Fatalf("total = %d", comb.Total)
	}
	// Paper: 87% combined coverage.
	if comb.Coverage() < 0.70 {
		t.Fatalf("combined coverage %.2f", comb.Coverage())
	}
	correct, known := 0, 0
	for _, t2 := range targets {
		id := comb.ByIP[t2.PublicIP]
		if id.Zone < 0 {
			continue
		}
		known++
		if trueZoneOf(ref, t2.Region, id.Zone) == t2.ZoneIndex {
			correct++
		}
	}
	if frac := float64(correct) / float64(known); frac < 0.90 {
		t.Fatalf("combined accuracy %.2f", frac)
	}
	methods := map[string]int{}
	for _, id := range comb.ByIP {
		methods[id.Method]++
	}
	if methods["proximity"] == 0 || methods["latency"] == 0 {
		t.Fatalf("method mix: %v", methods)
	}
	// Proximity dominates (79% alone in the paper).
	if methods["proximity"] < methods["latency"] {
		t.Fatalf("latency out-contributed proximity: %v", methods)
	}
}

func TestVeracityTable(t *testing.T) {
	c := cloud.NewEC2(29)
	ref := c.NewAccount("ref")
	var targets []*cloud.Instance
	for _, region := range []string{"ec2.us-east-1", "ec2.eu-west-1", "ec2.us-west-1"} {
		targets = append(targets, launchTargets(c, region, 200)...)
	}
	samples := SampleAccounts(c, ref, 4, 4, Options{Seed: 11, Par: parallel.Options{Workers: 1}})
	pm := MergeAccounts(samples, "", Options{Par: parallel.Options{Workers: 1}})
	lat := IdentifyByLatency(c, ref, targets, DefaultLatencyConfig(), Options{Seed: 12, Par: parallel.Options{Workers: 1}})
	rows := Veracity(targets, pm, lat)
	if rows[0].Region != "all" {
		t.Fatalf("first row %q", rows[0].Region)
	}
	byRegion := map[string]VeracityRow{}
	for _, r := range rows {
		byRegion[r.Region] = r
	}
	east := byRegion["ec2.us-east-1"]
	west := byRegion["ec2.eu-west-1"]
	if east.Count == 0 || west.Count == 0 {
		t.Fatalf("empty rows: %+v", rows)
	}
	if east.ErrorRate() > 0.10 {
		t.Fatalf("us-east veracity error %.3f", east.ErrorRate())
	}
	if west.ErrorRate() < 0.10 {
		t.Fatalf("eu-west veracity error %.3f, want ~0.25", west.ErrorRate())
	}
	if west.ErrorRate() < east.ErrorRate() {
		t.Fatalf("eu-west (%.3f) should err more than us-east (%.3f)", west.ErrorRate(), east.ErrorRate())
	}
	// The all row is consistent with the per-region rows.
	sum := 0
	for _, r := range rows[1:] {
		sum += r.Count
	}
	if rows[0].Count != sum {
		t.Fatalf("all.Count %d != sum %d", rows[0].Count, sum)
	}
}
