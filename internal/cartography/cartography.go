// Package cartography implements the two availability-zone
// identification techniques of §4.3 (after Ristenpart et al.):
//
//   - Latency method: probe instances in each zone TCP-ping a target;
//     the minimum RTT identifies the probe's zone as the target's when
//     it falls below a threshold T and is uniquely smallest.
//   - Address-proximity method: instances sampled under many accounts
//     give (internal /16 → zone label) evidence; because EC2 permutes
//     zone labels per account, samples are merged by finding, for each
//     account pair, the label permutation maximizing shared-/16
//     agreement. Targets are then identified by their internal /16.
//
// The package also implements the combined estimator (proximity first,
// latency for the remainder) and the veracity comparison of Table 13.
package cartography

import (
	"fmt"
	"sort"
	"time"

	"cloudscope/internal/chaos"
	"cloudscope/internal/cloud"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/parallel"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/xrand"
)

// Options bundles the cross-cutting run parameters every cartography
// experiment takes: the seed its probe streams split from, the worker
// fan-out, and the optional fault-injection handles. The zero value is
// a bare fault-free run (Par's zero value fans out to GOMAXPROCS; set
// Par.Workers to 1 to force the sequential path). Inside a Study,
// build Options from the study's fields: Options{Seed: s.Cfg.Seed,
// Par: s.Par("zones"), Chaos: s.Chaos(), Completeness:
// s.Completeness()}.
type Options struct {
	// Seed roots the experiment's deterministic probe streams.
	Seed int64
	// Par bounds and instruments the worker fan-out; results are
	// bit-identical at every worker count.
	Par parallel.Options
	// Chaos, when set, injects faults into the experiment's probes and
	// launches.
	Chaos *chaos.Engine
	// Completeness, when set, receives the experiment's per-unit probe
	// accounting.
	Completeness *telemetry.Completeness
}

// LatencyConfig parameterizes the latency method.
type LatencyConfig struct {
	// ThresholdMs is T: a minimum probe RTT above it means "unknown".
	ThresholdMs float64
	// ProbesPerInstance is the TCP pings per probe instance (10).
	ProbesPerInstance int
	// Repeats is how many probe instances' measurements are pooled per
	// zone (the paper repeated the process 5 times).
	Repeats int
	// MissingProbeZones marks (region → zone indexes) where no probe
	// instance could be launched, as happened to the authors in
	// ap-northeast-1's second zone.
	MissingProbeZones map[string][]int
	// BusyFraction is the share of targets whose host is loaded enough
	// to inflate even minimum RTTs past useful thresholds — the noise
	// source behind Table 12's 10–30% unknown rates.
	BusyFraction float64
	// Chaos, when set, injects faults: region-scoped loss makes targets
	// unreachable and region-scoped brownouts inflate probe RTTs
	// (pushing more verdicts to "unknown" without ever flipping one).
	//
	// Deprecated: set Options.Chaos instead; it fills this field when
	// unset.
	Chaos *chaos.Engine
	// Completeness, when set, receives per-region probe accounting under
	// stage "cartography/latency".
	//
	// Deprecated: set Options.Completeness instead; it fills this field
	// when unset.
	Completeness *telemetry.Completeness
}

// DefaultLatencyConfig mirrors the paper: T = 1.1 ms, 10 pings, 5
// repeats, and no probes in ap-northeast-1 zone 1.
func DefaultLatencyConfig() LatencyConfig {
	return LatencyConfig{
		ThresholdMs:       1.1,
		ProbesPerInstance: 10,
		Repeats:           5,
		MissingProbeZones: map[string][]int{"ec2.ap-northeast-1": {1}},
		BusyFraction:      0.13,
	}
}

// LatencyOutcome is the latency method's verdict for one target.
type LatencyOutcome struct {
	Target *cloud.Instance
	Zone   int // -1 when unknown
}

// LatencyRegionResult aggregates one region's identification run.
type LatencyRegionResult struct {
	Region     string
	Targets    int
	Responding int
	ZoneCounts map[int]int // zone → identified targets
	Unknown    int
	Outcomes   []LatencyOutcome
}

// UnknownRate returns unknown / responding.
func (r *LatencyRegionResult) UnknownRate() float64 {
	if r.Responding == 0 {
		return 0
	}
	return float64(r.Unknown) / float64(r.Responding)
}

// zoneProbes is one zone's probe instances, kept in a slice sorted by
// zone index so probing visits zones in a deterministic order.
type zoneProbes struct {
	zone  int
	insts []*cloud.Instance
}

// IdentifyByLatency runs the latency method over targets grouped by
// region. Probe instances are launched under acct, so the returned zone
// indexes are in acct's label space ('a' = 0, ...) — the same space the
// proximity method reports in when acct is its reference, exactly as in
// the paper where both methods ran from the authors' accounts. A small
// fraction of targets (2%) are treated as unresponsive, like filtered
// hosts in the wild.
//
// Probe launches stay sequential (they move the account's allocation
// cursors) and visit regions in sorted order; the per-target probing —
// the expensive part — shards across opt.Par's workers, each shard
// drawing from its own stream split from opt.Seed by shard index. The
// shard layout depends only on the target count, so results are
// bit-identical at every worker count and on every machine. opt.Chaos
// and opt.Completeness fill cfg's equivalents when those are unset.
func IdentifyByLatency(c *cloud.Cloud, acct *cloud.Account, targets []*cloud.Instance, cfg LatencyConfig, opt Options) map[string]*LatencyRegionResult {
	seed := opt.Seed
	if cfg.Chaos == nil {
		cfg.Chaos = opt.Chaos
	}
	if cfg.Completeness == nil {
		cfg.Completeness = opt.Completeness
	}
	byRegion := map[string][]*cloud.Instance{}
	var regionOrder []string
	for _, t := range targets {
		if byRegion[t.Region] == nil {
			regionOrder = append(regionOrder, t.Region)
		}
		byRegion[t.Region] = append(byRegion[t.Region], t)
	}
	sort.Strings(regionOrder)

	// Launch every region's probes first, in sorted-region order, so
	// instance allocation is deterministic and workers only read.
	type workItem struct {
		region string
		target *cloud.Instance
	}
	var work []workItem
	probesOf := map[string][]zoneProbes{}
	for _, region := range regionOrder {
		missing := map[int]bool{}
		for _, z := range cfg.MissingProbeZones[region] {
			missing[z] = true
		}
		var probes []zoneProbes
		for li, label := range acct.ZoneLabels(region) {
			if missing[li] {
				continue
			}
			zp := zoneProbes{zone: li}
			for r := 0; r < cfg.Repeats; r++ {
				zp.insts = append(zp.insts, acct.Launch(region, label, "m1.medium"))
			}
			probes = append(probes, zp)
		}
		probesOf[region] = probes
		for _, t := range byRegion[region] {
			work = append(work, workItem{region: region, target: t})
		}
	}

	// Probe all targets on the pool; outcome i belongs to work[i]. The
	// chaos phase is the target's index over the work list — the
	// campaign's progress when this target would have been probed — so
	// fault windows land identically at any worker count.
	type outcome struct {
		responding bool
		chaosLost  bool
		zone       int
	}
	outs := make([]outcome, len(work))
	err := parallel.Run(opt.Par, len(work), func(sh parallel.Shard) error {
		rng := xrand.SplitSeeded(seed, fmt.Sprintf("cartography/latency/shard%d", sh.Index))
		for i := sh.Lo; i < sh.Hi; i++ {
			phase := float64(i) / float64(len(work))
			if cfg.Chaos.ProbeLost(work[i].region, work[i].target.ID, phase) {
				outs[i] = outcome{chaosLost: true}
				continue
			}
			if rng.Bool(0.02) {
				continue // unresponsive, like filtered hosts in the wild
			}
			extraMs := cfg.Chaos.RegionExtraMs(work[i].region, phase)
			outs[i] = outcome{
				responding: true,
				zone:       identifyOne(c, rng, probesOf[work[i].region], work[i].target, cfg, extraMs),
			}
		}
		return nil
	})
	if err != nil {
		panic(err) // workers only surface panics; re-raise on the caller
	}

	// Aggregate in input order on the caller's goroutine.
	results := map[string]*LatencyRegionResult{}
	comp := map[string]*telemetry.Counts{}
	for i, w := range work {
		res := results[w.region]
		if res == nil {
			res = &LatencyRegionResult{Region: w.region, ZoneCounts: map[int]int{}}
			results[w.region] = res
			comp[w.region] = &telemetry.Counts{}
		}
		res.Targets++
		cc := comp[w.region]
		cc.Attempted++
		if outs[i].chaosLost {
			cc.Abandoned++
			continue
		}
		// Naturally unresponsive targets completed their measurement —
		// the verdict is just "filtered" — so only chaos losses count as
		// abandoned work.
		cc.Succeeded++
		if !outs[i].responding {
			continue
		}
		res.Responding++
		res.Outcomes = append(res.Outcomes, LatencyOutcome{Target: w.target, Zone: outs[i].zone})
		if outs[i].zone < 0 {
			res.Unknown++
		} else {
			res.ZoneCounts[outs[i].zone]++
		}
	}
	for _, region := range regionOrder {
		if cc := comp[region]; cc != nil {
			cfg.Completeness.Merge("cartography/latency", region, *cc)
		}
	}
	return results
}

// identifyOne applies the paper's decision rule to one target. extraMs
// is chaos brownout latency added to every probe's floor; it shifts all
// of a target's zone minima equally, so it can push verdicts to
// "unknown" (past the threshold) but never flip one zone to another.
func identifyOne(c *cloud.Cloud, rng *xrand.Rand, probes []zoneProbes, target *cloud.Instance, cfg LatencyConfig, extraMs float64) int {
	// Loaded targets answer slowly no matter who probes them: a stable
	// per-instance floor that min-of-N cannot strip.
	busyMs := extraMs
	if h := idHash(target.ID); float64(h%1000)/1000 < cfg.BusyFraction {
		busyMs += 0.4 + float64(h%977)/977*2.6
	}
	type zt struct {
		zone int
		ms   float64
	}
	var times []zt
	for _, zp := range probes {
		min := time.Duration(1<<62 - 1)
		for _, p := range zp.insts {
			if d := c.MinProbeRTT(rng, p, target, cfg.ProbesPerInstance); d < min {
				min = d
			}
		}
		times = append(times, zt{zp.zone, busyMs + float64(min)/float64(time.Millisecond)})
	}
	sort.Slice(times, func(i, j int) bool { return times[i].ms < times[j].ms })
	if len(times) == 0 {
		return -1
	}
	best := times[0]
	// Tie: indistinguishable minima.
	if len(times) > 1 && times[1].ms-best.ms < 0.02 {
		return -1
	}
	if best.ms >= cfg.ThresholdMs {
		return -1
	}
	return best.zone
}

// idHash folds an instance ID into a stable value.
func idHash(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// --- Address-proximity method ----------------------------------------

// Sample is one instance launched under a measurement account.
type Sample struct {
	Account    string
	Region     string
	Label      string // account-visible zone label ("a", "b", ...)
	InternalIP netaddr.IP
}

// SampleAccounts launches perZone instances in every zone of every
// region under the reference account plus nExtra others, and records
// the account-labelled placements (the paper accumulated 5,096 samples
// over several accounts and years). The reference account's samples
// come first, making it MergeAccounts' label anchor.
//
// It runs in plan/commit form: each account's launch schedule is
// planned on opt.Par's pool (reading only static zone metadata —
// account label permutations are split streams keyed by account name,
// fixed at NewAccount), then every launch commits sequentially in
// account order, because instance allocation moves the cloud's shared
// address cursors. The sample list is identical at every worker count.
// Under opt.Chaos, launches planned for an account that is chaos-dark
// at that point of the campaign are skipped (the paper's accounts hit
// API throttles and closures mid-campaign), and per-account accounting
// lands in opt.Completeness under stage "cartography/sample".
func SampleAccounts(c *cloud.Cloud, ref *cloud.Account, nExtra, perZone int, opt Options) []Sample {
	eng, comp := opt.Chaos, opt.Completeness
	accounts := []*cloud.Account{ref}
	for ai := 0; ai < nExtra; ai++ {
		accounts = append(accounts, c.NewAccount(fmt.Sprintf("carto-%03d", ai)))
	}
	type launch struct {
		acct          *cloud.Account
		region, label string
	}
	plans, err := parallel.Map(opt.Par, accounts, func(_ int, acct *cloud.Account) ([]launch, error) {
		var ls []launch
		for _, region := range c.Regions() {
			for _, label := range acct.ZoneLabels(region) {
				for i := 0; i < perZone; i++ {
					ls = append(ls, launch{acct: acct, region: region, label: label})
				}
			}
		}
		return ls, nil
	})
	if err != nil {
		panic(err) // workers only surface panics; re-raise on the caller
	}
	total := 0
	for _, ls := range plans {
		total += len(ls)
	}
	var samples []Sample
	stats := map[string]*telemetry.Counts{}
	li := 0
	for _, ls := range plans {
		for _, l := range ls {
			phase := float64(li) / float64(total)
			li++
			cc := stats[l.acct.Name]
			if cc == nil {
				cc = &telemetry.Counts{}
				stats[l.acct.Name] = cc
			}
			cc.Attempted++
			if eng.AccountOut(l.acct.Name, phase) {
				cc.Abandoned++
				continue
			}
			cc.Succeeded++
			inst := l.acct.Launch(l.region, l.label, "t1.micro")
			samples = append(samples, Sample{
				Account:    l.acct.Name,
				Region:     l.region,
				Label:      l.label,
				InternalIP: inst.InternalIP,
			})
		}
	}
	if comp != nil {
		for _, acct := range accounts {
			if cc := stats[acct.Name]; cc != nil {
				comp.Merge("cartography/sample", acct.Name, *cc)
			}
		}
	}
	return samples
}

// refSample is one sample with its zone resolved into the reference
// account's label space.
type refSample struct {
	ip   netaddr.IP
	zone int
}

// ProximityMap holds merged samples: per region, internal /16 → zone
// index in the reference account's label space.
type ProximityMap struct {
	// ZoneOf16[region][/16 prefix] = reference zone index.
	ZoneOf16 map[string]map[netaddr.IP]int
	// Reference is the account whose labels index zones.
	Reference string
	// Permutations[account][region][labelIndex] = reference label index.
	Permutations map[string]map[string][]int

	// samples retains merged per-region samples for non-default
	// granularities (the prefix-bits ablation).
	samples map[string][]refSample
}

// mergeKey groups samples by (account, region, label).
type mergeKey struct{ account, region, label string }

// mergeGroups is the arrival-order-free view of a sample set: /16
// evidence sets, raw IPs (sorted), and sorted label lists per account.
type mergeGroups struct {
	groups   map[mergeKey]map[netaddr.IP]bool
	rawIPs   map[mergeKey][]netaddr.IP
	labelsOf map[string]map[string][]string // account → region → sorted labels
}

// regionMerge is one region's independent merge result, folded into the
// ProximityMap in sorted-region order by the commit step.
type regionMerge struct {
	zoneOf16 map[netaddr.IP]int
	perms    map[string][]int // account → permutation
	samples  []refSample
}

// MergeAccounts aligns all accounts' labels to the reference account's
// by maximizing shared-/16 agreement pairwise, then builds the /16 →
// zone map — the label-permutation merge of §4.3. ref names the
// reference (label-anchor) account; "" means the first account seen in
// samples.
//
// The per-region merges fan out over opt.Par with a canonical fold
// order. Given an explicit ref, the result is a pure function of the
// sample SET: non-reference accounts fold in sorted-name order, regions
// merge independently over the sorted region list, and retained samples
// are sorted — so shuffling sample arrival order (or the worker count)
// cannot change the map.
func MergeAccounts(samples []Sample, ref string, opt Options) *ProximityMap {
	acc := NewMergeAccumulator()
	acc.Add(samples...)
	return acc.Finish(ref, opt)
}

// MergeAccumulator is the streaming form of MergeAccounts: samples fold
// in chunk by chunk (the per-sample grouping is commutative up to
// arrival order, which only anchors the default reference account), so
// a campaign can discard each chunk of samples after Add instead of
// materializing the full sample slice. Finish canonicalizes and runs
// the per-region merges exactly as MergeAccounts — which delegates
// here, so the two paths cannot diverge.
type MergeAccumulator struct {
	g        mergeGroups
	accounts []string
	seen     map[string]bool
	regions  map[string]bool
	n        int
}

// NewMergeAccumulator returns an empty accumulator.
func NewMergeAccumulator() *MergeAccumulator {
	return &MergeAccumulator{
		g: mergeGroups{
			groups:   map[mergeKey]map[netaddr.IP]bool{},
			rawIPs:   map[mergeKey][]netaddr.IP{},
			labelsOf: map[string]map[string][]string{},
		},
		seen:    map[string]bool{},
		regions: map[string]bool{},
	}
}

// Len returns how many samples have been folded in.
func (a *MergeAccumulator) Len() int { return a.n }

// Add folds samples into the evidence groups. Chunk boundaries are
// invisible to the result: the groups are sets and per-key IP lists
// that Finish sorts canonically.
func (a *MergeAccumulator) Add(samples ...Sample) {
	for _, s := range samples {
		a.n++
		k := mergeKey{s.Account, s.Region, s.Label}
		if a.g.groups[k] == nil {
			a.g.groups[k] = map[netaddr.IP]bool{}
		}
		a.g.groups[k][s.InternalIP.Prefix(16)] = true
		a.g.rawIPs[k] = append(a.g.rawIPs[k], s.InternalIP)
		if !a.seen[s.Account] {
			a.seen[s.Account] = true
			a.accounts = append(a.accounts, s.Account)
		}
		a.regions[s.Region] = true
		if a.g.labelsOf[s.Account] == nil {
			a.g.labelsOf[s.Account] = map[string][]string{}
		}
		found := false
		for _, l := range a.g.labelsOf[s.Account][s.Region] {
			if l == s.Label {
				found = true
			}
		}
		if !found {
			a.g.labelsOf[s.Account][s.Region] = append(a.g.labelsOf[s.Account][s.Region], s.Label)
		}
	}
}

// Finish canonicalizes the accumulated evidence and builds the
// ProximityMap. The accumulator must not be Added to afterwards.
func (a *MergeAccumulator) Finish(ref string, opt Options) *ProximityMap {
	if a.n == 0 {
		return &ProximityMap{ZoneOf16: map[string]map[netaddr.IP]int{}, Permutations: map[string]map[string][]int{}}
	}
	g := a.g
	if ref == "" {
		ref = a.accounts[0]
	}
	// Canonical orders: labels and raw IPs sorted, non-reference
	// accounts by name, regions sorted.
	for _, byRegion := range g.labelsOf {
		for _, labels := range byRegion {
			sort.Strings(labels)
		}
	}
	for _, ips := range g.rawIPs {
		sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	}
	others := make([]string, 0, len(a.accounts))
	for _, acct := range a.accounts {
		if acct != ref {
			others = append(others, acct)
		}
	}
	sort.Strings(others)
	regions := make([]string, 0, len(a.regions))
	for r := range a.regions {
		regions = append(regions, r)
	}
	sort.Strings(regions)

	merges := make([]regionMerge, len(regions))
	if err := parallel.Run(opt.Par, len(regions), func(sh parallel.Shard) error {
		for i := sh.Lo; i < sh.Hi; i++ {
			merges[i] = mergeRegion(regions[i], ref, others, &g)
		}
		return nil
	}); err != nil {
		panic(err) // workers only surface panics; re-raise on the caller
	}

	pm := &ProximityMap{
		ZoneOf16:     map[string]map[netaddr.IP]int{},
		Reference:    ref,
		Permutations: map[string]map[string][]int{},
		samples:      map[string][]refSample{},
	}
	for i, region := range regions {
		pm.ZoneOf16[region] = merges[i].zoneOf16
		pm.samples[region] = merges[i].samples
		for acct, perm := range merges[i].perms {
			if pm.Permutations[acct] == nil {
				pm.Permutations[acct] = map[string][]int{}
			}
			pm.Permutations[acct][region] = perm
		}
	}
	return pm
}

// mergeRegion runs the label-permutation merge for one region. It only
// reads the shared groups, so regions merge concurrently.
func mergeRegion(region, ref string, others []string, g *mergeGroups) regionMerge {
	rm := regionMerge{zoneOf16: map[netaddr.IP]int{}, perms: map[string][]int{}}
	refLabels := g.labelsOf[ref][region]
	// Seed the map from the reference account.
	for li, label := range refLabels {
		for p16 := range g.groups[mergeKey{ref, region, label}] {
			rm.zoneOf16[p16] = li
		}
		for _, ip := range g.rawIPs[mergeKey{ref, region, label}] {
			rm.samples = append(rm.samples, refSample{ip: ip, zone: li})
		}
	}
	// Fold the other accounts in, always merging the account with the
	// strongest /16 overlap against the accumulated map next (ties go
	// to the earliest account in sorted-name order). Accounts with no
	// overlapping evidence are left unmerged rather than guessed at — a
	// wrong permutation would poison the map for every later target in
	// those /16s.
	pending := append([]string(nil), others...)
	for len(pending) > 0 {
		bestAcct, bestScore := -1, 0
		var bestPerm []int
		for pi, acct := range pending {
			labels := g.labelsOf[acct][region]
			score := 0
			perm := bestPermutation(labels, refLabels, func(label string, refIdx int) int {
				agree := 0
				for p16 := range g.groups[mergeKey{acct, region, label}] {
					if zi, ok := rm.zoneOf16[p16]; ok && zi == refIdx {
						agree++
					}
				}
				return agree
			})
			for li, label := range labels {
				for p16 := range g.groups[mergeKey{acct, region, label}] {
					if zi, ok := rm.zoneOf16[p16]; ok && zi == perm[li] {
						score++
					}
				}
			}
			if score > bestScore {
				bestAcct, bestScore, bestPerm = pi, score, perm
			}
		}
		if bestAcct < 0 {
			break // no remaining account shares evidence
		}
		acct := pending[bestAcct]
		pending = append(pending[:bestAcct], pending[bestAcct+1:]...)
		labels := g.labelsOf[acct][region]
		rm.perms[acct] = bestPerm
		for li, label := range labels {
			refIdx := bestPerm[li]
			for p16 := range g.groups[mergeKey{acct, region, label}] {
				if _, ok := rm.zoneOf16[p16]; !ok {
					rm.zoneOf16[p16] = refIdx
				}
			}
			for _, ip := range g.rawIPs[mergeKey{acct, region, label}] {
				rm.samples = append(rm.samples, refSample{ip: ip, zone: refIdx})
			}
		}
	}
	// Canonical retained-sample order, independent of fold history.
	sort.Slice(rm.samples, func(i, j int) bool {
		if rm.samples[i].ip != rm.samples[j].ip {
			return rm.samples[i].ip < rm.samples[j].ip
		}
		return rm.samples[i].zone < rm.samples[j].zone
	})
	return rm
}

// bestPermutation assigns each label an exclusive reference index
// maximizing total agreement (exhaustive over ≤5 labels — regions have
// at most a handful of zones).
func bestPermutation(labels, refLabels []string, agreement func(label string, refIdx int) int) []int {
	n := len(labels)
	m := len(refLabels)
	if m < n {
		m = n
	}
	best := make([]int, n)
	for i := range best {
		best[i] = i
	}
	bestScore := -1
	perm := make([]int, n)
	used := make([]bool, m)
	var rec func(depth, score int)
	rec = func(depth, score int) {
		if depth == n {
			if score > bestScore {
				bestScore = score
				copy(best, perm)
			}
			return
		}
		for idx := 0; idx < m; idx++ {
			if used[idx] {
				continue
			}
			used[idx] = true
			perm[depth] = idx
			rec(depth+1, score+agreement(labels[depth], idx))
			used[idx] = false
		}
	}
	rec(0, 0)
	return best
}

// Identify returns the zone (reference label space) for a target's
// internal IP, or ok=false when no sampled /16 matches.
func (pm *ProximityMap) Identify(region string, internal netaddr.IP) (int, bool) {
	m := pm.ZoneOf16[region]
	if m == nil {
		return 0, false
	}
	z, ok := m[internal.Prefix(16)]
	return z, ok
}

// Index builds a prefix → zone map at an arbitrary granularity for the
// proximity ablation: coarser prefixes match more targets but mix
// zones (majority vote), finer prefixes match fewer.
func (pm *ProximityMap) Index(region string, prefixBits int) map[netaddr.IP]int {
	votes := map[netaddr.IP]map[int]int{}
	for _, s := range pm.samples[region] {
		p := s.ip.Prefix(prefixBits)
		if votes[p] == nil {
			votes[p] = map[int]int{}
		}
		votes[p][s.zone]++
	}
	out := make(map[netaddr.IP]int, len(votes))
	for p, vs := range votes {
		bestZ, bestN := -1, 0
		for z, n := range vs {
			// Ties go to the lowest zone so the index never depends on
			// map iteration order.
			if n > bestN || (n == bestN && z < bestZ) {
				bestZ, bestN = z, n
			}
		}
		out[p] = bestZ
	}
	return out
}

// IdentifyAt identifies via an Index built at prefixBits.
func IdentifyAt(index map[netaddr.IP]int, internal netaddr.IP, prefixBits int) (int, bool) {
	z, ok := index[internal.Prefix(prefixBits)]
	return z, ok
}
