package cartography

import (
	"reflect"
	"testing"

	"cloudscope/internal/cloud"
	"cloudscope/internal/parallel"
	"cloudscope/internal/xrand"
)

// fuzzSamples builds a multi-account sample set with overlapping /16
// evidence — the input shape MergeAccounts' commit step folds.
func fuzzSamples() []Sample {
	c := cloud.NewEC2(31)
	ref := c.NewAccount("fuzz-ref")
	return SampleAccounts(c, ref, 3, 4, Options{Seed: 31, Par: parallel.Options{Workers: 1}})
}

// pmEqual compares the externally observable state of two proximity
// maps: reference, zone map, recovered permutations, and the indexes
// built from retained samples at both paper granularities.
func pmEqual(t *testing.T, a, b *ProximityMap) {
	t.Helper()
	if a.Reference != b.Reference {
		t.Errorf("Reference %q != %q", a.Reference, b.Reference)
	}
	if !reflect.DeepEqual(a.ZoneOf16, b.ZoneOf16) {
		t.Error("ZoneOf16 differs")
	}
	if !reflect.DeepEqual(a.Permutations, b.Permutations) {
		t.Error("Permutations differ")
	}
	for region := range a.ZoneOf16 {
		for _, bits := range []int{16, 24} {
			if !reflect.DeepEqual(a.Index(region, bits), b.Index(region, bits)) {
				t.Errorf("Index(%s, /%d) differs", region, bits)
			}
		}
	}
}

// FuzzMergeAccountsOrder fuzzes the commit-step ordering contract: with
// an explicit reference account, MergeAccounts must build the same
// proximity map from any arrival order of the same sample set, at any
// worker count and shard layout.
func FuzzMergeAccountsOrder(f *testing.F) {
	samples := fuzzSamples()
	golden := MergeAccounts(samples, "fuzz-ref", Options{Par: parallel.Options{Workers: 1}})
	f.Add(int64(1), uint8(1), uint8(0))
	f.Add(int64(42), uint8(4), uint8(1))
	f.Add(int64(-7), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, shuffleSeed int64, workers, shardSize uint8) {
		shuffled := append([]Sample(nil), samples...)
		rng := xrand.New(shuffleSeed)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		opt := parallel.Options{Workers: int(workers%8) + 1, ShardSize: int(shardSize % 16)}
		pmEqual(t, golden, MergeAccounts(shuffled, "fuzz-ref", Options{Par: opt}))
	})
}

// TestMergeAccountsArrivalOrderInvariant is the deterministic slice of
// the fuzz target, exercised on every test run (and under -race as the
// merge fan-out's stress test).
func TestMergeAccountsArrivalOrderInvariant(t *testing.T) {
	samples := fuzzSamples()
	golden := MergeAccounts(samples, "fuzz-ref", Options{Par: parallel.Options{Workers: 1}})
	for _, shuffleSeed := range []int64{1, 2, 3, 99} {
		shuffled := append([]Sample(nil), samples...)
		rng := xrand.New(shuffleSeed)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		for _, workers := range []int{1, 4} {
			pmEqual(t, golden, MergeAccounts(shuffled, "fuzz-ref", Options{Par: parallel.Options{Workers: workers, ShardSize: 1}}))
		}
	}
}

// TestSampleAccountsWorkerCountInvariant checks the plan/commit launch
// schedule yields the same samples at every worker count. Each worker
// count gets its own cloud: launches move shared allocator cursors, so
// only clouds with identical histories compare.
func TestSampleAccountsWorkerCountInvariant(t *testing.T) {
	sample := func(workers int) []Sample {
		c := cloud.NewEC2(32)
		ref := c.NewAccount("inv-ref")
		return SampleAccounts(c, ref, 3, 4, Options{Seed: 32, Par: parallel.Options{Workers: workers, ShardSize: 1}})
	}
	golden := sample(1)
	for _, workers := range []int{2, 4} {
		if got := sample(workers); !reflect.DeepEqual(got, golden) {
			t.Errorf("samples differ at Workers=%d", workers)
		}
	}
}
