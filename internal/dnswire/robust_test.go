package dnswire

import (
	"testing"
	"testing/quick"

	"cloudscope/internal/netaddr"
)

// Robustness: Unpack must never panic, whatever the bytes. The paper's
// tooling parsed millions of answers from the wild; ours gets the same
// guarantee via property testing.

func TestUnpackNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		_, _ = Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackNeverPanicsOnMutatedMessages(t *testing.T) {
	m := NewQuery(7, "www.example.com", TypeA).Reply()
	m.Answers = []RR{
		{Name: "www.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 60, Target: "edge.example.net"},
		{Name: "edge.example.net", Type: TypeA, Class: ClassIN, TTL: 60, IP: netaddr.MustParseIP("54.230.1.1")},
		{Name: "example.com", Type: TypeSOA, Class: ClassIN, TTL: 60, SOA: SOAData{MName: "ns1.example.com", RName: "h.example.com"}},
		{Name: "t.example.com", Type: TypeTXT, Class: ClassIN, TTL: 60, Text: "hello"},
	}
	base, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, val byte, cut uint16) bool {
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] = val
		data = data[:len(data)-int(cut)%len(data)]
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on mutation pos=%d val=%d cut=%d: %v", pos, val, cut, r)
			}
		}()
		_, _ = Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
