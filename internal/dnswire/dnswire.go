// Package dnswire implements the RFC 1035 DNS message format: header,
// question and resource-record sections, domain-name encoding with
// message compression, and the record types the study's probing needs
// (A, NS, CNAME, SOA, TXT) plus the AXFR and ANY query types.
//
// The codec is strict on decode (malformed messages return errors, and
// compression-pointer loops are rejected) and canonical on encode
// (names are lower-cased; compression is applied to every name).
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"cloudscope/internal/netaddr"
)

// Type is a DNS RR or query type.
type Type uint16

// Record and query types used by the study.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeTXT   Type = 16
	TypeAXFR  Type = 252 // query-only
	TypeANY   Type = 255 // query-only
)

// String returns the conventional mnemonic.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeTXT:
		return "TXT"
	case TypeAXFR:
		return "AXFR"
	case TypeANY:
		return "ANY"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a response code.
type RCode uint8

// Response codes (RFC 1035 §4.1.1, plus REFUSED).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the conventional mnemonic.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// Header is the fixed 12-byte DNS message header, with flags unpacked.
type Header struct {
	ID                 uint16
	Response           bool // QR
	Opcode             uint8
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode
}

// Question is one entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName, RName                            string
	Serial, Refresh, Retry, Expire, Minimum uint32
}

// RR is a resource record. Exactly one of the data fields is meaningful,
// selected by Type: A→IP, NS/CNAME→Target, TXT→Text, SOA→SOA.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	IP     netaddr.IP // A
	Target string     // NS, CNAME
	Text   string     // TXT
	SOA    SOAData    // SOA
}

// String renders the record in zone-file style.
func (r RR) String() string {
	switch r.Type {
	case TypeA:
		return fmt.Sprintf("%s %d IN A %s", r.Name, r.TTL, r.IP)
	case TypeNS:
		return fmt.Sprintf("%s %d IN NS %s", r.Name, r.TTL, r.Target)
	case TypeCNAME:
		return fmt.Sprintf("%s %d IN CNAME %s", r.Name, r.TTL, r.Target)
	case TypeTXT:
		return fmt.Sprintf("%s %d IN TXT %q", r.Name, r.TTL, r.Text)
	case TypeSOA:
		return fmt.Sprintf("%s %d IN SOA %s %s %d", r.Name, r.TTL, r.SOA.MName, r.SOA.RName, r.SOA.Serial)
	}
	return fmt.Sprintf("%s %d IN %s", r.Name, r.TTL, r.Type)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursive query for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: CanonicalName(name), Type: t, Class: ClassIN}},
	}
}

// Reply builds a response skeleton mirroring q's ID and question.
func (m *Message) Reply() *Message {
	r := &Message{Header: Header{
		ID:               m.Header.ID,
		Response:         true,
		Opcode:           m.Header.Opcode,
		RecursionDesired: m.Header.RecursionDesired,
	}}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// CanonicalName lower-cases a domain name and strips one trailing dot.
func CanonicalName(name string) string {
	name = strings.ToLower(name)
	return strings.TrimSuffix(name, ".")
}

// maxNameLen is the RFC 1035 limit on an encoded name.
const maxNameLen = 255

var (
	errShortMessage = errors.New("dnswire: truncated message")
	errBadName      = errors.New("dnswire: malformed domain name")
	errPointerLoop  = errors.New("dnswire: compression pointer loop")
)

// encoder carries compression state while packing a message.
type encoder struct {
	buf     []byte
	offsets map[string]int
}

func (e *encoder) uint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

func (e *encoder) uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// name appends a possibly-compressed encoding of a domain name.
func (e *encoder) name(name string) error {
	name = CanonicalName(name)
	if len(name)+1 > maxNameLen {
		return errBadName
	}
	for name != "" {
		if off, ok := e.offsets[name]; ok && off < 0x3fff {
			e.uint16(uint16(off) | 0xc000)
			return nil
		}
		if len(e.buf) < 0x3fff {
			e.offsets[name] = len(e.buf)
		}
		label := name
		if dot := strings.IndexByte(name, '.'); dot >= 0 {
			label, name = name[:dot], name[dot+1:]
		} else {
			name = ""
		}
		if label == "" || len(label) > 63 {
			return errBadName
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.buf = append(e.buf, 0)
	return nil
}

func (e *encoder) rr(r RR) error {
	if err := e.name(r.Name); err != nil {
		return err
	}
	e.uint16(uint16(r.Type))
	e.uint16(uint16(r.Class))
	e.uint32(r.TTL)
	lenAt := len(e.buf)
	e.uint16(0) // rdlength placeholder
	start := len(e.buf)
	switch r.Type {
	case TypeA:
		e.uint32(uint32(r.IP))
	case TypeNS, TypeCNAME:
		if err := e.name(r.Target); err != nil {
			return err
		}
	case TypeTXT:
		// Single character-string; long text split into 255-byte chunks.
		text := r.Text
		for len(text) > 255 {
			e.buf = append(e.buf, 255)
			e.buf = append(e.buf, text[:255]...)
			text = text[255:]
		}
		e.buf = append(e.buf, byte(len(text)))
		e.buf = append(e.buf, text...)
	case TypeSOA:
		if err := e.name(r.SOA.MName); err != nil {
			return err
		}
		if err := e.name(r.SOA.RName); err != nil {
			return err
		}
		e.uint32(r.SOA.Serial)
		e.uint32(r.SOA.Refresh)
		e.uint32(r.SOA.Retry)
		e.uint32(r.SOA.Expire)
		e.uint32(r.SOA.Minimum)
	default:
		return fmt.Errorf("dnswire: cannot encode RR type %s", r.Type)
	}
	rdlen := len(e.buf) - start
	if rdlen > 0xffff {
		return errors.New("dnswire: rdata too long")
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(rdlen))
	return nil
}

// Pack serializes the message to wire format.
func (m *Message) Pack() ([]byte, error) {
	e := &encoder{offsets: make(map[string]int)}
	var flags uint16
	h := m.Header
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xf) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode) & 0xf
	e.uint16(h.ID)
	e.uint16(flags)
	e.uint16(uint16(len(m.Questions)))
	e.uint16(uint16(len(m.Answers)))
	e.uint16(uint16(len(m.Authority)))
	e.uint16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		if err := e.name(q.Name); err != nil {
			return nil, err
		}
		e.uint16(uint16(q.Type))
		e.uint16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, r := range sec {
			if err := e.rr(r); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

// decoder carries state while unpacking.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uint16() (uint16, error) {
	if d.off+2 > len(d.buf) {
		return 0, errShortMessage
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, errShortMessage
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// name reads a possibly-compressed domain name starting at d.off.
func (d *decoder) name() (string, error) {
	s, next, err := readName(d.buf, d.off)
	if err != nil {
		return "", err
	}
	d.off = next
	return s, nil
}

// readName decodes a name at off, returning the name and the offset just
// past its in-place encoding (compression pointers are followed but do
// not advance the caller's position beyond the pointer itself).
func readName(buf []byte, off int) (string, int, error) {
	var sb strings.Builder
	next := -1 // offset after the first pointer, set once
	hops := 0
	for {
		if off >= len(buf) {
			return "", 0, errShortMessage
		}
		b := buf[off]
		switch {
		case b == 0:
			if next < 0 {
				next = off + 1
			}
			name := sb.String()
			if len(name) > maxNameLen {
				return "", 0, errBadName
			}
			return name, next, nil
		case b&0xc0 == 0xc0:
			if off+2 > len(buf) {
				return "", 0, errShortMessage
			}
			if next < 0 {
				next = off + 2
			}
			ptr := int(binary.BigEndian.Uint16(buf[off:]) & 0x3fff)
			if ptr >= off {
				return "", 0, errPointerLoop
			}
			hops++
			if hops > 32 {
				return "", 0, errPointerLoop
			}
			off = ptr
		case b&0xc0 != 0:
			return "", 0, errBadName
		default:
			l := int(b)
			if off+1+l > len(buf) {
				return "", 0, errShortMessage
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(buf[off+1 : off+1+l])
			off += 1 + l
			if sb.Len() > maxNameLen {
				return "", 0, errBadName
			}
		}
	}
}

func (d *decoder) rr() (RR, error) {
	var r RR
	name, err := d.name()
	if err != nil {
		return r, err
	}
	r.Name = name
	t, err := d.uint16()
	if err != nil {
		return r, err
	}
	r.Type = Type(t)
	c, err := d.uint16()
	if err != nil {
		return r, err
	}
	r.Class = Class(c)
	ttl, err := d.uint32()
	if err != nil {
		return r, err
	}
	r.TTL = ttl
	rdlen, err := d.uint16()
	if err != nil {
		return r, err
	}
	end := d.off + int(rdlen)
	if end > len(d.buf) {
		return r, errShortMessage
	}
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, fmt.Errorf("dnswire: A record rdlength %d", rdlen)
		}
		v, _ := d.uint32()
		r.IP = netaddr.IP(v)
	case TypeNS, TypeCNAME:
		tgt, err := d.name()
		if err != nil {
			return r, err
		}
		r.Target = tgt
	case TypeTXT:
		var sb strings.Builder
		for d.off < end {
			l := int(d.buf[d.off])
			d.off++
			if d.off+l > end {
				return r, errShortMessage
			}
			sb.Write(d.buf[d.off : d.off+l])
			d.off += l
		}
		r.Text = sb.String()
	case TypeSOA:
		if r.SOA.MName, err = d.name(); err != nil {
			return r, err
		}
		if r.SOA.RName, err = d.name(); err != nil {
			return r, err
		}
		for _, p := range []*uint32{&r.SOA.Serial, &r.SOA.Refresh, &r.SOA.Retry, &r.SOA.Expire, &r.SOA.Minimum} {
			if *p, err = d.uint32(); err != nil {
				return r, err
			}
		}
	default:
		// Unknown RDATA is skipped, not an error: real resolvers must
		// tolerate types they do not understand.
		d.off = end
	}
	if d.off != end {
		return r, fmt.Errorf("dnswire: rdata length mismatch for %s", r.Type)
	}
	return r, nil
}

// Unpack parses a wire-format message.
func Unpack(buf []byte) (*Message, error) {
	d := &decoder{buf: buf}
	m := &Message{}
	id, err := d.uint16()
	if err != nil {
		return nil, err
	}
	flags, err := d.uint16()
	if err != nil {
		return nil, err
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&(1<<15) != 0,
		Opcode:             uint8(flags >> 11 & 0xf),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xf),
	}
	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = d.uint16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = d.name(); err != nil {
			return nil, err
		}
		t, err := d.uint16()
		if err != nil {
			return nil, err
		}
		c, err := d.uint16()
		if err != nil {
			return nil, err
		}
		q.Type, q.Class = Type(t), Class(c)
		m.Questions = append(m.Questions, q)
	}
	for s, n := range []uint16{counts[1], counts[2], counts[3]} {
		for i := 0; i < int(n); i++ {
			r, err := d.rr()
			if err != nil {
				return nil, err
			}
			switch s {
			case 0:
				m.Answers = append(m.Answers, r)
			case 1:
				m.Authority = append(m.Authority, r)
			default:
				m.Additional = append(m.Additional, r)
			}
		}
	}
	return m, nil
}
