package dnswire

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"cloudscope/internal/netaddr"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	buf, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return got
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "WWW.Example.COM.", TypeA)
	got := roundTrip(t, q)
	if got.Header.ID != 0x1234 || got.Header.Response || !got.Header.RecursionDesired {
		t.Fatalf("header: %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions: %d", len(got.Questions))
	}
	if got.Questions[0].Name != "www.example.com" {
		t.Fatalf("name not canonical: %q", got.Questions[0].Name)
	}
	if got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Fatalf("question: %+v", got.Questions[0])
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "a.example.com", TypeA)
	r := q.Reply()
	r.Header.Authoritative = true
	r.Header.RecursionAvailable = true
	r.Header.RCode = RCodeNoError
	r.Answers = append(r.Answers,
		RR{Name: "a.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: "lb-1.elb.amazonaws.com"},
		RR{Name: "lb-1.elb.amazonaws.com", Type: TypeA, Class: ClassIN, TTL: 60, IP: netaddr.MustParseIP("54.230.1.9")},
	)
	r.Authority = append(r.Authority, RR{Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 3600, Target: "ns1.example.com"})
	r.Additional = append(r.Additional, RR{Name: "ns1.example.com", Type: TypeA, Class: ClassIN, TTL: 3600, IP: netaddr.MustParseIP("9.9.9.9")})

	got := roundTrip(t, r)
	if !got.Header.Response || !got.Header.Authoritative || !got.Header.RecursionAvailable {
		t.Fatalf("flags: %+v", got.Header)
	}
	if len(got.Answers) != 2 || len(got.Authority) != 1 || len(got.Additional) != 1 {
		t.Fatalf("sections: %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	if got.Answers[0].Target != "lb-1.elb.amazonaws.com" {
		t.Fatalf("cname: %q", got.Answers[0].Target)
	}
	if got.Answers[1].IP != netaddr.MustParseIP("54.230.1.9") {
		t.Fatalf("a: %v", got.Answers[1].IP)
	}
	if got.Authority[0].Type != TypeNS || got.Authority[0].Target != "ns1.example.com" {
		t.Fatalf("ns: %+v", got.Authority[0])
	}
}

func TestCompressionShrinksAndDecodes(t *testing.T) {
	m := NewQuery(1, "host.example.com", TypeA).Reply()
	for i := 0; i < 10; i++ {
		m.Answers = append(m.Answers, RR{
			Name: "host.example.com", Type: TypeA, Class: ClassIN, TTL: 60,
			IP: netaddr.IP(0x0a000000 + uint32(i)),
		})
	}
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Without compression each answer name costs 18 bytes; with
	// compression the repeats cost 2. 10 answers ≈ 160 bytes saved.
	if len(buf) > 12+22+10*(2+10)+40 {
		t.Fatalf("message suspiciously large (%d bytes): compression not applied?", len(buf))
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got.Answers {
		if a.Name != "host.example.com" {
			t.Fatalf("answer %d name %q", i, a.Name)
		}
	}
}

func TestSOARoundTrip(t *testing.T) {
	m := NewQuery(2, "example.com", TypeSOA).Reply()
	m.Answers = append(m.Answers, RR{
		Name: "example.com", Type: TypeSOA, Class: ClassIN, TTL: 3600,
		SOA: SOAData{MName: "ns1.example.com", RName: "hostmaster.example.com",
			Serial: 2013032701, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300},
	})
	got := roundTrip(t, m)
	s := got.Answers[0].SOA
	if s.MName != "ns1.example.com" || s.Serial != 2013032701 || s.Minimum != 300 {
		t.Fatalf("soa: %+v", s)
	}
}

func TestTXTRoundTripLong(t *testing.T) {
	long := strings.Repeat("x", 600)
	m := NewQuery(3, "t.example.com", TypeTXT).Reply()
	m.Answers = append(m.Answers, RR{Name: "t.example.com", Type: TypeTXT, Class: ClassIN, TTL: 60, Text: long})
	got := roundTrip(t, m)
	if got.Answers[0].Text != long {
		t.Fatalf("txt length %d", len(got.Answers[0].Text))
	}
}

func TestNXDomainReply(t *testing.T) {
	q := NewQuery(9, "nope.example.com", TypeA)
	r := q.Reply()
	r.Header.RCode = RCodeNXDomain
	got := roundTrip(t, r)
	if got.Header.RCode != RCodeNXDomain {
		t.Fatalf("rcode = %v", got.Header.RCode)
	}
}

func TestUnpackTruncated(t *testing.T) {
	m := NewQuery(4, "www.example.com", TypeA)
	buf, _ := m.Pack()
	for _, n := range []int{0, 5, 11, len(buf) - 1} {
		if _, err := Unpack(buf[:n]); err == nil {
			t.Errorf("Unpack of %d/%d bytes succeeded", n, len(buf))
		}
	}
}

func TestUnpackPointerLoop(t *testing.T) {
	// Header with QDCOUNT=1, then a name that is a pointer to itself.
	buf := make([]byte, 12, 18)
	buf[5] = 1 // qdcount
	buf = append(buf, 0xc0, 12, 0, 1, 0, 1)
	if _, err := Unpack(buf); err == nil {
		t.Fatal("self-pointer accepted")
	}
}

func TestEncodeBadNames(t *testing.T) {
	for _, name := range []string{
		strings.Repeat("a", 64) + ".com",       // label > 63
		strings.Repeat("abcdefg.", 40) + "com", // name > 255
		"double..dot.com",                      // empty label
	} {
		m := NewQuery(1, name, TypeA)
		if _, err := m.Pack(); err == nil {
			t.Errorf("Pack accepted bad name %q", name)
		}
	}
}

func TestRootNameEncodes(t *testing.T) {
	m := NewQuery(1, ".", TypeNS)
	got := roundTrip(t, m)
	if got.Questions[0].Name != "" {
		t.Fatalf("root name decoded as %q", got.Questions[0].Name)
	}
}

func TestUnknownRDataSkipped(t *testing.T) {
	// Hand-craft a response with an unknown type (99) then an A record;
	// the A record must still decode.
	m := NewQuery(5, "x.com", TypeANY).Reply()
	m.Answers = append(m.Answers, RR{Name: "x.com", Type: TypeA, Class: ClassIN, TTL: 1, IP: 42})
	buf, _ := m.Pack()
	// Splice an unknown-type RR before the A record is not trivial by
	// hand; instead verify decoder tolerance by rewriting the A type to
	// 99 and checking it skips 4 bytes cleanly.
	idx := bytes.Index(buf, []byte{0, 1, 0, 1, 0, 0, 0, 1, 0, 4}) // TYPE A, CLASS IN, TTL 1, RDLEN 4
	if idx < 0 {
		t.Fatal("could not locate A rr in packed bytes")
	}
	buf[idx+1] = 99
	got, err := Unpack(buf)
	if err != nil {
		t.Fatalf("Unpack with unknown type: %v", err)
	}
	if got.Answers[0].Type != Type(99) {
		t.Fatalf("type = %v", got.Answers[0].Type)
	}
}

func TestTypeAndRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeAXFR.String() != "AXFR" || Type(77).String() != "TYPE77" {
		t.Fatal("Type.String wrong")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(9).String() != "RCODE9" {
		t.Fatal("RCode.String wrong")
	}
}

func TestRRString(t *testing.T) {
	r := RR{Name: "a.com", Type: TypeA, TTL: 60, IP: netaddr.MustParseIP("1.2.3.4")}
	if got := r.String(); !strings.Contains(got, "1.2.3.4") || !strings.Contains(got, "A") {
		t.Fatalf("RR.String = %q", got)
	}
}

func TestCanonicalName(t *testing.T) {
	if CanonicalName("WwW.ExAmPle.COM.") != "www.example.com" {
		t.Fatal("CanonicalName wrong")
	}
}

func TestPackUnpackProperty(t *testing.T) {
	// Property: messages built from arbitrary label content that passes
	// validation survive a pack/unpack round trip.
	f := func(id uint16, a, b uint8, ip uint32) bool {
		name := strings.ToLower(strings.Map(func(r rune) rune {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
				return r
			}
			return 'x'
		}, string(rune('a'+a%26))+string(rune('a'+b%26)))) + ".example.com"
		m := NewQuery(id, name, TypeA).Reply()
		m.Answers = []RR{{Name: name, Type: TypeA, Class: ClassIN, TTL: 60, IP: netaddr.IP(ip)}}
		buf, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(buf)
		if err != nil {
			return false
		}
		return got.Header.ID == id && got.Answers[0].IP == netaddr.IP(ip) && got.Answers[0].Name == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageWithManyRecordsAXFRStyle(t *testing.T) {
	// Zone transfers return large multi-record messages; check a 500-RR
	// message survives.
	m := NewQuery(11, "example.com", TypeAXFR).Reply()
	for i := 0; i < 500; i++ {
		m.Answers = append(m.Answers, RR{
			Name: "h" + strings.Repeat("x", i%5) + ".example.com",
			Type: TypeA, Class: ClassIN, TTL: 60, IP: netaddr.IP(i),
		})
	}
	got := roundTrip(t, m)
	if len(got.Answers) != 500 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	if got.Answers[499].IP != 499 {
		t.Fatal("last answer corrupted")
	}
}
