package dnswire

import (
	"testing"

	"cloudscope/internal/netaddr"
)

func benchMessage() *Message {
	m := NewQuery(7, "www.example.com", TypeA).Reply()
	m.Answers = []RR{
		{Name: "www.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: "lb-1234.us-east-1.elb.amazonaws.com"},
		{Name: "lb-1234.us-east-1.elb.amazonaws.com", Type: TypeA, Class: ClassIN, TTL: 60, IP: netaddr.MustParseIP("54.230.1.9")},
		{Name: "lb-1234.us-east-1.elb.amazonaws.com", Type: TypeA, Class: ClassIN, TTL: 60, IP: netaddr.MustParseIP("54.230.1.10")},
	}
	m.Authority = []RR{{Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 3600, Target: "ns1.example.com"}}
	return m
}

func BenchmarkPack(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	buf, err := benchMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(buf); err != nil {
			b.Fatal(err)
		}
	}
}
