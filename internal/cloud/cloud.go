// Package cloud models the 2013-era IaaS providers the paper studies:
// regions containing availability zones, VM instances with public and
// internal addresses, per-account zone-label permutations, and the
// value-added front-end features whose DNS footprints the paper's
// heuristics detect — Elastic Load Balancers, PaaS environments
// (Heroku, Elastic Beanstalk), CloudFront, Azure Cloud Services, and
// Azure Traffic Manager.
//
// Two properties of the real clouds matter for reproducing the paper
// and are modelled carefully:
//
//   - Public IPs come from published per-region ranges (so DNS answers
//     reveal region), while internal 10/8 addresses are carved into
//     /16 blocks owned by specific availability zones (so internal-
//     address proximity reveals zone — Ristenpart et al.'s cartography).
//   - EC2 zone *labels* are permuted per account: one account's
//     us-east-1a may be another's us-east-1c. Cartography must merge
//     observations across accounts by finding the permutation.
package cloud

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/xrand"
)

// InstanceType names the 2013 EC2 instance sizes used in Table 11.
var InstanceTypes = []string{"t1.micro", "m1.small", "m1.medium", "m1.xlarge", "m3.2xlarge"}

// zoneCounts gives the number of availability zones per EC2 region the
// study could observe (Tables 12, 14 and 16). Azure has no zone concept.
var zoneCounts = map[string]int{
	"ec2.us-east-1":      3,
	"ec2.us-west-1":      2,
	"ec2.us-west-2":      3,
	"ec2.eu-west-1":      3,
	"ec2.ap-northeast-1": 2,
	"ec2.ap-southeast-1": 2,
	"ec2.ap-southeast-2": 2,
	"ec2.sa-east-1":      2,
}

// Instance is one allocated machine: a tenant VM, a physical ELB proxy,
// or a PaaS node. Public-facing allocations always have a PublicIP;
// InternalIP is set for everything inside EC2's private network.
type Instance struct {
	ID         string
	Type       string
	Kind       Kind
	Region     string
	ZoneIndex  int // true (provider-side) zone; -1 when the region has no zones
	PublicIP   netaddr.IP
	InternalIP netaddr.IP
}

// Kind classifies what an Instance is used as.
type Kind string

// Instance kinds.
const (
	KindVM       Kind = "vm"
	KindELBProxy Kind = "elb-proxy"
	KindPaaSNode Kind = "paas-node"
	KindCSNode   Kind = "cs-node"
	KindNS       Kind = "nameserver"
	KindEdge     Kind = "cdn-edge"
)

// Zone is one availability zone of a region.
type Zone struct {
	Region string
	Index  int
	// internalBlocks are the /16 prefixes of 10/8 owned by this zone.
	internalBlocks []netaddr.CIDR
	nextInternal   []uint64 // per-block allocation cursor
}

// Region is one geographic data center with its published address space.
type Region struct {
	ID     string
	Zones  []*Zone
	cidrs  []netaddr.CIDR
	taken  *ipBitmap
	cursor int    // index into cidrs
	offset uint64 // next address within cidrs[cursor]
	// dense is set after the scattered first pass exhausts the ranges;
	// a second pass walks every remaining address before giving up.
	dense bool
}

// ipBitmap is a one-bit-per-address allocation map over a list of
// disjoint CIDRs. It is the collision-check backbone that lets the
// allocator run without retaining *Instance records: the published
// lists guarantee ranges never overlap across regions or providers, so
// a per-region bitmap answers "is this IP taken" exactly as the global
// instance map did, in size/8 bytes instead of O(instances) heap.
type ipBitmap struct {
	cidrs []netaddr.CIDR
	offs  []uint64 // cumulative bit offset of each cidr
	bits  []uint64
}

func newIPBitmap(cidrs []netaddr.CIDR) *ipBitmap {
	b := &ipBitmap{cidrs: cidrs}
	total := uint64(0)
	for _, c := range cidrs {
		b.offs = append(b.offs, total)
		total += c.Size()
	}
	b.bits = make([]uint64, (total+63)/64)
	return b
}

// index maps ip to its bit position, or ok=false when ip is outside
// every covered CIDR.
func (b *ipBitmap) index(ip netaddr.IP) (uint64, bool) {
	for i, c := range b.cidrs {
		if c.Contains(ip) {
			return b.offs[i] + uint64(ip-c.Base), true
		}
	}
	return 0, false
}

func (b *ipBitmap) taken(ip netaddr.IP) bool {
	i, ok := b.index(ip)
	return ok && b.bits[i/64]&(1<<(i%64)) != 0
}

func (b *ipBitmap) set(ip netaddr.IP) {
	if i, ok := b.index(ip); ok {
		b.bits[i/64] |= 1 << (i % 64)
	}
}

// Cloud is one provider's infrastructure.
type Cloud struct {
	Provider ipranges.Provider
	Ranges   *ipranges.List

	mu         sync.Mutex
	regions    map[string]*Region
	regionIDs  []string
	instances  map[netaddr.IP]*Instance // by public IP (retain mode only)
	byInternal map[netaddr.IP]*Instance
	nextID     int
	numAlloc   int
	rng        *xrand.Rand
	// retain keeps per-instance records for the reverse lookups
	// (InstanceAt, InternalFor, Instances). Streaming world generation
	// turns it off so instance count no longer drives heap: collision
	// checks then run purely on the allocation bitmaps, which are
	// maintained in both modes and — because published ranges are
	// disjoint — decide exactly as the maps did.
	retain bool

	// cfCursor allocates CloudFront edge IPs (EC2 cloud only).
	cfCIDRs  []netaddr.CIDR
	cfTaken  *ipBitmap
	cfCursor uint64

	feats *features

	// metrics is read on the probe hot path, so it bypasses mu.
	metrics atomic.Pointer[ProbeMetrics]
}

// New builds a provider model over the published ranges. For EC2 each
// region gets its zone count from the 2013 layout and internal /16
// blocks are dealt out of 10/8 in a seed-determined interleaving; Azure
// regions have a single anonymous zone.
func New(provider ipranges.Provider, ranges *ipranges.List, seed int64) *Cloud {
	c := &Cloud{
		Provider:   provider,
		Ranges:     ranges,
		regions:    make(map[string]*Region),
		instances:  make(map[netaddr.IP]*Instance),
		byInternal: make(map[netaddr.IP]*Instance),
		retain:     true,
		rng:        xrand.SplitSeeded(seed, "cloud/"+string(provider)),
	}
	regionIDs := ranges.Regions(provider)
	// Deal /16 blocks of 10.0.0.0/8 to (region, zone) pairs in a
	// shuffled order so zones interleave through internal address space
	// (the structure Figure 7 visualizes).
	type owner struct {
		region string
		zone   int
	}
	var owners []owner
	for _, rid := range regionIDs {
		zc := zoneCounts[rid]
		if zc == 0 {
			zc = 1
		}
		blocksPerZone := 4
		if rid == "ec2.us-east-1" {
			blocksPerZone = 10
		}
		for z := 0; z < zc; z++ {
			for b := 0; b < blocksPerZone; b++ {
				owners = append(owners, owner{rid, z})
			}
		}
	}
	blockOrder := c.rng.Split("blocks").Perm(256)
	if len(owners) > 256 {
		panic("cloud: internal /16 plan exhausted")
	}
	assignments := make(map[owner][]netaddr.CIDR)
	for i, o := range owners {
		second := blockOrder[i]
		cidr := netaddr.CIDR{Base: netaddr.IP(10<<24 | uint32(second)<<16), Bits: 16}
		assignments[o] = append(assignments[o], cidr)
	}
	for _, rid := range regionIDs {
		zc := zoneCounts[rid]
		if zc == 0 {
			zc = 1
		}
		r := &Region{ID: rid, cidrs: ranges.RegionCIDRs(rid)}
		r.taken = newIPBitmap(r.cidrs)
		for z := 0; z < zc; z++ {
			blocks := assignments[owner{rid, z}]
			r.Zones = append(r.Zones, &Zone{
				Region:         rid,
				Index:          z,
				internalBlocks: blocks,
				nextInternal:   make([]uint64, len(blocks)),
			})
		}
		c.regions[rid] = r
		c.regionIDs = append(c.regionIDs, rid)
	}
	if provider == ipranges.EC2 {
		c.cfCIDRs = ranges.RegionCIDRs("cloudfront.global")
		c.cfTaken = newIPBitmap(c.cfCIDRs)
	}
	c.feats = newFeatures(provider)
	return c
}

// NewEC2 builds the EC2 model over the standard published list.
func NewEC2(seed int64) *Cloud { return New(ipranges.EC2, ipranges.Published(), seed) }

// NewAzure builds the Azure model over the standard published list.
func NewAzure(seed int64) *Cloud { return New(ipranges.Azure, ipranges.Published(), seed) }

// Regions returns the provider's region IDs in published order.
func (c *Cloud) Regions() []string { return append([]string(nil), c.regionIDs...) }

// Region returns a region by ID, or nil.
func (c *Cloud) Region(id string) *Region {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.regions[id]
}

// ZoneCount returns the number of availability zones in region.
func (c *Cloud) ZoneCount(region string) int {
	r := c.Region(region)
	if r == nil {
		return 0
	}
	return len(r.Zones)
}

// allocPublicLocked takes the next public IP of region. Callers hold
// c.mu. The first pass strides irregularly so addresses look scattered;
// once it runs off the end, a dense second pass fills the gaps the
// strides skipped. Only a truly full region panics.
func (c *Cloud) allocPublicLocked(r *Region) netaddr.IP {
	for {
		if r.cursor >= len(r.cidrs) {
			if r.dense {
				panic(fmt.Sprintf("cloud: public range of %s exhausted", r.ID))
			}
			r.dense = true
			r.cursor, r.offset = 0, 0
		}
		cidr := r.cidrs[r.cursor]
		// Skip network/broadcast-ish first addresses.
		step := uint64(1)
		if !r.dense {
			step = uint64(1 + c.rng.Intn(7))
		}
		r.offset += step
		if r.offset >= cidr.Size()-1 {
			r.cursor++
			r.offset = 0
			continue
		}
		ip := cidr.Nth(r.offset)
		if r.taken.taken(ip) {
			continue
		}
		r.taken.set(ip)
		return ip
	}
}

// allocInternalLocked takes the next internal IP in zone z.
func (c *Cloud) allocInternalLocked(z *Zone) netaddr.IP {
	if len(z.internalBlocks) == 0 {
		return 0
	}
	for {
		b := c.rng.Intn(len(z.internalBlocks))
		z.nextInternal[b] += uint64(1 + c.rng.Intn(5))
		if z.nextInternal[b] >= z.internalBlocks[b].Size()-1 {
			continue
		}
		// Per-block cursors only ever advance and each /16 belongs to
		// exactly one zone, so two internal allocations can never land on
		// the same address; no occupancy check is needed.
		return z.internalBlocks[b].Nth(z.nextInternal[b])
	}
}

// Launch allocates an instance in (region, zoneIndex). A zoneIndex of -1
// picks a zone uniformly. It panics on unknown regions — generator bugs
// should fail loudly.
func (c *Cloud) Launch(region string, zoneIndex int, itype string, kind Kind) *Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.regions[region]
	if r == nil {
		panic(fmt.Sprintf("cloud: unknown region %q", region))
	}
	if zoneIndex < 0 {
		zoneIndex = c.rng.Intn(len(r.Zones))
	}
	if zoneIndex >= len(r.Zones) {
		panic(fmt.Sprintf("cloud: region %s has no zone %d", region, zoneIndex))
	}
	z := r.Zones[zoneIndex]
	c.nextID++
	inst := &Instance{
		ID:        fmt.Sprintf("i-%s%07x", shortProvider(c.Provider), c.nextID),
		Type:      itype,
		Kind:      kind,
		Region:    region,
		ZoneIndex: zoneIndex,
		PublicIP:  c.allocPublicLocked(r),
	}
	if c.Provider == ipranges.EC2 {
		inst.InternalIP = c.allocInternalLocked(z)
		if c.retain {
			c.byInternal[inst.InternalIP] = inst
		}
	}
	c.numAlloc++
	if c.retain {
		c.instances[inst.PublicIP] = inst
	}
	return inst
}

// SetRetain controls whether the cloud keeps per-instance records for
// reverse lookups (InstanceAt, InternalFor, Instances). Streaming
// world generation disables it before the first Launch so heap stays
// flat at any world size; with retain off those lookups report
// nothing. Allocation behaviour — the address sequence handed out —
// is identical in both modes.
func (c *Cloud) SetRetain(retain bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retain = retain
}

func shortProvider(p ipranges.Provider) string {
	if p == ipranges.Azure {
		return "az"
	}
	return "ec2"
}

// AllocCloudFrontIP returns a fresh CloudFront edge address (EC2 only).
func (c *Cloud) AllocCloudFrontIP() netaddr.IP {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cfCIDRs) == 0 {
		panic("cloud: provider has no CDN range")
	}
	for {
		c.cfCursor += uint64(1 + c.rng.Intn(5))
		total := uint64(0)
		for _, cidr := range c.cfCIDRs {
			total += cidr.Size()
		}
		off := c.cfCursor % total
		for _, cidr := range c.cfCIDRs {
			if off < cidr.Size() {
				ip := cidr.Nth(off)
				if !c.cfTaken.taken(ip) {
					c.cfTaken.set(ip)
					c.numAlloc++
					if c.retain {
						c.instances[ip] = &Instance{ID: fmt.Sprintf("cf-%07x", c.cfCursor), Kind: KindEdge, Region: "cloudfront.global", ZoneIndex: -1, PublicIP: ip}
					}
					return ip
				}
				break
			}
			off -= cidr.Size()
		}
	}
}

// InstanceAt returns the instance owning a public IP.
func (c *Cloud) InstanceAt(pub netaddr.IP) (*Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[pub]
	return inst, ok
}

// InternalFor maps a public IP to its internal address, modelling the
// DNS view from inside EC2 (public names resolve to internal IPs there).
func (c *Cloud) InternalFor(pub netaddr.IP) (netaddr.IP, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[pub]
	if !ok || inst.InternalIP == 0 {
		return 0, false
	}
	return inst.InternalIP, true
}

// Instances returns all allocated instances (unordered).
func (c *Cloud) Instances() []*Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Instance, 0, len(c.instances))
	for _, inst := range c.instances {
		out = append(out, inst)
	}
	return out
}

// NumInstances returns the number of allocations made, counted in both
// retain modes.
func (c *Cloud) NumInstances() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.numAlloc
}

// Account models a tenant account. EC2 presents zone labels ('a', 'b',
// ...) to each account through a private permutation of the true zones.
type Account struct {
	Name  string
	cloud *Cloud
	perms map[string][]int // region → label index → true zone index
}

// NewAccount creates an account with a fresh random label permutation
// per region (deterministic in the account name and cloud seed).
func (c *Cloud) NewAccount(name string) *Account {
	a := &Account{Name: name, cloud: c, perms: make(map[string][]int)}
	rng := c.rng.Split("account/" + name)
	for _, rid := range c.regionIDs {
		n := c.ZoneCount(rid)
		a.perms[rid] = rng.Perm(n)
	}
	return a
}

// ZoneLabels returns the labels this account sees in region: "a", "b"...
func (a *Account) ZoneLabels(region string) []string {
	n := a.cloud.ZoneCount(region)
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = string(rune('a' + i))
	}
	return out
}

// TrueZone translates an account-visible label to the provider's true
// zone index.
func (a *Account) TrueZone(region, label string) int {
	perm := a.perms[region]
	if len(label) != 1 || label[0] < 'a' || int(label[0]-'a') >= len(perm) {
		panic(fmt.Sprintf("cloud: bad zone label %q in %s", label, region))
	}
	return perm[label[0]-'a']
}

// Launch starts an instance in the zone the account knows by label.
func (a *Account) Launch(region, label, itype string) *Instance {
	return a.cloud.Launch(region, a.TrueZone(region, label), itype, KindVM)
}
