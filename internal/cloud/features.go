package cloud

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cloudscope/internal/dnssrv"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
)

// Provider DNS zone origins.
const (
	ZoneAmazonAWS      = "amazonaws.com"  // ELB and Beanstalk CNAME targets
	ZoneCloudFront     = "cloudfront.net" // CDN distribution names
	ZoneHeroku         = "heroku.com"     // proxy.heroku.com
	ZoneHerokuApp      = "herokuapp.com"  // per-app names
	ZoneAWSDNS         = "awsdns.com"     // route53 name-server host names
	ZoneCloudApp       = "cloudapp.net"   // Azure Cloud Services
	ZoneTrafficManager = "trafficmanager.net"
	ZoneMSECN          = "msecnd.net" // Azure CDN
)

// features holds the feature state lazily attached to a Cloud.
type features struct {
	mu       sync.Mutex
	zones    map[string]*dnssrv.Zone
	elbPools map[string][]*Instance // region/zone → shared physical proxies
	counter  atomic.Uint64
}

// newFeatures builds the feature state for a provider, including its
// provider-operated DNS zones.
func newFeatures(provider ipranges.Provider) *features {
	f := &features{zones: make(map[string]*dnssrv.Zone), elbPools: make(map[string][]*Instance)}
	var origins []string
	if provider == ipranges.Azure {
		origins = []string{ZoneCloudApp, ZoneTrafficManager, ZoneMSECN}
	} else {
		origins = []string{ZoneAmazonAWS, ZoneCloudFront, ZoneHeroku, ZoneHerokuApp, ZoneAWSDNS}
	}
	for _, o := range origins {
		f.zones[o] = dnssrv.NewZone(o)
	}
	return f
}

func (c *Cloud) feat() *features { return c.feats }

// ProviderZones returns the provider-operated DNS zones (amazonaws.com
// etc. for EC2; cloudapp.net etc. for Azure). Deploy them on a fabric to
// make feature CNAME targets resolvable.
func (c *Cloud) ProviderZones() []*dnssrv.Zone {
	f := c.feat()
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*dnssrv.Zone, 0, len(f.zones))
	for _, z := range f.zones {
		out = append(out, z)
	}
	return out
}

// ProviderZone returns one provider zone by origin, or nil.
func (c *Cloud) ProviderZone(origin string) *dnssrv.Zone {
	f := c.feat()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.zones[origin]
}

func (c *Cloud) nextFeatureID() uint64 { return c.feat().counter.Add(1) }

// ELB is a logical Elastic Load Balancer: a DNS name that resolves, with
// rotation, to shared physical proxy instances in one or more zones.
type ELB struct {
	Name    string // FQDN under elb.amazonaws.com
	Region  string
	Proxies []*Instance
	rot     atomic.Uint64
}

// CreateELB provisions a logical ELB in region across trueZones. Each
// zone's proxy comes from a region/zone-shared pool: with probability
// reuse an existing proxy is picked (rank-weighted, so a few proxies
// serve many subdomains, as observed), otherwise a fresh proxy instance
// is launched. The ELB's rotating DNS record is installed in the
// provider's amazonaws.com zone.
func (c *Cloud) CreateELB(base, region string, trueZones []int, reuse float64) *ELB {
	if c.Provider != ipranges.EC2 {
		panic("cloud: ELB is an EC2 feature")
	}
	f := c.feat()
	id := c.nextFeatureID()
	e := &ELB{
		Name:   fmt.Sprintf("%s-%08d.%s.elb.amazonaws.com", base, id, regionShort(region)),
		Region: region,
	}
	for _, z := range trueZones {
		key := fmt.Sprintf("%s/%d", region, z)
		f.mu.Lock()
		pool := f.elbPools[key]
		var proxy *Instance
		if len(pool) > 0 && c.rng.Bool(reuse) {
			// Rank-weighted reuse: earlier proxies are proportionally
			// more likely, giving the observed heavy sharing of a few
			// physical ELB IPs.
			i := int(float64(len(pool)) * c.rng.Float64() * c.rng.Float64())
			if i >= len(pool) {
				i = len(pool) - 1
			}
			proxy = pool[i]
			f.mu.Unlock()
		} else {
			f.mu.Unlock()
			proxy = c.Launch(region, z, "elb.proxy", KindELBProxy)
			f.mu.Lock()
			f.elbPools[key] = append(f.elbPools[key], proxy)
			f.mu.Unlock()
		}
		e.Proxies = append(e.Proxies, proxy)
	}
	zone := c.ProviderZone(ZoneAmazonAWS)
	zone.SetDynamic(e.Name, func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
		return e.records(qtype)
	})
	return e
}

// records builds the rotated answer set: ELB round-robins traffic across
// zones by rotating the order of proxy IPs in DNS replies.
func (e *ELB) records(qtype dnswire.Type) []dnswire.RR {
	if qtype != dnswire.TypeA && qtype != dnswire.TypeANY {
		return nil
	}
	n := len(e.Proxies)
	start := int(e.rot.Add(1)) % n
	out := make([]dnswire.RR, 0, n)
	for i := 0; i < n; i++ {
		p := e.Proxies[(start+i)%n]
		out = append(out, dnswire.RR{
			Name: e.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, IP: p.PublicIP,
		})
	}
	return out
}

func regionShort(region string) string {
	const pfx = "ec2."
	if len(region) > len(pfx) && region[:len(pfx)] == pfx {
		return region[len(pfx):]
	}
	return region
}

// Heroku models the Heroku PaaS of 2013: a pool of shared front-end
// routing nodes in us-east-1 multiplexing a large number of apps, a
// shared proxy.heroku.com name, and optional ELB fronting.
type Heroku struct {
	cloud *Cloud
	Pool  []*Instance
}

// NewHeroku provisions the shared routing pool (poolSize nodes spread
// across us-east-1's zones) and publishes proxy.heroku.com.
func NewHeroku(c *Cloud, poolSize int) *Heroku {
	h := &Heroku{cloud: c}
	for i := 0; i < poolSize; i++ {
		h.Pool = append(h.Pool, c.Launch("ec2.us-east-1", i%c.ZoneCount("ec2.us-east-1"), "m1.small", KindPaaSNode))
	}
	hz := c.ProviderZone(ZoneHeroku)
	hz.SetDynamic("proxy.heroku.com", func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
		if qtype != dnswire.TypeA && qtype != dnswire.TypeANY {
			return nil
		}
		// A handful of pool IPs, rotated by source for spread.
		out := make([]dnswire.RR, 0, 2)
		start := int(src) % len(h.Pool)
		for i := 0; i < 2 && i < len(h.Pool); i++ {
			out = append(out, dnswire.RR{
				Name: "proxy.heroku.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 30,
				IP: h.Pool[(start+i)%len(h.Pool)].PublicIP,
			})
		}
		return out
	})
	return h
}

// HerokuApp is one deployed application.
type HerokuApp struct {
	Name     string // FQDN under herokuapp.com
	UseProxy bool   // CNAME to proxy.heroku.com instead of own records
	ELB      *ELB   // non-nil when fronted by an ELB
	Nodes    []*Instance
}

// CreateApp deploys app "name". Exactly one of three DNS shapes results:
// CNAME to proxy.heroku.com (useProxy), CNAME to an ELB (withELB), or
// direct A records to shared pool nodes.
func (h *Heroku) CreateApp(name string, useProxy, withELB bool) *HerokuApp {
	c := h.cloud
	app := &HerokuApp{Name: name + ".herokuapp.com", UseProxy: useProxy}
	zone := c.ProviderZone(ZoneHerokuApp)
	switch {
	case withELB:
		app.ELB = c.CreateELB("heroku-"+name, "ec2.us-east-1", []int{0, 1}, 0.5)
		zone.MustAdd(dnswire.RR{Name: app.Name, Type: dnswire.TypeCNAME, TTL: 300, Target: app.ELB.Name})
	case useProxy:
		zone.MustAdd(dnswire.RR{Name: app.Name, Type: dnswire.TypeCNAME, TTL: 300, Target: "proxy.heroku.com"})
	default:
		n := 1 + int(c.nextFeatureID())%2
		for i := 0; i < n; i++ {
			node := h.Pool[int(c.nextFeatureID())%len(h.Pool)]
			app.Nodes = append(app.Nodes, node)
			zone.MustAdd(dnswire.RR{Name: app.Name, Type: dnswire.TypeA, TTL: 30, IP: node.PublicIP})
		}
	}
	return app
}

// BeanstalkEnv is an Elastic Beanstalk environment: always fronted by an
// ELB (deployment pattern P2 with PaaS nodes).
type BeanstalkEnv struct {
	Name string // FQDN under <region>.elasticbeanstalk.com — kept inside amazonaws.com zone for resolution
	ELB  *ELB
}

// CreateBeanstalk provisions an environment in region. The environment
// CNAME lives under amazonaws.com ("<name>.<region>.elasticbeanstalk...")
// is modelled as a CNAME record inside the amazonaws.com zone pointing
// at the environment's ELB.
func (c *Cloud) CreateBeanstalk(name, region string, trueZones []int) *BeanstalkEnv {
	env := &BeanstalkEnv{}
	env.ELB = c.CreateELB("awseb-"+name, region, trueZones, 0.3)
	env.Name = fmt.Sprintf("%s.%s.elasticbeanstalk.amazonaws.com", name, regionShort(region))
	c.ProviderZone(ZoneAmazonAWS).MustAdd(dnswire.RR{Name: env.Name, Type: dnswire.TypeCNAME, TTL: 300, Target: env.ELB.Name})
	return env
}

// Distribution is a CloudFront distribution: a *.cloudfront.net name
// resolving to edge addresses in the CloudFront range.
type Distribution struct {
	Name string
	IPs  []netaddr.IP
}

// CreateDistribution provisions a CloudFront distribution with n edges.
func (c *Cloud) CreateDistribution(n int) *Distribution {
	if c.Provider != ipranges.EC2 {
		panic("cloud: CloudFront is an EC2-side feature")
	}
	d := &Distribution{Name: fmt.Sprintf("d%010d.cloudfront.net", c.nextFeatureID())}
	zone := c.ProviderZone(ZoneCloudFront)
	for i := 0; i < n; i++ {
		ip := c.AllocCloudFrontIP()
		d.IPs = append(d.IPs, ip)
		zone.MustAdd(dnswire.RR{Name: d.Name, Type: dnswire.TypeA, TTL: 60, IP: ip})
	}
	return d
}

// Route53NS allocates a route53-style name server: a host name under
// awsdns.com with an address in the CloudFront range (where the paper
// observed Amazon's route53 fleet).
func (c *Cloud) Route53NS() (fqdn string, ip netaddr.IP) {
	id := c.nextFeatureID()
	fqdn = fmt.Sprintf("ns-%d.route53.awsdns.com", id)
	ip = c.AllocCloudFrontIP()
	c.ProviderZone(ZoneAWSDNS).MustAdd(dnswire.RR{Name: fqdn, Type: dnswire.TypeA, TTL: 3600, IP: ip})
	return fqdn, ip
}

// CloudService is an Azure Cloud Service: one *.cloudapp.net name, one
// public IP behind a transparent proxy; clients cannot tell whether a
// VM, VM collection, or PaaS environment is inside.
type CloudService struct {
	Name     string // FQDN under cloudapp.net
	Node     *Instance
	Contents string // "vm" | "vm-collection" | "paas" — ground truth only
}

// CreateCloudService provisions a CS in region.
func (c *Cloud) CreateCloudService(name, region, contents string) *CloudService {
	if c.Provider != ipranges.Azure {
		panic("cloud: CloudService is an Azure feature")
	}
	cs := &CloudService{
		Name:     fmt.Sprintf("%s-%06d.cloudapp.net", name, c.nextFeatureID()),
		Node:     c.Launch(region, -1, "azure.cs", KindCSNode),
		Contents: contents,
	}
	c.ProviderZone(ZoneCloudApp).MustAdd(dnswire.RR{Name: cs.Name, Type: dnswire.TypeA, TTL: 60, IP: cs.Node.PublicIP})
	return cs
}

// TrafficManager is Azure TM: a *.trafficmanager.net name that resolves,
// purely in DNS, to a CNAME for one member Cloud Service according to a
// policy.
type TrafficManager struct {
	Name    string
	Policy  string // "performance" | "failover" | "round-robin"
	Members []*CloudService
	rot     atomic.Uint64
}

// CreateTrafficManager publishes a TM over members.
func (c *Cloud) CreateTrafficManager(name, policy string, members []*CloudService) *TrafficManager {
	if c.Provider != ipranges.Azure {
		panic("cloud: TrafficManager is an Azure feature")
	}
	tm := &TrafficManager{
		Name:    fmt.Sprintf("%s-%06d.trafficmanager.net", name, c.nextFeatureID()),
		Policy:  policy,
		Members: append([]*CloudService(nil), members...),
	}
	if len(tm.Members) == 0 {
		panic("cloud: TrafficManager needs members")
	}
	c.ProviderZone(ZoneTrafficManager).SetDynamic(tm.Name, func(src netaddr.IP, qtype dnswire.Type) []dnswire.RR {
		m := tm.pick(src)
		return []dnswire.RR{{Name: tm.Name, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 30, Target: m.Name}}
	})
	return tm
}

func (tm *TrafficManager) pick(src netaddr.IP) *CloudService {
	switch tm.Policy {
	case "performance":
		// Stable per-client choice standing in for nearest-CS selection.
		return tm.Members[int(src>>8)%len(tm.Members)]
	case "failover":
		return tm.Members[0]
	default: // round-robin
		return tm.Members[int(tm.rot.Add(1))%len(tm.Members)]
	}
}

// AzureCDNEndpoint is an Azure CDN name under msecnd.net, resolving to
// addresses inside the ordinary Azure ranges (unlike CloudFront, Azure's
// CDN shares the cloud's published ranges — the paper's heuristic must
// use the msecnd.net CNAME instead of an IP range).
type AzureCDNEndpoint struct {
	Name string
	Node *Instance
}

// CreateAzureCDN provisions a CDN endpoint homed in region.
func (c *Cloud) CreateAzureCDN(region string) *AzureCDNEndpoint {
	if c.Provider != ipranges.Azure {
		panic("cloud: Azure CDN is an Azure feature")
	}
	ep := &AzureCDNEndpoint{
		Name: fmt.Sprintf("az%06d.vo.msecnd.net", c.nextFeatureID()),
		Node: c.Launch(region, -1, "azure.cdn", KindEdge),
	}
	c.ProviderZone(ZoneMSECN).MustAdd(dnswire.RR{Name: ep.Name, Type: dnswire.TypeA, TTL: 60, IP: ep.Node.PublicIP})
	return ep
}
