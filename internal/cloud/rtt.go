package cloud

import (
	"time"

	"cloudscope/internal/geo"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/xrand"
)

// ProbeMetrics counts intra-cloud measurement traffic: every ProbeRTT
// sample (the unit of the cartography and Table 11 campaigns) and its
// latency distribution. A nil *ProbeMetrics disables accounting.
type ProbeMetrics struct {
	Probes *telemetry.Counter
	RTTms  *telemetry.Histogram
}

// NewProbeMetrics registers the probe instruments on r, namespaced by
// provider ("ec2", "azure").
func NewProbeMetrics(r *telemetry.Registry, provider string) *ProbeMetrics {
	return &ProbeMetrics{
		Probes: r.Counter("cloud." + provider + ".probes"),
		RTTms:  r.Histogram("cloud."+provider+".probe_rtt_ms", telemetry.LatencyBucketsMs),
	}
}

// SetMetrics installs probe instrumentation; nil disables it. Safe to
// call concurrently with probing.
func (c *Cloud) SetMetrics(m *ProbeMetrics) {
	c.metrics.Store(m)
}

// The intra-cloud RTT model reproduces the structure Table 11 measured:
// instances in the same availability zone see ~0.5 ms round trips,
// instances in different zones of the same region see ~1.3–2.1 ms
// (with a stable per-zone-pair baseline, so "zone distance" is a
// consistent signal), and cross-region probes see wide-area propagation
// delay. On top of the baseline, every probe carries queueing noise;
// some regions are noisier than others, which drives the unknown and
// error rates of latency-based zone identification (Tables 12 and 13).

// regionNoise scales the jitter per region. Europe West was the region
// the paper could not get below a 25% error rate; it gets the most
// noise. A value of 1 means jitter comparable to the same-zone RTT.
var regionNoise = map[string]float64{
	"ec2.us-east-1":      0.5,
	"ec2.us-west-1":      0.3,
	"ec2.us-west-2":      0.35,
	"ec2.eu-west-1":      2.4,
	"ec2.ap-northeast-1": 1.3,
	"ec2.ap-southeast-1": 0.4,
	"ec2.ap-southeast-2": 0.3,
	"ec2.sa-east-1":      0.4,
}

// pairHash folds strings into a stable [0,1) value for per-pair bases.
func pairHash(parts ...string) float64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= '/'
		h *= 1099511628211
	}
	return float64(h%10000) / 10000
}

// BaseRTT returns the noise-free round-trip time between two placements.
func (c *Cloud) BaseRTT(regionA string, zoneA int, regionB string, zoneB int) time.Duration {
	if regionA != regionB {
		ms := geo.PropagationRTTms(geo.RegionLocation(regionA), geo.RegionLocation(regionB)) + 2
		return time.Duration(ms * float64(time.Millisecond))
	}
	if zoneA == zoneB {
		// ~0.40–0.55 ms depending on the zone — except eu-west-1's
		// zone 1, whose congested internal fabric runs near 1 ms. This
		// anomaly is what defeats latency-based zone identification in
		// Europe West (Table 13's 25% error rate): zone 1 instances
		// look closer to zone 0's probes than to their own zone's.
		if regionA == "ec2.eu-west-1" && zoneA == 1 {
			return time.Duration(0.98 * float64(time.Millisecond))
		}
		base := 0.40 + 0.15*pairHash(regionA, zoneName(zoneA))
		return time.Duration(base * float64(time.Millisecond))
	}
	// Stable per-unordered-pair base in 1.3–2.1 ms, with eu-west-1's
	// anomalous short 0↔1 path.
	lo, hi := zoneA, zoneB
	if lo > hi {
		lo, hi = hi, lo
	}
	if regionA == "ec2.eu-west-1" && lo == 0 && hi == 1 {
		return time.Duration(0.86 * float64(time.Millisecond))
	}
	base := 1.3 + 0.8*pairHash(regionA, zoneName(lo), zoneName(hi))
	return time.Duration(base * float64(time.Millisecond))
}

func zoneName(i int) string { return string(rune('a' + i)) }

// ProbeRTT returns one measured RTT sample between instances a and b:
// the base RTT plus exponential queueing jitter scaled by the region's
// noise factor, with occasional congestion spikes. Cartography takes the
// minimum of several probes to strip this noise, exactly as the paper
// did.
func (c *Cloud) ProbeRTT(rng *xrand.Rand, a, b *Instance) time.Duration {
	base := c.BaseRTT(a.Region, a.ZoneIndex, b.Region, b.ZoneIndex)
	noise := regionNoise[a.Region]
	if noise == 0 {
		noise = 0.5
	}
	jitterMs := rng.ExpFloat64() * 0.08 * noise
	if rng.Bool(0.03 * noise) {
		// Congestion spike: multiples of the base RTT.
		jitterMs += rng.Float64() * 3 * float64(base) / float64(time.Millisecond)
	}
	rtt := base + time.Duration(jitterMs*float64(time.Millisecond))
	if m := c.metrics.Load(); m != nil {
		m.Probes.Inc()
		m.RTTms.Observe(float64(rtt) / float64(time.Millisecond))
	}
	return rtt
}

// MinProbeRTT runs n probes and returns the minimum sample, the
// denoising estimator used throughout the paper's cartography.
func (c *Cloud) MinProbeRTT(rng *xrand.Rand, a, b *Instance, n int) time.Duration {
	min := time.Duration(1<<62 - 1)
	for i := 0; i < n; i++ {
		if d := c.ProbeRTT(rng, a, b); d < min {
			min = d
		}
	}
	return min
}
