package cloud

import (
	"testing"
	"time"

	"cloudscope/internal/dnswire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/xrand"
)

func TestRegionsAndZones(t *testing.T) {
	c := NewEC2(1)
	if got := len(c.Regions()); got != 8 {
		t.Fatalf("regions = %d", got)
	}
	if got := c.ZoneCount("ec2.us-east-1"); got != 3 {
		t.Fatalf("us-east zones = %d", got)
	}
	if got := c.ZoneCount("ec2.us-west-1"); got != 2 {
		t.Fatalf("us-west-1 zones = %d", got)
	}
	az := NewAzure(1)
	for _, r := range az.Regions() {
		if got := az.ZoneCount(r); got != 1 {
			t.Fatalf("azure %s zones = %d", r, got)
		}
	}
}

func TestLaunchAllocatesConsistently(t *testing.T) {
	c := NewEC2(2)
	ranges := ipranges.Published()
	seen := map[netaddr.IP]bool{}
	for i := 0; i < 200; i++ {
		inst := c.Launch("ec2.eu-west-1", i%3, "m1.medium", KindVM)
		if seen[inst.PublicIP] {
			t.Fatalf("duplicate public IP %v", inst.PublicIP)
		}
		seen[inst.PublicIP] = true
		if got := ranges.Region(inst.PublicIP); got != "ec2.eu-west-1" {
			t.Fatalf("public IP %v classified as %q", inst.PublicIP, got)
		}
		if inst.InternalIP.Prefix(8) != netaddr.MustParseIP("10.0.0.0") {
			t.Fatalf("internal IP %v not in 10/8", inst.InternalIP)
		}
		if inst.ZoneIndex != i%3 {
			t.Fatalf("zone = %d, want %d", inst.ZoneIndex, i%3)
		}
	}
	if c.NumInstances() != 200 {
		t.Fatalf("NumInstances = %d", c.NumInstances())
	}
}

func TestInternalBlocksSegregateZones(t *testing.T) {
	// Two instances in the same /16 must be in the same zone — the
	// invariant address-proximity cartography depends on.
	c := NewEC2(3)
	zoneOf := map[netaddr.IP]int{}
	for i := 0; i < 600; i++ {
		inst := c.Launch("ec2.us-east-1", i%3, "m1.small", KindVM)
		p16 := inst.InternalIP.Prefix(16)
		if prev, ok := zoneOf[p16]; ok && prev != inst.ZoneIndex {
			t.Fatalf("/16 %v hosts zones %d and %d", p16, prev, inst.ZoneIndex)
		}
		zoneOf[p16] = inst.ZoneIndex
	}
	if len(zoneOf) < 6 {
		t.Fatalf("only %d /16 blocks used; expected spread", len(zoneOf))
	}
}

func TestInternalForAndInstanceAt(t *testing.T) {
	c := NewEC2(4)
	inst := c.Launch("ec2.us-west-2", 1, "m1.xlarge", KindVM)
	internal, ok := c.InternalFor(inst.PublicIP)
	if !ok || internal != inst.InternalIP {
		t.Fatalf("InternalFor = %v ok=%v", internal, ok)
	}
	got, ok := c.InstanceAt(inst.PublicIP)
	if !ok || got != inst {
		t.Fatal("InstanceAt wrong")
	}
	if _, ok := c.InternalFor(netaddr.MustParseIP("8.8.8.8")); ok {
		t.Fatal("InternalFor hit for foreign IP")
	}
}

func TestAzureHasNoInternalAddressing(t *testing.T) {
	c := NewAzure(5)
	inst := c.Launch("az.us-south", -1, "azure.cs", KindCSNode)
	if inst.InternalIP != 0 {
		t.Fatalf("azure instance has internal IP %v", inst.InternalIP)
	}
	if _, ok := c.InternalFor(inst.PublicIP); ok {
		t.Fatal("azure InternalFor should fail")
	}
}

func TestAccountPermutations(t *testing.T) {
	c := NewEC2(6)
	// Distinct accounts eventually get distinct permutations.
	diff := false
	a := c.NewAccount("acct-a")
	for i := 0; i < 20 && !diff; i++ {
		b := c.NewAccount(string(rune('b' + i)))
		for _, label := range a.ZoneLabels("ec2.us-east-1") {
			if a.TrueZone("ec2.us-east-1", label) != b.TrueZone("ec2.us-east-1", label) {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("all account permutations identical")
	}
	// Permutation is a bijection.
	seen := map[int]bool{}
	for _, label := range a.ZoneLabels("ec2.us-east-1") {
		z := a.TrueZone("ec2.us-east-1", label)
		if seen[z] {
			t.Fatalf("zone %d mapped twice", z)
		}
		seen[z] = true
	}
	// Determinism: same name → same permutation.
	a2 := c.NewAccount("acct-a")
	for _, label := range a.ZoneLabels("ec2.us-east-1") {
		if a.TrueZone("ec2.us-east-1", label) != a2.TrueZone("ec2.us-east-1", label) {
			t.Fatal("account permutation not deterministic")
		}
	}
	inst := a.Launch("ec2.us-east-1", "a", "t1.micro")
	if inst.ZoneIndex != a.TrueZone("ec2.us-east-1", "a") {
		t.Fatal("account launch ignored permutation")
	}
}

func TestELBCreation(t *testing.T) {
	c := NewEC2(7)
	e := c.CreateELB("web", "ec2.us-east-1", []int{0, 1}, 0)
	if len(e.Proxies) != 2 {
		t.Fatalf("proxies = %d", len(e.Proxies))
	}
	if e.Proxies[0].Kind != KindELBProxy {
		t.Fatalf("kind = %s", e.Proxies[0].Kind)
	}
	if e.Proxies[0].ZoneIndex != 0 || e.Proxies[1].ZoneIndex != 1 {
		t.Fatal("proxy zones wrong")
	}
	// DNS record resolves with rotation.
	zone := c.ProviderZone(ZoneAmazonAWS)
	a1, found := zone.Lookup(1, e.Name, dnswire.TypeA)
	if !found || len(a1) != 2 {
		t.Fatalf("lookup = %v %v", a1, found)
	}
	a2, _ := zone.Lookup(1, e.Name, dnswire.TypeA)
	if a1[0].IP == a2[0].IP {
		t.Fatal("ELB answers not rotating")
	}
}

func TestELBProxySharing(t *testing.T) {
	c := NewEC2(8)
	proxyUse := map[netaddr.IP]int{}
	for i := 0; i < 200; i++ {
		e := c.CreateELB("app", "ec2.us-east-1", []int{0}, 0.75)
		for _, p := range e.Proxies {
			proxyUse[p.PublicIP]++
		}
	}
	if len(proxyUse) >= 200 {
		t.Fatal("no proxy sharing at reuse=0.75")
	}
	max := 0
	for _, n := range proxyUse {
		if n > max {
			max = n
		}
	}
	if max < 5 {
		t.Fatalf("max proxy sharing = %d; expected heavy sharing", max)
	}
}

func TestHeroku(t *testing.T) {
	c := NewEC2(9)
	h := NewHeroku(c, 10)
	if len(h.Pool) != 10 {
		t.Fatalf("pool = %d", len(h.Pool))
	}
	proxyApp := h.CreateApp("withproxy", true, false)
	zone := c.ProviderZone(ZoneHerokuApp)
	rrs, found := zone.Lookup(1, proxyApp.Name, dnswire.TypeA)
	if !found || len(rrs) == 0 || rrs[0].Type != dnswire.TypeCNAME || rrs[0].Target != "proxy.heroku.com" {
		t.Fatalf("proxy app records: %v", rrs)
	}
	directApp := h.CreateApp("direct", false, false)
	rrs, _ = zone.Lookup(1, directApp.Name, dnswire.TypeA)
	if len(rrs) == 0 || rrs[0].Type != dnswire.TypeA {
		t.Fatalf("direct app records: %v", rrs)
	}
	elbApp := h.CreateApp("withelb", false, true)
	if elbApp.ELB == nil {
		t.Fatal("ELB app has no ELB")
	}
	rrs, _ = zone.Lookup(1, elbApp.Name, dnswire.TypeA)
	if rrs[0].Type != dnswire.TypeCNAME || rrs[0].Target != elbApp.ELB.Name {
		t.Fatalf("elb app records: %v", rrs)
	}
	// proxy.heroku.com resolves to pool IPs.
	hz := c.ProviderZone(ZoneHeroku)
	prrs, found := hz.Lookup(7, "proxy.heroku.com", dnswire.TypeA)
	if !found || len(prrs) == 0 {
		t.Fatal("proxy.heroku.com unresolvable")
	}
}

func TestBeanstalk(t *testing.T) {
	c := NewEC2(10)
	env := c.CreateBeanstalk("myapp", "ec2.us-east-1", []int{0, 1})
	if env.ELB == nil {
		t.Fatal("beanstalk without ELB")
	}
	zone := c.ProviderZone(ZoneAmazonAWS)
	rrs, found := zone.Lookup(1, env.Name, dnswire.TypeA)
	if !found || rrs[0].Type != dnswire.TypeCNAME {
		t.Fatalf("beanstalk records: %v", rrs)
	}
	// The in-zone CNAME chase should reach the ELB's A records.
	last := rrs[len(rrs)-1]
	if last.Type != dnswire.TypeA {
		t.Fatalf("chain did not reach A records: %v", rrs)
	}
}

func TestCloudFrontDistribution(t *testing.T) {
	c := NewEC2(11)
	ranges := ipranges.Published()
	d := c.CreateDistribution(3)
	if len(d.IPs) != 3 {
		t.Fatalf("edges = %d", len(d.IPs))
	}
	for _, ip := range d.IPs {
		if e, ok := ranges.Lookup(ip); !ok || e.Provider != ipranges.CloudFront {
			t.Fatalf("edge %v not in CloudFront range", ip)
		}
	}
	zone := c.ProviderZone(ZoneCloudFront)
	rrs, found := zone.Lookup(1, d.Name, dnswire.TypeA)
	if !found || len(rrs) != 3 {
		t.Fatalf("distribution records: %v", rrs)
	}
}

func TestRoute53NS(t *testing.T) {
	c := NewEC2(12)
	ranges := ipranges.Published()
	fqdn, ip := c.Route53NS()
	if e, ok := ranges.Lookup(ip); !ok || e.Provider != ipranges.CloudFront {
		t.Fatalf("route53 NS %v not in CloudFront range", ip)
	}
	rrs, found := c.ProviderZone(ZoneAWSDNS).Lookup(1, fqdn, dnswire.TypeA)
	if !found || rrs[0].IP != ip {
		t.Fatalf("route53 records: %v", rrs)
	}
}

func TestCloudService(t *testing.T) {
	c := NewAzure(13)
	ranges := ipranges.Published()
	cs := c.CreateCloudService("svc", "az.us-south", "paas")
	if got := ranges.Region(cs.Node.PublicIP); got != "az.us-south" {
		t.Fatalf("CS IP region = %q", got)
	}
	rrs, found := c.ProviderZone(ZoneCloudApp).Lookup(1, cs.Name, dnswire.TypeA)
	if !found || rrs[0].IP != cs.Node.PublicIP {
		t.Fatalf("CS records: %v", rrs)
	}
}

func TestTrafficManagerPolicies(t *testing.T) {
	c := NewAzure(14)
	var members []*CloudService
	for i, r := range []string{"az.us-east", "az.eu-west", "az.ap-east"} {
		members = append(members, c.CreateCloudService(string(rune('a'+i)), r, "vm"))
	}
	tmz := c.ProviderZone(ZoneTrafficManager)

	rr := c.CreateTrafficManager("svc", "round-robin", members)
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		rrs, _ := tmz.Lookup(1, rr.Name, dnswire.TypeANY)
		seen[rrs[0].Target] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin covered %d members", len(seen))
	}

	perf := c.CreateTrafficManager("svc2", "performance", members)
	first, _ := tmz.Lookup(netaddr.MustParseIP("1.2.3.4"), perf.Name, dnswire.TypeANY)
	again, _ := tmz.Lookup(netaddr.MustParseIP("1.2.3.4"), perf.Name, dnswire.TypeANY)
	if first[0].Target != again[0].Target {
		t.Fatal("performance policy not stable per client")
	}

	fo := c.CreateTrafficManager("svc3", "failover", members)
	rrs, _ := tmz.Lookup(9, fo.Name, dnswire.TypeANY)
	if rrs[0].Target != members[0].Name {
		t.Fatal("failover should pick first member")
	}
}

func TestAzureCDN(t *testing.T) {
	c := NewAzure(15)
	ranges := ipranges.Published()
	ep := c.CreateAzureCDN("az.us-north")
	if e, ok := ranges.Lookup(ep.Node.PublicIP); !ok || e.Provider != ipranges.Azure {
		t.Fatal("Azure CDN IP outside Azure ranges")
	}
}

func TestRTTStructure(t *testing.T) {
	c := NewEC2(16)
	rng := xrand.New(1)
	a0 := c.Launch("ec2.us-east-1", 0, "t1.micro", KindVM)
	b0 := c.Launch("ec2.us-east-1", 0, "m1.medium", KindVM)
	b1 := c.Launch("ec2.us-east-1", 1, "m1.medium", KindVM)
	b2 := c.Launch("ec2.us-east-1", 2, "m1.medium", KindVM)
	west := c.Launch("ec2.us-west-1", 0, "m1.medium", KindVM)

	same := c.MinProbeRTT(rng, a0, b0, 10)
	cross1 := c.MinProbeRTT(rng, a0, b1, 10)
	cross2 := c.MinProbeRTT(rng, a0, b2, 10)
	far := c.MinProbeRTT(rng, a0, west, 10)

	if same < 300*time.Microsecond || same > 800*time.Microsecond {
		t.Fatalf("same-zone min RTT = %v", same)
	}
	if cross1 < time.Millisecond || cross1 > 3*time.Millisecond {
		t.Fatalf("cross-zone RTT = %v", cross1)
	}
	if cross2 < time.Millisecond || cross2 > 3*time.Millisecond {
		t.Fatalf("cross-zone RTT = %v", cross2)
	}
	if same >= cross1 || same >= cross2 {
		t.Fatal("same-zone RTT not smallest")
	}
	if far < 30*time.Millisecond {
		t.Fatalf("cross-region RTT = %v", far)
	}
	// Zone-pair baseline is stable: repeated min-probes agree closely.
	again := c.MinProbeRTT(rng, a0, b1, 10)
	if d := cross1 - again; d < -300*time.Microsecond || d > 300*time.Microsecond {
		t.Fatalf("zone-pair baseline unstable: %v vs %v", cross1, again)
	}
}

func TestLaunchUnknownRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown region did not panic")
		}
	}()
	NewEC2(17).Launch("ec2.nowhere", 0, "t1.micro", KindVM)
}

func TestFeatureProviderGuards(t *testing.T) {
	az := NewAzure(18)
	for name, fn := range map[string]func(){
		"elb":        func() { az.CreateELB("x", "az.us-east", []int{0}, 0) },
		"cloudfront": func() { az.CreateDistribution(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on Azure did not panic", name)
				}
			}()
			fn()
		}()
	}
	ec2 := NewEC2(18)
	for name, fn := range map[string]func(){
		"cs": func() { ec2.CreateCloudService("x", "ec2.us-east-1", "vm") },
		"tm": func() { ec2.CreateTrafficManager("x", "failover", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on EC2 did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDeterministicWorld(t *testing.T) {
	a, b := NewEC2(99), NewEC2(99)
	for i := 0; i < 50; i++ {
		ia := a.Launch("ec2.us-east-1", i%3, "m1.small", KindVM)
		ib := b.Launch("ec2.us-east-1", i%3, "m1.small", KindVM)
		if ia.PublicIP != ib.PublicIP || ia.InternalIP != ib.InternalIP {
			t.Fatalf("instance %d differs across identical seeds", i)
		}
	}
}

func TestEuWestAnomalyPlanted(t *testing.T) {
	// The modeled Europe West fabric anomaly (DESIGN.md §6): zone 1's
	// internal RTT runs near 1 ms while the 0↔1 path is shorter —
	// exactly the structure that defeats latency-based cartography.
	c := NewEC2(40)
	same1 := c.BaseRTT("ec2.eu-west-1", 1, "ec2.eu-west-1", 1)
	cross01 := c.BaseRTT("ec2.eu-west-1", 0, "ec2.eu-west-1", 1)
	same0 := c.BaseRTT("ec2.eu-west-1", 0, "ec2.eu-west-1", 0)
	if cross01 >= same1 {
		t.Fatalf("anomaly missing: cross(0,1)=%v >= same(1)=%v", cross01, same1)
	}
	if same0 >= cross01 {
		t.Fatalf("zone 0 should still be identifiable: same(0)=%v cross=%v", same0, cross01)
	}
	// Other regions keep the normal ordering.
	for _, region := range []string{"ec2.us-east-1", "ec2.us-west-2"} {
		for z := 0; z < c.ZoneCount(region); z++ {
			same := c.BaseRTT(region, z, region, z)
			for z2 := 0; z2 < c.ZoneCount(region); z2++ {
				if z2 == z {
					continue
				}
				if cross := c.BaseRTT(region, z, region, z2); cross <= same {
					t.Fatalf("%s: cross(%d,%d)=%v <= same(%d)=%v", region, z, z2, cross, z, same)
				}
			}
		}
	}
}

func TestBaseRTTSymmetric(t *testing.T) {
	c := NewEC2(41)
	for _, region := range c.Regions() {
		zc := c.ZoneCount(region)
		for a := 0; a < zc; a++ {
			for b := 0; b < zc; b++ {
				ab := c.BaseRTT(region, a, region, b)
				ba := c.BaseRTT(region, b, region, a)
				if ab != ba {
					t.Fatalf("%s: RTT(%d,%d)=%v != RTT(%d,%d)=%v", region, a, b, ab, b, a, ba)
				}
			}
		}
	}
}

func TestPublicAllocatorDensePass(t *testing.T) {
	// The scattered first pass covers only ~1/4 of a region's space;
	// allocation beyond that must fall back to the dense pass instead
	// of panicking, and never hand out duplicates.
	c := NewEC2(50)
	region := "ec2.ap-southeast-2" // one /16: 65536 addresses
	seen := map[netaddr.IP]bool{}
	const n = 30000 // well past the scattered pass's ~16k capacity
	for i := 0; i < n; i++ {
		inst := c.Launch(region, i%2, "t1.micro", KindVM)
		if seen[inst.PublicIP] {
			t.Fatalf("duplicate IP %v at launch %d", inst.PublicIP, i)
		}
		seen[inst.PublicIP] = true
	}
	if len(seen) != n {
		t.Fatalf("allocated %d distinct IPs, want %d", len(seen), n)
	}
}
